/**
 * @file
 * Protection study: the decision workflow the paper motivates.
 *
 * The point of early reliability assessment is to decide *which*
 * structures deserve protection (ECC, parity, duplication) before
 * tape-out, without over-provisioning based on pessimistic analytical
 * estimates.  This example ranks the major structures of one
 * microarchitecture by measured vulnerability under a fixed fault
 * budget and applies a simple cost model: parity on the cheapest
 * sufficient subset that covers ~90% of the observed failures.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hh"
#include "inject/campaign.hh"
#include "inject/parser.hh"
#include "inject/target.hh"
#include "isa/codegen.hh"
#include "prog/benchmark.hh"

using namespace dfi;
using namespace dfi::inject;

int
main()
{
    const std::uint64_t injections = envUint("DFI_INJECTIONS", 80);
    const char *workload = "caes";

    struct Ranked
    {
        std::string component;
        double vulnerability; //!< % of injections not masked
        std::uint64_t bits;   //!< protection cost proxy
        double failureShare;  //!< vulnerability x bits (relative)
    };
    std::vector<Ranked> ranking;

    Parser parser;
    for (const std::string component :
         {"l1d", "l1i", "l2", "int_regfile", "lsq", "issue_queue",
          "dtlb", "btb"}) {
        CampaignConfig cfg;
        cfg.benchmark = workload;
        cfg.coreName = "gem5-x86";
        cfg.component = component;
        cfg.numInjections = injections;
        cfg.jobs = 0; // all hardware threads; same ranking either way
        InjectionCampaign campaign(cfg);
        const auto result = campaign.run();
        const auto counts = result.classify(parser);

        // Bits at risk: geometry from the component resolution.
        uarch::CoreConfig probe_cfg =
            uarch::coreConfigByName(cfg.coreName);
        uarch::scaleCaches(probe_cfg, cfg.cacheScale);
        const auto bench =
            prog::buildBenchmark(cfg.benchmark, cfg.scale);
        const auto image =
            ir::compileModule(bench.module, probe_cfg.isa, 0x200000);
        uarch::OooCore probe(probe_cfg, image);
        const std::uint64_t bits = componentBits(component, probe);

        ranking.push_back(Ranked{component, counts.vulnerability(),
                                 bits,
                                 counts.vulnerability() *
                                     static_cast<double>(bits)});
        std::fprintf(stderr, "  measured %s\n", component.c_str());
    }

    // Failure share is proportional to vulnerability x capacity
    // (uniform raw fault rate per bit).
    double total_share = 0;
    for (const Ranked &r : ranking)
        total_share += r.failureShare;
    std::sort(ranking.begin(), ranking.end(),
              [](const Ranked &a, const Ranked &b) {
                  return a.failureShare > b.failureShare;
              });

    std::printf("protection study: gem5-x86 running '%s' "
                "(%lu injections per structure)\n\n",
                workload, static_cast<unsigned long>(injections));
    std::printf("%-12s %14s %12s %15s\n", "structure",
                "vulnerability", "bits", "failure share");
    double covered = 0;
    std::size_t needed = 0;
    for (const Ranked &r : ranking) {
        const double share =
            total_share > 0 ? 100.0 * r.failureShare / total_share
                            : 0.0;
        std::printf("%-12s %13.1f%% %12lu %14.1f%%\n",
                    r.component.c_str(), r.vulnerability,
                    static_cast<unsigned long>(r.bits), share);
        if (covered < 90.0) {
            covered += share;
            ++needed;
        }
    }
    std::printf("\ndecision: protecting the top %zu structure(s) "
                "covers %.1f%% of observed failures;\n"
                "the remaining structures' measured vulnerability "
                "does not justify their protection cost\n"
                "(the over-estimation trap of ACE-style analysis the "
                "paper's introduction warns about).\n",
                needed, covered);
    return 0;
}

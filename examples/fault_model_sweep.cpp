/**
 * @file
 * Fault-model sweep: beyond the paper's transient study.
 *
 * The tools support the full Table III model space; this example
 * sweeps all three fault models plus multi-bit populations over one
 * structure/workload pair and shows how the outcome distribution
 * shifts — the kind of study Section III says the tools enable
 * (intermittent faults from marginal cells, permanent faults from
 * early-life failures, spatial multi-bit upsets).
 */

#include <cstdio>
#include <string>

#include "common/config.hh"
#include "inject/campaign.hh"
#include "inject/parser.hh"

using namespace dfi;
using namespace dfi::inject;

namespace
{

ClassCounts
sweep(const char *label, CampaignConfig cfg)
{
    InjectionCampaign campaign(std::move(cfg));
    Parser parser;
    const auto counts = campaign.run().classify(parser);
    std::printf("%-28s", label);
    for (std::size_t c = 0; c < kNumOutcomeClasses; ++c) {
        std::printf(" %6.1f",
                    counts.percent(static_cast<OutcomeClass>(c)));
    }
    std::printf(" | %5.1f%%\n", counts.vulnerability());
    return counts;
}

} // namespace

int
main()
{
    const std::uint64_t injections = envUint("DFI_INJECTIONS", 80);

    CampaignConfig base;
    base.benchmark = "fft";
    base.coreName = "marss-x86";
    base.component = "l1d";
    base.numInjections = injections;
    base.jobs = 0; // all hardware threads; the sweep is deterministic

    std::printf("fault-model sweep: %s / %s / %lu runs each\n\n",
                base.component.c_str(), base.benchmark.c_str(),
                static_cast<unsigned long>(injections));
    std::printf("%-28s %6s %6s %6s %6s %6s %6s | %s\n", "model",
                "Masked", "SDC", "DUE", "Tmout", "Crash", "Assrt",
                "vuln");

    CampaignConfig cfg = base;
    const auto transient = sweep("transient single-bit", cfg);

    cfg = base;
    cfg.faultType = dfi::FaultType::Intermittent;
    cfg.intermittentMin = 100;
    cfg.intermittentMax = 2000;
    const auto intermittent = sweep("intermittent (100-2k cyc)", cfg);

    cfg = base;
    cfg.faultType = dfi::FaultType::Permanent;
    const auto permanent = sweep("permanent stuck-at", cfg);

    cfg = base;
    cfg.population = Population::DoubleAdjacent;
    sweep("transient double-adjacent", cfg);

    cfg = base;
    cfg.population = Population::MultiStructure;
    sweep("transient multi-location", cfg);

    std::printf(
        "\nexpected ordering: permanent (%.1f%%) >= intermittent "
        "(%.1f%%) >= transient (%.1f%%)\n"
        "— longer fault residency strictly grows the effect window.\n",
        permanent.vulnerability(), intermittent.vulnerability(),
        transient.vulnerability());
    return 0;
}

/**
 * @file
 * Quickstart: run one differential fault-injection campaign.
 *
 * Injects 100 transient single-bit faults into the L1 data cache
 * while the `sha` workload runs, on both injectors (MaFIN on the
 * MARSS-like simulator, GeFIN on the gem5-like simulator), classifies
 * the outcomes and prints the comparison — the whole pipeline of
 * Fig. 1 in ~40 lines.
 */

#include <cstdio>

#include "gemsim/gefin.hh"
#include "inject/campaign.hh"
#include "inject/parser.hh"
#include "marssim/mafin.hh"

using namespace dfi;
using namespace dfi::inject;

int
main()
{
    CampaignConfig config;
    config.benchmark = "sha"; // any of the ten MiBench-like workloads
    config.component = "l1d"; // L1 data cache, data arrays
    config.numInjections = 100;
    config.jobs = 0;          // parallel runs on every hardware thread

    Parser parser; // default six-class classification

    // --- MaFIN: the MARSS-based injector --------------------------------
    auto mafin_campaign = mafin::makeCampaign(config);
    const CampaignResult mafin_result = mafin_campaign.run();
    const ClassCounts mafin_counts = mafin_result.classify(parser);

    // --- GeFIN: the gem5-based injector (x86) ----------------------------
    auto gefin_campaign =
        gefin::makeCampaign(config, isa::IsaKind::X86);
    const CampaignResult gefin_result = gefin_campaign.run();
    const ClassCounts gefin_counts = gefin_result.classify(parser);

    std::printf("campaign: %lu transient faults in '%s' while "
                "running '%s'\n\n",
                static_cast<unsigned long>(config.numInjections),
                config.component.c_str(), config.benchmark.c_str());
    std::printf("%-10s %8s %8s\n", "class", "MaFIN", "GeFIN");
    for (std::size_t c = 0; c < kNumOutcomeClasses; ++c) {
        const auto cls = static_cast<OutcomeClass>(c);
        std::printf("%-10s %7.1f%% %7.1f%%\n",
                    outcomeClassName(cls).c_str(),
                    mafin_counts.percent(cls),
                    gefin_counts.percent(cls));
    }
    std::printf("\nvulnerability: MaFIN %.1f%%  GeFIN %.1f%%\n",
                mafin_counts.vulnerability(),
                gefin_counts.vulnerability());
    std::printf("golden runs: MaFIN %lu cycles, GeFIN %lu cycles\n",
                static_cast<unsigned long>(mafin_result.golden.cycles),
                static_cast<unsigned long>(
                    gefin_result.golden.cycles));
    return 0;
}

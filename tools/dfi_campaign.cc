/**
 * @file
 * dfi-campaign: command-line front end for the injection framework.
 *
 * Runs a full campaign (golden run, mask generation, injections,
 * classification) from flags, mirroring how the paper's tools were
 * driven in batch across workstations.  Campaigns are shardable
 * (`--shard I/N` + dfi-merge), resumable (`--resume`), and masks can
 * be exported and replayed, so long campaigns split across machines
 * and survive interruptions without losing determinism.
 *
 * Examples:
 *   dfi-campaign --core marss-x86 --benchmark fft --component l1d \
 *                --injections 500
 *   dfi-campaign --core gem5-arm --benchmark sha --component lsq \
 *                --confidence 0.99 --margin 0.05
 *   dfi-campaign --list
 *   dfi-campaign --core gem5-x86 --benchmark qsort --component l1i \
 *                --injections 400 --shard 0/2 --telemetry-out s0
 *   dfi-campaign --core gem5-x86 --benchmark qsort --component l1i \
 *                --injections 400 --resume run.jsonl \
 *                --telemetry-out run
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/parse_num.hh"
#include "common/version.hh"
#include "common/stats.hh"
#include "inject/campaign.hh"
#include "inject/executor.hh"
#include "inject/mask_gen.hh"
#include "inject/parser.hh"
#include "inject/target.hh"
#include "prog/benchmark.hh"
#include "uarch/core_config.hh"

using namespace dfi;
using namespace dfi::inject;

namespace
{

[[noreturn]] void
die(const std::string &message)
{
    std::fprintf(stderr, "dfi-campaign: %s\n", message.c_str());
    std::exit(2);
}

void
listTargets()
{
    std::puts("cores:");
    for (const auto &name : uarch::coreConfigNames())
        std::printf("  %s\n", name.c_str());
    std::puts("benchmarks:");
    for (const auto &name : prog::benchmarkNames())
        std::printf("  %s\n", name.c_str());
    std::puts("  micro (test workload)");
    std::puts("components:");
    for (const auto &name : componentNames())
        std::printf("  %s\n", name.c_str());
}

bool
decodeFaultType(const std::string &text, FaultType &out,
                std::string &error)
{
    if (text == "transient")
        out = FaultType::Transient;
    else if (text == "intermittent")
        out = FaultType::Intermittent;
    else if (text == "permanent")
        out = FaultType::Permanent;
    else {
        error = "expected transient | intermittent | permanent";
        return false;
    }
    return true;
}

bool
decodePopulation(const std::string &text, Population &out,
                 std::string &error)
{
    if (text == "single")
        out = Population::SingleBit;
    else if (text == "double-adjacent")
        out = Population::DoubleAdjacent;
    else if (text == "double-random")
        out = Population::DoubleRandom;
    else if (text == "multi-structure")
        out = Population::MultiStructure;
    else {
        error = "expected single | double-adjacent | double-random | "
                "multi-structure";
        return false;
    }
    return true;
}

/** Decode `I/N` (e.g. `0/4`) into a ShardSpec. */
bool
decodeShard(const std::string &text, ShardSpec &out,
            std::string &error)
{
    const std::size_t slash = text.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= text.size()) {
        error = "expected I/N (e.g. 0/4)";
        return false;
    }
    std::uint64_t index = 0, count = 0;
    if (!dfi::parseUnsigned(text.substr(0, slash), index,
                            std::numeric_limits<std::uint32_t>::max()) ||
        !dfi::parseUnsigned(text.substr(slash + 1), count,
                            std::numeric_limits<std::uint32_t>::max())) {
        error = "expected I/N (e.g. 0/4)";
        return false;
    }
    out.index = static_cast<std::uint32_t>(index);
    out.count = static_cast<std::uint32_t>(count);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    CampaignConfig cfg;
    cfg.numInjections = 0;
    cfg.jobs = 0; // batch front end: all hardware threads by default
    ParserConfig parser_cfg;
    std::string save_masks;
    bool verbose = false;
    bool list = false;
    bool dry_run = false;
    std::uint64_t scale = cfg.scale;
    std::uint64_t checkpoint_count = cfg.checkpointCount;

    cli::FlagSet flags("dfi-campaign", "[options]");
    flags.section("campaign selection");
    flags.text("--core", "NAME", "marss-x86 | gem5-x86 | gem5-arm",
               &cfg.coreName);
    flags.text("--benchmark", "NAME",
               "one of the ten workloads (or 'micro')",
               &cfg.benchmark);
    flags.text("--component", "NAME", "injection target (see --list)",
               &cfg.component);
    flags.uint64("--scale", "N", "workload input scale (default 1)",
                 &scale, std::numeric_limits<std::uint32_t>::max());

    flags.section("fault selection");
    flags.uint64("--injections", "N",
                 "number of runs (default: derive from\n"
                 "--confidence/--margin)",
                 &cfg.numInjections);
    flags.number("--confidence", "P",
                 "sampling confidence (default 0.99)",
                 &cfg.confidence);
    flags.number("--margin", "E",
                 "sampling error margin (default 0.03)", &cfg.margin);
    flags.custom("--fault-type", "T",
                 "transient | intermittent | permanent",
                 [&cfg](const std::string &text, std::string &error) {
                     return decodeFaultType(text, cfg.faultType,
                                            error);
                 });
    flags.custom("--population", "P",
                 "single | double-adjacent |\n"
                 "double-random | multi-structure",
                 [&cfg](const std::string &text, std::string &error) {
                     return decodePopulation(text, cfg.population,
                                             error);
                 });
    flags.uint64("--seed", "N", "campaign seed", &cfg.seed);
    flags.flag("--exhaustive",
               "enumerate every bit x cycle site of the\n"
               "component instead of sampling (single-bit\n"
               "transients only; small structures)",
               &cfg.exhaustive);

    flags.section("execution");
    flags.flag("--no-prune",
               "disable planning-time classification and\n"
               "fault-equivalence pruning; simulate every\n"
               "run (the classification is identical\n"
               "either way)",
               [&cfg] { cfg.prune = false; });
    flags.flag("--dry-run",
               "resolve and print the plan (runs, pruned\n"
               "counts, estimated simulated cycles), then\n"
               "exit without simulating",
               &dry_run);
    flags.uint32("--jobs", "N",
                 "worker threads (default: hardware\n"
                 "concurrency; results are bit-identical\n"
                 "for every N)",
                 &cfg.jobs);
    flags.custom("--shard", "I/N",
                 "execute shard I of N (runs with\n"
                 "runId mod N == I); merge the shards'\n"
                 "telemetry with dfi-merge",
                 [&cfg](const std::string &text, std::string &error) {
                     return decodeShard(text, cfg.shard, error);
                 });
    flags.text("--resume", "FILE",
               "replay the completed runs of a partial\n"
               "telemetry stream (a torn final line is\n"
               "dropped) and execute only the rest;\n"
               "requires --telemetry-out",
               &cfg.resumeFrom);
    flags.number("--timeout-factor", "F",
                 "run bound vs golden cycles (default 3)",
                 &cfg.timeoutFactor);
    flags.number("--cache-scale", "F",
                 "cache capacity scale (default 0.0625)",
                 &cfg.cacheScale);
    flags.flag("--no-early-stop",
               "disable both early-stop optimizations", [&cfg] {
                   cfg.earlyStopInvalidEntry = false;
                   cfg.earlyStopOverwrite = false;
               });
    flags.flag("--no-checkpoints", "always start runs from reset",
               [&cfg] { cfg.useCheckpoints = false; });
    flags.uint64("--checkpoints", "N",
                 "target live checkpoint count\n(default 6)",
                 &checkpoint_count,
                 std::numeric_limits<std::uint32_t>::max());
    flags.uint64("--checkpoint-budget", "MB",
                 "checkpoint memory budget in MiB\n"
                 "(default 256; 0 = unlimited)",
                 &cfg.checkpointMemBudgetMB);

    flags.section("output");
    flags.text("--telemetry-out", "BASE",
               "write BASE.jsonl (per-run records)\n"
               "and BASE.summary.json; byte-identical\n"
               "for every --jobs value",
               &cfg.telemetryOut);
    flags.flag("--telemetry-timing",
               "record real wall-clock micros and the\n"
               "job count in the telemetry (marks the\n"
               "volatile fields; off by default)",
               &cfg.telemetryTiming);
    flags.text("--save-masks", "FILE",
               "write the generated masks repository", &save_masks);
    flags.flag("--crash-as-assert",
               "regroup simulator crashes under Assert",
               &parser_cfg.simulatorCrashAsAssert);
    flags.flag("--no-due-split", "do not annotate true/false DUE",
               [&parser_cfg] { parser_cfg.splitDue = false; });
    flags.flag("--verbose", "per-run progress", &verbose);
    flags.flag("--list", "list cores, benchmarks, components",
               &list);

    std::string parse_error;
    switch (flags.parse(argc, argv, parse_error)) {
      case cli::ParseResult::Help:
        std::fputs(flags.usage().c_str(), stdout);
        return 0;
      case cli::ParseResult::Version:
        std::puts(dfi::versionString().c_str());
        return 0;
      case cli::ParseResult::Error:
        die(parse_error);
      case cli::ParseResult::Ok:
        break;
    }
    if (list) {
        listTargets();
        return 0;
    }
    cfg.scale = static_cast<std::uint32_t>(scale);
    cfg.checkpointCount = static_cast<std::uint32_t>(checkpoint_count);

    // One structured validation pass; every defect is reported, not
    // just the first.
    const std::vector<ConfigError> config_errors = cfg.validate();
    if (!config_errors.empty()) {
        for (const ConfigError &err : config_errors)
            std::fprintf(stderr, "dfi-campaign: config: %s: %s\n",
                         err.field.c_str(), err.message.c_str());
        return 2;
    }

    try {
        InjectionCampaign campaign(cfg);
        const auto &golden = campaign.golden();
        std::fprintf(stderr,
                     "golden: %llu cycles, %llu instructions, %zu "
                     "output bytes\n",
                     static_cast<unsigned long long>(golden.cycles),
                     static_cast<unsigned long long>(
                         golden.instructions),
                     golden.output.size());
        if (dry_run) {
            const InjectionCampaign::PlanSummary summary =
                campaign.planSummary();
            std::printf("plan: %llu runs (%llu masks)\n",
                        static_cast<unsigned long long>(
                            summary.totalRuns),
                        static_cast<unsigned long long>(
                            summary.maskCount));
            std::printf("  simulated:     %llu\n",
                        static_cast<unsigned long long>(
                            summary.stats.simulated));
            std::printf("  pruned static: %llu\n",
                        static_cast<unsigned long long>(
                            summary.stats.prunedStatic));
            std::printf("  pruned equiv:  %llu\n",
                        static_cast<unsigned long long>(
                            summary.stats.prunedEquiv));
            if (cfg.shard.count > 1)
                std::printf("  this shard (%u/%u) executes: %llu\n",
                            cfg.shard.index, cfg.shard.count,
                            static_cast<unsigned long long>(
                                summary.executed));
            std::printf("  estimated simulated cycles: %llu\n",
                        static_cast<unsigned long long>(
                            summary.estimatedSimulatedCycles));
            return 0;
        }
        if (cfg.shard.count > 1)
            std::fprintf(stderr, "executing shard %u/%u\n",
                         cfg.shard.index, cfg.shard.count);
        std::fprintf(stderr, "executing on %u worker thread%s\n",
                     resolveJobs(cfg.jobs),
                     resolveJobs(cfg.jobs) == 1 ? "" : "s");

        InjectionCampaign::Progress progress;
        if (verbose) {
            progress = [](std::uint64_t done, std::uint64_t total) {
                if (done % 50 == 0 || done == total) {
                    std::fprintf(stderr, "  %llu/%llu runs\n",
                                 static_cast<unsigned long long>(done),
                                 static_cast<unsigned long long>(
                                     total));
                }
            };
        }
        const CampaignResult result = campaign.run(progress);

        if (!save_masks.empty()) {
            saveMasks(save_masks, result.masks);
            std::fprintf(stderr, "masks written to %s\n",
                         save_masks.c_str());
        }
        if (!cfg.telemetryOut.empty()) {
            std::fprintf(stderr,
                         "telemetry written to %s.jsonl and "
                         "%s.summary.json\n",
                         cfg.telemetryOut.c_str(),
                         cfg.telemetryOut.c_str());
        }

        Parser parser(parser_cfg);
        const ClassCounts counts = result.classify(parser);

        TextTable table;
        table.header({"class", "runs", "percent"});
        for (std::size_t c = 0; c < kNumOutcomeClasses; ++c) {
            const auto cls = static_cast<OutcomeClass>(c);
            table.row({outcomeClassName(cls),
                       std::to_string(counts.get(cls)),
                       formatFixed(counts.percent(cls), 2) + "%"});
        }
        std::printf("campaign: %s / %s / %s / %s\n", cfg.coreName.c_str(),
                    cfg.benchmark.c_str(), cfg.component.c_str(),
                    faultTypeName(cfg.faultType).c_str());
        std::printf("%s", table.render().c_str());
        std::printf("vulnerability (non-masked): %.2f%%\n",
                    counts.vulnerability());
        std::printf("campaign cycles: %llu simulated (%.1f%% of the "
                    "unoptimized equivalent)\n",
                    static_cast<unsigned long long>(
                        result.simulatedFaultyCycles),
                    result.fullRunEquivalentCycles > 0
                        ? 100.0 *
                              static_cast<double>(
                                  result.simulatedFaultyCycles) /
                              static_cast<double>(
                                  result.fullRunEquivalentCycles)
                        : 0.0);
        if (result.pruneStats.prunedStatic +
                result.pruneStats.prunedEquiv >
            0) {
            std::printf("pruning: %llu simulated, %llu pruned static, "
                        "%llu pruned equivalent\n",
                        static_cast<unsigned long long>(
                            result.pruneStats.simulated),
                        static_cast<unsigned long long>(
                            result.pruneStats.prunedStatic),
                        static_cast<unsigned long long>(
                            result.pruneStats.prunedEquiv));
        }
        return 0;
    } catch (const dfi::FatalError &err) {
        die(err.what());
    }
}

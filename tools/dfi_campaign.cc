/**
 * @file
 * dfi-campaign: command-line front end for the injection framework.
 *
 * Runs a full campaign (golden run, mask generation, injections,
 * classification) from flags, mirroring how the paper's tools were
 * driven in batch across workstations.  Masks can be exported and
 * replayed so campaigns are shardable and reproducible.
 *
 * Examples:
 *   dfi-campaign --core marss-x86 --benchmark fft --component l1d \
 *                --injections 500
 *   dfi-campaign --core gem5-arm --benchmark sha --component lsq \
 *                --confidence 0.99 --margin 0.05
 *   dfi-campaign --list
 *   dfi-campaign --core gem5-x86 --benchmark qsort --component l1i \
 *                --fault-type permanent --injections 200 \
 *                --save-masks masks.txt --crash-as-assert
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "common/logging.hh"
#include "common/parse_num.hh"
#include "common/stats.hh"
#include "inject/campaign.hh"
#include "inject/executor.hh"
#include "inject/mask_gen.hh"
#include "inject/parser.hh"
#include "inject/target.hh"
#include "prog/benchmark.hh"
#include "uarch/core_config.hh"

using namespace dfi;
using namespace dfi::inject;

namespace
{

void
usage()
{
    std::puts(
        "usage: dfi-campaign [options]\n"
        "\n"
        "campaign selection:\n"
        "  --core NAME          marss-x86 | gem5-x86 | gem5-arm\n"
        "  --benchmark NAME     one of the ten workloads (or 'micro')\n"
        "  --component NAME     injection target (see --list)\n"
        "  --scale N            workload input scale (default 1)\n"
        "\n"
        "fault selection:\n"
        "  --injections N       number of runs (default: derive from\n"
        "                       --confidence/--margin)\n"
        "  --confidence P       sampling confidence (default 0.99)\n"
        "  --margin E           sampling error margin (default 0.03)\n"
        "  --fault-type T       transient | intermittent | permanent\n"
        "  --population P       single | double-adjacent |\n"
        "                       double-random | multi-structure\n"
        "  --seed N             campaign seed\n"
        "\n"
        "execution:\n"
        "  --jobs N             worker threads (default: hardware\n"
        "                       concurrency; results are bit-identical\n"
        "                       for every N)\n"
        "  --timeout-factor F   run bound vs golden cycles (default 3)\n"
        "  --cache-scale F      cache capacity scale (default 0.0625)\n"
        "  --no-early-stop      disable both early-stop optimizations\n"
        "  --no-checkpoints     always start runs from reset\n"
        "  --checkpoints N      target live checkpoint count\n"
        "                       (default 6)\n"
        "  --checkpoint-budget MB\n"
        "                       checkpoint memory budget in MiB\n"
        "                       (default 256; 0 = unlimited)\n"
        "\n"
        "output:\n"
        "  --telemetry-out BASE write BASE.jsonl (per-run records)\n"
        "                       and BASE.summary.json; byte-identical\n"
        "                       for every --jobs value\n"
        "  --telemetry-timing   record real wall-clock micros and the\n"
        "                       job count in the telemetry (marks the\n"
        "                       volatile fields; off by default)\n"
        "  --save-masks FILE    write the generated masks repository\n"
        "  --crash-as-assert    regroup simulator crashes under Assert\n"
        "  --no-due-split       do not annotate true/false DUE\n"
        "  --verbose            per-run progress\n"
        "  --list               list cores, benchmarks, components\n");
}

[[noreturn]] void
die(const std::string &message)
{
    std::fprintf(stderr, "dfi-campaign: %s\n", message.c_str());
    std::exit(2);
}

const char *
need(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        die(std::string("missing value for ") + argv[i]);
    return argv[++i];
}

/**
 * Strictly-parsed numeric flag values: trailing garbage or a
 * non-number dies naming the flag instead of silently becoming 0.
 */
std::uint64_t
needUnsigned(int argc, char **argv, int &i,
             std::uint64_t max = std::numeric_limits<
                 std::uint64_t>::max())
{
    const std::string flag = argv[i];
    const std::string text = need(argc, argv, i);
    std::uint64_t value = 0;
    if (!dfi::parseUnsigned(text, value, max)) {
        die("invalid value '" + text + "' for " + flag +
            " (expected an unsigned integer)");
    }
    return value;
}

double
needDouble(int argc, char **argv, int &i)
{
    const std::string flag = argv[i];
    const std::string text = need(argc, argv, i);
    double value = 0.0;
    if (!dfi::parseDouble(text, value)) {
        die("invalid value '" + text + "' for " + flag +
            " (expected a number)");
    }
    return value;
}

} // namespace

int
main(int argc, char **argv)
{
    CampaignConfig cfg;
    cfg.numInjections = 0;
    cfg.jobs = 0; // batch front end: all hardware threads by default
    ParserConfig parser_cfg;
    std::string save_masks;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list") {
            std::puts("cores:");
            for (const auto &name : uarch::coreConfigNames())
                std::printf("  %s\n", name.c_str());
            std::puts("benchmarks:");
            for (const auto &name : prog::benchmarkNames())
                std::printf("  %s\n", name.c_str());
            std::puts("  micro (test workload)");
            std::puts("components:");
            for (const auto &name : componentNames())
                std::printf("  %s\n", name.c_str());
            return 0;
        } else if (arg == "--core") {
            cfg.coreName = need(argc, argv, i);
        } else if (arg == "--benchmark") {
            cfg.benchmark = need(argc, argv, i);
        } else if (arg == "--component") {
            cfg.component = need(argc, argv, i);
        } else if (arg == "--scale") {
            cfg.scale = static_cast<std::uint32_t>(needUnsigned(
                argc, argv, i,
                std::numeric_limits<std::uint32_t>::max()));
        } else if (arg == "--injections") {
            cfg.numInjections = needUnsigned(argc, argv, i);
        } else if (arg == "--confidence") {
            cfg.confidence = needDouble(argc, argv, i);
        } else if (arg == "--margin") {
            cfg.margin = needDouble(argc, argv, i);
        } else if (arg == "--fault-type") {
            const std::string type = need(argc, argv, i);
            if (type == "transient")
                cfg.faultType = FaultType::Transient;
            else if (type == "intermittent")
                cfg.faultType = FaultType::Intermittent;
            else if (type == "permanent")
                cfg.faultType = FaultType::Permanent;
            else
                die("unknown fault type '" + type + "'");
        } else if (arg == "--population") {
            const std::string pop = need(argc, argv, i);
            if (pop == "single")
                cfg.population = Population::SingleBit;
            else if (pop == "double-adjacent")
                cfg.population = Population::DoubleAdjacent;
            else if (pop == "double-random")
                cfg.population = Population::DoubleRandom;
            else if (pop == "multi-structure")
                cfg.population = Population::MultiStructure;
            else
                die("unknown population '" + pop + "'");
        } else if (arg == "--seed") {
            cfg.seed = needUnsigned(argc, argv, i);
        } else if (arg == "--jobs") {
            cfg.jobs = static_cast<std::uint32_t>(needUnsigned(
                argc, argv, i,
                std::numeric_limits<std::uint32_t>::max()));
        } else if (arg == "--timeout-factor") {
            cfg.timeoutFactor = needDouble(argc, argv, i);
        } else if (arg == "--cache-scale") {
            cfg.cacheScale = needDouble(argc, argv, i);
        } else if (arg == "--no-early-stop") {
            cfg.earlyStopInvalidEntry = false;
            cfg.earlyStopOverwrite = false;
        } else if (arg == "--no-checkpoints") {
            cfg.useCheckpoints = false;
        } else if (arg == "--checkpoints") {
            cfg.checkpointCount = static_cast<std::uint32_t>(
                needUnsigned(argc, argv, i,
                             std::numeric_limits<
                                 std::uint32_t>::max()));
        } else if (arg == "--checkpoint-budget") {
            cfg.checkpointMemBudgetMB = needUnsigned(argc, argv, i);
        } else if (arg == "--telemetry-out") {
            cfg.telemetryOut = need(argc, argv, i);
        } else if (arg == "--telemetry-timing") {
            cfg.telemetryTiming = true;
        } else if (arg == "--save-masks") {
            save_masks = need(argc, argv, i);
        } else if (arg == "--crash-as-assert") {
            parser_cfg.simulatorCrashAsAssert = true;
        } else if (arg == "--no-due-split") {
            parser_cfg.splitDue = false;
        } else if (arg == "--verbose") {
            verbose = true;
        } else {
            die("unknown option '" + arg + "' (try --help)");
        }
    }

    try {
        InjectionCampaign campaign(cfg);
        const auto &golden = campaign.golden();
        std::fprintf(stderr,
                     "golden: %llu cycles, %llu instructions, %zu "
                     "output bytes\n",
                     static_cast<unsigned long long>(golden.cycles),
                     static_cast<unsigned long long>(
                         golden.instructions),
                     golden.output.size());
        std::fprintf(stderr, "executing on %u worker thread%s\n",
                     resolveJobs(cfg.jobs),
                     resolveJobs(cfg.jobs) == 1 ? "" : "s");

        InjectionCampaign::Progress progress;
        if (verbose) {
            progress = [](std::uint64_t done, std::uint64_t total) {
                if (done % 50 == 0 || done == total) {
                    std::fprintf(stderr, "  %llu/%llu runs\n",
                                 static_cast<unsigned long long>(done),
                                 static_cast<unsigned long long>(
                                     total));
                }
            };
        }
        const CampaignResult result = campaign.run(progress);

        if (!save_masks.empty()) {
            saveMasks(save_masks, result.masks);
            std::fprintf(stderr, "masks written to %s\n",
                         save_masks.c_str());
        }
        if (!cfg.telemetryOut.empty()) {
            std::fprintf(stderr,
                         "telemetry written to %s.jsonl and "
                         "%s.summary.json\n",
                         cfg.telemetryOut.c_str(),
                         cfg.telemetryOut.c_str());
        }

        Parser parser(parser_cfg);
        const ClassCounts counts = result.classify(parser);

        TextTable table;
        table.header({"class", "runs", "percent"});
        for (std::size_t c = 0; c < kNumOutcomeClasses; ++c) {
            const auto cls = static_cast<OutcomeClass>(c);
            table.row({outcomeClassName(cls),
                       std::to_string(counts.get(cls)),
                       formatFixed(counts.percent(cls), 2) + "%"});
        }
        std::printf("campaign: %s / %s / %s / %s\n", cfg.coreName.c_str(),
                    cfg.benchmark.c_str(), cfg.component.c_str(),
                    faultTypeName(cfg.faultType).c_str());
        std::printf("%s", table.render().c_str());
        std::printf("vulnerability (non-masked): %.2f%%\n",
                    counts.vulnerability());
        std::printf("campaign cycles: %llu simulated (%.1f%% of the "
                    "unoptimized equivalent)\n",
                    static_cast<unsigned long long>(
                        result.simulatedFaultyCycles),
                    result.fullRunEquivalentCycles > 0
                        ? 100.0 *
                              static_cast<double>(
                                  result.simulatedFaultyCycles) /
                              static_cast<double>(
                                  result.fullRunEquivalentCycles)
                        : 0.0);
        return 0;
    } catch (const dfi::FatalError &err) {
        die(err.what());
    }
}

/**
 * @file
 * dfi-diff: differential comparison of campaign telemetry artifacts.
 *
 * The paper's methodology lives or dies on comparing logged runs
 * across injectors and environments; dfi-diff is the command-line
 * face of that comparison for the machine-readable artifacts
 * produced by `dfi-campaign --telemetry-out` (see
 * inject/telemetry.hh).
 *
 * Modes:
 *   --exact          field-by-field identity, ignoring the declared
 *                    volatile fields (wall_us, jobs).  Use for
 *                    same-seed reproducibility checks — this is what
 *                    CI runs against results/golden/.
 *   --tolerance P    per-class outcome percentages must agree within
 *                    P percentage points.  Use for cross-environment
 *                    or cross-seed statistical comparison.
 *
 * Exit codes: 0 = equal, 1 = drift, 2 = malformed input or usage.
 *
 * Examples:
 *   dfi-diff --exact results/golden/smoke_marss-x86.jsonl run.jsonl
 *   dfi-diff --tolerance 2.5 a.summary.json b.summary.json
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/parse_num.hh"
#include "common/version.hh"
#include "inject/telemetry.hh"

using namespace dfi::inject;
namespace cli = dfi::cli;

int
main(int argc, char **argv)
{
    DiffOptions options;
    std::vector<std::string> paths;

    cli::FlagSet flags("dfi-diff",
                       "[--exact | --tolerance PCT] FILE_A FILE_B");
    flags.flag("--exact",
               "require identity of every non-volatile\n"
               "field (default)",
               [&options] { options.exact = true; });
    flags.custom("--tolerance", "PCT",
                 "require per-class outcome percentages to\n"
                 "agree within PCT percentage points",
                 [&options](const std::string &text,
                            std::string &error) {
                     double tolerance = 0.0;
                     if (!dfi::parseDouble(text, tolerance)) {
                         error = "expected a number";
                         return false;
                     }
                     options.exact = false;
                     options.tolerancePercent = tolerance;
                     return true;
                 });
    flags.positionals("FILE_A FILE_B",
                      "two telemetry artifacts of the same kind\n"
                      "(JSONL run streams or summary JSON documents)",
                      &paths);

    std::string parse_error;
    switch (flags.parse(argc, argv, parse_error)) {
      case cli::ParseResult::Help:
        std::fputs(flags.usage().c_str(), stdout);
        std::puts("\nexit codes: 0 equal, 1 drift, 2 malformed "
                  "input / usage");
        return 0;
      case cli::ParseResult::Version:
        std::puts(dfi::versionString().c_str());
        return 0;
      case cli::ParseResult::Error:
        std::fprintf(stderr, "dfi-diff: %s\n", parse_error.c_str());
        return 2;
      case cli::ParseResult::Ok:
        break;
    }
    if (paths.size() != 2) {
        std::fprintf(stderr,
                     "dfi-diff: expected exactly two files (try "
                     "--help)\n");
        return 2;
    }

    std::string report;
    const DiffOutcome outcome =
        diffTelemetryFiles(paths[0], paths[1], options, report);
    if (!report.empty())
        std::fputs(report.c_str(), stderr);
    switch (outcome) {
      case DiffOutcome::Equal:
        std::printf("equal: %s %s\n", paths[0].c_str(),
                    paths[1].c_str());
        break;
      case DiffOutcome::Drift:
        std::fprintf(stderr, "drift: %s vs %s\n", paths[0].c_str(),
                     paths[1].c_str());
        break;
      case DiffOutcome::Malformed:
        break;
    }
    return static_cast<int>(outcome);
}

/**
 * @file
 * dfi-diff: differential comparison of campaign telemetry artifacts.
 *
 * The paper's methodology lives or dies on comparing logged runs
 * across injectors and environments; dfi-diff is the command-line
 * face of that comparison for the machine-readable artifacts
 * produced by `dfi-campaign --telemetry-out` (see
 * inject/telemetry.hh).
 *
 * Modes:
 *   --exact          field-by-field identity, ignoring the declared
 *                    volatile fields (wall_us, jobs).  Use for
 *                    same-seed reproducibility checks — this is what
 *                    CI runs against results/golden/.
 *   --tolerance P    per-class outcome percentages must agree within
 *                    P percentage points.  Use for cross-environment
 *                    or cross-seed statistical comparison.
 *
 * Exit codes: 0 = equal, 1 = drift, 2 = malformed input or usage.
 *
 * Examples:
 *   dfi-diff --exact results/golden/smoke_marss-x86.jsonl run.jsonl
 *   dfi-diff --tolerance 2.5 a.summary.json b.summary.json
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/parse_num.hh"
#include "inject/telemetry.hh"

using namespace dfi::inject;

namespace
{

void
usage()
{
    std::puts(
        "usage: dfi-diff [--exact | --tolerance PCT] FILE_A FILE_B\n"
        "\n"
        "Compares two telemetry artifacts of the same kind (JSONL run\n"
        "streams or summary JSON documents).\n"
        "\n"
        "  --exact          require identity of every non-volatile\n"
        "                   field (default)\n"
        "  --tolerance PCT  require per-class outcome percentages to\n"
        "                   agree within PCT percentage points\n"
        "\n"
        "exit codes: 0 equal, 1 drift, 2 malformed input / usage");
}

} // namespace

int
main(int argc, char **argv)
{
    DiffOptions options;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--exact") {
            options.exact = true;
        } else if (arg == "--tolerance") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "dfi-diff: missing value for "
                             "--tolerance\n");
                return 2;
            }
            const std::string text = argv[++i];
            double tolerance = 0.0;
            if (!dfi::parseDouble(text, tolerance)) {
                std::fprintf(stderr,
                             "dfi-diff: invalid value '%s' for "
                             "--tolerance (expected a number)\n",
                             text.c_str());
                return 2;
            }
            options.exact = false;
            options.tolerancePercent = tolerance;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "dfi-diff: unknown option '%s' (try "
                         "--help)\n",
                         arg.c_str());
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 2) {
        std::fprintf(stderr,
                     "dfi-diff: expected exactly two files (try "
                     "--help)\n");
        return 2;
    }

    std::string report;
    const DiffOutcome outcome =
        diffTelemetryFiles(paths[0], paths[1], options, report);
    if (!report.empty())
        std::fputs(report.c_str(), stderr);
    switch (outcome) {
      case DiffOutcome::Equal:
        std::printf("equal: %s %s\n", paths[0].c_str(),
                    paths[1].c_str());
        break;
      case DiffOutcome::Drift:
        std::fprintf(stderr, "drift: %s vs %s\n", paths[0].c_str(),
                     paths[1].c_str());
        break;
      case DiffOutcome::Malformed:
        break;
    }
    return static_cast<int>(outcome);
}

/**
 * @file
 * dfi-merge: recombine shard telemetry streams into the unsharded
 * campaign artifacts.
 *
 * The paper parallelized its campaigns across ~10 workstations and
 * pooled the per-machine logs into one repository; dfi-merge is that
 * pooling step for `dfi-campaign --shard I/N` telemetry.  Given the
 * N shard run streams it writes `<out>.jsonl` and
 * `<out>.summary.json` byte-identical to what the unsharded campaign
 * would have written (verify with `dfi-diff --exact`), refusing when
 * the shards disagree on schema/config/golden/run count, overlap, or
 * leave runs uncovered.  See inject/merge.hh for the invariants.
 *
 * Exit codes: 0 = merged, 2 = refused (incompatible or incomplete
 * shard set, unreadable input, usage).
 *
 * Example:
 *   dfi-campaign ... --shard 0/2 --telemetry-out s0   # machine A
 *   dfi-campaign ... --shard 1/2 --telemetry-out s1   # machine B
 *   dfi-merge --out run s0.jsonl s1.jsonl
 *   dfi-diff --exact results/golden/smoke_gem5-x86.jsonl run.jsonl
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/version.hh"
#include "inject/merge.hh"

using namespace dfi::inject;
namespace cli = dfi::cli;

int
main(int argc, char **argv)
{
    std::string out_base;
    std::vector<std::string> paths;

    cli::FlagSet flags("dfi-merge", "--out BASE SHARD.jsonl...");
    flags.text("--out", "BASE",
               "write the merged BASE.jsonl and\n"
               "BASE.summary.json",
               &out_base);
    flags.positionals("SHARD.jsonl...",
                      "the shard run streams to merge (any order)",
                      &paths);

    std::string parse_error;
    switch (flags.parse(argc, argv, parse_error)) {
      case cli::ParseResult::Help:
        std::fputs(flags.usage().c_str(), stdout);
        std::puts("\nexit codes: 0 merged, 2 refused");
        return 0;
      case cli::ParseResult::Version:
        std::puts(dfi::versionString().c_str());
        return 0;
      case cli::ParseResult::Error:
        std::fprintf(stderr, "dfi-merge: %s\n", parse_error.c_str());
        return 2;
      case cli::ParseResult::Ok:
        break;
    }
    if (out_base.empty()) {
        std::fprintf(stderr,
                     "dfi-merge: --out BASE is required (try "
                     "--help)\n");
        return 2;
    }
    if (paths.empty()) {
        std::fprintf(stderr,
                     "dfi-merge: no shard streams given (try "
                     "--help)\n");
        return 2;
    }

    MergeResult merged;
    std::string error;
    if (!mergeTelemetryFiles(paths, out_base, merged, error)) {
        std::fprintf(stderr, "dfi-merge: %s\n", error.c_str());
        return 2;
    }
    for (const std::string &warning : merged.warnings)
        std::fprintf(stderr, "dfi-merge: warning: %s\n",
                     warning.c_str());
    std::printf("merged %llu runs from %zu shard stream%s into "
                "%s.jsonl and %s.summary.json\n",
                static_cast<unsigned long long>(merged.runs),
                paths.size(), paths.size() == 1 ? "" : "s",
                out_base.c_str(), out_base.c_str());
    return 0;
}

/**
 * @file
 * dfi-serve: persistent campaign service daemon — and its client.
 *
 * Server mode (`--socket`) listens on a Unix-domain socket and
 * serves campaign requests from a long-lived process, so the golden
 * run and checkpoint store of a repeated (program, core, config) are
 * simulated once and reused from a content-addressed warm cache
 * (inject/service.hh).  Requests admit FIFO with per-client quotas
 * onto `--workers` concurrent execution slots; `--cache-dir`
 * persists prepared state and memoized responses across restarts;
 * SIGTERM/SIGINT drain gracefully (finish admitted requests, refuse
 * new ones, then exit).  A socket path already served by a live
 * daemon is refused, never hijacked.
 *
 * Client mode (`--connect`) submits one request and exits: campaign
 * flags mirror dfi-campaign, progress streams to stderr, and
 * `--telemetry-out BASE` writes the returned artifacts to
 * BASE.jsonl/BASE.summary.json — byte-identical to what a local
 * `dfi-campaign --telemetry-out` run would produce, which is what
 * lets CI `dfi-diff --exact` served output against results/golden/.
 *
 * Protocol: one request per connection, newline-delimited JSON both
 * ways (`dfi-request` in; zero or more `dfi-progress` lines and one
 * terminal `dfi-response` out).  See DESIGN.md §11.
 *
 * Robustness (DESIGN.md §12): the server never trusts a peer to make
 * progress — reads carry an idle timeout (`--idle-timeout-ms`) and
 * stream writes a bound (`--stream-timeout-ms`), so a stalled client
 * costs a dropped stream, never a wedged worker slot.  The client
 * retries retryable failures (`--retries`, `--backoff-ms`,
 * `--deadline-ms`) with deterministic exponential backoff and exits
 * 0 on success, 1 on a hard error, 3 with retries exhausted.  Both
 * halves honour `--failpoints` / DFI_FAILPOINTS for deterministic
 * fault injection into their own I/O paths (common/failpoint.hh).
 *
 * Examples:
 *   dfi-serve --socket /tmp/dfi.sock --cache-budget 1024
 *   dfi-serve --connect /tmp/dfi.sock --core gem5-arm \
 *             --benchmark micro --component int_regfile \
 *             --injections 24 --seed 7 --telemetry-out smoke
 *   dfi-serve --connect /tmp/dfi.sock --stats
 *   dfi-serve --connect /tmp/dfi.sock --shutdown
 */

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hh"
#include "common/failpoint.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/netio.hh"
#include "common/rng.hh"
#include "common/version.hh"
#include "inject/service.hh"

using namespace dfi;
using namespace dfi::inject;

namespace
{

[[noreturn]] void
die(const std::string &message)
{
    std::fprintf(stderr, "dfi-serve: %s\n", message.c_str());
    std::exit(2);
}

/** Upper bound on one protocol line (the runs artifact rides in). */
constexpr std::size_t kMaxLineBytes = 256ull << 20;

volatile std::sig_atomic_t g_signalled = 0;

void
onSignal(int)
{
    g_signalled = 1;
}

/**
 * True when a server is accepting connections at `path` right now.
 * Distinguishes a *stale* socket file (previous daemon crashed
 * without unlinking — safe to replace) from a *live* one (another
 * daemon is serving — replacing it would silently hijack its
 * clients).
 */
bool
socketIsLive(const sockaddr_un &addr)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    const bool live =
        ::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) == 0;
    ::close(fd);
    return live;
}

/** Bind + listen on a fresh Unix-domain socket at `path`. */
int
listenOn(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        die("socket path too long: " + path);
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);

    struct stat st{};
    if (::lstat(path.c_str(), &st) == 0) {
        if (!S_ISSOCK(st.st_mode))
            die(path + " exists and is not a socket; refusing to "
                       "replace it");
        if (socketIsLive(addr))
            die(path + " is served by a live daemon; refusing to "
                       "replace it");
        // A socket file nobody answers on is debris from a daemon
        // that died without cleanup; replace it.
        ::unlink(path.c_str());
    }

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        die("socket(): " + std::string(std::strerror(errno)));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        die("bind(" + path + "): " +
            std::string(std::strerror(errno)));
    if (::listen(fd, 64) != 0)
        die("listen(" + path + "): " +
            std::string(std::strerror(errno)));
    return fd;
}

/** Connect to the server; -1 with errno preserved on failure. */
int
connectTo(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        die("socket path too long: " + path);
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        return -1;
    }
    return fd;
}

/** Joins detached connection handlers at shutdown. */
class ConnectionTracker
{
  public:
    void
    enter()
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++active_;
    }

    void
    leave()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            --active_;
        }
        cv_.notify_all();
    }

    void
    waitIdle()
    {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return active_ == 0; });
    }

  private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::uint64_t active_ = 0;
};

struct ServerState
{
    CampaignService *service = nullptr;
    std::atomic<bool> shutdownRequested{false};

    /** Poll bound on waiting for a request line (-1: forever). */
    int idleTimeoutMs = -1;

    /** Poll bound on progress/response writes (-1: forever). */
    int streamTimeoutMs = -1;

    /** SO_SNDBUF for accepted sockets (0: OS default). */
    std::uint64_t sndbufBytes = 0;

    /** Connections dropped for never sending a request in time. */
    std::atomic<std::uint64_t> idleTimeouts{0};

    /** Connections whose progress/response stream stalled or died. */
    std::atomic<std::uint64_t> droppedStreams{0};
};

void
handleConnection(int fd, ServerState *state)
{
    std::string line;
    ServiceResponse response;
    netio::LineReader reader(fd, kMaxLineBytes,
                             state->idleTimeoutMs);
    switch (reader.next(line)) {
      case netio::ReadResult::Line:
        break;
      case netio::ReadResult::TooLong:
        // The peer is still there and still sending; tell it what
        // went wrong instead of silently dropping the connection.
        response.error = "request line exceeds " +
                         std::to_string(kMaxLineBytes) + " bytes";
        netio::writeLine(fd, encodeServiceResponse(response),
                         state->streamTimeoutMs);
        ::close(fd);
        return;
      case netio::ReadResult::Timeout:
        // A connection that never produces a request is not traffic,
        // it is a held file descriptor; drop it and account for it.
        state->idleTimeouts.fetch_add(1);
        ::close(fd);
        return;
      case netio::ReadResult::Eof:
      case netio::ReadResult::Error:
        // Nobody left to answer.
        ::close(fd);
        return;
    }

    json::Value parsed;
    ServiceRequest request;
    std::string error;
    if (!json::parse(line, parsed, error) ||
        !decodeServiceRequest(parsed, request, error)) {
        response.error = error;
        netio::writeLine(fd, encodeServiceResponse(response),
                         state->streamTimeoutMs);
        ::close(fd);
        return;
    }

    // Tracks delivery across progress and the terminal response so a
    // stalled or vanished peer is counted once per connection.
    std::atomic<bool> peer_alive{true};

    response.op = request.op;
    if (request.op == "ping") {
        response.ok = true;
        response.extra = json::Value::string(versionString());
    } else if (request.op == "stats") {
        response.ok = true;
        json::Value extra = state->service->statsJson();
        json::Value server = json::Value::object();
        server.set("idle_timeouts",
                   json::Value::unsignedInt(
                       state->idleTimeouts.load()));
        server.set("dropped_streams",
                   json::Value::unsignedInt(
                       state->droppedStreams.load()));
        extra.set("server", std::move(server));
        extra.set("failpoints", failpoint::statsJson());
        response.extra = std::move(extra);
    } else if (request.op == "shutdown") {
        response.ok = true;
        state->shutdownRequested.store(true);
    } else {
        // Campaign: stream throttled progress events, then the
        // terminal response.  Progress writes may race only with
        // each other, and the reporter serialises those; a stalled
        // or vanished client just loses its events — the bounded
        // write keeps the worker slot moving, and the campaign
        // completes and warms the cache either way.
        const int stream_timeout = state->streamTimeoutMs;
        const auto progress = [fd, &peer_alive, stream_timeout](
                                  std::uint64_t done,
                                  std::uint64_t total) {
            const std::uint64_t step =
                total > 25 ? total / 25 : std::uint64_t{1};
            if (done != total && done % step != 0)
                return;
            if (peer_alive.load() &&
                !netio::writeLine(fd,
                                  encodeServiceProgress(done, total),
                                  stream_timeout))
                peer_alive.store(false);
        };
        response = state->service->executeQueued(request, progress);
    }
    const bool delivered =
        peer_alive.load() &&
        netio::writeLine(fd, encodeServiceResponse(response),
                         state->streamTimeoutMs);
    if (!delivered)
        state->droppedStreams.fetch_add(1);
    ::close(fd);
}

int
serveMain(const std::string &socket_path,
          const CampaignService::Options &options,
          int idle_timeout_ms, int stream_timeout_ms,
          std::uint64_t sndbuf_bytes)
{
    std::signal(SIGPIPE, SIG_IGN);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    CampaignService service(options);
    ServerState state;
    state.service = &service;
    state.idleTimeoutMs = idle_timeout_ms;
    state.streamTimeoutMs = stream_timeout_ms;
    state.sndbufBytes = sndbuf_bytes;
    ConnectionTracker tracker;

    const int listen_fd = listenOn(socket_path);
    std::fprintf(stderr,
                 "dfi-serve: listening on %s (cache budget %llu MiB, "
                 "quota %u/client, queue %u, workers %u%s%s)\n",
                 socket_path.c_str(),
                 static_cast<unsigned long long>(
                     options.cacheBudgetBytes >> 20),
                 options.perClientInFlight, options.queueCapacity,
                 options.workers,
                 options.cacheDir.empty() ? "" : ", disk cache ",
                 options.cacheDir.c_str());

    while (g_signalled == 0 && !state.shutdownRequested.load()) {
        pollfd pfd{};
        pfd.fd = listen_fd;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, 250);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            die("poll(): " + std::string(std::strerror(errno)));
        }
        if (ready == 0)
            continue;
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0)
            continue;
        // Non-blocking is what makes the write bound real: a
        // blocking write() to a stalled peer sleeps in the kernel
        // where no poll() timeout can reach it.
        const int fl = ::fcntl(fd, F_GETFL, 0);
        if (fl >= 0)
            ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
        if (state.sndbufBytes > 0) {
            const int sndbuf = static_cast<int>(std::min<
                std::uint64_t>(state.sndbufBytes, 1u << 30));
            ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sndbuf,
                         sizeof sndbuf);
        }
        tracker.enter();
        try {
            std::thread([fd, &state, &tracker] {
                handleConnection(fd, &state);
                tracker.leave();
            }).detach();
        } catch (const std::exception &err) {
            // Thread creation failed (EAGAIN under load): the enter()
            // above has no matching leave() on this path, and an
            // unbalanced counter would hang waitIdle() at shutdown
            // forever.  Balance it and fail the connection cleanly.
            tracker.leave();
            ServiceResponse response;
            response.retryable = true;
            response.error = std::string("cannot spawn a handler "
                                         "thread: ") +
                             err.what();
            netio::writeLine(fd, encodeServiceResponse(response),
                             state.streamTimeoutMs);
            ::close(fd);
        }
    }

    std::fprintf(stderr, "dfi-serve: draining...\n");
    ::close(listen_fd);
    service.drain();   // admitted campaigns finish
    tracker.waitIdle(); // responses flush before teardown
    ::unlink(socket_path.c_str());
    std::fprintf(stderr, "dfi-serve: drained, exiting\n");
    return 0;
}

/** Write one response artifact; die() on I/O failure. */
void
writeArtifact(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        die("cannot write " + path);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out)
        die("short write to " + path);
}

/**
 * How one request attempt ended.  The split decides the retry loop:
 * transport failures and server backpressure are Retry (the world
 * may have improved by the next attempt), protocol violations and
 * non-retryable server errors are Hard (a retry would only repeat
 * them).
 */
enum class Attempt
{
    Ok,
    Hard,
    Retry,
};

/** True for connect() errnos worth another attempt. */
bool
retryableConnectErrno(int err)
{
    // ECONNREFUSED/ENOENT: the daemon is (re)starting and has not
    // bound its socket yet.  The rest are transient kernel or load
    // conditions.
    return err == ECONNREFUSED || err == ENOENT || err == EAGAIN ||
           err == ETIMEDOUT || err == ECONNRESET;
}

/**
 * Submit the request once and stream the reply.  On Ok the response
 * has been fully handled (artifacts written, summary printed).  On
 * Hard/Retry `why` says what went wrong.
 */
Attempt
attemptRequest(const std::string &socket_path,
               const ServiceRequest &request,
               const std::string &telemetry_out, std::string &why)
{
    const int fd = connectTo(socket_path);
    if (fd < 0) {
        const int err = errno;
        why = "connect(" + socket_path + "): " +
              std::string(std::strerror(err));
        return retryableConnectErrno(err) ? Attempt::Retry
                                          : Attempt::Hard;
    }

    // Chaos seam: delay or fail the request send.
    if (failpoint::check("client.send").kind ==
        failpoint::Action::Kind::Error) {
        ::close(fd);
        why = "request write failed (client.send failpoint)";
        return Attempt::Retry;
    }
    if (!netio::writeAll(fd,
                         encodeServiceRequest(request).dump() +
                             "\n")) {
        ::close(fd);
        why = "request write failed (server gone?)";
        return Attempt::Retry;
    }

    std::string line;
    ServiceResponse response;
    netio::LineReader reader(fd, kMaxLineBytes);
    bool have_response = false;
    while (!have_response) {
        // Chaos seam: stall the client between reads (the delay
        // action sleeps inside check()).
        failpoint::check("client.read");
        const netio::ReadResult got = reader.next(line);
        if (got == netio::ReadResult::Eof)
            break;
        if (got == netio::ReadResult::TooLong) {
            ::close(fd);
            why = "server line exceeds the protocol bound (" +
                  std::to_string(kMaxLineBytes) + " bytes)";
            return Attempt::Hard;
        }
        if (got == netio::ReadResult::Error) {
            ::close(fd);
            why = "read from server failed: " +
                  std::string(std::strerror(errno));
            return Attempt::Retry;
        }
        json::Value parsed;
        std::string error;
        if (!json::parse(line, parsed, error)) {
            ::close(fd);
            why = "malformed server line: " + error;
            return Attempt::Hard;
        }
        const json::Value *kind = parsed.find("kind");
        if (kind != nullptr &&
            kind->kind() == json::Kind::String &&
            kind->asString() == kServiceProgressKind) {
            const json::Value *done = parsed.find("done");
            const json::Value *total = parsed.find("total");
            const auto uintField = [](const json::Value *v) {
                return v != nullptr &&
                       v->kind() == json::Kind::Int &&
                       !v->isNegative();
            };
            if (!uintField(done) || !uintField(total)) {
                ::close(fd);
                why = "malformed server progress line";
                return Attempt::Hard;
            }
            std::fprintf(
                stderr, "  %llu/%llu runs\n",
                static_cast<unsigned long long>(done->asUint()),
                static_cast<unsigned long long>(total->asUint()));
            continue;
        }
        if (!decodeServiceResponse(parsed, response, error)) {
            ::close(fd);
            why = "malformed server response: " + error;
            return Attempt::Hard;
        }
        have_response = true;
    }
    ::close(fd);
    if (!have_response) {
        // A mid-stream disconnect: the server (or its stream bound)
        // dropped us.  The campaign still completed server-side and
        // warmed the cache, so a retry is cheap.
        why = "connection closed before a response arrived";
        return Attempt::Retry;
    }

    if (!response.ok) {
        why = "server error: " + response.error;
        return response.retryable ? Attempt::Retry : Attempt::Hard;
    }

    if (response.op == "ping") {
        std::printf("pong: %s\n", response.extra.asString().c_str());
        return Attempt::Ok;
    }
    if (response.op == "stats") {
        std::fputs(response.extra.dumpPretty().c_str(), stdout);
        return Attempt::Ok;
    }
    if (response.op == "shutdown") {
        std::puts("shutdown requested");
        return Attempt::Ok;
    }

    // Campaign: artifacts land wherever the client says, exactly as
    // a local dfi-campaign --telemetry-out run would write them.
    if (!telemetry_out.empty()) {
        writeArtifact(telemetry_out + ".jsonl",
                      response.telemetryRuns);
        writeArtifact(telemetry_out + ".summary.json",
                      response.telemetrySummary);
        std::fprintf(stderr,
                     "telemetry written to %s.jsonl and "
                     "%s.summary.json\n",
                     telemetry_out.c_str(), telemetry_out.c_str());
    }
    std::printf("cache_key: %s\n", response.cacheKey.c_str());
    std::printf("cache_hit: %s\n",
                response.cacheHit ? "true" : "false");
    std::printf("cache_source: %s\n", response.cacheSource.c_str());
    std::printf("runs: %llu\n", static_cast<unsigned long long>(
                                    response.runsTotal));
    std::printf("vulnerability (non-masked): %.2f%%\n",
                response.vulnerability);
    return Attempt::Ok;
}

/** Client retry policy (see DESIGN.md §12). */
struct RetryPolicy
{
    std::uint64_t retries = 0;    //!< extra attempts after the first
    std::uint64_t backoffMs = 100;
    std::uint64_t deadlineMs = 0; //!< total budget (0: none)
    std::uint64_t seed = 0;       //!< jitter stream (campaign seed)
};

int
clientMain(const std::string &socket_path,
           const ServiceRequest &request,
           const std::string &telemetry_out,
           const RetryPolicy &policy)
{
    std::signal(SIGPIPE, SIG_IGN);
    const auto start = std::chrono::steady_clock::now();
    const auto elapsedMs = [&start] {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count());
    };

    std::string why;
    for (std::uint64_t attempt = 0;; ++attempt) {
        switch (attemptRequest(socket_path, request, telemetry_out,
                               why)) {
          case Attempt::Ok:
            return 0;
          case Attempt::Hard:
            std::fprintf(stderr, "dfi-serve: %s\n", why.c_str());
            return 1;
          case Attempt::Retry:
            break;
        }
        if (attempt >= policy.retries) {
            std::fprintf(stderr,
                         "dfi-serve: %s (retries exhausted after "
                         "%llu attempt%s)\n",
                         why.c_str(),
                         static_cast<unsigned long long>(attempt +
                                                         1),
                         attempt == 0 ? "" : "s");
            return 3;
        }

        // Deterministic exponential backoff: the jitter stream is a
        // pure function of (seed, attempt), so a chaos schedule
        // replays the same wait sequence every run.
        std::uint64_t delay = policy.backoffMs;
        if (attempt < 63)
            delay = std::min<std::uint64_t>(
                policy.backoffMs << attempt, 30000);
        Rng jitter(policy.seed ^ (attempt + 1));
        delay = static_cast<std::uint64_t>(
            static_cast<double>(delay) *
            (0.5 + jitter.nextDouble() / 2.0));
        if (policy.deadlineMs != 0 &&
            elapsedMs() + delay >= policy.deadlineMs) {
            std::fprintf(stderr,
                         "dfi-serve: %s (deadline of %llu ms "
                         "exceeded)\n",
                         why.c_str(),
                         static_cast<unsigned long long>(
                             policy.deadlineMs));
            return 3;
        }
        std::fprintf(stderr,
                     "dfi-serve: %s; retrying in %llu ms\n",
                     why.c_str(),
                     static_cast<unsigned long long>(delay));
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay));
    }
}

bool
decodeFaultType(const std::string &text, FaultType &out,
                std::string &error)
{
    if (text == "transient")
        out = FaultType::Transient;
    else if (text == "intermittent")
        out = FaultType::Intermittent;
    else if (text == "permanent")
        out = FaultType::Permanent;
    else {
        error = "expected transient | intermittent | permanent";
        return false;
    }
    return true;
}

bool
decodePopulation(const std::string &text, Population &out,
                 std::string &error)
{
    if (text == "single")
        out = Population::SingleBit;
    else if (text == "double-adjacent")
        out = Population::DoubleAdjacent;
    else if (text == "double-random")
        out = Population::DoubleRandom;
    else if (text == "multi-structure")
        out = Population::MultiStructure;
    else {
        error = "expected single | double-adjacent | double-random | "
                "multi-structure";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    std::string connect_path;
    std::string telemetry_out;
    bool op_ping = false, op_stats = false, op_shutdown = false;
    std::uint64_t cache_budget_mb = 1024;
    std::uint64_t quota = 2, queue = 64, workers = 1;
    std::string cache_dir;
    std::uint64_t idle_timeout_ms = 30000;
    std::uint64_t stream_timeout_ms = 10000;
    std::uint64_t sndbuf_bytes = 0;
    std::string failpoints_spec;
    RetryPolicy retry;

    ServiceRequest request;
    CampaignConfig &cfg = request.config;
    std::uint64_t scale = cfg.scale;
    std::uint64_t checkpoint_count = cfg.checkpointCount;

    cli::FlagSet flags("dfi-serve", "--socket PATH | --connect PATH "
                                    "[options]");
    flags.section("server mode");
    flags.text("--socket", "PATH",
               "listen on this unix-domain socket\n"
               "(a stale socket file is replaced)",
               &socket_path);
    flags.uint64("--cache-budget", "MB",
                 "warm artifact cache LRU budget in MiB\n"
                 "(default 1024; 0 disables caching)",
                 &cache_budget_mb);
    flags.uint64("--quota", "N",
                 "in-flight requests per client\n(default 2)",
                 &quota, std::numeric_limits<std::uint32_t>::max());
    flags.uint64("--queue", "N",
                 "admitted requests across all clients\n"
                 "(default 64)",
                 &queue, std::numeric_limits<std::uint32_t>::max());
    flags.uint64("--workers", "N",
                 "campaigns executing simultaneously\n(default 1)",
                 &workers,
                 std::numeric_limits<std::uint32_t>::max());
    flags.text("--cache-dir", "DIR",
               "persist prepared state and memoized\n"
               "responses here across restarts",
               &cache_dir);
    flags.uint64("--idle-timeout-ms", "MS",
                 "drop a connection that sends no\n"
                 "request within MS (default 30000;\n"
                 "0 waits forever)",
                 &idle_timeout_ms);
    flags.uint64("--stream-timeout-ms", "MS",
                 "drop a progress/response stream that\n"
                 "accepts no bytes within MS (default\n"
                 "10000; 0 waits forever)",
                 &stream_timeout_ms);
    flags.uint64("--sndbuf", "BYTES",
                 "SO_SNDBUF for accepted sockets\n"
                 "(default 0: OS default; chaos tests\n"
                 "shrink it to stall streams early)",
                 &sndbuf_bytes);

    flags.section("client mode");
    flags.text("--connect", "PATH",
               "submit one request to the server at\nPATH and exit",
               &connect_path);
    flags.text("--client", "NAME",
               "client identity for the per-client\n"
               "quota (default 'anon')",
               &request.client);
    flags.flag("--ping", "check the server is alive", &op_ping);
    flags.flag("--stats", "print cache and queue statistics",
               &op_stats);
    flags.flag("--shutdown", "ask the server to drain and exit",
               &op_shutdown);
    flags.text("--telemetry-out", "BASE",
               "write the returned artifacts to\n"
               "BASE.jsonl + BASE.summary.json",
               &telemetry_out);
    flags.uint64("--retries", "N",
                 "retry a retryable failure up to N\n"
                 "times (default 0; exit 3 when\n"
                 "exhausted)",
                 &retry.retries);
    flags.uint64("--backoff-ms", "MS",
                 "base retry delay, doubled per attempt\n"
                 "with deterministic jitter (default\n"
                 "100, capped at 30000)",
                 &retry.backoffMs);
    flags.uint64("--deadline-ms", "MS",
                 "give up retrying once MS have passed\n"
                 "in total (default 0: no deadline)",
                 &retry.deadlineMs);

    flags.section("chaos testing (both modes)");
    flags.text("--failpoints", "SPEC",
               "arm deterministic failpoints, e.g.\n"
               "'cache.write=error@every:2;sock.read=\n"
               "eintr@nth:3' (overrides the\n"
               "DFI_FAILPOINTS environment variable)",
               &failpoints_spec);

    flags.section("campaign request (mirrors dfi-campaign)");
    flags.text("--core", "NAME", "marss-x86 | gem5-x86 | gem5-arm",
               &cfg.coreName);
    flags.text("--benchmark", "NAME",
               "one of the ten workloads (or 'micro')",
               &cfg.benchmark);
    flags.text("--component", "NAME", "injection target",
               &cfg.component);
    flags.uint64("--scale", "N", "workload input scale (default 1)",
                 &scale, std::numeric_limits<std::uint32_t>::max());
    flags.uint64("--injections", "N",
                 "number of runs (default: derive from\n"
                 "--confidence/--margin)",
                 &cfg.numInjections);
    flags.number("--confidence", "P",
                 "sampling confidence (default 0.99)",
                 &cfg.confidence);
    flags.number("--margin", "E",
                 "sampling error margin (default 0.03)", &cfg.margin);
    flags.custom("--fault-type", "T",
                 "transient | intermittent | permanent",
                 [&cfg](const std::string &text, std::string &error) {
                     return decodeFaultType(text, cfg.faultType,
                                            error);
                 });
    flags.custom("--population", "P",
                 "single | double-adjacent |\n"
                 "double-random | multi-structure",
                 [&cfg](const std::string &text, std::string &error) {
                     return decodePopulation(text, cfg.population,
                                             error);
                 });
    flags.uint64("--seed", "N", "campaign seed", &cfg.seed);
    flags.flag("--exhaustive",
               "enumerate every bit x cycle site of\nthe component",
               &cfg.exhaustive);
    flags.flag("--no-prune",
               "disable planning-time classification\n"
               "and fault-equivalence pruning",
               [&cfg] { cfg.prune = false; });
    flags.uint32("--jobs", "N",
                 "worker threads for the served campaign\n"
                 "(default 1; results are bit-identical\n"
                 "for every N)",
                 &cfg.jobs);
    flags.number("--timeout-factor", "F",
                 "run bound vs golden cycles (default 3)",
                 &cfg.timeoutFactor);
    flags.number("--cache-scale", "F",
                 "cache capacity scale (default 0.0625)",
                 &cfg.cacheScale);
    flags.flag("--no-early-stop",
               "disable both early-stop optimizations", [&cfg] {
                   cfg.earlyStopInvalidEntry = false;
                   cfg.earlyStopOverwrite = false;
               });
    flags.flag("--no-checkpoints", "always start runs from reset",
               [&cfg] { cfg.useCheckpoints = false; });
    flags.uint64("--checkpoints", "N",
                 "target live checkpoint count\n(default 6)",
                 &checkpoint_count,
                 std::numeric_limits<std::uint32_t>::max());
    flags.uint64("--checkpoint-budget", "MB",
                 "checkpoint memory budget in MiB\n"
                 "(default 256; 0 = unlimited)",
                 &cfg.checkpointMemBudgetMB);
    flags.flag("--telemetry-timing",
               "record wall-clock micros and the job\n"
               "count in the telemetry",
               &cfg.telemetryTiming);

    std::string parse_error;
    switch (flags.parse(argc, argv, parse_error)) {
      case cli::ParseResult::Help:
        std::fputs(flags.usage().c_str(), stdout);
        return 0;
      case cli::ParseResult::Version:
        std::puts(dfi::versionString().c_str());
        return 0;
      case cli::ParseResult::Error:
        die(parse_error);
      case cli::ParseResult::Ok:
        break;
    }
    cfg.scale = static_cast<std::uint32_t>(scale);
    cfg.checkpointCount = static_cast<std::uint32_t>(checkpoint_count);
    retry.seed = cfg.seed;

    // Arm the failpoint registry before any instrumented code runs.
    // The explicit flag wins over the environment so a chaos harness
    // can exercise one process of a pipeline without leaking the
    // schedule into the others.
    std::string failpoint_cfg = failpoints_spec;
    if (failpoint_cfg.empty()) {
        if (const char *env = std::getenv("DFI_FAILPOINTS"))
            failpoint_cfg = env;
    }
    if (!failpoint_cfg.empty()) {
        std::string failpoint_error;
        if (!failpoint::configure(failpoint_cfg, failpoint_error))
            die("--failpoints: " + failpoint_error);
    }

    if (!socket_path.empty() && !connect_path.empty())
        die("--socket (server) and --connect (client) are mutually "
            "exclusive");
    if (socket_path.empty() && connect_path.empty())
        die("one of --socket (server) or --connect (client) is "
            "required");

    if (!socket_path.empty()) {
        if (workers == 0)
            die("--workers must be at least 1");
        CampaignService::Options options;
        options.cacheBudgetBytes = cache_budget_mb << 20;
        options.perClientInFlight = static_cast<std::uint32_t>(quota);
        options.queueCapacity = static_cast<std::uint32_t>(queue);
        options.workers = static_cast<std::uint32_t>(workers);
        options.cacheDir = cache_dir;
        const auto pollMs = [](std::uint64_t ms) {
            if (ms == 0)
                return -1;
            return static_cast<int>(std::min<std::uint64_t>(
                ms, std::numeric_limits<int>::max()));
        };
        return serveMain(socket_path, options,
                         pollMs(idle_timeout_ms),
                         pollMs(stream_timeout_ms), sndbuf_bytes);
    }

    const int ops = (op_ping ? 1 : 0) + (op_stats ? 1 : 0) +
                    (op_shutdown ? 1 : 0);
    if (ops > 1)
        die("--ping, --stats and --shutdown are mutually exclusive");
    request.op = op_ping       ? "ping"
                 : op_stats    ? "stats"
                 : op_shutdown ? "shutdown"
                               : "campaign";
    return clientMain(connect_path, request, telemetry_out, retry);
}

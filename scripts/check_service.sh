#!/usr/bin/env bash
# Prove the campaign service serves byte-exact campaigns under
# concurrency and that its caches survive a daemon restart.
#
# Leg 1 — concurrent warm cache:
#   Starts a dfi-serve daemon with --workers 4, submits the three
#   golden smoke campaigns *concurrently* (cold round), then again
#   sequentially (warm round), and requires:
#
#   1. every cold response to report `cache_hit: false` and every
#      warm response `cache_hit: true` with `cache_source: memory`
#      (the second request adopted the cached golden run +
#      checkpoint store instead of re-simulating);
#   2. the client-written telemetry of BOTH rounds to be
#      `dfi-diff --exact`-equal AND byte-equal to the checked-in
#      baselines under results/golden/ — a served campaign, warm or
#      cold, concurrent or not, must be indistinguishable from a
#      local dfi-campaign run;
#   3. a second daemon started on the same socket to refuse to
#      replace the live one;
#   4. the daemon to drain and exit 0 on a shutdown request.
#
# Leg 2 — restart persistence:
#   Starts a daemon with --cache-dir, runs the campaigns, SIGTERMs
#   it, restarts it over the same directory, and requires:
#
#   5. the first daemon to drain and exit 0 on SIGTERM, leaving
#      prep_*.bin and resp_*.json spill files behind;
#   6. exact repeat requests against the restarted daemon to replay
#      the memoized response (`cache_source: response`) byte-equal
#      to the golden baselines;
#   7. a --no-prune variation to adopt the prepared state from disk
#      (`cache_source: disk`) and stay `dfi-diff --exact`-equal to
#      the golden baseline (pruned and unpruned artifacts differ in
#      bytes but never in outcomes).
#
# Usage:
#   scripts/check_service.sh [WORKDIR]
#
#   WORKDIR  scratch directory (default: a fresh mktemp -d)
#
# Environment:
#   DFI_SERVE  dfi-serve binary (default build/tools/...)
#   DFI_DIFF   dfi-diff binary  (default build/tools/...)
#
# Run from the repository root after building:
#   cmake -B build -S . && cmake --build build -j
set -euo pipefail
trap 'echo "check_service.sh: failed at line $LINENO: $BASH_COMMAND" >&2' ERR

cd "$(dirname "$0")/.."

WORKDIR="${1:-$(mktemp -d)}"
SERVE_BIN="${DFI_SERVE:-build/tools/dfi-serve}"
DIFF_BIN="${DFI_DIFF:-build/tools/dfi-diff}"
GOLDEN_DIR="results/golden"
SOCKET="$WORKDIR/dfi-serve.sock"
CACHE_DIR="$WORKDIR/cache"
CORES=(marss-x86 gem5-x86 gem5-arm)

for bin in "$SERVE_BIN" "$DIFF_BIN"; do
    if [[ ! -x "$bin" ]]; then
        echo "error: $bin not found or not executable." >&2
        echo "build first: cmake -B build -S . && cmake --build build -j" >&2
        exit 1
    fi
done

mkdir -p "$WORKDIR"

status=0
SERVER_PID=""
cleanup() {
    if [[ -n "$SERVER_PID" ]]; then
        kill "$SERVER_PID" 2> /dev/null || true
    fi
}
trap cleanup EXIT

# start_daemon LOG [extra flags...]: launch dfi-serve and wait for it
# with the retrying client itself — no sleep-polling; the ping keeps
# reconnecting with backoff until the daemon accepts.
start_daemon() {
    local log="$1"
    shift
    "$SERVE_BIN" --socket "$SOCKET" --workers 4 "$@" \
        2> "$WORKDIR/$log" &
    SERVER_PID=$!
    timeout 60 "$SERVE_BIN" --connect "$SOCKET" --ping \
        --retries 50 --backoff-ms 100 > /dev/null
}

# await_daemon LOG WHY: wait for the daemon to exit cleanly, with a
# kill -9 watchdog so a wedged drain fails the script instead of
# hanging it.  (kill -0 polling cannot detect a zombie child; wait
# can.)
await_daemon() {
    local log="$1" why="$2"
    (
        trap - EXIT # don't inherit cleanup; this subshell gets killed
        sleep 120
        kill -9 "$SERVER_PID" 2> /dev/null
    ) &
    local watchdog=$!
    local rc=0
    wait "$SERVER_PID" || rc=$?

    kill -9 "$watchdog" 2> /dev/null || true
    wait "$watchdog" 2> /dev/null || true
    SERVER_PID=""
    if [[ "$rc" -ne 0 ]]; then
        echo "dfi-serve exited non-zero after $why" >&2
        sed 's/^/  server: /' "$WORKDIR/$log" >&2
        status=1
    fi
}

# request CORE BASE [extra flags...]: serve one smoke campaign,
# keeping the client's report in BASE.out for verify().
request() {
    local core="$1" base="$2"
    shift 2
    timeout 180 "$SERVE_BIN" --connect "$SOCKET" \
        --client "check-$core" \
        --core "$core" \
        --benchmark micro \
        --component int_regfile \
        --injections 24 \
        --seed 7 \
        --telemetry-out "$base" \
        "$@" > "$base.out" 2> /dev/null
}

# verify CORE BASE EXPECTED_HIT EXPECTED_SOURCE BYTES: check the
# cache provenance the client reported and diff the client-written
# artifacts against the golden baselines.  BYTES=byte additionally
# requires byte equality (pruned requests only: an unpruned artifact
# is outcome-equal but not byte-equal to the pruned baseline).
verify() {
    local core="$1" base="$2" expected_hit="$3"
    local expected_source="$4" bytes="$5"
    local hit source golden_base
    hit=$(grep '^cache_hit: ' "$base.out" | cut -d' ' -f2)
    source=$(grep '^cache_source: ' "$base.out" | cut -d' ' -f2)
    if [[ "$hit" != "$expected_hit" ]]; then
        echo "$base: expected cache_hit $expected_hit, got '$hit'" >&2
        status=1
    fi
    if [[ "$source" != "$expected_source" ]]; then
        echo "$base: expected cache_source $expected_source," \
             "got '$source'" >&2
        status=1
    fi

    golden_base="$GOLDEN_DIR/smoke_$core"
    if ! "$DIFF_BIN" --exact "$golden_base.jsonl" "$base.jsonl"; then
        status=1
    fi
    if [[ "$bytes" == byte ]]; then
        if ! cmp -s "$golden_base.jsonl" "$base.jsonl"; then
            echo "byte drift: $golden_base.jsonl vs $base.jsonl" >&2
            status=1
        fi
        if ! cmp -s "$golden_base.summary.json" \
                 "$base.summary.json"; then
            echo "summary drift: $golden_base.summary.json vs" \
                 "$base.summary.json" >&2
            status=1
        fi
    fi
}

# ------------------------------------------------------------------
# Leg 1: concurrent cold round, warm round, live-socket refusal.
# ------------------------------------------------------------------
start_daemon server1.log

echo "== concurrent cold round (3 cores, --workers 4)" >&2
pids=()
for core in "${CORES[@]}"; do
    request "$core" "$WORKDIR/cold_$core" &
    pids+=($!)
done
for pid in "${pids[@]}"; do
    if ! wait "$pid"; then
        echo "a concurrent cold request failed" >&2
        status=1
    fi
done
for core in "${CORES[@]}"; do
    verify "$core" "$WORKDIR/cold_$core" false none byte
done

echo "== warm round" >&2
for core in "${CORES[@]}"; do
    request "$core" "$WORKDIR/warm_$core"
    verify "$core" "$WORKDIR/warm_$core" true memory byte
done

echo "== live-socket refusal" >&2
if timeout 30 "$SERVE_BIN" --socket "$SOCKET" \
        2> "$WORKDIR/hijack.log"; then
    echo "a second daemon replaced a live socket" >&2
    status=1
fi
if ! grep -q "live daemon" "$WORKDIR/hijack.log"; then
    echo "expected a live-daemon refusal, got:" >&2
    sed 's/^/  /' "$WORKDIR/hijack.log" >&2
    status=1
fi

timeout 30 "$SERVE_BIN" --connect "$SOCKET" --stats >&2
timeout 30 "$SERVE_BIN" --connect "$SOCKET" --shutdown > /dev/null
await_daemon server1.log shutdown

# ------------------------------------------------------------------
# Leg 2: restart persistence through --cache-dir.
# ------------------------------------------------------------------
echo "== restart leg: cold round with --cache-dir" >&2
start_daemon server2.log --cache-dir "$CACHE_DIR"
pids=()
for core in "${CORES[@]}"; do
    request "$core" "$WORKDIR/disk_cold_$core" &
    pids+=($!)
done
for pid in "${pids[@]}"; do
    if ! wait "$pid"; then
        echo "a cache-dir cold request failed" >&2
        status=1
    fi
done
for core in "${CORES[@]}"; do
    verify "$core" "$WORKDIR/disk_cold_$core" false none byte
done

echo "== SIGTERM drain" >&2
kill -TERM "$SERVER_PID"
await_daemon server2.log SIGTERM

shopt -s nullglob
preps=("$CACHE_DIR"/prep_*.bin)
resps=("$CACHE_DIR"/resp_*.json)
shopt -u nullglob
if [[ "${#preps[@]}" -ne 3 || "${#resps[@]}" -ne 3 ]]; then
    echo "expected 3 prep spills + 3 response memos in $CACHE_DIR," \
         "found ${#preps[@]} + ${#resps[@]}" >&2
    status=1
fi

echo "== restarted daemon serves disk warm hits" >&2
start_daemon server3.log --cache-dir "$CACHE_DIR"
for core in "${CORES[@]}"; do
    request "$core" "$WORKDIR/memo_$core"
    verify "$core" "$WORKDIR/memo_$core" true response byte
done

# A run-set variation misses the response memo but adopts the
# prepared state spilled by the *previous* daemon process.
request marss-x86 "$WORKDIR/noprune_marss-x86" --no-prune
verify marss-x86 "$WORKDIR/noprune_marss-x86" true disk diff

timeout 30 "$SERVE_BIN" --connect "$SOCKET" --stats >&2
timeout 30 "$SERVE_BIN" --connect "$SOCKET" --shutdown > /dev/null
await_daemon server3.log shutdown
trap - EXIT

if [[ "$status" -ne 0 ]]; then
    echo "FAIL: served campaigns drifted from $GOLDEN_DIR/ (see above)" >&2
    exit "$status"
fi
echo "OK: 13 served smoke campaigns match $GOLDEN_DIR/ —" >&2
echo "    concurrent cold round byte-equal, warm round from memory," >&2
echo "    restart round from the disk cache (response + prep)." >&2

#!/usr/bin/env bash
# Prove the campaign service serves byte-exact campaigns and that its
# warm cache actually short-circuits preparation.
#
# Starts a dfi-serve daemon on a scratch Unix-domain socket, submits
# the three golden smoke campaigns twice each — a cold round and a
# warm round — and requires:
#
#   1. every cold response to report `cache_hit: false` and every
#      warm response `cache_hit: true` (the second request adopted
#      the cached golden run + checkpoint store instead of
#      re-simulating);
#   2. the client-written telemetry of BOTH rounds to be
#      `dfi-diff --exact`-equal AND byte-equal to the checked-in
#      baselines under results/golden/ — a served campaign, warm or
#      cold, must be indistinguishable from a local dfi-campaign run;
#   3. the daemon to drain and exit 0 on a shutdown request.
#
# Usage:
#   scripts/check_service.sh [WORKDIR]
#
#   WORKDIR  scratch directory (default: a fresh mktemp -d)
#
# Environment:
#   DFI_SERVE  dfi-serve binary (default build/tools/...)
#   DFI_DIFF   dfi-diff binary  (default build/tools/...)
#
# Run from the repository root after building:
#   cmake -B build -S . && cmake --build build -j
set -euo pipefail
trap 'echo "check_service.sh: failed at line $LINENO: $BASH_COMMAND" >&2' ERR

cd "$(dirname "$0")/.."

WORKDIR="${1:-$(mktemp -d)}"
SERVE_BIN="${DFI_SERVE:-build/tools/dfi-serve}"
DIFF_BIN="${DFI_DIFF:-build/tools/dfi-diff}"
GOLDEN_DIR="results/golden"
SOCKET="$WORKDIR/dfi-serve.sock"

for bin in "$SERVE_BIN" "$DIFF_BIN"; do
    if [[ ! -x "$bin" ]]; then
        echo "error: $bin not found or not executable." >&2
        echo "build first: cmake -B build -S . && cmake --build build -j" >&2
        exit 1
    fi
done

mkdir -p "$WORKDIR"

"$SERVE_BIN" --socket "$SOCKET" 2> "$WORKDIR/server.log" &
SERVER_PID=$!
cleanup() {
    kill "$SERVER_PID" 2> /dev/null || true
}
trap cleanup EXIT

# The daemon binds the socket before accepting; give it a moment.
for _ in $(seq 1 50); do
    if [[ -S "$SOCKET" ]]; then
        break
    fi
    sleep 0.1
done
"$SERVE_BIN" --connect "$SOCKET" --ping > /dev/null

status=0

# submit CORE ROUND EXPECTED_HIT: serve one smoke campaign, check the
# cache_hit field, and diff the client-written artifacts against the
# golden baselines.
submit() {
    local core="$1" round="$2" expected_hit="$3"
    local base="$WORKDIR/${round}_${core}"
    local out
    echo "== served smoke campaign: $core ($round)" >&2
    out=$("$SERVE_BIN" --connect "$SOCKET" \
        --client check-service \
        --core "$core" \
        --benchmark micro \
        --component int_regfile \
        --injections 24 \
        --seed 7 \
        --telemetry-out "$base" \
        2> /dev/null)

    local hit
    hit=$(grep '^cache_hit: ' <<< "$out" | cut -d' ' -f2)
    if [[ "$hit" != "$expected_hit" ]]; then
        echo "$core $round: expected cache_hit $expected_hit, got '$hit'" >&2
        status=1
    fi

    local golden_base="$GOLDEN_DIR/smoke_$core"
    if ! "$DIFF_BIN" --exact "$golden_base.jsonl" "$base.jsonl"; then
        status=1
    elif ! cmp -s "$golden_base.jsonl" "$base.jsonl"; then
        echo "byte drift: $golden_base.jsonl vs $base.jsonl" >&2
        status=1
    fi
    if ! cmp -s "$golden_base.summary.json" "$base.summary.json"; then
        echo "summary drift: $golden_base.summary.json vs $base.summary.json" >&2
        status=1
    fi
}

# Cold round: every core prepares from scratch and populates the
# cache.  Warm round: every core must adopt the cached preparation.
for core in marss-x86 gem5-x86 gem5-arm; do
    submit "$core" cold false
done
for core in marss-x86 gem5-x86 gem5-arm; do
    submit "$core" warm true
done

"$SERVE_BIN" --connect "$SOCKET" --stats >&2

# Graceful shutdown: the daemon must drain and exit 0.
"$SERVE_BIN" --connect "$SOCKET" --shutdown > /dev/null
if ! wait "$SERVER_PID"; then
    echo "dfi-serve exited non-zero after shutdown" >&2
    sed 's/^/  server: /' "$WORKDIR/server.log" >&2
    status=1
fi
trap - EXIT

if [[ "$status" -ne 0 ]]; then
    echo "FAIL: served campaigns drifted from $GOLDEN_DIR/ (see above)" >&2
    exit "$status"
fi
echo "OK: 6 served smoke campaigns byte-equal to $GOLDEN_DIR/," >&2
echo "    warm round hit the preparation cache on all 3 cores." >&2

#!/usr/bin/env bash
# Regenerate the golden telemetry baselines under results/golden/.
#
# The baselines are fixed-seed smoke campaigns (24 single-bit transient
# injections into the integer register file of the `micro` benchmark)
# on all three core models. With timing capture off (the default) the
# artifacts are a pure function of (config, program, seed), so CI can
# byte-compare fresh runs against the checked-in files with
# `dfi-diff --exact`.
#
# Usage:
#   scripts/regen_golden.sh [OUTDIR] [JOBS] [EXTRA_FLAGS...]
#
#   OUTDIR  destination directory (default: results/golden — i.e.
#           rewrite the checked-in baselines)
#   JOBS    --jobs value for the campaigns (default: 1). Telemetry is
#           byte-identical for every value; CI runs this script with
#           1 and 4 and diffs both against the same baselines.
#   EXTRA_FLAGS  passed through to dfi-campaign. CI uses
#           `--no-checkpoints` for a leg proving the checkpoint fast
#           path leaves the artifacts byte-identical,
#           `--no-prune` for a leg proving equivalence pruning never
#           changes the classification output (exact-diff equal; the
#           volatile prune bookkeeping fields are skipped), and
#           `--shard I/N` for the shard-merge leg.
#
# Environment:
#   DFI_CAMPAIGN      dfi-campaign binary (default build/tools/...)
#   DFI_SMOKE_SUFFIX  appended to each artifact base name
#           (e.g. `.shard0` makes smoke_gem5-x86.shard0.jsonl) so
#           shard legs can emit per-shard artifacts side by side.
#
# Run from the repository root after building:
#   cmake -B build -S . && cmake --build build -j
set -euo pipefail
trap 'echo "regen_golden.sh: failed at line $LINENO: $BASH_COMMAND" >&2' ERR

cd "$(dirname "$0")/.."

OUTDIR="${1:-results/golden}"
JOBS="${2:-1}"
shift $(( $# > 2 ? 2 : $# ))
EXTRA=("$@")
CAMPAIGN_BIN="${DFI_CAMPAIGN:-build/tools/dfi-campaign}"
SUFFIX="${DFI_SMOKE_SUFFIX:-}"

if [[ ! -x "$CAMPAIGN_BIN" ]]; then
    echo "error: $CAMPAIGN_BIN not found or not executable." >&2
    echo "build first: cmake -B build -S . && cmake --build build -j" >&2
    exit 1
fi

mkdir -p "$OUTDIR"

for core in marss-x86 gem5-x86 gem5-arm; do
    echo "== smoke campaign: $core (jobs=$JOBS)" >&2
    "$CAMPAIGN_BIN" \
        --core "$core" \
        --benchmark micro \
        --component int_regfile \
        --injections 24 \
        --seed 7 \
        --jobs "$JOBS" \
        --telemetry-out "$OUTDIR/smoke_$core$SUFFIX" \
        ${EXTRA[@]+"${EXTRA[@]}"} \
        > /dev/null
done

echo "golden baselines written to $OUTDIR/" >&2

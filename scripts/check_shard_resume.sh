#!/usr/bin/env bash
# Prove shard ∪ dfi-merge ≡ serial and resume ≡ uninterrupted, byte
# for byte, against the checked-in golden baselines.
#
# For each core model and N in {2, 4}: runs the smoke campaign as N
# shard processes (`--shard I/N`), merges the shard streams with
# dfi-merge, and requires `dfi-diff --exact` equality (and literal
# byte equality) against results/golden/.  Then simulates an
# interrupted campaign — the golden stream truncated mid-record, the
# torn-tail signature of a killed writer — resumes it with
# `--resume`, and requires the finished artifacts to equal the
# baselines as well.
#
# Usage:
#   scripts/check_shard_resume.sh [WORKDIR]
#
#   WORKDIR  scratch directory (default: a fresh mktemp -d)
#
# Environment:
#   DFI_CAMPAIGN  dfi-campaign binary (default build/tools/...)
#   DFI_MERGE     dfi-merge binary    (default build/tools/...)
#   DFI_DIFF      dfi-diff binary     (default build/tools/...)
#
# Run from the repository root after building:
#   cmake -B build -S . && cmake --build build -j
set -euo pipefail
trap 'echo "check_shard_resume.sh: failed at line $LINENO: $BASH_COMMAND" >&2' ERR

cd "$(dirname "$0")/.."

WORKDIR="${1:-$(mktemp -d)}"
CAMPAIGN_BIN="${DFI_CAMPAIGN:-build/tools/dfi-campaign}"
MERGE_BIN="${DFI_MERGE:-build/tools/dfi-merge}"
DIFF_BIN="${DFI_DIFF:-build/tools/dfi-diff}"
GOLDEN_DIR="results/golden"

for bin in "$CAMPAIGN_BIN" "$MERGE_BIN" "$DIFF_BIN"; do
    if [[ ! -x "$bin" ]]; then
        echo "error: $bin not found or not executable." >&2
        echo "build first: cmake -B build -S . && cmake --build build -j" >&2
        exit 1
    fi
done

mkdir -p "$WORKDIR"
status=0

check_exact() {
    # check_exact GOLDEN CANDIDATE: dfi-diff --exact plus literal
    # byte comparison (the merge/resume guarantee is stronger than
    # volatile-field-insensitive equality).
    if ! "$DIFF_BIN" --exact "$1" "$2"; then
        status=1
    elif ! cmp -s "$1" "$2"; then
        echo "byte drift: $1 vs $2 (dfi-diff saw no semantic drift)" >&2
        status=1
    fi
}

run_smoke() {
    # run_smoke CORE OUT_BASE [EXTRA_FLAGS...]
    local core="$1" out="$2"
    shift 2
    "$CAMPAIGN_BIN" \
        --core "$core" \
        --benchmark micro \
        --component int_regfile \
        --injections 24 \
        --seed 7 \
        --jobs 1 \
        --telemetry-out "$out" \
        "$@" \
        > /dev/null
}

for core in marss-x86 gem5-x86 gem5-arm; do
    golden_runs="$GOLDEN_DIR/smoke_$core.jsonl"
    golden_summary="$GOLDEN_DIR/smoke_$core.summary.json"

    for count in 2 4; do
        echo "== shard merge: $core, $count shards" >&2
        shard_paths=()
        for (( index = 0; index < count; index++ )); do
            base="$WORKDIR/${core}_${count}way_$index"
            run_smoke "$core" "$base" --shard "$index/$count"
            shard_paths+=("$base.jsonl")
        done
        merged="$WORKDIR/${core}_${count}way_merged"
        "$MERGE_BIN" --out "$merged" "${shard_paths[@]}"
        check_exact "$golden_runs" "$merged.jsonl"
        check_exact "$golden_summary" "$merged.summary.json"
    done

    echo "== resume: $core (torn-tail partial)" >&2
    # A campaign killed mid-write: the first 10 lines (header + 9
    # records) plus half of the next record, without its newline.
    partial="$WORKDIR/${core}_partial.jsonl"
    head -n 10 "$golden_runs" > "$partial"
    sed -n '11p' "$golden_runs" | head -c 20 >> "$partial"
    resumed="$WORKDIR/${core}_resumed"
    run_smoke "$core" "$resumed" --resume "$partial"
    check_exact "$golden_runs" "$resumed.jsonl"
    check_exact "$golden_summary" "$resumed.summary.json"
done

if [[ "$status" -ne 0 ]]; then
    echo "shard/resume artifacts drifted from $GOLDEN_DIR/" >&2
    exit 1
fi
echo "shard merge and resume byte-identical to $GOLDEN_DIR/" >&2

#!/usr/bin/env bash
# Prove the fault-equivalence pruner changes what is *executed*, never
# what is *reported*: a pruned campaign's classification artifacts must
# be `dfi-diff --exact`-equal to the same campaign run with --no-prune.
# (The raw bytes legitimately differ in the volatile prune bookkeeping
# — the header `prune` stats and per-record `prune_class` — which the
# exact diff skips, exactly like host timing fields.)
#
# Also smoke-tests the two new planning entry points:
#   --dry-run     prints the plan split (simulated / pruned static /
#                 pruned equivalent) and exits 0 without simulating
#   --exhaustive  enumerates every (entry, bit, cycle) site of a small
#                 structure and completes by pruning the bulk of them
#
# Usage:
#   scripts/check_prune_equiv.sh [WORKDIR]
#
#   WORKDIR  scratch directory (default: a fresh mktemp -d)
#
# Environment:
#   DFI_CAMPAIGN  dfi-campaign binary (default build/tools/...)
#   DFI_DIFF      dfi-diff binary     (default build/tools/...)
#
# Run from the repository root after building:
#   cmake -B build -S . && cmake --build build -j
set -euo pipefail
trap 'echo "check_prune_equiv.sh: failed at line $LINENO: $BASH_COMMAND" >&2' ERR

cd "$(dirname "$0")/.."

WORKDIR="${1:-$(mktemp -d)}"
CAMPAIGN_BIN="${DFI_CAMPAIGN:-build/tools/dfi-campaign}"
DIFF_BIN="${DFI_DIFF:-build/tools/dfi-diff}"

for bin in "$CAMPAIGN_BIN" "$DIFF_BIN"; do
    if [[ ! -x "$bin" ]]; then
        echo "error: $bin not found or not executable." >&2
        echo "build first: cmake -B build -S . && cmake --build build -j" >&2
        exit 1
    fi
done

mkdir -p "$WORKDIR"
status=0

run_campaign() {
    # run_campaign OUT_BASE [EXTRA_FLAGS...]: the prune workhorse
    # config — l1d valid bits carry plenty of dead and equivalent
    # sites, so both prune buckets are exercised.
    local out="$1"
    shift
    "$CAMPAIGN_BIN" \
        --core marss-x86 \
        --benchmark micro \
        --component l1d_valid \
        --injections 400 \
        --seed 24301 \
        --jobs 1 \
        --telemetry-out "$out" \
        "$@" \
        > /dev/null
}

echo "== pruned vs --no-prune: classification must not drift" >&2
run_campaign "$WORKDIR/pruned"
run_campaign "$WORKDIR/exhaustive-exec" --no-prune
for ext in jsonl summary.json; do
    if ! "$DIFF_BIN" --exact "$WORKDIR/exhaustive-exec.$ext" \
            "$WORKDIR/pruned.$ext"; then
        status=1
    fi
done

echo "== pruned header must report nonzero prune buckets" >&2
header="$(head -n 1 "$WORKDIR/pruned.jsonl")"
for key in pruned_static pruned_equiv; do
    if ! grep -q "\"$key\":" <<< "$header"; then
        echo "missing \"$key\" in the pruned runs header" >&2
        status=1
    elif grep -q "\"$key\":0[,}]" <<< "$header"; then
        echo "\"$key\" is zero — the pruner did no work" >&2
        status=1
    fi
done
if ! grep -q '"pruned_static":0[,}]' \
        <(head -n 1 "$WORKDIR/exhaustive-exec.jsonl"); then
    echo "--no-prune run still pruned something" >&2
    status=1
fi

echo "== --dry-run prints the plan and exits 0" >&2
dry_out="$("$CAMPAIGN_BIN" \
    --core marss-x86 --benchmark micro --component l1d_valid \
    --injections 400 --seed 24301 --dry-run)"
for needle in "plan:" "simulated:" "pruned static:" "pruned equiv:"; do
    if ! grep -q "$needle" <<< "$dry_out"; then
        echo "--dry-run output lacks \"$needle\"" >&2
        status=1
    fi
done

echo "== --exhaustive completes on a small structure" >&2
"$CAMPAIGN_BIN" \
    --core marss-x86 --benchmark micro --component l1d_valid \
    --exhaustive --jobs 1 \
    --telemetry-out "$WORKDIR/full-space" \
    > /dev/null
exhaustive_header="$(head -n 1 "$WORKDIR/full-space.jsonl")"
if ! grep -q '"pruned_equiv":' <<< "$exhaustive_header"; then
    echo "exhaustive header lacks prune stats" >&2
    status=1
fi

if [[ "$status" -ne 0 ]]; then
    echo "prune-equivalence check FAILED" >&2
    exit 1
fi
echo "pruned campaigns classify identically to --no-prune" >&2

#!/usr/bin/env bash
# Run the perf-tracking benches and append one snapshot to a
# BENCH_ci.json trajectory.
#
# Runs bench_parallel_scaling and bench_checkpoint_restore with their
# JSON twins directed at WORKDIR, then appends a snapshot object —
# commit, timestamp, and both bench documents — to OUT (a JSON array,
# created on first use).  CI runs this fresh every build and uploads
# the result as an artifact; run it locally across commits and OUT
# accumulates an actual perf trajectory.
#
# Usage:
#   scripts/bench_snapshot.sh [WORKDIR] [OUT]
#
#   WORKDIR  scratch directory for bench output
#            (default: a fresh mktemp -d)
#   OUT      trajectory file to append to
#            (default: WORKDIR/BENCH_ci.json)
#
# Environment:
#   DFI_BENCH_DIR      directory with the bench binaries
#                      (default build/bench)
#   DFI_INJECTIONS     passed through to bench_parallel_scaling
#   DFI_RESTORE_REPS   passed through to bench_checkpoint_restore
#   DFI_RESTORE_TICKS  passed through to bench_checkpoint_restore
#
# Run from the repository root after building:
#   cmake -B build -S . && cmake --build build -j
set -euo pipefail
trap 'echo "bench_snapshot.sh: failed at line $LINENO: $BASH_COMMAND" >&2' ERR

cd "$(dirname "$0")/.."

WORKDIR="${1:-$(mktemp -d)}"
OUT="${2:-$WORKDIR/BENCH_ci.json}"
BENCH_DIR="${DFI_BENCH_DIR:-build/bench}"

for bench in bench_parallel_scaling bench_checkpoint_restore; do
    if [[ ! -x "$BENCH_DIR/$bench" ]]; then
        echo "error: $BENCH_DIR/$bench not found or not executable." >&2
        echo "build first: cmake -B build -S . && cmake --build build -j" >&2
        exit 1
    fi
done

mkdir -p "$WORKDIR"

# DFI_OUT keeps bench_parallel_scaling's text table out of the
# checked-in results/ copy — everything lands in WORKDIR.
for bench in bench_parallel_scaling bench_checkpoint_restore; do
    echo "== $bench" >&2
    DFI_TELEMETRY_DIR="$WORKDIR" DFI_OUT="$WORKDIR/$bench.table.txt" \
        "$BENCH_DIR/$bench" > "$WORKDIR/$bench.txt"
done

COMMIT="$(git rev-parse HEAD 2> /dev/null || echo unknown)"
STAMP="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

# Append {commit, date, benches:{...}} to the OUT array.  python3 is
# used for the JSON surgery; it is present on the CI runners and in
# any dev environment that plots the trajectory.
export BENCH_SNAPSHOT_WORKDIR="$WORKDIR" BENCH_SNAPSHOT_OUT="$OUT" \
    BENCH_SNAPSHOT_COMMIT="$COMMIT" BENCH_SNAPSHOT_STAMP="$STAMP"
python3 - << 'EOF'
import json
import os

workdir = os.environ["BENCH_SNAPSHOT_WORKDIR"]
out_path = os.environ["BENCH_SNAPSHOT_OUT"]

snapshot = {
    "commit": os.environ["BENCH_SNAPSHOT_COMMIT"],
    "date": os.environ["BENCH_SNAPSHOT_STAMP"],
    "benches": {},
}
for bench in ("bench_parallel_scaling", "bench_checkpoint_restore"):
    with open(os.path.join(workdir, bench + ".json")) as twin:
        snapshot["benches"][bench] = json.load(twin)

trajectory = []
if os.path.exists(out_path):
    with open(out_path) as existing:
        trajectory = json.load(existing)
    if not isinstance(trajectory, list):
        raise SystemExit(f"{out_path}: not a snapshot array")
trajectory.append(snapshot)

with open(out_path, "w") as out:
    json.dump(trajectory, out, indent=2)
    out.write("\n")
print(f"snapshot {len(trajectory)} appended to {out_path}")
EOF

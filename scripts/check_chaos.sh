#!/usr/bin/env bash
# Chaos-test the campaign service with deterministic failpoints
# (DESIGN.md §12): under injected disk, socket, and resource faults
# the stack must neither hang nor crash, every served campaign must
# stay byte-identical to results/golden/, and the degradation
# counters must show the faults actually fired.
#
# Legs (each on a fresh daemon + scratch dir):
#
#   A — cache-write storm: every other disk-cache write fails; the
#       response is still served and byte-equal, --stats shows
#       disk_errors > 0, and a hard request error exits 1 while a
#       dead socket with retries exhausted exits 3.
#   B — disk hard-down: every cache read AND write fails; after
#       diskFailureLimit consecutive errors the disk tier disables
#       itself (disk_disabled: true) and the memory tier keeps
#       serving byte-equal responses.
#   C — socket I/O storm: EINTR and short transfers injected into
#       both the server's and the client's socket loops; the
#       protocol survives byte-for-byte.
#   D — stalled client: a tiny server send buffer plus a client that
#       sleeps before reading stalls the response stream; the
#       bounded write drops it (dropped_streams > 0, no wedged
#       worker) and the client's retry succeeds.
#   E — idle connection: a client that sleeps before sending trips
#       the server's idle read timeout (idle_timeouts > 0); the
#       retry succeeds.
#   F — prepare-time resource failure: the first prepare throws
#       bad_alloc; the client sees a retryable error and the retry
#       serves byte-equal artifacts.
#   G — prepare delay: every prepare sleeps; purely a liveness check
#       under timeout.
#
# Every daemon interaction runs under a hard `timeout`, and daemon
# exits are awaited with a kill -9 watchdog, so a wedged process
# fails the script instead of hanging CI.
#
# Usage:
#   scripts/check_chaos.sh [WORKDIR]
#
# Environment:
#   DFI_SERVE  dfi-serve binary (default build/tools/...)
#   DFI_DIFF   dfi-diff binary  (default build/tools/...)
set -euo pipefail
trap 'echo "check_chaos.sh: failed at line $LINENO: $BASH_COMMAND" >&2' ERR

cd "$(dirname "$0")/.."

WORKDIR="${1:-$(mktemp -d)}"
SERVE_BIN="${DFI_SERVE:-build/tools/dfi-serve}"
DIFF_BIN="${DFI_DIFF:-build/tools/dfi-diff}"
GOLDEN="results/golden/smoke_marss-x86"
SOCKET="$WORKDIR/dfi-chaos.sock"

for bin in "$SERVE_BIN" "$DIFF_BIN"; do
    if [[ ! -x "$bin" ]]; then
        echo "error: $bin not found or not executable." >&2
        echo "build first: cmake -B build -S . && cmake --build build -j" >&2
        exit 1
    fi
done

mkdir -p "$WORKDIR"

status=0
SERVER_PID=""
cleanup() {
    if [[ -n "$SERVER_PID" ]]; then
        kill -9 "$SERVER_PID" 2> /dev/null || true
    fi
}
trap cleanup EXIT

# start_daemon LOG [extra flags...]: launch dfi-serve and wait for it
# with the retrying client itself — no sleep-polling.
start_daemon() {
    local log="$1"
    shift
    rm -f "$SOCKET"
    "$SERVE_BIN" --socket "$SOCKET" --workers 2 "$@" \
        2> "$WORKDIR/$log" &
    SERVER_PID=$!
    timeout 60 "$SERVE_BIN" --connect "$SOCKET" --ping \
        --retries 50 --backoff-ms 100 > /dev/null
}

# await_daemon LOG: wait for the daemon to exit cleanly, with a
# watchdog so a wedged drain kills the process instead of hanging the
# script.  (kill -0 polling cannot detect a zombie child; wait can.)
await_daemon() {
    local log="$1"
    (
        trap - EXIT # don't inherit cleanup; this subshell gets killed
        sleep 120
        kill -9 "$SERVER_PID" 2> /dev/null
    ) &
    local watchdog=$!
    local rc=0
    wait "$SERVER_PID" || rc=$?

    kill -9 "$watchdog" 2> /dev/null || true
    wait "$watchdog" 2> /dev/null || true
    SERVER_PID=""
    if [[ "$rc" -ne 0 ]]; then
        echo "dfi-serve exited non-zero ($rc)" >&2
        sed 's/^/  server: /' "$WORKDIR/$log" >&2
        status=1
    fi
}

stop_daemon() {
    local log="$1"
    timeout 30 "$SERVE_BIN" --connect "$SOCKET" --shutdown \
        > /dev/null
    await_daemon "$log"
}

# request BASE [extra client flags...]: serve the marss-x86 smoke
# campaign (the golden config) under a hard timeout.
request() {
    local base="$1"
    shift
    timeout 180 "$SERVE_BIN" --connect "$SOCKET" \
        --client chaos \
        --core marss-x86 \
        --benchmark micro \
        --component int_regfile \
        --injections 24 \
        --seed 7 \
        --telemetry-out "$base" \
        "$@" > "$base.out" 2> "$base.err"
}

# verify BASE: served artifacts must be outcome- AND byte-equal to
# the golden baseline, chaos or no chaos.
verify() {
    local base="$1"
    if ! "$DIFF_BIN" --exact "$GOLDEN.jsonl" "$base.jsonl"; then
        status=1
    fi
    if ! cmp -s "$GOLDEN.jsonl" "$base.jsonl"; then
        echo "byte drift: $GOLDEN.jsonl vs $base.jsonl" >&2
        status=1
    fi
    if ! cmp -s "$GOLDEN.summary.json" "$base.summary.json"; then
        echo "byte drift: $GOLDEN.summary.json vs" \
             "$base.summary.json" >&2
        status=1
    fi
}

# stat_value STATS_FILE KEY: extract a counter from the pretty-printed
# --stats JSON (values are unsigned integers or true/false).
stat_value() {
    grep -o "\"$2\": [a-z0-9]*" "$1" | head -1 | awk '{print $2}'
}

stats_to() {
    timeout 30 "$SERVE_BIN" --connect "$SOCKET" --stats > "$1"
}

# expect_counter STATS_FILE KEY MIN: the counter must exist and be at
# least MIN (proves the injected faults actually fired).
expect_counter() {
    local file="$1" key="$2" min="$3" value
    value=$(stat_value "$file" "$key")
    if [[ -z "$value" || "$value" -lt "$min" ]]; then
        echo "expected $key >= $min in --stats, got '${value:-missing}'" >&2
        status=1
    fi
}

expect_bool() {
    local file="$1" key="$2" want="$3" value
    value=$(stat_value "$file" "$key")
    if [[ "$value" != "$want" ]]; then
        echo "expected $key == $want in --stats, got '${value:-missing}'" >&2
        status=1
    fi
}

# ------------------------------------------------------------------
# Leg A: cache-write storm + client exit-code contract.
# ------------------------------------------------------------------
echo "== leg A: disk-cache write storm" >&2
start_daemon serverA.log --cache-dir "$WORKDIR/cacheA" \
    --failpoints 'cache.write=error@every:2'
request "$WORKDIR/a_first"
verify "$WORKDIR/a_first"
request "$WORKDIR/a_second"
verify "$WORKDIR/a_second"
stats_to "$WORKDIR/statsA.json"
expect_counter "$WORKDIR/statsA.json" disk_errors 1
expect_bool "$WORKDIR/statsA.json" disk_disabled false

# A hard (non-retryable) server error must exit 1, even with retries.
rc=0
timeout 60 "$SERVE_BIN" --connect "$SOCKET" \
    --core marss-x86 --benchmark micro --component no_such_unit \
    --injections 4 --retries 2 --backoff-ms 10 \
    > /dev/null 2> "$WORKDIR/hard.err" || rc=$?
if [[ "$rc" -ne 1 ]]; then
    echo "hard server error: expected exit 1, got $rc" >&2
    status=1
fi
stop_daemon serverA.log

# A dead socket with retries exhausted must exit 3 (retryable class).
rc=0
timeout 60 "$SERVE_BIN" --connect "$WORKDIR/nowhere.sock" --ping \
    --retries 2 --backoff-ms 10 > /dev/null 2>&1 || rc=$?
if [[ "$rc" -ne 3 ]]; then
    echo "dead socket: expected exit 3 (retries exhausted), got $rc" >&2
    status=1
fi

# ------------------------------------------------------------------
# Leg B: disk hard-down degrades to memory-only.
# ------------------------------------------------------------------
echo "== leg B: disk hard-down degradation" >&2
start_daemon serverB.log --cache-dir "$WORKDIR/cacheB" \
    --failpoints 'cache.read=error;cache.write=error'
request "$WORKDIR/b_first"
verify "$WORKDIR/b_first"
request "$WORKDIR/b_second"
verify "$WORKDIR/b_second"
if ! grep -q '^cache_source: memory' "$WORKDIR/b_second.out"; then
    echo "leg B: second request not served from memory:" >&2
    sed 's/^/  /' "$WORKDIR/b_second.out" >&2
    status=1
fi
stats_to "$WORKDIR/statsB.json"
expect_counter "$WORKDIR/statsB.json" disk_errors 3
expect_bool "$WORKDIR/statsB.json" disk_disabled true
stop_daemon serverB.log

# ------------------------------------------------------------------
# Leg C: socket I/O storm on both halves.
# ------------------------------------------------------------------
echo "== leg C: socket EINTR/short-transfer storm" >&2
start_daemon serverC.log \
    --failpoints 'sock.read=eintr@every:3;sock.write=short@every:5'
DFI_FAILPOINTS='sock.read=eintr@every:4;sock.write=short@every:3' \
    request "$WORKDIR/c_first"
verify "$WORKDIR/c_first"
DFI_FAILPOINTS='sock.read=short' request "$WORKDIR/c_second"
verify "$WORKDIR/c_second"
stop_daemon serverC.log

# ------------------------------------------------------------------
# Leg D: stalled client stream is dropped, retry succeeds.
# ------------------------------------------------------------------
echo "== leg D: stalled client stream" >&2
start_daemon serverD.log --stream-timeout-ms 500 --sndbuf 1
DFI_FAILPOINTS='client.read=delay:3000@nth:1' \
    request "$WORKDIR/d_first" --retries 3 --backoff-ms 100
verify "$WORKDIR/d_first"
stats_to "$WORKDIR/statsD.json"
expect_counter "$WORKDIR/statsD.json" dropped_streams 1
stop_daemon serverD.log

# ------------------------------------------------------------------
# Leg E: idle connection trips the read timeout, retry succeeds.
# ------------------------------------------------------------------
echo "== leg E: idle connection timeout" >&2
start_daemon serverE.log --idle-timeout-ms 500
DFI_FAILPOINTS='client.send=delay:2000@once' \
    request "$WORKDIR/e_first" --retries 3 --backoff-ms 100
verify "$WORKDIR/e_first"
stats_to "$WORKDIR/statsE.json"
expect_counter "$WORKDIR/statsE.json" idle_timeouts 1
stop_daemon serverE.log

# ------------------------------------------------------------------
# Leg F: prepare-time bad_alloc is retryable end to end.
# ------------------------------------------------------------------
echo "== leg F: prepare-time resource failure" >&2
start_daemon serverF.log --failpoints 'prep.alloc=error@nth:1'
request "$WORKDIR/f_first" --retries 2 --backoff-ms 100
verify "$WORKDIR/f_first"
if ! grep -q 'retrying' "$WORKDIR/f_first.err"; then
    echo "leg F: expected a retry against the injected bad_alloc:" >&2
    sed 's/^/  /' "$WORKDIR/f_first.err" >&2
    status=1
fi
stop_daemon serverF.log

# ------------------------------------------------------------------
# Leg G: prepare delay (liveness only).
# ------------------------------------------------------------------
echo "== leg G: prepare delay liveness" >&2
start_daemon serverG.log --failpoints 'prep.alloc=delay:150'
request "$WORKDIR/g_first"
verify "$WORKDIR/g_first"
stop_daemon serverG.log
trap - EXIT

if [[ "$status" -ne 0 ]]; then
    echo "FAIL: chaos legs diverged (see above)" >&2
    exit "$status"
fi
echo "OK: 7 chaos legs — disk storms, socket storms, stalled and" >&2
echo "    idle clients, injected bad_alloc — all served byte-equal" >&2
echo "    to results/golden/ with degradation counters accounted." >&2

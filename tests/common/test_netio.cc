/**
 * @file
 * Tests for the buffered line reader and bounded writers, including
 * their behaviour under injected socket faults (`sock.read` /
 * `sock.write` failpoints): EINTR storms, short transfers, read
 * errors, oversized lines, and idle timeouts.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <string>

#include "common/failpoint.hh"
#include "common/json.hh"
#include "common/netio.hh"

namespace
{

namespace failpoint = dfi::failpoint;
namespace netio = dfi::netio;
using netio::ReadResult;

/** A pipe pair closed on teardown; failpoints never leak out. */
class Netio : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        failpoint::reset();
        ASSERT_EQ(::pipe(fds_), 0);
    }

    void
    TearDown() override
    {
        failpoint::reset();
        closeRead();
        closeWrite();
    }

    void
    closeRead()
    {
        if (fds_[0] >= 0)
            ::close(fds_[0]);
        fds_[0] = -1;
    }

    void
    closeWrite()
    {
        if (fds_[1] >= 0)
            ::close(fds_[1]);
        fds_[1] = -1;
    }

    void
    feed(const std::string &bytes)
    {
        ASSERT_EQ(::write(fds_[1], bytes.data(), bytes.size()),
                  static_cast<ssize_t>(bytes.size()));
    }

    int fds_[2] = {-1, -1};
};

TEST_F(Netio, SplitsLinesAcrossOneChunk)
{
    feed("alpha\nbeta\n");
    closeWrite();
    netio::LineReader reader(fds_[0], 4096);
    std::string line;
    EXPECT_EQ(reader.next(line), ReadResult::Line);
    EXPECT_EQ(line, "alpha");
    EXPECT_EQ(reader.next(line), ReadResult::Line);
    EXPECT_EQ(line, "beta");
    EXPECT_EQ(reader.next(line), ReadResult::Eof);
}

TEST_F(Netio, EofBeforeNewline)
{
    feed("partial");
    closeWrite();
    netio::LineReader reader(fds_[0], 4096);
    std::string line;
    EXPECT_EQ(reader.next(line), ReadResult::Eof);
}

TEST_F(Netio, OversizedLineIsRejectedNotTruncated)
{
    feed(std::string(64, 'x'));
    netio::LineReader reader(fds_[0], 16);
    std::string line;
    EXPECT_EQ(reader.next(line), ReadResult::TooLong);
}

TEST_F(Netio, ReaderRecoversFromInjectedEintr)
{
    std::string error;
    ASSERT_TRUE(
        failpoint::configure("sock.read=eintr@nth:1", error))
        << error;
    feed("survived\n");
    netio::LineReader reader(fds_[0], 4096);
    std::string line;
    EXPECT_EQ(reader.next(line), ReadResult::Line);
    EXPECT_EQ(line, "survived");
    EXPECT_EQ(failpoint::fireCount("sock.read"), 1u);
}

TEST_F(Netio, ReaderAssemblesLineFromShortReads)
{
    std::string error;
    ASSERT_TRUE(failpoint::configure("sock.read=short", error));
    feed("one byte at a time\n");
    netio::LineReader reader(fds_[0], 4096);
    std::string line;
    EXPECT_EQ(reader.next(line), ReadResult::Line);
    EXPECT_EQ(line, "one byte at a time");
    // Every read was capped at one byte: line + newline.
    EXPECT_EQ(failpoint::fireCount("sock.read"), 19u);
}

TEST_F(Netio, ReaderReportsInjectedHardError)
{
    std::string error;
    ASSERT_TRUE(
        failpoint::configure("sock.read=error@once", error));
    feed("never delivered\n");
    netio::LineReader reader(fds_[0], 4096);
    std::string line;
    EXPECT_EQ(reader.next(line), ReadResult::Error);
    EXPECT_EQ(errno, EIO);
}

TEST_F(Netio, ReaderTimesOutOnAnIdlePeer)
{
    netio::LineReader reader(fds_[0], 4096, 50);
    std::string line;
    EXPECT_EQ(reader.next(line), ReadResult::Timeout);
}

TEST_F(Netio, WriteAllSurvivesEintrAndShortWrites)
{
    std::string error;
    ASSERT_TRUE(failpoint::configure(
        "sock.write=eintr@nth:1", error));
    ASSERT_TRUE(netio::writeAll(fds_[1], "payload\n"));
    failpoint::reset();
    ASSERT_TRUE(failpoint::configure("sock.write=short", error));
    ASSERT_TRUE(netio::writeAll(fds_[1], "dribble\n"));
    failpoint::reset();
    closeWrite();

    netio::LineReader reader(fds_[0], 4096);
    std::string line;
    EXPECT_EQ(reader.next(line), ReadResult::Line);
    EXPECT_EQ(line, "payload");
    EXPECT_EQ(reader.next(line), ReadResult::Line);
    EXPECT_EQ(line, "dribble");
}

TEST_F(Netio, WriteAllFailsOnInjectedError)
{
    std::string error;
    ASSERT_TRUE(
        failpoint::configure("sock.write=error@once", error));
    EXPECT_FALSE(netio::writeAll(fds_[1], "lost\n"));
}

TEST_F(Netio, WriteLineAppendsNewline)
{
    dfi::json::Value obj = dfi::json::Value::object();
    obj.set("ok", dfi::json::Value::boolean(true));
    ASSERT_TRUE(netio::writeLine(fds_[1], obj));
    closeWrite();
    netio::LineReader reader(fds_[0], 4096);
    std::string line;
    EXPECT_EQ(reader.next(line), ReadResult::Line);
    EXPECT_EQ(line, obj.dump());
}

} // namespace

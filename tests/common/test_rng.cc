/**
 * @file
 * Unit and property tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"

namespace
{

using dfi::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next64() == b.next64();
    EXPECT_LT(same, 5);
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.nextRange(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BoundedRoughlyUniform)
{
    Rng rng(13);
    std::vector<int> buckets(8, 0);
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++buckets[rng.nextBounded(8)];
    for (int count : buckets) {
        EXPECT_GT(count, n / 8 - n / 80);
        EXPECT_LT(count, n / 8 + n / 80);
    }
}

TEST(Rng, ForkedStreamsIndependent)
{
    Rng parent(21);
    Rng child = parent.fork();
    // The parent advanced; both streams should still be deterministic
    // and distinct.
    Rng parent2(21);
    Rng child2 = parent2.fork();
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(child.next64(), child2.next64());
        EXPECT_EQ(parent.next64(), parent2.next64());
    }
}

TEST(Rng, BernoulliProbability)
{
    Rng rng(33);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.25);
    EXPECT_NEAR(hits / static_cast<double>(n), 0.25, 0.01);
}

TEST(Rng, NoShortCycle)
{
    Rng rng(55);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i)
        seen.insert(rng.next64());
    EXPECT_EQ(seen.size(), 10000u);
}

} // namespace

/**
 * @file
 * Tests for the statistics package and table renderer.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace
{

using dfi::StatSet;
using dfi::TextTable;

TEST(StatSet, IncrementAndGet)
{
    StatSet s;
    EXPECT_EQ(s.get("loads"), 0u);
    s.inc("loads");
    s.inc("loads", 4);
    EXPECT_EQ(s.get("loads"), 5u);
    EXPECT_TRUE(s.has("loads"));
    EXPECT_FALSE(s.has("stores"));
}

TEST(StatSet, SetOverrides)
{
    StatSet s;
    s.inc("x", 10);
    s.set("x", 3);
    EXPECT_EQ(s.get("x"), 3u);
}

TEST(StatSet, RatioHandlesZeroDenominator)
{
    StatSet s;
    s.inc("hits", 30);
    EXPECT_DOUBLE_EQ(s.ratio("hits", "accesses"), 0.0);
    s.inc("accesses", 60);
    EXPECT_DOUBLE_EQ(s.ratio("hits", "accesses"), 0.5);
}

TEST(StatSet, ClearZeroesButKeepsNames)
{
    StatSet s;
    s.inc("a", 2);
    s.clear();
    EXPECT_TRUE(s.has("a"));
    EXPECT_EQ(s.get("a"), 0u);
}

TEST(StatSet, DumpSortedWithPrefix)
{
    StatSet s;
    s.inc("b", 2);
    s.inc("a", 1);
    EXPECT_EQ(s.dump("sim."), "sim.a = 1\nsim.b = 2\n");
}

TEST(StatSet, CopySemantics)
{
    StatSet s;
    s.inc("cycles", 100);
    StatSet t = s;
    t.inc("cycles", 1);
    EXPECT_EQ(s.get("cycles"), 100u);
    EXPECT_EQ(t.get("cycles"), 101u);
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"long-name", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    // Every row has the same line length.
    std::size_t first_nl = out.find('\n');
    ASSERT_NE(first_nl, std::string::npos);
}

TEST(FormatFixed, Decimals)
{
    EXPECT_EQ(dfi::formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(dfi::formatFixed(2.0, 1), "2.0");
}

} // namespace

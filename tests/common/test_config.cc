/**
 * @file
 * Tests for the Config store.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/config.hh"
#include "common/logging.hh"

namespace
{

using dfi::Config;

TEST(Config, StringRoundTrip)
{
    Config c;
    c.set("name", std::string("value"));
    EXPECT_TRUE(c.has("name"));
    EXPECT_EQ(c.getString("name"), "value");
    EXPECT_EQ(c.getString("missing", "def"), "def");
}

TEST(Config, IntRoundTrip)
{
    Config c;
    c.set("rob", std::int64_t{64});
    EXPECT_EQ(c.getInt("rob"), 64);
    EXPECT_EQ(c.getUint("rob"), 64u);
    EXPECT_EQ(c.getInt("missing", -1), -1);
}

TEST(Config, BoolRoundTrip)
{
    Config c;
    c.set("enabled", true);
    EXPECT_TRUE(c.getBool("enabled"));
    c.set("enabled", false);
    EXPECT_FALSE(c.getBool("enabled", true));
    EXPECT_TRUE(c.getBool("missing", true));
}

TEST(Config, MalformedValueIsFatal)
{
    Config c;
    c.set("n", std::string("not-a-number"));
    EXPECT_THROW(c.getInt("n"), dfi::FatalError);
    EXPECT_THROW(c.getBool("n"), dfi::FatalError);
    EXPECT_THROW(c.getDouble("n"), dfi::FatalError);
}

TEST(Config, DoubleParses)
{
    Config c;
    c.set("f", std::string("0.75"));
    EXPECT_DOUBLE_EQ(c.getDouble("f"), 0.75);
}

TEST(Config, EnvUintDefaultsAndParses)
{
    ::unsetenv("DFI_TEST_ENV_UINT");
    EXPECT_EQ(dfi::envUint("DFI_TEST_ENV_UINT", 5), 5u);
    ::setenv("DFI_TEST_ENV_UINT", "123", 1);
    EXPECT_EQ(dfi::envUint("DFI_TEST_ENV_UINT", 5), 123u);
    ::setenv("DFI_TEST_ENV_UINT", "junk", 1);
    EXPECT_EQ(dfi::envUint("DFI_TEST_ENV_UINT", 5), 5u);
    ::unsetenv("DFI_TEST_ENV_UINT");
}

} // namespace

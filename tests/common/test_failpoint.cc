/**
 * @file
 * Tests for the deterministic failpoint registry, including the
 * acceptance-criterion determinism property: the same spec (and
 * seed) always replays the same hit sequence.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "common/failpoint.hh"
#include "common/json.hh"

namespace
{

namespace failpoint = dfi::failpoint;
using dfi::json::Value;
using Kind = failpoint::Action::Kind;

/** Disarm around every test so specs never leak between cases. */
class Failpoint : public ::testing::Test
{
  protected:
    void SetUp() override { failpoint::reset(); }
    void TearDown() override { failpoint::reset(); }
};

TEST_F(Failpoint, UnarmedChecksReturnNone)
{
    EXPECT_FALSE(failpoint::armed());
    EXPECT_EQ(failpoint::check("cache.write").kind, Kind::None);
    EXPECT_EQ(failpoint::evalCount("cache.write"), 0u);
}

TEST_F(Failpoint, ConfigureArmsAndResetDisarms)
{
    std::string error;
    ASSERT_TRUE(failpoint::configure("cache.write=error", error))
        << error;
    EXPECT_TRUE(failpoint::armed());
    EXPECT_EQ(failpoint::check("cache.write").kind, Kind::Error);
    EXPECT_EQ(failpoint::check("cache.read").kind, Kind::None);
    failpoint::reset();
    EXPECT_FALSE(failpoint::armed());
    EXPECT_EQ(failpoint::check("cache.write").kind, Kind::None);
}

TEST_F(Failpoint, EmptySpecDisarms)
{
    std::string error;
    ASSERT_TRUE(failpoint::configure("sock.read=eintr", error));
    ASSERT_TRUE(failpoint::armed());
    ASSERT_TRUE(failpoint::configure("", error));
    EXPECT_FALSE(failpoint::armed());
}

TEST_F(Failpoint, MalformedSpecsRejectedAndLeaveConfigIntact)
{
    std::string error;
    ASSERT_TRUE(failpoint::configure("sock.read=short", error));
    const char *bad[] = {
        "nosuchaction",         // no '='
        "x=frobnicate",         // unknown action
        "x=error@sometimes",    // unknown trigger
        "x=error@nth:0",        // n must be >= 1
        "x=error@every:0",      // n must be >= 1
        "x=delay",              // delay needs :MS
        "x=error@prob:1.5",     // p out of range
        "x=error@prob:abc",     // p not a number
        "x=error;x=error",      // duplicate site
        "=error",               // empty site name
        "x=",                   // empty action
    };
    for (const char *spec : bad) {
        EXPECT_FALSE(failpoint::configure(spec, error))
            << "accepted: " << spec;
        EXPECT_FALSE(error.empty());
    }
    // The good config from before every rejection still stands.
    EXPECT_EQ(failpoint::check("sock.read").kind, Kind::Short);
}

TEST_F(Failpoint, OnceFiresOnFirstEvaluationOnly)
{
    std::string error;
    ASSERT_TRUE(failpoint::configure("a=error@once", error));
    EXPECT_EQ(failpoint::check("a").kind, Kind::Error);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(failpoint::check("a").kind, Kind::None);
    EXPECT_EQ(failpoint::evalCount("a"), 6u);
    EXPECT_EQ(failpoint::fireCount("a"), 1u);
}

TEST_F(Failpoint, NthFiresOnExactlyTheNthEvaluation)
{
    std::string error;
    ASSERT_TRUE(failpoint::configure("a=error@nth:3", error));
    EXPECT_EQ(failpoint::check("a").kind, Kind::None);
    EXPECT_EQ(failpoint::check("a").kind, Kind::None);
    EXPECT_EQ(failpoint::check("a").kind, Kind::Error);
    EXPECT_EQ(failpoint::check("a").kind, Kind::None);
    EXPECT_EQ(failpoint::fireCount("a"), 1u);
}

TEST_F(Failpoint, EveryFiresOnEachMultiple)
{
    std::string error;
    ASSERT_TRUE(failpoint::configure("a=eintr@every:3", error));
    std::vector<bool> fired;
    for (int i = 0; i < 9; ++i)
        fired.push_back(failpoint::check("a").kind == Kind::Eintr);
    const std::vector<bool> expect = {false, false, true,
                                      false, false, true,
                                      false, false, true};
    EXPECT_EQ(fired, expect);
    EXPECT_EQ(failpoint::evalCount("a"), 9u);
    EXPECT_EQ(failpoint::fireCount("a"), 3u);
}

TEST_F(Failpoint, AlwaysIsTheDefaultTrigger)
{
    std::string error;
    ASSERT_TRUE(failpoint::configure("a=short", error));
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(failpoint::check("a").kind, Kind::Short);
    EXPECT_EQ(failpoint::fireCount("a"), 4u);
}

/** The acceptance criterion: same spec + seed => same hit sequence. */
TEST_F(Failpoint, ProbabilisticTriggerIsDeterministic)
{
    const std::string spec = "a=error@prob:0.5:1234";
    std::string error;

    const auto sample = [&] {
        std::vector<bool> fired;
        EXPECT_TRUE(failpoint::configure(spec, error)) << error;
        for (int i = 0; i < 256; ++i)
            fired.push_back(failpoint::check("a").kind ==
                            Kind::Error);
        return fired;
    };

    const std::vector<bool> first = sample();
    const std::vector<bool> second = sample();
    EXPECT_EQ(first, second);

    // Sanity: p=0.5 really is probabilistic, not constant.
    const std::size_t fires =
        static_cast<std::size_t>(std::count(first.begin(),
                                            first.end(), true));
    EXPECT_GT(fires, 64u);
    EXPECT_LT(fires, 192u);
}

TEST_F(Failpoint, ProbStreamsDifferPerSite)
{
    // Two sites armed with one seed draw from distinct streams
    // (seed xor fnv1a(site)), so they must not fire in lockstep.
    std::string error;
    ASSERT_TRUE(failpoint::configure(
        "a=error@prob:0.5:7;b=error@prob:0.5:7", error));
    int lockstep = 0;
    for (int i = 0; i < 128; ++i) {
        const bool fa = failpoint::check("a").kind == Kind::Error;
        const bool fb = failpoint::check("b").kind == Kind::Error;
        lockstep += fa == fb;
    }
    EXPECT_LT(lockstep, 128);
}

TEST_F(Failpoint, DelayIsAbsorbedInsideCheck)
{
    std::string error;
    ASSERT_TRUE(failpoint::configure("a=delay:20@once", error));
    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(failpoint::check("a").kind, Kind::None);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    EXPECT_GE(elapsed.count(), 20);
    EXPECT_EQ(failpoint::fireCount("a"), 1u);

    // Not firing must not sleep (bounded loosely for slow CI).
    const auto start2 = std::chrono::steady_clock::now();
    EXPECT_EQ(failpoint::check("a").kind, Kind::None);
    const auto elapsed2 =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start2);
    EXPECT_LT(elapsed2.count(), 20);
}

TEST_F(Failpoint, StatsJsonReportsEveryArmedSite)
{
    std::string error;
    ASSERT_TRUE(failpoint::configure(
        "a=error@every:2;b=short", error));
    failpoint::check("a");
    failpoint::check("a");
    failpoint::check("b");

    const Value stats = failpoint::statsJson();
    const Value *a = stats.find("a");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->find("evals")->asUint(), 2u);
    EXPECT_EQ(a->find("fires")->asUint(), 1u);
    EXPECT_EQ(a->find("action")->asString(), "error");
    const Value *b = stats.find("b");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->find("evals")->asUint(), 1u);
    EXPECT_EQ(b->find("fires")->asUint(), 1u);
    EXPECT_EQ(b->find("action")->asString(), "short");
}

TEST_F(Failpoint, ReconfigureResetsCounters)
{
    std::string error;
    ASSERT_TRUE(failpoint::configure("a=error", error));
    failpoint::check("a");
    failpoint::check("a");
    EXPECT_EQ(failpoint::evalCount("a"), 2u);
    ASSERT_TRUE(failpoint::configure("a=error", error));
    EXPECT_EQ(failpoint::evalCount("a"), 0u);
}

} // namespace

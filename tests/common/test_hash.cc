/**
 * @file
 * Tests for the stable FNV-1a content hasher (common/hash.hh).
 *
 * The digests pinned here are the published FNV-1a 64-bit test
 * vectors: the hasher's whole reason to exist is that its output is
 * a fixed function of the input bytes, identical across processes
 * and hosts, so the expected values are literals — if any of these
 * change, every content-addressed cache key changes with them.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/hash.hh"

namespace
{

using namespace dfi::hash;

TEST(Hash, PublishedFnv1aVectors)
{
    EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(Hash, IncrementalRawBytesMatchOneShot)
{
    const std::string text = "differential fault injection";
    Fnv1a hasher;
    hasher.update(text.data(), 12);
    hasher.update(text.data() + 12, text.size() - 12);
    EXPECT_EQ(hasher.digest(), fnv1a(text));
}

TEST(Hash, StringUpdatesAreLengthPrefixed)
{
    // Adjacent fields must not alias: ("ab","c") != ("a","bc")
    // even though the concatenated bytes are identical.
    Fnv1a left;
    left.update(std::string_view("ab"));
    left.update(std::string_view("c"));
    Fnv1a right;
    right.update(std::string_view("a"));
    right.update(std::string_view("bc"));
    EXPECT_NE(left.digest(), right.digest());
}

TEST(Hash, IntegerUpdatesAreFixedWidth)
{
    Fnv1a one;
    one.update(std::uint64_t{1});
    Fnv1a two;
    two.update(std::uint64_t{2});
    EXPECT_NE(one.digest(), two.digest());

    // Same value always hashes the same way.
    Fnv1a again;
    again.update(std::uint64_t{1});
    EXPECT_EQ(one.digest(), again.digest());
}

TEST(Hash, ToHexIsFixedWidthLowerCase)
{
    EXPECT_EQ(toHex(0), "0000000000000000");
    EXPECT_EQ(toHex(0xdeadbeefull), "00000000deadbeef");
    EXPECT_EQ(toHex(0xcbf29ce484222325ull), "cbf29ce484222325");

    Fnv1a hasher;
    hasher.update(std::string_view("x"));
    EXPECT_EQ(hasher.hexDigest(), toHex(hasher.digest()));
    EXPECT_EQ(hasher.hexDigest().size(), 16u);
}

} // namespace

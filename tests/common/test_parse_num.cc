/**
 * @file
 * Tests for the strict numeric parsing helpers used by the CLI
 * front ends.  The point of these helpers is rejecting everything
 * strtoul/strtod silently accept, so most cases here are negative.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/parse_num.hh"

namespace
{

using dfi::parseDouble;
using dfi::parseUnsigned;

TEST(ParseUnsigned, AcceptsPlainDecimal)
{
    std::uint64_t value = 99;
    EXPECT_TRUE(parseUnsigned("0", value));
    EXPECT_EQ(value, 0u);
    EXPECT_TRUE(parseUnsigned("12", value));
    EXPECT_EQ(value, 12u);
    EXPECT_TRUE(parseUnsigned("18446744073709551615", value));
    EXPECT_EQ(value, std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseUnsigned, RejectsNonNumbers)
{
    std::uint64_t value = 99;
    EXPECT_FALSE(parseUnsigned("", value));
    EXPECT_FALSE(parseUnsigned("abc", value));
    EXPECT_FALSE(parseUnsigned("1.5", value));
    // Unchanged on failure.
    EXPECT_EQ(value, 99u);
}

TEST(ParseUnsigned, RejectsTrailingGarbage)
{
    // strtoul would happily return 12 for all of these.
    std::uint64_t value = 0;
    EXPECT_FALSE(parseUnsigned("12abc", value));
    EXPECT_FALSE(parseUnsigned("12 ", value));
    EXPECT_FALSE(parseUnsigned("12x4", value));
}

TEST(ParseUnsigned, RejectsSignAndWhitespace)
{
    // strtoul accepts leading whitespace and signs (including "-3",
    // which wraps to a huge unsigned value).
    std::uint64_t value = 0;
    EXPECT_FALSE(parseUnsigned(" 12", value));
    EXPECT_FALSE(parseUnsigned("-3", value));
    EXPECT_FALSE(parseUnsigned("+3", value));
}

TEST(ParseUnsigned, RejectsOverflow)
{
    std::uint64_t value = 0;
    EXPECT_FALSE(parseUnsigned("18446744073709551616", value));
    EXPECT_FALSE(parseUnsigned("99999999999999999999999", value));
}

TEST(ParseUnsigned, BoundedOverloadEnforcesMax)
{
    const std::uint64_t max32 =
        std::numeric_limits<std::uint32_t>::max();
    std::uint64_t value = 0;
    EXPECT_TRUE(parseUnsigned("4294967295", value, max32));
    EXPECT_EQ(value, max32);
    EXPECT_FALSE(parseUnsigned("4294967296", value, max32));
    EXPECT_FALSE(parseUnsigned("abc", value, max32));
}

TEST(ParseDouble, AcceptsFiniteNumbers)
{
    double value = 99.0;
    EXPECT_TRUE(parseDouble("0.5", value));
    EXPECT_DOUBLE_EQ(value, 0.5);
    EXPECT_TRUE(parseDouble("1e-2", value));
    EXPECT_DOUBLE_EQ(value, 0.01);
    EXPECT_TRUE(parseDouble("-2.5", value));
    EXPECT_DOUBLE_EQ(value, -2.5);
    EXPECT_TRUE(parseDouble("3", value));
    EXPECT_DOUBLE_EQ(value, 3.0);
}

TEST(ParseDouble, RejectsNonNumbers)
{
    double value = 99.0;
    EXPECT_FALSE(parseDouble("", value));
    EXPECT_FALSE(parseDouble("x", value));
    EXPECT_FALSE(parseDouble(" 0.5", value));
    EXPECT_DOUBLE_EQ(value, 99.0);
}

TEST(ParseDouble, RejectsTrailingGarbage)
{
    double value = 0.0;
    EXPECT_FALSE(parseDouble("0.5x", value));
    EXPECT_FALSE(parseDouble("0.5 ", value));
    EXPECT_FALSE(parseDouble("1..2", value));
}

TEST(ParseDouble, RejectsNonFinite)
{
    // strtod parses these; a NaN tolerance or infinite timeout
    // factor is never what a flag meant.
    double value = 0.0;
    EXPECT_FALSE(parseDouble("nan", value));
    EXPECT_FALSE(parseDouble("inf", value));
    EXPECT_FALSE(parseDouble("-inf", value));
    EXPECT_FALSE(parseDouble("1e999", value));
}

} // namespace

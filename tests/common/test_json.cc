/**
 * @file
 * Tests for the deterministic JSON value: build/dump byte stability,
 * parse round-trips, and rejection of malformed input (the telemetry
 * layer's contract).
 */

#include <gtest/gtest.h>

#include "common/json.hh"

namespace
{

using dfi::json::Kind;
using dfi::json::Value;

TEST(Json, DumpIsDeterministicAndOrdered)
{
    Value doc = Value::object();
    doc.set("b", Value::unsignedInt(2));
    doc.set("a", Value::unsignedInt(1));
    Value nested = Value::array();
    nested.push(Value::boolean(true));
    nested.push(Value::null());
    nested.push(Value::string("x\"y\n"));
    doc.set("list", std::move(nested));

    // Insertion order is preserved (no sorting, no hashing).
    EXPECT_EQ(doc.dump(), "{\"b\":2,\"a\":1,\"list\":[true,null,"
                          "\"x\\\"y\\n\"]}");
    EXPECT_EQ(doc.dump(), doc.dump());
}

TEST(Json, NumberFormattingIsStable)
{
    EXPECT_EQ(Value::number(0.0).dump(), "0");
    EXPECT_EQ(Value::number(25.0).dump(), "25");
    EXPECT_EQ(Value::number(-3.0).dump(), "-3");
    EXPECT_EQ(Value::number(12.5).dump(), "12.5");
    EXPECT_EQ(Value::number(33.333333333).dump(), "33.333333");
    EXPECT_EQ(Value::integer(-42).dump(), "-42");
    EXPECT_EQ(Value::unsignedInt(18446744073709551615ull).dump(),
              "18446744073709551615");
}

TEST(Json, ParseRoundTrip)
{
    const std::string text =
        "{\"a\":1,\"b\":-2,\"c\":12.5,\"d\":\"hi\\tthere\","
        "\"e\":[true,false,null],\"f\":{\"nested\":3}}";
    Value doc;
    std::string error;
    ASSERT_TRUE(dfi::json::parse(text, doc, error)) << error;
    EXPECT_EQ(doc.get("a").asUint(), 1u);
    EXPECT_EQ(doc.get("b").asInt(), -2);
    EXPECT_DOUBLE_EQ(doc.get("c").asDouble(), 12.5);
    EXPECT_EQ(doc.get("d").asString(), "hi\tthere");
    EXPECT_EQ(doc.get("e").size(), 3u);
    EXPECT_TRUE(doc.get("e").at(0).asBool());
    EXPECT_TRUE(doc.get("e").at(2).isNull());
    EXPECT_EQ(doc.get("f").get("nested").asUint(), 3u);

    // Serialize → parse → serialize is a fixed point.
    Value again;
    ASSERT_TRUE(dfi::json::parse(doc.dump(), again, error)) << error;
    EXPECT_EQ(again.dump(), doc.dump());
}

TEST(Json, PrettyOutputParsesBack)
{
    Value doc = Value::object();
    doc.set("x", Value::unsignedInt(1));
    Value arr = Value::array();
    arr.push(Value::string("y"));
    doc.set("arr", std::move(arr));
    Value parsed;
    std::string error;
    ASSERT_TRUE(dfi::json::parse(doc.dumpPretty(), parsed, error))
        << error;
    EXPECT_EQ(parsed.dump(), doc.dump());
}

TEST(Json, RejectsMalformedInput)
{
    Value out;
    std::string error;
    EXPECT_FALSE(dfi::json::parse("", out, error));
    EXPECT_FALSE(dfi::json::parse("{", out, error));
    EXPECT_FALSE(dfi::json::parse("{\"a\":}", out, error));
    EXPECT_FALSE(dfi::json::parse("[1,2", out, error));
    EXPECT_FALSE(dfi::json::parse("\"unterminated", out, error));
    EXPECT_FALSE(dfi::json::parse("{} trailing", out, error));
    EXPECT_FALSE(dfi::json::parse("nul", out, error));
    EXPECT_FALSE(error.empty());
}

} // namespace

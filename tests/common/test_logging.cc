/**
 * @file
 * Tests for the logging/error machinery.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace
{

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(dfi::fatal("bad user input: %s", 42), dfi::FatalError);
}

TEST(Logging, FatalMessageFormatted)
{
    try {
        dfi::fatal("value %s out of range [%s, %s]", 7, 1, 5);
        FAIL() << "fatal did not throw";
    } catch (const dfi::FatalError &err) {
        EXPECT_STREQ(err.what(), "value 7 out of range [1, 5]");
    }
}

TEST(Logging, LevelRoundTrips)
{
    const auto before = dfi::logLevel();
    dfi::setLogLevel(dfi::LogLevel::Debug);
    EXPECT_EQ(dfi::logLevel(), dfi::LogLevel::Debug);
    dfi::setLogLevel(before);
}

TEST(Logging, FormatHandlesMixedTypes)
{
    const std::string s =
        dfi::detail::format("%s+%s=%s done", 1, 2.5, "three");
    EXPECT_EQ(s, "1+2.5=three done");
}

TEST(Logging, FormatWithoutPlaceholders)
{
    EXPECT_EQ(dfi::detail::format("plain"), "plain");
}

TEST(Logging, WarnDoesNotThrow)
{
    EXPECT_NO_THROW(dfi::warn("warning %s", "text"));
    EXPECT_NO_THROW(dfi::inform("info %s", 1));
    EXPECT_NO_THROW(dfi::debugLog("debug %s", 2));
}

} // namespace

/**
 * @file
 * Tests for the declarative flag-parsing facade shared by the tools:
 * decoding into destinations, the built-in --help, uniform
 * diagnostics, and the generated usage text.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/cli.hh"

namespace
{

using dfi::cli::FlagSet;
using dfi::cli::ParseResult;

/** argv adapter: gtest-friendly parse of a token list. */
ParseResult
parseTokens(FlagSet &flags, std::vector<std::string> tokens,
            std::string &error)
{
    std::vector<char *> argv;
    std::string name = "tool";
    argv.push_back(name.data());
    for (std::string &token : tokens)
        argv.push_back(token.data());
    return flags.parse(static_cast<int>(argv.size()), argv.data(),
                       error);
}

TEST(Cli, DecodesEveryFlagKindIntoItsDestination)
{
    bool verbose = false;
    bool acted = false;
    std::uint64_t runs = 0;
    std::uint32_t jobs = 0;
    double scale = 0.0;
    std::string out;
    std::string custom_value;

    FlagSet flags("tool", "[options]");
    flags.flag("--verbose", "chatty", &verbose);
    flags.flag("--act", "run the action", [&acted] { acted = true; });
    flags.uint64("--runs", "N", "run count", &runs);
    flags.uint32("--jobs", "N", "thread count", &jobs);
    flags.number("--scale", "F", "scale factor", &scale);
    flags.text("--out", "PATH", "output path", &out);
    flags.custom("--mode", "M", "a custom decoder",
                 [&custom_value](const std::string &text,
                                 std::string &error) {
                     if (text == "bad") {
                         error = "mode may not be bad";
                         return false;
                     }
                     custom_value = text;
                     return true;
                 });

    std::string error;
    EXPECT_EQ(parseTokens(flags,
                          {"--verbose", "--act", "--runs", "42",
                           "--jobs", "4", "--scale", "0.5", "--out",
                           "base", "--mode", "fast"},
                          error),
              ParseResult::Ok)
        << error;
    EXPECT_TRUE(verbose);
    EXPECT_TRUE(acted);
    EXPECT_EQ(runs, 42u);
    EXPECT_EQ(jobs, 4u);
    EXPECT_DOUBLE_EQ(scale, 0.5);
    EXPECT_EQ(out, "base");
    EXPECT_EQ(custom_value, "fast");
}

TEST(Cli, HelpIsBuiltIn)
{
    FlagSet flags("tool", "[options]");
    bool verbose = false;
    flags.flag("--verbose", "chatty", &verbose);

    std::string error;
    EXPECT_EQ(parseTokens(flags, {"--help"}, error),
              ParseResult::Help);
    EXPECT_EQ(parseTokens(flags, {"-h"}, error), ParseResult::Help);
    // --help wins even mid-line and touches no destination.
    EXPECT_EQ(parseTokens(flags, {"--verbose", "--help"}, error),
              ParseResult::Help);
}

TEST(Cli, UniformDiagnostics)
{
    FlagSet flags("tool", "[options]");
    std::uint64_t runs = 0;
    flags.uint64("--runs", "N", "run count", &runs, 100);
    flags.custom("--mode", "M", "a custom decoder",
                 [](const std::string &text, std::string &error) {
                     error = "never valid";
                     return false;
                 });

    std::string error;
    EXPECT_EQ(parseTokens(flags, {"--bogus"}, error),
              ParseResult::Error);
    EXPECT_EQ(error, "unknown option '--bogus' (try --help)");

    EXPECT_EQ(parseTokens(flags, {"--runs"}, error),
              ParseResult::Error);
    EXPECT_EQ(error, "missing value for --runs");

    EXPECT_EQ(parseTokens(flags, {"--runs", "12x"}, error),
              ParseResult::Error);
    EXPECT_NE(error.find("invalid value '12x' for --runs"),
              std::string::npos)
        << error;

    // Out-of-range (max 100) fails the strict numeric grammar too.
    EXPECT_EQ(parseTokens(flags, {"--runs", "101"}, error),
              ParseResult::Error);
    EXPECT_NE(error.find("--runs"), std::string::npos) << error;

    // Custom decoder reasons are wrapped with the flag name.
    EXPECT_EQ(parseTokens(flags, {"--mode", "x"}, error),
              ParseResult::Error);
    EXPECT_NE(error.find("invalid value 'x' for --mode"),
              std::string::npos)
        << error;
    EXPECT_NE(error.find("never valid"), std::string::npos) << error;

    // Positional tokens are rejected unless a slot was registered.
    EXPECT_EQ(parseTokens(flags, {"stray"}, error),
              ParseResult::Error);
    EXPECT_NE(error.find("stray"), std::string::npos) << error;
}

TEST(Cli, PositionalsCollectInOrder)
{
    FlagSet flags("tool", "[options] FILE...");
    bool verbose = false;
    flags.flag("--verbose", "chatty", &verbose);
    std::vector<std::string> files;
    flags.positionals("FILE...", "input files", &files);

    std::string error;
    EXPECT_EQ(parseTokens(flags, {"a", "--verbose", "b", "c"}, error),
              ParseResult::Ok)
        << error;
    EXPECT_TRUE(verbose);
    EXPECT_EQ(files, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Cli, UsageListsSectionsFlagsAndHelp)
{
    FlagSet flags("tool", "[options] FILE");
    flags.section("selection");
    std::string core;
    flags.text("--core", "NAME", "core model name", &core);
    flags.section("output");
    bool verbose = false;
    flags.flag("--verbose", "chatty with a\nsecond help line",
               &verbose);
    std::vector<std::string> files;
    flags.positionals("FILE", "the input", &files);

    const std::string usage = flags.usage();
    EXPECT_NE(usage.find("usage: tool [options] FILE"),
              std::string::npos)
        << usage;
    EXPECT_NE(usage.find("selection:"), std::string::npos) << usage;
    EXPECT_NE(usage.find("output:"), std::string::npos) << usage;
    EXPECT_NE(usage.find("--core NAME"), std::string::npos) << usage;
    EXPECT_NE(usage.find("core model name"), std::string::npos)
        << usage;
    EXPECT_NE(usage.find("second help line"), std::string::npos)
        << usage;
    EXPECT_NE(usage.find("--verbose"), std::string::npos) << usage;
}

} // namespace

/**
 * @file
 * Shape-claim integration tests: lock the qualitative findings of the
 * paper's evaluation (DESIGN.md "Shape targets") on seeded —
 * therefore deterministic — miniature campaigns.
 *
 * These intentionally use few injections (statistical error would be
 * large for *estimating* vulnerability), but with a fixed seed every
 * assertion is exact and reproducible; the orderings they check are
 * confirmed at full scale by the bench suite (EXPERIMENTS.md).
 */

#include <gtest/gtest.h>

#include "inject/campaign.hh"
#include "inject/parser.hh"

namespace
{

using namespace dfi;
using namespace dfi::inject;

double
vuln(const std::string &core, const std::string &component,
     const std::string &benchmark, std::uint64_t runs = 80)
{
    CampaignConfig cfg;
    cfg.coreName = core;
    cfg.component = component;
    cfg.benchmark = benchmark;
    cfg.numInjections = runs;
    cfg.seed = 0xd1f;
    InjectionCampaign campaign(cfg);
    Parser parser;
    return campaign.run().classify(parser).vulnerability();
}

ClassCounts
counts(const std::string &core, const std::string &component,
       const std::string &benchmark, std::uint64_t runs = 80)
{
    CampaignConfig cfg;
    cfg.coreName = core;
    cfg.component = component;
    cfg.benchmark = benchmark;
    cfg.numInjections = runs;
    cfg.seed = 0xd1f;
    InjectionCampaign campaign(cfg);
    Parser parser;
    return campaign.run().classify(parser);
}

TEST(Shapes, RegisterFileAndLsqLeastVulnerable)
{
    // Shape 1: int RF and LSQ vulnerability stay in the
    // few-percent range on every tool (paper: almost always < 3%).
    for (const char *core : {"marss-x86", "gem5-x86", "gem5-arm"}) {
        EXPECT_LE(vuln(core, "int_regfile", "caes"), 6.0) << core;
        EXPECT_LE(vuln(core, "lsq", "caes"), 6.0) << core;
    }
}

TEST(Shapes, L1CachesMostVulnerable)
{
    // Shape 3: the first-level caches dominate the structure ranking
    // on a memory-active workload.
    const double l1d = vuln("gem5-x86", "l1d", "fft");
    const double rf = vuln("gem5-x86", "int_regfile", "fft");
    const double lsq = vuln("gem5-x86", "lsq", "fft");
    EXPECT_GT(l1d, rf);
    EXPECT_GT(l1d, lsq);
    EXPECT_GT(l1d, 10.0);
}

TEST(Shapes, MafinL1dBelowGefinL1d)
{
    // Shape 4 (Remark 3): the MARSS model's shadow-memory hypervisor
    // masks L1D faults that the gem5 model exposes.  Checked on the
    // two most output-heavy workloads.
    const double m =
        vuln("marss-x86", "l1d", "fft") + vuln("marss-x86", "l1d",
                                               "smooth");
    const double g =
        vuln("gem5-x86", "l1d", "fft") + vuln("gem5-x86", "l1d",
                                              "smooth");
    EXPECT_LT(m, g);
}

TEST(Shapes, SdcDominatesL1dOutcomes)
{
    // Shape 5 (Remark 4): in the L1D, SDC is the prevailing
    // non-masked class by a wide margin.
    for (const char *core : {"marss-x86", "gem5-x86"}) {
        const auto c = counts(core, "l1d", "fft");
        const double sdc = c.percent(OutcomeClass::Sdc);
        const double rest = c.vulnerability() - sdc;
        EXPECT_GT(sdc, 2.0 * rest) << core;
    }
}

TEST(Shapes, AssertInMafinCrashInGefin)
{
    // Shape 7 (Remark 8): non-SDC abnormal endings classify as Assert
    // on the dense-checking MARSS model and as Crash on the sparse
    // gem5 model.  L1I faults produce plenty of both.
    ClassCounts m, g;
    for (const char *bench : {"caes", "cjpeg"}) {
        m.add(counts("marss-x86", "l1i", bench));
        g.add(counts("gem5-x86", "l1i", bench));
    }
    EXPECT_GT(m.get(OutcomeClass::Assert), 0u);
    EXPECT_EQ(g.get(OutcomeClass::Assert), 0u);
    EXPECT_GT(g.get(OutcomeClass::Crash), m.get(OutcomeClass::Crash));
}

TEST(Shapes, UnifiedLsqSlightlyMoreVulnerable)
{
    // Shape 2 (Remark 1): the unified MARSS LSQ (load+store data)
    // reports at least the vulnerability of the split gem5 queues
    // where only stores hold data.  LSQ vulnerability is ~1-2%, so
    // aggregate over four workloads at a higher run count to make the
    // deterministic comparison meaningful (LSQ campaigns are cheap:
    // most injections early-stop on unused entries).
    double m = 0, g = 0;
    for (const char *bench : {"caes", "smooth", "fft", "qsort"}) {
        m += vuln("marss-x86", "lsq", bench, 300);
        g += vuln("gem5-x86", "lsq", bench, 300);
    }
    EXPECT_GE(m, g);
}

TEST(Shapes, L2BetweenRfAndL1)
{
    // Shape 8: the L2 sits between the small structures and the L1s.
    const double l2 = vuln("gem5-x86", "l2", "fft");
    const double rf = vuln("gem5-x86", "int_regfile", "fft");
    const double l1d = vuln("gem5-x86", "l1d", "fft");
    EXPECT_GE(l2, rf);
    EXPECT_LT(l2, l1d);
}

TEST(Shapes, EarlyStopSavesSubstantialCycles)
{
    // Shape 10 (Section III.B): the early-stop optimizations save a
    // large fraction of per-run simulation cycles.
    CampaignConfig cfg;
    cfg.coreName = "gem5-x86";
    cfg.component = "l1d";
    cfg.benchmark = "caes";
    cfg.numInjections = 60;
    cfg.seed = 0xd1f;
    InjectionCampaign with(cfg);
    const auto fast = with.run();

    cfg.earlyStopInvalidEntry = false;
    cfg.earlyStopOverwrite = false;
    InjectionCampaign without(cfg);
    const auto slow = without.run();

    const double saving =
        1.0 - static_cast<double>(fast.simulatedFaultyCycles) /
                  static_cast<double>(slow.simulatedFaultyCycles);
    EXPECT_GT(saving, 0.15);
}

} // namespace

/**
 * @file
 * Tests for the campaign telemetry layer: JSONL round-trips through
 * the reader, serial vs multi-job byte-identity at the ordered-commit
 * point, and the dfi-diff outcomes (equal / drift / malformed).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <unordered_map>

#include "common/failpoint.hh"
#include "common/logging.hh"
#include "inject/campaign.hh"
#include "inject/telemetry.hh"

namespace
{

using namespace dfi::inject;

/** Small fixed-seed campaign config (same shape as the CI smoke). */
CampaignConfig
smokeConfig()
{
    CampaignConfig cfg;
    cfg.coreName = "marss-x86";
    cfg.benchmark = "micro";
    cfg.component = "int_regfile";
    cfg.numInjections = 12;
    cfg.seed = 7;
    return cfg;
}

std::string
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Temp dir per test, removed on destruction. */
struct TempDir
{
    std::filesystem::path path;

    TempDir()
    {
        path = std::filesystem::temp_directory_path() /
               ("dfi_telemetry_test_" +
                std::to_string(
                    ::testing::UnitTest::GetInstance()->random_seed()) +
                "_" + ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name());
        std::filesystem::create_directories(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
};

TEST(Telemetry, JsonlRoundTripsThroughReader)
{
    TempDir dir;
    CampaignConfig cfg = smokeConfig();
    cfg.telemetryOut = (dir.path / "run").string();
    InjectionCampaign campaign(cfg);
    const auto result = campaign.run();

    TelemetryFile runs;
    std::string error;
    ASSERT_TRUE(readTelemetryFile((dir.path / "run.jsonl").string(),
                                  runs, error))
        << error;
    EXPECT_EQ(runs.kind, kTelemetryRunsKind);
    EXPECT_EQ(runs.header.get("schema").asUint(),
              kTelemetrySchemaVersion);
    EXPECT_EQ(runs.header.get("config").get("benchmark").asString(),
              "micro");
    EXPECT_EQ(runs.header.get("golden").get("cycles").asUint(),
              result.golden.cycles);

    // One record per run — executed and pruned — in runId order,
    // fields wired from the plan.
    ASSERT_EQ(runs.records.size(),
              result.records.size() + result.pruned.size());
    std::unordered_map<std::uint64_t, std::size_t> executed;
    for (std::size_t i = 0; i < result.recordRunIds.size(); ++i)
        executed.emplace(result.recordRunIds[i], i);
    for (std::size_t i = 0; i < runs.records.size(); ++i) {
        const TelemetryRecord &rec = runs.records[i];
        EXPECT_EQ(rec.runId, i);
        EXPECT_EQ(rec.seed, cfg.seed);
        EXPECT_EQ(rec.component, "int_regfile");
        const auto it = executed.find(rec.runId);
        if (it != executed.end()) {
            EXPECT_EQ(rec.instructions,
                      result.records[it->second].instructions);
            EXPECT_EQ(rec.cycles, result.records[it->second].cycles);
        }
        EXPECT_FALSE(rec.outcome.empty());
        // Volatile fields are zero unless timing capture is on.
        EXPECT_EQ(rec.wallMicros, 0u);
        EXPECT_EQ(rec.jobs, 0u);
    }

    // The summary parses too and its class totals match the stream.
    TelemetryFile summary;
    ASSERT_TRUE(
        readTelemetryFile((dir.path / "run.summary.json").string(),
                          summary, error))
        << error;
    EXPECT_EQ(summary.kind, kTelemetrySummaryKind);
    EXPECT_EQ(summary.header.get("runs").asUint(),
              result.records.size() + result.pruned.size());
    Parser parser;
    const auto counts = result.classify(parser);
    const auto &classes = summary.header.get("classes");
    std::uint64_t summed = 0;
    for (const auto &[name, cell] : classes.members())
        summed += cell.get("count").asUint();
    EXPECT_EQ(summed, counts.total());
}

TEST(Telemetry, SerialAndFourJobStreamsAreByteIdentical)
{
    TempDir dir;
    CampaignConfig serial = smokeConfig();
    serial.jobs = 1;
    serial.telemetryOut = (dir.path / "serial").string();
    InjectionCampaign(serial).run();

    CampaignConfig threaded = smokeConfig();
    threaded.jobs = 4;
    threaded.telemetryOut = (dir.path / "jobs4").string();
    InjectionCampaign(threaded).run();

    EXPECT_EQ(readFile(dir.path / "serial.jsonl"),
              readFile(dir.path / "jobs4.jsonl"));
    EXPECT_EQ(readFile(dir.path / "serial.summary.json"),
              readFile(dir.path / "jobs4.summary.json"));
}

TEST(Telemetry, CheckpointModesProduceByteIdenticalArtifacts)
{
    // The checkpoint fast path is a pure execution strategy: the
    // artifacts must be byte-identical with checkpoints on, off, or
    // budget-starved down to the base snapshot, serial or threaded.
    TempDir dir;
    struct Variant
    {
        const char *name;
        bool useCheckpoints;
        std::uint64_t budgetMB;
        std::uint32_t jobs;
    };
    const Variant variants[] = {
        {"on_serial", true, 256, 1},
        {"on_jobs4", true, 256, 4},
        {"off_serial", false, 256, 1},
        {"off_jobs4", false, 256, 4},
        {"budget_starved", true, 1, 1},
    };

    for (const Variant &variant : variants) {
        CampaignConfig cfg = smokeConfig();
        cfg.useCheckpoints = variant.useCheckpoints;
        cfg.checkpointMemBudgetMB = variant.budgetMB;
        cfg.jobs = variant.jobs;
        cfg.telemetryOut = (dir.path / variant.name).string();
        InjectionCampaign(cfg).run();
    }

    const std::string runs =
        readFile(dir.path / "on_serial.jsonl");
    const std::string summary =
        readFile(dir.path / "on_serial.summary.json");
    EXPECT_FALSE(runs.empty());
    for (std::size_t i = 1; i < std::size(variants); ++i) {
        const Variant &variant = variants[i];
        EXPECT_EQ(runs, readFile(dir.path /
                                 (std::string(variant.name) +
                                  ".jsonl")))
            << variant.name;
        EXPECT_EQ(summary,
                  readFile(dir.path / (std::string(variant.name) +
                                       ".summary.json")))
            << variant.name;
    }
}

TEST(Telemetry, ExactDiffIgnoresVolatileTimingFields)
{
    TempDir dir;
    CampaignConfig plain = smokeConfig();
    plain.telemetryOut = (dir.path / "plain").string();
    InjectionCampaign(plain).run();

    CampaignConfig timed = smokeConfig();
    timed.jobs = 2;
    timed.telemetryTiming = true;
    timed.telemetryOut = (dir.path / "timed").string();
    InjectionCampaign(timed).run();

    // The bytes differ (real wall_us / jobs values)...
    EXPECT_NE(readFile(dir.path / "plain.jsonl"),
              readFile(dir.path / "timed.jsonl"));

    // ...but exact diff treats them as volatile.
    std::string report;
    EXPECT_EQ(diffTelemetryFiles((dir.path / "plain.jsonl").string(),
                                 (dir.path / "timed.jsonl").string(),
                                 DiffOptions{}, report),
              DiffOutcome::Equal)
        << report;
}

TEST(Telemetry, DiffOutcomesEqualDriftMalformed)
{
    TempDir dir;
    CampaignConfig cfg = smokeConfig();
    cfg.telemetryOut = (dir.path / "a").string();
    InjectionCampaign(cfg).run();

    const std::string path_a = (dir.path / "a.jsonl").string();
    std::string report;

    // Equal: a file against itself.
    EXPECT_EQ(diffTelemetryFiles(path_a, path_a, DiffOptions{},
                                 report),
              DiffOutcome::Equal)
        << report;

    // Drift: flip one record's outcome class.
    std::string text = readFile(path_a);
    const auto pos = text.find("\"outcome\":\"");
    ASSERT_NE(pos, std::string::npos);
    const auto value_begin = pos + std::string("\"outcome\":\"").size();
    const auto value_end = text.find('"', value_begin);
    text.replace(value_begin, value_end - value_begin, "Tampered");
    const std::string path_b = (dir.path / "b.jsonl").string();
    {
        std::ofstream out(path_b, std::ios::binary);
        out << text;
    }
    report.clear();
    EXPECT_EQ(diffTelemetryFiles(path_a, path_b, DiffOptions{},
                                 report),
              DiffOutcome::Drift);
    EXPECT_NE(report.find("outcome"), std::string::npos) << report;

    // Malformed: not a telemetry artifact at all.
    const std::string path_c = (dir.path / "c.jsonl").string();
    {
        std::ofstream out(path_c, std::ios::binary);
        out << "this is not json\n";
    }
    report.clear();
    EXPECT_EQ(diffTelemetryFiles(path_a, path_c, DiffOptions{},
                                 report),
              DiffOutcome::Malformed);

    // Malformed: missing file.
    report.clear();
    EXPECT_EQ(
        diffTelemetryFiles(path_a, (dir.path / "nope.jsonl").string(),
                           DiffOptions{}, report),
        DiffOutcome::Malformed);
}

TEST(Telemetry, ReaderDropsTornTrailingLineWithWarning)
{
    TempDir dir;
    CampaignConfig cfg = smokeConfig();
    cfg.telemetryOut = (dir.path / "run").string();
    InjectionCampaign(cfg).run();
    const std::string full = readFile(dir.path / "run.jsonl");

    // Clean streams parse without a warning.
    TelemetryFile clean;
    std::string error;
    ASSERT_TRUE(parseTelemetry(full, clean, error)) << error;
    EXPECT_TRUE(clean.warning.empty()) << clean.warning;

    // A killed writer tears the final line mid-record: the reader
    // drops it with a warning and keeps every complete record.
    const std::size_t last_begin =
        full.rfind('\n', full.size() - 2) + 1;
    const std::string torn =
        full.substr(0, last_begin) +
        full.substr(last_begin, 17); // half a record, no newline
    TelemetryFile file;
    ASSERT_TRUE(parseTelemetry(torn, file, error)) << error;
    EXPECT_EQ(file.records.size(), clean.records.size() - 1);
    EXPECT_NE(file.warning.find("torn trailing line"),
              std::string::npos)
        << file.warning;

    // Mid-file corruption is NOT a torn tail: hard error.
    std::string corrupt = full;
    const std::size_t second_line = corrupt.find('\n') + 1;
    corrupt.insert(second_line, "{broken\n");
    EXPECT_FALSE(parseTelemetry(corrupt, file, error));
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(Telemetry, ToleranceModeAcceptsSmallStatisticalDrift)
{
    TempDir dir;
    CampaignConfig cfg_a = smokeConfig();
    cfg_a.telemetryOut = (dir.path / "a").string();
    InjectionCampaign(cfg_a).run();

    // A different seed: same campaign statistically, different runs.
    CampaignConfig cfg_b = smokeConfig();
    cfg_b.seed = 8;
    cfg_b.telemetryOut = (dir.path / "b").string();
    InjectionCampaign(cfg_b).run();

    const std::string path_a = (dir.path / "a.jsonl").string();
    const std::string path_b = (dir.path / "b.jsonl").string();

    // Exact mode must flag the divergence...
    std::string report;
    EXPECT_EQ(diffTelemetryFiles(path_a, path_b, DiffOptions{},
                                 report),
              DiffOutcome::Drift);

    // ...while a wide tolerance accepts it.
    DiffOptions loose;
    loose.exact = false;
    loose.tolerancePercent = 100.0;
    report.clear();
    EXPECT_EQ(diffTelemetryFiles(path_a, path_b, loose, report),
              DiffOutcome::Equal)
        << report;

    // And a zero tolerance on different data reports drift.
    DiffOptions strict;
    strict.exact = false;
    strict.tolerancePercent = 0.0;
    report.clear();
    const auto strict_outcome =
        diffTelemetryFiles(path_a, path_b, strict, report);
    EXPECT_TRUE(strict_outcome == DiffOutcome::Drift ||
                strict_outcome == DiffOutcome::Equal);
}

// ---------------------------------------------------------------
// Chaos: injected stream/flush failures drive the real fatal() paths
// ---------------------------------------------------------------

/** Disarms the failpoint registry on scope exit (test hygiene). */
struct FailpointGuard
{
    ~FailpointGuard() { dfi::failpoint::reset(); }
};

TEST(TelemetryChaos, StreamWriteFailureIsAFatalError)
{
    FailpointGuard guard;
    TempDir dir;
    std::string error;
    ASSERT_TRUE(dfi::failpoint::configure(
        "telemetry.write=error@nth:1", error))
        << error;

    // The campaign streams its runs JSONL; the injected write
    // failure must surface as FatalError (what a full disk would
    // raise), not as a silent zero-length artifact.
    CampaignConfig cfg = smokeConfig();
    cfg.telemetryOut = (dir.path / "doomed").string();
    InjectionCampaign campaign(cfg);
    EXPECT_THROW(campaign.run(), dfi::FatalError);
}

TEST(TelemetryChaos, SummaryFlushFailureIsAFatalError)
{
    FailpointGuard guard;
    TempDir dir;
    std::string error;
    ASSERT_TRUE(dfi::failpoint::configure(
        "telemetry.flush=error@nth:1", error))
        << error;

    CampaignConfig cfg = smokeConfig();
    cfg.telemetryOut = (dir.path / "doomed").string();
    InjectionCampaign campaign(cfg);
    EXPECT_THROW(campaign.run(), dfi::FatalError);
}

TEST(TelemetryChaos, MidStreamWriteFailureIsAFatalError)
{
    FailpointGuard guard;
    TempDir dir;
    std::string error;
    // Let the header through, then fail a per-record append.
    ASSERT_TRUE(dfi::failpoint::configure(
        "telemetry.write=error@nth:4", error))
        << error;

    CampaignConfig cfg = smokeConfig();
    cfg.telemetryOut = (dir.path / "doomed").string();
    InjectionCampaign campaign(cfg);
    EXPECT_THROW(campaign.run(), dfi::FatalError);
}

} // namespace

/**
 * @file
 * Tests for the layered campaign execution engine: the planning
 * layer's task grouping, the executors' runId-ordered result
 * commitment, and the end-to-end determinism contract — a campaign's
 * records, masks, counts, and aggregate statistics are byte-identical
 * for SerialExecutor and ThreadPoolExecutor on every simulator setup,
 * and reproducible across re-runs with the same seed.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

#include "common/logging.hh"
#include "inject/campaign.hh"
#include "inject/executor.hh"
#include "inject/parser.hh"
#include "inject/plan.hh"
#include "inject/reporting.hh"

namespace
{

using namespace dfi;
using namespace dfi::inject;

/** Serialize everything a RunRecord carries, byte for byte. */
std::string
serializeRecord(const syskit::RunRecord &record)
{
    std::ostringstream os;
    os << static_cast<int>(record.term) << '|' << record.exitCode
       << '|' << record.cycles << '|' << record.instructions << '|'
       << record.earlyStopMasked << '|' << record.earlyStopReason
       << '|' << record.detail << '|';
    for (std::uint8_t byte : record.output)
        os << static_cast<int>(byte) << ',';
    os << '|';
    for (const syskit::DueEvent &event : record.dueEvents)
        os << event.kind << '@' << event.pc << ',';
    os << '|' << record.stats.dump();
    return os.str();
}

std::string
serializeRecords(const std::vector<syskit::RunRecord> &records)
{
    std::string all;
    for (const syskit::RunRecord &record : records) {
        all += serializeRecord(record);
        all += '\n';
    }
    return all;
}

std::string
serializeMasks(const std::vector<FaultMask> &masks)
{
    std::string all;
    for (const FaultMask &mask : masks) {
        all += mask.toLine();
        all += '\n';
    }
    return all;
}

CampaignConfig
microConfig(const std::string &core, std::uint32_t jobs)
{
    CampaignConfig cfg;
    cfg.benchmark = "micro";
    cfg.coreName = core;
    cfg.component = "l1d";
    cfg.numInjections = 32;
    cfg.seed = 7;
    cfg.jobs = jobs;
    return cfg;
}

TEST(Plan, GroupsMasksByRunId)
{
    std::vector<FaultMask> masks(6);
    const std::uint64_t run_ids[] = {0, 0, 1, 2, 2, 2};
    const std::uint64_t cycles[] = {30, 10, 5, 9, 2, 40};
    for (std::size_t i = 0; i < masks.size(); ++i) {
        masks[i].runId = run_ids[i];
        masks[i].cycle = cycles[i];
    }

    const CampaignPlan plan(CampaignConfig{}, syskit::RunRecord{},
                            masks, 4);
    ASSERT_EQ(plan.numRuns(), 4u);
    EXPECT_EQ(plan.tasks()[0].masks.size(), 2u);
    EXPECT_EQ(plan.tasks()[0].firstCycle, 10u);
    EXPECT_EQ(plan.tasks()[1].masks.size(), 1u);
    EXPECT_EQ(plan.tasks()[1].firstCycle, 5u);
    EXPECT_EQ(plan.tasks()[2].masks.size(), 3u);
    EXPECT_EQ(plan.tasks()[2].firstCycle, 2u);
    EXPECT_EQ(plan.tasks()[3].masks.size(), 0u);
    EXPECT_EQ(plan.masks().size(), 6u);
    for (std::uint64_t run_id = 0; run_id < 4; ++run_id)
        EXPECT_EQ(plan.tasks()[run_id].runId, run_id);
}

TEST(Executor, ResolveJobs)
{
    EXPECT_GE(resolveJobs(0), 1u);
    EXPECT_EQ(resolveJobs(1), 1u);
    EXPECT_EQ(resolveJobs(7), 7u);
    EXPECT_EQ(makeExecutor({1})->jobs(), 1u);
    EXPECT_STREQ(makeExecutor({1})->name(), "serial");
    EXPECT_EQ(makeExecutor({4})->jobs(), 4u);
    EXPECT_STREQ(makeExecutor({4})->name(), "thread-pool");
}

TEST(Executor, ThreadPoolCommitsResultsInRunIdOrder)
{
    // 24 synthetic tasks finishing in roughly reverse order: the
    // result vector must still come back indexed by runId.
    constexpr std::uint64_t kTasks = 24;
    std::vector<FaultMask> masks(kTasks);
    for (std::uint64_t i = 0; i < kTasks; ++i)
        masks[i].runId = i;
    const CampaignPlan plan(CampaignConfig{}, syskit::RunRecord{},
                            masks, kTasks);

    const TaskRunner runner = [](const RunTask &task) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            200 * (kTasks - task.runId)));
        TaskResult result;
        result.record.cycles = 1000 + task.runId;
        result.record.stats.inc("runs");
        result.simulatedCycles = task.runId;
        return result;
    };

    std::vector<std::pair<std::uint64_t, std::uint64_t>> progress;
    CampaignReporter reporter(
        [&progress](std::uint64_t done, std::uint64_t total) {
            progress.emplace_back(done, total);
        },
        kTasks);

    ThreadPoolExecutor executor(4);
    const auto results = executor.run(plan, runner, reporter);

    ASSERT_EQ(results.size(), kTasks);
    for (std::uint64_t i = 0; i < kTasks; ++i) {
        EXPECT_EQ(results[i].record.cycles, 1000 + i);
        EXPECT_EQ(results[i].simulatedCycles, i);
    }
    // Progress callbacks are serialised and strictly increasing even
    // though completions raced.
    ASSERT_EQ(progress.size(), kTasks);
    for (std::uint64_t i = 0; i < kTasks; ++i) {
        EXPECT_EQ(progress[i].first, i + 1);
        EXPECT_EQ(progress[i].second, kTasks);
    }
    EXPECT_EQ(reporter.aggregateStats().get("runs"), kTasks);
}

TEST(Executor, ThreadPoolPropagatesTaskErrors)
{
    std::vector<FaultMask> masks(8);
    for (std::uint64_t i = 0; i < masks.size(); ++i)
        masks[i].runId = i;
    const CampaignPlan plan(CampaignConfig{}, syskit::RunRecord{},
                            masks, masks.size());
    const TaskRunner runner = [](const RunTask &task) -> TaskResult {
        if (task.runId == 3)
            fatal("task %s failed", task.runId);
        return {};
    };
    CampaignReporter reporter({}, masks.size());
    ThreadPoolExecutor executor(4);
    EXPECT_THROW(executor.run(plan, runner, reporter), FatalError);
}

/**
 * The acceptance contract: on every simulator setup, a >=32-run
 * campaign yields byte-identical RunRecord sequences, masks, and
 * ClassCounts for SerialExecutor vs ThreadPoolExecutor{jobs=4}, and
 * re-running with the same seed reproduces both.
 */
class ExecutorDeterminism
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(ExecutorDeterminism, ParallelBitIdenticalToSerial)
{
    const std::string core = GetParam();
    Parser parser;

    auto run_with_jobs = [&core](std::uint32_t jobs) {
        InjectionCampaign campaign(microConfig(core, jobs));
        return campaign.run();
    };

    const CampaignResult serial = run_with_jobs(1);
    const CampaignResult parallel = run_with_jobs(4);
    const CampaignResult parallel_again = run_with_jobs(4);

    // With pruning, executed records plus pruned outcomes cover the
    // whole campaign; the split itself must also be deterministic.
    ASSERT_EQ(serial.records.size() + serial.pruned.size(), 32u);
    ASSERT_EQ(parallel.records.size() + parallel.pruned.size(), 32u);
    ASSERT_EQ(serial.records.size(), parallel.records.size());

    // Byte-identical record sequences and mask repositories.
    EXPECT_EQ(serializeRecords(serial.records),
              serializeRecords(parallel.records));
    EXPECT_EQ(serializeMasks(serial.masks),
              serializeMasks(parallel.masks));

    // Identical classification, cycle accounting, and aggregates.
    EXPECT_EQ(serial.classify(parser).counts,
              parallel.classify(parser).counts);
    EXPECT_EQ(serial.simulatedFaultyCycles,
              parallel.simulatedFaultyCycles);
    EXPECT_EQ(serial.fullRunEquivalentCycles,
              parallel.fullRunEquivalentCycles);
    EXPECT_EQ(serial.aggregateStats.dump(),
              parallel.aggregateStats.dump());

    // Same seed, same everything on a re-run.
    EXPECT_EQ(serializeRecords(parallel.records),
              serializeRecords(parallel_again.records));
    EXPECT_EQ(serializeMasks(parallel.masks),
              serializeMasks(parallel_again.masks));
    EXPECT_EQ(parallel.classify(parser).counts,
              parallel_again.classify(parser).counts);
}

INSTANTIATE_TEST_SUITE_P(AllSetups, ExecutorDeterminism,
                         ::testing::Values("marss-x86", "gem5-x86",
                                           "gem5-arm"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name) {
                                 if (c == '-')
                                     c = '_';
                             }
                             return name;
                         });

} // namespace

/**
 * @file
 * Tests for the campaign service layer: cache-key derivation, the
 * warm PreparedCampaign cache, concurrent FIFO/quota admission with
 * single-flight preparation, the restart-persistent disk cache, and
 * the NDJSON protocol encode/decode halves (inject/service.hh).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.hh"
#include "common/json.hh"
#include "common/serial.hh"
#include "inject/campaign.hh"
#include "inject/service.hh"

namespace
{

using namespace dfi;
using namespace dfi::inject;

CampaignConfig
smokeConfig()
{
    CampaignConfig cfg;
    cfg.coreName = "marss-x86";
    cfg.benchmark = "micro";
    cfg.component = "int_regfile";
    cfg.numInjections = 24;
    cfg.seed = 7;
    return cfg;
}

// ---------------------------------------------------------------
// CampaignConfig::cacheKey()
// ---------------------------------------------------------------

/**
 * The key must be a pure function of the campaign-relevant values —
 * stable across processes, hosts, and sessions — so the expected
 * digest is a literal.  If this test fails, the key derivation
 * changed and every previously cached artifact silently becomes
 * unreachable: bump the version tag in cacheKey() deliberately, not
 * by accident.
 */
TEST(CacheKey, PinnedDigestIsStableAcrossProcesses)
{
    EXPECT_EQ(smokeConfig().cacheKey(), "709a0fa662302086");
}

TEST(CacheKey, IgnoresExecutionStrategyAndTelemetryFields)
{
    const std::string base = smokeConfig().cacheKey();

    CampaignConfig cfg = smokeConfig();
    cfg.jobs = 8;
    EXPECT_EQ(cfg.cacheKey(), base);

    cfg = smokeConfig();
    cfg.telemetryOut = "/tmp/somewhere";
    cfg.telemetryTiming = true;
    cfg.telemetryCapture = true;
    EXPECT_EQ(cfg.cacheKey(), base);

    cfg = smokeConfig();
    cfg.resumeFrom = "/tmp/prior.jsonl";
    EXPECT_EQ(cfg.cacheKey(), base);

    cfg = smokeConfig();
    cfg.shard.index = 1;
    cfg.shard.count = 4;
    EXPECT_EQ(cfg.cacheKey(), base);

    cfg = smokeConfig();
    cfg.prune = false;
    EXPECT_EQ(cfg.cacheKey(), base);
}

TEST(CacheKey, ChangesWhenAnyCampaignRelevantFieldChanges)
{
    const std::string base = smokeConfig().cacheKey();

    const std::vector<
        std::pair<const char *, void (*)(CampaignConfig &)>>
        mutations = {
            {"component",
             [](CampaignConfig &c) { c.component = "l1d"; }},
            {"benchmark",
             [](CampaignConfig &c) { c.benchmark = "sha"; }},
            {"scale", [](CampaignConfig &c) { c.scale = 2; }},
            {"core",
             [](CampaignConfig &c) { c.coreName = "gem5-arm"; }},
            {"injections",
             [](CampaignConfig &c) { c.numInjections = 25; }},
            {"confidence",
             [](CampaignConfig &c) {
                 c.numInjections = 0;
                 c.confidence = 0.95;
             }},
            {"margin",
             [](CampaignConfig &c) {
                 c.numInjections = 0;
                 c.margin = 0.05;
             }},
            {"exhaustive",
             [](CampaignConfig &c) {
                 c.numInjections = 0;
                 c.exhaustive = true;
             }},
            {"fault_type",
             [](CampaignConfig &c) {
                 c.faultType = FaultType::Permanent;
             }},
            {"population",
             [](CampaignConfig &c) {
                 c.population = Population::DoubleAdjacent;
             }},
            {"intermittent_min",
             [](CampaignConfig &c) { c.intermittentMin = 51; }},
            {"intermittent_max",
             [](CampaignConfig &c) { c.intermittentMax = 501; }},
            {"cache_scale",
             [](CampaignConfig &c) { c.cacheScale = 0.125; }},
            {"timeout_factor",
             [](CampaignConfig &c) { c.timeoutFactor = 4.0; }},
            {"early_stop_invalid_entry",
             [](CampaignConfig &c) {
                 c.earlyStopInvalidEntry = false;
             }},
            {"early_stop_overwrite",
             [](CampaignConfig &c) { c.earlyStopOverwrite = false; }},
            {"seed", [](CampaignConfig &c) { c.seed = 8; }},
            {"use_checkpoints",
             [](CampaignConfig &c) { c.useCheckpoints = false; }},
            {"checkpoint_count",
             [](CampaignConfig &c) { c.checkpointCount = 7; }},
            {"checkpoint_budget",
             [](CampaignConfig &c) {
                 c.checkpointMemBudgetMB = 128;
             }},
        };

    std::vector<std::string> keys{base};
    for (const auto &[name, mutate] : mutations) {
        CampaignConfig cfg = smokeConfig();
        mutate(cfg);
        const std::string key = cfg.cacheKey();
        EXPECT_NE(key, base) << "field did not affect the key: "
                             << name;
        for (const std::string &prior : keys)
            EXPECT_NE(key, prior)
                << "key collision involving field: " << name;
        keys.push_back(key);
    }
}

// ---------------------------------------------------------------
// Protocol encode/decode
// ---------------------------------------------------------------

TEST(ServiceProtocol, RequestRoundTripPreservesConfig)
{
    ServiceRequest request;
    request.op = "campaign";
    request.client = "ci";
    request.config.coreName = "gem5-arm";
    request.config.benchmark = "crc";
    request.config.component = "rob";
    request.config.scale = 3;
    request.config.numInjections = 99;
    request.config.confidence = 0.95;
    request.config.margin = 0.05;
    request.config.faultType = FaultType::Intermittent;
    request.config.population = Population::DoubleRandom;
    request.config.intermittentMin = 10;
    request.config.intermittentMax = 20;
    request.config.exhaustive = true;
    request.config.prune = false;
    request.config.cacheScale = 0.5;
    request.config.timeoutFactor = 5.0;
    request.config.earlyStopInvalidEntry = false;
    request.config.earlyStopOverwrite = false;
    request.config.useCheckpoints = false;
    request.config.checkpointCount = 9;
    request.config.checkpointMemBudgetMB = 64;
    request.config.seed = 1234;
    request.config.jobs = 4;
    request.config.telemetryTiming = true;

    ServiceRequest decoded;
    std::string error;
    ASSERT_TRUE(decodeServiceRequest(encodeServiceRequest(request),
                                     decoded, error))
        << error;
    EXPECT_EQ(decoded.op, "campaign");
    EXPECT_EQ(decoded.client, "ci");
    // Campaign-relevant equality is exactly key equality, plus the
    // execution knobs the protocol carries.
    EXPECT_EQ(decoded.config.cacheKey(), request.config.cacheKey());
    EXPECT_EQ(decoded.config.jobs, 4u);
    EXPECT_FALSE(decoded.config.prune);
    EXPECT_TRUE(decoded.config.telemetryTiming);
}

TEST(ServiceProtocol, DecodeRejectsUnknownOpAndKeys)
{
    json::Value line = encodeServiceRequest(ServiceRequest{});
    std::string error;
    ServiceRequest out;

    json::Value bad_op = line;
    bad_op.set("op", json::Value::string("explode"));
    EXPECT_FALSE(decodeServiceRequest(bad_op, out, error));
    EXPECT_NE(error.find("unknown operation"), std::string::npos);

    json::Value bad_cfg = line;
    json::Value cfg = json::Value::object();
    cfg.set("telemetry_out", json::Value::string("/tmp/x"));
    bad_cfg.set("config", cfg);
    EXPECT_FALSE(decodeServiceRequest(bad_cfg, out, error));
    EXPECT_NE(error.find("unknown key"), std::string::npos);

    json::Value bad_type = line;
    cfg = json::Value::object();
    cfg.set("injections", json::Value::string("many"));
    bad_type.set("config", cfg);
    EXPECT_FALSE(decodeServiceRequest(bad_type, out, error));
}

TEST(ServiceProtocol, DecodeRejectsNegativeIntegersWithoutAborting)
{
    // Parsed wire bytes, not a hand-built tree: the parser stores
    // -1 as Kind::Int with the negative flag, which asUint() would
    // abort on -- the decoder must turn it into an error instead.
    json::Value line;
    std::string error;
    ASSERT_TRUE(json::parse(
        "{\"kind\":\"dfi-request\",\"op\":\"campaign\","
        "\"config\":{\"injections\":-1}}",
        line, error));
    ServiceRequest out;
    EXPECT_FALSE(decodeServiceRequest(line, out, error));
    EXPECT_NE(error.find("unsigned integer"), std::string::npos);

    // Negative doubles stay legal wherever a number is expected.
    json::Value number_cfg;
    ASSERT_TRUE(json::parse(
        "{\"kind\":\"dfi-request\",\"op\":\"campaign\","
        "\"config\":{\"confidence\":-0.5}}",
        number_cfg, error));
    EXPECT_TRUE(decodeServiceRequest(number_cfg, out, error));
    EXPECT_EQ(out.config.confidence, -0.5);

    // Negative counts in a response are rejected, not aborted on.
    json::Value response_line;
    ASSERT_TRUE(json::parse(
        "{\"kind\":\"dfi-response\",\"op\":\"campaign\","
        "\"ok\":true,\"runs_total\":-3,"
        "\"counts\":{\"Masked\":-1}}",
        response_line, error));
    ServiceResponse response;
    EXPECT_FALSE(
        decodeServiceResponse(response_line, response, error));
    EXPECT_NE(error.find("unsigned"), std::string::npos);
}

TEST(ServiceProtocol, ResponseRoundTripPreservesArtifacts)
{
    ServiceResponse response;
    response.ok = true;
    response.op = "campaign";
    response.cacheKey = "0123456789abcdef";
    response.cacheHit = true;
    response.runsTotal = 24;
    for (std::size_t i = 0; i < response.counts.counts.size(); ++i)
        response.counts.counts[i] = i + 1;
    response.vulnerability = 4.25;
    response.telemetryRuns = "{\"kind\":\"header\"}\n{\"run\":1}\n";
    response.telemetrySummary = "{\n  \"schema\": 3\n}\n";

    ServiceResponse decoded;
    std::string error;
    ASSERT_TRUE(decodeServiceResponse(encodeServiceResponse(response),
                                      decoded, error))
        << error;
    EXPECT_TRUE(decoded.ok);
    EXPECT_EQ(decoded.cacheKey, "0123456789abcdef");
    EXPECT_TRUE(decoded.cacheHit);
    EXPECT_EQ(decoded.runsTotal, 24u);
    EXPECT_EQ(decoded.counts.counts, response.counts.counts);
    EXPECT_DOUBLE_EQ(decoded.vulnerability, 4.25);
    EXPECT_EQ(decoded.telemetryRuns, response.telemetryRuns);
    EXPECT_EQ(decoded.telemetrySummary, response.telemetrySummary);
}

// ---------------------------------------------------------------
// PreparedCampaign sharing
// ---------------------------------------------------------------

TEST(PreparedCampaign, AdoptedPreparationReproducesColdRun)
{
    InjectionCampaign cold(smokeConfig());
    const CampaignResult cold_result = cold.run();

    InjectionCampaign warm(smokeConfig());
    warm.adoptPrepared(cold.prepared());
    const CampaignResult warm_result = warm.run();

    ASSERT_EQ(warm_result.records.size(),
              cold_result.records.size());
    for (std::size_t i = 0; i < cold_result.records.size(); ++i) {
        EXPECT_EQ(warm_result.records[i].term,
                  cold_result.records[i].term);
        EXPECT_EQ(warm_result.records[i].cycles,
                  cold_result.records[i].cycles);
        EXPECT_EQ(warm_result.records[i].output,
                  cold_result.records[i].output);
    }
    EXPECT_EQ(warm_result.pruned.size(), cold_result.pruned.size());
}

// ---------------------------------------------------------------
// CampaignService
// ---------------------------------------------------------------

TEST(Service, WarmRequestHitsCacheWithIdenticalArtifacts)
{
    CampaignService service({});
    ServiceRequest request;
    request.config = smokeConfig();

    const ServiceResponse cold = service.execute(request);
    ASSERT_TRUE(cold.ok) << cold.error;
    EXPECT_FALSE(cold.cacheHit);
    EXPECT_EQ(cold.runsTotal, 24u);
    EXPECT_FALSE(cold.telemetryRuns.empty());
    EXPECT_FALSE(cold.telemetrySummary.empty());

    const ServiceResponse warm = service.execute(request);
    ASSERT_TRUE(warm.ok) << warm.error;
    EXPECT_TRUE(warm.cacheHit);
    EXPECT_EQ(warm.cacheKey, cold.cacheKey);
    EXPECT_EQ(warm.telemetryRuns, cold.telemetryRuns);
    EXPECT_EQ(warm.telemetrySummary, cold.telemetrySummary);

    const CampaignService::CacheStats stats = service.cacheStats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_GT(stats.bytes, 0u);
}

TEST(Service, ZeroBudgetDisablesCaching)
{
    CampaignService::Options options;
    options.cacheBudgetBytes = 0;
    CampaignService service(options);
    ServiceRequest request;
    request.config = smokeConfig();
    request.config.numInjections = 8;

    EXPECT_FALSE(service.execute(request).cacheHit);
    EXPECT_FALSE(service.execute(request).cacheHit);
    const CampaignService::CacheStats stats = service.cacheStats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.entries, 0u);
}

TEST(Service, LruEvictsColdestEntryWhenOverBudget)
{
    // Size the budget from a first service so it holds exactly one
    // preparation; the entries for configs A and B are the same
    // shape, so inserting B must evict A.
    ServiceRequest a;
    a.config = smokeConfig();
    a.config.numInjections = 8;
    ServiceRequest b = a;
    b.config.seed = 8;

    CampaignService sizing({});
    ASSERT_TRUE(sizing.execute(a).ok);
    const std::uint64_t one_entry = sizing.cacheStats().bytes;
    ASSERT_GT(one_entry, 0u);

    CampaignService::Options options;
    options.cacheBudgetBytes = one_entry + 1;
    CampaignService service(options);

    ASSERT_FALSE(service.execute(a).cacheHit);
    ASSERT_FALSE(service.execute(b).cacheHit); // evicts a
    EXPECT_EQ(service.cacheStats().evictions, 1u);
    EXPECT_EQ(service.cacheStats().entries, 1u);

    EXPECT_TRUE(service.execute(b).cacheHit);  // b survived
    EXPECT_FALSE(service.execute(a).cacheHit); // a was evicted
}

TEST(Service, ExecuteReportsInvalidConfigInsteadOfThrowing)
{
    CampaignService service({});
    ServiceRequest request;
    request.config = smokeConfig();
    request.config.component = "no_such_component";
    const ServiceResponse response = service.execute(request);
    EXPECT_FALSE(response.ok);
    EXPECT_FALSE(response.error.empty());
}

TEST(Service, QueuedRequestsAllCompleteAcrossThreads)
{
    CampaignService service({});
    ServiceRequest request;
    request.config = smokeConfig();
    request.config.numInjections = 8;

    std::vector<std::thread> threads;
    std::vector<ServiceResponse> responses(4);
    for (int i = 0; i < 4; ++i) {
        threads.emplace_back([&service, &responses, request, i] {
            ServiceRequest mine = request;
            mine.client = "client-" + std::to_string(i);
            responses[static_cast<std::size_t>(i)] =
                service.executeQueued(mine);
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    for (const ServiceResponse &response : responses) {
        EXPECT_TRUE(response.ok) << response.error;
        EXPECT_EQ(response.runsTotal, 8u);
    }
    // One cold preparation, three warm adoptions (FIFO: the first
    // served request misses, every later one hits).
    const CampaignService::CacheStats stats = service.cacheStats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 3u);
}

TEST(Service, ZeroQuotaRejectsAdmission)
{
    CampaignService::Options options;
    options.perClientInFlight = 0;
    CampaignService service(options);
    ServiceRequest request;
    request.config = smokeConfig();
    const ServiceResponse response = service.executeQueued(request);
    EXPECT_FALSE(response.ok);
    EXPECT_NE(response.error.find("quota exceeded"),
              std::string::npos)
        << response.error;
}

TEST(Service, DrainRejectsNewRequests)
{
    CampaignService service({});
    service.drain();
    ServiceRequest request;
    request.config = smokeConfig();
    const ServiceResponse response = service.executeQueued(request);
    EXPECT_FALSE(response.ok);
    EXPECT_NE(response.error.find("draining"), std::string::npos);
}

TEST(Service, StatsJsonCarriesCacheAndQueueCounters)
{
    CampaignService::Options options;
    options.workers = 3;
    CampaignService service(options);
    const json::Value stats = service.statsJson();
    ASSERT_NE(stats.find("cache"), nullptr);
    ASSERT_NE(stats.find("queue"), nullptr);
    EXPECT_EQ(stats.get("cache").get("hits").asUint(), 0u);
    EXPECT_EQ(stats.get("cache").get("coalesced").asUint(), 0u);
    EXPECT_EQ(stats.get("cache").get("disk_hits").asUint(), 0u);
    EXPECT_EQ(stats.get("cache").get("response_hits").asUint(), 0u);
    EXPECT_EQ(stats.get("queue").get("capacity").asUint(), 64u);
    EXPECT_EQ(stats.get("queue").get("workers").asUint(), 3u);
    EXPECT_EQ(stats.get("queue").get("running").asUint(), 0u);
}

// ---------------------------------------------------------------
// Protocol: retryable rejections and cache provenance
// ---------------------------------------------------------------

TEST(ServiceProtocol, RetryableAndCacheSourceRoundTrip)
{
    ServiceResponse rejected;
    rejected.ok = false;
    rejected.op = "campaign";
    rejected.error = "queue full";
    rejected.retryable = true;

    ServiceResponse decoded;
    std::string error;
    ASSERT_TRUE(decodeServiceResponse(
        encodeServiceResponse(rejected), decoded, error))
        << error;
    EXPECT_FALSE(decoded.ok);
    EXPECT_EQ(decoded.op, "campaign");
    EXPECT_EQ(decoded.error, "queue full");
    EXPECT_TRUE(decoded.retryable);

    ServiceResponse served;
    served.ok = true;
    served.op = "campaign";
    served.cacheKey = "0123456789abcdef";
    served.cacheHit = true;
    served.cacheSource = "disk";
    ASSERT_TRUE(decodeServiceResponse(
        encodeServiceResponse(served), decoded, error))
        << error;
    EXPECT_TRUE(decoded.ok);
    EXPECT_FALSE(decoded.retryable);
    EXPECT_EQ(decoded.cacheSource, "disk");
}

TEST(Service, RejectionsCarryOpAndRetryable)
{
    ServiceRequest request;
    request.config = smokeConfig();

    {
        CampaignService service({});
        service.drain();
        const ServiceResponse r = service.executeQueued(request);
        EXPECT_FALSE(r.ok);
        EXPECT_EQ(r.op, "campaign");
        EXPECT_TRUE(r.retryable);
        EXPECT_NE(r.error.find("draining"), std::string::npos);
    }
    {
        CampaignService::Options options;
        options.perClientInFlight = 0;
        CampaignService service(options);
        const ServiceResponse r = service.executeQueued(request);
        EXPECT_FALSE(r.ok);
        EXPECT_EQ(r.op, "campaign");
        EXPECT_TRUE(r.retryable);
        EXPECT_NE(r.error.find("quota exceeded"),
                  std::string::npos);
    }
    {
        CampaignService::Options options;
        options.queueCapacity = 0;
        CampaignService service(options);
        const ServiceResponse r = service.executeQueued(request);
        EXPECT_FALSE(r.ok);
        EXPECT_EQ(r.op, "campaign");
        EXPECT_TRUE(r.retryable);
        EXPECT_NE(r.error.find("queue full"), std::string::npos);
    }
    {
        // Hard errors are not retryable: resubmitting a bad config
        // can only fail the same way.
        CampaignService service({});
        ServiceRequest bad = request;
        bad.config.component = "no_such_component";
        const ServiceResponse r = service.execute(bad);
        EXPECT_FALSE(r.ok);
        EXPECT_FALSE(r.retryable);
    }
}

// ---------------------------------------------------------------
// Concurrent execution and single-flight preparation
// ---------------------------------------------------------------

TEST(Service, ConcurrentWorkersShareOneSingleFlightPrepare)
{
    CampaignService::Options options;
    options.workers = 4;
    CampaignService service(options);
    ServiceRequest request;
    request.config = smokeConfig();
    request.config.numInjections = 8;

    std::vector<std::thread> threads;
    std::vector<ServiceResponse> responses(4);
    for (int i = 0; i < 4; ++i) {
        threads.emplace_back([&service, &responses, request, i] {
            ServiceRequest mine = request;
            mine.client = "client-" + std::to_string(i);
            responses[static_cast<std::size_t>(i)] =
                service.executeQueued(mine);
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    for (const ServiceResponse &response : responses) {
        EXPECT_TRUE(response.ok) << response.error;
        EXPECT_EQ(response.runsTotal, 8u);
        EXPECT_EQ(response.telemetryRuns,
                  responses[0].telemetryRuns);
    }
    // Single-flight: however the four racing requests interleave,
    // exactly one prepares cold and the other three share it (by
    // joining the flight or by hitting the LRU afterwards).
    const CampaignService::CacheStats stats = service.cacheStats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 3u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(Service, ConcurrentDistinctKeysPrepareIndependently)
{
    CampaignService::Options options;
    options.workers = 4;
    CampaignService service(options);

    std::vector<std::thread> threads;
    std::vector<ServiceResponse> responses(3);
    for (int i = 0; i < 3; ++i) {
        threads.emplace_back([&service, &responses, i] {
            ServiceRequest mine;
            mine.client = "client-" + std::to_string(i);
            mine.config = smokeConfig();
            mine.config.numInjections = 8;
            mine.config.seed = 100 + static_cast<std::uint64_t>(i);
            responses[static_cast<std::size_t>(i)] =
                service.executeQueued(mine);
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    for (const ServiceResponse &response : responses) {
        EXPECT_TRUE(response.ok) << response.error;
        EXPECT_FALSE(response.cacheHit);
    }
    const CampaignService::CacheStats stats = service.cacheStats();
    EXPECT_EQ(stats.misses, 3u);
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.coalesced, 0u);
    EXPECT_EQ(stats.entries, 3u);
}

TEST(Service, DrainUnderLoadCompletesAdmittedRequests)
{
    CampaignService::Options options;
    options.workers = 2;
    CampaignService service(options);
    ServiceRequest request;
    request.config = smokeConfig();
    request.config.numInjections = 8;

    std::vector<std::thread> threads;
    std::vector<ServiceResponse> responses(4);
    for (int i = 0; i < 4; ++i) {
        threads.emplace_back([&service, &responses, request, i] {
            ServiceRequest mine = request;
            mine.client = "client-" + std::to_string(i);
            responses[static_cast<std::size_t>(i)] =
                service.executeQueued(mine);
        });
    }

    // Wait until all four are admitted, then drain mid-flight: every
    // admitted request must still complete successfully.
    while (service.statsJson().get("queue").get("active").asUint() <
           4)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    service.drain();

    for (std::thread &thread : threads)
        thread.join();
    for (const ServiceResponse &response : responses)
        EXPECT_TRUE(response.ok) << response.error;
}

// ---------------------------------------------------------------
// PreparedCampaign serialization (common/serial.hh)
// ---------------------------------------------------------------

TEST(PreparedSerial, SaveLoadRoundTripReproducesCampaign)
{
    CampaignConfig cfg = smokeConfig();
    cfg.numInjections = 8;
    cfg.telemetryCapture = true;

    InjectionCampaign source(cfg);
    const std::shared_ptr<const PreparedCampaign> original =
        source.prepared();

    serial::Writer writer;
    savePreparedCampaign(*original, writer);

    serial::Reader reader(writer.buffer());
    std::string error;
    const std::shared_ptr<const PreparedCampaign> loaded =
        loadPreparedCampaign(cfg, reader, error);
    ASSERT_NE(loaded, nullptr) << error;

    EXPECT_EQ(loaded->expectedOutput, original->expectedOutput);
    EXPECT_EQ(loaded->golden.cycles, original->golden.cycles);
    EXPECT_EQ(loaded->checkpoints.count(),
              original->checkpoints.count());
    EXPECT_EQ(loaded->checkpoints.cycles(),
              original->checkpoints.cycles());

    // The decisive check: a campaign adopting the loaded state
    // produces byte-identical artifacts to one adopting the live
    // original.
    InjectionCampaign live(cfg);
    live.adoptPrepared(original);
    const CampaignResult live_result = live.run();

    InjectionCampaign restored(cfg);
    restored.adoptPrepared(loaded);
    const CampaignResult restored_result = restored.run();

    EXPECT_EQ(restored_result.telemetryRuns,
              live_result.telemetryRuns);
    EXPECT_EQ(restored_result.telemetrySummary,
              live_result.telemetrySummary);
}

TEST(PreparedSerial, TruncatedStreamFailsInsteadOfLoading)
{
    CampaignConfig cfg = smokeConfig();
    cfg.numInjections = 8;

    InjectionCampaign source(cfg);
    serial::Writer writer;
    savePreparedCampaign(*source.prepared(), writer);

    const std::string truncated =
        writer.buffer().substr(0, writer.buffer().size() / 2);
    serial::Reader reader(truncated);
    std::string error;
    EXPECT_EQ(loadPreparedCampaign(cfg, reader, error), nullptr);
    EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------
// Restart-persistent disk cache
// ---------------------------------------------------------------

std::string
freshCacheDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(ServiceDisk, RestartServesResponseAndPreparedFromDisk)
{
    CampaignService::Options options;
    options.cacheDir =
        freshCacheDir("dfi-service-restart-cache");

    ServiceRequest request;
    request.config = smokeConfig();
    request.config.numInjections = 8;

    ServiceResponse cold;
    {
        CampaignService first(options);
        cold = first.execute(request);
        ASSERT_TRUE(cold.ok) << cold.error;
        EXPECT_FALSE(cold.cacheHit);
        EXPECT_EQ(cold.cacheSource, "none");
        const CampaignService::CacheStats stats =
            first.cacheStats();
        EXPECT_EQ(stats.diskStores, 1u);
        EXPECT_EQ(stats.responseStores, 1u);
    }

    // "Restart": a brand-new service over the same directory.  An
    // exact repeat replays the memoized response without executing.
    CampaignService second(options);
    const ServiceResponse memo = second.execute(request);
    ASSERT_TRUE(memo.ok) << memo.error;
    EXPECT_TRUE(memo.cacheHit);
    EXPECT_EQ(memo.cacheSource, "response");
    EXPECT_EQ(memo.telemetryRuns, cold.telemetryRuns);
    EXPECT_EQ(memo.telemetrySummary, cold.telemetrySummary);
    EXPECT_EQ(second.cacheStats().responseHits, 1u);

    // A run-set variation (prune off) misses the response memo —
    // its artifact bytes differ — but adopts the prepared state
    // from disk instead of re-simulating the golden run.
    ServiceRequest noprune = request;
    noprune.config.prune = false;
    const ServiceResponse disk = second.execute(noprune);
    ASSERT_TRUE(disk.ok) << disk.error;
    EXPECT_TRUE(disk.cacheHit);
    EXPECT_EQ(disk.cacheSource, "disk");
    EXPECT_EQ(disk.cacheKey, cold.cacheKey);
    EXPECT_EQ(disk.counts.counts, cold.counts.counts);
    EXPECT_EQ(second.cacheStats().diskHits, 1u);

    std::filesystem::remove_all(options.cacheDir);
}

TEST(ServiceDisk, CorruptSpillFilesFallBackToColdPrepare)
{
    CampaignService::Options options;
    options.cacheDir = freshCacheDir("dfi-service-corrupt-cache");

    ServiceRequest request;
    request.config = smokeConfig();
    request.config.numInjections = 8;

    ServiceResponse cold;
    {
        CampaignService first(options);
        cold = first.execute(request);
        ASSERT_TRUE(cold.ok) << cold.error;
    }

    // Truncate every cache file: the digest framing must turn them
    // into cold misses, never into wrong state.
    for (const auto &entry :
         std::filesystem::directory_iterator(options.cacheDir))
        std::filesystem::resize_file(
            entry.path(), std::filesystem::file_size(entry.path()) /
                              2);

    CampaignService second(options);
    const ServiceResponse fallback = second.execute(request);
    ASSERT_TRUE(fallback.ok) << fallback.error;
    EXPECT_FALSE(fallback.cacheHit);
    EXPECT_EQ(fallback.cacheSource, "none");
    EXPECT_EQ(second.cacheStats().diskHits, 0u);
    EXPECT_EQ(second.cacheStats().responseHits, 0u);
    EXPECT_EQ(fallback.telemetryRuns, cold.telemetryRuns);

    std::filesystem::remove_all(options.cacheDir);
}

TEST(ServiceDisk, TimingResponsesAreNotMemoized)
{
    CampaignService::Options options;
    options.cacheDir = freshCacheDir("dfi-service-timing-cache");

    ServiceRequest request;
    request.config = smokeConfig();
    request.config.numInjections = 8;
    request.config.telemetryTiming = true;

    CampaignService service(options);
    ASSERT_TRUE(service.execute(request).ok);
    const ServiceResponse repeat = service.execute(request);
    ASSERT_TRUE(repeat.ok) << repeat.error;
    // Prepared state is shared (it carries no wall-clock), but the
    // response memo is skipped: timing fields are not reproducible.
    EXPECT_TRUE(repeat.cacheHit);
    EXPECT_EQ(repeat.cacheSource, "memory");
    const CampaignService::CacheStats stats = service.cacheStats();
    EXPECT_EQ(stats.responseStores, 0u);
    EXPECT_EQ(stats.responseHits, 0u);
    EXPECT_EQ(stats.diskStores, 1u);

    std::filesystem::remove_all(options.cacheDir);
}

// ---------------------------------------------------------------
// Chaos: disk-tier degradation under injected I/O failures
// ---------------------------------------------------------------

/** Disarms the failpoint registry on scope exit (test hygiene). */
struct FailpointGuard
{
    ~FailpointGuard() { failpoint::reset(); }
};

TEST(ServiceChaos, DiskDegradesAfterConsecutiveIoFailures)
{
    FailpointGuard guard;
    CampaignService::Options options;
    options.cacheDir = freshCacheDir("dfi-service-chaos-cache");
    options.diskFailureLimit = 2;

    ServiceRequest request;
    request.config = smokeConfig();
    request.config.numInjections = 8;

    std::string error;
    ASSERT_TRUE(failpoint::configure("cache.write=error", error))
        << error;

    CampaignService service(options);
    const ServiceResponse cold = service.execute(request);
    ASSERT_TRUE(cold.ok) << cold.error;

    // One execution makes two consecutive store attempts (prepared
    // state, then the response memo); both failed, tripping the
    // limit: the disk tier is now off for the process lifetime.
    CampaignService::CacheStats stats = service.cacheStats();
    EXPECT_EQ(stats.diskErrors, 2u);
    EXPECT_TRUE(stats.diskDisabled);
    EXPECT_EQ(stats.diskStores, 0u);

    // The memory tier keeps serving: an exact repeat is a warm LRU
    // hit with byte-identical artifacts, and the dead disk is not
    // probed again (the error count stays put).
    failpoint::reset();
    const ServiceResponse warm = service.execute(request);
    ASSERT_TRUE(warm.ok) << warm.error;
    EXPECT_TRUE(warm.cacheHit);
    EXPECT_EQ(warm.cacheSource, "memory");
    EXPECT_EQ(warm.telemetryRuns, cold.telemetryRuns);
    stats = service.cacheStats();
    EXPECT_EQ(stats.diskErrors, 2u);
    EXPECT_TRUE(stats.diskDisabled);

    std::filesystem::remove_all(options.cacheDir);
}

TEST(ServiceChaos, SuccessResetsTheFailureStreak)
{
    FailpointGuard guard;
    CampaignService::Options options;
    options.cacheDir = freshCacheDir("dfi-service-streak-cache");
    options.diskFailureLimit = 3;

    ServiceRequest request;
    request.config = smokeConfig();
    request.config.numInjections = 8;

    // Every other write fails: the streak never reaches 3 because
    // each success resets it — degradation is for *persistent*
    // failure, not for a flaky burst.
    std::string error;
    ASSERT_TRUE(
        failpoint::configure("cache.write=error@every:2", error));

    CampaignService service(options);
    ServiceRequest other = request;
    other.config.seed = 8;
    ASSERT_TRUE(service.execute(request).ok);
    ASSERT_TRUE(service.execute(other).ok);

    const CampaignService::CacheStats stats = service.cacheStats();
    EXPECT_GE(stats.diskErrors, 1u);
    EXPECT_FALSE(stats.diskDisabled);

    std::filesystem::remove_all(options.cacheDir);
}

TEST(ServiceChaos, SerialWriteFailureNeverPersistsTruncatedSpill)
{
    FailpointGuard guard;
    CampaignService::Options options;
    options.cacheDir = freshCacheDir("dfi-service-serial-cache");

    ServiceRequest request;
    request.config = smokeConfig();
    request.config.numInjections = 8;

    // Fail one archive append mid-save: the Writer latches !ok and
    // the store must abandon the file rather than digest-frame a
    // truncated stream.
    std::string error;
    ASSERT_TRUE(
        failpoint::configure("serial.write=error@nth:40", error));

    CampaignService service(options);
    ASSERT_TRUE(service.execute(request).ok);
    EXPECT_EQ(service.cacheStats().diskStores, 0u);
    EXPECT_GE(service.cacheStats().diskErrors, 1u);
    for (const auto &entry :
         std::filesystem::directory_iterator(options.cacheDir))
        EXPECT_NE(entry.path().filename().string().rfind("prep_",
                                                         0),
                  0u)
            << "truncated spill persisted: " << entry.path();

    std::filesystem::remove_all(options.cacheDir);
}

TEST(ServiceChaos, PrepAllocFailureIsRetryableAndRecovers)
{
    FailpointGuard guard;
    ServiceRequest request;
    request.config = smokeConfig();
    request.config.numInjections = 8;

    std::string error;
    ASSERT_TRUE(
        failpoint::configure("prep.alloc=error@nth:1", error));

    CampaignService service(CampaignService::Options{});
    const ServiceResponse failed = service.execute(request);
    EXPECT_FALSE(failed.ok);
    EXPECT_TRUE(failed.retryable);
    EXPECT_NE(failed.error.find("out of memory"),
              std::string::npos);

    // The failure did not wedge the single-flight machinery: the
    // retry prepares cold and succeeds.
    const ServiceResponse retried = service.execute(request);
    ASSERT_TRUE(retried.ok) << retried.error;
}

} // namespace

/**
 * @file
 * Integration tests for the Injection Campaign Controller: golden
 * runs, checkpointed faulty runs, early-stop rules, timeout bounds,
 * determinism, and the MaFIN/GeFIN facades.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "gemsim/gefin.hh"
#include "inject/campaign.hh"
#include "inject/report.hh"
#include "marssim/mafin.hh"

namespace
{

using namespace dfi;
using namespace dfi::inject;

CampaignConfig
microConfig(const std::string &core, const std::string &component)
{
    CampaignConfig cfg;
    cfg.benchmark = "micro";
    cfg.coreName = core;
    cfg.component = component;
    cfg.numInjections = 40;
    cfg.seed = 99;
    return cfg;
}

TEST(Campaign, GoldenRunMatchesReference)
{
    InjectionCampaign campaign(
        microConfig("marss-x86", "int_regfile"));
    const auto &golden = campaign.golden();
    EXPECT_EQ(golden.term, syskit::Termination::Exited);
    EXPECT_GT(golden.cycles, 0u);
    EXPECT_EQ(golden.output.size(), 64u);
}

TEST(Campaign, RunsProduceRecords)
{
    InjectionCampaign campaign(microConfig("marss-x86", "l1d"));
    const auto result = campaign.run();
    // Pruned runs carry precomputed outcomes instead of executed
    // records; together they cover the whole campaign.
    EXPECT_EQ(result.records.size() + result.pruned.size(), 40u);
    EXPECT_EQ(result.records.size(), result.pruneStats.simulated);
    EXPECT_EQ(result.recordRunIds.size(), result.records.size());
    EXPECT_EQ(result.masks.size(), 40u);
    Parser parser;
    const auto counts = result.classify(parser);
    EXPECT_EQ(counts.total(), 40u);
}

TEST(Campaign, DeterministicAcrossRuns)
{
    auto run_once = [] {
        InjectionCampaign campaign(microConfig("gem5-x86", "l1d"));
        Parser parser;
        return campaign.run().classify(parser);
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a.counts, b.counts);
}

TEST(Campaign, CheckpointsDoNotChangeOutcomes)
{
    auto cfg = microConfig("marss-x86", "l1d");
    Parser parser;

    cfg.useCheckpoints = true;
    InjectionCampaign with(cfg);
    const auto a = with.run().classify(parser);

    cfg.useCheckpoints = false;
    InjectionCampaign without(cfg);
    const auto b = without.run().classify(parser);

    EXPECT_EQ(a.counts, b.counts);
}

TEST(Campaign, CheckpointScheduleIsStrictlyEarlier)
{
    InjectionCampaign campaign(microConfig("marss-x86", "l1d"));
    (void)campaign.golden();
    const CheckpointStore &store = campaign.checkpoints();

    // The base snapshot is cycle 0 and the schedule ascends.
    const auto &cycles = store.cycles();
    ASSERT_GE(cycles.size(), 2u);
    EXPECT_EQ(cycles.front(), 0u);
    for (std::size_t i = 1; i < cycles.size(); ++i)
        EXPECT_GT(cycles[i], cycles[i - 1]);

    // An injection AT a checkpoint cycle restores the strictly
    // earlier snapshot: restoring at the injection cycle itself would
    // apply the flip one state transition late.
    EXPECT_EQ(store.indexFor(0), 0u);
    for (std::size_t i = 1; i < cycles.size(); ++i) {
        EXPECT_EQ(store.indexFor(cycles[i]), i - 1);
        EXPECT_EQ(store.indexFor(cycles[i] + 1), i);
        EXPECT_LT(store.sourceFor(cycles[i]).cycle(), cycles[i]);
    }
}

TEST(Campaign, InjectionAtCheckpointCycleMatchesFromReset)
{
    // Boundary determinism: a mask landing exactly on a checkpoint
    // cycle must produce the same record whether the run restores
    // from a snapshot or replays from reset.
    auto cfg = microConfig("marss-x86", "l1d");
    InjectionCampaign with(cfg);
    (void)with.golden();
    const auto &cycles = with.checkpoints().cycles();
    ASSERT_GE(cycles.size(), 2u);

    cfg.useCheckpoints = false;
    InjectionCampaign without(cfg);
    (void)without.golden();
    ASSERT_EQ(without.checkpoints().count(), 1u);

    for (std::size_t i = 1; i < cycles.size(); ++i) {
        dfi::FaultMask mask;
        mask.structure = StructureId::L1DData;
        mask.entry = 3;
        mask.bit = 5;
        mask.type = FaultType::Transient;
        mask.cycle = cycles[i];

        const auto a = with.runOne({mask});
        const auto b = without.runOne({mask});
        EXPECT_EQ(a.term, b.term) << "checkpoint cycle " << cycles[i];
        EXPECT_EQ(a.exitCode, b.exitCode);
        EXPECT_EQ(a.output, b.output);
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.instructions, b.instructions);
        EXPECT_EQ(a.earlyStopMasked, b.earlyStopMasked);
        EXPECT_EQ(a.earlyStopReason, b.earlyStopReason);
    }
}

TEST(Campaign, CheckpointBudgetDropsToBaseSnapshot)
{
    // The micro image alone is 2 MiB of guest memory, so a 1 MiB
    // budget cannot afford a second snapshot: capture must drop to
    // the base one (runs start from reset) rather than exceed the
    // budget — and outcomes must not change.
    auto cfg = microConfig("marss-x86", "l1d");
    Parser parser;

    InjectionCampaign unlimited(cfg);
    const auto a = unlimited.run().classify(parser);
    EXPECT_GE(unlimited.checkpoints().count(), 2u);

    cfg.checkpointMemBudgetMB = 1;
    InjectionCampaign tight(cfg);
    const auto b = tight.run().classify(parser);
    const CheckpointStore &store = tight.checkpoints();
    EXPECT_GT(store.snapshotBoundBytes(), 1u << 20);
    EXPECT_EQ(store.maxLiveSnapshots(), 1u);
    EXPECT_EQ(store.count(), 1u);
    EXPECT_TRUE(store.budgetLimited());

    EXPECT_EQ(a.counts, b.counts);
}

TEST(Campaign, CycleZeroTransientStopsOnInvalidEntry)
{
    // Regression: runTask() used to mark cycle-0 transients as
    // already injected before evaluating either early-stop rule, so
    // a flip into a line that is invalid at reset ran the whole
    // program instead of stopping immediately as Masked.
    InjectionCampaign campaign(microConfig("marss-x86", "l1d"));
    (void)campaign.golden();

    dfi::FaultMask mask;
    mask.structure = StructureId::L1DData;
    mask.entry = 0;
    mask.bit = 0;
    mask.type = FaultType::Transient;
    mask.cycle = 0; // nothing is cached at reset
    std::uint64_t simulated = 0;
    const auto record = campaign.runOne({mask}, &simulated);
    EXPECT_TRUE(record.earlyStopMasked);
    EXPECT_EQ(record.earlyStopReason, "invalid-entry");
    EXPECT_EQ(simulated, 0u);
}

TEST(Campaign, CycleZeroTransientArmsOverwriteWatch)
{
    // Companion regression for rule (ii): with the invalid-entry rule
    // off, a cycle-0 flip into a free physical register must still
    // arm the overwrite watch, which fires when rename allocates and
    // writes that register before anything reads it.
    auto cfg = microConfig("marss-x86", "int_regfile");
    cfg.earlyStopInvalidEntry = false;
    InjectionCampaign campaign(cfg);
    (void)campaign.golden();

    dfi::FaultMask mask;
    mask.structure = StructureId::IntRegFile;
    mask.entry = 17; // first free physical register at reset
    mask.bit = 0;
    mask.type = FaultType::Transient;
    mask.cycle = 0;
    const auto record = campaign.runOne({mask});
    EXPECT_TRUE(record.earlyStopMasked);
    EXPECT_EQ(record.earlyStopReason, "overwritten-before-read");
}

TEST(Campaign, EarlyStopsOnlyRelabelMaskedRuns)
{
    // Disabling both early-stop rules must yield the same
    // vulnerability (the optimization may never change a non-masked
    // outcome, only save time on masked ones).
    auto cfg = microConfig("gem5-x86", "l1d");
    Parser parser;

    InjectionCampaign fast(cfg);
    const auto quick = fast.run();
    const auto a = quick.classify(parser);

    cfg.earlyStopInvalidEntry = false;
    cfg.earlyStopOverwrite = false;
    InjectionCampaign slow(cfg);
    const auto full = slow.run();
    const auto b = full.classify(parser);

    EXPECT_EQ(a.counts, b.counts);
    // And it must actually save simulated cycles.
    EXPECT_LT(quick.simulatedFaultyCycles, full.simulatedFaultyCycles);
}

TEST(Campaign, SamplingDerivesRunCount)
{
    auto cfg = microConfig("marss-x86", "int_regfile");
    cfg.numInjections = 0; // derive from confidence/margin
    cfg.confidence = 0.95;
    cfg.margin = 0.2; // deliberately loose: few runs
    InjectionCampaign campaign(cfg);
    const auto result = campaign.run();
    const std::size_t planned =
        result.records.size() + result.pruned.size();
    EXPECT_GT(planned, 10u);
    EXPECT_LT(planned, 60u);
}

TEST(Campaign, DirectedSingleRun)
{
    InjectionCampaign campaign(microConfig("marss-x86", "l1d"));
    (void)campaign.golden();

    dfi::FaultMask mask;
    mask.structure = StructureId::L1DData;
    mask.entry = 0;
    mask.bit = 0;
    mask.type = FaultType::Transient;
    mask.cycle = 100;
    const auto record = campaign.runOne({mask});
    // Deterministic single-fault record: either it terminated some
    // way or it was early-stopped; both are valid records.
    EXPECT_TRUE(record.earlyStopMasked ||
                record.term == syskit::Termination::Exited ||
                record.term != syskit::Termination::Exited);
}

TEST(Campaign, PermanentFaultCampaignRuns)
{
    auto cfg = microConfig("gem5-x86", "int_regfile");
    cfg.faultType = FaultType::Permanent;
    cfg.numInjections = 15;
    InjectionCampaign campaign(cfg);
    const auto result = campaign.run();
    EXPECT_EQ(result.records.size(), 15u);
    // Permanent faults are never early-stopped.
    for (const auto &record : result.records)
        EXPECT_FALSE(record.earlyStopMasked);
}

TEST(Campaign, IntermittentFaultCampaignRuns)
{
    auto cfg = microConfig("gem5-arm", "l1d");
    cfg.faultType = FaultType::Intermittent;
    cfg.numInjections = 15;
    InjectionCampaign campaign(cfg);
    const auto result = campaign.run();
    EXPECT_EQ(result.records.size(), 15u);
}

TEST(Campaign, MultiBitCampaignRuns)
{
    auto cfg = microConfig("marss-x86", "l1d");
    cfg.population = Population::DoubleRandom;
    cfg.numInjections = 15;
    InjectionCampaign campaign(cfg);
    const auto result = campaign.run();
    EXPECT_EQ(result.records.size(), 15u);
    EXPECT_EQ(result.masks.size(), 30u);
}

TEST(Campaign, TimeoutBoundsRunLength)
{
    auto cfg = microConfig("marss-x86", "l1i");
    cfg.numInjections = 60;
    cfg.timeoutFactor = 3.0;
    InjectionCampaign campaign(cfg);
    const auto result = campaign.run();
    const auto bound = static_cast<std::uint64_t>(
        result.golden.cycles * 3.0);
    for (const auto &record : result.records)
        EXPECT_LE(record.cycles, bound + 2);
}

TEST(Facades, MaFinPinsMarss)
{
    auto campaign =
        mafin::makeCampaign(microConfig("gem5-x86", "int_regfile"));
    // The facade overrides whatever core was configured.
    EXPECT_EQ(campaign.golden().term, syskit::Termination::Exited);
    EXPECT_EQ(mafin::simulatorConfig().name, "marss-x86");
    EXPECT_TRUE(mafin::simulatorConfig().unifiedLsq);
}

TEST(Facades, GeFinSupportsBothIsas)
{
    EXPECT_EQ(gefin::simulatorConfig(isa::IsaKind::X86).name,
              "gem5-x86");
    EXPECT_EQ(gefin::simulatorConfig(isa::IsaKind::Arm).name,
              "gem5-arm");
    EXPECT_FALSE(gefin::simulatorConfig(isa::IsaKind::X86).unifiedLsq);
    auto campaign = gefin::makeCampaign(
        microConfig("marss-x86", "int_regfile"), isa::IsaKind::Arm);
    EXPECT_EQ(campaign.golden().term, syskit::Termination::Exited);
}

TEST(Report, FigureAggregation)
{
    FigureReport report("test figure", {"A", "B"});
    ClassCounts mostly_masked;
    for (int i = 0; i < 90; ++i)
        mostly_masked.add(OutcomeClass::Masked);
    for (int i = 0; i < 10; ++i)
        mostly_masked.add(OutcomeClass::Sdc);
    ClassCounts all_masked;
    for (int i = 0; i < 100; ++i)
        all_masked.add(OutcomeClass::Masked);

    report.add("bench1", "A", mostly_masked);
    report.add("bench1", "B", all_masked);
    report.add("bench2", "A", all_masked);
    report.add("bench2", "B", all_masked);

    EXPECT_DOUBLE_EQ(report.vulnerability("bench1", "A"), 10.0);
    EXPECT_DOUBLE_EQ(report.average("A").vulnerability(), 5.0);
    EXPECT_DOUBLE_EQ(report.average("B").vulnerability(), 0.0);

    const std::string table = report.renderTable();
    EXPECT_NE(table.find("AVERAGE"), std::string::npos);
    const std::string bars = report.renderBars();
    EXPECT_NE(bars.find("vulnerable"), std::string::npos);
    const std::string summary = report.renderSummary();
    EXPECT_NE(summary.find("average vulnerability"),
              std::string::npos);
}

TEST(CampaignConfigValidate, DefaultAndMicroConfigsAreClean)
{
    EXPECT_TRUE(CampaignConfig{}.validate().empty());
    EXPECT_TRUE(
        microConfig("gem5-arm", "int_regfile").validate().empty());
}

TEST(CampaignConfigValidate, ReportsEveryViolationWithItsField)
{
    CampaignConfig cfg = microConfig("marss-x86", "int_regfile");
    cfg.coreName = "vax-11";
    cfg.component = "flux_capacitor";
    cfg.benchmark = "doom";
    cfg.confidence = 1.5;
    cfg.margin = 0.0;
    cfg.cacheScale = -1.0;
    cfg.timeoutFactor = 0.5;
    cfg.scale = 0;
    cfg.shard = ShardSpec{3, 2};
    cfg.resumeFrom = "partial.jsonl"; // without telemetryOut

    const std::vector<ConfigError> errors = cfg.validate();
    std::vector<std::string> fields;
    for (const ConfigError &error : errors) {
        EXPECT_FALSE(error.message.empty()) << error.field;
        fields.push_back(error.field);
    }
    for (const char *field :
         {"core", "component", "benchmark", "confidence", "margin",
          "cache_scale", "timeout_factor", "scale", "shard",
          "resume"}) {
        EXPECT_NE(std::find(fields.begin(), fields.end(), field),
                  fields.end())
            << "no error for field " << field;
    }
}

TEST(CampaignConfigValidate, ShardBounds)
{
    CampaignConfig cfg = microConfig("marss-x86", "int_regfile");
    cfg.shard = ShardSpec{0, 4};
    EXPECT_TRUE(cfg.validate().empty());
    cfg.shard = ShardSpec{3, 4};
    EXPECT_TRUE(cfg.validate().empty());
    cfg.shard = ShardSpec{4, 4};
    ASSERT_EQ(cfg.validate().size(), 1u);
    EXPECT_EQ(cfg.validate()[0].field, "shard");
    cfg.shard = ShardSpec{0, 0};
    ASSERT_EQ(cfg.validate().size(), 1u);
    EXPECT_EQ(cfg.validate()[0].field, "shard");
}

TEST(CampaignConfigValidate, CampaignRefusesInvalidConfig)
{
    CampaignConfig cfg = microConfig("marss-x86", "int_regfile");
    cfg.component = "flux_capacitor";
    EXPECT_THROW(InjectionCampaign(cfg).golden(), dfi::FatalError);
}

} // namespace

/**
 * @file
 * Tests for the Parser's fault-effect classification, including the
 * reconfigurable classification options of Section III.B.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "inject/parser.hh"

namespace
{

using namespace dfi::inject;
using dfi::syskit::DueEvent;
using dfi::syskit::RunRecord;
using dfi::syskit::Termination;

RunRecord
goldenRecord()
{
    RunRecord golden;
    golden.term = Termination::Exited;
    golden.exitCode = 0;
    golden.output = {1, 2, 3, 4};
    golden.cycles = 1000;
    golden.instructions = 900;
    return golden;
}

TEST(Parser, MaskedWhenIdentical)
{
    Parser parser;
    const RunRecord golden = goldenRecord();
    RunRecord faulty = golden;
    EXPECT_EQ(parser.classify(golden, faulty).cls,
              OutcomeClass::Masked);
}

TEST(Parser, SdcOnOutputDifference)
{
    Parser parser;
    const RunRecord golden = goldenRecord();
    RunRecord faulty = golden;
    faulty.output = {1, 2, 3, 5};
    EXPECT_EQ(parser.classify(golden, faulty).cls, OutcomeClass::Sdc);
}

TEST(Parser, SdcOnExitCodeDifference)
{
    Parser parser;
    const RunRecord golden = goldenRecord();
    RunRecord faulty = golden;
    faulty.exitCode = 7;
    EXPECT_EQ(parser.classify(golden, faulty).cls, OutcomeClass::Sdc);
}

TEST(Parser, DueTrueAndFalse)
{
    Parser parser;
    const RunRecord golden = goldenRecord();

    RunRecord false_due = golden;
    false_due.dueEvents.push_back(DueEvent{"div-zero", 0x1234});
    auto c1 = parser.classify(golden, false_due);
    EXPECT_EQ(c1.cls, OutcomeClass::Due);
    EXPECT_EQ(c1.subclass, "false-due");

    RunRecord true_due = false_due;
    true_due.output = {9};
    auto c2 = parser.classify(golden, true_due);
    EXPECT_EQ(c2.cls, OutcomeClass::Due);
    EXPECT_EQ(c2.subclass, "true-due");
}

TEST(Parser, CrashLevels)
{
    Parser parser;
    const RunRecord golden = goldenRecord();

    RunRecord process = golden;
    process.term = Termination::ProcessCrash;
    EXPECT_EQ(parser.classify(golden, process).cls,
              OutcomeClass::Crash);
    EXPECT_EQ(parser.classify(golden, process).subclass,
              "process-crash");

    RunRecord kernel = golden;
    kernel.term = Termination::KernelPanic;
    EXPECT_EQ(parser.classify(golden, kernel).subclass,
              "system-crash");

    RunRecord simulator = golden;
    simulator.term = Termination::SimCrash;
    EXPECT_EQ(parser.classify(golden, simulator).cls,
              OutcomeClass::Crash);
    EXPECT_EQ(parser.classify(golden, simulator).subclass,
              "simulator-crash");
}

TEST(Parser, AssertClass)
{
    Parser parser;
    const RunRecord golden = goldenRecord();
    RunRecord assert_rec = golden;
    assert_rec.term = Termination::SimAssert;
    EXPECT_EQ(parser.classify(golden, assert_rec).cls,
              OutcomeClass::Assert);
}

TEST(Parser, TimeoutDeadlockVsLivelock)
{
    Parser parser;
    const RunRecord golden = goldenRecord();

    RunRecord dead = golden;
    dead.term = Termination::CycleLimit;
    dead.instructions = 10; // stopped committing
    EXPECT_EQ(parser.classify(golden, dead).cls,
              OutcomeClass::Timeout);
    EXPECT_EQ(parser.classify(golden, dead).subclass, "deadlock");

    RunRecord live = dead;
    live.instructions = 5000; // ran wild
    EXPECT_EQ(parser.classify(golden, live).subclass, "livelock");
}

TEST(Parser, EarlyStopAlwaysMasked)
{
    Parser parser;
    const RunRecord golden = goldenRecord();
    RunRecord early;
    early.earlyStopMasked = true;
    early.earlyStopReason = "overwritten-before-read";
    // Even with a scary termination value, early-stop wins.
    early.term = Termination::ProcessCrash;
    auto c = parser.classify(golden, early);
    EXPECT_EQ(c.cls, OutcomeClass::Masked);
    EXPECT_EQ(c.subclass, "early-stop:overwritten-before-read");
}

TEST(Parser, ReclassifySimCrashAsAssert)
{
    // Section III.B: the user can regroup simulator crashes under
    // Assert without re-running anything.
    ParserConfig cfg;
    cfg.simulatorCrashAsAssert = true;
    Parser parser(cfg);
    const RunRecord golden = goldenRecord();
    RunRecord simulator = golden;
    simulator.term = Termination::SimCrash;
    EXPECT_EQ(parser.classify(golden, simulator).cls,
              OutcomeClass::Assert);
}

TEST(ClassCounts, PercentagesAndVulnerability)
{
    ClassCounts counts;
    for (int i = 0; i < 80; ++i)
        counts.add(OutcomeClass::Masked);
    for (int i = 0; i < 15; ++i)
        counts.add(OutcomeClass::Sdc);
    for (int i = 0; i < 5; ++i)
        counts.add(OutcomeClass::Crash);
    EXPECT_EQ(counts.total(), 100u);
    EXPECT_DOUBLE_EQ(counts.percent(OutcomeClass::Masked), 80.0);
    EXPECT_DOUBLE_EQ(counts.vulnerability(), 20.0);

    ClassCounts more;
    more.add(OutcomeClass::Masked);
    more.add(counts);
    EXPECT_EQ(more.total(), 101u);
}

TEST(ClassCounts, ZeroRunCampaignHasFinitePercentages)
{
    // A campaign with zero runs must report 0.0 everywhere — never
    // NaN (division by total) and never a spurious 100% vulnerability
    // (100 - 0): these numbers feed byte-compared telemetry.
    const ClassCounts counts;
    EXPECT_EQ(counts.total(), 0u);
    for (std::size_t c = 0; c < kNumOutcomeClasses; ++c) {
        const double pct =
            counts.percent(static_cast<OutcomeClass>(c));
        EXPECT_FALSE(std::isnan(pct));
        EXPECT_DOUBLE_EQ(pct, 0.0);
    }
    EXPECT_FALSE(std::isnan(counts.vulnerability()));
    EXPECT_DOUBLE_EQ(counts.vulnerability(), 0.0);
}

} // namespace

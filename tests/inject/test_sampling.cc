/**
 * @file
 * Tests for the statistical fault-sampling module, pinned to the
 * paper's quoted values (Section IV.A).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "inject/sampling.hh"

namespace
{

using dfi::inject::achievedMargin;
using dfi::inject::confidenceZScore;
using dfi::inject::requiredInjections;

TEST(Sampling, ZScores)
{
    EXPECT_NEAR(confidenceZScore(0.99), 2.5758, 1e-3);
    EXPECT_NEAR(confidenceZScore(0.95), 1.9600, 1e-3);
    EXPECT_NEAR(confidenceZScore(0.90), 1.6449, 1e-3);
}

TEST(Sampling, PaperValue1843)
{
    // 99% confidence, 3% margin, large population: the formula gives
    // 1843.03 runs, which must round UP to 1844 — the paper's quoted
    // 1843 is the (truncated) formula value, and 1843 runs achieve a
    // margin slightly worse than the 3% requested.
    EXPECT_EQ(requiredInjections(0, 0.99, 0.03), 1844u);
    // Finite-but-large populations converge to the same value.
    EXPECT_NEAR(
        static_cast<double>(requiredInjections(1u << 30, 0.99, 0.03)),
        1844.0, 1.0);
}

TEST(Sampling, PaperValue663)
{
    // Margin relaxed to 5% at 99% confidence -> 663.5 runs, rounded
    // up to 664 ("approximately 3 times" fewer than 3% margin).
    EXPECT_EQ(requiredInjections(0, 0.99, 0.05), 664u);
    const double ratio = 1844.0 / 664.0;
    EXPECT_NEAR(ratio, 2.78, 0.05);
}

TEST(Sampling, SampleSizesRoundUpNotToNearest)
{
    // Regression for a round-to-nearest bug: 0.99/0.03 on an
    // infinite population needs 1843.03 runs.  Rounding to nearest
    // returned 1843, whose achieved margin exceeds the requested 3%;
    // ceil returns 1844, which satisfies it.
    const auto n = requiredInjections(0, 0.99, 0.03);
    EXPECT_EQ(n, 1844u);
    EXPECT_GT(achievedMargin(n - 1, 0, 0.99), 0.03);
    EXPECT_LE(achievedMargin(n, 0, 0.99), 0.03);

    // Same failure mode through the finite-population correction.
    const auto finite = requiredInjections(2'000'000, 0.99, 0.03);
    EXPECT_EQ(finite, 1842u);
    EXPECT_GT(achievedMargin(finite - 1, 2'000'000, 0.99), 0.03);
    EXPECT_LE(achievedMargin(finite, 2'000'000, 0.99), 0.03);
}

TEST(Sampling, PaperValue2000Gives288Margin)
{
    // "2000 injections correspond to 2.88% error margin".
    EXPECT_NEAR(achievedMargin(2000, 0, 0.99), 0.0288, 0.0002);
}

TEST(Sampling, SmallPopulationNeedsFewerRuns)
{
    const auto small = requiredInjections(1000, 0.99, 0.03);
    EXPECT_LT(small, 1843u);
    EXPECT_LE(small, 1000u);
}

TEST(Sampling, MarginMonotonicInRuns)
{
    const double loose = achievedMargin(100, 0, 0.99);
    const double tight = achievedMargin(10000, 0, 0.99);
    EXPECT_GT(loose, tight);
}

TEST(Sampling, InvalidArgumentsAreFatal)
{
    EXPECT_THROW(requiredInjections(0, 1.5, 0.03), dfi::FatalError);
    EXPECT_THROW(requiredInjections(0, 0.99, 0.0), dfi::FatalError);
    EXPECT_THROW(confidenceZScore(0.0), dfi::FatalError);
    EXPECT_THROW(achievedMargin(0, 0, 0.99), dfi::FatalError);
}

} // namespace

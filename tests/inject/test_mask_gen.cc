/**
 * @file
 * Tests for the Fault Mask Generator and the masks repository.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "inject/mask_gen.hh"
#include "inject/target.hh"
#include "isa/codegen.hh"
#include "prog/benchmark.hh"
#include "uarch/core_config.hh"

namespace
{

using namespace dfi;
using namespace dfi::inject;

class MaskGenTest : public ::testing::Test
{
  protected:
    MaskGenTest()
    {
        const auto bench = prog::buildBenchmark("micro");
        image_ = ir::compileModule(bench.module, isa::IsaKind::X86);
        core_ = std::make_unique<uarch::OooCore>(
            uarch::marssX86Config(), image_);
    }

    isa::Image image_;
    std::unique_ptr<uarch::OooCore> core_;
};

TEST_F(MaskGenTest, GeneratesRequestedCount)
{
    MaskGenConfig cfg;
    cfg.component = "l1d";
    cfg.numRuns = 500;
    cfg.maxCycle = 10000;
    const auto masks = generateMasks(cfg, *core_);
    ASSERT_EQ(masks.size(), 500u);
    for (std::size_t i = 0; i < masks.size(); ++i) {
        EXPECT_EQ(masks[i].runId, i);
        EXPECT_EQ(masks[i].structure, StructureId::L1DData);
        EXPECT_GE(masks[i].cycle, 1u);
        EXPECT_LE(masks[i].cycle, 10000u);
    }
}

TEST_F(MaskGenTest, LocationsInBounds)
{
    MaskGenConfig cfg;
    cfg.component = "l1d";
    cfg.numRuns = 2000;
    cfg.maxCycle = 1000;
    const auto masks = generateMasks(cfg, *core_);
    auto *array = core_->arrayFor(StructureId::L1DData);
    for (const auto &mask : masks) {
        EXPECT_LT(mask.entry, array->numEntries());
        EXPECT_LT(mask.bit, array->bitsPerEntry());
    }
}

TEST_F(MaskGenTest, DeterministicForSeed)
{
    MaskGenConfig cfg;
    cfg.component = "int_regfile";
    cfg.numRuns = 100;
    cfg.maxCycle = 5000;
    cfg.seed = 42;
    const auto a = generateMasks(cfg, *core_);
    const auto b = generateMasks(cfg, *core_);
    EXPECT_EQ(a, b);
    cfg.seed = 43;
    const auto c = generateMasks(cfg, *core_);
    EXPECT_NE(a, c);
}

TEST_F(MaskGenTest, LsqResolvesToUnifiedQueueOnMarss)
{
    MaskGenConfig cfg;
    cfg.component = "lsq";
    cfg.numRuns = 200;
    cfg.maxCycle = 1000;
    const auto masks = generateMasks(cfg, *core_);
    for (const auto &mask : masks)
        EXPECT_EQ(mask.structure, StructureId::LoadStoreQueue);
}

TEST_F(MaskGenTest, LsqResolvesToSplitQueuesOnGem5)
{
    const auto bench = prog::buildBenchmark("micro");
    const auto image =
        ir::compileModule(bench.module, isa::IsaKind::X86);
    uarch::OooCore gem5(uarch::gem5X86Config(), image);

    MaskGenConfig cfg;
    cfg.component = "lsq";
    cfg.numRuns = 400;
    cfg.maxCycle = 1000;
    const auto masks = generateMasks(cfg, gem5);
    std::set<StructureId> seen;
    for (const auto &mask : masks)
        seen.insert(mask.structure);
    EXPECT_TRUE(seen.count(StructureId::LoadQueue));
    EXPECT_TRUE(seen.count(StructureId::StoreQueue));
    EXPECT_FALSE(seen.count(StructureId::LoadStoreQueue));
}

TEST_F(MaskGenTest, IntermittentAndPermanentFields)
{
    MaskGenConfig cfg;
    cfg.component = "int_regfile";
    cfg.numRuns = 50;
    cfg.maxCycle = 1000;
    cfg.type = FaultType::Intermittent;
    cfg.intermittentMin = 10;
    cfg.intermittentMax = 20;
    for (const auto &mask : generateMasks(cfg, *core_)) {
        EXPECT_GE(mask.duration, 10u);
        EXPECT_LE(mask.duration, 20u);
    }
    cfg.type = FaultType::Permanent;
    for (const auto &mask : generateMasks(cfg, *core_)) {
        EXPECT_EQ(mask.cycle, 0u);
        EXPECT_EQ(mask.duration, 0u);
    }
}

TEST_F(MaskGenTest, MultiBitPopulations)
{
    MaskGenConfig cfg;
    cfg.component = "l1d";
    cfg.numRuns = 50;
    cfg.maxCycle = 1000;

    cfg.population = Population::DoubleAdjacent;
    auto masks = generateMasks(cfg, *core_);
    ASSERT_EQ(masks.size(), 100u);
    for (std::size_t i = 0; i < masks.size(); i += 2) {
        EXPECT_EQ(masks[i].runId, masks[i + 1].runId);
        EXPECT_EQ(masks[i].entry, masks[i + 1].entry);
    }

    cfg.population = Population::MultiStructure;
    masks = generateMasks(cfg, *core_);
    EXPECT_EQ(masks.size(), 100u);
}

TEST_F(MaskGenTest, RepositoryRoundTrip)
{
    MaskGenConfig cfg;
    cfg.component = "l1i";
    cfg.numRuns = 64;
    cfg.maxCycle = 1000;
    const auto masks = generateMasks(cfg, *core_);

    const std::string path = "/tmp/dfi_masks_test.txt";
    saveMasks(path, masks);
    const auto loaded = loadMasks(path);
    EXPECT_EQ(masks, loaded);
    std::remove(path.c_str());
}

TEST_F(MaskGenTest, UniformCoverageAcrossEntries)
{
    MaskGenConfig cfg;
    cfg.component = "int_regfile";
    cfg.numRuns = 8000;
    cfg.maxCycle = 1000;
    const auto masks = generateMasks(cfg, *core_);
    // 256 entries: each should get roughly 8000/256 = 31 hits.
    std::vector<int> hits(256, 0);
    for (const auto &mask : masks)
        ++hits[mask.entry];
    for (int h : hits) {
        EXPECT_GT(h, 5);
        EXPECT_LT(h, 90);
    }
}

TEST_F(MaskGenTest, ComponentBitsMatchesGeometry)
{
    // int RF: 256 x 32 bits.
    EXPECT_EQ(componentBits("int_regfile", *core_), 256u * 32u);
    // unified LSQ on marss: 32 x 32.
    EXPECT_EQ(componentBits("lsq", *core_), 32u * 32u);
}

} // namespace

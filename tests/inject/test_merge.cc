/**
 * @file
 * Tests for sharded and resumable campaigns: the plan's shard/resume
 * views, shard ∪ dfi-merge byte-identity against the serial run on
 * all three core setups, merge refusals, and resume determinism
 * (including from a torn-tail partial and within a shard).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"
#include "inject/campaign.hh"
#include "inject/merge.hh"
#include "inject/plan.hh"
#include "inject/telemetry.hh"

namespace
{

using namespace dfi::inject;

CampaignConfig
smokeConfig()
{
    CampaignConfig cfg;
    cfg.coreName = "marss-x86";
    cfg.benchmark = "micro";
    cfg.component = "int_regfile";
    cfg.numInjections = 12;
    cfg.seed = 7;
    return cfg;
}

std::string
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
writeFile(const std::filesystem::path &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    out << text;
    ASSERT_TRUE(out.good()) << path;
}

/** Temp dir per test, removed on destruction. */
struct TempDir
{
    std::filesystem::path path;

    TempDir()
    {
        path = std::filesystem::temp_directory_path() /
               ("dfi_merge_test_" +
                std::to_string(
                    ::testing::UnitTest::GetInstance()->random_seed()) +
                "_" + ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name());
        std::filesystem::create_directories(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
};

/** A synthetic 6-run plan with one single-mask task per runId. */
CampaignPlan
syntheticPlan()
{
    std::vector<dfi::FaultMask> masks;
    for (std::uint32_t run = 0; run < 6; ++run) {
        dfi::FaultMask mask;
        mask.runId = run;
        mask.entry = run;
        mask.bit = run % 8;
        mask.cycle = 10 + run;
        masks.push_back(mask);
    }
    return CampaignPlan(smokeConfig(), dfi::syskit::RunRecord{},
                        std::move(masks), 6);
}

TEST(PlanViews, ShardViewPartitionsRunIdsByModulus)
{
    const CampaignPlan plan = syntheticPlan();
    EXPECT_EQ(plan.totalRuns(), 6u);

    std::unordered_set<std::uint64_t> seen;
    for (std::uint32_t index = 0; index < 3; ++index) {
        const CampaignPlan shard =
            plan.shardView(ShardSpec{index, 3});
        // The view keeps the campaign-wide size and mask repository.
        EXPECT_EQ(shard.totalRuns(), 6u);
        EXPECT_EQ(shard.masks().size(), plan.masks().size());
        ASSERT_EQ(shard.numRuns(), 2u);
        for (std::size_t i = 0; i < shard.tasks().size(); ++i) {
            const RunTask &task = shard.tasks()[i];
            EXPECT_EQ(task.runId % 3, index);
            // Ordinals renumber 0..n-1; runIds stay campaign-wide.
            EXPECT_EQ(task.ordinal, i);
            EXPECT_TRUE(seen.insert(task.runId).second)
                << "runId " << task.runId << " in two shards";
        }
    }
    EXPECT_EQ(seen.size(), 6u); // the shards cover the campaign
}

TEST(PlanViews, WithoutRunsSkipsCompletedAndRejectsForeignRunIds)
{
    const CampaignPlan plan = syntheticPlan();
    const CampaignPlan rest = plan.withoutRuns({0, 1, 2});
    EXPECT_EQ(rest.totalRuns(), 6u);
    ASSERT_EQ(rest.numRuns(), 3u);
    for (std::size_t i = 0; i < rest.tasks().size(); ++i) {
        EXPECT_EQ(rest.tasks()[i].runId, i + 3);
        EXPECT_EQ(rest.tasks()[i].ordinal, i);
    }

    // A completed runId outside the plan is a config/shard mismatch.
    EXPECT_THROW(plan.withoutRuns({99}), dfi::FatalError);
    // ... including one that belongs to a *different* shard view.
    const CampaignPlan shard0 = plan.shardView(ShardSpec{0, 2});
    EXPECT_THROW(shard0.withoutRuns({1}), dfi::FatalError);
}

TEST(Merge, ShardsMergeByteIdenticalToSerialOnAllCoreSetups)
{
    TempDir dir;
    for (const char *core : {"marss-x86", "gem5-x86", "gem5-arm"}) {
        CampaignConfig serial = smokeConfig();
        serial.coreName = core;
        serial.telemetryOut = (dir.path / "serial").string();
        InjectionCampaign(serial).run();
        const std::string runs = readFile(dir.path / "serial.jsonl");
        const std::string summary =
            readFile(dir.path / "serial.summary.json");

        for (std::uint32_t count : {2u, 4u}) {
            std::vector<std::string> shard_paths;
            for (std::uint32_t index = 0; index < count; ++index) {
                CampaignConfig cfg = smokeConfig();
                cfg.coreName = core;
                cfg.shard = ShardSpec{index, count};
                cfg.telemetryOut =
                    (dir.path /
                     ("s" + std::to_string(count) + "_" +
                      std::to_string(index)))
                        .string();
                InjectionCampaign(cfg).run();
                shard_paths.push_back(cfg.telemetryOut + ".jsonl");
            }

            MergeResult merged;
            std::string error;
            ASSERT_TRUE(
                mergeTelemetryStreams(shard_paths, merged, error))
                << core << " x" << count << ": " << error;
            EXPECT_EQ(merged.runs, 12u);
            EXPECT_EQ(merged.runsJsonl, runs)
                << core << " x" << count;
            EXPECT_EQ(merged.summaryJson, summary)
                << core << " x" << count;
        }
    }
}

TEST(Merge, WriteFilesEmitsTheMergedArtifacts)
{
    TempDir dir;
    CampaignConfig cfg = smokeConfig();
    cfg.shard = ShardSpec{0, 2};
    cfg.telemetryOut = (dir.path / "s0").string();
    InjectionCampaign(cfg).run();
    cfg.shard = ShardSpec{1, 2};
    cfg.telemetryOut = (dir.path / "s1").string();
    InjectionCampaign(cfg).run();

    MergeResult merged;
    std::string error;
    // Shard order must not matter.
    ASSERT_TRUE(mergeTelemetryFiles(
        {(dir.path / "s1.jsonl").string(),
         (dir.path / "s0.jsonl").string()},
        (dir.path / "merged").string(), merged, error))
        << error;
    EXPECT_EQ(readFile(dir.path / "merged.jsonl"), merged.runsJsonl);
    EXPECT_EQ(readFile(dir.path / "merged.summary.json"),
              merged.summaryJson);

    // The merged stream re-parses and diffs Equal against itself.
    std::string report;
    EXPECT_EQ(diffTelemetryFiles((dir.path / "merged.jsonl").string(),
                                 (dir.path / "merged.jsonl").string(),
                                 DiffOptions{}, report),
              DiffOutcome::Equal)
        << report;
}

TEST(Merge, RefusesIncompatibleOrIncompleteShardSets)
{
    TempDir dir;
    CampaignConfig cfg = smokeConfig();
    cfg.shard = ShardSpec{0, 2};
    cfg.telemetryOut = (dir.path / "s0").string();
    InjectionCampaign(cfg).run();
    cfg.shard = ShardSpec{1, 2};
    cfg.telemetryOut = (dir.path / "s1").string();
    InjectionCampaign(cfg).run();

    // A shard from a different campaign (other seed): header mismatch.
    CampaignConfig other = smokeConfig();
    other.seed = 8;
    other.shard = ShardSpec{1, 2};
    other.telemetryOut = (dir.path / "other").string();
    InjectionCampaign(other).run();

    const std::string s0 = (dir.path / "s0.jsonl").string();
    const std::string s1 = (dir.path / "s1.jsonl").string();

    MergeResult merged;
    std::string error;
    EXPECT_FALSE(mergeTelemetryStreams(
        {s0, (dir.path / "other.jsonl").string()}, merged, error));
    EXPECT_NE(error.find("header"), std::string::npos) << error;

    // An incomplete shard set: runs_total not covered.
    error.clear();
    EXPECT_FALSE(mergeTelemetryStreams({s0}, merged, error));
    EXPECT_NE(error.find("runs_total"), std::string::npos) << error;

    // A duplicated shard: overlapping runIds.
    error.clear();
    EXPECT_FALSE(mergeTelemetryStreams({s0, s1, s1}, merged, error));
    EXPECT_FALSE(error.empty());

    // No inputs at all.
    error.clear();
    EXPECT_FALSE(mergeTelemetryStreams({}, merged, error));
    EXPECT_FALSE(error.empty());

    // A summary document is not a run stream.
    error.clear();
    EXPECT_FALSE(mergeTelemetryStreams(
        {(dir.path / "s0.summary.json").string(), s1}, merged,
        error));
    EXPECT_FALSE(error.empty());
}

TEST(Resume, InterruptedCampaignResumesToIdenticalArtifacts)
{
    TempDir dir;
    CampaignConfig serial = smokeConfig();
    serial.telemetryOut = (dir.path / "serial").string();
    InjectionCampaign(serial).run();
    const std::string runs = readFile(dir.path / "serial.jsonl");
    const std::string summary =
        readFile(dir.path / "serial.summary.json");

    // Simulate a campaign killed after 5 committed records plus a
    // torn partial write of the 6th — the exact on-disk signature of
    // killing the streaming writer.
    std::istringstream stream(runs);
    std::string line;
    std::string partial;
    for (int i = 0; i < 6 && std::getline(stream, line); ++i) {
        partial += line;
        partial += '\n';
    }
    std::getline(stream, line);
    partial += line.substr(0, line.size() / 2); // torn, no newline
    writeFile(dir.path / "partial.jsonl", partial);

    CampaignConfig resume = smokeConfig();
    resume.resumeFrom = (dir.path / "partial.jsonl").string();
    resume.telemetryOut = (dir.path / "resumed").string();
    const CampaignResult result = InjectionCampaign(resume).run();

    // Only the remainder was executed or synthesized from the prune
    // verdicts; the 5 replayed records belong to neither list ...
    EXPECT_EQ(result.records.size() + result.pruned.size(), 12u - 5u);
    // ... but the artifacts equal the uninterrupted run's, byte for
    // byte.
    EXPECT_EQ(readFile(dir.path / "resumed.jsonl"), runs);
    EXPECT_EQ(readFile(dir.path / "resumed.summary.json"), summary);
}

TEST(Resume, ResumesInPlaceOverItsOwnPartial)
{
    TempDir dir;
    CampaignConfig serial = smokeConfig();
    serial.telemetryOut = (dir.path / "serial").string();
    InjectionCampaign(serial).run();
    const std::string runs = readFile(dir.path / "serial.jsonl");

    std::istringstream stream(runs);
    std::string line;
    std::string partial;
    for (int i = 0; i < 4 && std::getline(stream, line); ++i) {
        partial += line;
        partial += '\n';
    }
    writeFile(dir.path / "run.jsonl", partial);

    // --resume run.jsonl --telemetry-out run: finish the same file.
    CampaignConfig resume = smokeConfig();
    resume.resumeFrom = (dir.path / "run.jsonl").string();
    resume.telemetryOut = (dir.path / "run").string();
    InjectionCampaign(resume).run();
    EXPECT_EQ(readFile(dir.path / "run.jsonl"), runs);
}

TEST(Resume, ShardResumeCompletesTheShardStream)
{
    TempDir dir;
    CampaignConfig shard = smokeConfig();
    shard.shard = ShardSpec{1, 2};
    shard.telemetryOut = (dir.path / "s1").string();
    InjectionCampaign(shard).run();
    const std::string runs = readFile(dir.path / "s1.jsonl");

    // Keep header + first two records of the shard stream.
    std::istringstream stream(runs);
    std::string line;
    std::string partial;
    for (int i = 0; i < 3 && std::getline(stream, line); ++i) {
        partial += line;
        partial += '\n';
    }
    writeFile(dir.path / "partial.jsonl", partial);

    CampaignConfig resume = smokeConfig();
    resume.shard = ShardSpec{1, 2};
    resume.resumeFrom = (dir.path / "partial.jsonl").string();
    resume.telemetryOut = (dir.path / "resumed").string();
    InjectionCampaign(resume).run();
    EXPECT_EQ(readFile(dir.path / "resumed.jsonl"), runs);
}

TEST(Resume, RejectsStreamsFromOtherCampaignsOrShards)
{
    TempDir dir;
    CampaignConfig cfg = smokeConfig();
    cfg.telemetryOut = (dir.path / "run").string();
    InjectionCampaign(cfg).run();

    // Different seed: the resume header check must refuse.
    CampaignConfig wrong_seed = smokeConfig();
    wrong_seed.seed = 8;
    wrong_seed.resumeFrom = (dir.path / "run.jsonl").string();
    wrong_seed.telemetryOut = (dir.path / "out").string();
    EXPECT_THROW(InjectionCampaign(wrong_seed).run(),
                 dfi::FatalError);

    // Unsharded stream into a shard run: its completed runIds cover
    // runs outside the shard view.
    CampaignConfig wrong_shard = smokeConfig();
    wrong_shard.shard = ShardSpec{0, 2};
    wrong_shard.resumeFrom = (dir.path / "run.jsonl").string();
    wrong_shard.telemetryOut = (dir.path / "out").string();
    EXPECT_THROW(InjectionCampaign(wrong_shard).run(),
                 dfi::FatalError);

    // Resume without a telemetry output is a config error.
    CampaignConfig no_out = smokeConfig();
    no_out.resumeFrom = (dir.path / "run.jsonl").string();
    EXPECT_FALSE(no_out.validate().empty());
    EXPECT_THROW(InjectionCampaign(no_out).run(), dfi::FatalError);
}

} // namespace

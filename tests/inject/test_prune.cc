/**
 * @file
 * Tests for the staged classification pipeline (inject/prune.hh and
 * the CampaignPlan pruning stages): the pruned-vs-unpruned
 * determinism contract, plan view composition over pruned plans
 * (shard promotion, resume subtraction), exhaustive enumeration, and
 * the config gates.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "inject/campaign.hh"
#include "inject/plan.hh"
#include "inject/telemetry.hh"

namespace
{

using namespace dfi;
using namespace dfi::inject;

/**
 * Fixed-seed sampled campaign whose classification pipeline exercises
 * all three verdict buckets (simulated, statically pruned, and
 * equivalence-pruned) on the micro workload — verified empirically
 * and locked by PruneBucketsArePopulated below.
 */
CampaignConfig
mixedConfig()
{
    CampaignConfig cfg;
    cfg.coreName = "marss-x86";
    cfg.benchmark = "micro";
    cfg.component = "l1d_valid";
    cfg.numInjections = 400;
    cfg.seed = 0x5eed;
    return cfg;
}

std::string
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
writeFile(const std::filesystem::path &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    out << text;
}

/** Temp dir per test, removed on destruction. */
struct TempDir
{
    std::filesystem::path path;

    TempDir()
    {
        path = std::filesystem::temp_directory_path() /
               ("dfi_prune_test_" +
                std::to_string(
                    ::testing::UnitTest::GetInstance()->random_seed()) +
                "_" + ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name());
        std::filesystem::create_directories(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
};

/**
 * A 10-run single-bit plan with a hand-written verdict for every run:
 * three survivors (0, 3, 8 — two of them class representatives),
 * three static prunes, one golden-equivalent, and three equivalence
 * members, two of whose representatives live across a 2-shard split.
 */
CampaignPlan
syntheticPrunedPlan()
{
    constexpr std::uint64_t kRuns = 10;
    std::vector<FaultMask> masks(kRuns);
    for (std::uint64_t i = 0; i < kRuns; ++i) {
        masks[i].runId = static_cast<std::uint32_t>(i);
        masks[i].structure = StructureId::IntRegFile;
        masks[i].entry = static_cast<std::uint32_t>(i);
        masks[i].bit = 1;
        masks[i].type = FaultType::Transient;
        masks[i].cycle = i + 1;
    }
    syskit::RunRecord golden;
    golden.term = syskit::Termination::Exited;
    golden.cycles = 100;
    golden.instructions = 90;

    CampaignPlan plan(CampaignConfig{}, golden, masks, kRuns);

    std::vector<SiteClassification> cls(kRuns);
    auto simulate = [&cls](std::uint64_t id, std::uint64_t klass) {
        cls[id].verdict = SiteVerdict::Simulate;
        cls[id].pruneClass = klass;
    };
    auto member = [&cls](std::uint64_t id, std::uint64_t rep,
                         std::uint64_t klass) {
        cls[id].verdict = SiteVerdict::EquivMember;
        cls[id].repRunId = rep;
        cls[id].pruneClass = klass;
    };
    simulate(0, 1); // rep of class 1
    cls[1].verdict = SiteVerdict::InvalidEntry;
    cls[1].cycles = 0;
    member(2, 0, 1);
    simulate(3, 2); // rep of class 2
    member(4, 3, 2);
    cls[5].verdict = SiteVerdict::DeadOverwrite;
    cls[5].cycles = 40;
    cls[5].instructions = 33;
    cls[6].verdict = SiteVerdict::GoldenRun;
    cls[6].cycles = 100;
    cls[6].instructions = 90;
    member(7, 0, 1);
    simulate(8, 3); // rep of class 3
    member(9, 8, 3);

    plan.applyPruning(cls);
    return plan;
}

std::vector<std::uint64_t>
taskRunIds(const CampaignPlan &plan)
{
    std::vector<std::uint64_t> ids;
    for (const RunTask &task : plan.tasks())
        ids.push_back(task.runId);
    return ids;
}

std::vector<std::uint64_t>
prunedRunIds(const CampaignPlan &plan)
{
    std::vector<std::uint64_t> ids;
    for (const PrunedRun &pruned : plan.pruned())
        ids.push_back(pruned.runId);
    return ids;
}

TEST(PrunePlan, ApplyPruningSplitsTasksAndKeepsStats)
{
    const CampaignPlan plan = syntheticPrunedPlan();
    EXPECT_EQ(taskRunIds(plan),
              (std::vector<std::uint64_t>{0, 3, 8}));
    EXPECT_EQ(prunedRunIds(plan),
              (std::vector<std::uint64_t>{1, 2, 4, 5, 6, 7, 9}));
    EXPECT_EQ(plan.pruneStats().simulated, 3u);
    EXPECT_EQ(plan.pruneStats().prunedStatic, 3u);
    EXPECT_EQ(plan.pruneStats().prunedEquiv, 4u);
    EXPECT_EQ(plan.totalRuns(), 10u);
    // Ordinals renumber 0..n-1; runIds keep campaign identity.
    for (std::size_t i = 0; i < plan.tasks().size(); ++i)
        EXPECT_EQ(plan.tasks()[i].ordinal, i);
    EXPECT_EQ(plan.tasks()[0].pruneClass, 1u);
    EXPECT_EQ(plan.tasks()[1].pruneClass, 2u);
    EXPECT_EQ(plan.tasks()[2].pruneClass, 3u);
}

TEST(PrunePlan, ShardViewPromotesStrandedEquivMembers)
{
    const CampaignPlan plan = syntheticPrunedPlan();

    // Even shard: member 4's representative (3) is odd, so 4 is
    // promoted back to a real task; members 2 (rep 0) stay pruned.
    const CampaignPlan even = plan.shardView(ShardSpec{0, 2});
    EXPECT_EQ(taskRunIds(even),
              (std::vector<std::uint64_t>{0, 4, 8}));
    EXPECT_EQ(prunedRunIds(even),
              (std::vector<std::uint64_t>{2, 6}));
    for (std::size_t i = 0; i < even.tasks().size(); ++i)
        EXPECT_EQ(even.tasks()[i].ordinal, i);
    // The promoted task carries the member's mask and class id.
    EXPECT_EQ(even.tasks()[1].runId, 4u);
    ASSERT_EQ(even.tasks()[1].masks.size(), 1u);
    EXPECT_EQ(even.tasks()[1].masks[0].cycle, 5u);
    EXPECT_EQ(even.tasks()[1].firstCycle, 5u);
    EXPECT_EQ(even.tasks()[1].pruneClass, 2u);

    // Odd shard: members 7 and 9 have even representatives.
    const CampaignPlan odd = plan.shardView(ShardSpec{1, 2});
    EXPECT_EQ(taskRunIds(odd),
              (std::vector<std::uint64_t>{3, 7, 9}));
    EXPECT_EQ(prunedRunIds(odd),
              (std::vector<std::uint64_t>{1, 5}));

    // Shards partition the campaign and report campaign-wide stats.
    EXPECT_EQ(even.tasks().size() + even.pruned().size() +
                  odd.tasks().size() + odd.pruned().size(),
              10u);
    EXPECT_EQ(even.pruneStats().simulated, 3u);
    EXPECT_EQ(odd.pruneStats().prunedEquiv, 4u);
    EXPECT_EQ(even.totalRuns(), 10u);
}

TEST(PrunePlan, WithoutRunsAcceptsPrunedRunIds)
{
    const CampaignPlan plan = syntheticPrunedPlan();

    // A resume stream may name pruned runs (their records were
    // emitted too): subtracting them must work.
    const CampaignPlan view = plan.withoutRuns({1, 2, 3});
    EXPECT_EQ(taskRunIds(view), (std::vector<std::uint64_t>{0, 8}));
    EXPECT_EQ(prunedRunIds(view),
              (std::vector<std::uint64_t>{4, 5, 6, 7, 9}));
    EXPECT_EQ(view.pruneStats().simulated, 3u); // campaign-wide

    // A runId outside the campaign is a wrong-resume-file error.
    EXPECT_THROW(plan.withoutRuns({42}), FatalError);
}

TEST(Prune, BucketsArePopulated)
{
    InjectionCampaign campaign(mixedConfig());
    const auto summary = campaign.planSummary();
    EXPECT_EQ(summary.totalRuns, 400u);
    EXPECT_GT(summary.stats.simulated, 0u);
    EXPECT_GT(summary.stats.prunedStatic, 0u);
    EXPECT_GT(summary.stats.prunedEquiv, 0u);
    EXPECT_EQ(summary.stats.simulated + summary.stats.prunedStatic +
                  summary.stats.prunedEquiv,
              400u);
    EXPECT_GT(summary.estimatedSimulatedCycles, 0u);
}

TEST(Prune, PrunedAndUnprunedTelemetryAreByteIdentical)
{
    TempDir dir;
    CampaignConfig pruned_cfg = mixedConfig();
    pruned_cfg.telemetryOut = (dir.path / "pruned").string();
    const CampaignResult pruned = InjectionCampaign(pruned_cfg).run();

    CampaignConfig full_cfg = mixedConfig();
    full_cfg.prune = false;
    full_cfg.telemetryOut = (dir.path / "unpruned").string();
    const CampaignResult full = InjectionCampaign(full_cfg).run();

    // The pipeline really removed work ...
    EXPECT_GT(pruned.pruneStats.prunedStatic, 0u);
    EXPECT_GT(pruned.pruneStats.prunedEquiv, 0u);
    EXPECT_LT(pruned.records.size(), full.records.size());
    EXPECT_LT(pruned.simulatedFaultyCycles,
              full.simulatedFaultyCycles);
    // ... without changing the classification output: exact-diff
    // equality over every non-volatile field (the prune tallies and
    // per-run class ids are volatile — they describe the execution
    // strategy, not the outcome).
    std::string report;
    EXPECT_EQ(diffTelemetryFiles((dir.path / "pruned.jsonl").string(),
                                 (dir.path / "unpruned.jsonl").string(),
                                 DiffOptions{}, report),
              DiffOutcome::Equal)
        << report;
    EXPECT_EQ(
        diffTelemetryFiles((dir.path / "pruned.summary.json").string(),
                           (dir.path / "unpruned.summary.json").string(),
                           DiffOptions{}, report),
        DiffOutcome::Equal)
        << report;

    // The in-memory tallies agree too.
    Parser parser;
    EXPECT_EQ(pruned.classify(parser).counts,
              full.classify(parser).counts);
}

TEST(Prune, ResumeAfterPruneIsDeterministic)
{
    TempDir dir;
    CampaignConfig cfg = mixedConfig();
    cfg.telemetryOut = (dir.path / "whole").string();
    InjectionCampaign(cfg).run();
    const std::string runs = readFile(dir.path / "whole.jsonl");
    const std::string summary =
        readFile(dir.path / "whole.summary.json");

    // Keep the header plus the first 60 records (a mix of pruned and
    // simulated runs) and resume from that partial stream.
    std::istringstream stream(runs);
    std::string line;
    std::string partial;
    for (int i = 0; i < 61 && std::getline(stream, line); ++i) {
        partial += line;
        partial += '\n';
    }
    writeFile(dir.path / "partial.jsonl", partial);

    CampaignConfig resume = mixedConfig();
    resume.resumeFrom = (dir.path / "partial.jsonl").string();
    resume.telemetryOut = (dir.path / "resumed").string();
    const CampaignResult result = InjectionCampaign(resume).run();

    EXPECT_EQ(readFile(dir.path / "resumed.jsonl"), runs);
    EXPECT_EQ(readFile(dir.path / "resumed.summary.json"), summary);
    // The resumed process covered exactly the remainder.
    EXPECT_EQ(result.records.size() + result.pruned.size(),
              400u - 60u);
}

TEST(Exhaustive, EnumeratesEveryBitCycleSite)
{
    CampaignConfig cfg = mixedConfig();
    cfg.numInjections = 0;
    cfg.exhaustive = true;
    InjectionCampaign campaign(cfg);
    const auto summary = campaign.planSummary();
    // l1d_valid has one valid bit per line; the space is
    // totalBits x golden cycles.
    EXPECT_EQ(summary.totalRuns % campaign.golden().cycles, 0u);
    EXPECT_GT(summary.totalRuns, 1000u);
    EXPECT_EQ(summary.maskCount, summary.totalRuns);
    EXPECT_EQ(summary.stats.simulated + summary.stats.prunedStatic +
                  summary.stats.prunedEquiv,
              summary.totalRuns);
    // Exhaustive spaces collapse massively under the pipeline.
    EXPECT_LT(summary.stats.simulated, summary.totalRuns / 10);
    EXPECT_GT(summary.stats.prunedEquiv, 0u);

    const CampaignResult result = campaign.run();
    EXPECT_EQ(result.records.size() + result.pruned.size(),
              summary.totalRuns);
    EXPECT_EQ(result.records.size(), summary.stats.simulated);
    Parser parser;
    EXPECT_EQ(result.classify(parser).total(), summary.totalRuns);
}

TEST(Exhaustive, ConfigGates)
{
    CampaignConfig cfg = mixedConfig();
    cfg.exhaustive = true;
    cfg.numInjections = 100; // contradiction: space defines the count
    {
        const auto errors = cfg.validate();
        ASSERT_EQ(errors.size(), 1u);
        EXPECT_EQ(errors[0].field, "injections");
    }
    cfg.numInjections = 0;
    cfg.faultType = FaultType::Permanent;
    {
        const auto errors = cfg.validate();
        ASSERT_EQ(errors.size(), 1u);
        EXPECT_EQ(errors[0].field, "exhaustive");
    }
    cfg.faultType = FaultType::Transient;
    cfg.population = Population::DoubleRandom;
    {
        const auto errors = cfg.validate();
        ASSERT_EQ(errors.size(), 1u);
        EXPECT_EQ(errors[0].field, "exhaustive");
    }
}

TEST(PruneGate, OnlySingleBitTransientsWithEarlyStops)
{
    CampaignConfig cfg = mixedConfig();
    EXPECT_TRUE(planPrunes(cfg));
    cfg.prune = false;
    EXPECT_FALSE(planPrunes(cfg));
    cfg.prune = true;
    cfg.faultType = FaultType::Permanent;
    EXPECT_FALSE(planPrunes(cfg));
    cfg.faultType = FaultType::Transient;
    cfg.population = Population::DoubleAdjacent;
    EXPECT_FALSE(planPrunes(cfg));
    cfg.population = Population::SingleBit;
    cfg.earlyStopOverwrite = false;
    EXPECT_FALSE(planPrunes(cfg));
    cfg.earlyStopOverwrite = true;
    cfg.earlyStopInvalidEntry = false;
    EXPECT_FALSE(planPrunes(cfg));
}

TEST(PruneGate, NoPruneCampaignExecutesEverything)
{
    CampaignConfig cfg = mixedConfig();
    cfg.numInjections = 25;
    cfg.prune = false;
    const CampaignResult result = InjectionCampaign(cfg).run();
    EXPECT_EQ(result.records.size(), 25u);
    EXPECT_TRUE(result.pruned.empty());
    EXPECT_EQ(result.pruneStats.simulated, 25u);
    EXPECT_EQ(result.pruneStats.prunedStatic, 0u);
}

} // namespace

/**
 * @file
 * Unit tests for the injectable cache model: geometry, hit/miss/LRU
 * behaviour, write-back semantics, and the fault channels through the
 * tag/data/valid arrays.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "uarch/cache.hh"

namespace
{

using namespace dfi;
using namespace dfi::uarch;

CacheConfig
smallConfig()
{
    // 2KB, 64B lines, 2-way -> 16 sets, 32 lines.
    return CacheConfig{"c", 2048, 64, 2, 1};
}

TEST(Cache, Geometry)
{
    Cache cache(smallConfig());
    EXPECT_EQ(cache.numSets(), 16u);
    EXPECT_EQ(cache.numLines(), 32u);
    EXPECT_EQ(cache.dataArray().totalBits(), 32u * 512u);
    EXPECT_EQ(cache.validArray().totalBits(), 32u);
    // 32-bit address, 16 sets, 64B lines -> 32-4-6 = 22 tag bits.
    EXPECT_EQ(cache.tagArray().bitsPerEntry(), 22u);
}

TEST(Cache, MissThenHit)
{
    Cache cache(smallConfig());
    StatSet stats;
    EXPECT_FALSE(cache.access(0x1000, false, stats).hit);
    std::uint8_t line[64] = {};
    line[5] = 0xaa;
    cache.fill(0x1000, line, stats);
    const auto hit = cache.access(0x1000, false, stats);
    ASSERT_TRUE(hit.hit);
    std::uint8_t byte = 0;
    cache.readLine(hit.line, 5, 1, &byte);
    EXPECT_EQ(byte, 0xaa);
    EXPECT_EQ(stats.get("c.read_misses"), 1u);
    EXPECT_EQ(stats.get("c.read_hits"), 1u);
}

TEST(Cache, SameSetDifferentTagsMiss)
{
    Cache cache(smallConfig());
    StatSet stats;
    std::uint8_t line[64] = {};
    cache.fill(0x1000, line, stats);
    // Same set (16 sets x 64B = 1KB stride), different tag.
    EXPECT_FALSE(cache.access(0x1000 + 16 * 64, false, stats).hit);
}

TEST(Cache, LruEviction)
{
    Cache cache(smallConfig());
    StatSet stats;
    std::uint8_t line[64] = {};
    const std::uint32_t stride = 16 * 64; // same-set stride
    cache.fill(0x0000, line, stats);
    cache.fill(0x0000 + stride, line, stats);
    // Touch the first line so the second becomes LRU.
    (void)cache.access(0x0000, false, stats);
    const auto evicted = cache.fill(0x0000 + 2 * stride, line, stats);
    EXPECT_TRUE(evicted.valid);
    EXPECT_EQ(evicted.addr, 0x0000u + stride);
    EXPECT_FALSE(evicted.dirty);
    EXPECT_EQ(stats.get("c.replacements"), 1u);
}

TEST(Cache, DirtyEvictionCarriesData)
{
    Cache cache(smallConfig());
    StatSet stats;
    std::uint8_t line[64] = {};
    const std::uint32_t stride = 16 * 64;
    cache.fill(0x2000, line, stats);
    const auto hit = cache.access(0x2000, true, stats);
    std::uint8_t dirty_byte = 0x77;
    cache.writeLine(hit.line, 3, 1, &dirty_byte);
    cache.fill(0x2000 + stride, line, stats);
    const auto evicted = cache.fill(0x2000 + 2 * stride, line, stats);
    ASSERT_TRUE(evicted.valid);
    ASSERT_TRUE(evicted.dirty);
    ASSERT_EQ(evicted.bytes.size(), 64u);
    EXPECT_EQ(evicted.bytes[3], 0x77);
    EXPECT_EQ(stats.get("c.writebacks"), 1u);
}

TEST(Cache, TagFaultMakesLineUnreachable)
{
    Cache cache(smallConfig());
    StatSet stats;
    std::uint8_t line[64] = {};
    cache.fill(0x3000, line, stats);
    const auto before = cache.access(0x3000, false, stats);
    ASSERT_TRUE(before.hit);
    cache.tagArray().flipBit(before.line, 0);
    EXPECT_FALSE(cache.access(0x3000, false, stats).hit);
}

TEST(Cache, TagFaultCorruptsWritebackAddress)
{
    Cache cache(smallConfig());
    StatSet stats;
    std::uint8_t line[64] = {};
    const std::uint32_t stride = 16 * 64;
    cache.fill(0x4000, line, stats);
    const auto hit = cache.access(0x4000, true, stats);
    std::uint8_t b = 1;
    cache.writeLine(hit.line, 0, 1, &b);
    // Flip a tag bit: the dirty victim's reconstructed address moves.
    cache.tagArray().flipBit(hit.line, 2);
    cache.fill(0x4000 + stride, line, stats);
    const auto evicted = cache.fill(0x4000 + 2 * stride, line, stats);
    ASSERT_TRUE(evicted.valid);
    EXPECT_NE(evicted.addr, 0x4000u);
}

TEST(Cache, ValidBitFaultDropsLine)
{
    Cache cache(smallConfig());
    StatSet stats;
    std::uint8_t line[64] = {};
    cache.fill(0x5000, line, stats);
    const auto hit = cache.access(0x5000, false, stats);
    cache.validArray().forceBit(hit.line, 0, false);
    EXPECT_FALSE(cache.access(0x5000, false, stats).hit);
    EXPECT_FALSE(cache.lineValid(hit.line));
}

TEST(Cache, DataFaultVisibleOnRead)
{
    Cache cache(smallConfig());
    StatSet stats;
    std::uint8_t line[64] = {};
    cache.fill(0x6000, line, stats);
    const auto hit = cache.access(0x6000, false, stats);
    cache.dataArray().flipBit(hit.line, 8 * 10 + 3); // byte 10, bit 3
    std::uint8_t byte = 0;
    cache.readLine(hit.line, 10, 1, &byte);
    EXPECT_EQ(byte, 1u << 3);
}

TEST(Cache, ProbeHasNoSideEffects)
{
    Cache cache(smallConfig());
    StatSet stats;
    std::uint8_t line[64] = {};
    cache.fill(0x7000, line, stats);
    const auto misses = stats.get("c.read_misses");
    EXPECT_TRUE(cache.probe(0x7000));
    EXPECT_FALSE(cache.probe(0x8000));
    EXPECT_EQ(stats.get("c.read_misses"), misses);
}

TEST(Cache, FillPrefersInvalidWays)
{
    Cache cache(smallConfig());
    StatSet stats;
    std::uint8_t line[64] = {};
    const std::uint32_t stride = 16 * 64;
    const auto first = cache.fill(0x1000, line, stats);
    const auto second = cache.fill(0x1000 + stride, line, stats);
    EXPECT_FALSE(first.valid);
    EXPECT_FALSE(second.valid); // went to the empty way
    EXPECT_EQ(stats.get("c.replacements"), 0u);
}

} // namespace

/**
 * @file
 * Tests for the memory hierarchy, focused on the Shadow-vs-WriteBack
 * divergence that carries the paper's Remark 3: in the MARSS-like
 * Shadow mode main memory is authoritative and the hypervisor bypasses
 * the caches; in the gem5-like WriteBack mode dirty data exists only
 * in the arrays.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "syskit/memory.hh"
#include "uarch/hier.hh"

namespace
{

using namespace dfi;
using namespace dfi::uarch;

HierConfig
smallHier(HierMode mode)
{
    HierConfig cfg;
    cfg.mode = mode;
    cfg.l1i = CacheConfig{"l1i", 2048, 64, 2, 1};
    cfg.l1d = CacheConfig{"l1d", 2048, 64, 2, 1};
    cfg.l2 = CacheConfig{"l2", 8192, 64, 4, 4};
    return cfg;
}

syskit::GuestMemory
filledMemory()
{
    syskit::GuestMemory memory(0x20000, 0x2000);
    for (std::uint32_t a = 0x2000; a < 0x3000; a += 4)
        (void)memory.write(a, 4, a);
    return memory;
}

TEST(Hier, ReadThroughHierarchyReturnsMemoryData)
{
    for (auto mode : {HierMode::Shadow, HierMode::WriteBack}) {
        MemHierarchy hier(smallHier(mode), filledMemory());
        StatSet stats;
        std::uint8_t bytes[4];
        const auto access = hier.read(0x2040, 4, bytes, stats);
        EXPECT_TRUE(access.ok);
        EXPECT_GT(access.latency, 0u);
        std::uint32_t value = bytes[0] | (bytes[1] << 8) |
                              (bytes[2] << 16) | (bytes[3] << 24);
        EXPECT_EQ(value, 0x2040u);
        // Second read hits.
        const auto again = hier.read(0x2040, 4, bytes, stats);
        EXPECT_LT(again.latency, access.latency);
    }
}

TEST(Hier, ShadowWritesAreVisibleInMemoryImmediately)
{
    MemHierarchy hier(smallHier(HierMode::Shadow), filledMemory());
    StatSet stats;
    const std::uint8_t data[4] = {0xde, 0xad, 0xbe, 0xef};
    hier.write(0x2100, 4, data, stats);
    std::uint8_t direct[4] = {};
    ASSERT_TRUE(hier.directRead(0x2100, 4, direct));
    EXPECT_EQ(direct[0], 0xde);
}

TEST(Hier, WriteBackKeepsDirtyDataOutOfMemory)
{
    MemHierarchy hier(smallHier(HierMode::WriteBack), filledMemory());
    StatSet stats;
    const std::uint8_t data[4] = {0xde, 0xad, 0xbe, 0xef};
    hier.write(0x2100, 4, data, stats);
    std::uint8_t direct[4] = {};
    ASSERT_TRUE(hier.directRead(0x2100, 4, direct));
    // Main memory still has the old value: the line is dirty in L1D.
    EXPECT_NE(direct[0], 0xde);
    // But a hierarchy read sees the new value.
    std::uint8_t via_cache[4] = {};
    hier.read(0x2100, 4, via_cache, stats);
    EXPECT_EQ(via_cache[0], 0xde);
}

TEST(Hier, ShadowMasksCacheFaultFromDirectReads)
{
    // The Remark 3 mechanism: a fault in the L1D data array is
    // invisible to the hypervisor's direct (QEMU) access.
    MemHierarchy hier(smallHier(HierMode::Shadow), filledMemory());
    StatSet stats;
    std::uint8_t bytes[4];
    hier.read(0x2200, 4, bytes, stats); // pull the line in
    // Fault every line of L1D (blunt but mode-agnostic).
    for (std::uint32_t line = 0; line < hier.l1d().numLines(); ++line)
        hier.l1d().dataArray().flipBit(line, 0);

    std::uint8_t direct[4] = {};
    ASSERT_TRUE(hier.directRead(0x2200, 4, direct));
    const std::uint32_t direct_value =
        direct[0] | (direct[1] << 8) | (direct[2] << 16) |
        (direct[3] << 24);
    EXPECT_EQ(direct_value, 0x2200u); // unaffected

    // ...while a CPU read through the cache sees the corruption.
    hier.read(0x2200, 4, bytes, stats);
    const std::uint32_t cached_value = bytes[0] | (bytes[1] << 8) |
                                       (bytes[2] << 16) |
                                       (bytes[3] << 24);
    EXPECT_NE(cached_value, 0x2200u);
}

TEST(Hier, WriteBackExposesCacheFaultToKernelReads)
{
    MemHierarchy hier(smallHier(HierMode::WriteBack), filledMemory());
    StatSet stats;
    std::uint8_t bytes[4];
    hier.read(0x2200, 4, bytes, stats);
    for (std::uint32_t line = 0; line < hier.l1d().numLines(); ++line)
        hier.l1d().dataArray().flipBit(line, 0);
    std::uint8_t kernel[4] = {};
    hier.kernelRead(0x2200, 4, kernel, stats);
    const std::uint32_t value = kernel[0] | (kernel[1] << 8) |
                                (kernel[2] << 16) | (kernel[3] << 24);
    EXPECT_NE(value, 0x2200u); // the kernel sees the fault
}

TEST(Hier, DirtyFaultEscapesViaEvictionInShadowMode)
{
    MemHierarchy hier(smallHier(HierMode::Shadow), filledMemory());
    StatSet stats;
    const std::uint8_t data[4] = {0x11, 0x22, 0x33, 0x44};
    hier.write(0x2300, 4, data, stats); // dirty line
    // Fault the dirty line's data.
    for (std::uint32_t line = 0; line < hier.l1d().numLines(); ++line) {
        if (hier.l1d().lineValid(line))
            hier.l1d().dataArray().forceBit(line, 0, true);
    }
    // Evict it by filling the set with conflicting lines
    // (2KB 2-way: same-set stride is 1KB).
    std::uint8_t sink[4];
    hier.read(0x2300 + 1024, 4, sink, stats);
    hier.read(0x2300 + 2048, 4, sink, stats);
    hier.read(0x2300 + 3072, 4, sink, stats);
    // The fault has been written back over the authoritative copy.
    std::uint8_t direct[4] = {};
    ASSERT_TRUE(hier.directRead(0x2300, 4, direct));
    EXPECT_EQ(direct[0] & 1, 1);
}

TEST(Hier, SpanningAccessCrossesLines)
{
    MemHierarchy hier(smallHier(HierMode::WriteBack), filledMemory());
    StatSet stats;
    // 4-byte read straddling a 64B line boundary.
    std::uint8_t bytes[4];
    const auto access = hier.read(0x2000 + 62, 4, bytes, stats);
    EXPECT_TRUE(access.ok);
    EXPECT_GE(stats.get("l1d.read_accesses"), 2u);
}

TEST(Hier, UnmappedPhysicalAccessFails)
{
    MemHierarchy hier(smallHier(HierMode::WriteBack), filledMemory());
    StatSet stats;
    std::uint8_t bytes[4];
    EXPECT_FALSE(hier.read(0xfffffff0, 4, bytes, stats).ok);
    EXPECT_FALSE(hier.directRead(0xfffffff0, 4, bytes));
}

TEST(Hier, OriginalMarssModeBypassesDataArrays)
{
    HierConfig cfg = smallHier(HierMode::Shadow);
    cfg.modelDataArrays = false;
    MemHierarchy hier(cfg, filledMemory());
    StatSet stats;
    std::uint8_t bytes[4];
    hier.read(0x2400, 4, bytes, stats);
    // Fault the arrays: reads must be unaffected (data lives in
    // memory only, as in stock MARSS).
    for (std::uint32_t line = 0; line < hier.l1d().numLines(); ++line)
        hier.l1d().dataArray().forceBit(line, 0, true);
    hier.read(0x2400, 4, bytes, stats);
    const std::uint32_t value = bytes[0] | (bytes[1] << 8) |
                                (bytes[2] << 16) | (bytes[3] << 24);
    EXPECT_EQ(value, 0x2400u);
}

} // namespace

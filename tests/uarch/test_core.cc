/**
 * @file
 * Integration tests for the out-of-order cores: architectural
 * equivalence with the functional interpreter, Table II policy
 * differences, checkpoint copyability, fault behaviour through the
 * injection interface, and robustness under random corruption.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "isa/codegen.hh"
#include "isa/interp.hh"
#include "prog/benchmark.hh"
#include "uarch/core_config.hh"
#include "uarch/ooo_core.hh"

namespace
{

using namespace dfi;
using namespace dfi::uarch;

syskit::RunRecord
runToEnd(OooCore &core, std::uint64_t limit = 30'000'000)
{
    while (core.tick()) {
        if (core.cycle() > limit)
            break;
    }
    if (!core.finished())
        core.forceTimeout();
    return core.record();
}

class CoreVsInterp
    : public ::testing::TestWithParam<std::tuple<std::string,
                                                 std::string>>
{
};

TEST_P(CoreVsInterp, ArchitecturallyEquivalent)
{
    const auto &[bench_name, core_name] = GetParam();
    const auto bench = prog::buildBenchmark(bench_name);
    CoreConfig cfg = coreConfigByName(core_name);
    scaleCaches(cfg, 0.0625);
    const auto image = ir::compileModule(bench.module, cfg.isa);

    isa::Interpreter interp(image);
    const auto ref = interp.run();

    OooCore core(cfg, image);
    const auto record = runToEnd(core);

    ASSERT_EQ(record.term, syskit::Termination::Exited)
        << record.detail;
    EXPECT_EQ(record.output, ref.output);
    EXPECT_EQ(record.exitCode, ref.exitCode);
    EXPECT_EQ(record.instructions, ref.instructions);
}

INSTANTIATE_TEST_SUITE_P(
    Sampled, CoreVsInterp,
    ::testing::Values(
        std::tuple{"micro", "marss-x86"},
        std::tuple{"micro", "gem5-x86"},
        std::tuple{"micro", "gem5-arm"},
        std::tuple{"sha", "marss-x86"},
        std::tuple{"fft", "gem5-arm"},
        std::tuple{"qsort", "gem5-x86"}),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               [](std::string s) {
                   for (auto &ch : s)
                       if (ch == '-')
                           ch = '_';
                   return s;
               }(std::get<1>(info.param));
    });

TEST(Core, CheckpointCopyContinuesIdentically)
{
    const auto bench = prog::buildBenchmark("micro");
    CoreConfig cfg = gem5X86Config();
    scaleCaches(cfg, 0.0625);
    const auto image = ir::compileModule(bench.module, cfg.isa);

    OooCore original(cfg, image);
    for (int i = 0; i < 700; ++i)
        original.tick();
    OooCore copy = original; // checkpoint

    const auto a = runToEnd(original);
    const auto b = runToEnd(copy);
    EXPECT_EQ(a.term, b.term);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.output, b.output);
}

TEST(Core, MarssIssuesMoreLoadsThanGem5)
{
    // Remark 3: aggressive load issue + replays means issued loads
    // exceed committed loads on the MARSS model.
    const auto bench = prog::buildBenchmark("qsort");
    CoreConfig marss = marssX86Config();
    CoreConfig gem5 = gem5X86Config();
    scaleCaches(marss, 0.0625);
    scaleCaches(gem5, 0.0625);
    const auto image = ir::compileModule(bench.module,
                                         isa::IsaKind::X86);

    OooCore m(marss, image), g(gem5, image);
    runToEnd(m);
    runToEnd(g);

    const double m_ratio =
        m.stats().ratio("issued_loads", "committed_loads");
    const double g_ratio =
        g.stats().ratio("issued_loads", "committed_loads");
    EXPECT_GT(m_ratio, g_ratio);
    EXPECT_GE(g_ratio, 0.99);
}

TEST(Core, ArrayResolverCoversStructures)
{
    const auto bench = prog::buildBenchmark("micro");
    const auto image =
        ir::compileModule(bench.module, isa::IsaKind::X86);
    OooCore marss(marssX86Config(), image);
    OooCore gem5(gem5X86Config(), image);

    // Unified vs split queues (Remark 1 plumbing).
    EXPECT_NE(marss.arrayFor(StructureId::LoadStoreQueue), nullptr);
    EXPECT_EQ(marss.arrayFor(StructureId::LoadQueue), nullptr);
    EXPECT_EQ(gem5.arrayFor(StructureId::LoadStoreQueue), nullptr);
    EXPECT_NE(gem5.arrayFor(StructureId::StoreQueue), nullptr);
    // MaFIN-only prefetchers.
    EXPECT_NE(marss.arrayFor(StructureId::PrefetchL1D), nullptr);
    EXPECT_EQ(gem5.arrayFor(StructureId::PrefetchL1D), nullptr);
    // Split vs unified BTB.
    EXPECT_NE(marss.arrayFor(StructureId::BtbIndirect), nullptr);
    EXPECT_EQ(gem5.arrayFor(StructureId::BtbIndirect), nullptr);
}

TEST(Core, EntryLiveTracksRegisterAllocation)
{
    const auto bench = prog::buildBenchmark("micro");
    const auto image =
        ir::compileModule(bench.module, isa::IsaKind::X86);
    OooCore core(marssX86Config(), image);
    // Architectural registers are mapped from reset.
    EXPECT_TRUE(core.entryLive(StructureId::IntRegFile, 0));
    // The last physical register starts free.
    EXPECT_FALSE(core.entryLive(StructureId::IntRegFile, 255));
    // FP registers never allocate on integer workloads.
    EXPECT_FALSE(core.entryLive(StructureId::FpRegFile, 0));
}

TEST(Core, SurvivesRandomRegisterFileCorruption)
{
    // Property: arbitrary corruption of the physical register file
    // must never escape the outcome taxonomy (no host crash, no
    // hang).
    Rng rng(777);
    const auto bench = prog::buildBenchmark("micro");
    for (const char *name : {"marss-x86", "gem5-x86"}) {
        CoreConfig cfg = coreConfigByName(name);
        scaleCaches(cfg, 0.0625);
        const auto image = ir::compileModule(bench.module, cfg.isa);
        for (int trial = 0; trial < 12; ++trial) {
            OooCore core(cfg, image);
            const std::uint64_t inject_at = 50 + rng.nextBounded(2000);
            while (core.tick() && core.cycle() < inject_at) {}
            auto *rf = core.arrayFor(StructureId::IntRegFile);
            for (int f = 0; f < 8; ++f) {
                rf->flipBit(rng.nextBounded(rf->numEntries()),
                            rng.nextBounded(rf->bitsPerEntry()));
            }
            const auto record = runToEnd(core, 200'000);
            (void)record; // any taxonomy outcome is acceptable
        }
    }
}

TEST(Core, SurvivesRandomIqCorruption)
{
    Rng rng(778);
    const auto bench = prog::buildBenchmark("micro");
    CoreConfig cfg = marssX86Config();
    scaleCaches(cfg, 0.0625);
    const auto image = ir::compileModule(bench.module, cfg.isa);
    int asserts = 0;
    for (int trial = 0; trial < 20; ++trial) {
        OooCore core(cfg, image);
        const std::uint64_t inject_at = 100 + rng.nextBounded(2000);
        while (core.tick() && core.cycle() < inject_at) {}
        auto *iq = core.arrayFor(StructureId::IssueQueue);
        for (int f = 0; f < 4; ++f) {
            iq->flipBit(rng.nextBounded(iq->numEntries()),
                        rng.nextBounded(iq->bitsPerEntry()));
        }
        const auto record = runToEnd(core, 200'000);
        asserts +=
            record.term == syskit::Termination::SimAssert ? 1 : 0;
    }
    // The dense-assert MARSS model should convert at least some IQ
    // corruption into Assert outcomes.
    EXPECT_GT(asserts, 0);
}

TEST(Core, L1IDataFaultCanChangeOutcome)
{
    const auto bench = prog::buildBenchmark("micro");
    CoreConfig cfg = gem5X86Config();
    scaleCaches(cfg, 0.0625);
    const auto image = ir::compileModule(bench.module, cfg.isa);

    int non_masked = 0;
    Rng rng(779);
    for (int trial = 0; trial < 25; ++trial) {
        OooCore core(cfg, image);
        while (core.tick() && core.cycle() < 200) {}
        auto *l1i = core.arrayFor(StructureId::L1IData);
        // Flip bits only in valid lines to hit live instructions.
        for (int tries = 0; tries < 200; ++tries) {
            const auto entry = rng.nextBounded(l1i->numEntries());
            if (core.entryLive(StructureId::L1IData,
                               static_cast<std::uint32_t>(entry))) {
                l1i->flipBit(entry,
                             rng.nextBounded(l1i->bitsPerEntry()));
                break;
            }
        }
        const auto record = runToEnd(core, 200'000);
        const auto bench_ref = prog::buildBenchmark("micro");
        if (record.term != syskit::Termination::Exited ||
            record.output != bench_ref.expectedOutput) {
            ++non_masked;
        }
    }
    EXPECT_GT(non_masked, 0);
}

TEST(Core, MismatchedIsaIsFatal)
{
    const auto bench = prog::buildBenchmark("micro");
    const auto arm_image =
        ir::compileModule(bench.module, isa::IsaKind::Arm);
    EXPECT_THROW(OooCore(marssX86Config(), arm_image),
                 dfi::FatalError);
}

} // namespace

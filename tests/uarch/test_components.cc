/**
 * @file
 * Unit tests for TLB, branch predictor, BTB, RAS, prefetcher and the
 * invariant-checkpoint machinery.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "uarch/branch.hh"
#include "uarch/prefetch.hh"
#include "uarch/sim_error.hh"
#include "uarch/tlb.hh"

namespace
{

using namespace dfi;
using namespace dfi::uarch;

// --- TLB -------------------------------------------------------------------

TEST(Tlb, MissFillsIdentityMapping)
{
    Tlb tlb("t", 64, 20);
    StatSet stats;
    const auto first = tlb.translate(0x12345678, stats);
    EXPECT_EQ(first.pa, 0x12345678u);
    EXPECT_EQ(first.latency, 20u);
    const auto second = tlb.translate(0x12345000, stats);
    EXPECT_EQ(second.pa, 0x12345000u);
    EXPECT_EQ(second.latency, 0u); // hit, same page
    EXPECT_EQ(stats.get("t.misses"), 1u);
    EXPECT_EQ(stats.get("t.hits"), 1u);
}

TEST(Tlb, PfnFaultRedirectsTranslation)
{
    Tlb tlb("t", 64, 20);
    StatSet stats;
    (void)tlb.translate(0x00002000, stats); // fill entry for vpn 2
    // Flip bit 0 of the pfn field (bit offset 1 + 20).
    tlb.array().flipBit(2 % 64, 21);
    const auto redirected = tlb.translate(0x00002010, stats);
    EXPECT_EQ(redirected.pa, 0x00003010u); // wrong physical page
}

TEST(Tlb, TagFaultForcesMiss)
{
    Tlb tlb("t", 64, 20);
    StatSet stats;
    (void)tlb.translate(0x00005000, stats);
    tlb.array().flipBit(5, 1); // tag bit
    const auto again = tlb.translate(0x00005000, stats);
    EXPECT_EQ(again.latency, 20u); // refill walk
    EXPECT_EQ(again.pa, 0x00005000u);
}

TEST(Tlb, EntryLiveTracksValidBit)
{
    Tlb tlb("t", 64, 20);
    StatSet stats;
    EXPECT_FALSE(tlb.entryLive(7));
    (void)tlb.translate(7 * 0x1000, stats);
    EXPECT_TRUE(tlb.entryLive(7));
}

// --- tournament predictor ----------------------------------------------------

TEST(Tournament, LearnsAlwaysTaken)
{
    TournamentPredictor pred(ChooserIndex::ByHistory);
    const std::uint32_t pc = 0x1040;
    for (int i = 0; i < 64; ++i)
        pred.update(pc, true);
    EXPECT_TRUE(pred.predict(pc));
}

TEST(Tournament, LearnsAlternatingViaLocalHistory)
{
    TournamentPredictor pred(ChooserIndex::ByAddress);
    const std::uint32_t pc = 0x2080;
    bool taken = false;
    for (int i = 0; i < 400; ++i) {
        taken = !taken;
        pred.update(pc, taken);
    }
    // After training, the local 10-bit history should perfectly
    // predict a strict alternation.
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        taken = !taken;
        if (pred.predict(pc) == taken)
            ++correct;
        pred.update(pc, taken);
    }
    EXPECT_GT(correct, 90);
}

TEST(Tournament, IndexSchemesDiverge)
{
    // The same training stream must leave the two schemes in
    // different states for at least some keys (the Remark 6 source).
    TournamentPredictor by_addr(ChooserIndex::ByAddress);
    TournamentPredictor by_hist(ChooserIndex::ByHistory);
    std::uint32_t pcs[] = {0x1000, 0x100c, 0x1024, 0x2048};
    for (int round = 0; round < 200; ++round) {
        for (std::uint32_t pc : pcs) {
            const bool taken = (pc ^ round) & 4;
            by_addr.update(pc, taken);
            by_hist.update(pc, taken);
        }
    }
    int differs = 0;
    for (std::uint32_t pc : pcs)
        differs += by_addr.predict(pc) != by_hist.predict(pc);
    EXPECT_GT(differs, 0);
}

// --- BTB ---------------------------------------------------------------------

TEST(Btb, StoresAndReturnsTargets)
{
    Btb btb(BtbConfig{"btb", 64, 4});
    StatSet stats;
    EXPECT_EQ(btb.lookup(0x1000, stats), 0u);
    btb.update(0x1000, 0x2000);
    EXPECT_EQ(btb.lookup(0x1000, stats), 0x2000u);
    btb.update(0x1000, 0x3000);
    EXPECT_EQ(btb.lookup(0x1000, stats), 0x3000u);
}

TEST(Btb, DirectMappedConflicts)
{
    Btb btb(BtbConfig{"btb", 16, 1});
    StatSet stats;
    btb.update(0x1000, 0xaaaa);
    // 16 sets, pc>>1 indexing: +32 bytes aliases to the same set.
    btb.update(0x1000 + 32, 0xbbbb);
    EXPECT_EQ(btb.lookup(0x1000, stats), 0u); // evicted
    EXPECT_EQ(btb.lookup(0x1000 + 32, stats), 0xbbbbu);
}

TEST(Btb, TargetFaultRedirects)
{
    Btb btb(BtbConfig{"btb", 64, 4});
    StatSet stats;
    btb.update(0x4000, 0x5000);
    // Flip a target bit: [valid:1][tag:16][target:32].
    const std::uint32_t set = (0x4000 >> 1) % 16;
    for (std::uint32_t way = 0; way < 4; ++way) {
        const std::uint32_t entry = set * 4 + way;
        if (btb.entryLive(entry))
            btb.array().flipBit(entry, 1 + 16 + 4);
    }
    EXPECT_EQ(btb.lookup(0x4000, stats), 0x5010u);
}

// --- RAS ---------------------------------------------------------------------

TEST(Ras, PushPopLifo)
{
    Ras ras("ras", 4);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_EQ(ras.pop(), 0u); // empty
}

TEST(Ras, OverflowWrapsLikeHardware)
{
    Ras ras("ras", 2);
    ras.push(0x1);
    ras.push(0x2);
    ras.push(0x3); // overwrites the oldest
    EXPECT_EQ(ras.pop(), 0x3u);
    EXPECT_EQ(ras.pop(), 0x2u);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, EntryFaultCorruptsReturnTarget)
{
    Ras ras("ras", 8);
    ras.push(0x4000);
    ras.array().flipBit(0, 3);
    EXPECT_EQ(ras.pop(), 0x4008u);
}

// --- prefetcher -----------------------------------------------------------------

TEST(Prefetcher, NextLine)
{
    NextLinePrefetcher pf("pf", 64);
    EXPECT_EQ(pf.onMiss(0x1000), 0x1040u);
    EXPECT_EQ(pf.onMiss(0x2000), 0x2040u);
}

TEST(Prefetcher, StateFaultRedirectsPrefetch)
{
    NextLinePrefetcher pf("pf", 64);
    (void)pf.onMiss(0x1000);
    pf.array().flipBit(0, 12);
    // The recorded address is re-read through the faulted register on
    // the next miss... the next onMiss overwrites it first, so fault
    // the post-write value via a direct re-read instead:
    // flip, then observe the redirected prefetch target.
    pf.array().flipBit(0, 13);
    // A fresh miss overwrites state; the fault window is between
    // write and read inside one onMiss call, which armWatch-style
    // campaigns exercise; here just check no crash and sane output.
    EXPECT_NE(pf.onMiss(0x3000), 0u);
}

// --- invariant checkpoints ----------------------------------------------------

TEST(Invariants, DensePolicyAsserts)
{
    EXPECT_THROW(checkInvariant(false, AssertPolicy::Dense,
                                CheckSeverity::Soft, "soft"),
                 SimAssertError);
    EXPECT_THROW(checkInvariant(false, AssertPolicy::Dense,
                                CheckSeverity::Hard, "hard"),
                 SimAssertError);
}

TEST(Invariants, SparsePolicyCrashesOnlyOnHard)
{
    EXPECT_NO_THROW(checkInvariant(false, AssertPolicy::Sparse,
                                   CheckSeverity::Soft, "soft"));
    EXPECT_THROW(checkInvariant(false, AssertPolicy::Sparse,
                                CheckSeverity::Hard, "hard"),
                 SimCrashError);
}

TEST(Invariants, PassingChecksAreSilent)
{
    EXPECT_NO_THROW(checkInvariant(true, AssertPolicy::Dense,
                                   CheckSeverity::Hard, "ok"));
    EXPECT_NO_THROW(checkInvariant(true, AssertPolicy::Sparse,
                                   CheckSeverity::Soft, "ok"));
}

} // namespace

/**
 * @file
 * Directed tests for the out-of-order pipeline mechanisms that carry
 * the paper's divergence analysis: store-to-load forwarding,
 * aggressive-issue memory-order violations (MARSS replays),
 * conservative load issue (gem5), branch misprediction recovery and
 * functional-unit contention.
 */

#include <gtest/gtest.h>

#include "isa/codegen.hh"
#include "isa/interp.hh"
#include "isa/ir.hh"
#include "uarch/core_config.hh"
#include "uarch/ooo_core.hh"

namespace
{

using namespace dfi;
using namespace dfi::ir;
using namespace dfi::uarch;
using isa::AluFunc;
using isa::Cond;

syskit::RunRecord
run(OooCore &core)
{
    while (core.tick()) {
        if (core.cycle() > 10'000'000)
            break;
    }
    if (!core.finished())
        core.forceTimeout();
    return core.record();
}

isa::Image
build(const std::function<void(ModuleBuilder &, FunctionBuilder &)> &body)
{
    ModuleBuilder mb;
    auto f = mb.beginFunction("main", 0);
    body(mb, f);
    mb.endFunction(f);
    return compileModule(mb.module(), isa::IsaKind::X86);
}

TEST(Pipeline, StoreToLoadForwarding)
{
    // A tight store/load-same-address loop must exercise the
    // forwarding path and still compute correctly.
    const auto image = build([](ModuleBuilder &mb, FunctionBuilder &f) {
        const int cell = mb.addBss("cell", 8);
        VReg base = f.globalAddr(cell);
        VReg acc = f.var(0);
        VReg i = f.var(0);
        const int head = f.newBlock();
        const int body = f.newBlock();
        const int exit = f.newBlock();
        f.br(head);
        f.setBlock(head);
        f.condBrImm(Cond::Slt, i, 200, body, exit);
        f.setBlock(body);
        f.store(i, base, 0);
        VReg v = f.load(base, 0); // forwarded from the store queue
        f.binTo(acc, AluFunc::Add, acc, v);
        f.binImmTo(i, AluFunc::Add, i, 1);
        f.br(head);
        f.setBlock(exit);
        f.ret(f.binImm(AluFunc::And, acc, 0xff));
    });

    for (auto cfg : {marssX86Config(), gem5X86Config()}) {
        scaleCaches(cfg, 0.0625);
        OooCore core(cfg, image);
        const auto record = run(core);
        ASSERT_EQ(record.term, syskit::Termination::Exited)
            << cfg.name << ": " << record.detail;
        // sum 0..199 = 19900; & 0xff = 188
        EXPECT_EQ(record.exitCode, 19900u & 0xff) << cfg.name;
        EXPECT_GT(core.stats().get("store_to_load_forwards"), 0u)
            << cfg.name;
    }
}

TEST(Pipeline, AggressiveIssueCausesViolationsOnlyOnMarss)
{
    // A store whose address depends on a long-latency division,
    // followed by a load of the same location: the MARSS model issues
    // the load early and must replay; the gem5 model waits.
    const auto image = build([](ModuleBuilder &mb, FunctionBuilder &f) {
        const int arr = mb.addBss("arr", 256);
        VReg acc = f.var(0);
        VReg i = f.var(0);
        const int head = f.newBlock();
        const int body = f.newBlock();
        const int exit = f.newBlock();
        f.br(head);
        f.setBlock(head);
        f.condBrImm(Cond::Slt, i, 150, body, exit);
        f.setBlock(body);
        {
            VReg base = f.globalAddr(arr);
            // slow_index = ((i * 7 + 13) / 7 - 1) & 63  (divide = slow)
            VReg t = f.binImm(AluFunc::Mul, i, 7);
            f.binImmTo(t, AluFunc::Add, t, 13);
            f.binImmTo(t, AluFunc::DivU, t, 7);
            f.binImmTo(t, AluFunc::Sub, t, 1);
            f.binImmTo(t, AluFunc::And, t, 63);
            f.binImmTo(t, AluFunc::Shl, t, 2);
            VReg slow_addr = f.add(base, t);
            f.store(i, slow_addr, 0);
            // Immediately load the same cell back.
            VReg v = f.load(slow_addr, 0);
            f.binTo(acc, AluFunc::Add, acc, v);
        }
        f.binImmTo(i, AluFunc::Add, i, 1);
        f.br(head);
        f.setBlock(exit);
        f.ret(f.binImm(AluFunc::And, acc, 0xff));
    });

    CoreConfig marss = marssX86Config();
    CoreConfig gem5 = gem5X86Config();
    scaleCaches(marss, 0.0625);
    scaleCaches(gem5, 0.0625);

    OooCore m(marss, image), g(gem5, image);
    const auto rm = run(m);
    const auto rg = run(g);
    ASSERT_EQ(rm.term, syskit::Termination::Exited) << rm.detail;
    ASSERT_EQ(rg.term, syskit::Termination::Exited) << rg.detail;
    EXPECT_EQ(rm.exitCode, rg.exitCode); // same architecture result
    EXPECT_EQ(g.stats().get("memory_order_violations"), 0u);
    // The aggressive machine replays at least sometimes (either via
    // a violation flush or an extra issued load).
    const bool replayed =
        m.stats().get("memory_order_violations") > 0 ||
        m.stats().get("issued_loads") >
            m.stats().get("committed_loads");
    EXPECT_TRUE(replayed);
}

TEST(Pipeline, MispredictionRecoveryIsExact)
{
    // Data-dependent branches on a pseudo-random sequence: plenty of
    // mispredictions, and the result must still match the functional
    // interpreter exactly.
    const auto image = build([](ModuleBuilder &mb, FunctionBuilder &f) {
        (void)mb;
        VReg x = f.var(12345);
        VReg acc = f.var(0);
        VReg i = f.var(0);
        const int head = f.newBlock();
        const int body = f.newBlock();
        const int odd = f.newBlock();
        const int even = f.newBlock();
        const int next = f.newBlock();
        const int exit = f.newBlock();
        f.br(head);
        f.setBlock(head);
        f.condBrImm(Cond::Slt, i, 400, body, exit);
        f.setBlock(body);
        // x = x * 1103515245 + 12345 (LCG)
        f.binImmTo(x, AluFunc::Mul, x, 1103515245);
        f.binImmTo(x, AluFunc::Add, x, 12345);
        VReg bit = f.binImm(AluFunc::ShrU, x, 16);
        f.binImmTo(bit, AluFunc::And, bit, 1);
        f.condBrImm(Cond::Eq, bit, 1, odd, even);
        f.setBlock(odd);
        f.binImmTo(acc, AluFunc::Add, acc, 3);
        f.br(next);
        f.setBlock(even);
        f.binImmTo(acc, AluFunc::Xor, acc, 0x55);
        f.br(next);
        f.setBlock(next);
        f.binImmTo(i, AluFunc::Add, i, 1);
        f.br(head);
        f.setBlock(exit);
        f.ret(f.binImm(AluFunc::And, acc, 0xff));
    });

    isa::Interpreter interp(image);
    const auto ref = interp.run();
    ASSERT_EQ(ref.term, syskit::Termination::Exited);

    for (auto cfg : {marssX86Config(), gem5X86Config()}) {
        scaleCaches(cfg, 0.0625);
        OooCore core(cfg, image);
        const auto record = run(core);
        ASSERT_EQ(record.term, syskit::Termination::Exited)
            << cfg.name;
        EXPECT_EQ(record.exitCode, ref.exitCode) << cfg.name;
        EXPECT_GT(core.stats().get("branch_mispredictions"), 10u)
            << cfg.name;
        EXPECT_GT(core.stats().get("pipeline_flushes"), 10u)
            << cfg.name;
    }
}

TEST(Pipeline, FunctionalUnitContentionShowsInIpc)
{
    // Independent ALU chains: 6 int ALUs (gem5-x86) must beat
    // 2 int ALUs (gem5-arm width aside, use marss which has 2).
    const auto image = build([](ModuleBuilder &mb, FunctionBuilder &f) {
        (void)mb;
        VReg a = f.var(1), b = f.var(2), c = f.var(3), d = f.var(4);
        VReg i = f.var(0);
        const int head = f.newBlock();
        const int body = f.newBlock();
        const int exit = f.newBlock();
        f.br(head);
        f.setBlock(head);
        f.condBrImm(Cond::Slt, i, 300, body, exit);
        f.setBlock(body);
        for (int round = 0; round < 3; ++round) {
            f.binImmTo(a, AluFunc::Add, a, 1);
            f.binImmTo(b, AluFunc::Add, b, 2);
            f.binImmTo(c, AluFunc::Add, c, 3);
            f.binImmTo(d, AluFunc::Add, d, 4);
        }
        f.binImmTo(i, AluFunc::Add, i, 1);
        f.br(head);
        f.setBlock(exit);
        VReg s = f.add(a, b);
        f.binTo(s, AluFunc::Add, s, c);
        f.binTo(s, AluFunc::Add, s, d);
        f.ret(f.binImm(AluFunc::And, s, 0xff));
    });

    CoreConfig narrow = marssX86Config(); // 2 int ALUs
    CoreConfig wide = gem5X86Config();    // 6 int ALUs
    scaleCaches(narrow, 0.0625);
    scaleCaches(wide, 0.0625);
    OooCore n(narrow, image), w(wide, image);
    const auto rn = run(n);
    const auto rw = run(w);
    ASSERT_EQ(rn.term, syskit::Termination::Exited);
    ASSERT_EQ(rw.term, syskit::Termination::Exited);
    EXPECT_EQ(rn.exitCode, rw.exitCode);
    EXPECT_LT(rw.cycles, rn.cycles); // more ALUs, fewer cycles
}

TEST(Pipeline, SyscallSerializesCorrectly)
{
    // The syscall return value must be visible to younger code.
    const auto image = build([](ModuleBuilder &mb, FunctionBuilder &f) {
        const int buf = mb.addGlobal(
            "buf", std::vector<std::uint8_t>{'h', 'i', '!', '\n'}, 4);
        VReg addr = f.globalAddr(buf);
        VReg len = f.movImm(4);
        VReg written = f.syscall(syskit::kSysWrite, addr, len);
        // Use the result arithmetically right away.
        f.ret(f.binImm(AluFunc::Mul, written, 11)); // 44
    });
    for (auto cfg : {marssX86Config(), gem5X86Config()}) {
        scaleCaches(cfg, 0.0625);
        OooCore core(cfg, image);
        const auto record = run(core);
        ASSERT_EQ(record.term, syskit::Termination::Exited)
            << cfg.name;
        EXPECT_EQ(record.exitCode, 44u) << cfg.name;
        EXPECT_EQ(record.output.size(), 4u);
    }
}

} // namespace

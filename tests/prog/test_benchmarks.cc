/**
 * @file
 * Benchmark-suite validation: every workload, compiled for both ISAs,
 * must run to completion on the functional interpreter and produce
 * exactly the host-reference output.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/codegen.hh"
#include "isa/interp.hh"
#include "prog/benchmark.hh"

namespace
{

using namespace dfi;

class BenchmarkRun
    : public ::testing::TestWithParam<
          std::tuple<std::string, isa::IsaKind>>
{
};

TEST_P(BenchmarkRun, MatchesReferenceOutput)
{
    const auto &[name, kind] = GetParam();
    const prog::Benchmark bench = prog::buildBenchmark(name);
    const isa::Image image = ir::compileModule(bench.module, kind);
    isa::Interpreter interp(image);
    const auto record = interp.run(50'000'000);

    ASSERT_EQ(record.term, syskit::Termination::Exited)
        << record.detail;
    EXPECT_EQ(record.exitCode, bench.expectedExit);
    EXPECT_TRUE(record.dueEvents.empty())
        << "fault-free run raised " << record.dueEvents.size()
        << " exception indications (first: "
        << record.dueEvents.front().kind << ")";
    ASSERT_EQ(record.output.size(), bench.expectedOutput.size());
    EXPECT_EQ(record.output, bench.expectedOutput);
    // Sanity: the workload does a nontrivial amount of work.
    EXPECT_GT(record.instructions, 4000u) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkRun,
    ::testing::Combine(::testing::ValuesIn(prog::benchmarkNames()),
                       ::testing::Values(isa::IsaKind::X86,
                                         isa::IsaKind::Arm)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               isa::isaName(std::get<1>(info.param));
    });

TEST(BenchmarkSuite, TenNames)
{
    EXPECT_EQ(prog::benchmarkNames().size(), 10u);
}

TEST(BenchmarkSuite, UnknownNameIsFatal)
{
    EXPECT_THROW(prog::buildBenchmark("bogus"), dfi::FatalError);
    EXPECT_THROW(prog::buildBenchmark("sha", 0), dfi::FatalError);
}

TEST(BenchmarkSuite, ScaleGrowsWork)
{
    const auto small = prog::buildBenchmark("sha", 1);
    const auto big = prog::buildBenchmark("sha", 4);
    const auto img_small =
        ir::compileModule(small.module, isa::IsaKind::X86);
    const auto img_big = ir::compileModule(big.module, isa::IsaKind::X86);
    isa::Interpreter is(img_small), ib(img_big);
    const auto rs = is.run(), rb = ib.run();
    ASSERT_EQ(rs.term, syskit::Termination::Exited);
    ASSERT_EQ(rb.term, syskit::Termination::Exited);
    EXPECT_GT(rb.instructions, 2 * rs.instructions);
}

TEST(BenchmarkSuite, IsaMixesDiffer)
{
    // The ARM build of the same workload executes more instructions
    // (load/store ISA, MOVW/MOVT pairs) and has larger code.
    for (const auto &name : prog::benchmarkNames()) {
        const auto bench = prog::buildBenchmark(name);
        const auto x86 =
            ir::compileModule(bench.module, isa::IsaKind::X86);
        const auto arm =
            ir::compileModule(bench.module, isa::IsaKind::Arm);
        EXPECT_LT(x86.code.size(), arm.code.size()) << name;
    }
}

} // namespace

/**
 * @file
 * End-to-end tests: build IR, compile for both ISAs, run on the
 * functional interpreter, check architectural results agree.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/logging.hh"
#include "isa/codegen.hh"
#include "isa/interp.hh"
#include "isa/ir.hh"
#include "syskit/os.hh"

namespace
{

using namespace dfi;
using namespace dfi::ir;
using isa::Cond;
using isa::AluFunc;
using isa::MemWidth;

std::string
outputString(const syskit::RunRecord &record)
{
    return std::string(record.output.begin(), record.output.end());
}

/** Run a module on both ISAs and require identical exit + output. */
std::pair<syskit::RunRecord, syskit::RunRecord>
runBoth(const Module &module)
{
    isa::Image x86 = compileModule(module, isa::IsaKind::X86);
    isa::Image arm = compileModule(module, isa::IsaKind::Arm);
    isa::Interpreter ix(x86), ia(arm);
    auto rx = ix.run();
    auto ra = ia.run();
    EXPECT_EQ(rx.term, syskit::Termination::Exited) << rx.detail;
    EXPECT_EQ(ra.term, syskit::Termination::Exited) << ra.detail;
    EXPECT_EQ(rx.exitCode, ra.exitCode);
    EXPECT_EQ(rx.output, ra.output);
    return {std::move(rx), std::move(ra)};
}

TEST(CompileRun, ReturnConstant)
{
    ModuleBuilder mb;
    auto f = mb.beginFunction("main", 0);
    f.ret(f.movImm(42));
    mb.endFunction(f);
    const Module module = mb.take();
    auto [rx, ra] = runBoth(module);
    EXPECT_EQ(rx.exitCode, 42u);
}

TEST(CompileRun, ArithmeticChain)
{
    ModuleBuilder mb;
    auto f = mb.beginFunction("main", 0);
    VReg a = f.movImm(1000);
    VReg b = f.movImm(37);
    VReg c = f.bin(AluFunc::Mul, a, b);        // 37000
    VReg d = f.binImm(AluFunc::DivU, c, 7);    // 5285
    VReg e = f.binImm(AluFunc::RemU, d, 100);  // 85
    VReg g = f.binImm(AluFunc::Xor, e, 0xff);  // 170
    f.ret(g);
    mb.endFunction(f);
    auto [rx, ra] = runBoth(mb.module());
    EXPECT_EQ(rx.exitCode, 170u);
}

TEST(CompileRun, LoopSum)
{
    // sum of 1..100 = 5050; exit code = 5050 & 0xff = 186
    ModuleBuilder mb;
    auto f = mb.beginFunction("main", 0);
    VReg sum = f.movImm(0);
    VReg i = f.movImm(1);
    // Loop-carried values must be stored in memory or re-used via the
    // same vregs; the IR has no phi nodes, so use a bss cell.
    ModuleBuilder &m2 = mb;
    const int cell = m2.addBss("cell", 8);
    VReg base = f.globalAddr(cell);
    f.store(sum, base, 0);
    f.store(i, base, 4);

    const int loop = f.newBlock();
    const int done = f.newBlock();
    f.br(loop);

    f.setBlock(loop);
    VReg base2 = f.globalAddr(cell);
    VReg s = f.load(base2, 0);
    VReg iv = f.load(base2, 4);
    VReg s2 = f.add(s, iv);
    VReg i2 = f.addImm(iv, 1);
    f.store(s2, base2, 0);
    f.store(i2, base2, 4);
    f.condBrImm(Cond::Sle, i2, 100, loop, done);

    f.setBlock(done);
    VReg base3 = f.globalAddr(cell);
    VReg result = f.load(base3, 0);
    f.ret(f.binImm(AluFunc::And, result, 0xff));
    mb.endFunction(f);

    auto [rx, ra] = runBoth(mb.module());
    EXPECT_EQ(rx.exitCode, 5050u & 0xff);
}

TEST(CompileRun, CallsAndRecursion)
{
    ModuleBuilder mb;
    const int fact = mb.declareFunction("fact", 1);

    {
        auto f = mb.beginFunction(fact);
        const int base_case = f.newBlock();
        const int recurse = f.newBlock();
        f.condBrImm(Cond::Sle, f.param(0), 1, base_case, recurse);
        f.setBlock(base_case);
        f.ret(f.movImm(1));
        f.setBlock(recurse);
        VReg n1 = f.binImm(AluFunc::Sub, f.param(0), 1);
        VReg sub = f.call(fact, {n1});
        f.ret(f.bin(AluFunc::Mul, f.param(0), sub));
        mb.endFunction(f);
    }
    {
        auto f = mb.beginFunction("main", 0);
        VReg r = f.call(fact, {f.movImm(6)}); // 720
        f.ret(f.binImm(AluFunc::And, r, 0xff)); // 208
        mb.endFunction(f);
    }
    auto [rx, ra] = runBoth(mb.module());
    EXPECT_EQ(rx.exitCode, 720u & 0xff);
}

TEST(CompileRun, GlobalDataAndOutput)
{
    ModuleBuilder mb;
    const std::string text = "hello, differential fault injection";
    std::vector<std::uint8_t> bytes(text.begin(), text.end());
    const int sym = mb.addGlobal("text", bytes, 4);

    auto f = mb.beginFunction("main", 0);
    VReg buf = f.globalAddr(sym);
    VReg len = f.movImm(static_cast<std::int32_t>(text.size()));
    f.syscall(syskit::kSysWrite, buf, len);
    f.ret(f.movImm(0));
    mb.endFunction(f);

    auto [rx, ra] = runBoth(mb.module());
    EXPECT_EQ(outputString(rx), text);
}

TEST(CompileRun, ByteAndHalfMemoryOps)
{
    ModuleBuilder mb;
    const int sym = mb.addBss("buf", 64);
    auto f = mb.beginFunction("main", 0);
    VReg base = f.globalAddr(sym);
    f.store(f.movImm(0x1234), base, 0, MemWidth::Half);
    f.store(f.movImm(0xab), base, 2, MemWidth::Byte);
    f.store(f.movImm(0xcd), base, 3, MemWidth::Byte);
    VReg word = f.load(base, 0); // 0xcdab1234
    VReg hi = f.binImm(AluFunc::ShrU, word, 24);
    f.ret(hi); // 0xcd = 205
    mb.endFunction(f);
    auto [rx, ra] = runBoth(mb.module());
    EXPECT_EQ(rx.exitCode, 0xcdu);
}

TEST(CompileRun, SpillPressure)
{
    // More simultaneously-live values than either ISA has registers:
    // forces spills on both backends.
    ModuleBuilder mb;
    auto f = mb.beginFunction("main", 0);
    std::vector<VReg> vals;
    for (int i = 0; i < 24; ++i)
        vals.push_back(f.movImm(i * 3 + 1));
    VReg sum = f.movImm(0);
    for (int i = 0; i < 24; ++i)
        sum = f.add(sum, vals[i]);
    // sum = sum_{i=0..23} (3i+1) = 3*276 + 24 = 852; &0xff = 84
    f.ret(f.binImm(AluFunc::And, sum, 0xff));
    mb.endFunction(f);
    auto [rx, ra] = runBoth(mb.module());
    EXPECT_EQ(rx.exitCode, 852u & 0xff);
}

TEST(CompileRun, SignedComparisonsInLoops)
{
    // Count down from 10 to -10, counting negative values: 10.
    ModuleBuilder mb;
    const int cell = [] {
        return 0;
    }();
    (void)cell;
    ModuleBuilder mb2;
    auto f = mb2.beginFunction("main", 0);
    const int c = mb2.addBss("c", 8);
    VReg base = f.globalAddr(c);
    f.store(f.movImm(10), base, 0);  // i
    f.store(f.movImm(0), base, 4);   // count
    const int loop = f.newBlock();
    const int neg = f.newBlock();
    const int cont = f.newBlock();
    const int done = f.newBlock();
    f.br(loop);

    f.setBlock(loop);
    VReg b2 = f.globalAddr(c);
    VReg iv = f.load(b2, 0);
    f.condBrImm(Cond::Slt, iv, 0, neg, cont);

    f.setBlock(neg);
    VReg b3 = f.globalAddr(c);
    VReg cnt = f.load(b3, 4);
    f.store(f.addImm(cnt, 1), b3, 4);
    f.br(cont);

    f.setBlock(cont);
    VReg b4 = f.globalAddr(c);
    VReg iv2 = f.load(b4, 0);
    VReg down = f.binImm(AluFunc::Sub, iv2, 1);
    f.store(down, b4, 0);
    f.condBrImm(Cond::Sge, down, -10, loop, done);

    f.setBlock(done);
    VReg b5 = f.globalAddr(c);
    f.ret(f.load(b5, 4));
    mb2.endFunction(f);

    auto [rx, ra] = runBoth(mb2.module());
    EXPECT_EQ(rx.exitCode, 10u);
}

TEST(CompileRun, VerifierCatchesMissingTerminator)
{
    ModuleBuilder mb;
    auto f = mb.beginFunction("main", 0);
    f.movImm(1); // no terminator
    mb.endFunction(f);
    EXPECT_THROW(compileModule(mb.module(), isa::IsaKind::X86),
                 dfi::FatalError);
}

TEST(CompileRun, X86SmallerCodeThanArm)
{
    // Variable-length CISC code should be denser than fixed 4-byte
    // RISC code for the same program.
    ModuleBuilder mb;
    auto f = mb.beginFunction("main", 0);
    VReg sum = f.movImm(0);
    for (int i = 0; i < 50; ++i)
        sum = f.binImm(AluFunc::Add, sum, i * 100000 + 7);
    f.ret(f.binImm(AluFunc::And, sum, 0x7f));
    mb.endFunction(f);
    const Module module = mb.module();
    const auto x86 = compileModule(module, isa::IsaKind::X86);
    const auto arm = compileModule(module, isa::IsaKind::Arm);
    EXPECT_LT(x86.code.size(), arm.code.size());
    runBoth(module);
}

} // namespace

/**
 * @file
 * Unit tests for the compiler internals: liveness analysis and the
 * linear-scan register allocator.
 */

#include <gtest/gtest.h>

#include <set>

#include "isa/ir.hh"
#include "isa/liveness.hh"
#include "isa/regalloc.hh"

namespace
{

using namespace dfi::ir;
using dfi::isa::AluFunc;
using dfi::isa::Cond;

Function
straightLine()
{
    ModuleBuilder mb;
    auto f = mb.beginFunction("f", 0);
    VReg a = f.movImm(1);
    VReg b = f.movImm(2);
    VReg c = f.add(a, b);
    f.ret(c);
    mb.endFunction(f);
    return mb.module().funcs[0];
}

TEST(Liveness, StraightLineIntervals)
{
    const Function func = straightLine();
    const LivenessInfo info = computeLiveness(func);
    // a: defined at 0, used at 2.
    EXPECT_EQ(info.intervals[0].start, 0);
    EXPECT_EQ(info.intervals[0].end, 2);
    // b: defined at 1, used at 2.
    EXPECT_EQ(info.intervals[1].start, 1);
    EXPECT_EQ(info.intervals[1].end, 2);
    // c: defined at 2, used by ret at 3.
    EXPECT_EQ(info.intervals[2].start, 2);
    EXPECT_EQ(info.intervals[2].end, 3);
    EXPECT_TRUE(info.callPositions.empty());
}

TEST(Liveness, LoopExtendsIntervals)
{
    ModuleBuilder mb;
    auto f = mb.beginFunction("f", 0);
    VReg acc = f.movImm(0); // live across the loop
    VReg i = f.movImm(0);
    const int head = f.newBlock();
    const int body = f.newBlock();
    const int exit = f.newBlock();
    f.br(head);
    f.setBlock(head);
    f.condBrImm(Cond::Slt, i, 10, body, exit);
    f.setBlock(body);
    f.binTo(acc, AluFunc::Add, acc, i);
    f.binImmTo(i, AluFunc::Add, i, 1);
    f.br(head);
    f.setBlock(exit);
    f.ret(acc);
    mb.endFunction(f);
    const Function &func = mb.module().funcs[0];

    const LivenessInfo info = computeLiveness(func);
    // Both loop-carried vregs must be live through the whole loop
    // region (the back edge forces the extension).
    const int last_body_pos =
        info.blockStart[2] +
        static_cast<int>(func.blocks[2].insts.size()) - 1;
    EXPECT_LE(info.intervals[0].start, 0);
    EXPECT_GE(info.intervals[0].end, last_body_pos);
    EXPECT_GE(info.intervals[1].end, last_body_pos);
}

TEST(Liveness, CallCrossingMarked)
{
    ModuleBuilder mb;
    const int callee = mb.declareFunction("callee", 0);
    {
        auto f = mb.beginFunction(callee);
        f.ret(f.movImm(0));
        mb.endFunction(f);
    }
    auto f = mb.beginFunction("f", 0);
    VReg keep = f.movImm(7);   // live across the call
    VReg r = f.call(callee, {});
    VReg sum = f.add(keep, r); // uses both
    f.ret(sum);
    mb.endFunction(f);
    const Function &func = mb.module().funcs[1];

    const LivenessInfo info = computeLiveness(func);
    EXPECT_TRUE(info.intervals[0].crossesCall);  // keep
    EXPECT_FALSE(info.intervals[1].crossesCall); // call result
    EXPECT_EQ(info.callPositions.size(), 1u);
}

TEST(Liveness, DeadVregHasEmptyInterval)
{
    ModuleBuilder mb;
    auto f = mb.beginFunction("f", 0);
    f.movImm(99); // dead
    f.ret(f.movImm(0));
    mb.endFunction(f);
    const LivenessInfo info =
        computeLiveness(mb.module().funcs[0]);
    // vreg 0 is defined but never used: interval collapses to the def.
    EXPECT_EQ(info.intervals[0].useCount, 0);
}

TEST(RegAlloc, NoOverlapNoSpill)
{
    const Function func = straightLine();
    const LivenessInfo info = computeLiveness(func);
    const Allocation alloc =
        linearScan(info, RegPools{{0, 1, 2}, {6, 7}});
    EXPECT_EQ(alloc.numSpillSlots, 0);
    for (const auto &loc : alloc.locs)
        EXPECT_TRUE(loc.inReg || loc.dead);
}

TEST(RegAlloc, SpillsWhenPressureExceedsRegisters)
{
    ModuleBuilder mb;
    auto f = mb.beginFunction("f", 0);
    std::vector<VReg> vals;
    for (int i = 0; i < 6; ++i)
        vals.push_back(f.movImm(i));
    VReg sum = f.movImm(0);
    for (int i = 0; i < 6; ++i)
        f.binTo(sum, AluFunc::Add, sum, vals[i]);
    f.ret(sum);
    mb.endFunction(f);
    const LivenessInfo info =
        computeLiveness(mb.module().funcs[0]);
    // Only 3 registers for 7 simultaneously-live values.
    const Allocation alloc =
        linearScan(info, RegPools{{0, 1}, {6}});
    EXPECT_GT(alloc.numSpillSlots, 0);
}

TEST(RegAlloc, CallCrossersGetCalleeSavedOnly)
{
    ModuleBuilder mb;
    const int callee = mb.declareFunction("callee", 0);
    {
        auto cf = mb.beginFunction(callee);
        cf.ret(cf.movImm(0));
        mb.endFunction(cf);
    }
    auto f = mb.beginFunction("f", 0);
    VReg keep1 = f.movImm(1);
    VReg keep2 = f.movImm(2);
    f.callVoid(callee, {});
    f.ret(f.add(keep1, keep2));
    mb.endFunction(f);
    const LivenessInfo info =
        computeLiveness(mb.module().funcs[1]);
    const Allocation alloc =
        linearScan(info, RegPools{{0, 1, 2, 3}, {6}});
    // Two call-crossers but one callee-saved register: one must
    // spill, and neither may land in a caller-saved register.
    int in_callee = 0, spilled = 0;
    for (VReg v : {keep1, keep2}) {
        const Location &loc = alloc.locs[v];
        if (loc.inReg) {
            EXPECT_EQ(loc.reg, 6);
            ++in_callee;
        } else if (!loc.dead) {
            ++spilled;
        }
    }
    EXPECT_EQ(in_callee, 1);
    EXPECT_EQ(spilled, 1);
    EXPECT_EQ(alloc.usedCalleeSaved.size(), 1u);
}

TEST(RegAlloc, NonOverlappingIntervalsShareRegisters)
{
    ModuleBuilder mb;
    auto f = mb.beginFunction("f", 0);
    VReg sink = f.movImm(0);
    for (int i = 0; i < 10; ++i) {
        VReg t = f.movImm(i);
        f.binTo(sink, AluFunc::Add, sink, t);
    }
    f.ret(sink);
    mb.endFunction(f);
    const LivenessInfo info =
        computeLiveness(mb.module().funcs[0]);
    const Allocation alloc =
        linearScan(info, RegPools{{0, 1}, {}});
    // 11 vregs but only ever 2 live at once: no spills.
    EXPECT_EQ(alloc.numSpillSlots, 0);
}

TEST(RegAlloc, AssignmentsNeverOverlapInTime)
{
    // Property: two vregs sharing a register must have disjoint
    // intervals.
    ModuleBuilder mb;
    auto f = mb.beginFunction("f", 0);
    std::vector<VReg> vs;
    for (int i = 0; i < 12; ++i)
        vs.push_back(f.movImm(i));
    VReg acc = f.movImm(0);
    for (int round = 0; round < 2; ++round) {
        for (int i = 0; i < 12; ++i)
            f.binTo(acc, AluFunc::Xor, acc, vs[i]);
    }
    f.ret(acc);
    mb.endFunction(f);
    const LivenessInfo info =
        computeLiveness(mb.module().funcs[0]);
    const Allocation alloc =
        linearScan(info, RegPools{{0, 1, 2, 3, 4}, {6, 7, 8}});
    for (std::size_t a = 0; a < alloc.locs.size(); ++a) {
        for (std::size_t b = a + 1; b < alloc.locs.size(); ++b) {
            const Location &la = alloc.locs[a];
            const Location &lb = alloc.locs[b];
            if (!la.inReg || !lb.inReg || la.reg != lb.reg)
                continue;
            const LiveInterval &ia = info.intervals[a];
            const LiveInterval &ib = info.intervals[b];
            const bool disjoint =
                ia.end < ib.start || ib.end < ia.start;
            EXPECT_TRUE(disjoint)
                << "vregs " << a << " and " << b << " share r"
                << int(la.reg) << " with overlapping intervals";
        }
    }
}

} // namespace

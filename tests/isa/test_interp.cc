/**
 * @file
 * Tests for the functional interpreter's exception and system
 * semantics (the DUE/crash taxonomy at the architectural level).
 */

#include <gtest/gtest.h>

#include "isa/codegen.hh"
#include "isa/interp.hh"
#include "isa/ir.hh"
#include "syskit/os.hh"

namespace
{

using namespace dfi;
using namespace dfi::ir;
using isa::AluFunc;
using isa::MemWidth;

isa::Image
buildImage(const std::function<void(ModuleBuilder &,
                                    FunctionBuilder &)> &body,
           isa::IsaKind kind = isa::IsaKind::X86)
{
    ModuleBuilder mb;
    auto f = mb.beginFunction("main", 0);
    body(mb, f);
    mb.endFunction(f);
    return compileModule(mb.module(), kind);
}

TEST(Interp, DivZeroIsSurvivableDue)
{
    const auto image = buildImage([](ModuleBuilder &, FunctionBuilder &f) {
        VReg zero = f.movImm(0);
        VReg x = f.movImm(10);
        VReg q = f.bin(AluFunc::DivU, x, zero);
        f.ret(q);
    });
    isa::Interpreter interp(image);
    const auto record = interp.run();
    EXPECT_EQ(record.term, syskit::Termination::Exited);
    EXPECT_EQ(record.exitCode, 0u); // div-by-zero yields 0
    ASSERT_EQ(record.dueEvents.size(), 1u);
    EXPECT_EQ(record.dueEvents[0].kind, "div-zero");
}

TEST(Interp, MisalignedAccessIsSurvivableDue)
{
    const auto image = buildImage([](ModuleBuilder &mb,
                                     FunctionBuilder &f) {
        const int sym = mb.addBss("buf", 64);
        VReg base = f.globalAddr(sym);
        VReg odd = f.binImm(AluFunc::Add, base, 1);
        f.store(f.movImm(0x11223344), odd, 0, MemWidth::Word);
        VReg v = f.load(odd, 0, MemWidth::Word);
        f.ret(f.binImm(AluFunc::And, v, 0xff));
    });
    isa::Interpreter interp(image);
    const auto record = interp.run();
    EXPECT_EQ(record.term, syskit::Termination::Exited);
    EXPECT_EQ(record.exitCode, 0x44u); // the access still worked
    EXPECT_GE(record.dueEvents.size(), 2u);
    EXPECT_EQ(record.dueEvents[0].kind, "alignment-fixup");
}

TEST(Interp, NullLoadIsProcessCrash)
{
    const auto image = buildImage([](ModuleBuilder &,
                                     FunctionBuilder &f) {
        VReg null = f.movImm(0);
        VReg v = f.load(null, 0);
        f.ret(v);
    });
    isa::Interpreter interp(image);
    const auto record = interp.run();
    EXPECT_EQ(record.term, syskit::Termination::ProcessCrash);
}

TEST(Interp, WildStoreIsProcessCrash)
{
    const auto image = buildImage([](ModuleBuilder &,
                                     FunctionBuilder &f) {
        VReg wild = f.movImm(static_cast<std::int32_t>(0x7fffff00));
        f.store(f.movImm(1), wild, 0);
        f.ret(f.movImm(0));
    });
    isa::Interpreter interp(image);
    EXPECT_EQ(interp.run().term, syskit::Termination::ProcessCrash);
}

TEST(Interp, StoreToCodeIsProcessCrash)
{
    const auto image = buildImage([](ModuleBuilder &,
                                     FunctionBuilder &f) {
        VReg code = f.movImm(0x1000); // code base
        f.store(f.movImm(0), code, 0);
        f.ret(f.movImm(0));
    });
    isa::Interpreter interp(image);
    EXPECT_EQ(interp.run().term, syskit::Termination::ProcessCrash);
}

TEST(Interp, BadSyscallIsKernelPanic)
{
    const auto image = buildImage([](ModuleBuilder &,
                                     FunctionBuilder &f) {
        VReg a = f.movImm(0);
        f.syscall(0x7777, a, a); // no such syscall
        f.ret(f.movImm(0));
    });
    isa::Interpreter interp(image);
    EXPECT_EQ(interp.run().term, syskit::Termination::KernelPanic);
}

TEST(Interp, RunawayLoopHitsCycleLimit)
{
    const auto image = buildImage([](ModuleBuilder &,
                                     FunctionBuilder &f) {
        const int loop = f.newBlock();
        f.br(loop);
        f.setBlock(loop);
        f.br(loop);
    });
    isa::Interpreter interp(image);
    const auto record = interp.run(10'000);
    EXPECT_EQ(record.term, syskit::Termination::CycleLimit);
}

TEST(Interp, BrkSyscallGrowsMonotonically)
{
    const auto image = buildImage([](ModuleBuilder &,
                                     FunctionBuilder &f) {
        VReg top = f.movImm(0x80000);
        VReg zero = f.movImm(0);
        VReg r1 = f.syscall(syskit::kSysBrk, top, zero);
        VReg lower = f.movImm(0x40000);
        VReg r2 = f.syscall(syskit::kSysBrk, lower, zero);
        f.ret(f.bin(AluFunc::Sub, r1, r2)); // same top twice -> 0
    });
    isa::Interpreter interp(image);
    const auto record = interp.run();
    EXPECT_EQ(record.term, syskit::Termination::Exited);
    EXPECT_EQ(record.exitCode, 0u);
}

TEST(Interp, X86AndArmStackDisciplinesAgree)
{
    // Nested calls: DX86 links through the stack, DARM through LR
    // (+ frame save).  Both must compute the same result.
    ModuleBuilder mb;
    const int leaf = mb.declareFunction("leaf", 1);
    {
        auto f = mb.beginFunction(leaf);
        f.ret(f.binImm(AluFunc::Mul, f.param(0), 3));
        mb.endFunction(f);
    }
    const int mid = mb.declareFunction("mid", 1);
    {
        auto f = mb.beginFunction(mid);
        VReg a = f.call(leaf, {f.param(0)});
        VReg b = f.call(leaf, {a});
        f.ret(f.add(a, b));
        mb.endFunction(f);
    }
    {
        auto f = mb.beginFunction("main", 0);
        VReg r = f.call(mid, {f.movImm(4)});
        f.ret(r); // 12 + 36 = 48
        mb.endFunction(f);
    }
    for (auto kind : {isa::IsaKind::X86, isa::IsaKind::Arm}) {
        isa::Interpreter interp(compileModule(mb.module(), kind));
        const auto record = interp.run();
        EXPECT_EQ(record.term, syskit::Termination::Exited);
        EXPECT_EQ(record.exitCode, 48u) << isa::isaName(kind);
    }
}

} // namespace

/**
 * @file
 * Tests for ALU semantics, flags and conditions.
 */

#include <gtest/gtest.h>

#include "isa/types.hh"

namespace
{

using namespace dfi::isa;

TEST(Alu, Basics)
{
    EXPECT_EQ(evalAlu(AluFunc::Add, 2, 3).value, 5u);
    EXPECT_EQ(evalAlu(AluFunc::Sub, 2, 3).value, 0xffffffffu);
    EXPECT_EQ(evalAlu(AluFunc::And, 0xf0f0, 0xff00).value, 0xf000u);
    EXPECT_EQ(evalAlu(AluFunc::Or, 0xf0f0, 0x0f0f).value, 0xffffu);
    EXPECT_EQ(evalAlu(AluFunc::Xor, 0xff, 0x0f).value, 0xf0u);
    EXPECT_EQ(evalAlu(AluFunc::Mul, 7, 6).value, 42u);
}

TEST(Alu, Shifts)
{
    EXPECT_EQ(evalAlu(AluFunc::Shl, 1, 4).value, 16u);
    EXPECT_EQ(evalAlu(AluFunc::ShrU, 0x80000000u, 31).value, 1u);
    EXPECT_EQ(evalAlu(AluFunc::ShrS, 0x80000000u, 31).value,
              0xffffffffu);
    // Shift amounts are taken mod 32.
    EXPECT_EQ(evalAlu(AluFunc::Shl, 1, 33).value, 2u);
}

TEST(Alu, DivisionAndRemainder)
{
    EXPECT_EQ(evalAlu(AluFunc::DivU, 42, 5).value, 8u);
    EXPECT_EQ(evalAlu(AluFunc::RemU, 42, 5).value, 2u);
    EXPECT_EQ(evalAlu(AluFunc::DivS, static_cast<std::uint32_t>(-42), 5)
                  .value,
              static_cast<std::uint32_t>(-8));
    EXPECT_EQ(evalAlu(AluFunc::RemS, static_cast<std::uint32_t>(-42), 5)
                  .value,
              static_cast<std::uint32_t>(-2));
}

TEST(Alu, DivideByZeroTraps)
{
    for (auto f : {AluFunc::DivU, AluFunc::DivS, AluFunc::RemU,
                   AluFunc::RemS}) {
        const AluResult r = evalAlu(f, 11, 0);
        EXPECT_TRUE(r.divByZero);
        EXPECT_EQ(r.value, 0u);
    }
    EXPECT_FALSE(evalAlu(AluFunc::DivU, 11, 2).divByZero);
}

TEST(Alu, IntMinOverMinusOneDoesNotTrap)
{
    const AluResult r = evalAlu(AluFunc::DivS, 0x80000000u, 0xffffffffu);
    EXPECT_FALSE(r.divByZero);
    EXPECT_EQ(r.value, 0x80000000u);
    EXPECT_EQ(evalAlu(AluFunc::RemS, 0x80000000u, 0xffffffffu).value,
              0u);
}

TEST(Flags, PackUnpackRoundTrip)
{
    for (std::uint32_t bits = 0; bits < 16; ++bits)
        EXPECT_EQ(Flags::unpack(bits).pack(), bits);
}

TEST(Cmp, SignedUnsignedConditions)
{
    struct Case
    {
        std::uint32_t a, b;
    };
    const Case cases[] = {
        {0, 0},          {1, 2},         {2, 1},
        {0xffffffff, 1}, {1, 0xffffffff}, {0x80000000, 0x7fffffff},
        {0x7fffffff, 0x80000000},         {5, 5},
    };
    for (const Case &c : cases) {
        const Flags f = evalCmp(c.a, c.b);
        const auto sa = static_cast<std::int32_t>(c.a);
        const auto sb = static_cast<std::int32_t>(c.b);
        EXPECT_EQ(evalCond(Cond::Eq, f), c.a == c.b);
        EXPECT_EQ(evalCond(Cond::Ne, f), c.a != c.b);
        EXPECT_EQ(evalCond(Cond::Ult, f), c.a < c.b);
        EXPECT_EQ(evalCond(Cond::Ule, f), c.a <= c.b);
        EXPECT_EQ(evalCond(Cond::Ugt, f), c.a > c.b);
        EXPECT_EQ(evalCond(Cond::Uge, f), c.a >= c.b);
        EXPECT_EQ(evalCond(Cond::Slt, f), sa < sb);
        EXPECT_EQ(evalCond(Cond::Sle, f), sa <= sb);
        EXPECT_EQ(evalCond(Cond::Sgt, f), sa > sb);
        EXPECT_EQ(evalCond(Cond::Sge, f), sa >= sb);
    }
}

} // namespace

/**
 * @file
 * Encode/decode round-trip and robustness tests for both ISAs.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "isa/arm.hh"
#include "isa/x86.hh"

namespace
{

using namespace dfi::isa;
using dfi::Rng;

MacroOp
makeOp(OpKind kind)
{
    MacroOp op;
    op.kind = kind;
    return op;
}

void
roundTripX86(const MacroOp &op)
{
    std::vector<std::uint8_t> bytes;
    x86Encode(op, bytes);
    ASSERT_EQ(bytes.size(), x86Length(op));
    const MacroOp back = x86Decode(bytes.data(), bytes.size());
    EXPECT_EQ(back.kind, op.kind) << op.toString();
    EXPECT_EQ(back.length, bytes.size());
    EXPECT_EQ(back.toString(), op.toString());
}

void
roundTripArm(const MacroOp &op)
{
    std::vector<std::uint8_t> bytes;
    armEncode(op, bytes);
    ASSERT_EQ(bytes.size(), kArmInsnBytes);
    const MacroOp back = armDecode(bytes.data(), bytes.size());
    EXPECT_EQ(back.kind, op.kind) << op.toString();
    EXPECT_EQ(back.toString(), op.toString());
}

TEST(X86Encoding, SimpleOps)
{
    for (auto kind :
         {OpKind::Nop, OpKind::Ret, OpKind::Halt, OpKind::Syscall})
        roundTripX86(makeOp(kind));
}

TEST(X86Encoding, AluForms)
{
    for (int f = 0; f < kNumAluFuncs; ++f) {
        MacroOp rr = makeOp(OpKind::AluRR);
        rr.func = static_cast<AluFunc>(f);
        rr.rd = rr.rn = 3;
        rr.rm = 12;
        roundTripX86(rr);

        MacroOp ri = makeOp(OpKind::AluRI);
        ri.func = static_cast<AluFunc>(f);
        ri.rd = ri.rn = 7;
        ri.imm = -123456;
        roundTripX86(ri);

        MacroOp rm = makeOp(OpKind::LoadOp);
        rm.func = static_cast<AluFunc>(f);
        rm.rd = 2;
        rm.rn = 9;
        rm.imm = -32768;
        roundTripX86(rm);
    }
}

TEST(X86Encoding, MovLoadStore)
{
    MacroOp mov = makeOp(OpKind::MovRR);
    mov.rd = 1;
    mov.rm = 15;
    roundTripX86(mov);

    MacroOp movi = makeOp(OpKind::MovRI);
    movi.rd = 4;
    movi.imm = static_cast<std::int32_t>(0xdeadbeef);
    roundTripX86(movi);

    for (auto w : {MemWidth::Word, MemWidth::Half, MemWidth::Byte}) {
        MacroOp load = makeOp(OpKind::Load);
        load.width = w;
        load.rd = 5;
        load.rn = 15;
        load.imm = 32767;
        roundTripX86(load);

        MacroOp store = makeOp(OpKind::Store);
        store.width = w;
        store.rm = 6;
        store.rn = 14;
        store.imm = -4;
        roundTripX86(store);
    }
}

TEST(X86Encoding, StackAndControl)
{
    MacroOp push = makeOp(OpKind::Push);
    push.rm = 9;
    roundTripX86(push);
    MacroOp pop = makeOp(OpKind::Pop);
    pop.rd = 10;
    roundTripX86(pop);

    for (int c = 0; c < kNumConds; ++c) {
        MacroOp br = makeOp(OpKind::BrCond);
        br.cond = static_cast<Cond>(c);
        br.imm = -2;
        roundTripX86(br);
    }
    MacroOp jmp = makeOp(OpKind::Jump);
    jmp.imm = 1000;
    roundTripX86(jmp);
    MacroOp call = makeOp(OpKind::Call);
    call.imm = -1000;
    roundTripX86(call);
    MacroOp ji = makeOp(OpKind::JumpInd);
    ji.rm = 8;
    roundTripX86(ji);
    MacroOp ci = makeOp(OpKind::CallInd);
    ci.rm = 2;
    roundTripX86(ci);

    MacroOp cmp = makeOp(OpKind::CmpRR);
    cmp.rn = 1;
    cmp.rm = 2;
    roundTripX86(cmp);
    MacroOp cmpi = makeOp(OpKind::CmpRI);
    cmpi.rn = 3;
    cmpi.imm = 77;
    roundTripX86(cmpi);
}

TEST(X86Encoding, UnknownOpcodeIsIllegalLengthOne)
{
    for (unsigned opc : {0x04u, 0x0fu, 0x3du, 0x4eu, 0x5eu, 0x80u,
                         0xffu}) {
        const std::uint8_t bytes[6] = {static_cast<std::uint8_t>(opc)};
        const MacroOp op = x86Decode(bytes, sizeof(bytes));
        EXPECT_EQ(op.kind, OpKind::Illegal) << opc;
        EXPECT_EQ(op.length, 1);
    }
}

TEST(X86Encoding, TruncatedDecodeIsIllegal)
{
    // MOV ri needs 6 bytes; give it 3.
    const std::uint8_t bytes[3] = {0x41, 0x20, 0xff};
    const MacroOp op = x86Decode(bytes, sizeof(bytes));
    EXPECT_EQ(op.kind, OpKind::Illegal);
}

TEST(X86Encoding, DecodeNeverReadsPastAvail)
{
    // Fuzz: decode at every offset of a random buffer with small
    // avail values; must never crash and must report plausible
    // lengths.
    Rng rng(77);
    std::vector<std::uint8_t> buffer(256);
    for (auto &byte : buffer)
        byte = static_cast<std::uint8_t>(rng.next64());
    for (std::size_t off = 0; off < buffer.size(); ++off) {
        const std::size_t avail =
            std::min<std::size_t>(buffer.size() - off, 6);
        const MacroOp op = x86Decode(buffer.data() + off, avail);
        EXPECT_LE(op.length, 6);
    }
}

TEST(ArmEncoding, SimpleOps)
{
    for (auto kind :
         {OpKind::Nop, OpKind::Ret, OpKind::Halt, OpKind::Syscall})
        roundTripArm(makeOp(kind));
}

TEST(ArmEncoding, AluForms)
{
    for (int f = 0; f < kNumAluFuncs; ++f) {
        MacroOp rrr = makeOp(OpKind::AluRR);
        rrr.func = static_cast<AluFunc>(f);
        rrr.rd = 1;
        rrr.rn = 2;
        rrr.rm = 3;
        roundTripArm(rrr);

        MacroOp rri = makeOp(OpKind::AluRI);
        rri.func = static_cast<AluFunc>(f);
        rri.rd = 4;
        rri.rn = 5;
        rri.imm = 0xfff;
        roundTripArm(rri);
    }
}

TEST(ArmEncoding, MovForms)
{
    MacroOp mov = makeOp(OpKind::MovRR);
    mov.rd = 11;
    mov.rm = 14;
    roundTripArm(mov);

    MacroOp movw = makeOp(OpKind::MovRI);
    movw.rd = 3;
    movw.imm = 0xbeef;
    roundTripArm(movw);

    MacroOp movt = makeOp(OpKind::MovTI);
    movt.rd = 3;
    movt.imm = 0xdead;
    roundTripArm(movt);
}

TEST(ArmEncoding, LoadStore)
{
    for (auto w : {MemWidth::Word, MemWidth::Half, MemWidth::Byte}) {
        MacroOp load = makeOp(OpKind::Load);
        load.width = w;
        load.rd = 7;
        load.rn = 15;
        load.imm = 4095;
        roundTripArm(load);

        MacroOp store = makeOp(OpKind::Store);
        store.width = w;
        store.rm = 8;
        store.rn = 13;
        store.imm = 0;
        roundTripArm(store);
    }
}

TEST(ArmEncoding, Branches)
{
    for (int c = 0; c < kNumConds; ++c) {
        MacroOp br = makeOp(OpKind::BrCond);
        br.cond = static_cast<Cond>(c);
        br.imm = -524288; // minimum rel20 (in bytes: -2^19 words)
        br.imm = -4 * 100;
        roundTripArm(br);
    }
    MacroOp b = makeOp(OpKind::Jump);
    b.imm = 4 * 1000;
    roundTripArm(b);
    MacroOp bl = makeOp(OpKind::Call);
    bl.imm = -4 * 1000;
    roundTripArm(bl);
    MacroOp bx = makeOp(OpKind::JumpInd);
    bx.rm = 14;
    roundTripArm(bx);
}

TEST(ArmEncoding, UnknownOpcodeIsIllegal)
{
    for (unsigned opc : {0x04u, 0x3eu, 0x4bu, 0x5du, 0xc0u, 0xffu}) {
        const std::uint8_t bytes[4] = {0, 0, 0,
                                       static_cast<std::uint8_t>(opc)};
        const MacroOp op = armDecode(bytes, 4);
        EXPECT_EQ(op.kind, OpKind::Illegal) << opc;
        EXPECT_EQ(op.length, 4);
    }
}

TEST(ArmEncoding, ShortBufferIsIllegal)
{
    const std::uint8_t bytes[2] = {0x10, 0x20};
    EXPECT_EQ(armDecode(bytes, 2).kind, OpKind::Illegal);
}

TEST(ArmEncoding, BitFlipNeverPanics)
{
    // Property: flipping any bit of a valid encoding still decodes
    // (possibly to Illegal) without crashing.
    MacroOp op = makeOp(OpKind::AluRR);
    op.func = AluFunc::Add;
    op.rd = 1;
    op.rn = 2;
    op.rm = 3;
    std::vector<std::uint8_t> bytes;
    armEncode(op, bytes);
    for (int bit = 0; bit < 32; ++bit) {
        auto mutated = bytes;
        mutated[bit / 8] ^= static_cast<std::uint8_t>(1 << (bit % 8));
        (void)armDecode(mutated.data(), mutated.size());
    }
}

} // namespace

/**
 * @file
 * Tests for the mini system layer: guest memory protection, syscall
 * semantics, the DUE log, and the crash taxonomy plumbing.
 */

#include <gtest/gtest.h>

#include "syskit/memory.hh"
#include "syskit/os.hh"
#include "syskit/run_record.hh"

namespace
{

using namespace dfi::syskit;

TEST(GuestMemory, NullPageUnmapped)
{
    GuestMemory memory(0x10000, 0x2000);
    std::uint32_t value = 0;
    EXPECT_EQ(memory.read(0x0, 4, &value), MemFault::Unmapped);
    EXPECT_EQ(memory.read(0xfff, 1, &value), MemFault::Unmapped);
    EXPECT_EQ(memory.read(0x1000, 4, &value), MemFault::None);
}

TEST(GuestMemory, OutOfRangeUnmapped)
{
    GuestMemory memory(0x10000, 0x2000);
    std::uint32_t value = 0;
    EXPECT_EQ(memory.read(0x10000, 1, &value), MemFault::Unmapped);
    EXPECT_EQ(memory.read(0xfffe, 4, &value), MemFault::Unmapped);
    EXPECT_EQ(memory.read(0xfffc, 4, &value), MemFault::None);
    // Wrap-around must not fool the bounds check.
    EXPECT_EQ(memory.read(0xfffffffc, 4, &value), MemFault::Unmapped);
}

TEST(GuestMemory, CodeIsWriteProtected)
{
    GuestMemory memory(0x10000, 0x2000);
    EXPECT_EQ(memory.write(0x1800, 4, 0xdead), MemFault::WriteToCode);
    EXPECT_EQ(memory.write(0x2000, 4, 0xdead), MemFault::None);
    std::uint32_t value = 0;
    EXPECT_EQ(memory.read(0x2000, 4, &value), MemFault::None);
    EXPECT_EQ(value, 0xdeadu);
}

TEST(GuestMemory, LittleEndianAccess)
{
    GuestMemory memory(0x10000, 0x1000);
    ASSERT_EQ(memory.write(0x3000, 4, 0x04030201), MemFault::None);
    std::uint32_t value = 0;
    ASSERT_EQ(memory.read(0x3001, 2, &value), MemFault::None);
    EXPECT_EQ(value, 0x0302u);
    ASSERT_EQ(memory.read(0x3003, 1, &value), MemFault::None);
    EXPECT_EQ(value, 0x04u);
}

TEST(GuestMemory, PokePeekBypassProtection)
{
    GuestMemory memory(0x10000, 0x2000);
    const std::uint8_t code[4] = {1, 2, 3, 4};
    memory.pokeBytes(0x1000, 4, code); // loader writes code
    std::uint8_t out[4] = {};
    memory.peekBytes(0x1000, 4, out);
    EXPECT_EQ(out[3], 4);
}

TEST(GuestMemory, CheckpointCopySharesCowPages)
{
    // 64 KiB of guest memory -> 16 pages of 4 KiB.
    GuestMemory a(0x10000, 0x2000);
    for (std::uint32_t addr = 0x2000; addr < 0x10000; addr += 0x1000)
        ASSERT_EQ(a.write(addr, 4, addr), MemFault::None);
    ASSERT_EQ(a.backingPages(), 16u);

    // A checkpoint copy shares the whole image; reads stay shared.
    GuestMemory b = a;
    EXPECT_EQ(b.sharedBackingPages(), 16u);
    std::uint32_t value = 0;
    for (std::uint32_t addr = 0x1000; addr < 0x10000; addr += 4)
        ASSERT_EQ(b.read(addr, 4, &value), MemFault::None);
    EXPECT_EQ(b.sharedBackingPages(), 16u);

    // One store pays for exactly one page and stays private.
    ASSERT_EQ(b.write(0x3000, 4, 0xfeed), MemFault::None);
    EXPECT_EQ(b.sharedBackingPages(), 15u);
    ASSERT_EQ(b.read(0x3000, 4, &value), MemFault::None);
    EXPECT_EQ(value, 0xfeedu);
    ASSERT_EQ(a.read(0x3000, 4, &value), MemFault::None);
    EXPECT_EQ(value, 0x3000u);
}

class CountingPort : public SysMemPort
{
  public:
    bool
    readByte(std::uint32_t addr, std::uint8_t *out) override
    {
        if (addr >= 0x8000)
            return false;
        *out = static_cast<std::uint8_t>(addr & 0xff);
        ++reads;
        return true;
    }
    int reads = 0;
};

TEST(MiniOs, WriteCopiesThroughPort)
{
    MiniOs os;
    CountingPort port;
    const auto result = os.syscall(kSysWrite, 0x4000, 8, port, 0x1);
    EXPECT_EQ(result.retval, 8u);
    EXPECT_EQ(port.reads, 8);
    EXPECT_EQ(os.output().size(), 8u);
    EXPECT_EQ(os.output()[3], 0x03);
}

TEST(MiniOs, WriteFaultRaisesDue)
{
    MiniOs os;
    CountingPort port;
    const auto result = os.syscall(kSysWrite, 0x7ffc, 16, port, 0x2);
    EXPECT_EQ(result.retval, 4u); // stopped at the fault
    ASSERT_EQ(os.dueEvents().size(), 1u);
    EXPECT_EQ(os.dueEvents()[0].kind, "efault");
}

TEST(MiniOs, WriteIntoKernelPageIsPanic)
{
    MiniOs os;
    CountingPort port;
    const auto result = os.syscall(kSysWrite, 0x10, 4, port, 0x3);
    EXPECT_TRUE(result.kernelPanic);
}

TEST(MiniOs, UnknownSyscallIsPanic)
{
    MiniOs os;
    CountingPort port;
    const auto result = os.syscall(0xdeadbeef, 0, 0, port, 0x4);
    EXPECT_TRUE(result.kernelPanic);
}

TEST(MiniOs, ExitCarriesCode)
{
    MiniOs os;
    CountingPort port;
    const auto result = os.syscall(kSysExit, 42, 0, port, 0x5);
    EXPECT_TRUE(result.exited);
    EXPECT_EQ(result.exitCode, 42u);
}

TEST(MiniOs, OutputGrowthIsBounded)
{
    // A corrupted length argument must not eat host memory.
    MiniOs os;
    CountingPort port;
    const auto result =
        os.syscall(kSysWrite, 0x1000, 0xffffffff, port, 0x6);
    EXPECT_LE(os.output().size(), MiniOs::kMaxOutputBytes);
    EXPECT_FALSE(os.dueEvents().empty());
    (void)result;
}

TEST(MiniOs, FinishMovesStateIntoRecord)
{
    MiniOs os;
    CountingPort port;
    (void)os.syscall(kSysWrite, 0x4000, 4, port, 0x7);
    os.raiseDue("div-zero", 0x8);
    RunRecord record;
    os.finishInto(record);
    EXPECT_EQ(record.output.size(), 4u);
    EXPECT_EQ(record.dueEvents.size(), 1u);
    EXPECT_TRUE(os.output().empty());
}

TEST(Termination, Names)
{
    EXPECT_EQ(terminationName(Termination::Exited), "exited");
    EXPECT_EQ(terminationName(Termination::KernelPanic),
              "kernel-panic");
    EXPECT_EQ(terminationName(Termination::SimAssert), "sim-assert");
    EXPECT_EQ(terminationName(Termination::SimCrash), "sim-crash");
    EXPECT_EQ(terminationName(Termination::CycleLimit), "cycle-limit");
    EXPECT_EQ(terminationName(Termination::ProcessCrash),
              "process-crash");
}

} // namespace

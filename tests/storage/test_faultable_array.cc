/**
 * @file
 * Unit and property tests for FaultableArray, including the watch
 * automaton used by the early-stop optimization.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "storage/faultable_array.hh"

namespace
{

using dfi::FaultableArray;
using dfi::Rng;
using dfi::WatchState;

TEST(FaultableArray, GeometryAndTotalBits)
{
    FaultableArray a("rf", 256, 32);
    EXPECT_EQ(a.numEntries(), 256u);
    EXPECT_EQ(a.bitsPerEntry(), 32u);
    EXPECT_EQ(a.totalBits(), 256u * 32u);
}

TEST(FaultableArray, StartsZeroed)
{
    FaultableArray a("z", 8, 64);
    for (std::size_t e = 0; e < 8; ++e)
        EXPECT_EQ(a.readBits(e, 0, 64), 0u);
}

TEST(FaultableArray, BitsRoundTrip)
{
    FaultableArray a("rt", 4, 48);
    a.writeBits(2, 5, 31, 0x5a5a5a5aull & 0x7fffffffull);
    EXPECT_EQ(a.readBits(2, 5, 31), 0x5a5a5a5aull & 0x7fffffffull);
    // neighbours untouched
    EXPECT_EQ(a.readBits(2, 0, 5), 0u);
    EXPECT_EQ(a.readBits(2, 36, 12), 0u);
}

TEST(FaultableArray, CrossWordAccess)
{
    FaultableArray a("cw", 2, 128);
    a.writeBits(1, 60, 16, 0xabcd);
    EXPECT_EQ(a.readBits(1, 60, 16), 0xabcdu);
    EXPECT_EQ(a.readBits(1, 60, 8), 0xcdu);
    EXPECT_EQ(a.readBits(1, 68, 8), 0xabu);
}

TEST(FaultableArray, FullWordWrite)
{
    FaultableArray a("fw", 2, 64);
    a.writeBits(0, 0, 64, ~0ull);
    EXPECT_EQ(a.readBits(0, 0, 64), ~0ull);
    a.writeBits(0, 0, 64, 0x0123456789abcdefull);
    EXPECT_EQ(a.readBits(0, 0, 64), 0x0123456789abcdefull);
}

TEST(FaultableArray, BytesRoundTrip)
{
    FaultableArray a("by", 4, 512); // cache-line-like rows
    std::vector<std::uint8_t> in(64), out(64);
    for (int i = 0; i < 64; ++i)
        in[i] = static_cast<std::uint8_t>(i * 7 + 3);
    a.writeBytes(3, 0, 64, in.data());
    a.readBytes(3, 0, 64, out.data());
    EXPECT_EQ(in, out);
}

TEST(FaultableArray, FlipBitTogglesExactlyOneBit)
{
    FaultableArray a("fl", 4, 32);
    a.writeBits(1, 0, 32, 0xffff0000u);
    a.flipBit(1, 16);
    EXPECT_EQ(a.readBits(1, 0, 32), 0xfffe0000u);
    a.flipBit(1, 16);
    EXPECT_EQ(a.readBits(1, 0, 32), 0xffff0000u);
}

TEST(FaultableArray, ForceBitSetsValue)
{
    FaultableArray a("fo", 2, 8);
    a.forceBit(0, 3, true);
    EXPECT_TRUE(a.peekBit(0, 3));
    a.forceBit(0, 3, false);
    EXPECT_FALSE(a.peekBit(0, 3));
}

TEST(FaultableArray, ClearEntryZeroesRow)
{
    FaultableArray a("ce", 2, 96);
    a.writeBits(1, 0, 64, ~0ull);
    a.writeBits(1, 64, 32, 0xffffffffull);
    a.clearEntry(1);
    EXPECT_EQ(a.readBits(1, 0, 64), 0u);
    EXPECT_EQ(a.readBits(1, 64, 32), 0u);
}

// --- watch automaton ----------------------------------------------------

TEST(FaultableArray, CheckpointCopySharesCowPages)
{
    // 4096 x 64-bit rows -> 4096 backing words -> 8 pages of 512
    // words.  Write one word per page to materialise distinct pages.
    FaultableArray a("cow", 4096, 64);
    for (std::size_t e = 0; e < 4096; e += 512)
        a.writeBits(e, 0, 64, e + 1);
    ASSERT_EQ(a.backingPages(), 8u);
    EXPECT_EQ(a.sharedBackingPages(), 0u);

    // A checkpoint copy shares every page with its source...
    FaultableArray b = a;
    EXPECT_EQ(b.sharedBackingPages(), 8u);
    EXPECT_EQ(a.sharedBackingPages(), 8u);

    // ...reads never privatise one...
    for (std::size_t e = 0; e < 4096; ++e)
        (void)b.readBits(e, 0, 64);
    EXPECT_EQ(b.sharedBackingPages(), 8u);

    // ...and a single write privatises exactly the touched page,
    // invisibly to the source.
    b.flipBit(0, 0);
    EXPECT_EQ(b.sharedBackingPages(), 7u);
    EXPECT_EQ(a.sharedBackingPages(), 7u);
    // Entry 0 was seeded with value 1, so the flip clears its bit 0
    // in the copy while the source keeps it.
    EXPECT_FALSE(b.peekBit(0, 0));
    EXPECT_TRUE(a.peekBit(0, 0));
    EXPECT_EQ(b.readBits(512, 0, 64), 513u);
}

TEST(FaultableArray, FreshArrayAliasesOneFillPage)
{
    // A newly built array materialises a single zero page no matter
    // its logical size: every page-table slot aliases it.
    FaultableArray a("fill", 4096, 64);
    ASSERT_EQ(a.backingPages(), 8u);
    EXPECT_EQ(a.sharedBackingPages(), 8u);
    EXPECT_EQ(a.storageBytes(), 8u * 4096u);

    // First write to any page unshares just that slot.
    a.writeBit(0, 0, true);
    EXPECT_EQ(a.sharedBackingPages(), 7u);
}

TEST(FaultableArrayWatch, ReadFirstDetected)
{
    FaultableArray a("w1", 8, 32);
    a.armWatch(3, 17);
    EXPECT_EQ(a.watchState(), WatchState::Armed);
    (void)a.readBits(3, 0, 32); // covers bit 17
    EXPECT_EQ(a.watchState(), WatchState::ReadFirst);
    // Later overwrites don't change the verdict.
    a.writeBits(3, 0, 32, 0);
    EXPECT_EQ(a.watchState(), WatchState::ReadFirst);
}

TEST(FaultableArrayWatch, WrittenFirstDetected)
{
    FaultableArray a("w2", 8, 32);
    a.armWatch(2, 5);
    a.writeBits(2, 0, 32, 0x1234);
    EXPECT_EQ(a.watchState(), WatchState::WrittenFirst);
    (void)a.readBits(2, 0, 32);
    EXPECT_EQ(a.watchState(), WatchState::WrittenFirst);
}

TEST(FaultableArrayWatch, UncoveredAccessesIgnored)
{
    FaultableArray a("w3", 8, 32);
    a.armWatch(2, 20);
    (void)a.readBits(2, 0, 16);   // does not cover bit 20
    a.writeBits(2, 0, 16, 0xff);  // does not cover bit 20
    (void)a.readBits(3, 0, 32);   // other entry
    EXPECT_EQ(a.watchState(), WatchState::Armed);
    (void)a.readBits(2, 16, 8); // covers 16..23
    EXPECT_EQ(a.watchState(), WatchState::ReadFirst);
}

TEST(FaultableArrayWatch, ClearEntryCountsAsOverwrite)
{
    FaultableArray a("w4", 8, 32);
    a.armWatch(5, 1);
    a.clearEntry(5);
    EXPECT_EQ(a.watchState(), WatchState::WrittenFirst);
}

TEST(FaultableArrayWatch, FaultPrimitivesAreNotAccesses)
{
    FaultableArray a("w5", 8, 32);
    a.armWatch(1, 4);
    a.flipBit(1, 4);
    a.forceBit(1, 4, true);
    (void)a.peekBit(1, 4);
    EXPECT_EQ(a.watchState(), WatchState::Armed);
}

TEST(FaultableArrayWatch, ClearWatchDisarms)
{
    FaultableArray a("w6", 4, 16);
    a.armWatch(0, 0);
    a.clearWatch();
    (void)a.readBits(0, 0, 16);
    EXPECT_EQ(a.watchState(), WatchState::Idle);
}

// --- property test: random ops against a reference model ----------------

TEST(FaultableArrayProperty, MatchesReferenceModel)
{
    const std::size_t entries = 16, bits = 96;
    FaultableArray a("prop", entries, bits);
    std::vector<std::vector<bool>> model(entries,
                                         std::vector<bool>(bits, false));
    Rng rng(2026);

    for (int step = 0; step < 20000; ++step) {
        const auto entry = rng.nextBounded(entries);
        const auto op = rng.nextBounded(4);
        if (op == 0) { // write
            const auto width = 1 + rng.nextBounded(64);
            const auto bit = rng.nextBounded(bits - width + 1);
            const auto value = rng.next64();
            a.writeBits(entry, bit, width, value);
            for (std::size_t i = 0; i < width; ++i)
                model[entry][bit + i] = (value >> i) & 1;
        } else if (op == 1) { // read & compare
            const auto width = 1 + rng.nextBounded(64);
            const auto bit = rng.nextBounded(bits - width + 1);
            const auto got = a.readBits(entry, bit, width);
            std::uint64_t want = 0;
            for (std::size_t i = 0; i < width; ++i)
                want |= static_cast<std::uint64_t>(model[entry][bit + i])
                        << i;
            ASSERT_EQ(got, want) << "step " << step;
        } else if (op == 2) { // flip
            const auto bit = rng.nextBounded(bits);
            a.flipBit(entry, bit);
            model[entry][bit] = !model[entry][bit];
        } else { // force
            const auto bit = rng.nextBounded(bits);
            const bool v = rng.nextBool();
            a.forceBit(entry, bit, v);
            model[entry][bit] = v;
        }
    }
}

/** Captures every onAccess callback for inspection. */
struct RecordingObserver : dfi::AccessObserver
{
    struct Event
    {
        std::size_t entry, bit, width;
        bool write;
    };
    std::vector<Event> events;

    void
    onAccess(const FaultableArray &, std::size_t entry,
             std::size_t bit, std::size_t width, bool is_write) override
    {
        events.push_back({entry, bit, width, is_write});
    }
};

TEST(FaultableArray, ObserverSeesArchitecturalAccessesOnly)
{
    FaultableArray a("rf", 8, 32);
    RecordingObserver obs;
    a.setObserver(&obs);

    a.writeBits(2, 4, 8, 0xff);
    a.readBits(2, 4, 8);
    a.clearEntry(3); // whole-entry write
    a.flipBit(2, 5); // fault application: silent
    a.forceBit(2, 6, true);
    a.peekBit(2, 5);

    ASSERT_EQ(obs.events.size(), 3u);
    EXPECT_TRUE(obs.events[0].write);
    EXPECT_EQ(obs.events[0].entry, 2u);
    EXPECT_EQ(obs.events[0].bit, 4u);
    EXPECT_EQ(obs.events[0].width, 8u);
    EXPECT_FALSE(obs.events[1].write);
    EXPECT_TRUE(obs.events[2].write);
    EXPECT_EQ(obs.events[2].entry, 3u);
    EXPECT_EQ(obs.events[2].bit, 0u);
    EXPECT_EQ(obs.events[2].width, 32u);

    // Detaching stops the callbacks.
    a.setObserver(nullptr);
    a.readBits(2, 0, 1);
    EXPECT_EQ(obs.events.size(), 3u);
}

TEST(FaultableArray, CopiesDoNotCarryTheObserver)
{
    FaultableArray a("rf", 4, 16);
    RecordingObserver obs;
    a.setObserver(&obs);

    FaultableArray copied(a);
    copied.writeBits(1, 0, 4, 0xf);
    FaultableArray assigned("other", 4, 16);
    assigned = a;
    assigned.writeBits(1, 0, 4, 0xf);

    // Only the original reports; a checkpoint-restored core copy
    // must not feed events into the planner's tracer.
    EXPECT_TRUE(obs.events.empty());
    a.writeBits(1, 0, 4, 0xf);
    EXPECT_EQ(obs.events.size(), 1u);
    // And the copy kept the data it was copied from.
    EXPECT_EQ(copied.readBits(1, 0, 4), 0xfu);
}

} // namespace

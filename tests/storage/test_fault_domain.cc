/**
 * @file
 * Tests for the FaultDomain fault-application engine: Table III
 * semantics for transient, intermittent and permanent faults, plus
 * multi-fault runs.
 */

#include <gtest/gtest.h>

#include "storage/fault_domain.hh"

namespace
{

using dfi::FaultableArray;
using dfi::FaultDomain;
using dfi::FaultMask;
using dfi::FaultType;
using dfi::StructureId;

class FaultDomainTest : public ::testing::Test
{
  protected:
    FaultDomainTest()
        : rf_("rf", 16, 32), sq_("sq", 8, 32)
    {
        domain_.setResolver([this](StructureId id) -> FaultableArray * {
            switch (id) {
              case StructureId::IntRegFile:
                return &rf_;
              case StructureId::StoreQueue:
                return &sq_;
              default:
                return nullptr;
            }
        });
    }

    FaultMask
    mask(StructureId s, std::uint32_t entry, std::uint32_t bit,
         FaultType t, std::uint64_t cycle, std::uint64_t dur = 0,
         bool stuck = false)
    {
        FaultMask m;
        m.structure = s;
        m.entry = entry;
        m.bit = bit;
        m.type = t;
        m.cycle = cycle;
        m.duration = dur;
        m.stuckValue = stuck;
        return m;
    }

    FaultableArray rf_, sq_;
    FaultDomain domain_;
};

TEST_F(FaultDomainTest, TransientFlipsOnceAtCycle)
{
    domain_.arm(mask(StructureId::IntRegFile, 3, 7,
                     FaultType::Transient, 100));
    for (std::uint64_t c = 0; c < 100; ++c) {
        domain_.tick(c);
        EXPECT_FALSE(rf_.peekBit(3, 7)) << "cycle " << c;
    }
    domain_.tick(100);
    EXPECT_TRUE(rf_.peekBit(3, 7));
    EXPECT_TRUE(domain_.allTransientsApplied());
    // Does not flip again.
    domain_.tick(101);
    EXPECT_TRUE(rf_.peekBit(3, 7));
}

TEST_F(FaultDomainTest, TransientAppliesOnSkippedCycle)
{
    // If the simulator's tick granularity skips the exact cycle the
    // flip still happens at the first tick past it.
    domain_.arm(mask(StructureId::IntRegFile, 0, 0,
                     FaultType::Transient, 50));
    domain_.tick(49);
    EXPECT_FALSE(rf_.peekBit(0, 0));
    domain_.tick(52);
    EXPECT_TRUE(rf_.peekBit(0, 0));
}

TEST_F(FaultDomainTest, IntermittentStuckWindow)
{
    domain_.arm(mask(StructureId::IntRegFile, 1, 4,
                     FaultType::Intermittent, 10, 5, true));
    domain_.tick(9);
    EXPECT_FALSE(rf_.peekBit(1, 4));
    for (std::uint64_t c = 10; c < 15; ++c) {
        rf_.writeBit(1, 4, false); // writes cannot clear an active fault
        domain_.tick(c);
        EXPECT_TRUE(rf_.peekBit(1, 4)) << "cycle " << c;
    }
    // After the window a write sticks.
    rf_.writeBit(1, 4, false);
    domain_.tick(15);
    EXPECT_FALSE(rf_.peekBit(1, 4));
}

TEST_F(FaultDomainTest, PermanentStuckForever)
{
    domain_.arm(mask(StructureId::IntRegFile, 2, 31,
                     FaultType::Permanent, 0, 0, true));
    for (std::uint64_t c = 0; c < 1000; c += 97) {
        rf_.writeBit(2, 31, false);
        EXPECT_TRUE(domain_.tick(c));
        EXPECT_TRUE(rf_.peekBit(2, 31));
    }
    EXPECT_TRUE(domain_.allTransientsApplied()); // vacuously true
}

TEST_F(FaultDomainTest, PermanentStuckAtZeroHoldsAgainstWrites)
{
    rf_.writeBit(5, 3, true);
    domain_.arm(mask(StructureId::IntRegFile, 5, 3,
                     FaultType::Permanent, 0, 0, false));
    domain_.tick(0);
    EXPECT_FALSE(rf_.peekBit(5, 3));
    rf_.writeBit(5, 3, true);
    domain_.tick(1);
    EXPECT_FALSE(rf_.peekBit(5, 3));
}

TEST_F(FaultDomainTest, MultipleFaultsDifferentStructures)
{
    domain_.arm(mask(StructureId::IntRegFile, 0, 1,
                     FaultType::Transient, 5));
    domain_.arm(mask(StructureId::StoreQueue, 7, 30,
                     FaultType::Transient, 9));
    domain_.tick(5);
    EXPECT_TRUE(rf_.peekBit(0, 1));
    EXPECT_FALSE(sq_.peekBit(7, 30));
    EXPECT_FALSE(domain_.allTransientsApplied());
    domain_.tick(9);
    EXPECT_TRUE(sq_.peekBit(7, 30));
    EXPECT_TRUE(domain_.allTransientsApplied());
}

TEST_F(FaultDomainTest, MultiBitSameEntry)
{
    domain_.arm(mask(StructureId::IntRegFile, 4, 0,
                     FaultType::Transient, 2));
    domain_.arm(mask(StructureId::IntRegFile, 4, 1,
                     FaultType::Transient, 2));
    domain_.tick(2);
    EXPECT_EQ(rf_.readBits(4, 0, 2), 0b11u);
}

TEST_F(FaultDomainTest, TickReportsInactivityWhenDone)
{
    domain_.arm(mask(StructureId::IntRegFile, 0, 0,
                     FaultType::Transient, 3));
    EXPECT_TRUE(domain_.tick(0));
    EXPECT_TRUE(domain_.tick(3));
    EXPECT_FALSE(domain_.tick(4)); // nothing pending or active
}

TEST_F(FaultDomainTest, ResetDropsFaults)
{
    domain_.arm(mask(StructureId::IntRegFile, 0, 0,
                     FaultType::Permanent, 0, 0, true));
    domain_.reset();
    EXPECT_EQ(domain_.numArmed(), 0u);
    EXPECT_FALSE(domain_.tick(0));
    EXPECT_FALSE(rf_.peekBit(0, 0));
}

} // namespace

/**
 * @file
 * Tests for fault-mask serialization and structure naming.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "storage/fault.hh"

namespace
{

using dfi::FaultMask;
using dfi::FaultType;
using dfi::StructureId;

TEST(StructureId, NamesRoundTrip)
{
    const auto n =
        static_cast<std::size_t>(StructureId::NumStructures);
    for (std::size_t i = 0; i < n; ++i) {
        const auto id = static_cast<StructureId>(i);
        EXPECT_EQ(dfi::structureFromName(dfi::structureName(id)), id);
    }
}

TEST(StructureId, UnknownNameIsFatal)
{
    EXPECT_THROW(dfi::structureFromName("bogus"), dfi::FatalError);
}

TEST(FaultMask, LineRoundTripTransient)
{
    FaultMask m;
    m.runId = 17;
    m.core = 1;
    m.structure = StructureId::L1DData;
    m.entry = 511;
    m.bit = 301;
    m.type = FaultType::Transient;
    m.cycle = 123456789;
    EXPECT_EQ(FaultMask::fromLine(m.toLine()), m);
}

TEST(FaultMask, LineRoundTripIntermittent)
{
    FaultMask m;
    m.structure = StructureId::StoreQueue;
    m.type = FaultType::Intermittent;
    m.cycle = 1000;
    m.duration = 250;
    m.stuckValue = true;
    EXPECT_EQ(FaultMask::fromLine(m.toLine()), m);
}

TEST(FaultMask, LineRoundTripPermanent)
{
    FaultMask m;
    m.structure = StructureId::Btb;
    m.type = FaultType::Permanent;
    m.stuckValue = false;
    EXPECT_EQ(FaultMask::fromLine(m.toLine()), m);
}

TEST(FaultMask, MalformedLineIsFatal)
{
    EXPECT_THROW(FaultMask::fromLine("1 2 3"), dfi::FatalError);
    EXPECT_THROW(FaultMask::fromLine(""), dfi::FatalError);
    EXPECT_THROW(
        FaultMask::fromLine("1 0 int_regfile 0 0 nosuchtype 0 0 0"),
        dfi::FatalError);
}

TEST(FaultType, Names)
{
    EXPECT_EQ(dfi::faultTypeName(FaultType::Transient), "transient");
    EXPECT_EQ(dfi::faultTypeName(FaultType::Intermittent),
              "intermittent");
    EXPECT_EQ(dfi::faultTypeName(FaultType::Permanent), "permanent");
}

} // namespace

/**
 * @file
 * google-benchmark microbenchmarks for the framework's own hot paths:
 * simulator cycle throughput per model, FaultableArray access costs,
 * and checkpoint copy cost.  These are engineering benchmarks (not a
 * paper figure) used to keep campaign runtimes in check.
 */

#include <benchmark/benchmark.h>

#include "isa/codegen.hh"
#include "prog/benchmark.hh"
#include "storage/faultable_array.hh"
#include "uarch/core_config.hh"
#include "uarch/ooo_core.hh"

using namespace dfi;

namespace
{

const isa::Image &
microImage(isa::IsaKind kind)
{
    static const isa::Image x86 = ir::compileModule(
        prog::buildBenchmark("micro").module, isa::IsaKind::X86);
    static const isa::Image arm = ir::compileModule(
        prog::buildBenchmark("micro").module, isa::IsaKind::Arm);
    return kind == isa::IsaKind::X86 ? x86 : arm;
}

void
BM_CoreCycles(benchmark::State &state, uarch::CoreConfig cfg)
{
    uarch::scaleCaches(cfg, 0.0625);
    const isa::Image &image = microImage(cfg.isa);
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        uarch::OooCore core(cfg, image);
        while (core.tick()) {}
        cycles += core.cycle();
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

void
BM_FaultableArrayRead(benchmark::State &state)
{
    FaultableArray array("bench", 512, 512);
    std::uint64_t sum = 0;
    std::size_t i = 0;
    for (auto _ : state) {
        sum += array.readBits(i % 512, (i * 8) % 448, 32);
        ++i;
    }
    benchmark::DoNotOptimize(sum);
}

void
BM_FaultableArrayReadBytes(benchmark::State &state)
{
    FaultableArray array("bench", 512, 512);
    std::uint8_t line[64];
    std::size_t i = 0;
    for (auto _ : state) {
        array.readBytes(i % 512, 0, 64, line);
        benchmark::DoNotOptimize(line[0]);
        ++i;
    }
}

void
BM_CheckpointCopy(benchmark::State &state)
{
    auto cfg = uarch::marssX86Config();
    uarch::scaleCaches(cfg, 0.0625);
    uarch::OooCore core(cfg, microImage(isa::IsaKind::X86));
    for (int i = 0; i < 500; ++i)
        core.tick();
    for (auto _ : state) {
        uarch::OooCore copy = core;
        benchmark::DoNotOptimize(copy.cycle());
    }
}

} // namespace

BENCHMARK_CAPTURE(BM_CoreCycles, marss_x86, uarch::marssX86Config())
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CoreCycles, gem5_x86, uarch::gem5X86Config())
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CoreCycles, gem5_arm, uarch::gem5ArmConfig())
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FaultableArrayRead);
BENCHMARK(BM_FaultableArrayReadBytes);
BENCHMARK(BM_CheckpointCopy)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();

/**
 * @file
 * Regenerates Table IV: the injectable structures of each tool, with
 * live array geometries.
 */

#include <cstdio>

#include "common/stats.hh"
#include "figure_common.hh"
#include "inject/target.hh"
#include "isa/codegen.hh"
#include "prog/benchmark.hh"
#include "uarch/core_config.hh"

using namespace dfi;

int
main()
{
    const auto bench = prog::buildBenchmark("micro");
    const auto img_x86 =
        ir::compileModule(bench.module, isa::IsaKind::X86);
    uarch::OooCore mafin(uarch::marssX86Config(), img_x86);
    uarch::OooCore gefin(uarch::gem5X86Config(), img_x86);

    auto describe = [](uarch::OooCore &core,
                       const std::string &component) -> std::string {
        const auto structs = inject::resolveComponent(component, core);
        if (structs.empty())
            return "-";
        std::string out;
        for (StructureId id : structs) {
            auto *array = core.arrayFor(id);
            if (!out.empty())
                out += " + ";
            out += structureName(id) + " (" +
                   std::to_string(array->numEntries()) + "x" +
                   std::to_string(array->bitsPerEntry()) + "b)";
        }
        return out;
    };

    TextTable table;
    table.header({"Component", "MaFIN-x86", "GeFIN-x86"});
    for (const auto &component : inject::componentNames()) {
        table.row({component, describe(mafin, component),
                   describe(gefin, component)});
    }
    std::printf("Table IV: injectable structures per tool "
                "(live geometries, paper-scale caches)\n\n%s\n",
                table.render().c_str());
    bench::writeBenchJson("bench_table4_structures", table.toJson());
    std::printf(
        "MaFIN-only rows (prefetchers) are the Table IV \"New\"\n"
        "components; the unified lsq vs load_queue+store_queue split\n"
        "reproduces the Remark 1 difference.\n");
    return 0;
}

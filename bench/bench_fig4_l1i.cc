/**
 * @file
 * Regenerates Figure 4 of the paper: faulty behavior
 * classification for the L1I cache (instruction arrays),
 * for the ten benchmarks on MaFIN-x86, GeFIN-x86 and GeFIN-ARM.
 */

#include "figure_common.hh"

int
main()
{
    const auto report = dfi::bench::runFigure(
        "Figure 4: L1I cache (instruction arrays)", "l1i");
    dfi::bench::printFigure(report, "bench_fig4_l1i");
    return 0;
}

/**
 * @file
 * Structure-geometry sweep (the paper's footnote 4: "studies ... for
 * different sizes and organizations of the hardware structures").
 *
 * Sweeps the L1D capacity and associativity on both simulator models
 * and reports the measured vulnerability: larger caches hold data
 * longer (higher exposure per bit but lower occupancy), while higher
 * associativity changes the replacement behaviour.  This is the kind
 * of protection-dimensioning study the injectors exist to support.
 */

#include <cstdio>
#include <string>

#include "common/config.hh"
#include "common/stats.hh"
#include "inject/campaign.hh"

using namespace dfi;
using namespace dfi::inject;

namespace
{

double
measure(const char *core, std::uint32_t size_bytes, std::uint32_t ways,
        std::uint64_t injections)
{
    CampaignConfig cfg;
    cfg.component = "l1d";
    cfg.benchmark = "fft";
    cfg.coreName = core;
    cfg.numInjections = injections;
    cfg.configTweak = [size_bytes, ways](uarch::CoreConfig &c) {
        c.hier.l1d.sizeBytes = size_bytes;
        c.hier.l1d.ways = ways;
    };
    InjectionCampaign campaign(cfg);
    Parser parser;
    return campaign.run().classify(parser).vulnerability();
}

} // namespace

int
main()
{
    const std::uint64_t injections = envUint("DFI_INJECTIONS", 120);

    TextTable table;
    table.header({"L1D geometry", "MaFIN-x86 vuln", "GeFIN-x86 vuln"});
    struct Point
    {
        std::uint32_t size;
        std::uint32_t ways;
    };
    for (const Point p : {Point{1024, 2}, Point{2048, 4},
                          Point{4096, 4}, Point{8192, 4},
                          Point{4096, 2}, Point{4096, 8}}) {
        const double m = measure("marss-x86", p.size, p.ways,
                                 injections);
        const double g = measure("gem5-x86", p.size, p.ways,
                                 injections);
        table.row({std::to_string(p.size / 1024) + "KB " +
                       std::to_string(p.ways) + "-way",
                   formatFixed(m, 1) + "%", formatFixed(g, 1) + "%"});
        std::fprintf(stderr, "  %uKB/%u-way done\n", p.size / 1024,
                     p.ways);
    }

    std::printf("L1D geometry sweep (fft, %lu injections/cell)\n\n%s\n",
                static_cast<unsigned long>(injections),
                table.render().c_str());
    std::printf(
        "reading: growing capacity dilutes per-bit vulnerability once\n"
        "the working set fits (occupancy drops); the MaFIN-below-GeFIN\n"
        "ordering from Fig. 3 should persist across geometries.\n");
    return 0;
}

/**
 * @file
 * Regenerates Figure 2 of the paper: faulty behavior
 * classification for the integer physical register file,
 * for the ten benchmarks on MaFIN-x86, GeFIN-x86 and GeFIN-ARM.
 */

#include "figure_common.hh"

int
main()
{
    const auto report = dfi::bench::runFigure(
        "Figure 2: integer physical register file", "int_regfile");
    dfi::bench::printFigure(report, "bench_fig2_regfile");
    return 0;
}

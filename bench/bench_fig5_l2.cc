/**
 * @file
 * Regenerates Figure 5 of the paper: faulty behavior
 * classification for the L2 cache (data arrays),
 * for the ten benchmarks on MaFIN-x86, GeFIN-x86 and GeFIN-ARM.
 */

#include "figure_common.hh"

int
main()
{
    const auto report = dfi::bench::runFigure(
        "Figure 5: L2 cache (data arrays)", "l2");
    dfi::bench::printFigure(report, "bench_fig5_l2");
    return 0;
}

/**
 * @file
 * Reproduces the Section III.C claim: adding the cache data arrays to
 * MARSS (the MaFIN extension that makes cache fault injection
 * possible at all) costs roughly 40% of simulation throughput,
 * dependent on the memory intensiveness of the program.
 *
 * Measured as wall-clock simulation throughput (simulated cycles per
 * host second) of the marss-x86 model with the data arrays modelled
 * vs the original memory-only behaviour.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/stats.hh"
#include "isa/codegen.hh"
#include "prog/benchmark.hh"
#include "uarch/core_config.hh"
#include "uarch/ooo_core.hh"

using namespace dfi;

namespace
{

double
throughput(const uarch::CoreConfig &cfg, const isa::Image &image)
{
    // Best of three passes to suppress host scheduling noise.
    double best = 0.0;
    for (int pass = 0; pass < 3; ++pass) {
        uarch::OooCore core(cfg, image);
        const auto start = std::chrono::steady_clock::now();
        while (core.tick()) {}
        const auto end = std::chrono::steady_clock::now();
        const double seconds =
            std::chrono::duration<double>(end - start).count();
        best = std::max(best,
                        static_cast<double>(core.cycle()) / seconds);
    }
    return best;
}

} // namespace

int
main()
{
    TextTable table;
    table.header({"benchmark", "with data arrays (Mc/s)",
                  "original MARSS (Mc/s)", "throughput cost"});

    double total_with = 0, total_without = 0;
    for (const auto &name :
         {"sha", "fft", "smooth", "qsort", "caes", "djpeg"}) {
        const auto bench = prog::buildBenchmark(name);

        uarch::CoreConfig with_arrays = uarch::marssX86Config();
        uarch::CoreConfig original = uarch::marssX86Config();
        original.hier.modelDataArrays = false;

        const auto image =
            ir::compileModule(bench.module, with_arrays.isa);
        const double t_with = throughput(with_arrays, image);
        const double t_orig = throughput(original, image);
        total_with += t_with;
        total_without += t_orig;

        table.row({name, formatFixed(t_with / 1e6, 2),
                   formatFixed(t_orig / 1e6, 2),
                   formatFixed(100.0 * (1.0 - t_with / t_orig), 1) +
                       "%"});
    }

    std::printf("MaFIN cache data-array extension cost "
                "(Section III.C; paper: ~40%%, workload dependent)\n\n"
                "%s\n",
                table.render().c_str());
    std::printf("average throughput cost: %.1f%%\n",
                100.0 * (1.0 - total_with / total_without));
    return 0;
}

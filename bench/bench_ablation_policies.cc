/**
 * @file
 * Ablation of the MaFIN-vs-GeFIN divergence mechanisms (the design
 * choices DESIGN.md calls out).
 *
 * The paper *attributes* the L1D gap (Remark 3) to two MARSS-specific
 * behaviours — aggressive early load issue and the QEMU hypervisor's
 * cache bypass — and the LSQ gap (Remark 1) to the unified queue
 * holding load data.  Because this reproduction implements each
 * mechanism as an explicit policy, we can do what the paper could
 * not: turn them off one at a time on the MARSS model and measure
 * each one's contribution directly.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "inject/campaign.hh"

using namespace dfi;
using namespace dfi::inject;

namespace
{

double
vulnerability(const char *component, const char *benchmark,
              const char *core, std::uint64_t injections,
              std::function<void(uarch::CoreConfig &)> tweak)
{
    CampaignConfig cfg;
    cfg.component = component;
    cfg.benchmark = benchmark;
    cfg.coreName = core;
    cfg.numInjections = injections;
    cfg.configTweak = std::move(tweak);
    InjectionCampaign campaign(cfg);
    Parser parser;
    return campaign.run().classify(parser).vulnerability();
}

} // namespace

int
main()
{
    const std::uint64_t injections = envUint("DFI_INJECTIONS", 120);
    const char *benchmarks[] = {"fft", "caes", "smooth"};

    struct Ablation
    {
        const char *label;
        const char *component;
        std::function<void(uarch::CoreConfig &)> tweak;
    };
    const Ablation ablations[] = {
        {"l1d baseline (all policies)", "l1d", {}},
        {"- hypervisor cache bypass", "l1d",
         [](uarch::CoreConfig &c) { c.hypervisor = false; }},
        {"- aggressive load issue", "l1d",
         [](uarch::CoreConfig &c) { c.aggressiveLoadIssue = false; }},
        {"- L1 prefetchers", "l1d",
         [](uarch::CoreConfig &c) {
             c.hier.prefetchL1D = false;
             c.hier.prefetchL1I = false;
         }},
        {"lsq baseline", "lsq", {}},
        {"- unified-LSQ load data", "lsq",
         [](uarch::CoreConfig &c) { c.lsqHoldsLoadData = false; }},
        {"l1i baseline", "l1i", {}},
        {"- dense assertion checking", "l1i",
         [](uarch::CoreConfig &c) {
             c.assertPolicy = uarch::AssertPolicy::Sparse;
         }},
    };

    TextTable table;
    std::vector<std::string> header = {"ablation", "component"};
    for (const char *bench : benchmarks)
        header.push_back(bench);
    table.header(std::move(header));

    for (const Ablation &ablation : ablations) {
        std::vector<std::string> row = {ablation.label,
                                        ablation.component};
        for (const char *bench : benchmarks) {
            const double v =
                vulnerability(ablation.component, bench, "marss-x86",
                              injections, ablation.tweak);
            row.push_back(formatFixed(v, 1) + "%");
            std::fprintf(stderr, "  [%s] %s done\n", ablation.label,
                         bench);
        }
        table.row(std::move(row));
    }

    std::printf("Policy ablation on the MARSS model "
                "(vulnerability %%, %lu injections/cell)\n\n%s\n",
                static_cast<unsigned long>(injections),
                table.render().c_str());
    std::printf(
        "reading: removing the hypervisor bypass should RAISE the\n"
        "L1D vulnerability toward the gem5 model's (Remark 3);\n"
        "removing unified-LSQ load data should LOWER the lsq number\n"
        "toward GeFIN's (Remark 1); removing dense asserts moves\n"
        "Assert outcomes into Crash without changing vulnerability\n"
        "much (Remark 8).\n");
    return 0;
}

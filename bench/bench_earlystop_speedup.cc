/**
 * @file
 * Reproduces the Section III.B speed claim: the two early-stop
 * optimizations — (i) stop when the fault lands in an invalid/unused
 * entry, (ii) stop when the faulted bit is overwritten before being
 * read — cut 30-70% of the per-run simulation cycles.
 *
 * Measured as simulated faulty cycles with the optimizations enabled
 * vs disabled, same masks, over several structure/benchmark cells.
 */

#include <cstdio>
#include <string>

#include "common/config.hh"
#include "common/stats.hh"
#include "inject/campaign.hh"

using namespace dfi;
using namespace dfi::inject;

int
main()
{
    const std::uint64_t injections = envUint("DFI_INJECTIONS", 80);

    struct Cell
    {
        const char *component;
        const char *benchmark;
        const char *core;
    };
    const Cell cells[] = {
        {"l1d", "sha", "marss-x86"},
        {"l1d", "fft", "gem5-x86"},
        {"int_regfile", "caes", "marss-x86"},
        {"l1i", "qsort", "gem5-x86"},
        {"l2", "fft", "gem5-arm"},
        {"lsq", "smooth", "marss-x86"},
    };

    TextTable table;
    table.header({"component", "benchmark", "core", "cycles (opt on)",
                  "cycles (opt off)", "saving"});

    double total_on = 0, total_off = 0;
    for (const Cell &cell : cells) {
        CampaignConfig cfg;
        cfg.component = cell.component;
        cfg.benchmark = cell.benchmark;
        cfg.coreName = cell.core;
        cfg.numInjections = injections;

        InjectionCampaign fast(cfg);
        const auto on = fast.run();

        cfg.earlyStopInvalidEntry = false;
        cfg.earlyStopOverwrite = false;
        InjectionCampaign slow(cfg);
        const auto off = slow.run();

        const double saving =
            100.0 * (1.0 - static_cast<double>(on.simulatedFaultyCycles) /
                               static_cast<double>(
                                   off.simulatedFaultyCycles));
        total_on += static_cast<double>(on.simulatedFaultyCycles);
        total_off += static_cast<double>(off.simulatedFaultyCycles);
        table.row({cell.component, cell.benchmark, cell.core,
                   std::to_string(on.simulatedFaultyCycles),
                   std::to_string(off.simulatedFaultyCycles),
                   formatFixed(saving, 1) + "%"});
    }

    std::printf("Early-stop optimization speedup (Section III.B; "
                "paper claims 30-70%% per run)\n\n%s\n",
                table.render().c_str());
    std::printf("overall saving: %.1f%%\n",
                100.0 * (1.0 - total_on / total_off));
    return 0;
}

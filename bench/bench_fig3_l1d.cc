/**
 * @file
 * Regenerates Figure 3 of the paper: faulty behavior
 * classification for the L1D cache (data arrays),
 * for the ten benchmarks on MaFIN-x86, GeFIN-x86 and GeFIN-ARM.
 */

#include "figure_common.hh"

int
main()
{
    const auto report = dfi::bench::runFigure(
        "Figure 3: L1D cache (data arrays)", "l1d");
    dfi::bench::printFigure(report, "bench_fig3_l1d");
    return 0;
}

/**
 * @file
 * Parallel-scheduler scaling: campaign wall-clock vs worker count.
 *
 * The paper parallelized its campaigns across ~10 workstations for a
 * month; the execution engine parallelizes across threads with a
 * bit-reproducibility guarantee.  This bench runs one register-file
 * campaign at jobs ∈ {1, 2, 4, 8}, times the injection phase (golden
 * run and checkpointing are shared setup, excluded), verifies that
 * every job count classifies identically, and writes the table to
 * results/bench_parallel_scaling.txt.
 *
 * A JSON twin lands next to the text table (writeBenchJson) with a
 * per-stage breakdown: cumulative restore / simulate microseconds
 * across all workers plus the wall-clock commit overhead the
 * serialized telemetry path adds on top of the simulation work.
 *
 * Environment knobs:
 *   DFI_INJECTIONS   campaign size (default 400)
 *   DFI_OUT          output path (default
 *                    results/bench_parallel_scaling.txt)
 *   DFI_TELEMETRY_DIR  JSON twin directory (default results)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "figure_common.hh"
#include "inject/campaign.hh"
#include "inject/executor.hh"
#include "inject/parser.hh"

using namespace dfi;
using namespace dfi::inject;

int
main()
{
    const std::uint64_t injections = envUint("DFI_INJECTIONS", 400);
    const char *out_env = std::getenv("DFI_OUT");
    const std::string out_path =
        out_env != nullptr && *out_env != '\0'
            ? out_env
            : "results/bench_parallel_scaling.txt";

    CampaignConfig base;
    base.component = "int_regfile";
    base.benchmark = "sha";
    base.coreName = "marss-x86";
    base.numInjections = injections;
    // This bench measures how the execution engine scales, so every
    // planned run must actually simulate: equivalence pruning would
    // classify most register-file sites without executing them.
    base.prune = false;

    TextTable table;
    table.header({"jobs", "wall (s)", "speedup", "runs/s",
                  "identical"});

    Parser parser;
    double serial_seconds = 0.0;
    std::string reference_counts;
    json::Value entries = json::Value::array();
    for (const std::uint32_t jobs : {1u, 2u, 4u, 8u}) {
        CampaignConfig cfg = base;
        cfg.jobs = jobs;
        InjectionCampaign campaign(cfg);
        campaign.golden(); // shared setup, excluded from the timing

        const auto start = std::chrono::steady_clock::now();
        const CampaignResult result = campaign.run();
        const auto end = std::chrono::steady_clock::now();
        const double seconds =
            std::chrono::duration<double>(end - start).count();
        if (jobs == 1)
            serial_seconds = seconds;

        // The determinism contract: every job count must classify
        // exactly like the serial baseline.
        const ClassCounts counts = result.classify(parser);
        std::string rendered;
        for (std::size_t c = 0; c < kNumOutcomeClasses; ++c) {
            rendered +=
                std::to_string(counts.get(static_cast<OutcomeClass>(c)));
            rendered += ',';
        }
        if (jobs == 1)
            reference_counts = rendered;
        const bool identical = rendered == reference_counts;
        if (!identical)
            warn("jobs=%s diverged from the serial classification",
                 jobs);

        table.row({std::to_string(jobs), formatFixed(seconds, 2),
                   formatFixed(serial_seconds / seconds, 2) + "x",
                   formatFixed(static_cast<double>(injections) /
                                   seconds,
                               1),
                   identical ? "yes" : "NO"});
        std::fprintf(stderr, "  jobs=%u: %.2fs\n", jobs, seconds);

        // Stage breakdown.  restore/simulate are cumulative across
        // all workers; commit is the wall-clock overhead the
        // serialized telemetry path adds on top of the per-worker
        // simulation share.
        const double wall_us = seconds * 1e6;
        const double worker_us =
            static_cast<double>(result.totalWallMicros) / jobs;
        json::Value stages = json::Value::object();
        stages.set("restore_us",
                   json::Value::unsignedInt(result.totalRestoreMicros));
        stages.set("simulate_us",
                   json::Value::unsignedInt(
                       result.totalWallMicros -
                       std::min(result.totalRestoreMicros,
                                result.totalWallMicros)));
        stages.set("commit_us",
                   json::Value::number(
                       std::max(0.0, wall_us - worker_us)));
        json::Value entry = json::Value::object();
        entry.set("jobs", json::Value::unsignedInt(jobs));
        entry.set("wall_us", json::Value::number(wall_us));
        entry.set("speedup",
                  json::Value::number(serial_seconds / seconds));
        entry.set("runs_per_s",
                  json::Value::number(
                      static_cast<double>(injections) / seconds));
        entry.set("identical", json::Value::boolean(identical));
        entry.set("stages", std::move(stages));
        entries.push(std::move(entry));
    }

    std::string report =
        "Parallel campaign scaling (" + base.component + " / " +
        base.benchmark + " / " + base.coreName + ", " +
        std::to_string(injections) + " injections, " +
        std::to_string(resolveJobs(0)) + " hardware threads)\n\n" +
        table.render();

    std::printf("%s", report.c_str());
    std::ofstream out(out_path);
    if (out) {
        out << report;
        std::fprintf(stderr, "written to %s\n", out_path.c_str());
    } else {
        warn("cannot write %s; run from the repository root",
             out_path);
    }

    json::Value doc = json::Value::object();
    doc.set("kind", json::Value::string("dfi-bench"));
    doc.set("bench", json::Value::string("parallel_scaling"));
    doc.set("component", json::Value::string(base.component));
    doc.set("benchmark", json::Value::string(base.benchmark));
    doc.set("core", json::Value::string(base.coreName));
    doc.set("injections", json::Value::unsignedInt(injections));
    doc.set("hardware_threads",
            json::Value::unsignedInt(resolveJobs(0)));
    doc.set("entries", std::move(entries));
    dfi::bench::writeBenchJson("bench_parallel_scaling", doc);
    return 0;
}

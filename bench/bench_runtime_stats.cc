/**
 * @file
 * Regenerates the per-benchmark runtime statistics the paper uses to
 * explain the divergences between the tools (Remarks 3, 5, 6, 7, 10,
 * 11): issued vs committed loads, L1D/L2 hit and miss counts,
 * replacements, and branch mispredictions, for every benchmark on the
 * three setups.
 */

#include <cstdio>
#include <string>

#include "common/stats.hh"
#include "isa/codegen.hh"
#include "prog/benchmark.hh"
#include "uarch/core_config.hh"
#include "uarch/ooo_core.hh"

using namespace dfi;

int
main()
{
    TextTable table;
    table.header({"benchmark", "setup", "issued ld", "commit ld",
                  "ld ratio", "l1d rd hit%", "l1d wr hit%", "l1d repl",
                  "l1i repl", "l2 wr miss", "mispredicts"});

    for (const auto &name : prog::benchmarkNames()) {
        const auto bench = prog::buildBenchmark(name);
        struct Setup
        {
            const char *tag;
            uarch::CoreConfig cfg;
        };
        Setup setups[] = {{"M-x86", uarch::marssX86Config()},
                          {"G-x86", uarch::gem5X86Config()},
                          {"G-ARM", uarch::gem5ArmConfig()}};
        for (Setup &setup : setups) {
            uarch::scaleCaches(setup.cfg, 0.0625);
            const auto image =
                ir::compileModule(bench.module, setup.cfg.isa,
                                  0x200000);
            uarch::OooCore core(setup.cfg, image);
            while (core.tick()) {}
            const StatSet &s = core.stats();
            const double ld_ratio =
                s.ratio("issued_loads", "committed_loads");
            table.row(
                {name, setup.tag,
                 std::to_string(s.get("issued_loads")),
                 std::to_string(s.get("committed_loads")),
                 formatFixed(ld_ratio, 2),
                 formatFixed(100 * s.ratio("l1d.read_hits",
                                           "l1d.read_accesses"),
                             1),
                 formatFixed(100 * s.ratio("l1d.write_hits",
                                           "l1d.write_accesses"),
                             1),
                 std::to_string(s.get("l1d.replacements")),
                 std::to_string(s.get("l1i.replacements")),
                 std::to_string(s.get("l2.write_misses")),
                 std::to_string(s.get("branch_mispredictions"))});
        }
    }

    std::printf("Per-benchmark runtime statistics (divergence "
                "evidence for Remarks 3-11)\n\n%s\n",
                table.render().c_str());
    std::printf(
        "key expectations:\n"
        " - issued/committed load ratio > 1 on M-x86 (aggressive issue\n"
        "   + replays, Remark 3) and ~1.0 on G-x86/G-ARM\n"
        " - ARM vs x86 memory-access-pattern differences (Remarks 5, 7)\n");
    return 0;
}

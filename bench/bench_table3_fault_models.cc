/**
 * @file
 * Regenerates Table III: the three fault models, demonstrated live.
 *
 * For each model the bench injects a directed fault into the integer
 * register file of a running MaFIN campaign and shows the model's
 * defining behaviour: a transient flips once and can be overwritten,
 * an intermittent holds its value for exactly its window, a permanent
 * holds forever.
 */

#include <cstdio>

#include "common/stats.hh"
#include "figure_common.hh"
#include "inject/campaign.hh"
#include "inject/parser.hh"
#include "storage/fault_domain.hh"
#include "storage/faultable_array.hh"

using namespace dfi;
using namespace dfi::inject;

namespace
{

/** Demonstrate the raw model semantics on a bare array. */
std::string
demoSemantics(FaultType type)
{
    FaultableArray array("demo", 4, 32);
    FaultDomain domain;
    domain.setResolver(
        [&array](StructureId) -> FaultableArray * { return &array; });
    FaultMask mask;
    mask.structure = StructureId::IntRegFile;
    mask.entry = 1;
    mask.bit = 5;
    mask.type = type;
    mask.cycle = 10;
    mask.duration = 5;
    mask.stuckValue = true;
    domain.arm(mask);

    std::string timeline;
    for (std::uint64_t cycle = 8; cycle <= 18; ++cycle) {
        domain.tick(cycle);
        if (cycle == 12)
            array.writeBit(1, 5, false); // program writes a zero
        timeline += array.peekBit(1, 5) ? '1' : '0';
    }
    return timeline; // cycles 8..18
}

} // namespace

int
main()
{
    TextTable table;
    table.header({"Fault model", "Paper definition",
                  "bit value, cycles 8..18 (inject@10, write-0@12)"});
    table.row({"transient",
               "bit flipped at a cycle; position/cycle arbitrary",
               demoSemantics(FaultType::Transient)});
    table.row({"intermittent",
               "bit stuck at 0/1 for a duration from a start cycle",
               demoSemantics(FaultType::Intermittent)});
    table.row({"permanent", "bit permanently stuck at 0/1",
               demoSemantics(FaultType::Permanent)});
    std::printf("Table III: fault models (live semantics demo)\n\n%s\n",
                table.render().c_str());

    // And a small live campaign per model on the real injector.
    Parser parser;
    json::Value campaigns = json::Value::array();
    for (auto [name, type] :
         {std::pair{"transient", FaultType::Transient},
          std::pair{"intermittent", FaultType::Intermittent},
          std::pair{"permanent", FaultType::Permanent}}) {
        CampaignConfig cfg;
        cfg.benchmark = "micro";
        cfg.coreName = "marss-x86";
        cfg.component = "int_regfile";
        cfg.faultType = type;
        cfg.numInjections = 60;
        InjectionCampaign campaign(cfg);
        const auto result = campaign.run();
        const auto counts = result.classify(parser);
        std::printf("%-13s on int RF (micro, 60 runs): "
                    "masked %.1f%%, vulnerable %.1f%%\n",
                    name, counts.percent(OutcomeClass::Masked),
                    counts.vulnerability());
        json::Value entry = json::Value::object();
        entry.set("fault_type", json::Value::string(name));
        entry.set("runs",
                  json::Value::unsignedInt(counts.total()));
        entry.set("masked_percent",
                  json::Value::number(
                      counts.percent(OutcomeClass::Masked)));
        entry.set("vulnerability_percent",
                  json::Value::number(counts.vulnerability()));
        campaigns.push(std::move(entry));
    }
    std::printf("\nexpectation: permanent >= intermittent >= transient "
                "vulnerability (longer residency, larger effect)\n");

    json::Value doc = json::Value::object();
    doc.set("semantics", table.toJson());
    doc.set("campaigns", std::move(campaigns));
    bench::writeBenchJson("bench_table3_fault_models", std::move(doc));
    return 0;
}

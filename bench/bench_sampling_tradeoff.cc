/**
 * @file
 * Reproduces the Section IV.A statistical-sampling numbers: 1843
 * injections at 99% confidence / 3% margin, 663 at a 5% margin
 * (about 3x fewer, hence ~3x faster campaigns), and the 2.88% margin
 * achieved by the paper's rounded-up 2000 runs — then *measures* the
 * campaign-time proportionality on a live cell.
 */

#include <chrono>
#include <cstdio>

#include "common/stats.hh"
#include "inject/campaign.hh"
#include "inject/sampling.hh"

using namespace dfi;
using namespace dfi::inject;

int
main()
{
    TextTable table;
    table.header({"confidence", "margin", "required injections"});
    struct Row
    {
        double confidence, margin;
    };
    for (const Row r : {Row{0.99, 0.03}, Row{0.99, 0.05},
                        Row{0.95, 0.03}, Row{0.95, 0.05},
                        Row{0.99, 0.01}}) {
        table.row({formatFixed(100 * r.confidence, 0) + "%",
                   formatFixed(100 * r.margin, 0) + "%",
                   std::to_string(
                       requiredInjections(0, r.confidence, r.margin))});
    }
    std::printf("Statistical fault sampling (Leveugle DATE'09, "
                "Section IV.A)\n\n%s\n",
                table.render().c_str());

    const auto n3 = requiredInjections(0, 0.99, 0.03);
    const auto n5 = requiredInjections(0, 0.99, 0.05);
    std::printf("paper check: %lu runs @3%% vs %lu runs @5%% -> "
                "%.2fx fewer (paper: ~3x faster campaigns)\n",
                static_cast<unsigned long>(n3),
                static_cast<unsigned long>(n5),
                static_cast<double>(n3) / static_cast<double>(n5));
    std::printf("paper check: 2000 runs achieve %.2f%% margin at 99%% "
                "confidence (paper: 2.88%%)\n\n",
                100.0 * achievedMargin(2000, 0, 0.99));

    // Measured proportionality on a live cell (scaled counts).
    auto time_campaign = [](std::uint64_t runs) {
        CampaignConfig cfg;
        cfg.benchmark = "micro";
        cfg.coreName = "gem5-x86";
        cfg.component = "l1d";
        cfg.numInjections = runs;
        InjectionCampaign campaign(cfg);
        const auto start = std::chrono::steady_clock::now();
        (void)campaign.run();
        const auto end = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(end - start).count();
    };
    const std::uint64_t big = 553, small = 199; // 1843/663 scaled /3.33
    const double t_big = time_campaign(big);
    const double t_small = time_campaign(small);
    std::printf("measured: %lu-run campaign %.2fs vs %lu-run %.2fs -> "
                "%.2fx (expected ~%.2fx)\n",
                static_cast<unsigned long>(big), t_big,
                static_cast<unsigned long>(small), t_small,
                t_big / t_small,
                static_cast<double>(big) / static_cast<double>(small));
    return 0;
}

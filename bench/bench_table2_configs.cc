/**
 * @file
 * Regenerates Table II: the three simulator configurations.
 *
 * Values are read from the live CoreConfig factories (not hard-coded
 * strings), so this bench doubles as a check that the implemented
 * models still match the paper's parameters.
 */

#include <cstdio>
#include <string>

#include "common/stats.hh"
#include "figure_common.hh"
#include "uarch/core_config.hh"

using namespace dfi;

int
main()
{
    TextTable table;
    table.header({"Parameter", "MARSS/x86", "Gem5/x86", "Gem5/ARM"});

    const uarch::CoreConfig m = uarch::marssX86Config();
    const uarch::CoreConfig gx = uarch::gem5X86Config();
    const uarch::CoreConfig ga = uarch::gem5ArmConfig();

    auto row = [&](const std::string &name, auto get) {
        table.row({name, get(m), get(gx), get(ga)});
    };

    row("Pipeline", [](const uarch::CoreConfig &) {
        return std::string("OoO");
    });
    row("Physical int registers", [](const uarch::CoreConfig &c) {
        return std::to_string(c.numPhysInt);
    });
    row("Physical FP registers", [](const uarch::CoreConfig &c) {
        return std::to_string(c.numPhysFp);
    });
    row("Issue Queue entries", [](const uarch::CoreConfig &c) {
        return std::to_string(c.iqEntries);
    });
    row("Load/Store Queue", [](const uarch::CoreConfig &c) {
        return c.unifiedLsq
                   ? std::to_string(c.lsqEntries) + " (unified)"
                   : std::to_string(c.lqEntries) + " (load)/" +
                         std::to_string(c.sqEntries) + " (store)";
    });
    row("ROB entries", [](const uarch::CoreConfig &c) {
        return std::to_string(c.robEntries);
    });
    row("Int ALUs", [](const uarch::CoreConfig &c) {
        return std::to_string(c.intAlus);
    });
    row("Complex ALUs", [](const uarch::CoreConfig &c) {
        return std::to_string(c.complexAlus);
    });
    row("AGUs (mem ports)", [](const uarch::CoreConfig &c) {
        return std::to_string(c.agus);
    });
    auto cache = [](const uarch::CacheConfig &cc) {
        return std::to_string(cc.sizeBytes / 1024) + "KB, " +
               std::to_string(cc.lineBytes) + "B line, " +
               std::to_string(cc.sizeBytes /
                              (cc.lineBytes * cc.ways)) +
               " sets, " + std::to_string(cc.ways) + "-way";
    };
    row("L1 Instruction Cache", [&](const uarch::CoreConfig &c) {
        return cache(c.hier.l1i);
    });
    row("L1 Data Cache", [&](const uarch::CoreConfig &c) {
        return cache(c.hier.l1d);
    });
    row("L2 Cache", [&](const uarch::CoreConfig &c) {
        return cache(c.hier.l2);
    });
    row("Branch predictor", [](const uarch::CoreConfig &c) {
        return std::string("Tournament (chooser by ") +
               (c.chooserIndex == uarch::ChooserIndex::ByAddress
                    ? "address)"
                    : "history)");
    });
    row("BTB", [](const uarch::CoreConfig &c) {
        std::string s = std::to_string(c.btb.entries) + " entries, " +
                        std::to_string(c.btb.ways) + "-way";
        if (c.splitBtb) {
            s += " + indirect " +
                 std::to_string(c.btbIndirect.entries) + " entries, " +
                 std::to_string(c.btbIndirect.ways) + "-way";
        }
        return s;
    });
    row("RAS", [](const uarch::CoreConfig &c) {
        return std::to_string(c.rasEntries) + " entries";
    });

    std::printf("Table II: simulator configurations "
                "(live CoreConfig values)\n\n%s\n",
                table.render().c_str());
    bench::writeBenchJson("bench_table2_configs", table.toJson());

    std::printf(
        "Campaign note: the evaluation campaigns run these models at\n"
        "cacheScale=1/16 (see DESIGN.md, Substitutions): caches and\n"
        "workload footprints are scaled together so occupancy matches\n"
        "the paper's testbed.\n");
    return 0;
}

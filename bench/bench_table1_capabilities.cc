/**
 * @file
 * Regenerates Table I: the capability matrix of the two injectors.
 *
 * Every row is *probed* against the live tools rather than asserted:
 * structures by resolving components on each simulator, fault models
 * by arming each type in a FaultDomain, full-system behaviour by
 * checking the outcome taxonomy, and the ISA comparison by
 * instantiating GeFIN on both ISAs.
 */

#include <cstdio>

#include "common/stats.hh"
#include "figure_common.hh"
#include "inject/target.hh"
#include "isa/codegen.hh"
#include "prog/benchmark.hh"
#include "storage/fault_domain.hh"
#include "uarch/core_config.hh"

using namespace dfi;

int
main()
{
    const auto bench = prog::buildBenchmark("micro");
    const auto img_x86 =
        ir::compileModule(bench.module, isa::IsaKind::X86);
    const auto img_arm =
        ir::compileModule(bench.module, isa::IsaKind::Arm);

    uarch::OooCore mafin(uarch::marssX86Config(), img_x86);
    uarch::OooCore gefin_x86(uarch::gem5X86Config(), img_x86);
    uarch::OooCore gefin_arm(uarch::gem5ArmConfig(), img_arm);

    // Probe structure coverage.
    int mafin_components = 0, gefin_components = 0;
    for (const auto &component : inject::componentNames()) {
        if (!inject::resolveComponent(component, mafin).empty())
            ++mafin_components;
        if (!inject::resolveComponent(component, gefin_x86).empty())
            ++gefin_components;
    }

    // Probe fault models.
    auto probe_models = [](uarch::OooCore &core) {
        dfi::FaultDomain domain;
        domain.setResolver(
            [&core](StructureId id) { return core.arrayFor(id); });
        for (auto type : {FaultType::Transient, FaultType::Intermittent,
                          FaultType::Permanent}) {
            FaultMask mask;
            mask.structure = StructureId::IntRegFile;
            mask.type = type;
            mask.cycle = 1;
            mask.duration = 2;
            domain.arm(mask);
        }
        domain.tick(1);
        return domain.numArmed() == 3;
    };

    TextTable table;
    table.header({"Aspect", "State-of-the-art", "This work (probed)"});
    table.row({"All major uarch structures",
               "none ([14]: int RF+ROB; [48]: no caches)",
               "MaFIN: " + std::to_string(mafin_components) +
                   " components; GeFIN: " +
                   std::to_string(gefin_components) + " components"});
    table.row({"ISA comparison (x86 vs ARM)", "none",
               std::string("GeFIN: ") + gefin_x86.config().name +
                   " + " + gefin_arm.config().name});
    table.row({"OoO uarch comparison", "none",
               "MaFIN(ROB " +
                   std::to_string(mafin.config().robEntries) +
                   ") vs GeFIN(ROB " +
                   std::to_string(gefin_x86.config().robEntries) +
                   ")"});
    table.row({"Same-ISA simulator comparison", "none",
               "MaFIN-x86 vs GeFIN-x86"});
    table.row({"Full-system injection", "[32] [48] [21] [22]",
               "both: process/system/simulator crash taxonomy"});
    table.row({"New structures added", "none",
               std::string("MaFIN prefetchers: ") +
                   (mafin.arrayFor(StructureId::PrefetchL1D) != nullptr
                        ? "present"
                        : "MISSING")});
    table.row({"Transient/intermittent/permanent",
               "[48] (partial)",
               std::string("both tools: ") +
                   (probe_models(mafin) && probe_models(gefin_x86)
                        ? "all three armed OK"
                        : "PROBE FAILED")});

    std::printf("Table I: state-of-the-art vs this work\n\n%s\n",
                table.render().c_str());
    bench::writeBenchJson("bench_table1_capabilities",
                          table.toJson());
    return 0;
}

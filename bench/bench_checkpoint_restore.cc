/**
 * @file
 * Measures the checkpoint fast path: restoring a run from a COW
 * snapshot costs O(state the run touches), not O(core size).
 *
 * For each cache scale the bench prepares a campaign (one golden
 * pass captures the snapshots), then times
 *   - copy-only restores (clone a worker core off a snapshot), and
 *   - restore + K ticks (the pages a short run actually dirties),
 * against the conservative per-snapshot state bound.  The copy-only
 * restore stays in the microseconds while the state bound sits in
 * the MiB — the copy is a page-table clone, and only the pages a
 * run writes ever materialise, so the gap between the two timed
 * columns is the simulation itself plus its dirtied pages.
 *
 * Environment knobs:
 *   DFI_RESTORE_REPS  timed restores per cell (default 50)
 *   DFI_RESTORE_TICKS ticks after restore in the touch case
 *                     (default 200)
 */

#include <chrono>
#include <cstdio>

#include "common/config.hh"
#include "common/stats.hh"
#include "figure_common.hh"
#include "inject/campaign.hh"
#include "uarch/ooo_core.hh"

using namespace dfi;
using namespace dfi::inject;

namespace
{

double
micros(std::chrono::steady_clock::duration elapsed)
{
    return std::chrono::duration<double, std::micro>(elapsed).count();
}

} // namespace

int
main()
{
    const std::uint64_t reps = envUint("DFI_RESTORE_REPS", 50);
    const std::uint64_t ticks = envUint("DFI_RESTORE_TICKS", 200);
    const double scales[] = {0.0625, 0.25, 1.0};

    TextTable table;
    table.header({"cache scale", "state bound", "snapshots",
                  "restore", "restore+tick"});
    json::Value rows = json::Value::array();

    for (const double scale : scales) {
        CampaignConfig cfg;
        cfg.coreName = "marss-x86";
        cfg.benchmark = "micro";
        cfg.component = "l1d";
        cfg.cacheScale = scale;
        InjectionCampaign campaign(cfg);
        (void)campaign.golden();
        const CheckpointStore &store = campaign.checkpoints();
        const std::uint64_t mid_cycle =
            store.cycles().back() / 2 + 1;

        // Copy-only restore: clone a core off the snapshot nearest
        // the middle of the run; the single readBit defeats
        // dead-copy elimination without touching a page.
        std::uint64_t sink = 0;
        auto started = std::chrono::steady_clock::now();
        for (std::uint64_t r = 0; r < reps; ++r) {
            const uarch::OooCore core = store.sourceFor(mid_cycle);
            sink += core.cycle();
        }
        const double copy_us =
            micros(std::chrono::steady_clock::now() - started) /
            static_cast<double>(reps);

        // Restore + a short run: pays for the pages those ticks
        // dirty on top of the page-table clone.
        started = std::chrono::steady_clock::now();
        for (std::uint64_t r = 0; r < reps; ++r) {
            uarch::OooCore core = store.sourceFor(mid_cycle);
            for (std::uint64_t t = 0; t < ticks; ++t) {
                if (!core.tick())
                    break;
            }
            sink += core.cycle();
        }
        const double touch_us =
            micros(std::chrono::steady_clock::now() - started) /
            static_cast<double>(reps);

        const double state_mb =
            static_cast<double>(store.snapshotBoundBytes()) /
            (1024.0 * 1024.0);
        table.row({formatFixed(scale, 4),
                   formatFixed(state_mb, 2) + " MiB",
                   std::to_string(store.count()),
                   formatFixed(copy_us, 1) + " us",
                   formatFixed(touch_us, 1) + " us"});

        json::Value row = json::Value::object();
        row.set("cache_scale", json::Value::number(scale));
        row.set("state_bound_bytes",
                json::Value::unsignedInt(store.snapshotBoundBytes()));
        row.set("snapshots",
                json::Value::unsignedInt(store.count()));
        row.set("restore_us", json::Value::number(copy_us));
        row.set("restore_touch_us", json::Value::number(touch_us));
        rows.push(std::move(row));
        if (sink == 0)
            std::fprintf(stderr, "(unreachable sink)\n");
    }

    std::printf("Checkpoint restore cost vs core state (COW fast "
                "path)\n\n%s\n",
                table.render().c_str());
    std::printf("restore cost tracks touched state: copy-only "
                "restores clone page tables in microseconds while "
                "the per-snapshot state bound sits in the MiB; the "
                "restore+tick gap is the simulation plus only the "
                "pages it dirties\n");

    json::Value doc = json::Value::object();
    doc.set("reps", json::Value::unsignedInt(reps));
    doc.set("ticks", json::Value::unsignedInt(ticks));
    doc.set("cells", std::move(rows));
    bench::writeBenchJson("bench_checkpoint_restore", std::move(doc));
    return 0;
}

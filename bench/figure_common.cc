#include "figure_common.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/config.hh"
#include "inject/campaign.hh"
#include "prog/benchmark.hh"
#include "uarch/core_config.hh"

namespace dfi::bench
{

namespace
{

std::vector<std::string>
selectedBenchmarks()
{
    const char *raw = std::getenv("DFI_BENCHMARKS");
    if (raw == nullptr || *raw == '\0')
        return prog::benchmarkNames();
    std::vector<std::string> picked;
    std::istringstream is(raw);
    std::string name;
    while (std::getline(is, name, ',')) {
        if (!name.empty())
            picked.push_back(name);
    }
    return picked;
}

std::string
setupToCore(const std::string &setup)
{
    if (setup == "M-x86")
        return "marss-x86";
    if (setup == "G-x86")
        return "gem5-x86";
    return "gem5-arm";
}

} // namespace

inject::FigureReport
runFigure(const std::string &figure_title, const std::string &component)
{
    const std::uint64_t injections = envUint("DFI_INJECTIONS", 150);
    const std::uint64_t seed = envUint("DFI_SEED", 0x5eed);
    const auto jobs =
        static_cast<std::uint32_t>(envUint("DFI_JOBS", 0));
    const auto benchmarks = selectedBenchmarks();

    inject::FigureReport report(figure_title, setupNames());
    inject::Parser parser;

    const auto start = std::chrono::steady_clock::now();
    for (const std::string &bench : benchmarks) {
        for (const std::string &setup : setupNames()) {
            inject::CampaignConfig cfg;
            cfg.component = component;
            cfg.benchmark = bench;
            cfg.coreName = setupToCore(setup);
            cfg.numInjections = injections;
            cfg.seed = seed;
            cfg.jobs = jobs; // 0 = hardware concurrency
            inject::InjectionCampaign campaign(cfg);
            const auto result = campaign.run();
            report.add(bench, setup, result.classify(parser));
            std::fprintf(stderr, "  [%s] %s/%s done\n",
                         component.c_str(), bench.c_str(),
                         setup.c_str());
        }
    }
    const auto end = std::chrono::steady_clock::now();
    std::fprintf(
        stderr, "campaign wall time: %.1fs (%lu injections/cell)\n",
        std::chrono::duration<double>(end - start).count(),
        static_cast<unsigned long>(injections));
    return report;
}

void
printFigure(const inject::FigureReport &report,
            const std::string &slug)
{
    std::printf("%s\n", report.renderTable().c_str());
    std::printf("%s\n", report.renderBars().c_str());
    std::printf("%s\n", report.renderSummary().c_str());
    writeBenchJson(slug, report.toJson());
}

void
writeBenchJson(const std::string &slug, const json::Value &doc)
{
    const char *env = std::getenv("DFI_TELEMETRY_DIR");
    const std::string dir = env != nullptr ? env : "results";
    if (dir.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string path = dir + "/" + slug + ".json";
    std::ofstream out(path, std::ios::binary);
    out << doc.dumpPretty();
    if (!out) {
        std::fprintf(stderr, "warning: cannot write %s\n",
                     path.c_str());
        return;
    }
    std::fprintf(stderr, "json data written to %s\n", path.c_str());
}

} // namespace dfi::bench

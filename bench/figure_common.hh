/**
 * @file
 * Shared driver for the figure-regeneration benches (Figs. 2-6).
 *
 * Each figure bench names the component under study; this driver runs
 * the full differential campaign — every benchmark on the three
 * setups (MaFIN-x86, GeFIN-x86, GeFIN-ARM) — classifies the logs and
 * renders the paper-style stacked-bar report.
 *
 * Environment knobs:
 *   DFI_INJECTIONS   runs per benchmark/setup cell (default 150;
 *                    the paper used 2000)
 *   DFI_BENCHMARKS   comma-separated subset of benchmark names
 *   DFI_SEED         campaign seed (default 0x5eed)
 *   DFI_JOBS         worker threads per campaign (default 0 =
 *                    hardware concurrency; any value reproduces the
 *                    same figures bit-for-bit)
 *   DFI_TELEMETRY_DIR  directory for the JSON twins of the text
 *                    output (default "results"; empty disables)
 */

#ifndef DFI_BENCH_FIGURE_COMMON_HH
#define DFI_BENCH_FIGURE_COMMON_HH

#include <string>

#include "common/json.hh"
#include "inject/report.hh"

namespace dfi::bench
{

/** Setup display names, in the paper's bar order. */
inline const std::vector<std::string> &
setupNames()
{
    static const std::vector<std::string> names = {"M-x86", "G-x86",
                                                   "G-ARM"};
    return names;
}

/** Run the full differential campaign for one component. */
inject::FigureReport runFigure(const std::string &figure_title,
                               const std::string &component);

/**
 * Render table + bars + summary to stdout and write the figure's
 * data as JSON next to the text output (writeBenchJson(slug)).
 */
void printFigure(const inject::FigureReport &report,
                 const std::string &slug);

/**
 * Write one bench's machine-readable data to
 * `$DFI_TELEMETRY_DIR/<slug>.json` (default directory "results",
 * created on demand; DFI_TELEMETRY_DIR= disables).  Every figure and
 * table bench calls this with the same slug as its committed text
 * transcript, so each `results/<slug>.txt` gains a JSON twin.
 */
void writeBenchJson(const std::string &slug, const json::Value &doc);

} // namespace dfi::bench

#endif // DFI_BENCH_FIGURE_COMMON_HH

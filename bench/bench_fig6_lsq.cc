/**
 * @file
 * Regenerates Figure 6 of the paper: faulty behavior
 * classification for the Load/Store Queue (data field),
 * for the ten benchmarks on MaFIN-x86, GeFIN-x86 and GeFIN-ARM.
 */

#include "figure_common.hh"

int
main()
{
    const auto report = dfi::bench::runFigure(
        "Figure 6: Load/Store Queue (data field)", "lsq");
    dfi::bench::printFigure(report, "bench_fig6_lsq");
    return 0;
}

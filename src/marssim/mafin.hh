/**
 * @file
 * MaFIN — the MARSS-based Fault INjector.
 *
 * The thin, named façade of the paper's MaFIN tool: an injection
 * campaign pinned to the MARSS-like simulator model (marss-x86
 * CoreConfig), which carries all the MARSS-specific behaviours the
 * study isolates — unified 32-entry LSQ holding load and store data,
 * 64-entry ROB, aggressive load issue with replay-by-flush, the QEMU
 * hypervisor analog (system operations bypass the caches against
 * authoritative main memory), dense assertion checkpoints, the
 * address-indexed tournament chooser, the split direct/indirect BTB,
 * and the L1D/L1I next-line prefetchers MaFIN added to MARSS
 * (Table IV "New").
 */

#ifndef DFI_MARSSIM_MAFIN_HH
#define DFI_MARSSIM_MAFIN_HH

#include "inject/campaign.hh"
#include "uarch/core_config.hh"
#include "uarch/ooo_core.hh"

namespace dfi::mafin
{

/** The marss-x86 simulator model MaFIN instruments. */
inline uarch::CoreConfig
simulatorConfig()
{
    return uarch::marssX86Config();
}

/** Build a MaFIN campaign (coreName is forced to marss-x86). */
inline inject::InjectionCampaign
makeCampaign(inject::CampaignConfig config)
{
    config.coreName = "marss-x86";
    return inject::InjectionCampaign(std::move(config));
}

/** Instantiate the bare simulator (for direct-driving studies). */
inline uarch::OooCore
makeSimulator(const isa::Image &image)
{
    return uarch::OooCore(simulatorConfig(), image);
}

} // namespace dfi::mafin

#endif // DFI_MARSSIM_MAFIN_HH

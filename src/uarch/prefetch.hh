/**
 * @file
 * Next-line prefetcher (the "New" MaFIN components of Table IV).
 *
 * On a demand miss it requests the next sequential line.  Its one
 * piece of state — the last miss address register — is an injectable
 * array, as in MaFIN's added L1D/L1I prefetchers.
 */

#ifndef DFI_UARCH_PREFETCH_HH
#define DFI_UARCH_PREFETCH_HH

#include <cstdint>
#include <string>

#include "storage/faultable_array.hh"

namespace dfi::uarch
{

/** Sequential next-line prefetcher. */
class NextLinePrefetcher
{
  public:
    NextLinePrefetcher() = default;
    NextLinePrefetcher(std::string name, std::uint32_t line_bytes)
        : lineBytes_(line_bytes), state_(std::move(name), 1, 32)
    {
    }

    /**
     * Observe a demand miss; returns the line address to prefetch
     * (reads the injectable last-miss register on the way).
     */
    std::uint32_t
    onMiss(std::uint32_t line_addr)
    {
        state_.writeBits(0, 0, 32, line_addr);
        const auto recorded = static_cast<std::uint32_t>(
            state_.readBits(0, 0, 32));
        return recorded + lineBytes_;
    }

    dfi::FaultableArray &array() { return state_; }

    /** Serialize the last-miss register (cache spill). */
    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        serial::value(ar, state_);
    }

  private:
    std::uint32_t lineBytes_ = 64;
    dfi::FaultableArray state_;
};

} // namespace dfi::uarch

#endif // DFI_UARCH_PREFETCH_HH

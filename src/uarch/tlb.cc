#include "uarch/tlb.hh"

#include "syskit/layout.hh"

namespace dfi::uarch
{

namespace
{
constexpr std::uint32_t kPageBits = 12;
constexpr std::uint32_t kVpnBits = 20;
} // namespace

Tlb::Tlb(std::string name, std::uint32_t entries,
         std::uint32_t miss_latency)
    : name_(std::move(name)), entries_(entries),
      missLatency_(miss_latency),
      array_(name_, entries, 1 + kVpnBits + kVpnBits)
{
}

Tlb::Result
Tlb::translate(std::uint32_t va, dfi::StatSet &stats)
{
    const std::uint32_t vpn = va >> kPageBits;
    const std::uint32_t offset = va & ((1u << kPageBits) - 1);
    const std::size_t index = vpn % entries_;

    Result result;
    const bool valid = array_.readBit(index, 0);
    const std::uint32_t tag = static_cast<std::uint32_t>(
        array_.readBits(index, 1, kVpnBits));
    if (valid && tag == vpn) {
        stats.inc(name_ + ".hits");
    } else {
        // Page walk: identity mapping fill.
        stats.inc(name_ + ".misses");
        result.latency = missLatency_;
        array_.writeBit(index, 0, true);
        array_.writeBits(index, 1, kVpnBits, vpn);
        array_.writeBits(index, 1 + kVpnBits, kVpnBits, vpn);
    }
    const std::uint32_t pfn = static_cast<std::uint32_t>(
        array_.readBits(index, 1 + kVpnBits, kVpnBits));
    result.pa = (pfn << kPageBits) | offset;
    return result;
}

bool
Tlb::entryLive(std::size_t index) const
{
    return array_.peekBit(index, 0);
}

template <class Ar>
void
Tlb::serializeState(Ar &ar)
{
    serial::value(ar, array_);
}

template void Tlb::serializeState(serial::Writer &);
template void Tlb::serializeState(serial::Reader &);

} // namespace dfi::uarch

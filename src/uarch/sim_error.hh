/**
 * @file
 * Simulator-level failure modes raised by microarchitectural
 * invariant checkpoints.
 *
 * These model the paper's Assert and Simulator-Crash outcome classes
 * (Section III.A): injected faults can corrupt microarchitectural
 * state to the point where the *simulator* — not the simulated
 * program — fails.  MARSS contains many assertion checkpoints (dense
 * checking, Remark 8), so corrupted state usually trips an assert;
 * gem5's checking is compact, so corruption flows further and
 * manifests as a simulator crash (or not at all).
 *
 * Every checkpoint in the core names a severity:
 *  - Hard: continuing would corrupt the host process (out-of-range
 *    index about to be used).  Dense policy -> SimAssert; sparse
 *    policy -> SimCrash.
 *  - Soft: an invariant is broken but execution can continue.
 *    Dense policy -> SimAssert; sparse policy -> tolerated.
 */

#ifndef DFI_UARCH_SIM_ERROR_HH
#define DFI_UARCH_SIM_ERROR_HH

#include <stdexcept>
#include <string>

namespace dfi::uarch
{

/** An assertion checkpoint fired (paper class: Assert). */
class SimAssertError : public std::runtime_error
{
  public:
    explicit SimAssertError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** The simulator itself would have crashed (paper class: Crash). */
class SimCrashError : public std::runtime_error
{
  public:
    explicit SimCrashError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Assertion-checkpoint density of a simulator model. */
enum class AssertPolicy
{
    Dense, //!< MARSS-like: every checkpoint raises SimAssert
    Sparse //!< gem5-like: hard checkpoints raise SimCrash, soft pass
};

/** Severity of one checkpoint site. */
enum class CheckSeverity
{
    Hard, //!< continuing would corrupt the host simulator
    Soft  //!< invariant violated but execution can limp on
};

/**
 * Evaluate a checkpoint.  Returns normally when ok, or when a sparse
 * policy tolerates a soft violation.
 */
inline void
checkInvariant(bool ok, AssertPolicy policy, CheckSeverity severity,
               const char *what)
{
    if (ok)
        return;
    if (policy == AssertPolicy::Dense)
        throw SimAssertError(what);
    if (severity == CheckSeverity::Hard)
        throw SimCrashError(what);
    // Sparse policy tolerates soft violations.
}

} // namespace dfi::uarch

#endif // DFI_UARCH_SIM_ERROR_HH

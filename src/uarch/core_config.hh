/**
 * @file
 * Out-of-order core configuration.
 *
 * The three configurations of the paper's Table II (MARSS/x86,
 * gem5/x86, gem5/ARM) are factory functions here; every parameter the
 * table lists is a field, and the behavioural divergences the paper
 * identifies (aggressive load issue, unified LSQ holding load data,
 * QEMU hypervisor, assertion density, predictor indexing, split BTB,
 * prefetchers) are explicit policy fields.
 */

#ifndef DFI_UARCH_CORE_CONFIG_HH
#define DFI_UARCH_CORE_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/types.hh"
#include "uarch/branch.hh"
#include "uarch/hier.hh"
#include "uarch/sim_error.hh"

namespace dfi::uarch
{

/** Full configuration of one simulated core. */
struct CoreConfig
{
    std::string name;
    isa::IsaKind isa = isa::IsaKind::X86;
    AssertPolicy assertPolicy = AssertPolicy::Sparse;

    // --- Table II sizes -------------------------------------------------
    std::uint32_t numPhysInt = 256;
    std::uint32_t numPhysFp = 128;
    std::uint32_t iqEntries = 32;
    bool unifiedLsq = false;       //!< MARSS: one 32-entry queue
    std::uint32_t lsqEntries = 32; //!< unified size
    std::uint32_t lqEntries = 16;  //!< split sizes (gem5)
    std::uint32_t sqEntries = 16;
    std::uint32_t robEntries = 40;

    // --- pipeline widths --------------------------------------------------
    std::uint32_t fetchWidth = 4;
    std::uint32_t renameWidth = 4;
    std::uint32_t issueWidth = 4;
    std::uint32_t commitWidth = 4;

    // --- functional units ---------------------------------------------------
    std::uint32_t intAlus = 2;
    std::uint32_t complexAlus = 1; //!< mul/div capable
    std::uint32_t agus = 2;        //!< memory ports

    // --- latencies ---------------------------------------------------------
    std::uint32_t aluLatency = 1;
    std::uint32_t mulLatency = 3;
    std::uint32_t divLatency = 12;

    // --- policies (paper-identified divergences) ------------------------
    bool aggressiveLoadIssue = false; //!< MARSS: issue before aliasing known
    bool lsqHoldsLoadData = false;    //!< MARSS: loads buffer data in LSQ
    bool hypervisor = false;          //!< MARSS: QEMU handles system ops
    std::uint32_t syscallCost = 80;   //!< cycles to enter/leave the kernel
    std::uint32_t kernelTickInterval = 5000;
    std::uint32_t kernelTickCost = 50;
    std::uint32_t kernelTouchLines = 4; //!< L1I lines a kernel tick touches

    // --- front end ----------------------------------------------------------
    ChooserIndex chooserIndex = ChooserIndex::ByHistory;
    bool splitBtb = false;
    BtbConfig btb{"btb", 2048, 1};
    BtbConfig btbIndirect{"btb_indirect", 512, 4};
    std::uint32_t rasEntries = 16;
    std::uint32_t tlbEntries = 64;

    // --- memory --------------------------------------------------------------
    HierConfig hier;
};

/** MARSS/x86 configuration (Table II column 1). */
CoreConfig marssX86Config();
/** gem5/x86 configuration (Table II column 2). */
CoreConfig gem5X86Config();
/** gem5/ARM configuration (Table II column 3). */
CoreConfig gem5ArmConfig();

/**
 * Lookup by name: "marss-x86", "gem5-x86", "gem5-arm".
 * fatal() on unknown names.
 */
CoreConfig coreConfigByName(const std::string &name);

/**
 * Proportionally shrink the cache capacities (associativity and line
 * size preserved).  The evaluation campaigns run with scale 1/8 —
 * cache capacity and workload footprints are scaled *together*
 * relative to the paper's testbed (Table II sizes, MiBench inputs) so
 * occupancy, replacement behaviour and therefore masking rates stay
 * representative while campaigns fit a single machine.  See
 * DESIGN.md, "Substitutions".
 */
void scaleCaches(CoreConfig &config, double scale);

/** The three setup names of the paper's study, in figure order. */
const std::vector<std::string> &coreConfigNames();

} // namespace dfi::uarch

#endif // DFI_UARCH_CORE_CONFIG_HH

/**
 * @file
 * Two-level memory hierarchy (L1I + L1D + unified L2) over guest
 * physical memory.
 *
 * Two coherence modes capture the paper's key MARSS/gem5 difference:
 *
 *  - Shadow (MARSS-like): main memory is functionally authoritative.
 *    Committed stores update the cache arrays *and* main memory; the
 *    hypervisor (QEMU analog) reads/writes main memory directly,
 *    bypassing the caches — so faults resident in cache arrays are
 *    invisible to it (the paper's L1D masking effect, Remark 3).
 *    Evictions still write cache-array contents back, which is how
 *    cache faults escape to memory.
 *
 *  - WriteBack (gem5-like): the caches are authoritative; dirty data
 *    exists only in the arrays until evicted, and system accesses go
 *    through the hierarchy and see cache faults.
 */

#ifndef DFI_UARCH_HIER_HH
#define DFI_UARCH_HIER_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "syskit/memory.hh"
#include "uarch/cache.hh"
#include "uarch/prefetch.hh"

namespace dfi::uarch
{

/** Coherence/authority mode of the hierarchy. */
enum class HierMode
{
    Shadow,   //!< MARSS-like: memory authoritative, stores write through
    WriteBack //!< gem5-like: caches authoritative
};

/** Hierarchy configuration. */
struct HierConfig
{
    HierMode mode = HierMode::WriteBack;
    CacheConfig l1i{"l1i", 32 * 1024, 64, 4, 2};
    CacheConfig l1d{"l1d", 32 * 1024, 64, 4, 2};
    CacheConfig l2{"l2", 1024 * 1024, 64, 16, 12};
    std::uint32_t memLatency = 60;
    bool prefetchL1D = false; //!< MaFIN's added next-line prefetchers
    bool prefetchL1I = false;
    /**
     * Model the cache data arrays (Shadow mode only).  The original
     * MARSS keeps data solely in main memory; MaFIN's extension adds
     * the arrays — at a simulation-throughput cost the paper measures
     * at roughly 40%.  Setting this false reproduces the original
     * behaviour (fault injection into data arrays is then
     * meaningless, exactly as the paper says of stock MARSS).
     */
    bool modelDataArrays = true;
};

/** The hierarchy. */
class MemHierarchy
{
  public:
    MemHierarchy() = default;
    MemHierarchy(const HierConfig &config, syskit::GuestMemory memory);

    /**
     * Data read of `count` (<= 8) bytes at physical address `pa`
     * through L1D.  May span two lines.  Returns accumulated latency;
     * out-of-range accesses yield zero bytes and ok=false.
     */
    struct Access
    {
        bool ok = true;
        std::uint32_t latency = 0;
    };
    Access read(std::uint32_t pa, std::uint32_t count,
                std::uint8_t *out, dfi::StatSet &stats);

    /** Data write through L1D (write-allocate). */
    Access write(std::uint32_t pa, std::uint32_t count,
                 const std::uint8_t *in, dfi::StatSet &stats);

    /** Instruction fetch of `count` bytes through L1I. */
    Access fetch(std::uint32_t pa, std::uint32_t count,
                 std::uint8_t *out, dfi::StatSet &stats);

    /** Hypervisor/kernel direct access (Shadow mode semantics). */
    bool directRead(std::uint32_t pa, std::uint32_t count,
                    std::uint8_t *out) const;
    bool directWrite(std::uint32_t pa, std::uint32_t count,
                     const std::uint8_t *in);

    /**
     * Kernel-mode cache-visible access (WriteBack mode syscalls /
     * kernel ticks): reads through the data hierarchy.
     */
    Access kernelRead(std::uint32_t pa, std::uint32_t count,
                      std::uint8_t *out, dfi::StatSet &stats);

    /** Touch a line in L1I (kernel-handler instruction fetch analog). */
    void kernelTouchInstr(std::uint32_t pa, dfi::StatSet &stats);

    syskit::GuestMemory &memory() { return memory_; }
    const syskit::GuestMemory &memory() const { return memory_; }
    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }
    NextLinePrefetcher &l1dPrefetcher() { return pfD_; }
    NextLinePrefetcher &l1iPrefetcher() { return pfI_; }
    const HierConfig &config() const { return cfg_; }

    /** Upper bound on checkpointable state (budget accounting). */
    std::uint64_t
    approxStateBytes() const
    {
        return memory_.size() + l1i_.approxStateBytes() +
               l1d_.approxStateBytes() + l2_.approxStateBytes();
    }

    /** Serialize dynamic state of memory and all levels (cache spill). */
    template <class Ar> void serializeState(Ar &ar);

  private:
    /** Access one-line-contained span through a given L1. */
    Access accessLine(Cache &l1, std::uint32_t pa, std::uint32_t count,
                      std::uint8_t *data, bool is_write, bool is_fetch,
                      dfi::StatSet &stats);

    /** Ensure the line holding pa is in `l1`; returns {line, latency}. */
    std::pair<std::uint32_t, std::uint32_t>
    ensureLine(Cache &l1, std::uint32_t pa, bool is_write,
               bool is_fetch, dfi::StatSet &stats);

    /** Fill one line into L2 from memory; returns latency. */
    std::uint32_t ensureLineL2(std::uint32_t line_addr,
                               std::uint8_t *bytes,
                               dfi::StatSet &stats);

    void handleL1Eviction(const Cache::Eviction &evicted,
                          dfi::StatSet &stats);
    void handleL2Eviction(const Cache::Eviction &evicted);

    void prefetchInto(Cache &l1, NextLinePrefetcher &pf,
                      std::uint32_t miss_line, bool is_fetch,
                      dfi::StatSet &stats);

    HierConfig cfg_;
    syskit::GuestMemory memory_;
    Cache l1i_, l1d_, l2_;
    NextLinePrefetcher pfD_, pfI_;
};

} // namespace dfi::uarch

#endif // DFI_UARCH_HIER_HH

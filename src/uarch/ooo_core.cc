#include "uarch/ooo_core.hh"

#include <algorithm>
#include <string>

#include "common/logging.hh"
#include "isa/arm.hh"
#include "isa/x86.hh"
#include "syskit/layout.hh"

namespace dfi::uarch
{

using isa::AluFunc;
using isa::Cond;
using isa::Flags;
using isa::IsaKind;
using isa::MacroOp;
using isa::OpKind;

namespace
{

/** Packed IQ payload layout. */
constexpr std::size_t kIqDstBits = 9;
constexpr std::size_t kIqSrcBits = 9;
constexpr std::size_t kIqRobBits = 7;
constexpr std::size_t kIqPayloadBits =
    kIqDstBits + 2 * kIqSrcBits + kIqRobBits; // 34

/** Kernel code/data region used by kernel-mode accesses. */
constexpr std::uint32_t kKernelBase = 0x100;

bool
rangesOverlap(std::uint32_t a, std::uint32_t aw, std::uint32_t b,
              std::uint32_t bw)
{
    return a < b + bw && b < a + aw;
}

} // namespace

OooCore::OooCore(const CoreConfig &config, const isa::Image &image)
    : cfg_(config),
      hier_(config.hier, image.makeMemory()),
      itlb_("itlb", config.tlbEntries),
      dtlb_("dtlb", config.tlbEntries),
      predictor_(config.chooserIndex),
      btb_(config.btb),
      btbIndirect_(config.splitBtb ? config.btbIndirect
                                   : BtbConfig{"btb_indirect", 1, 1}),
      ras_("ras", config.rasEntries),
      intRf_("int_rf", config.numPhysInt, 32),
      fpRf_("fp_rf", config.numPhysFp, 32),
      rob_(config.robEntries),
      iqArray_("iq", config.iqEntries, kIqPayloadBits),
      iqBusy_(config.iqEntries, false),
      lsqData_("lsq.data",
               config.unifiedLsq ? config.lsqEntries : 1, 32),
      lqData_("lq.data", config.unifiedLsq ? 1 : config.lqEntries, 32),
      sqData_("sq.data", config.unifiedLsq ? 1 : config.sqEntries, 32)
{
    if (cfg_.isa != image.isa)
        fatal("core '%s' is %s but image is %s", cfg_.name,
              isa::isaName(cfg_.isa), isa::isaName(image.isa));
    if (cfg_.robEntries > (1u << kIqRobBits))
        fatal("robEntries %s exceeds the IQ payload field",
              cfg_.robEntries);

    const std::uint32_t lsq_slots =
        cfg_.unifiedLsq ? cfg_.lsqEntries : cfg_.lqEntries;
    lqBusy_.assign(lsq_slots, false);
    sqBusy_.assign(cfg_.unifiedLsq ? 0 : cfg_.sqEntries, false);

    // Identity initial mapping: arch reg i -> phys i.
    renameMap_.resize(isa::kNumArchRegs);
    commitMap_.resize(isa::kNumArchRegs);
    physFree_.assign(cfg_.numPhysInt, true);
    physReady_.assign(cfg_.numPhysInt, true);
    for (std::uint16_t a = 0; a < isa::kNumArchRegs; ++a) {
        renameMap_[a] = a;
        commitMap_[a] = a;
        physFree_[a] = false;
    }
    for (std::uint16_t p = cfg_.numPhysInt; p-- > isa::kNumArchRegs;)
        freeList_.push_back(p);

    // Architectural reset state.
    fetchPc_ = image.entry;
    intRf_.writeBits(renameMap_[isa::kRegSp], 0, 32, image.stackTop);
}

// --------------------------------------------------------------------------
// small helpers

void
OooCore::check(bool ok, CheckSeverity severity, const char *what) const
{
    checkInvariant(ok, cfg_.assertPolicy, severity, what);
}

std::uint16_t
OooCore::allocPhys()
{
    check(!freeList_.empty(), CheckSeverity::Hard,
          "rename: free list exhausted");
    if (freeList_.empty())
        throw SimCrashError("rename: free list exhausted");
    const std::uint16_t reg = freeList_.back();
    freeList_.pop_back();
    check(reg < cfg_.numPhysInt, CheckSeverity::Hard,
          "rename: free-list entry out of range");
    if (reg >= cfg_.numPhysInt)
        throw SimCrashError("rename: free-list entry out of range");
    physFree_[reg] = false;
    physReady_[reg] = false;
    return reg;
}

void
OooCore::freePhys(std::uint16_t reg)
{
    if (reg == Uop::kNoPhys)
        return;
    check(reg < cfg_.numPhysInt, CheckSeverity::Hard,
          "free: register id out of range");
    if (reg >= cfg_.numPhysInt)
        throw SimCrashError("free: register id out of range");
    check(!physFree_[reg], CheckSeverity::Soft,
          "free: double-free of physical register");
    physFree_[reg] = true;
    physReady_[reg] = true;
    freeList_.push_back(reg);
}

std::uint32_t
OooCore::readPhys(std::uint16_t reg)
{
    check(reg < cfg_.numPhysInt, CheckSeverity::Hard,
          "regfile: read index out of range");
    if (reg >= cfg_.numPhysInt)
        throw SimCrashError("regfile: read index out of range");
    return static_cast<std::uint32_t>(intRf_.readBits(reg, 0, 32));
}

void
OooCore::writePhys(std::uint16_t reg, std::uint32_t value)
{
    check(reg < cfg_.numPhysInt, CheckSeverity::Hard,
          "regfile: write index out of range");
    if (reg >= cfg_.numPhysInt)
        throw SimCrashError("regfile: write index out of range");
    intRf_.writeBits(reg, 0, 32, value);
}

std::uint32_t
OooCore::robIndex(std::uint32_t offset) const
{
    return (robHead_ + offset) % cfg_.robEntries;
}

void
OooCore::finish(syskit::Termination term, const std::string &detail)
{
    finished_ = true;
    record_.term = term;
    record_.detail = detail;
    record_.cycles = cycle_;
    record_.instructions = committed_;
    os_.finishInto(record_);
    stats_.set("cycles", cycle_);
    stats_.set("committed_instructions", committed_);
    record_.stats = stats_;
}

void
OooCore::forceTimeout()
{
    if (!finished_)
        finish(syskit::Termination::CycleLimit, "campaign cycle limit");
}

// --------------------------------------------------------------------------
// flush / recovery

void
OooCore::flushFrom(std::uint64_t first_bad_seq, std::uint32_t new_pc)
{
    while (robCount_ > 0) {
        const std::uint32_t slot = robIndex(robCount_ - 1);
        Uop &uop = rob_[slot];
        check(uop.valid, CheckSeverity::Hard,
              "flush: invalid ROB tail entry");
        if (!uop.valid || uop.seq < first_bad_seq)
            break;
        // Undo renaming in reverse allocation order.
        if (uop.archDst2 != Uop::kNoArch) {
            renameMap_[uop.archDst2] = uop.oldPhys2;
            freePhys(uop.physDst2);
        }
        if (uop.archDst != Uop::kNoArch) {
            renameMap_[uop.archDst] = uop.oldPhys;
            freePhys(uop.physDst);
        }
        if (uop.iqSlot >= 0 && uop.stage == Uop::Stage::InIq)
            iqBusy_[uop.iqSlot] = false;
        if (uop.lsqSlot >= 0) {
            if (cfg_.unifiedLsq || uop.isLoad)
                lqBusy_[uop.lsqSlot] = false;
            else
                sqBusy_[uop.lsqSlot] = false;
        }
        uop.valid = false;
        --robCount_;
    }
    fetchQueue_.clear();
    fetchPc_ = new_pc;
    fetchReadyCycle_ = cycle_ + 3; // redirect penalty
    stats_.inc("pipeline_flushes");
}

void
OooCore::flushAllYounger(std::uint64_t seq, std::uint32_t new_pc)
{
    flushFrom(seq + 1, new_pc);
}

// --------------------------------------------------------------------------
// fetch

void
OooCore::predictAndRedirect(FetchedInst &fetched)
{
    const MacroOp &op = fetched.op;
    const std::uint32_t pc = fetched.pc;
    const std::uint32_t npc = pc + op.length;
    std::uint32_t next = npc;

    switch (op.kind) {
      case OpKind::BrCond: {
        const bool taken = predictor_.predict(pc);
        stats_.inc("branches_predicted");
        if (taken) {
            const std::uint32_t target = btb_.lookup(pc, stats_);
            if (target != 0)
                next = target;
            // Without a BTB entry the front end cannot redirect even
            // though the direction predictor says taken (static
            // target is recovered at execute).
        }
        break;
      }
      case OpKind::Jump:
        next = npc + static_cast<std::uint32_t>(op.imm);
        break;
      case OpKind::Call:
        ras_.push(npc);
        next = npc + static_cast<std::uint32_t>(op.imm);
        break;
      case OpKind::CallInd: {
        ras_.push(npc);
        Btb &btb = cfg_.splitBtb ? btbIndirect_ : btb_;
        const std::uint32_t target = btb.lookup(pc, stats_);
        if (target != 0)
            next = target;
        break;
      }
      case OpKind::JumpInd: {
        Btb &btb = cfg_.splitBtb ? btbIndirect_ : btb_;
        const std::uint32_t target = btb.lookup(pc, stats_);
        if (target != 0)
            next = target;
        break;
      }
      case OpKind::Ret: {
        const std::uint32_t target = ras_.pop();
        if (target != 0)
            next = target;
        break;
      }
      default:
        break;
    }
    fetched.predNextPc = next;
    fetchPc_ = next;
}

void
OooCore::fetchStage()
{
    if (cycle_ < fetchReadyCycle_)
        return;
    if (fetchQueue_.size() >= 2 * cfg_.fetchWidth)
        return;

    for (std::uint32_t n = 0; n < cfg_.fetchWidth; ++n) {
        const std::uint32_t pc = fetchPc_;
        const Tlb::Result xlat = itlb_.translate(pc, stats_);
        std::uint8_t bytes[8] = {};
        const std::uint32_t want = cfg_.isa == IsaKind::X86 ? 6 : 4;
        std::uint32_t avail = want;
        if (static_cast<std::uint64_t>(xlat.pa) + want >
            hier_.memory().size()) {
            avail = xlat.pa < hier_.memory().size()
                        ? hier_.memory().size() - xlat.pa
                        : 0;
        }
        MemHierarchy::Access access;
        if (avail > 0)
            access = hier_.fetch(xlat.pa, avail, bytes, stats_);
        const std::uint32_t delay = xlat.latency + access.latency;
        if (delay > cfg_.hier.l1i.hitLatency)
            fetchReadyCycle_ = cycle_ + delay;

        FetchedInst fetched;
        fetched.pc = pc;
        if (avail == 0 || !access.ok) {
            // Fetch fault: deliver a poisoned op that excepts at
            // commit.
            fetched.op.kind = OpKind::Illegal;
            fetched.op.length = 1;
            fetched.predNextPc = pc + 1;
            fetchQueue_.push_back(fetched);
            fetchPc_ = pc + 1;
            stats_.inc("fetch_faults");
            break;
        }
        fetched.op = cfg_.isa == IsaKind::X86
                         ? isa::x86Decode(bytes, avail)
                         : isa::armDecode(bytes, avail);
        stats_.inc("fetched_instructions");
        predictAndRedirect(fetched);
        fetchQueue_.push_back(fetched);
        if (delay > cfg_.hier.l1i.hitLatency)
            break; // miss ends the fetch group
        if (fetched.op.isControl())
            break; // one control transfer per group
    }
}

// --------------------------------------------------------------------------
// rename / dispatch

void
OooCore::renameStage()
{
    for (std::uint32_t n = 0; n < cfg_.renameWidth; ++n) {
        if (fetchQueue_.empty() || robCount_ >= cfg_.robEntries)
            return;
        const FetchedInst &fetched = fetchQueue_.front();
        const MacroOp &op = fetched.op;

        const bool x86 = cfg_.isa == IsaKind::X86;
        const bool is_load = op.isMemRead() &&
                             !(op.kind == OpKind::Ret && !x86);
        const bool is_store = op.isMemWrite(cfg_.isa);
        const bool needs_iq =
            op.kind != OpKind::Syscall && op.kind != OpKind::Illegal &&
            op.kind != OpKind::Halt && op.kind != OpKind::Nop;

        // Resource checks.
        int iq_slot = -1;
        if (needs_iq) {
            for (std::uint32_t s = 0; s < cfg_.iqEntries; ++s) {
                if (!iqBusy_[s]) {
                    iq_slot = static_cast<int>(s);
                    break;
                }
            }
            if (iq_slot < 0)
                return; // IQ full
        }
        int lsq_slot = -1;
        if (is_load || is_store) {
            std::vector<bool> &busy =
                (cfg_.unifiedLsq || is_load) ? lqBusy_ : sqBusy_;
            for (std::size_t s = 0; s < busy.size(); ++s) {
                if (!busy[s]) {
                    lsq_slot = static_cast<int>(s);
                    break;
                }
            }
            if (lsq_slot < 0)
                return; // queue full
        }

        // Destination registers.
        std::uint8_t arch_dst = Uop::kNoArch;
        std::uint8_t arch_dst2 = Uop::kNoArch;
        if (op.writesRd())
            arch_dst = op.rd;
        if (op.writesFlags())
            arch_dst = isa::kRegFlags;
        switch (op.kind) {
          case OpKind::Push:
            arch_dst = isa::kRegSp;
            break;
          case OpKind::Pop:
            arch_dst2 = isa::kRegSp;
            break;
          case OpKind::Call:
          case OpKind::CallInd:
            arch_dst = x86 ? isa::kRegSp : isa::kRegLr;
            break;
          case OpKind::Ret:
            if (x86)
                arch_dst = isa::kRegSp;
            break;
          default:
            break;
        }
        const std::uint32_t dst_count =
            (arch_dst != Uop::kNoArch ? 1 : 0) +
            (arch_dst2 != Uop::kNoArch ? 1 : 0);
        if (freeList_.size() < dst_count + 2)
            return; // leave headroom; stall rename

        // Allocate the ROB entry.
        const std::uint32_t slot = robIndex(robCount_);
        Uop &uop = rob_[slot];
        check(!uop.valid, CheckSeverity::Hard,
              "rename: ROB slot already occupied");
        uop = Uop{};
        uop.valid = true;
        uop.op = op;
        uop.pc = fetched.pc;
        uop.npc = fetched.pc + op.length;
        uop.seq = seqGen_++;
        uop.predNextPc = fetched.predNextPc;
        uop.isLoad = is_load;
        uop.isStore = is_store;
        uop.isBranch = op.isControl();
        uop.isSyscall = op.kind == OpKind::Syscall;
        uop.memWidth = static_cast<std::uint8_t>(op.width);
        if (op.kind == OpKind::Push || op.kind == OpKind::Pop ||
            op.kind == OpKind::Ret ||
            ((op.kind == OpKind::Call || op.kind == OpKind::CallInd) &&
             x86)) {
            uop.memWidth = 4;
        }

        // Source registers.
        switch (op.kind) {
          case OpKind::AluRR:
            uop.physSrc1 = renameMap_[op.rn];
            uop.physSrc2 = renameMap_[op.rm];
            break;
          case OpKind::AluRI:
            uop.physSrc1 = renameMap_[op.rn];
            break;
          case OpKind::LoadOp:
            uop.physSrc1 = renameMap_[op.rd]; // old rd value
            uop.physSrc2 = renameMap_[op.rn]; // base
            break;
          case OpKind::MovRR:
            uop.physSrc2 = renameMap_[op.rm];
            break;
          case OpKind::MovTI:
            uop.physSrc1 = renameMap_[op.rd];
            break;
          case OpKind::Load:
            uop.physSrc1 = renameMap_[op.rn];
            break;
          case OpKind::Store:
            uop.physSrc1 = renameMap_[op.rn];
            uop.physSrc2 = renameMap_[op.rm];
            break;
          case OpKind::CmpRR:
            uop.physSrc1 = renameMap_[op.rn];
            uop.physSrc2 = renameMap_[op.rm];
            break;
          case OpKind::CmpRI:
            uop.physSrc1 = renameMap_[op.rn];
            break;
          case OpKind::BrCond:
            uop.physSrc1 = renameMap_[isa::kRegFlags];
            break;
          case OpKind::JumpInd:
          case OpKind::CallInd:
            uop.physSrc2 = renameMap_[op.rm];
            if (x86)
                uop.physSrc1 = renameMap_[isa::kRegSp];
            break;
          case OpKind::Call:
            if (x86)
                uop.physSrc1 = renameMap_[isa::kRegSp];
            break;
          case OpKind::Ret:
            uop.physSrc1 =
                renameMap_[x86 ? isa::kRegSp : isa::kRegLr];
            break;
          case OpKind::Push:
            uop.physSrc1 = renameMap_[isa::kRegSp];
            uop.physSrc2 = renameMap_[op.rm];
            break;
          case OpKind::Pop:
            uop.physSrc1 = renameMap_[isa::kRegSp];
            break;
          default:
            break;
        }

        // Destination renaming (primary, then implicit).
        if (arch_dst != Uop::kNoArch) {
            uop.archDst = arch_dst;
            uop.oldPhys = renameMap_[arch_dst];
            uop.physDst = allocPhys();
            renameMap_[arch_dst] = uop.physDst;
        }
        if (arch_dst2 != Uop::kNoArch) {
            uop.archDst2 = arch_dst2;
            uop.oldPhys2 = renameMap_[arch_dst2];
            uop.physDst2 = allocPhys();
            renameMap_[arch_dst2] = uop.physDst2;
        }

        // Exceptions resolved at commit.
        if (op.kind == OpKind::Illegal)
            uop.exc = Uop::Exc::Illegal;
        else if (op.kind == OpKind::Halt)
            uop.exc = Uop::Exc::Halt;

        if (needs_iq) {
            uop.iqSlot = iq_slot;
            iqBusy_[iq_slot] = true;
            // Pack the payload into the injectable IQ array.
            std::uint64_t payload = 0;
            payload |= static_cast<std::uint64_t>(
                uop.physDst == Uop::kNoPhys ? 0 : uop.physDst);
            payload |= static_cast<std::uint64_t>(
                           uop.physSrc1 == Uop::kNoPhys ? 0
                                                        : uop.physSrc1)
                       << kIqDstBits;
            payload |= static_cast<std::uint64_t>(
                           uop.physSrc2 == Uop::kNoPhys ? 0
                                                        : uop.physSrc2)
                       << (kIqDstBits + kIqSrcBits);
            payload |= static_cast<std::uint64_t>(slot)
                       << (kIqDstBits + 2 * kIqSrcBits);
            iqArray_.writeBits(iq_slot, 0, kIqPayloadBits, payload);
            uop.stage = Uop::Stage::InIq;
        } else {
            // Nop / syscall / poisoned ops skip the scheduler.
            uop.stage = Uop::Stage::WrittenBack;
        }

        if (lsq_slot >= 0) {
            uop.lsqSlot = lsq_slot;
            if (cfg_.unifiedLsq || is_load)
                lqBusy_[lsq_slot] = true;
            else
                sqBusy_[lsq_slot] = true;
        }

        ++robCount_;
        fetchQueue_.erase(fetchQueue_.begin());
        stats_.inc("renamed_instructions");
    }
}

// --------------------------------------------------------------------------
// issue

void
OooCore::issueStage()
{
    // Collect occupied IQ slots ordered oldest-first.
    struct Candidate
    {
        std::uint32_t slot;
        std::uint64_t seq;
    };
    std::vector<Candidate> candidates;
    candidates.reserve(cfg_.iqEntries);
    for (std::uint32_t s = 0; s < cfg_.iqEntries; ++s) {
        if (!iqBusy_[s])
            continue;
        // Peek the owning uop via the (injectable) payload.
        const std::uint64_t payload =
            iqArray_.readBits(s, 0, kIqPayloadBits);
        const auto rob_slot = static_cast<std::uint32_t>(
            payload >> (kIqDstBits + 2 * kIqSrcBits));
        check(rob_slot < cfg_.robEntries, CheckSeverity::Hard,
              "issue: IQ payload ROB index out of range");
        if (rob_slot >= cfg_.robEntries) {
            iqBusy_[s] = false;
            continue;
        }
        Uop &uop = rob_[rob_slot];
        if (!uop.valid || uop.iqSlot != static_cast<int>(s) ||
            uop.stage != Uop::Stage::InIq) {
            check(false, CheckSeverity::Soft,
                  "issue: IQ entry does not match its ROB entry");
            iqBusy_[s] = false; // tolerated: drop the stale entry
            continue;
        }
        candidates.push_back({s, uop.seq});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.seq < b.seq;
              });

    std::uint32_t alus = cfg_.intAlus;
    std::uint32_t complexes = cfg_.complexAlus;
    std::uint32_t agus = cfg_.agus;
    std::uint32_t issued = 0;

    for (const Candidate &cand : candidates) {
        if (issued >= cfg_.issueWidth)
            break;
        const std::uint64_t payload =
            iqArray_.readBits(cand.slot, 0, kIqPayloadBits);
        const auto phys_dst = static_cast<std::uint16_t>(
            payload & ((1u << kIqDstBits) - 1));
        const auto phys_src1 = static_cast<std::uint16_t>(
            (payload >> kIqDstBits) & ((1u << kIqSrcBits) - 1));
        const auto phys_src2 = static_cast<std::uint16_t>(
            (payload >> (kIqDstBits + kIqSrcBits)) &
            ((1u << kIqSrcBits) - 1));
        const auto rob_slot = static_cast<std::uint32_t>(
            payload >> (kIqDstBits + 2 * kIqSrcBits));
        Uop &uop = rob_[rob_slot];

        // Readiness through the (possibly corrupted) payload ids.
        check(phys_src1 < cfg_.numPhysInt &&
                  phys_src2 < cfg_.numPhysInt,
              CheckSeverity::Hard,
              "issue: IQ payload source register out of range");
        if (phys_src1 >= cfg_.numPhysInt ||
            phys_src2 >= cfg_.numPhysInt) {
            iqBusy_[cand.slot] = false;
            continue;
        }
        const bool src1_needed = uop.physSrc1 != Uop::kNoPhys;
        const bool src2_needed = uop.physSrc2 != Uop::kNoPhys;
        if ((src1_needed && !physReady_[phys_src1]) ||
            (src2_needed && !physReady_[phys_src2]))
            continue;

        // Conservative machines issue loads only once every older
        // store address is known.
        if (uop.isLoad && !cfg_.aggressiveLoadIssue) {
            bool blocked = false;
            for (std::uint32_t i = 0; i < robCount_; ++i) {
                const Uop &other = rob_[robIndex(i)];
                if (!other.valid || !other.isStore ||
                    other.seq >= uop.seq)
                    continue;
                if (!other.addrResolved) {
                    blocked = true;
                    break;
                }
            }
            if (blocked)
                continue;
        }

        // Functional-unit constraints.
        const bool is_mem = uop.isLoad || uop.isStore;
        const bool is_complex =
            uop.op.kind == OpKind::AluRR || uop.op.kind == OpKind::AluRI
                ? (uop.op.func == AluFunc::Mul ||
                   uop.op.func == AluFunc::DivU ||
                   uop.op.func == AluFunc::DivS ||
                   uop.op.func == AluFunc::RemU ||
                   uop.op.func == AluFunc::RemS)
                : false;
        if (is_mem) {
            if (agus == 0)
                continue;
            --agus;
        } else if (is_complex) {
            if (complexes == 0)
                continue;
            --complexes;
        } else {
            if (alus == 0)
                continue;
            --alus;
        }

        // Register file read (fault-visible, via payload ids).
        if (src1_needed)
            uop.srcVal1 = readPhys(phys_src1);
        if (src2_needed)
            uop.srcVal2 = readPhys(phys_src2);
        uop.issuedPhysDst =
            uop.physDst == Uop::kNoPhys ? Uop::kNoPhys : phys_dst;

        std::uint32_t latency = cfg_.aluLatency;
        if (is_complex) {
            latency = (uop.op.func == AluFunc::Mul) ? cfg_.mulLatency
                                                    : cfg_.divLatency;
        }
        uop.stage = Uop::Stage::Exec;
        uop.readyCycle = cycle_ + latency;
        iqBusy_[cand.slot] = false;
        uop.iqSlot = -1;
        ++issued;
        stats_.inc("issued_instructions");
        if (uop.isLoad)
            stats_.inc("issued_loads");
        if (uop.isStore)
            stats_.inc("issued_stores");
    }
}

// --------------------------------------------------------------------------
// execute

dfi::FaultableArray &
OooCore::lsqArrayFor(const Uop &uop, int *entry) const
{
    *entry = uop.lsqSlot;
    auto *self = const_cast<OooCore *>(this);
    if (cfg_.unifiedLsq)
        return self->lsqData_;
    return uop.isLoad ? self->lqData_ : self->sqData_;
}

void
OooCore::storeViolationScan(const Uop &store)
{
    if (!cfg_.aggressiveLoadIssue)
        return;
    const Uop *victim = nullptr;
    for (std::uint32_t i = 0; i < robCount_; ++i) {
        const Uop &other = rob_[robIndex(i)];
        if (!other.valid || !other.isLoad || other.seq <= store.seq)
            continue;
        if (!other.loadDone)
            continue;
        if (rangesOverlap(store.memPA, store.memWidth, other.memPA,
                          other.memWidth)) {
            if (victim == nullptr || other.seq < victim->seq)
                victim = &other;
        }
    }
    if (victim != nullptr) {
        stats_.inc("memory_order_violations");
        const std::uint32_t pc = victim->pc;
        flushFrom(victim->seq, pc);
    }
}

bool
OooCore::resolveLoad(Uop &uop)
{
    // Search older stores for forwarding / conflicts.
    const Uop *forward_from = nullptr;
    for (std::uint32_t i = 0; i < robCount_; ++i) {
        const Uop &other = rob_[robIndex(i)];
        if (!other.valid || !other.isStore || other.seq >= uop.seq)
            continue;
        if (!other.addrResolved) {
            if (!cfg_.aggressiveLoadIssue)
                return false; // conservative: wait
            continue;         // aggressive: speculate past it
        }
        if (!rangesOverlap(other.memPA, other.memWidth, uop.memPA,
                           uop.memWidth))
            continue;
        if (other.memPA == uop.memPA &&
            other.memWidth >= uop.memWidth) {
            if (forward_from == nullptr ||
                other.seq > forward_from->seq)
                forward_from = &other;
        } else {
            return false; // partial overlap: wait for store commit
        }
    }

    std::uint32_t value = 0;
    std::uint32_t latency = 0;
    if (forward_from != nullptr) {
        int entry = -1;
        dfi::FaultableArray &array = lsqArrayFor(*forward_from, &entry);
        check(entry >= 0, CheckSeverity::Hard,
              "forward: store without an LSQ slot");
        value = static_cast<std::uint32_t>(
            array.readBits(entry, 0, uop.memWidth * 8));
        latency = 1;
        stats_.inc("store_to_load_forwards");
    } else {
        std::uint8_t bytes[8] = {};
        const MemHierarchy::Access access =
            hier_.read(uop.memPA, uop.memWidth, bytes, stats_);
        if (!access.ok)
            uop.exc = Uop::Exc::MemFault;
        for (std::uint32_t b = 0; b < uop.memWidth; ++b)
            value |= static_cast<std::uint32_t>(bytes[b]) << (8 * b);
        latency = access.latency;
    }

    if (cfg_.lsqHoldsLoadData && uop.lsqSlot >= 0) {
        // MARSS-like: the loaded value is buffered in the unified
        // LSQ's data field and read back at writeback.
        int entry = -1;
        dfi::FaultableArray &array = lsqArrayFor(uop, &entry);
        array.writeBits(entry, 0, 32, value);
    }
    uop.result = value;
    uop.loadDone = true;
    uop.readyCycle = cycle_ + std::max<std::uint32_t>(latency, 1);
    return true;
}

void
OooCore::executeMemUop(Uop &uop)
{
    // Address generation (once).
    if (!uop.addrResolved) {
        std::uint32_t va = 0;
        switch (uop.op.kind) {
          case OpKind::Load:
          case OpKind::Store:
            va = uop.srcVal1 + static_cast<std::uint32_t>(uop.op.imm);
            break;
          case OpKind::LoadOp:
            va = uop.srcVal2 + static_cast<std::uint32_t>(uop.op.imm);
            break;
          case OpKind::Push:
          case OpKind::Call:
          case OpKind::CallInd:
            va = uop.srcVal1 - 4;
            break;
          case OpKind::Pop:
          case OpKind::Ret:
            va = uop.srcVal1;
            break;
          default:
            panic("executeMemUop: %s is not a memory op",
                  isa::opKindName(uop.op.kind));
        }
        uop.memVA = va;
        if (va % uop.memWidth != 0)
            uop.dueMisaligned = true;
        const Tlb::Result xlat = dtlb_.translate(va, stats_);
        uop.memPA = xlat.pa;
        uop.addrResolved = true;
        if (uop.isStore) {
            // Latch the store data into the (injectable) data field.
            int entry = -1;
            dfi::FaultableArray &array = lsqArrayFor(uop, &entry);
            check(entry >= 0, CheckSeverity::Hard,
                  "store without an LSQ slot");
            std::uint32_t data = 0;
            switch (uop.op.kind) {
              case OpKind::Store:
              case OpKind::Push:
                data = uop.srcVal2;
                break;
              case OpKind::Call:
              case OpKind::CallInd:
                data = uop.npc;
                break;
              default:
                break;
            }
            array.writeBits(entry, 0, 32, data);
            storeViolationScan(uop);
        }
        if (xlat.latency > 0) {
            uop.readyCycle = cycle_ + xlat.latency;
            uop.stage = Uop::Stage::Mem;
            return;
        }
    }

    if (uop.isLoad) {
        if (!resolveLoad(uop)) {
            uop.readyCycle = cycle_ + 1; // retry
            uop.stage = Uop::Stage::Mem;
            return;
        }
        uop.stage = Uop::Stage::Mem;
        return;
    }
    // Stores complete once the address (and data) are latched; the
    // cache write happens at commit.
    uop.readyCycle = cycle_ + 1;
    uop.stage = Uop::Stage::Mem;
}

void
OooCore::executeStage()
{
    for (std::uint32_t i = 0; i < robCount_; ++i) {
        Uop &uop = rob_[robIndex(i)];
        if (!uop.valid)
            continue;
        if (uop.stage == Uop::Stage::Exec &&
            cycle_ >= uop.readyCycle) {
            if (uop.isLoad || uop.isStore) {
                executeMemUop(uop);
                continue;
            }
            // Pure register / control op.
            const MacroOp &op = uop.op;
            auto alu = [&](AluFunc func, std::uint32_t a,
                           std::uint32_t b) {
                const isa::AluResult r = isa::evalAlu(func, a, b);
                if (r.divByZero)
                    uop.dueDivZero = true;
                return r.value;
            };
            switch (op.kind) {
              case OpKind::AluRR:
                uop.result = alu(op.func, uop.srcVal1, uop.srcVal2);
                break;
              case OpKind::AluRI:
                uop.result =
                    alu(op.func, uop.srcVal1,
                        static_cast<std::uint32_t>(op.imm));
                break;
              case OpKind::MovRR:
                uop.result = uop.srcVal2;
                break;
              case OpKind::MovRI:
                uop.result = static_cast<std::uint32_t>(op.imm);
                break;
              case OpKind::MovTI:
                uop.result =
                    (uop.srcVal1 & 0xffffu) |
                    (static_cast<std::uint32_t>(op.imm) << 16);
                break;
              case OpKind::CmpRR:
                uop.result =
                    isa::evalCmp(uop.srcVal1, uop.srcVal2).pack();
                break;
              case OpKind::CmpRI:
                uop.result =
                    isa::evalCmp(uop.srcVal1,
                                 static_cast<std::uint32_t>(op.imm))
                        .pack();
                break;
              case OpKind::BrCond:
                uop.actualTaken = isa::evalCond(
                    op.cond, Flags::unpack(uop.srcVal1));
                uop.actualNextPc =
                    uop.actualTaken
                        ? uop.npc + static_cast<std::uint32_t>(op.imm)
                        : uop.npc;
                break;
              case OpKind::Jump:
                uop.actualTaken = true;
                uop.actualNextPc =
                    uop.npc + static_cast<std::uint32_t>(op.imm);
                break;
              case OpKind::JumpInd:
                uop.actualTaken = true;
                uop.actualNextPc = uop.srcVal2;
                break;
              case OpKind::Call: // DARM link-register call
                uop.actualTaken = true;
                uop.actualNextPc =
                    uop.npc + static_cast<std::uint32_t>(op.imm);
                uop.result = uop.npc; // LR
                break;
              case OpKind::CallInd:
                uop.actualTaken = true;
                uop.actualNextPc = uop.srcVal2;
                uop.result = uop.npc;
                break;
              case OpKind::Ret: // DARM: target = LR
                uop.actualTaken = true;
                uop.actualNextPc = uop.srcVal1;
                break;
              default:
                break;
            }
            uop.stage = Uop::Stage::Done;
        } else if (uop.stage == Uop::Stage::Mem &&
                   cycle_ >= uop.readyCycle) {
            if (uop.isLoad && !uop.loadDone) {
                if (!resolveLoad(uop))
                    continue; // still blocked
                continue;     // completes when readyCycle arrives
            }
            // Memory op complete: compute final results.
            const MacroOp &op = uop.op;
            switch (op.kind) {
              case OpKind::LoadOp: {
                const isa::AluResult r =
                    isa::evalAlu(op.func, uop.srcVal1, uop.result);
                if (r.divByZero)
                    uop.dueDivZero = true;
                uop.result = r.value;
                break;
              }
              case OpKind::Push:
                uop.result = uop.srcVal1 - 4; // SP
                break;
              case OpKind::Pop:
                uop.result2 = uop.srcVal1 + 4; // SP
                break;
              case OpKind::Call:
              case OpKind::CallInd: // DX86 stack call
                uop.actualTaken = true;
                uop.actualNextPc =
                    op.kind == OpKind::Call
                        ? uop.npc + static_cast<std::uint32_t>(op.imm)
                        : uop.srcVal2;
                uop.result = uop.srcVal1 - 4; // SP
                break;
              case OpKind::Ret: // DX86: target from the stack
                uop.actualTaken = true;
                uop.actualNextPc = uop.result; // loaded value
                uop.result = uop.srcVal1 + 4;  // SP
                break;
              default:
                break;
            }
            uop.stage = Uop::Stage::Done;
        }
    }
}

// --------------------------------------------------------------------------
// writeback

void
OooCore::writebackStage()
{
    for (std::uint32_t i = 0; i < robCount_; ++i) {
        Uop &uop = rob_[robIndex(i)];
        if (!uop.valid || uop.stage != Uop::Stage::Done)
            continue;

        // MARSS-like unified LSQ: the loaded value is read back from
        // the (injectable) data field on its way to the register file.
        if (uop.isLoad && cfg_.lsqHoldsLoadData && uop.lsqSlot >= 0 &&
            uop.op.kind != OpKind::Ret) {
            int entry = -1;
            dfi::FaultableArray &array = lsqArrayFor(uop, &entry);
            const std::uint32_t buffered = static_cast<std::uint32_t>(
                array.readBits(entry, 0, 32));
            if (uop.op.kind == OpKind::LoadOp) {
                // The ALU half re-evaluates against the buffered value.
                const isa::AluResult r = isa::evalAlu(
                    uop.op.func, uop.srcVal1, buffered);
                uop.result = r.value;
            } else if (uop.op.kind == OpKind::Load ||
                       uop.op.kind == OpKind::Pop) {
                uop.result = buffered;
            }
        }

        if (uop.physDst != Uop::kNoPhys) {
            const std::uint16_t dst = uop.issuedPhysDst != Uop::kNoPhys
                                          ? uop.issuedPhysDst
                                          : uop.physDst;
            writePhys(dst, uop.result);
            check(dst == uop.physDst, CheckSeverity::Soft,
                  "writeback: destination register mismatch");
            if (uop.physDst < cfg_.numPhysInt)
                physReady_[uop.physDst] = true;
        }
        if (uop.physDst2 != Uop::kNoPhys) {
            writePhys(uop.physDst2, uop.result2);
            physReady_[uop.physDst2] = true;
        }
        uop.stage = Uop::Stage::WrittenBack;

        if (uop.isBranch) {
            // Train the front end.
            if (uop.op.kind == OpKind::BrCond) {
                predictor_.update(uop.pc, uop.actualTaken);
                if (uop.actualTaken)
                    btb_.update(uop.pc, uop.actualNextPc);
            } else if (uop.op.kind == OpKind::JumpInd ||
                       uop.op.kind == OpKind::CallInd) {
                Btb &btb = cfg_.splitBtb ? btbIndirect_ : btb_;
                btb.update(uop.pc, uop.actualNextPc);
            }
            if (uop.actualNextPc != uop.predNextPc) {
                stats_.inc("branch_mispredictions");
                flushAllYounger(uop.seq, uop.actualNextPc);
                return; // younger entries are gone
            }
        }
    }
}

// --------------------------------------------------------------------------
// commit

void
OooCore::doSyscall(Uop &uop)
{
    // Serialized at the head: read the architectural registers.
    const std::uint32_t num = readPhys(commitMap_[0]);
    const std::uint32_t arg1 = readPhys(commitMap_[1]);
    const std::uint32_t arg2 = readPhys(commitMap_[2]);

    class DirectPort : public syskit::SysMemPort
    {
      public:
        explicit DirectPort(MemHierarchy &hier) : hier_(hier) {}
        bool
        readByte(std::uint32_t addr, std::uint8_t *out) override
        {
            if (addr < syskit::kCodeBase)
                return false;
            return hier_.directRead(addr, 1, out);
        }

      private:
        MemHierarchy &hier_;
    };

    class CachePort : public syskit::SysMemPort
    {
      public:
        CachePort(MemHierarchy &hier, dfi::StatSet &stats)
            : hier_(hier), stats_(stats)
        {}
        bool
        readByte(std::uint32_t addr, std::uint8_t *out) override
        {
            if (addr < syskit::kCodeBase)
                return false;
            if (addr >= hier_.memory().size())
                return false;
            (void)hier_.kernelRead(addr, 1, out, stats_);
            return true;
        }

      private:
        MemHierarchy &hier_;
        dfi::StatSet &stats_;
    };

    syskit::SyscallResult result;
    if (cfg_.hypervisor) {
        // MARSS: QEMU handles the system call against main memory,
        // bypassing the simulated caches entirely.
        DirectPort port(hier_);
        result = os_.syscall(num, arg1, arg2, port, uop.pc);
    } else {
        // gem5: the simulated kernel runs through the caches.
        CachePort port(hier_, stats_);
        result = os_.syscall(num, arg1, arg2, port, uop.pc);
        for (std::uint32_t l = 0; l < cfg_.kernelTouchLines; ++l)
            hier_.kernelTouchInstr(kKernelBase + 64 * l, stats_);
    }
    stats_.inc("syscalls");

    if (result.kernelPanic) {
        ++committed_; // the trapping instruction itself retires
        finish(syskit::Termination::KernelPanic,
               "unhandled trap in the simulated kernel");
        return;
    }
    if (result.exited) {
        ++committed_;
        record_.exitCode = result.exitCode;
        finish(syskit::Termination::Exited, "");
        return;
    }
    // Return value into architectural r0.
    writePhys(commitMap_[0], result.retval);

    // System calls serialize the pipeline.
    flushAllYounger(uop.seq, uop.npc);
    frontendStallUntil_ = cycle_ + cfg_.syscallCost;
}

bool
OooCore::commitOne()
{
    if (robCount_ == 0)
        return false;
    Uop &uop = rob_[robHead_];
    check(uop.valid, CheckSeverity::Hard,
          "commit: head ROB entry invalid");
    if (!uop.valid)
        throw SimCrashError("commit: head ROB entry invalid");
    if (uop.stage != Uop::Stage::WrittenBack)
        return false;

    // Exceptions surface in program order.
    switch (uop.exc) {
      case Uop::Exc::Illegal:
        if (cfg_.assertPolicy == AssertPolicy::Dense) {
            // MARSS-like: the dense decoder assertions fire while the
            // committed instruction is re-cracked.
            finish(syskit::Termination::SimAssert,
                   "decoder assertion: invalid instruction bytes");
        } else {
            finish(syskit::Termination::ProcessCrash,
                   "illegal instruction");
        }
        return false;
      case Uop::Exc::Halt:
        if (cfg_.assertPolicy == AssertPolicy::Dense) {
            finish(syskit::Termination::SimAssert,
                   "assertion: privileged instruction in user mode");
        } else {
            finish(syskit::Termination::ProcessCrash,
                   "privileged instruction in user mode");
        }
        return false;
      case Uop::Exc::MemFault:
        // Footnote 6 of the paper: MaFIN's non-SDC classes contain
        // significantly more Assertions than Crashes — MARSS asserts
        // on invalid physical accesses where gem5 raises the guest
        // fault.
        if (cfg_.assertPolicy == AssertPolicy::Dense) {
            finish(syskit::Termination::SimAssert,
                   "assertion: invalid physical address in data "
                   "access");
        } else {
            finish(syskit::Termination::ProcessCrash,
                   "unmapped memory access");
        }
        return false;
      case Uop::Exc::None:
        break;
    }

    // Survivable exception indications (DUE evidence) count only for
    // committed instructions.
    if (uop.dueDivZero)
        os_.raiseDue("div-zero", uop.pc);
    if (uop.dueMisaligned)
        os_.raiseDue("alignment-fixup", uop.pc);

    if (uop.isSyscall) {
        doSyscall(uop);
        if (finished_)
            return false;
    }

    if (uop.isStore) {
        // Drain the store: data comes from the (injectable) queue
        // data field, so faults landing between execute and commit
        // ride into the cache.
        int entry = -1;
        dfi::FaultableArray &array = lsqArrayFor(uop, &entry);
        const std::uint32_t data = static_cast<std::uint32_t>(
            array.readBits(entry, 0, 32));
        std::uint8_t bytes[4];
        for (std::uint32_t b = 0; b < uop.memWidth; ++b)
            bytes[b] = static_cast<std::uint8_t>(data >> (8 * b));
        // Guest-level protection: the page tables forbid stores below
        // the code limit.
        const bool protect_ok =
            uop.memVA >= syskit::kCodeBase &&
            hier_.memory()
                    .checkAccess(uop.memVA, uop.memWidth, true) ==
                syskit::MemFault::None;
        auto memory_fault = [&](const char *what) {
            // Same footnote-6 asymmetry as Exc::MemFault above.
            if (cfg_.assertPolicy == AssertPolicy::Dense) {
                finish(syskit::Termination::SimAssert,
                       std::string("assertion: ") + what);
            } else {
                finish(syskit::Termination::ProcessCrash, what);
            }
        };
        if (!protect_ok) {
            memory_fault("store to protected or unmapped memory");
            return false;
        }
        const MemHierarchy::Access access =
            hier_.write(uop.memPA, uop.memWidth, bytes, stats_);
        if (!access.ok) {
            memory_fault("store to unmapped physical memory");
            return false;
        }
        stats_.inc("committed_stores");
    }
    if (uop.isLoad) {
        // Guest-level protection check for loads as well.
        if (uop.memVA < syskit::kCodeBase ||
            hier_.memory().checkAccess(uop.memVA, uop.memWidth,
                                       false) !=
                syskit::MemFault::None) {
            if (cfg_.assertPolicy == AssertPolicy::Dense) {
                finish(syskit::Termination::SimAssert,
                       "assertion: load from unmapped memory");
            } else {
                finish(syskit::Termination::ProcessCrash,
                       "load from unmapped memory");
            }
            return false;
        }
        stats_.inc("committed_loads");
    }
    if (uop.op.kind == OpKind::BrCond)
        stats_.inc("committed_branches");

    // Retire renames: free the mapping each destination replaces
    // (in-order commit guarantees commitMap holds the previous
    // committed producer).
    if (uop.archDst != Uop::kNoArch) {
        freePhys(commitMap_[uop.archDst]);
        commitMap_[uop.archDst] = uop.physDst;
    }
    if (uop.archDst2 != Uop::kNoArch) {
        freePhys(commitMap_[uop.archDst2]);
        commitMap_[uop.archDst2] = uop.physDst2;
    }

    // Release queue slots.
    if (uop.lsqSlot >= 0) {
        if (cfg_.unifiedLsq || uop.isLoad)
            lqBusy_[uop.lsqSlot] = false;
        else
            sqBusy_[uop.lsqSlot] = false;
    }

    uop.valid = false;
    robHead_ = (robHead_ + 1) % cfg_.robEntries;
    --robCount_;
    ++committed_;
    return true;
}

void
OooCore::commitStage()
{
    for (std::uint32_t n = 0; n < cfg_.commitWidth; ++n) {
        if (!commitOne() || finished_)
            return;
    }
}

// --------------------------------------------------------------------------
// kernel timer tick

void
OooCore::kernelTick()
{
    if (cfg_.kernelTickInterval == 0 ||
        cycle_ % cfg_.kernelTickInterval != 0 || cycle_ == 0)
        return;
    stats_.inc("kernel_ticks");
    frontendStallUntil_ =
        std::max<std::uint64_t>(frontendStallUntil_,
                                cycle_ + cfg_.kernelTickCost);
    if (cfg_.hypervisor) {
        // MARSS: QEMU housekeeping runs against main memory only.
        std::uint8_t scratch[8] = {};
        (void)hier_.directRead(kKernelBase, 8, scratch);
        (void)hier_.directWrite(kKernelBase, 8, scratch);
    } else {
        // gem5: the kernel handler occupies the caches.
        for (std::uint32_t l = 0; l < cfg_.kernelTouchLines; ++l)
            hier_.kernelTouchInstr(kKernelBase + 64 * l, stats_);
        std::uint8_t scratch[8] = {};
        (void)hier_.kernelRead(kKernelBase, 8, scratch, stats_);
    }
}

// --------------------------------------------------------------------------
// top level

bool
OooCore::tick()
{
    if (finished_)
        return false;
    ++cycle_;
    try {
        commitStage();
        if (finished_)
            return false;
        if (cycle_ >= frontendStallUntil_) {
            writebackStage();
            executeStage();
            issueStage();
            renameStage();
            fetchStage();
        }
        kernelTick();
    } catch (const SimAssertError &err) {
        finish(syskit::Termination::SimAssert, err.what());
        return false;
    } catch (const SimCrashError &err) {
        finish(syskit::Termination::SimCrash, err.what());
        return false;
    }
    return !finished_;
}

// --------------------------------------------------------------------------
// injection interface

dfi::FaultableArray *
OooCore::arrayFor(dfi::StructureId id)
{
    using dfi::StructureId;
    switch (id) {
      case StructureId::IntRegFile:
        return &intRf_;
      case StructureId::FpRegFile:
        return &fpRf_;
      case StructureId::IssueQueue:
        return &iqArray_;
      case StructureId::LoadStoreQueue:
        return cfg_.unifiedLsq ? &lsqData_ : nullptr;
      case StructureId::LoadQueue:
        return cfg_.unifiedLsq ? nullptr : &lqData_;
      case StructureId::StoreQueue:
        return cfg_.unifiedLsq ? nullptr : &sqData_;
      case StructureId::L1DData:
        return &hier_.l1d().dataArray();
      case StructureId::L1DTag:
        return &hier_.l1d().tagArray();
      case StructureId::L1DValid:
        return &hier_.l1d().validArray();
      case StructureId::L1IData:
        return &hier_.l1i().dataArray();
      case StructureId::L1ITag:
        return &hier_.l1i().tagArray();
      case StructureId::L1IValid:
        return &hier_.l1i().validArray();
      case StructureId::L2Data:
        return &hier_.l2().dataArray();
      case StructureId::L2Tag:
        return &hier_.l2().tagArray();
      case StructureId::L2Valid:
        return &hier_.l2().validArray();
      case StructureId::DTlb:
        return &dtlb_.array();
      case StructureId::ITlb:
        return &itlb_.array();
      case StructureId::Btb:
        return &btb_.array();
      case StructureId::BtbIndirect:
        return cfg_.splitBtb ? &btbIndirect_.array() : nullptr;
      case StructureId::Ras:
        return &ras_.array();
      case StructureId::PrefetchL1D:
        return cfg_.hier.prefetchL1D ? &hier_.l1dPrefetcher().array()
                                     : nullptr;
      case StructureId::PrefetchL1I:
        return cfg_.hier.prefetchL1I ? &hier_.l1iPrefetcher().array()
                                     : nullptr;
      default:
        return nullptr;
    }
}

bool
OooCore::entryLive(dfi::StructureId id, std::uint32_t entry)
{
    using dfi::StructureId;
    switch (id) {
      case StructureId::IntRegFile:
        return entry < physFree_.size() && !physFree_[entry];
      case StructureId::FpRegFile:
        return false; // integer workloads never allocate FP registers
      case StructureId::IssueQueue:
        return entry < iqBusy_.size() && iqBusy_[entry];
      case StructureId::LoadStoreQueue:
      case StructureId::LoadQueue:
        return entry < lqBusy_.size() && lqBusy_[entry];
      case StructureId::StoreQueue:
        return entry < sqBusy_.size() && sqBusy_[entry];
      case StructureId::L1DData:
      case StructureId::L1DTag:
        return hier_.l1d().lineValid(entry);
      case StructureId::L1IData:
      case StructureId::L1ITag:
        return hier_.l1i().lineValid(entry);
      case StructureId::L2Data:
      case StructureId::L2Tag:
        return hier_.l2().lineValid(entry);
      default:
        // Valid-bit arrays, TLBs, BTBs, RAS, prefetchers: a flip can
        // matter regardless of occupancy — never early-classify.
        return true;
    }
}

std::uint64_t
OooCore::approxStateBytes() const
{
    // Guest memory and the cache arrays dominate; the small
    // predictor/TLB arrays ride inside the sizeof slack.
    std::uint64_t bytes = sizeof(*this);
    bytes += hier_.approxStateBytes();
    bytes += intRf_.storageBytes() + fpRf_.storageBytes() +
             iqArray_.storageBytes() + lsqData_.storageBytes() +
             lqData_.storageBytes() + sqData_.storageBytes();
    bytes += rob_.capacity() * sizeof(Uop);
    bytes += fetchQueue_.capacity() * sizeof(FetchedInst);
    return bytes;
}

template <class Ar>
void
Uop::serializeState(Ar &ar)
{
    serial::value(ar, valid);
    serial::value(ar, op);
    serial::value(ar, pc);
    serial::value(ar, npc);
    serial::value(ar, seq);
    serial::value(ar, stage);
    serial::value(ar, readyCycle);
    serial::value(ar, archDst);
    serial::value(ar, archDst2);
    serial::value(ar, physDst);
    serial::value(ar, physDst2);
    serial::value(ar, oldPhys);
    serial::value(ar, oldPhys2);
    serial::value(ar, physSrc1);
    serial::value(ar, physSrc2);
    serial::value(ar, srcVal1);
    serial::value(ar, srcVal2);
    serial::value(ar, issuedPhysDst);
    serial::value(ar, result);
    serial::value(ar, result2);
    serial::value(ar, isLoad);
    serial::value(ar, isStore);
    serial::value(ar, addrResolved);
    serial::value(ar, loadDone);
    serial::value(ar, memVA);
    serial::value(ar, memPA);
    serial::value(ar, memWidth);
    serial::value(ar, lsqSlot);
    serial::value(ar, iqSlot);
    serial::value(ar, isBranch);
    serial::value(ar, predNextPc);
    serial::value(ar, actualTaken);
    serial::value(ar, actualNextPc);
    serial::value(ar, exc);
    serial::value(ar, dueDivZero);
    serial::value(ar, dueMisaligned);
    serial::value(ar, isSyscall);
}

template void Uop::serializeState(serial::Writer &);
template void Uop::serializeState(serial::Reader &);

template <class Ar>
void
FetchedInst::serializeState(Ar &ar)
{
    serial::value(ar, op);
    serial::value(ar, pc);
    serial::value(ar, predNextPc);
}

template void FetchedInst::serializeState(serial::Writer &);
template void FetchedInst::serializeState(serial::Reader &);

template <class Ar>
void
OooCore::serializeState(Ar &ar)
{
    // cfg_ is construction-time data and is deliberately not part of
    // the stream; the loader constructs the core from the same config
    // first.  Every member below is dynamic state, listed in
    // declaration order.
    serial::value(ar, stats_);
    serial::value(ar, record_);
    serial::value(ar, os_);
    serial::value(ar, finished_);
    serial::value(ar, cycle_);
    serial::value(ar, seqGen_);
    serial::value(ar, committed_);
    serial::value(ar, hier_);
    serial::value(ar, itlb_);
    serial::value(ar, dtlb_);
    serial::value(ar, predictor_);
    serial::value(ar, btb_);
    serial::value(ar, btbIndirect_);
    serial::value(ar, ras_);
    serial::value(ar, fetchPc_);
    serial::value(ar, fetchReadyCycle_);
    serial::value(ar, fetchQueue_);
    serial::value(ar, intRf_);
    serial::value(ar, fpRf_);
    serial::value(ar, renameMap_);
    serial::value(ar, commitMap_);
    serial::value(ar, freeList_);
    serial::value(ar, physFree_);
    serial::value(ar, physReady_);
    serial::value(ar, rob_);
    serial::value(ar, robHead_);
    serial::value(ar, robCount_);
    serial::value(ar, iqArray_);
    serial::value(ar, iqBusy_);
    serial::value(ar, lsqData_);
    serial::value(ar, lqData_);
    serial::value(ar, sqData_);
    serial::value(ar, lqBusy_);
    serial::value(ar, sqBusy_);
    serial::value(ar, frontendStallUntil_);
}

template void OooCore::serializeState(serial::Writer &);
template void OooCore::serializeState(serial::Reader &);

} // namespace dfi::uarch

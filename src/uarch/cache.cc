#include "uarch/cache.hh"

#include "common/logging.hh"

namespace dfi::uarch
{

namespace
{

std::uint32_t
log2u(std::uint32_t value)
{
    std::uint32_t bits = 0;
    while ((1u << bits) < value)
        ++bits;
    if ((1u << bits) != value)
        panic("cache geometry %s not a power of two", value);
    return bits;
}

} // namespace

Cache::Cache(const CacheConfig &config) : cfg_(config)
{
    if (cfg_.sizeBytes % (cfg_.lineBytes * cfg_.ways) != 0)
        panic("cache %s: size/line/ways mismatch", cfg_.name);
    sets_ = cfg_.sizeBytes / (cfg_.lineBytes * cfg_.ways);
    offsetBits_ = log2u(cfg_.lineBytes);
    setBits_ = log2u(sets_);
    tagBits_ = 32 - setBits_ - offsetBits_;

    const std::uint32_t lines = numLines();
    tags_ = dfi::FaultableArray(cfg_.name + ".tag", lines, tagBits_);
    data_ = dfi::FaultableArray(cfg_.name + ".data", lines,
                                cfg_.lineBytes * 8);
    valid_ = dfi::FaultableArray(cfg_.name + ".valid", lines, 1);
    dirty_.assign(lines, 0);
    lruStamp_.assign(lines, 0);
}

std::uint32_t
Cache::setOf(std::uint32_t addr) const
{
    return (addr >> offsetBits_) & (sets_ - 1);
}

std::uint32_t
Cache::tagOf(std::uint32_t addr) const
{
    return addr >> (offsetBits_ + setBits_);
}

std::uint32_t
Cache::rebuildAddr(std::uint32_t set, std::uint32_t tag) const
{
    return (tag << (offsetBits_ + setBits_)) | (set << offsetBits_);
}

Cache::Lookup
Cache::access(std::uint32_t addr, bool is_write, dfi::StatSet &stats)
{
    const std::uint32_t set = setOf(addr);
    const std::uint32_t tag = tagOf(addr);
    const std::string &p = cfg_.name;

    stats.inc(p + (is_write ? ".write_accesses" : ".read_accesses"));

    for (std::uint32_t way = 0; way < cfg_.ways; ++way) {
        const std::uint32_t line = set * cfg_.ways + way;
        if (!valid_.readBit(line, 0))
            continue;
        const std::uint32_t stored_tag = static_cast<std::uint32_t>(
            tags_.readBits(line, 0, tagBits_));
        if (stored_tag == tag) {
            stats.inc(p + (is_write ? ".write_hits" : ".read_hits"));
            lruStamp_[line] = ++stamp_;
            return Lookup{true, line};
        }
    }
    stats.inc(p + (is_write ? ".write_misses" : ".read_misses"));
    return Lookup{};
}

bool
Cache::probe(std::uint32_t addr) const
{
    const std::uint32_t set = setOf(addr);
    const std::uint32_t tag = tagOf(addr);
    for (std::uint32_t way = 0; way < cfg_.ways; ++way) {
        const std::uint32_t line = set * cfg_.ways + way;
        if (!valid_.peekBit(line, 0))
            continue;
        // peek path: avoid watch side effects for probes
        std::uint32_t stored = 0;
        for (std::uint32_t b = 0; b < tagBits_; ++b)
            stored |= static_cast<std::uint32_t>(
                          tags_.peekBit(line, b))
                      << b;
        if (stored == tag)
            return true;
    }
    return false;
}

Cache::Eviction
Cache::fillTagsOnly(std::uint32_t addr, dfi::StatSet &stats)
{
    return fill(addr, nullptr, stats);
}

Cache::Eviction
Cache::fill(std::uint32_t addr, const std::uint8_t *bytes,
            dfi::StatSet &stats)
{
    const std::uint32_t set = setOf(addr);
    const std::uint32_t tag = tagOf(addr);

    // Victim: first invalid way, else LRU.
    std::uint32_t victim = set * cfg_.ways;
    bool found_invalid = false;
    for (std::uint32_t way = 0; way < cfg_.ways; ++way) {
        const std::uint32_t line = set * cfg_.ways + way;
        if (!valid_.readBit(line, 0)) {
            victim = line;
            found_invalid = true;
            break;
        }
    }
    if (!found_invalid) {
        std::uint64_t best = ~0ull;
        for (std::uint32_t way = 0; way < cfg_.ways; ++way) {
            const std::uint32_t line = set * cfg_.ways + way;
            if (lruStamp_[line] < best) {
                best = lruStamp_[line];
                victim = line;
            }
        }
    }

    Eviction evicted;
    if (!found_invalid) {
        stats.inc(cfg_.name + ".replacements");
        evicted.valid = true;
        evicted.dirty = dirty_[victim] != 0;
        const std::uint32_t old_tag = static_cast<std::uint32_t>(
            tags_.readBits(victim, 0, tagBits_));
        evicted.addr = rebuildAddr(set, old_tag);
        if (evicted.dirty && bytes != nullptr) {
            evicted.bytes.resize(cfg_.lineBytes);
            data_.readBytes(victim, 0, cfg_.lineBytes,
                            evicted.bytes.data());
            stats.inc(cfg_.name + ".writebacks");
        }
    }

    tags_.writeBits(victim, 0, tagBits_, tag);
    if (bytes != nullptr)
        data_.writeBytes(victim, 0, cfg_.lineBytes, bytes);
    valid_.writeBit(victim, 0, true);
    dirty_[victim] = 0;
    lruStamp_[victim] = ++stamp_;
    stats.inc(cfg_.name + ".fills");
    return evicted;
}

void
Cache::readLine(std::uint32_t line, std::uint32_t offset,
                std::uint32_t count, std::uint8_t *out) const
{
    data_.readBytes(line, offset, count, out);
}

void
Cache::writeLine(std::uint32_t line, std::uint32_t offset,
                 std::uint32_t count, const std::uint8_t *in)
{
    data_.writeBytes(line, offset, count, in);
    dirty_[line] = 1;
}

bool
Cache::lineValid(std::uint32_t line) const
{
    return valid_.peekBit(line, 0);
}

template <class Ar>
void
Cache::serializeState(Ar &ar)
{
    serial::value(ar, tags_);
    serial::value(ar, data_);
    serial::value(ar, valid_);
    serial::value(ar, dirty_);
    serial::value(ar, lruStamp_);
    serial::value(ar, stamp_);
}

template void Cache::serializeState(serial::Writer &);
template void Cache::serializeState(serial::Reader &);

} // namespace dfi::uarch

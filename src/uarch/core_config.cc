#include "uarch/core_config.hh"

#include "common/logging.hh"

namespace dfi::uarch
{

CoreConfig
marssX86Config()
{
    CoreConfig cfg;
    cfg.name = "marss-x86";
    cfg.isa = isa::IsaKind::X86;
    cfg.assertPolicy = AssertPolicy::Dense;

    cfg.numPhysInt = 256;
    cfg.numPhysFp = 256;
    cfg.iqEntries = 32;
    cfg.unifiedLsq = true;
    cfg.lsqEntries = 32;
    cfg.robEntries = 64;

    cfg.intAlus = 2;
    cfg.complexAlus = 2;
    cfg.agus = 4;

    cfg.aggressiveLoadIssue = true;
    cfg.lsqHoldsLoadData = true;
    cfg.hypervisor = true;
    cfg.syscallCost = 150; // QEMU world switch is expensive
    cfg.kernelTickCost = 60;
    cfg.kernelTouchLines = 0; // QEMU bypasses the simulated caches

    cfg.chooserIndex = ChooserIndex::ByAddress;
    cfg.splitBtb = true;
    cfg.btb = BtbConfig{"btb", 1024, 4};
    cfg.btbIndirect = BtbConfig{"btb_indirect", 512, 4};

    cfg.hier.mode = HierMode::Shadow;
    cfg.hier.prefetchL1D = true; // MaFIN "New" components
    cfg.hier.prefetchL1I = true;
    return cfg;
}

namespace
{

CoreConfig
gem5Common()
{
    CoreConfig cfg;
    cfg.assertPolicy = AssertPolicy::Sparse;

    cfg.numPhysInt = 256;
    cfg.numPhysFp = 128;
    cfg.iqEntries = 32;
    cfg.unifiedLsq = false;
    cfg.lqEntries = 16;
    cfg.sqEntries = 16;
    cfg.robEntries = 40;

    cfg.aggressiveLoadIssue = false;
    cfg.lsqHoldsLoadData = false;
    cfg.hypervisor = false;
    cfg.syscallCost = 80; // handled internally
    cfg.kernelTickCost = 50;
    cfg.kernelTouchLines = 24; // kernel code occupies a large L1I share

    cfg.chooserIndex = ChooserIndex::ByHistory;
    cfg.splitBtb = false;
    cfg.btb = BtbConfig{"btb", 2048, 1};

    cfg.hier.mode = HierMode::WriteBack;
    cfg.hier.prefetchL1D = false;
    cfg.hier.prefetchL1I = false;
    return cfg;
}

} // namespace

CoreConfig
gem5X86Config()
{
    CoreConfig cfg = gem5Common();
    cfg.name = "gem5-x86";
    cfg.isa = isa::IsaKind::X86;
    cfg.intAlus = 6;
    cfg.complexAlus = 2;
    cfg.agus = 4;
    return cfg;
}

CoreConfig
gem5ArmConfig()
{
    CoreConfig cfg = gem5Common();
    cfg.name = "gem5-arm";
    cfg.isa = isa::IsaKind::Arm;
    cfg.intAlus = 2;
    cfg.complexAlus = 1;
    cfg.agus = 2;
    return cfg;
}


CoreConfig
coreConfigByName(const std::string &name)
{
    if (name == "marss-x86")
        return marssX86Config();
    if (name == "gem5-x86")
        return gem5X86Config();
    if (name == "gem5-arm")
        return gem5ArmConfig();
    fatal("unknown core configuration '%s'", name);
}

void
scaleCaches(CoreConfig &config, double scale)
{
    if (scale <= 0.0 || scale > 1.0)
        fatal("cache scale %s out of (0, 1]", scale);
    auto shrink = [&](CacheConfig &cache, std::uint32_t floor_bytes) {
        auto size = static_cast<std::uint32_t>(
            static_cast<double>(cache.sizeBytes) * scale);
        // Round down to a power-of-two multiple of line*ways.
        const std::uint32_t quantum = cache.lineBytes * cache.ways;
        std::uint32_t sets = 1;
        while (quantum * sets * 2 <= std::max(size, floor_bytes))
            sets *= 2;
        cache.sizeBytes = quantum * sets;
    };
    shrink(config.hier.l1i, 2048);
    shrink(config.hier.l1d, 2048);
    // The L2 shrinks quadratically (scale^2, floored at 8 KiB): at
    // this repository's workload footprints a same-ratio L2 would
    // never see refills, unlike the paper's testbed where MiBench
    // working sets overflow the L1s regularly.
    if (scale < 1.0) {
        CacheConfig &l2 = config.hier.l2;
        l2.sizeBytes = static_cast<std::uint32_t>(
            static_cast<double>(l2.sizeBytes) * scale);
        shrink(l2, 8192);
    }
}

const std::vector<std::string> &
coreConfigNames()
{
    static const std::vector<std::string> names = {"marss-x86",
                                                   "gem5-x86",
                                                   "gem5-arm"};
    return names;
}

} // namespace dfi::uarch

/**
 * @file
 * Cycle-level out-of-order core.
 *
 * One engine implements the classic OoO pipeline — fetch (through
 * L1I, predictors, RAS), rename (physical register file, free list),
 * dispatch (ROB, issue queue with an injectable packed payload array,
 * load/store queues with injectable data-field arrays), issue
 * (oldest-first, FU-constrained), execute (latencies, DTLB, L1D/L2
 * accesses, store-to-load forwarding, memory-order violations),
 * writeback (mispredict recovery by ROB walk) and in-order commit
 * (stores drain to the cache, syscalls serialize, exceptions
 * resolve) — and the CoreConfig policies instantiate the paper's
 * three machines on top of it.
 *
 * Everything architecturally or microarchitecturally stateful is a
 * value member, so checkpointing a core is plain copy construction —
 * and because the bulk stores (guest memory, FaultableArrays) sit in
 * copy-on-write pages, that copy shares the bulk state and costs
 * O(touched pages) rather than O(core size).
 *
 * The core is UB-free under arbitrary corruption of its injectable
 * arrays: every index read back from an array passes a
 * checkInvariant() checkpoint whose outcome (Assert / simulator Crash
 * / tolerate) depends on the configured AssertPolicy, reproducing the
 * paper's Remark 8.
 */

#ifndef DFI_UARCH_OOO_CORE_HH
#define DFI_UARCH_OOO_CORE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/image.hh"
#include "isa/macroop.hh"
#include "storage/structure_id.hh"
#include "syskit/os.hh"
#include "syskit/run_record.hh"
#include "uarch/branch.hh"
#include "uarch/core_config.hh"
#include "uarch/hier.hh"
#include "uarch/tlb.hh"

namespace dfi::uarch
{

/** One in-flight instruction (ROB entry). */
struct Uop
{
    static constexpr std::uint16_t kNoPhys = 0xffff;
    static constexpr std::uint8_t kNoArch = 0xff;

    enum class Stage : std::uint8_t
    {
        InIq,       //!< waiting in the issue queue
        Exec,       //!< executing on a functional unit
        Mem,        //!< waiting for the data access
        Done,       //!< result available, pre-writeback
        WrittenBack //!< committed state pending retirement
    };

    enum class Exc : std::uint8_t
    {
        None,
        Illegal,
        Halt,
        MemFault
    };

    bool valid = false;
    isa::MacroOp op;
    std::uint32_t pc = 0;
    std::uint32_t npc = 0;       //!< pc + length
    std::uint64_t seq = 0;
    Stage stage = Stage::InIq;
    std::uint64_t readyCycle = 0;

    // Renaming.
    std::uint8_t archDst = kNoArch;
    std::uint8_t archDst2 = kNoArch; //!< implicit SP / flags dest
    std::uint16_t physDst = kNoPhys;
    std::uint16_t physDst2 = kNoPhys;
    std::uint16_t oldPhys = kNoPhys;
    std::uint16_t oldPhys2 = kNoPhys;
    std::uint16_t physSrc1 = kNoPhys;
    std::uint16_t physSrc2 = kNoPhys;

    // Issue-time captured state.
    std::uint32_t srcVal1 = 0;
    std::uint32_t srcVal2 = 0;
    std::uint16_t issuedPhysDst = kNoPhys; //!< read from the IQ array

    // Results.
    std::uint32_t result = 0;  //!< primary destination value
    std::uint32_t result2 = 0; //!< implicit destination value

    // Memory.
    bool isLoad = false;
    bool isStore = false;
    bool addrResolved = false;
    bool loadDone = false;
    std::uint32_t memVA = 0;
    std::uint32_t memPA = 0;
    std::uint8_t memWidth = 4;
    int lsqSlot = -1; //!< slot in its (load or store or unified) queue
    int iqSlot = -1;

    // Control flow.
    bool isBranch = false;
    std::uint32_t predNextPc = 0;
    bool actualTaken = false;
    std::uint32_t actualNextPc = 0;

    // Exceptions / DUE evidence (evaluated if the uop commits).
    Exc exc = Exc::None;
    bool dueDivZero = false;
    bool dueMisaligned = false;

    bool isSyscall = false;

    /** Serialize all fields (cache spill). */
    template <class Ar> void serializeState(Ar &ar);
};

/** A decoded-and-predicted instruction waiting for rename. */
struct FetchedInst
{
    isa::MacroOp op;
    std::uint32_t pc = 0;
    std::uint32_t predNextPc = 0;

    /** Serialize all fields (cache spill). */
    template <class Ar> void serializeState(Ar &ar);
};

/** The core. */
class OooCore
{
  public:
    OooCore(const CoreConfig &config, const isa::Image &image);

    /**
     * Advance one cycle.
     * @return false once the run has terminated (record() is final).
     */
    bool tick();

    /** True when the run has terminated. */
    bool finished() const { return finished_; }

    /** Outcome record (valid once finished, or after forceTimeout). */
    const syskit::RunRecord &record() const { return record_; }

    /** Terminate now with the Timeout classification. */
    void forceTimeout();

    std::uint64_t cycle() const { return cycle_; }
    std::uint64_t committedInstructions() const { return committed_; }
    dfi::StatSet &stats() { return stats_; }
    const CoreConfig &config() const { return cfg_; }

    /**
     * Injectable-array resolver for the fault framework; returns
     * nullptr when this configuration has no such structure (e.g. the
     * unified LSQ on a split-queue core).
     */
    dfi::FaultableArray *arrayFor(dfi::StructureId id);

    /**
     * Early-stop rule (i): true when `entry` of `id` currently holds
     * live content whose corruption could matter.
     */
    bool entryLive(dfi::StructureId id, std::uint32_t entry);

    /**
     * Conservative upper bound on the bytes a checkpoint copy of this
     * core can come to own (COW pages count at full materialisation).
     * Used by the checkpoint store's memory budget; approximate — the
     * memory image and cache arrays dominate by construction.
     */
    std::uint64_t approxStateBytes() const;

    /**
     * Serialize every dynamic member (cache spill).  Geometry lives in
     * CoreConfig: loading requires a core freshly constructed from the
     * same (config, image) pair, whose state is then overwritten.
     */
    template <class Ar> void serializeState(Ar &ar);

  private:
    // Pipeline stages (called in reverse order inside tick()).
    void commitStage();
    void writebackStage();
    void executeStage();
    void issueStage();
    void renameStage();
    void fetchStage();
    void kernelTick();

    // Helpers.
    Uop &rob(std::uint32_t slot) { return rob_[slot]; }
    std::uint32_t robIndex(std::uint32_t offset) const;
    void flushFrom(std::uint64_t first_bad_seq, std::uint32_t new_pc);
    void flushAllYounger(std::uint64_t seq, std::uint32_t new_pc);
    std::uint16_t allocPhys();
    void freePhys(std::uint16_t reg);
    std::uint32_t readPhys(std::uint16_t reg);
    void writePhys(std::uint16_t reg, std::uint32_t value);
    void check(bool ok, CheckSeverity severity, const char *what) const;
    void finish(syskit::Termination term, const std::string &detail);
    bool commitOne();
    void executeMemUop(Uop &uop);
    bool resolveLoad(Uop &uop);
    void storeViolationScan(const Uop &store);
    void predictAndRedirect(FetchedInst &fetched);
    void doSyscall(Uop &uop);
    dfi::FaultableArray &lsqArrayFor(const Uop &uop, int *entry) const;

    CoreConfig cfg_;
    dfi::StatSet stats_;
    syskit::RunRecord record_;
    syskit::MiniOs os_;
    bool finished_ = false;

    std::uint64_t cycle_ = 0;
    std::uint64_t seqGen_ = 1;
    std::uint64_t committed_ = 0;

    // Memory system.
    MemHierarchy hier_;
    Tlb itlb_, dtlb_;

    // Front end.
    TournamentPredictor predictor_;
    Btb btb_, btbIndirect_;
    Ras ras_;
    std::uint32_t fetchPc_ = 0;
    std::uint64_t fetchReadyCycle_ = 0;
    std::vector<FetchedInst> fetchQueue_;

    // Register state.
    dfi::FaultableArray intRf_;
    dfi::FaultableArray fpRf_;
    std::vector<std::uint16_t> renameMap_; //!< speculative map
    std::vector<std::uint16_t> commitMap_; //!< retirement map
    std::vector<std::uint16_t> freeList_;
    std::vector<bool> physFree_;
    std::vector<bool> physReady_;

    // Windows.
    std::vector<Uop> rob_;
    std::uint32_t robHead_ = 0;
    std::uint32_t robCount_ = 0;

    dfi::FaultableArray iqArray_; //!< packed payload (injectable)
    std::vector<bool> iqBusy_;

    // Load/store queues: slot occupancy plus injectable data arrays.
    dfi::FaultableArray lsqData_; //!< unified (MARSS) data fields
    dfi::FaultableArray lqData_;  //!< split load queue "data" fields
    dfi::FaultableArray sqData_;  //!< split store queue data fields
    std::vector<bool> lqBusy_, sqBusy_;

    // Stall bookkeeping.
    std::uint64_t frontendStallUntil_ = 0;
};

} // namespace dfi::uarch

#endif // DFI_UARCH_OOO_CORE_HH

#include "uarch/hier.hh"

#include "common/logging.hh"

namespace dfi::uarch
{

MemHierarchy::MemHierarchy(const HierConfig &config,
                           syskit::GuestMemory memory)
    : cfg_(config), memory_(std::move(memory)), l1i_(config.l1i),
      l1d_(config.l1d), l2_(config.l2),
      pfD_("prefetch_l1d", config.l1d.lineBytes),
      pfI_("prefetch_l1i", config.l1i.lineBytes)
{
}

bool
MemHierarchy::directRead(std::uint32_t pa, std::uint32_t count,
                         std::uint8_t *out) const
{
    if (static_cast<std::uint64_t>(pa) + count > memory_.size())
        return false;
    memory_.peekBytes(pa, count, out);
    return true;
}

bool
MemHierarchy::directWrite(std::uint32_t pa, std::uint32_t count,
                          const std::uint8_t *in)
{
    if (static_cast<std::uint64_t>(pa) + count > memory_.size())
        return false;
    memory_.pokeBytes(pa, count, in);
    return true;
}

std::uint32_t
MemHierarchy::ensureLineL2(std::uint32_t line_addr, std::uint8_t *bytes,
                           dfi::StatSet &stats)
{
    const std::uint32_t line_len = cfg_.l2.lineBytes;
    std::uint32_t latency = cfg_.l2.hitLatency;
    const Cache::Lookup hit = l2_.access(line_addr, false, stats);
    if (hit.hit) {
        l2_.readLine(hit.line, 0, line_len, bytes);
        return latency;
    }
    // Miss: fetch from memory.
    latency += cfg_.memLatency;
    if (static_cast<std::uint64_t>(line_addr) + line_len <=
        memory_.size()) {
        memory_.peekBytes(line_addr, line_len, bytes);
    } else {
        for (std::uint32_t i = 0; i < line_len; ++i)
            bytes[i] = 0;
    }
    const Cache::Eviction evicted = l2_.fill(line_addr, bytes, stats);
    handleL2Eviction(evicted);
    // Read back through the data array so resident L2 faults apply to
    // the filled line immediately.
    const Cache::Lookup refetch = l2_.access(line_addr, false, stats);
    if (refetch.hit)
        l2_.readLine(refetch.line, 0, line_len, bytes);
    return latency;
}

void
MemHierarchy::handleL2Eviction(const Cache::Eviction &evicted)
{
    if (!evicted.valid || !evicted.dirty || evicted.bytes.empty())
        return;
    if (static_cast<std::uint64_t>(evicted.addr) +
            evicted.bytes.size() <=
        memory_.size()) {
        memory_.pokeBytes(evicted.addr,
                          static_cast<std::uint32_t>(
                              evicted.bytes.size()),
                          evicted.bytes.data());
    }
    // A write-back to an unmapped (tag-corrupted) address is dropped
    // by the memory controller.
}

void
MemHierarchy::handleL1Eviction(const Cache::Eviction &evicted,
                               dfi::StatSet &stats)
{
    if (!evicted.valid || !evicted.dirty || evicted.bytes.empty())
        return; // tags-only evictions carry no data to move
    // Dirty L1 victim: install into L2 (allocate-on-writeback).
    const std::uint32_t line_len = cfg_.l2.lineBytes;
    const Cache::Lookup hit = l2_.access(evicted.addr, true, stats);
    if (hit.hit) {
        l2_.writeLine(hit.line, 0, line_len, evicted.bytes.data());
    } else {
        const Cache::Eviction l2_victim =
            l2_.fill(evicted.addr, evicted.bytes.data(), stats);
        // The incoming line is dirty relative to memory.
        const Cache::Lookup placed = l2_.access(evicted.addr, true, stats);
        if (placed.hit)
            l2_.writeLine(placed.line, 0, 0, evicted.bytes.data());
        handleL2Eviction(l2_victim);
    }
    if (cfg_.mode == HierMode::Shadow) {
        // Shadow mode: propagate to authoritative memory too (no-op
        // unless the array content was faulted).
        if (static_cast<std::uint64_t>(evicted.addr) +
                evicted.bytes.size() <=
            memory_.size()) {
            memory_.pokeBytes(evicted.addr,
                              static_cast<std::uint32_t>(
                                  evicted.bytes.size()),
                              evicted.bytes.data());
        }
    }
}

std::pair<std::uint32_t, std::uint32_t>
MemHierarchy::ensureLine(Cache &l1, std::uint32_t pa, bool is_write,
                         bool is_fetch, dfi::StatSet &stats)
{
    const std::uint32_t line_addr = l1.lineAddr(pa);
    std::uint32_t latency = l1.config().hitLatency;
    Cache::Lookup hit = l1.access(pa, is_write, stats);
    if (!hit.hit) {
        if (cfg_.mode == HierMode::Shadow && !cfg_.modelDataArrays) {
            // Original-MARSS fill: tags/valid only, no byte traffic.
            latency += cfg_.l2.hitLatency;
            const Cache::Lookup l2_hit =
                l2_.access(line_addr, false, stats);
            if (!l2_hit.hit) {
                latency += cfg_.memLatency;
                handleL2Eviction(l2_.fillTagsOnly(line_addr, stats));
            }
            handleL1Eviction(l1.fillTagsOnly(line_addr, stats),
                             stats);
            hit = l1.access(pa, false, stats);
            if (!hit.hit)
                return {~0u, latency};
            return {hit.line, latency};
        }
        std::vector<std::uint8_t> bytes(l1.config().lineBytes);
        latency += ensureLineL2(line_addr, bytes.data(), stats);
        const Cache::Eviction evicted =
            l1.fill(line_addr, bytes.data(), stats);
        handleL1Eviction(evicted, stats);
        hit = l1.access(pa, false, stats);
        if (!hit.hit) {
            // A resident fault in the tag/valid arrays can make the
            // just-filled line unreachable; treat as repeated miss.
            stats.inc(l1.config().name + ".fill_lost");
            return {~0u, latency};
        }
        // Demand-miss prefetch.
        if (is_fetch && cfg_.prefetchL1I)
            prefetchInto(l1i_, pfI_, line_addr, true, stats);
        else if (!is_fetch && cfg_.prefetchL1D)
            prefetchInto(l1d_, pfD_, line_addr, false, stats);
    }
    return {hit.line, latency};
}

void
MemHierarchy::prefetchInto(Cache &l1, NextLinePrefetcher &pf,
                           std::uint32_t miss_line, bool is_fetch,
                           dfi::StatSet &stats)
{
    (void)is_fetch;
    const std::uint32_t target = pf.onMiss(miss_line);
    if (target >= memory_.size())
        return;
    if (l1.probe(target))
        return;
    stats.inc(l1.config().name + ".prefetches");
    std::vector<std::uint8_t> bytes(l1.config().lineBytes);
    ensureLineL2(l1.lineAddr(target), bytes.data(), stats);
    const Cache::Eviction evicted =
        l1.fill(l1.lineAddr(target), bytes.data(), stats);
    handleL1Eviction(evicted, stats);
}

MemHierarchy::Access
MemHierarchy::accessLine(Cache &l1, std::uint32_t pa,
                         std::uint32_t count, std::uint8_t *data,
                         bool is_write, bool is_fetch,
                         dfi::StatSet &stats)
{
    Access access;
    if (static_cast<std::uint64_t>(pa) + count > memory_.size()) {
        access.ok = false;
        for (std::uint32_t i = 0; i < count && !is_write; ++i)
            data[i] = 0;
        return access;
    }
    const auto [line, latency] =
        ensureLine(l1, pa, is_write, is_fetch, stats);
    access.latency = latency;
    if (line == ~0u) {
        // Unreachable line (resident tag fault): fall back to memory
        // content like a repeated miss would eventually.
        access.latency += cfg_.memLatency;
        if (is_write)
            memory_.pokeBytes(pa, count, data);
        else
            memory_.peekBytes(pa, count, data);
        return access;
    }
    const std::uint32_t offset = pa - l1.lineAddr(pa);
    if (cfg_.mode == HierMode::Shadow && !cfg_.modelDataArrays) {
        // Original-MARSS behaviour: data lives only in main memory;
        // the caches track tags/timing but hold no data arrays.
        if (is_write)
            memory_.pokeBytes(pa, count, data);
        else
            memory_.peekBytes(pa, count, data);
        return access;
    }
    if (is_write) {
        l1.writeLine(line, offset, count, data);
        if (cfg_.mode == HierMode::Shadow)
            memory_.pokeBytes(pa, count, data); // authoritative copy
    } else {
        l1.readLine(line, offset, count, data);
    }
    return access;
}

MemHierarchy::Access
MemHierarchy::read(std::uint32_t pa, std::uint32_t count,
                   std::uint8_t *out, dfi::StatSet &stats)
{
    Access total;
    std::uint32_t done = 0;
    while (done < count) {
        const std::uint32_t line_addr = l1d_.lineAddr(pa + done);
        const std::uint32_t line_left =
            line_addr + cfg_.l1d.lineBytes - (pa + done);
        const std::uint32_t chunk = std::min(count - done, line_left);
        const Access a = accessLine(l1d_, pa + done, chunk, out + done,
                                    false, false, stats);
        total.latency += a.latency;
        total.ok = total.ok && a.ok;
        done += chunk;
    }
    return total;
}

MemHierarchy::Access
MemHierarchy::write(std::uint32_t pa, std::uint32_t count,
                    const std::uint8_t *in, dfi::StatSet &stats)
{
    Access total;
    std::uint32_t done = 0;
    std::uint8_t buffer[64];
    while (done < count) {
        const std::uint32_t line_addr = l1d_.lineAddr(pa + done);
        const std::uint32_t line_left =
            line_addr + cfg_.l1d.lineBytes - (pa + done);
        const std::uint32_t chunk = std::min(count - done, line_left);
        for (std::uint32_t i = 0; i < chunk; ++i)
            buffer[i] = in[done + i];
        const Access a = accessLine(l1d_, pa + done, chunk, buffer,
                                    true, false, stats);
        total.latency += a.latency;
        total.ok = total.ok && a.ok;
        done += chunk;
    }
    return total;
}

MemHierarchy::Access
MemHierarchy::fetch(std::uint32_t pa, std::uint32_t count,
                    std::uint8_t *out, dfi::StatSet &stats)
{
    Access total;
    std::uint32_t done = 0;
    while (done < count) {
        const std::uint32_t line_addr = l1i_.lineAddr(pa + done);
        const std::uint32_t line_left =
            line_addr + cfg_.l1i.lineBytes - (pa + done);
        const std::uint32_t chunk = std::min(count - done, line_left);
        const Access a = accessLine(l1i_, pa + done, chunk, out + done,
                                    false, true, stats);
        total.latency += a.latency;
        total.ok = total.ok && a.ok;
        done += chunk;
    }
    return total;
}

MemHierarchy::Access
MemHierarchy::kernelRead(std::uint32_t pa, std::uint32_t count,
                         std::uint8_t *out, dfi::StatSet &stats)
{
    return read(pa, count, out, stats);
}

void
MemHierarchy::kernelTouchInstr(std::uint32_t pa, dfi::StatSet &stats)
{
    if (pa >= memory_.size())
        return;
    std::uint8_t dummy[4];
    (void)accessLine(l1i_, pa, std::min<std::uint32_t>(4, 64), dummy,
                     false, true, stats);
}

template <class Ar>
void
MemHierarchy::serializeState(Ar &ar)
{
    serial::value(ar, memory_);
    serial::value(ar, l1i_);
    serial::value(ar, l1d_);
    serial::value(ar, l2_);
    serial::value(ar, pfD_);
    serial::value(ar, pfI_);
}

template void MemHierarchy::serializeState(serial::Writer &);
template void MemHierarchy::serializeState(serial::Reader &);

} // namespace dfi::uarch

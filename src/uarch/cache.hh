/**
 * @file
 * Set-associative write-back cache with bit-accurate, injectable
 * tag / data / valid arrays.
 *
 * The tag, data and valid arrays are FaultableArrays: a flipped tag
 * bit makes a resident line unreachable (or aliases it onto another
 * address — including a corrupted write-back address), a flipped
 * valid bit drops or resurrects a line, and flipped data bits ride
 * through loads, fetches, forwards and write-backs exactly as in the
 * paper's extended MARSS/gem5 models.  Dirty bits and LRU state are
 * plain simulator state (not Table IV injection targets).
 */

#ifndef DFI_UARCH_CACHE_HH
#define DFI_UARCH_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "storage/faultable_array.hh"

namespace dfi::uarch
{

/** Geometry of one cache. */
struct CacheConfig
{
    std::string name;          //!< stat prefix, e.g. "l1d"
    std::uint32_t sizeBytes = 32 * 1024;
    std::uint32_t lineBytes = 64;
    std::uint32_t ways = 4;
    std::uint32_t hitLatency = 2;
};

/** One write-back cache level. */
class Cache
{
  public:
    Cache() = default;
    explicit Cache(const CacheConfig &config);

    const CacheConfig &config() const { return cfg_; }
    std::uint32_t numSets() const { return sets_; }
    std::uint32_t numLines() const { return sets_ * cfg_.ways; }

    /** Result of a lookup. */
    struct Lookup
    {
        bool hit = false;
        std::uint32_t line = 0; //!< line index when hit
    };

    /**
     * Probe for `addr`'s line; updates LRU and hit/miss statistics.
     * Reads the valid and tag arrays (fault-visible).
     */
    Lookup access(std::uint32_t addr, bool is_write,
                  dfi::StatSet &stats);

    /** Probe without LRU/stat side effects (and without array reads). */
    bool probe(std::uint32_t addr) const;

    /** Evicted-line descriptor returned by fill(). */
    struct Eviction
    {
        bool valid = false;
        bool dirty = false;
        std::uint32_t addr = 0; //!< reconstructed from the tag array
        std::vector<std::uint8_t> bytes;
    };

    /**
     * Install the line containing `addr` with the given bytes
     * (lineBytes of them); returns the victim.  Counts a replacement
     * of a valid line in the statistics.
     */
    Eviction fill(std::uint32_t addr, const std::uint8_t *bytes,
                  dfi::StatSet &stats);

    /**
     * Install only the tag/valid state for `addr` (no data-array
     * traffic; the eviction carries no bytes).  This is the original
     * MARSS behaviour before the MaFIN data-array extension —
     * timing-complete, injection-blind.
     */
    Eviction fillTagsOnly(std::uint32_t addr, dfi::StatSet &stats);

    /** Read bytes within a resident line (data array read). */
    void readLine(std::uint32_t line, std::uint32_t offset,
                  std::uint32_t count, std::uint8_t *out) const;

    /** Write bytes within a resident line; marks it dirty. */
    void writeLine(std::uint32_t line, std::uint32_t offset,
                   std::uint32_t count, const std::uint8_t *in);

    /** Line-aligned base address of `addr`. */
    std::uint32_t
    lineAddr(std::uint32_t addr) const
    {
        return addr & ~(cfg_.lineBytes - 1);
    }

    /** True when the line is live (valid-bit array read). */
    bool lineValid(std::uint32_t line) const;

    /** Injectable arrays. */
    dfi::FaultableArray &tagArray() { return tags_; }
    dfi::FaultableArray &dataArray() { return data_; }
    dfi::FaultableArray &validArray() { return valid_; }

    /** Serialize dynamic state (arrays, dirty/LRU books). */
    template <class Ar> void serializeState(Ar &ar);

    /** Upper bound on checkpointable state (budget accounting). */
    std::uint64_t
    approxStateBytes() const
    {
        return tags_.storageBytes() + data_.storageBytes() +
               valid_.storageBytes() + dirty_.size() +
               lruStamp_.size() * sizeof(std::uint64_t);
    }

  private:
    std::uint32_t setOf(std::uint32_t addr) const;
    std::uint32_t tagOf(std::uint32_t addr) const;
    std::uint32_t rebuildAddr(std::uint32_t set,
                              std::uint32_t tag) const;

    CacheConfig cfg_;
    std::uint32_t sets_ = 0;
    std::uint32_t offsetBits_ = 0;
    std::uint32_t setBits_ = 0;
    std::uint32_t tagBits_ = 0;

    dfi::FaultableArray tags_;
    dfi::FaultableArray data_;
    dfi::FaultableArray valid_;
    std::vector<std::uint8_t> dirty_;
    std::vector<std::uint64_t> lruStamp_;
    std::uint64_t stamp_ = 0;
};

} // namespace dfi::uarch

#endif // DFI_UARCH_CACHE_HH

/**
 * @file
 * Direct-mapped TLB with injectable valid/tag/frame fields.
 *
 * The guest uses identity translation, but every access still goes
 * through the TLB arrays — so a fault in a tag produces false
 * misses/hits and a fault in a frame number redirects the access to a
 * different physical page, exactly the failure modes of a real TLB.
 *
 * Entry layout (one FaultableArray row): [valid:1][tag:20][pfn:20].
 */

#ifndef DFI_UARCH_TLB_HH
#define DFI_UARCH_TLB_HH

#include <cstdint>
#include <string>

#include "common/stats.hh"
#include "storage/faultable_array.hh"

namespace dfi::uarch
{

/** One TLB (instruction or data). */
class Tlb
{
  public:
    Tlb() = default;
    Tlb(std::string name, std::uint32_t entries,
        std::uint32_t miss_latency = 20);

    /** Result of a translation. */
    struct Result
    {
        std::uint32_t pa = 0;
        std::uint32_t latency = 0; //!< extra cycles (miss walk)
    };

    /** Translate a virtual address (fills the entry on miss). */
    Result translate(std::uint32_t va, dfi::StatSet &stats);

    dfi::FaultableArray &array() { return array_; }
    /** True when entry `index` currently holds a mapping. */
    bool entryLive(std::size_t index) const;

    /** Serialize the entry array (cache spill). */
    template <class Ar> void serializeState(Ar &ar);

  private:
    std::string name_;
    std::uint32_t entries_ = 0;
    std::uint32_t missLatency_ = 20;
    dfi::FaultableArray array_;
};

} // namespace dfi::uarch

#endif // DFI_UARCH_TLB_HH

/**
 * @file
 * Front-end branch machinery: tournament direction predictor, branch
 * target buffers (two organizations), return-address stack.
 *
 * The two simulators instantiate different front-ends, per the paper:
 *  - MARSS-like: the meta (chooser) prediction is bound to the branch
 *    address; the BTB is split (4-way 1K-entry direct-branch BTB and
 *    4-way 512-entry indirect BTB).
 *  - gem5-like: the chooser and global components are indexed by the
 *    global history only (branch address ignored); one direct-mapped
 *    2K-entry BTB for all branches.
 * (Section IV, Remark 6 attributes L1I divergence to exactly these
 * differences.)
 *
 * BTB entries and the RAS are injectable arrays (Table IV); the
 * two-bit counter tables are plain state.
 */

#ifndef DFI_UARCH_BRANCH_HH
#define DFI_UARCH_BRANCH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "storage/faultable_array.hh"

namespace dfi::uarch
{

/** How the chooser/global tables are indexed. */
enum class ChooserIndex
{
    ByAddress, //!< MARSS-like: branch pc selects the meta entry
    ByHistory  //!< gem5-like: global history selects the meta entry
};

/** Tournament direction predictor (local + global + chooser). */
class TournamentPredictor
{
  public:
    TournamentPredictor() = default;
    explicit TournamentPredictor(ChooserIndex index_scheme);

    /** Predict the direction of the branch at `pc`. */
    bool predict(std::uint32_t pc) const;

    /** Train with the actual outcome and update histories. */
    void update(std::uint32_t pc, bool taken);

    /** Serialize predictor tables and history (cache spill). */
    template <class Ar> void serializeState(Ar &ar);

  private:
    std::uint32_t localIndex(std::uint32_t pc) const;
    std::uint32_t globalIndex(std::uint32_t pc) const;
    std::uint32_t chooserIdx(std::uint32_t pc) const;

    ChooserIndex scheme_ = ChooserIndex::ByAddress;
    std::vector<std::uint8_t> localPht_;   // 1024 x 2-bit
    std::vector<std::uint16_t> localHist_; // 1024 x 10-bit
    std::vector<std::uint8_t> globalPht_;  // 4096 x 2-bit
    std::vector<std::uint8_t> chooser_;    // 4096 x 2-bit
    std::uint32_t ghr_ = 0;
};

/** BTB organization. */
struct BtbConfig
{
    std::string name;
    std::uint32_t entries = 2048;
    std::uint32_t ways = 1; //!< 1 = direct-mapped
};

/**
 * Branch target buffer.  Entry row layout:
 * [tag:16][target:32] with a separate valid bit array.
 */
class Btb
{
  public:
    Btb() = default;
    explicit Btb(const BtbConfig &config);

    /** Predicted target for `pc`, or 0 when no entry matches. */
    std::uint32_t lookup(std::uint32_t pc, dfi::StatSet &stats);

    /** Install/refresh the target of a taken branch. */
    void update(std::uint32_t pc, std::uint32_t target);

    dfi::FaultableArray &array() { return array_; }
    bool entryLive(std::size_t index) const;

    /** Serialize entry array and LRU books (cache spill). */
    template <class Ar> void serializeState(Ar &ar);

  private:
    std::uint32_t setOf(std::uint32_t pc) const;
    std::uint32_t tagOf(std::uint32_t pc) const;

    BtbConfig cfg_;
    std::uint32_t sets_ = 0;
    dfi::FaultableArray array_; //!< rows: [valid:1][tag:16][target:32]
    std::vector<std::uint64_t> lru_;
    std::uint64_t stamp_ = 0;
};

/** Return-address stack with an injectable entry array. */
class Ras
{
  public:
    Ras() = default;
    explicit Ras(std::string name, std::uint32_t entries = 16);

    void push(std::uint32_t return_pc);
    /** Predicted return target (0 when empty). */
    std::uint32_t pop();

    dfi::FaultableArray &array() { return array_; }
    std::uint32_t depth() const { return depth_; }
    std::uint32_t capacity() const { return entries_; }

    /** Serialize stack state (cache spill). */
    template <class Ar> void serializeState(Ar &ar);

  private:
    std::uint32_t entries_ = 16;
    std::uint32_t top_ = 0;   //!< next push slot
    std::uint32_t depth_ = 0; //!< live entries (<= entries_)
    dfi::FaultableArray array_;
};

} // namespace dfi::uarch

#endif // DFI_UARCH_BRANCH_HH

#include "uarch/branch.hh"

namespace dfi::uarch
{

namespace
{

constexpr std::uint32_t kLocalEntries = 1024;
constexpr std::uint32_t kLocalHistBits = 10;
constexpr std::uint32_t kGlobalEntries = 4096;
constexpr std::uint32_t kGhrBits = 12;
constexpr std::uint32_t kBtbTagBits = 16;

void
bump(std::uint8_t &counter, bool up)
{
    if (up && counter < 3)
        ++counter;
    else if (!up && counter > 0)
        --counter;
}

} // namespace

TournamentPredictor::TournamentPredictor(ChooserIndex index_scheme)
    : scheme_(index_scheme), localPht_(kLocalEntries, 1),
      localHist_(kLocalEntries, 0), globalPht_(kGlobalEntries, 1),
      chooser_(kGlobalEntries, 2)
{
}

std::uint32_t
TournamentPredictor::localIndex(std::uint32_t pc) const
{
    return (pc >> 1) & (kLocalEntries - 1);
}

std::uint32_t
TournamentPredictor::globalIndex(std::uint32_t pc) const
{
    if (scheme_ == ChooserIndex::ByAddress) {
        // MARSS-like: history xor address.
        return (ghr_ ^ (pc >> 1)) & (kGlobalEntries - 1);
    }
    // gem5-like: pure history, the address is ignored.
    return ghr_ & (kGlobalEntries - 1);
}

std::uint32_t
TournamentPredictor::chooserIdx(std::uint32_t pc) const
{
    if (scheme_ == ChooserIndex::ByAddress)
        return (pc >> 1) & (kGlobalEntries - 1);
    return ghr_ & (kGlobalEntries - 1);
}

bool
TournamentPredictor::predict(std::uint32_t pc) const
{
    const std::uint16_t lh = localHist_[localIndex(pc)];
    const bool local_pred =
        localPht_[lh & (kLocalEntries - 1)] >= 2;
    const bool global_pred = globalPht_[globalIndex(pc)] >= 2;
    const bool use_global = chooser_[chooserIdx(pc)] >= 2;
    return use_global ? global_pred : local_pred;
}

void
TournamentPredictor::update(std::uint32_t pc, bool taken)
{
    const std::uint32_t li = localIndex(pc);
    const std::uint16_t lh = localHist_[li];
    std::uint8_t &local = localPht_[lh & (kLocalEntries - 1)];
    std::uint8_t &global = globalPht_[globalIndex(pc)];
    std::uint8_t &meta = chooser_[chooserIdx(pc)];

    const bool local_correct = (local >= 2) == taken;
    const bool global_correct = (global >= 2) == taken;
    if (local_correct != global_correct)
        bump(meta, global_correct);

    bump(local, taken);
    bump(global, taken);

    localHist_[li] = static_cast<std::uint16_t>(
        ((lh << 1) | (taken ? 1 : 0)) & ((1u << kLocalHistBits) - 1));
    ghr_ = ((ghr_ << 1) | (taken ? 1 : 0)) & ((1u << kGhrBits) - 1);
}

Btb::Btb(const BtbConfig &config)
    : cfg_(config), sets_(config.entries / config.ways),
      array_(config.name, config.entries, 1 + kBtbTagBits + 32),
      lru_(config.entries, 0)
{
}

std::uint32_t
Btb::setOf(std::uint32_t pc) const
{
    return (pc >> 1) & (sets_ - 1);
}

std::uint32_t
Btb::tagOf(std::uint32_t pc) const
{
    return (pc >> 1) & ((1u << kBtbTagBits) - 1);
}

std::uint32_t
Btb::lookup(std::uint32_t pc, dfi::StatSet &stats)
{
    const std::uint32_t set = setOf(pc);
    const std::uint32_t tag = tagOf(pc);
    stats.inc(cfg_.name + ".lookups");
    for (std::uint32_t way = 0; way < cfg_.ways; ++way) {
        const std::uint32_t entry = set * cfg_.ways + way;
        if (!array_.readBit(entry, 0))
            continue;
        const auto stored = static_cast<std::uint32_t>(
            array_.readBits(entry, 1, kBtbTagBits));
        if (stored == tag) {
            stats.inc(cfg_.name + ".hits");
            lru_[entry] = ++stamp_;
            return static_cast<std::uint32_t>(
                array_.readBits(entry, 1 + kBtbTagBits, 32));
        }
    }
    return 0;
}

void
Btb::update(std::uint32_t pc, std::uint32_t target)
{
    const std::uint32_t set = setOf(pc);
    const std::uint32_t tag = tagOf(pc);

    // Refresh a matching entry, else pick invalid/LRU victim.
    std::uint32_t victim = set * cfg_.ways;
    std::uint64_t best = ~0ull;
    for (std::uint32_t way = 0; way < cfg_.ways; ++way) {
        const std::uint32_t entry = set * cfg_.ways + way;
        if (!array_.readBit(entry, 0)) {
            victim = entry;
            best = 0;
            break;
        }
        const auto stored = static_cast<std::uint32_t>(
            array_.readBits(entry, 1, kBtbTagBits));
        if (stored == tag) {
            victim = entry;
            break;
        }
        if (lru_[entry] < best) {
            best = lru_[entry];
            victim = entry;
        }
    }
    array_.writeBit(victim, 0, true);
    array_.writeBits(victim, 1, kBtbTagBits, tag);
    array_.writeBits(victim, 1 + kBtbTagBits, 32, target);
    lru_[victim] = ++stamp_;
}

bool
Btb::entryLive(std::size_t index) const
{
    return array_.peekBit(index, 0);
}

Ras::Ras(std::string name, std::uint32_t entries)
    : entries_(entries), array_(std::move(name), entries, 32)
{
}

void
Ras::push(std::uint32_t return_pc)
{
    array_.writeBits(top_, 0, 32, return_pc);
    top_ = (top_ + 1) % entries_;
    if (depth_ < entries_)
        ++depth_;
}

std::uint32_t
Ras::pop()
{
    if (depth_ == 0)
        return 0;
    top_ = (top_ + entries_ - 1) % entries_;
    --depth_;
    return static_cast<std::uint32_t>(array_.readBits(top_, 0, 32));
}

template <class Ar>
void
TournamentPredictor::serializeState(Ar &ar)
{
    serial::value(ar, localPht_);
    serial::value(ar, localHist_);
    serial::value(ar, globalPht_);
    serial::value(ar, chooser_);
    serial::value(ar, ghr_);
}

template void TournamentPredictor::serializeState(serial::Writer &);
template void TournamentPredictor::serializeState(serial::Reader &);

template <class Ar>
void
Btb::serializeState(Ar &ar)
{
    serial::value(ar, array_);
    serial::value(ar, lru_);
    serial::value(ar, stamp_);
}

template void Btb::serializeState(serial::Writer &);
template void Btb::serializeState(serial::Reader &);

template <class Ar>
void
Ras::serializeState(Ar &ar)
{
    serial::value(ar, top_);
    serial::value(ar, depth_);
    serial::value(ar, array_);
}

template void Ras::serializeState(serial::Writer &);
template void Ras::serializeState(serial::Reader &);

} // namespace dfi::uarch

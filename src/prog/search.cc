/**
 * @file
 * `search` benchmark: Boyer-Moore-Horspool multi-pattern string search
 * (MiBench/office "stringsearch" analog).
 *
 * A synthetic text and a set of patterns are initialized data; for
 * each pattern the guest builds the 256-entry skip table (in bss) and
 * scans the text, reporting the first match offset and the total
 * match count.
 */

#include "prog/benchmark.hh"

#include <string>

#include "prog/util.hh"
#include "syskit/os.hh"

namespace dfi::prog
{

using namespace dfi::ir;
using isa::AluFunc;
using isa::Cond;
using isa::MemWidth;

namespace
{

std::string
makeText(std::size_t length)
{
    static const char *words[] = {
        "fault",  "inject", "cache",   "branch", "queue", "retire",
        "fetch",  "decode", "rename",  "issue",  "load",  "store",
        "commit", "replay", "predict", "squash", "tag",   "valid",
    };
    std::string text;
    std::size_t w = 0;
    while (text.size() < length) {
        text += words[(w * 7 + w * w) % 18];
        text += (w % 9 == 8) ? ". " : " ";
        ++w;
    }
    text.resize(length);
    return text;
}

} // namespace

Benchmark
buildSearch(std::uint32_t scale)
{
    Benchmark bench;
    bench.name = "search";

    const std::string text = makeText(2400 * scale);
    const std::vector<std::string> patterns = {
        "cache",    "rename fetch", "commit",      "squash replay",
        "predict",  "valid tag",    "notpresent",  "load store",
    };

    // --- host reference ----------------------------------------------------
    std::vector<std::uint32_t> expected;
    for (const std::string &pattern : patterns) {
        std::uint32_t first = 0xffffffffu;
        std::uint32_t count = 0;
        // Horspool.
        std::size_t skip[256];
        const std::size_t m = pattern.size();
        for (std::size_t c = 0; c < 256; ++c)
            skip[c] = m;
        for (std::size_t i = 0; i + 1 < m; ++i)
            skip[static_cast<std::uint8_t>(pattern[i])] = m - 1 - i;
        std::size_t pos = 0;
        while (pos + m <= text.size()) {
            std::size_t k = m;
            while (k > 0 && text[pos + k - 1] == pattern[k - 1])
                --k;
            if (k == 0) {
                if (first == 0xffffffffu)
                    first = static_cast<std::uint32_t>(pos);
                ++count;
                pos += 1;
            } else {
                pos += skip[static_cast<std::uint8_t>(
                    text[pos + m - 1])];
            }
        }
        expected.push_back(first);
        expected.push_back(count);
    }
    bench.expectedOutput = wordsToBytes(expected);

    // --- guest -------------------------------------------------------------
    ModuleBuilder mb;
    std::vector<std::uint8_t> text_bytes(text.begin(), text.end());
    const int text_sym = mb.addGlobal("text", text_bytes, 4);

    // Pattern blob: each pattern stored as [len][bytes...] concatenated;
    // offsets table for indexing.
    std::vector<std::uint8_t> pattern_blob;
    std::vector<std::uint32_t> pattern_offsets;
    for (const std::string &pattern : patterns) {
        pattern_offsets.push_back(
            static_cast<std::uint32_t>(pattern_blob.size()));
        pattern_blob.push_back(
            static_cast<std::uint8_t>(pattern.size()));
        pattern_blob.insert(pattern_blob.end(), pattern.begin(),
                            pattern.end());
    }
    const int blob_sym = mb.addGlobal("patterns", pattern_blob, 4);
    const int offs_sym =
        mb.addGlobal("pattern_offsets", wordsToBytes(pattern_offsets), 4);
    const int skip_sym = mb.addBss("skip_table", 256 * 4);
    const int out_sym = mb.addBss(
        "results", static_cast<std::uint32_t>(patterns.size()) * 8);

    auto f = mb.beginFunction("main", 0);
    const int num_patterns = static_cast<int>(patterns.size());
    const int text_len = static_cast<int>(text.size());

    LoopCtx p = loopBegin(f, 0, num_patterns);
    {
        VReg poff4 = f.binImm(AluFunc::Shl, p.i, 2);
        VReg off = f.load(f.add(f.globalAddr(offs_sym), poff4), 0);
        VReg pat = f.add(f.globalAddr(blob_sym), off);
        VReg m = f.load(pat, 0, MemWidth::Byte); // pattern length
        f.binImmTo(pat, AluFunc::Add, pat, 1);   // first byte

        // skip[c] = m for all c
        VReg skip = f.globalAddr(skip_sym);
        LoopCtx c = loopBegin(f, 0, 256);
        {
            VReg coff = f.binImm(AluFunc::Shl, c.i, 2);
            f.store(m, f.add(skip, coff), 0);
        }
        loopEnd(f, c);

        // for i in 0..m-2: skip[pat[i]] = m-1-i
        VReg m1 = f.binImm(AluFunc::Sub, m, 1);
        LoopCtx si = loopBeginR(f, 0, m1);
        {
            VReg ch = f.load(f.add(pat, si.i), 0, MemWidth::Byte);
            VReg choff = f.binImm(AluFunc::Shl, ch, 2);
            VReg val = f.bin(AluFunc::Sub, m1, si.i);
            f.store(val, f.add(skip, choff), 0);
        }
        loopEnd(f, si);

        // scan
        VReg first = f.var(-1);
        VReg count = f.var(0);
        VReg pos = f.var(0);
        VReg limit = f.movImm(text_len);
        f.binTo(limit, AluFunc::Sub, limit, m); // pos <= text_len - m

        const int scan_head = f.newBlock();
        const int scan_body = f.newBlock();
        const int scan_exit = f.newBlock();
        f.br(scan_head);
        f.setBlock(scan_head);
        f.condBr(Cond::Sle, pos, limit, scan_body, scan_exit);
        f.setBlock(scan_body);
        {
            VReg txt = f.globalAddr(text_sym);
            VReg window = f.add(txt, pos);

            // compare from the tail: k = m; while k>0 && match: --k
            VReg k = f.mov(m);
            const int cmp_head = f.newBlock();
            const int cmp_body = f.newBlock();
            const int cmp_done = f.newBlock();
            f.br(cmp_head);
            f.setBlock(cmp_head);
            f.condBrImm(Cond::Sgt, k, 0, cmp_body, cmp_done);
            f.setBlock(cmp_body);
            {
                VReg k1 = f.binImm(AluFunc::Sub, k, 1);
                VReg tch =
                    f.load(f.add(window, k1), 0, MemWidth::Byte);
                VReg pch = f.load(f.add(pat, k1), 0, MemWidth::Byte);
                const int matched = f.newBlock();
                f.condBr(Cond::Ne, tch, pch, cmp_done, matched);
                f.setBlock(matched);
                f.movTo(k, k1);
                f.br(cmp_head);
            }
            f.setBlock(cmp_done);

            const int hit = f.newBlock();
            const int miss = f.newBlock();
            const int cont = f.newBlock();
            f.condBrImm(Cond::Eq, k, 0, hit, miss);

            f.setBlock(hit);
            {
                const int set_first = f.newBlock();
                const int after = f.newBlock();
                f.condBrImm(Cond::Eq, first, -1, set_first, after);
                f.setBlock(set_first);
                f.movTo(first, pos);
                f.br(after);
                f.setBlock(after);
                f.binImmTo(count, AluFunc::Add, count, 1);
                f.binImmTo(pos, AluFunc::Add, pos, 1);
                f.br(cont);
            }
            f.setBlock(miss);
            {
                // pos += skip[text[pos + m - 1]]
                VReg last = f.add(window, m);
                VReg ch = f.load(last, -1, MemWidth::Byte);
                VReg choff = f.binImm(AluFunc::Shl, ch, 2);
                VReg s = f.load(f.add(f.globalAddr(skip_sym), choff), 0);
                f.binTo(pos, AluFunc::Add, pos, s);
                f.br(cont);
            }
            f.setBlock(cont);
            f.br(scan_head);
        }
        f.setBlock(scan_exit);

        // results[p] = {first, count}
        VReg out = f.globalAddr(out_sym);
        VReg roff = f.binImm(AluFunc::Shl, p.i, 3);
        VReg rptr = f.add(out, roff);
        f.store(first, rptr, 0);
        f.store(count, rptr, 4);
    }
    loopEnd(f, p);

    emitWrite(f, f.globalAddr(out_sym), f.movImm(num_patterns * 8));
    f.ret(f.movImm(0));
    mb.endFunction(f);

    bench.module = mb.take();
    return bench;
}

} // namespace dfi::prog

/**
 * @file
 * Shared synthetic-image generation for the SUSAN-style benchmarks
 * (smooth, edge, corner) and the JPEG pair (cjpeg, djpeg).
 */

#ifndef DFI_PROG_IMAGE_COMMON_HH
#define DFI_PROG_IMAGE_COMMON_HH

#include <cstdint>
#include <vector>

namespace dfi::prog
{

/**
 * Deterministic grayscale test image with structure (gradients,
 * blobs, edges) so the vision kernels have meaningful work.
 */
std::vector<std::uint8_t> makeTestImage(int width, int height);

} // namespace dfi::prog

#endif // DFI_PROG_IMAGE_COMMON_HH

#include "prog/image_common.hh"

namespace dfi::prog
{

std::vector<std::uint8_t>
makeTestImage(int width, int height)
{
    std::vector<std::uint8_t> image(
        static_cast<std::size_t>(width) * height);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            int v = (x * 255) / width; // horizontal gradient
            // A bright square blob.
            if (x >= width / 4 && x < width / 2 && y >= height / 4 &&
                y < height / 2) {
                v = 230;
            }
            // A dark diagonal band.
            if (((x + y) % 16) < 3)
                v = v / 3;
            // A vertical bar edge.
            if (x == (3 * width) / 4)
                v = 250;
            image[static_cast<std::size_t>(y) * width + x] =
                static_cast<std::uint8_t>(v);
        }
    }
    return image;
}

} // namespace dfi::prog

/**
 * @file
 * `cjpeg` benchmark: JPEG-style image encoder (MiBench/consumer
 * "cjpeg" analog): 8x8 blocks, integer two-pass cosine transform,
 * quantization, zigzag run-length entropy coding.
 */

#include "prog/benchmark.hh"

#include "prog/image_common.hh"
#include "prog/jpeg_common.hh"
#include "prog/util.hh"
#include "syskit/os.hh"

namespace dfi::prog
{

using namespace dfi::ir;
using isa::AluFunc;
using isa::Cond;
using isa::MemWidth;

Benchmark
buildCjpeg(std::uint32_t scale)
{
    Benchmark bench;
    bench.name = "cjpeg";

    const int width = 16 * static_cast<int>(scale);
    const int height = 16;
    const auto image = makeTestImage(width, height);

    const auto stream = jpegRefEncode(image, width, height);
    // Output: [stream length u32][stream bytes].
    bench.expectedOutput = wordsToBytes(
        {static_cast<std::uint32_t>(stream.size())});
    bench.expectedOutput.insert(bench.expectedOutput.end(),
                                stream.begin(), stream.end());

    auto words = [](const std::array<std::int32_t, 64> &a) {
        std::vector<std::uint32_t> w(a.begin(), a.end());
        return wordsToBytes(w);
    };

    ModuleBuilder mb;
    const int img_sym = mb.addGlobal("image", image, 4);
    const int ct_sym = mb.addGlobal("costable", words(jpegCosTable()), 4);
    const int quant_sym =
        mb.addGlobal("quant", words(jpegQuantTable()), 4);
    const int zz_sym = mb.addGlobal(
        "zigzag",
        wordsToBytes(std::vector<std::uint32_t>(jpegZigzag().begin(),
                                                jpegZigzag().end())),
        4);
    const int s_sym = mb.addBss("blk_s", 64 * 4);
    const int tmp_sym = mb.addBss("blk_tmp", 64 * 4);
    const int coef_sym = mb.addBss("blk_coef", 64 * 4);
    const int q_sym = mb.addBss("blk_q", 64 * 4);
    const int len_sym = mb.addBss("stream_len", 4);
    const int stream_sym = mb.addBss(
        "stream", static_cast<std::uint32_t>(stream.size()) + 64);

    auto f = mb.beginFunction("main", 0);
    VReg cursor = f.globalAddr(stream_sym);

    LoopCtx by = loopBegin(f, 0, height / 8);
    {
        LoopCtx bx = loopBegin(f, 0, width / 8);
        {
            // Load the block with level shift.
            LoopCtx y = loopBegin(f, 0, 8);
            {
                // src row = (by*8 + y)*width + bx*8
                VReg row = f.binImm(AluFunc::Shl, by.i, 3);
                f.binTo(row, AluFunc::Add, row, y.i);
                f.binImmTo(row, AluFunc::Mul, row, width);
                VReg col = f.binImm(AluFunc::Shl, bx.i, 3);
                f.binTo(row, AluFunc::Add, row, col);
                VReg src = f.add(f.globalAddr(img_sym), row);
                VReg drow = f.binImm(AluFunc::Shl, y.i, 5); // y*8*4
                VReg dst = f.add(f.globalAddr(s_sym), drow);
                LoopCtx x = loopBegin(f, 0, 8);
                {
                    VReg px =
                        f.load(f.add(src, x.i), 0, MemWidth::Byte);
                    f.binImmTo(px, AluFunc::Sub, px, 128);
                    VReg xo = f.binImm(AluFunc::Shl, x.i, 2);
                    f.store(px, f.add(dst, xo), 0);
                }
                loopEnd(f, x);
            }
            loopEnd(f, y);

            // Pass 1: tmp[u][x] = (sum_y ct[u][y] * s[y][x]) >> k1
            LoopCtx u = loopBegin(f, 0, 8);
            {
                VReg ct_row = f.binImm(AluFunc::Shl, u.i, 5);
                VReg ct_base = f.add(f.globalAddr(ct_sym), ct_row);
                LoopCtx x = loopBegin(f, 0, 8);
                {
                    VReg acc = f.var(0);
                    LoopCtx yy = loopBegin(f, 0, 8);
                    {
                        VReg co = f.binImm(AluFunc::Shl, yy.i, 2);
                        VReg c = f.load(f.add(ct_base, co), 0);
                        VReg so = f.binImm(AluFunc::Shl, yy.i, 5);
                        VReg xo = f.binImm(AluFunc::Shl, x.i, 2);
                        f.binTo(so, AluFunc::Add, so, xo);
                        VReg sv =
                            f.load(f.add(f.globalAddr(s_sym), so), 0);
                        VReg prod = f.bin(AluFunc::Mul, c, sv);
                        f.binTo(acc, AluFunc::Add, acc, prod);
                    }
                    loopEnd(f, yy);
                    f.binImmTo(acc, AluFunc::ShrS, acc, kFwdShift1);
                    VReg to = f.binImm(AluFunc::Shl, u.i, 5);
                    VReg xo2 = f.binImm(AluFunc::Shl, x.i, 2);
                    f.binTo(to, AluFunc::Add, to, xo2);
                    f.store(acc, f.add(f.globalAddr(tmp_sym), to), 0);
                }
                loopEnd(f, x);
            }
            loopEnd(f, u);

            // Pass 2: coef[u][v] = (sum_x ct[v][x] * tmp[u][x]) >> k2
            LoopCtx u2 = loopBegin(f, 0, 8);
            {
                LoopCtx v = loopBegin(f, 0, 8);
                {
                    VReg ct_row = f.binImm(AluFunc::Shl, v.i, 5);
                    VReg ct_base = f.add(f.globalAddr(ct_sym), ct_row);
                    VReg acc = f.var(0);
                    LoopCtx x = loopBegin(f, 0, 8);
                    {
                        VReg co = f.binImm(AluFunc::Shl, x.i, 2);
                        VReg c = f.load(f.add(ct_base, co), 0);
                        VReg to = f.binImm(AluFunc::Shl, u2.i, 5);
                        f.binTo(to, AluFunc::Add, to, co);
                        VReg tv = f.load(
                            f.add(f.globalAddr(tmp_sym), to), 0);
                        VReg prod = f.bin(AluFunc::Mul, c, tv);
                        f.binTo(acc, AluFunc::Add, acc, prod);
                    }
                    loopEnd(f, x);
                    f.binImmTo(acc, AluFunc::ShrS, acc, kFwdShift2);
                    VReg fo = f.binImm(AluFunc::Shl, u2.i, 5);
                    VReg vo = f.binImm(AluFunc::Shl, v.i, 2);
                    f.binTo(fo, AluFunc::Add, fo, vo);
                    f.store(acc, f.add(f.globalAddr(coef_sym), fo), 0);
                }
                loopEnd(f, v);
            }
            loopEnd(f, u2);

            // Quantize: q[i] = coef[i] / quant[i]
            LoopCtx qi = loopBegin(f, 0, 64);
            {
                VReg off = f.binImm(AluFunc::Shl, qi.i, 2);
                VReg cv =
                    f.load(f.add(f.globalAddr(coef_sym), off), 0);
                VReg qv =
                    f.load(f.add(f.globalAddr(quant_sym), off), 0);
                VReg d = f.bin(AluFunc::DivS, cv, qv);
                f.store(d, f.add(f.globalAddr(q_sym), off), 0);
            }
            loopEnd(f, qi);

            // Entropy coding: DC then AC run-length pairs.  16-bit
            // values go out as two byte stores — the stream is
            // byte-oriented and unaligned.
            auto emit16 = [&](VReg v) {
                f.store(v, cursor, 0, MemWidth::Byte);
                VReg hi = f.binImm(AluFunc::ShrU, v, 8);
                f.store(hi, cursor, 1, MemWidth::Byte);
                f.binImmTo(cursor, AluFunc::Add, cursor, 2);
            };
            {
                // DC = q[zz[0]] (zz[0] == 0)
                VReg dc = f.load(f.globalAddr(q_sym), 0);
                emit16(dc);

                VReg run = f.var(0);
                LoopCtx ac = loopBegin(f, 1, 64);
                {
                    VReg zo = f.binImm(AluFunc::Shl, ac.i, 2);
                    VReg idx =
                        f.load(f.add(f.globalAddr(zz_sym), zo), 0);
                    VReg qo = f.binImm(AluFunc::Shl, idx, 2);
                    VReg v =
                        f.load(f.add(f.globalAddr(q_sym), qo), 0);
                    const int zero = f.newBlock();
                    const int nonzero = f.newBlock();
                    const int next = f.newBlock();
                    f.condBrImm(Cond::Eq, v, 0, zero, nonzero);
                    f.setBlock(zero);
                    f.binImmTo(run, AluFunc::Add, run, 1);
                    f.br(next);
                    f.setBlock(nonzero);
                    f.store(run, cursor, 0, MemWidth::Byte);
                    f.binImmTo(cursor, AluFunc::Add, cursor, 1);
                    emit16(v);
                    f.movImmTo(run, 0);
                    f.br(next);
                    f.setBlock(next);
                }
                loopEnd(f, ac);

                f.store(f.movImm(0xff), cursor, 0, MemWidth::Byte);
                f.binImmTo(cursor, AluFunc::Add, cursor, 1);
            }
        }
        loopEnd(f, bx);
    }
    loopEnd(f, by);

    // length = cursor - stream base; output [len][bytes]
    VReg base = f.globalAddr(stream_sym);
    VReg len = f.bin(AluFunc::Sub, cursor, base);
    f.store(len, f.globalAddr(len_sym), 0);
    emitWrite(f, f.globalAddr(len_sym), f.movImm(4));
    emitWrite(f, base, len);
    f.ret(f.movImm(0));
    mb.endFunction(f);

    bench.module = mb.take();
    return bench;
}

} // namespace dfi::prog

/**
 * @file
 * `sha` benchmark: SHA-1 digest of a deterministic message
 * (MiBench/security "sha" analog).
 *
 * The padded message (big-endian words, ready for the block loop) is
 * embedded as initialized data; the guest runs the full 80-round
 * compression for every block and writes the 20-byte digest.
 */

#include "prog/benchmark.hh"

#include <array>

#include "prog/util.hh"
#include "syskit/os.hh"

namespace dfi::prog
{

using namespace dfi::ir;
using isa::AluFunc;
using isa::Cond;

namespace
{

/** Host-side reference SHA-1 over raw bytes. */
std::array<std::uint32_t, 5>
refSha1(const std::vector<std::uint8_t> &message,
        std::vector<std::uint32_t> *padded_words_out)
{
    std::vector<std::uint8_t> padded = message;
    const std::uint64_t bit_len =
        static_cast<std::uint64_t>(message.size()) * 8;
    padded.push_back(0x80);
    while (padded.size() % 64 != 56)
        padded.push_back(0);
    for (int i = 7; i >= 0; --i)
        padded.push_back(static_cast<std::uint8_t>(bit_len >> (8 * i)));

    // Big-endian word view (what both the reference and guest use).
    std::vector<std::uint32_t> words(padded.size() / 4);
    for (std::size_t i = 0; i < words.size(); ++i) {
        words[i] = (static_cast<std::uint32_t>(padded[4 * i]) << 24) |
                   (static_cast<std::uint32_t>(padded[4 * i + 1]) << 16) |
                   (static_cast<std::uint32_t>(padded[4 * i + 2]) << 8) |
                   static_cast<std::uint32_t>(padded[4 * i + 3]);
    }
    if (padded_words_out != nullptr)
        *padded_words_out = words;

    std::uint32_t h0 = 0x67452301, h1 = 0xEFCDAB89, h2 = 0x98BADCFE,
                  h3 = 0x10325476, h4 = 0xC3D2E1F0;
    auto rotl = [](std::uint32_t x, int n) {
        return (x << n) | (x >> (32 - n));
    };
    for (std::size_t block = 0; block < words.size() / 16; ++block) {
        std::uint32_t w[80];
        for (int t = 0; t < 16; ++t)
            w[t] = words[block * 16 + t];
        for (int t = 16; t < 80; ++t)
            w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
        std::uint32_t a = h0, b = h1, c = h2, d = h3, e = h4;
        for (int t = 0; t < 80; ++t) {
            std::uint32_t f, k;
            if (t < 20) {
                f = (b & c) | (~b & d);
                k = 0x5A827999;
            } else if (t < 40) {
                f = b ^ c ^ d;
                k = 0x6ED9EBA1;
            } else if (t < 60) {
                f = (b & c) | (b & d) | (c & d);
                k = 0x8F1BBCDC;
            } else {
                f = b ^ c ^ d;
                k = 0xCA62C1D6;
            }
            const std::uint32_t temp = rotl(a, 5) + f + e + k + w[t];
            e = d;
            d = c;
            c = rotl(b, 30);
            b = a;
            a = temp;
        }
        h0 += a;
        h1 += b;
        h2 += c;
        h3 += d;
        h4 += e;
    }
    return {h0, h1, h2, h3, h4};
}

/** rotl via shl/shr/or. */
VReg
emitRotl(FunctionBuilder &f, VReg x, int n)
{
    VReg left = f.binImm(AluFunc::Shl, x, n);
    VReg right = f.binImm(AluFunc::ShrU, x, 32 - n);
    return f.bin(AluFunc::Or, left, right);
}

} // namespace

Benchmark
buildSha(std::uint32_t scale)
{
    Benchmark bench;
    bench.name = "sha";

    // Deterministic message.
    std::vector<std::uint8_t> message(512 * scale);
    for (std::size_t i = 0; i < message.size(); ++i)
        message[i] = static_cast<std::uint8_t>((i * 7 + 13) ^ (i >> 3));

    std::vector<std::uint32_t> padded_words;
    const auto digest = refSha1(message, &padded_words);
    bench.expectedOutput = wordsToBytes(
        {digest[0], digest[1], digest[2], digest[3], digest[4]});
    const int num_blocks = static_cast<int>(padded_words.size() / 16);

    ModuleBuilder mb;
    const int msg_sym =
        mb.addGlobal("message", wordsToBytes(padded_words), 4);
    const int w_sym = mb.addBss("wsched", 80 * 4);
    const int h_sym = mb.addBss("hstate", 5 * 4);

    auto f = mb.beginFunction("main", 0);
    {
        VReg h = f.globalAddr(h_sym);
        f.store(f.movImm(0x67452301), h, 0);
        f.store(f.movImm(static_cast<std::int32_t>(0xEFCDAB89)), h, 4);
        f.store(f.movImm(static_cast<std::int32_t>(0x98BADCFE)), h, 8);
        f.store(f.movImm(0x10325476), h, 12);
        f.store(f.movImm(static_cast<std::int32_t>(0xC3D2E1F0)), h, 16);
    }

    LoopCtx blocks = loopBegin(f, 0, num_blocks);
    {
        // msg_base = &message[block * 64]
        VReg off = f.binImm(AluFunc::Shl, blocks.i, 6);
        VReg msg_base = f.add(f.globalAddr(msg_sym), off);
        VReg w_base = f.globalAddr(w_sym);

        // W[0..15] = message words
        LoopCtx init = loopBegin(f, 0, 16);
        {
            VReg byte_off = f.binImm(AluFunc::Shl, init.i, 2);
            VReg src = f.add(msg_base, byte_off);
            VReg dst = f.add(w_base, byte_off);
            f.store(f.load(src, 0), dst, 0);
        }
        loopEnd(f, init);

        // W[16..79] = rotl1(W[t-3]^W[t-8]^W[t-14]^W[t-16])
        LoopCtx sched = loopBegin(f, 16, 80);
        {
            VReg byte_off = f.binImm(AluFunc::Shl, sched.i, 2);
            VReg dst = f.add(w_base, byte_off);
            VReg x = f.load(dst, -3 * 4);
            VReg y = f.load(dst, -8 * 4);
            VReg z = f.load(dst, -14 * 4);
            VReg u = f.load(dst, -16 * 4);
            VReg xo = f.bin(AluFunc::Xor, x, y);
            f.binTo(xo, AluFunc::Xor, xo, z);
            f.binTo(xo, AluFunc::Xor, xo, u);
            f.store(emitRotl(f, xo, 1), dst, 0);
        }
        loopEnd(f, sched);

        // Working variables.
        VReg h = f.globalAddr(h_sym);
        VReg a = f.load(h, 0);
        VReg b = f.load(h, 4);
        VReg c = f.load(h, 8);
        VReg d = f.load(h, 12);
        VReg e = f.load(h, 16);

        LoopCtx round = loopBegin(f, 0, 80);
        {
            // Select (f, k) by round range.
            VReg fval = f.var(0);
            VReg kval = f.var(0);
            const int r0 = f.newBlock(), r1 = f.newBlock(),
                      r2 = f.newBlock(), r3 = f.newBlock(),
                      sel1 = f.newBlock(), sel2 = f.newBlock(),
                      join = f.newBlock();
            f.condBrImm(Cond::Slt, round.i, 20, r0, sel1);
            f.setBlock(sel1);
            f.condBrImm(Cond::Slt, round.i, 40, r1, sel2);
            f.setBlock(sel2);
            f.condBrImm(Cond::Slt, round.i, 60, r2, r3);

            f.setBlock(r0); // (b&c) | (~b & d)
            {
                VReg bc = f.bin(AluFunc::And, b, c);
                VReg nb = f.binImm(AluFunc::Xor, b, -1);
                VReg nbd = f.bin(AluFunc::And, nb, d);
                f.binTo(fval, AluFunc::Or, bc, nbd);
                f.movImmTo(kval, 0x5A827999);
                f.br(join);
            }
            f.setBlock(r1); // b^c^d
            {
                VReg x = f.bin(AluFunc::Xor, b, c);
                f.binTo(fval, AluFunc::Xor, x, d);
                f.movImmTo(kval, 0x6ED9EBA1);
                f.br(join);
            }
            f.setBlock(r2); // majority
            {
                VReg bc = f.bin(AluFunc::And, b, c);
                VReg bd = f.bin(AluFunc::And, b, d);
                VReg cd = f.bin(AluFunc::And, c, d);
                VReg m = f.bin(AluFunc::Or, bc, bd);
                f.binTo(fval, AluFunc::Or, m, cd);
                f.movImmTo(kval, static_cast<std::int32_t>(0x8F1BBCDC));
                f.br(join);
            }
            f.setBlock(r3); // b^c^d
            {
                VReg x = f.bin(AluFunc::Xor, b, c);
                f.binTo(fval, AluFunc::Xor, x, d);
                f.movImmTo(kval, static_cast<std::int32_t>(0xCA62C1D6));
                f.br(join);
            }
            f.setBlock(join);

            VReg w_base2 = f.globalAddr(w_sym);
            VReg byte_off = f.binImm(AluFunc::Shl, round.i, 2);
            VReg wt = f.load(f.add(w_base2, byte_off), 0);

            VReg temp = emitRotl(f, a, 5);
            f.binTo(temp, AluFunc::Add, temp, fval);
            f.binTo(temp, AluFunc::Add, temp, e);
            f.binTo(temp, AluFunc::Add, temp, kval);
            f.binTo(temp, AluFunc::Add, temp, wt);

            f.movTo(e, d);
            f.movTo(d, c);
            VReg c30 = emitRotl(f, b, 30);
            f.movTo(c, c30);
            f.movTo(b, a);
            f.movTo(a, temp);
        }
        loopEnd(f, round);

        VReg h2 = f.globalAddr(h_sym);
        f.store(f.add(f.load(h2, 0), a), h2, 0);
        f.store(f.add(f.load(h2, 4), b), h2, 4);
        f.store(f.add(f.load(h2, 8), c), h2, 8);
        f.store(f.add(f.load(h2, 12), d), h2, 12);
        f.store(f.add(f.load(h2, 16), e), h2, 16);
    }
    loopEnd(f, blocks);

    VReg out = f.globalAddr(h_sym);
    emitWrite(f, out, f.movImm(20));
    f.ret(f.movImm(0));
    mb.endFunction(f);

    bench.module = mb.take();
    return bench;
}

} // namespace dfi::prog

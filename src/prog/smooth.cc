/**
 * @file
 * `smooth` benchmark: 3x3 weighted smoothing filter over a grayscale
 * image (MiBench/automotive "susan -s" analog).
 *
 * Kernel: center weight 4, edge neighbours 2, corners 1 (sum 16),
 * interior pixels only; the border is copied through.
 */

#include "prog/benchmark.hh"

#include "prog/image_common.hh"
#include "prog/util.hh"
#include "syskit/os.hh"

namespace dfi::prog
{

using namespace dfi::ir;
using isa::AluFunc;
using isa::MemWidth;

Benchmark
buildSmooth(std::uint32_t scale)
{
    Benchmark bench;
    bench.name = "smooth";

    const int width = 48 * static_cast<int>(scale);
    const int height = 48;
    const auto image = makeTestImage(width, height);

    // --- host reference -----------------------------------------------------
    std::vector<std::uint8_t> out = image;
    static const int kw[3][3] = {{1, 2, 1}, {2, 4, 2}, {1, 2, 1}};
    for (int y = 1; y < height - 1; ++y) {
        for (int x = 1; x < width - 1; ++x) {
            int acc = 0;
            for (int dy = -1; dy <= 1; ++dy)
                for (int dx = -1; dx <= 1; ++dx)
                    acc += kw[dy + 1][dx + 1] *
                           image[(y + dy) * width + (x + dx)];
            out[y * width + x] = static_cast<std::uint8_t>(acc >> 4);
        }
    }
    bench.expectedOutput = out;

    // --- guest ---------------------------------------------------------------
    ModuleBuilder mb;
    const int in_sym = mb.addGlobal("image", image, 4);
    const int out_sym = mb.addBss(
        "smoothed", static_cast<std::uint32_t>(image.size()));

    auto f = mb.beginFunction("main", 0);

    // Copy input to output (border handling).
    {
        LoopCtx i = loopBegin(f, 0, width * height);
        VReg v = f.load(f.add(f.globalAddr(in_sym), i.i), 0,
                        MemWidth::Byte);
        f.store(v, f.add(f.globalAddr(out_sym), i.i), 0,
                MemWidth::Byte);
        loopEnd(f, i);
    }

    LoopCtx y = loopBegin(f, 1, height - 1);
    {
        LoopCtx x = loopBegin(f, 1, width - 1);
        {
            VReg row = f.binImm(AluFunc::Mul, y.i, width);
            VReg idx = f.add(row, x.i);
            VReg center = f.add(f.globalAddr(in_sym), idx);

            // acc = 4*c + 2*(n,s,w,e) + (nw,ne,sw,se)
            VReg acc = f.load(center, 0, MemWidth::Byte);
            f.binImmTo(acc, AluFunc::Shl, acc, 2);

            auto tap = [&](std::int32_t disp, int weight) {
                VReg v = f.load(center, disp, MemWidth::Byte);
                if (weight == 2)
                    f.binImmTo(v, AluFunc::Shl, v, 1);
                f.binTo(acc, AluFunc::Add, acc, v);
            };
            tap(-width, 2);
            tap(width, 2);
            tap(-1, 2);
            tap(1, 2);
            tap(-width - 1, 1);
            tap(-width + 1, 1);
            tap(width - 1, 1);
            tap(width + 1, 1);

            f.binImmTo(acc, AluFunc::ShrU, acc, 4);
            f.store(acc, f.add(f.globalAddr(out_sym), idx), 0,
                    MemWidth::Byte);
        }
        loopEnd(f, x);
    }
    loopEnd(f, y);

    emitWrite(f, f.globalAddr(out_sym), f.movImm(width * height));
    f.ret(f.movImm(0));
    mb.endFunction(f);

    bench.module = mb.take();
    return bench;
}

} // namespace dfi::prog

#include "prog/jpeg_common.hh"

#include <cmath>

#include "common/logging.hh"

namespace dfi::prog
{

const std::array<std::int32_t, 64> &
jpegCosTable()
{
    static const std::array<std::int32_t, 64> table = [] {
        std::array<std::int32_t, 64> t{};
        for (int k = 0; k < 8; ++k) {
            const double ck = k == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
            for (int i = 0; i < 8; ++i) {
                t[k * 8 + i] = static_cast<std::int32_t>(std::lround(
                    ck * std::cos((2 * i + 1) * k * M_PI / 16.0) *
                    1024.0));
            }
        }
        return t;
    }();
    return table;
}

const std::array<std::int32_t, 64> &
jpegQuantTable()
{
    static const std::array<std::int32_t, 64> table = {
        16, 11, 10, 16, 24,  40,  51,  61,
        12, 12, 14, 19, 26,  58,  60,  55,
        14, 13, 16, 24, 40,  57,  69,  56,
        14, 17, 22, 29, 51,  87,  80,  62,
        18, 22, 37, 56, 68,  109, 103, 77,
        24, 35, 55, 64, 81,  104, 113, 92,
        49, 64, 78, 87, 103, 121, 120, 101,
        72, 92, 95, 98, 112, 100, 103, 99};
    return table;
}

const std::array<std::uint32_t, 64> &
jpegZigzag()
{
    static const std::array<std::uint32_t, 64> order = [] {
        std::array<std::uint32_t, 64> zz{};
        int index = 0;
        for (int s = 0; s < 15; ++s) {
            if (s % 2 == 0) { // up-right
                for (int y = std::min(s, 7); y >= 0 && s - y <= 7; --y)
                    zz[index++] = static_cast<std::uint32_t>(
                        y * 8 + (s - y));
            } else { // down-left
                for (int x = std::min(s, 7); x >= 0 && s - x <= 7; --x)
                    zz[index++] = static_cast<std::uint32_t>(
                        (s - x) * 8 + x);
            }
        }
        return zz;
    }();
    return order;
}

namespace
{

/** Forward transform of one 8x8 block of level-shifted samples. */
void
forwardTransform(const std::int32_t *s, std::int32_t *coef)
{
    const auto &ct = jpegCosTable();
    std::int32_t tmp[64];
    // pass 1 (over rows y): tmp[u][x] = (sum_y ct[u][y] s[y][x]) >> k1
    for (int u = 0; u < 8; ++u) {
        for (int x = 0; x < 8; ++x) {
            std::int32_t acc = 0;
            for (int y = 0; y < 8; ++y)
                acc += ct[u * 8 + y] * s[y * 8 + x];
            tmp[u * 8 + x] = acc >> kFwdShift1;
        }
    }
    // pass 2 (over columns x): F[u][v] = (sum_x ct[v][x] tmp[u][x]) >> k2
    for (int u = 0; u < 8; ++u) {
        for (int v = 0; v < 8; ++v) {
            std::int32_t acc = 0;
            for (int x = 0; x < 8; ++x)
                acc += ct[v * 8 + x] * tmp[u * 8 + x];
            coef[u * 8 + v] = acc >> kFwdShift2;
        }
    }
}

/** Inverse transform producing level-shifted samples. */
void
inverseTransform(const std::int32_t *coef, std::int32_t *s)
{
    const auto &ct = jpegCosTable();
    std::int32_t tmp[64];
    // pass 1: tmp[u][x] = (sum_v ct[v][x] F[u][v]) >> k1
    for (int u = 0; u < 8; ++u) {
        for (int x = 0; x < 8; ++x) {
            std::int32_t acc = 0;
            for (int v = 0; v < 8; ++v)
                acc += ct[v * 8 + x] * coef[u * 8 + v];
            tmp[u * 8 + x] = acc >> kInvShift1;
        }
    }
    // pass 2: s[y][x] = (sum_u ct[u][y] tmp[u][x]) >> k2
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            std::int32_t acc = 0;
            for (int u = 0; u < 8; ++u)
                acc += ct[u * 8 + y] * tmp[u * 8 + x];
            s[y * 8 + x] = acc >> kInvShift2;
        }
    }
}

void
emit16(std::vector<std::uint8_t> &out, std::int32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

std::int32_t
read16(const std::vector<std::uint8_t> &in, std::size_t &pos)
{
    const std::int32_t lo = in.at(pos);
    const std::int32_t hi = in.at(pos + 1);
    pos += 2;
    const std::int32_t v = lo | (hi << 8);
    return (v << 16) >> 16; // sign extend
}

} // namespace

std::vector<std::uint8_t>
jpegRefEncode(const std::vector<std::uint8_t> &image, int width,
              int height)
{
    if (width % 8 != 0 || height % 8 != 0)
        panic("jpegRefEncode: dimensions must be multiples of 8");
    const auto &quant = jpegQuantTable();
    const auto &zz = jpegZigzag();
    std::vector<std::uint8_t> stream;

    for (int by = 0; by < height / 8; ++by) {
        for (int bx = 0; bx < width / 8; ++bx) {
            std::int32_t s[64], coef[64];
            for (int y = 0; y < 8; ++y) {
                for (int x = 0; x < 8; ++x) {
                    s[y * 8 + x] =
                        static_cast<std::int32_t>(
                            image[(by * 8 + y) * width + bx * 8 + x]) -
                        128;
                }
            }
            forwardTransform(s, coef);
            std::int32_t q[64];
            for (int i = 0; i < 64; ++i)
                q[i] = coef[i] / quant[i]; // trunc division, like DivS

            // DC
            emit16(stream, q[zz[0]]);
            // AC run-length pairs.
            int run = 0;
            for (int i = 1; i < 64; ++i) {
                const std::int32_t v = q[zz[i]];
                if (v == 0) {
                    ++run;
                } else {
                    stream.push_back(static_cast<std::uint8_t>(run));
                    emit16(stream, v);
                    run = 0;
                }
            }
            stream.push_back(0xff); // end of block
        }
    }
    return stream;
}

std::vector<std::uint8_t>
jpegRefDecode(const std::vector<std::uint8_t> &stream, int width,
              int height)
{
    const auto &quant = jpegQuantTable();
    const auto &zz = jpegZigzag();
    std::vector<std::uint8_t> image(
        static_cast<std::size_t>(width) * height, 0);
    std::size_t pos = 0;

    for (int by = 0; by < height / 8; ++by) {
        for (int bx = 0; bx < width / 8; ++bx) {
            std::int32_t q[64] = {};
            q[zz[0]] = read16(stream, pos);
            int i = 1;
            while (true) {
                const std::uint8_t marker = stream.at(pos++);
                if (marker == 0xff)
                    break;
                i += marker;
                q[zz[i]] = read16(stream, pos);
                ++i;
            }
            std::int32_t coef[64], s[64];
            for (int k = 0; k < 64; ++k)
                coef[k] = q[k] * quant[k];
            inverseTransform(coef, s);
            for (int y = 0; y < 8; ++y) {
                for (int x = 0; x < 8; ++x) {
                    std::int32_t v = s[y * 8 + x] + 128;
                    if (v < 0)
                        v = 0;
                    if (v > 255)
                        v = 255;
                    image[(by * 8 + y) * width + bx * 8 + x] =
                        static_cast<std::uint8_t>(v);
                }
            }
        }
    }
    return image;
}

} // namespace dfi::prog

/**
 * @file
 * IR-building helpers shared by the benchmark programs.
 */

#ifndef DFI_PROG_UTIL_HH
#define DFI_PROG_UTIL_HH

#include <cstdint>
#include <vector>

#include "isa/ir.hh"

namespace dfi::prog
{

/** An open counted loop (body block is the insertion point). */
struct LoopCtx
{
    int head = -1;
    int body = -1;
    int exit = -1;
    ir::VReg i = ir::kNoVReg;
};

/**
 * Open `for (i = start; i <cond> limit; i += step)`.
 * Leaves the builder inside the body block.
 */
LoopCtx loopBegin(ir::FunctionBuilder &f, std::int32_t start,
                  std::int32_t limit,
                  isa::Cond cond = isa::Cond::Slt);

/** Variant with a register bound. */
LoopCtx loopBeginR(ir::FunctionBuilder &f, std::int32_t start,
                   ir::VReg limit, isa::Cond cond = isa::Cond::Slt);

/** Close the loop opened by loopBegin (increments i by `step`). */
void loopEnd(ir::FunctionBuilder &f, const LoopCtx &loop,
             std::int32_t step = 1);

/** Serialize 32-bit little-endian words into bytes. */
std::vector<std::uint8_t> wordsToBytes(
    const std::vector<std::uint32_t> &words);

/** Emit `write(buf, len)` followed by nothing (helper). */
void emitWrite(ir::FunctionBuilder &f, ir::VReg buf, ir::VReg len);

} // namespace dfi::prog

#endif // DFI_PROG_UTIL_HH

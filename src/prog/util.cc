#include "prog/util.hh"

#include "syskit/os.hh"

namespace dfi::prog
{

using namespace dfi::ir;

LoopCtx
loopBegin(FunctionBuilder &f, std::int32_t start, std::int32_t limit,
          isa::Cond cond)
{
    LoopCtx loop;
    loop.i = f.var(start);
    loop.head = f.newBlock();
    loop.body = f.newBlock();
    loop.exit = f.newBlock();
    f.br(loop.head);
    f.setBlock(loop.head);
    f.condBrImm(cond, loop.i, limit, loop.body, loop.exit);
    f.setBlock(loop.body);
    return loop;
}

LoopCtx
loopBeginR(FunctionBuilder &f, std::int32_t start, VReg limit,
           isa::Cond cond)
{
    LoopCtx loop;
    loop.i = f.var(start);
    loop.head = f.newBlock();
    loop.body = f.newBlock();
    loop.exit = f.newBlock();
    f.br(loop.head);
    f.setBlock(loop.head);
    f.condBr(cond, loop.i, limit, loop.body, loop.exit);
    f.setBlock(loop.body);
    return loop;
}

void
loopEnd(FunctionBuilder &f, const LoopCtx &loop, std::int32_t step)
{
    f.binImmTo(loop.i, isa::AluFunc::Add, loop.i, step);
    f.br(loop.head);
    f.setBlock(loop.exit);
}

std::vector<std::uint8_t>
wordsToBytes(const std::vector<std::uint32_t> &words)
{
    std::vector<std::uint8_t> bytes;
    bytes.reserve(words.size() * 4);
    for (std::uint32_t w : words) {
        bytes.push_back(static_cast<std::uint8_t>(w));
        bytes.push_back(static_cast<std::uint8_t>(w >> 8));
        bytes.push_back(static_cast<std::uint8_t>(w >> 16));
        bytes.push_back(static_cast<std::uint8_t>(w >> 24));
    }
    return bytes;
}

void
emitWrite(FunctionBuilder &f, VReg buf, VReg len)
{
    f.syscall(syskit::kSysWrite, buf, len);
}

} // namespace dfi::prog

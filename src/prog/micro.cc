/**
 * @file
 * `micro` workload: a tiny checksum kernel used by the test suite and
 * the quickstart example.  Not part of the paper's ten-benchmark
 * study (it is deliberately small so campaigns finish in
 * milliseconds).
 */

#include "prog/benchmark.hh"

#include "prog/util.hh"
#include "syskit/os.hh"

namespace dfi::prog
{

using namespace dfi::ir;
using isa::AluFunc;

Benchmark
buildMicro(std::uint32_t scale)
{
    Benchmark bench;
    bench.name = "micro";

    const int n = 64 * static_cast<int>(scale);
    std::vector<std::uint32_t> data(n);
    for (int i = 0; i < n; ++i)
        data[i] = static_cast<std::uint32_t>(i * 2654435761u + 12345);

    // Reference: rolling checksum written as 16 words.
    std::vector<std::uint32_t> expected(16, 0);
    for (int i = 0; i < n; ++i) {
        expected[i % 16] =
            (expected[i % 16] ^ data[i]) * 31 + (data[i] >> 7);
    }
    bench.expectedOutput = wordsToBytes(expected);

    ModuleBuilder mb;
    const int in_sym = mb.addGlobal("data", wordsToBytes(data), 4);
    const int out_sym = mb.addBss("sums", 16 * 4);

    auto f = mb.beginFunction("main", 0);
    LoopCtx i = loopBegin(f, 0, n);
    {
        VReg off = f.binImm(AluFunc::Shl, i.i, 2);
        VReg v = f.load(f.add(f.globalAddr(in_sym), off), 0);
        VReg slot = f.binImm(AluFunc::And, i.i, 15);
        VReg soff = f.binImm(AluFunc::Shl, slot, 2);
        VReg sptr = f.add(f.globalAddr(out_sym), soff);
        VReg acc = f.load(sptr, 0);
        f.binTo(acc, AluFunc::Xor, acc, v);
        f.binImmTo(acc, AluFunc::Mul, acc, 31);
        VReg shifted = f.binImm(AluFunc::ShrU, v, 7);
        f.binTo(acc, AluFunc::Add, acc, shifted);
        f.store(acc, sptr, 0);
    }
    loopEnd(f, i);

    emitWrite(f, f.globalAddr(out_sym), f.movImm(64));
    f.ret(f.movImm(0));
    mb.endFunction(f);

    bench.module = mb.take();
    return bench;
}

} // namespace dfi::prog

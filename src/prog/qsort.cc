/**
 * @file
 * `qsort` benchmark: recursive quicksort of a pseudo-random array
 * (MiBench/auto "qsort" analog).
 *
 * The guest implements Lomuto-partition quicksort with real recursion
 * (deep call stacks, data-dependent branches); the sorted array is the
 * output.
 */

#include "prog/benchmark.hh"

#include <algorithm>

#include "common/rng.hh"
#include "prog/util.hh"
#include "syskit/os.hh"

namespace dfi::prog
{

using namespace dfi::ir;
using isa::AluFunc;
using isa::Cond;

Benchmark
buildQsort(std::uint32_t scale)
{
    Benchmark bench;
    bench.name = "qsort";

    const int n = static_cast<int>(320 * scale);
    dfi::Rng rng(0x9507cafe);
    std::vector<std::uint32_t> values(n);
    for (auto &v : values)
        v = static_cast<std::uint32_t>(rng.next64());

    std::vector<std::uint32_t> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    bench.expectedOutput = wordsToBytes(sorted);

    ModuleBuilder mb;
    const int arr_sym = mb.addGlobal("array", wordsToBytes(values), 4);

    // qsort(lo, hi): sorts array[lo..hi] inclusive (indices).
    const int fn_qsort = mb.declareFunction("quicksort", 2);
    {
        auto f = mb.beginFunction(fn_qsort);
        const VReg lo = f.param(0);
        const VReg hi = f.param(1);

        const int body = f.newBlock();
        const int done = f.newBlock();
        f.condBr(Cond::Sge, lo, hi, done, body);

        f.setBlock(body);
        {
            VReg base = f.globalAddr(arr_sym);
            // pivot = array[hi]
            VReg hoff = f.binImm(AluFunc::Shl, hi, 2);
            VReg pivot = f.load(f.add(base, hoff), 0);

            // Lomuto partition.
            VReg store_idx = f.mov(lo);
            VReg jv = f.mov(lo);
            const int head = f.newBlock();
            const int loop_body = f.newBlock();
            const int loop_exit = f.newBlock();
            f.br(head);
            f.setBlock(head);
            f.condBr(Cond::Slt, jv, hi, loop_body, loop_exit);
            f.setBlock(loop_body);
            {
                VReg joff = f.binImm(AluFunc::Shl, jv, 2);
                VReg jptr = f.add(base, joff);
                VReg value = f.load(jptr, 0);
                const int swap = f.newBlock();
                const int next = f.newBlock();
                f.condBr(Cond::Ult, value, pivot, swap, next);
                f.setBlock(swap);
                {
                    VReg soff = f.binImm(AluFunc::Shl, store_idx, 2);
                    VReg sptr = f.add(base, soff);
                    VReg other = f.load(sptr, 0);
                    f.store(value, sptr, 0);
                    f.store(other, jptr, 0);
                    f.binImmTo(store_idx, AluFunc::Add, store_idx, 1);
                    f.br(next);
                }
                f.setBlock(next);
                f.binImmTo(jv, AluFunc::Add, jv, 1);
                f.br(head);
            }
            f.setBlock(loop_exit);

            // swap array[store_idx] <-> array[hi]
            VReg soff = f.binImm(AluFunc::Shl, store_idx, 2);
            VReg sptr = f.add(base, soff);
            VReg tmp = f.load(sptr, 0);
            f.store(pivot, sptr, 0);
            f.store(tmp, f.add(base, hoff), 0);

            // Recurse on both halves.
            VReg left_hi = f.binImm(AluFunc::Sub, store_idx, 1);
            f.callVoid(fn_qsort, {lo, left_hi});
            VReg right_lo = f.binImm(AluFunc::Add, store_idx, 1);
            f.callVoid(fn_qsort, {right_lo, hi});
            f.br(done);
        }

        f.setBlock(done);
        f.ret(f.movImm(0));
        mb.endFunction(f);
    }

    {
        auto f = mb.beginFunction("main", 0);
        f.callVoid(fn_qsort, {f.movImm(0), f.movImm(n - 1)});
        emitWrite(f, f.globalAddr(arr_sym), f.movImm(4 * n));
        f.ret(f.movImm(0));
        mb.endFunction(f);
    }

    bench.module = mb.take();
    return bench;
}

} // namespace dfi::prog

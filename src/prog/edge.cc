/**
 * @file
 * `edge` benchmark: Sobel gradient-magnitude edge detection with
 * thresholding (MiBench/automotive "susan -e" analog).
 */

#include "prog/benchmark.hh"

#include <cstdlib>

#include "prog/image_common.hh"
#include "prog/util.hh"
#include "syskit/os.hh"

namespace dfi::prog
{

using namespace dfi::ir;
using isa::AluFunc;
using isa::Cond;
using isa::MemWidth;

Benchmark
buildEdge(std::uint32_t scale)
{
    Benchmark bench;
    bench.name = "edge";

    const int width = 48 * static_cast<int>(scale);
    const int height = 48;
    const int threshold = 96;
    const auto image = makeTestImage(width, height);

    // --- host reference -----------------------------------------------------
    std::vector<std::uint8_t> out(image.size(), 0);
    for (int y = 1; y < height - 1; ++y) {
        for (int x = 1; x < width - 1; ++x) {
            auto px = [&](int dy, int dx) {
                return static_cast<int>(
                    image[(y + dy) * width + (x + dx)]);
            };
            const int gx = px(-1, 1) + 2 * px(0, 1) + px(1, 1) -
                           px(-1, -1) - 2 * px(0, -1) - px(1, -1);
            const int gy = px(1, -1) + 2 * px(1, 0) + px(1, 1) -
                           px(-1, -1) - 2 * px(-1, 0) - px(-1, 1);
            const int mag = std::abs(gx) + std::abs(gy);
            out[y * width + x] =
                mag > threshold ? 255 : static_cast<std::uint8_t>(
                                            mag >> 1);
        }
    }
    bench.expectedOutput = out;

    // --- guest ---------------------------------------------------------------
    ModuleBuilder mb;
    const int in_sym = mb.addGlobal("image", image, 4);
    const int out_sym =
        mb.addBss("edges", static_cast<std::uint32_t>(image.size()));

    auto f = mb.beginFunction("main", 0);

    /** |v| via branch. */
    auto emit_abs = [&](VReg v) {
        const int neg = f.newBlock();
        const int done = f.newBlock();
        f.condBrImm(Cond::Slt, v, 0, neg, done);
        f.setBlock(neg);
        VReg zero = f.movImm(0);
        f.binTo(v, AluFunc::Sub, zero, v);
        f.br(done);
        f.setBlock(done);
    };

    LoopCtx y = loopBegin(f, 1, height - 1);
    {
        LoopCtx x = loopBegin(f, 1, width - 1);
        {
            VReg row = f.binImm(AluFunc::Mul, y.i, width);
            VReg idx = f.add(row, x.i);
            VReg c = f.add(f.globalAddr(in_sym), idx);

            auto px = [&](std::int32_t disp) {
                return f.load(c, disp, MemWidth::Byte);
            };

            // gx = (ne + 2e + se) - (nw + 2w + sw)
            VReg gx = px(-width + 1);
            VReg e2 = px(1);
            f.binImmTo(e2, AluFunc::Shl, e2, 1);
            f.binTo(gx, AluFunc::Add, gx, e2);
            f.binTo(gx, AluFunc::Add, gx, px(width + 1));
            f.binTo(gx, AluFunc::Sub, gx, px(-width - 1));
            VReg w2 = px(-1);
            f.binImmTo(w2, AluFunc::Shl, w2, 1);
            f.binTo(gx, AluFunc::Sub, gx, w2);
            f.binTo(gx, AluFunc::Sub, gx, px(width - 1));

            // gy = (sw + 2s + se) - (nw + 2n + ne)
            VReg gy = px(width - 1);
            VReg s2 = px(width);
            f.binImmTo(s2, AluFunc::Shl, s2, 1);
            f.binTo(gy, AluFunc::Add, gy, s2);
            f.binTo(gy, AluFunc::Add, gy, px(width + 1));
            f.binTo(gy, AluFunc::Sub, gy, px(-width - 1));
            VReg n2 = px(-width);
            f.binImmTo(n2, AluFunc::Shl, n2, 1);
            f.binTo(gy, AluFunc::Sub, gy, n2);
            f.binTo(gy, AluFunc::Sub, gy, px(-width + 1));

            emit_abs(gx);
            emit_abs(gy);
            VReg mag = f.add(gx, gy);

            VReg result = f.var(0);
            const int strong = f.newBlock();
            const int weak = f.newBlock();
            const int done = f.newBlock();
            f.condBrImm(Cond::Sgt, mag, threshold, strong, weak);
            f.setBlock(strong);
            f.movImmTo(result, 255);
            f.br(done);
            f.setBlock(weak);
            VReg half = f.binImm(AluFunc::ShrU, mag, 1);
            f.movTo(result, half);
            f.br(done);
            f.setBlock(done);

            f.store(result, f.add(f.globalAddr(out_sym), idx), 0,
                    MemWidth::Byte);
        }
        loopEnd(f, x);
    }
    loopEnd(f, y);

    emitWrite(f, f.globalAddr(out_sym), f.movImm(width * height));
    f.ret(f.movImm(0));
    mb.endFunction(f);

    bench.module = mb.take();
    return bench;
}

} // namespace dfi::prog

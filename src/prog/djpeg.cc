/**
 * @file
 * `djpeg` benchmark: JPEG-style image decoder (MiBench/consumer
 * "djpeg" analog): zigzag RLE parsing, dequantization, integer
 * two-pass inverse transform, level shift + clamp.
 *
 * The encoded stream (produced by the host reference encoder) is
 * embedded as initialized data.
 */

#include "prog/benchmark.hh"

#include "prog/image_common.hh"
#include "prog/jpeg_common.hh"
#include "prog/util.hh"
#include "syskit/os.hh"

namespace dfi::prog
{

using namespace dfi::ir;
using isa::AluFunc;
using isa::Cond;
using isa::MemWidth;

Benchmark
buildDjpeg(std::uint32_t scale)
{
    Benchmark bench;
    bench.name = "djpeg";

    const int width = 16 * static_cast<int>(scale);
    const int height = 16;
    const auto image = makeTestImage(width, height);
    const auto stream = jpegRefEncode(image, width, height);
    bench.expectedOutput = jpegRefDecode(stream, width, height);

    auto words = [](const std::array<std::int32_t, 64> &a) {
        std::vector<std::uint32_t> w(a.begin(), a.end());
        return wordsToBytes(w);
    };

    ModuleBuilder mb;
    const int stream_sym = mb.addGlobal("stream", stream, 4);
    const int ct_sym = mb.addGlobal("costable", words(jpegCosTable()), 4);
    const int quant_sym =
        mb.addGlobal("quant", words(jpegQuantTable()), 4);
    const int zz_sym = mb.addGlobal(
        "zigzag",
        wordsToBytes(std::vector<std::uint32_t>(jpegZigzag().begin(),
                                                jpegZigzag().end())),
        4);
    const int q_sym = mb.addBss("blk_q", 64 * 4);
    const int coef_sym = mb.addBss("blk_coef", 64 * 4);
    const int tmp_sym = mb.addBss("blk_tmp", 64 * 4);
    const int out_sym = mb.addBss(
        "decoded", static_cast<std::uint32_t>(image.size()));

    auto f = mb.beginFunction("main", 0);
    VReg cursor = f.globalAddr(stream_sym);

    /**
     * Load a sign-extended 16-bit value at [cursor] (byte-oriented,
     * unaligned stream), advance by 2.
     */
    auto read16 = [&]() {
        VReg lo = f.load(cursor, 0, MemWidth::Byte);
        VReg hi = f.load(cursor, 1, MemWidth::Byte);
        f.binImmTo(hi, AluFunc::Shl, hi, 8);
        VReg v = f.bin(AluFunc::Or, lo, hi);
        f.binImmTo(v, AluFunc::Shl, v, 16);
        f.binImmTo(v, AluFunc::ShrS, v, 16);
        f.binImmTo(cursor, AluFunc::Add, cursor, 2);
        return v;
    };

    LoopCtx by = loopBegin(f, 0, height / 8);
    {
        LoopCtx bx = loopBegin(f, 0, width / 8);
        {
            // Clear q[].
            LoopCtx ci = loopBegin(f, 0, 64);
            {
                VReg off = f.binImm(AluFunc::Shl, ci.i, 2);
                f.store(f.movImm(0),
                        f.add(f.globalAddr(q_sym), off), 0);
            }
            loopEnd(f, ci);

            // DC (zz[0] == 0).
            VReg dc = read16();
            f.store(dc, f.globalAddr(q_sym), 0);

            // AC pairs until the 0xff end-of-block marker.
            VReg i = f.var(1);
            const int parse_head = f.newBlock();
            const int parse_body = f.newBlock();
            const int parse_done = f.newBlock();
            f.br(parse_head);
            f.setBlock(parse_head);
            {
                VReg marker = f.load(cursor, 0, MemWidth::Byte);
                f.binImmTo(cursor, AluFunc::Add, cursor, 1);
                f.condBrImm(Cond::Eq, marker, 0xff, parse_done,
                            parse_body);
                f.setBlock(parse_body);
                f.binTo(i, AluFunc::Add, i, marker);
                VReg v = read16();
                // q[zz[i]] = v
                VReg zo = f.binImm(AluFunc::Shl, i, 2);
                VReg idx = f.load(f.add(f.globalAddr(zz_sym), zo), 0);
                VReg qo = f.binImm(AluFunc::Shl, idx, 2);
                f.store(v, f.add(f.globalAddr(q_sym), qo), 0);
                f.binImmTo(i, AluFunc::Add, i, 1);
                f.br(parse_head);
            }
            f.setBlock(parse_done);

            // Dequantize: coef[k] = q[k] * quant[k]
            LoopCtx k = loopBegin(f, 0, 64);
            {
                VReg off = f.binImm(AluFunc::Shl, k.i, 2);
                VReg qv = f.load(f.add(f.globalAddr(q_sym), off), 0);
                VReg quant =
                    f.load(f.add(f.globalAddr(quant_sym), off), 0);
                f.store(f.bin(AluFunc::Mul, qv, quant),
                        f.add(f.globalAddr(coef_sym), off), 0);
            }
            loopEnd(f, k);

            // Pass 1: tmp[u][x] = (sum_v ct[v][x] * coef[u][v]) >> k1
            LoopCtx u = loopBegin(f, 0, 8);
            {
                LoopCtx x = loopBegin(f, 0, 8);
                {
                    VReg acc = f.var(0);
                    LoopCtx v = loopBegin(f, 0, 8);
                    {
                        VReg cto = f.binImm(AluFunc::Shl, v.i, 5);
                        VReg xo = f.binImm(AluFunc::Shl, x.i, 2);
                        f.binTo(cto, AluFunc::Add, cto, xo);
                        VReg c = f.load(
                            f.add(f.globalAddr(ct_sym), cto), 0);
                        VReg fo = f.binImm(AluFunc::Shl, u.i, 5);
                        VReg vo = f.binImm(AluFunc::Shl, v.i, 2);
                        f.binTo(fo, AluFunc::Add, fo, vo);
                        VReg cf = f.load(
                            f.add(f.globalAddr(coef_sym), fo), 0);
                        f.binTo(acc, AluFunc::Add, acc,
                                f.bin(AluFunc::Mul, c, cf));
                    }
                    loopEnd(f, v);
                    f.binImmTo(acc, AluFunc::ShrS, acc, kInvShift1);
                    VReg to = f.binImm(AluFunc::Shl, u.i, 5);
                    VReg xo2 = f.binImm(AluFunc::Shl, x.i, 2);
                    f.binTo(to, AluFunc::Add, to, xo2);
                    f.store(acc, f.add(f.globalAddr(tmp_sym), to), 0);
                }
                loopEnd(f, x);
            }
            loopEnd(f, u);

            // Pass 2 + level shift + clamp + store to image.
            LoopCtx y = loopBegin(f, 0, 8);
            {
                LoopCtx x = loopBegin(f, 0, 8);
                {
                    VReg acc = f.var(0);
                    LoopCtx uu = loopBegin(f, 0, 8);
                    {
                        VReg cto = f.binImm(AluFunc::Shl, uu.i, 5);
                        VReg yo = f.binImm(AluFunc::Shl, y.i, 2);
                        f.binTo(cto, AluFunc::Add, cto, yo);
                        VReg c = f.load(
                            f.add(f.globalAddr(ct_sym), cto), 0);
                        VReg to = f.binImm(AluFunc::Shl, uu.i, 5);
                        VReg xo = f.binImm(AluFunc::Shl, x.i, 2);
                        f.binTo(to, AluFunc::Add, to, xo);
                        VReg tv = f.load(
                            f.add(f.globalAddr(tmp_sym), to), 0);
                        f.binTo(acc, AluFunc::Add, acc,
                                f.bin(AluFunc::Mul, c, tv));
                    }
                    loopEnd(f, uu);
                    f.binImmTo(acc, AluFunc::ShrS, acc, kInvShift2);
                    f.binImmTo(acc, AluFunc::Add, acc, 128);

                    // clamp to [0, 255]
                    const int lo_ok = f.newBlock();
                    const int clamp_done = f.newBlock();
                    const int too_low = f.newBlock();
                    const int hi_check = f.newBlock();
                    const int too_high = f.newBlock();
                    f.condBrImm(Cond::Slt, acc, 0, too_low, lo_ok);
                    f.setBlock(too_low);
                    f.movImmTo(acc, 0);
                    f.br(clamp_done);
                    f.setBlock(lo_ok);
                    f.condBrImm(Cond::Sgt, acc, 255, too_high,
                                hi_check);
                    f.setBlock(too_high);
                    f.movImmTo(acc, 255);
                    f.br(clamp_done);
                    f.setBlock(hi_check);
                    f.br(clamp_done);
                    f.setBlock(clamp_done);

                    // image[(by*8+y)*width + bx*8 + x] = acc
                    VReg row = f.binImm(AluFunc::Shl, by.i, 3);
                    f.binTo(row, AluFunc::Add, row, y.i);
                    f.binImmTo(row, AluFunc::Mul, row, width);
                    VReg col = f.binImm(AluFunc::Shl, bx.i, 3);
                    f.binTo(row, AluFunc::Add, row, col);
                    f.binTo(row, AluFunc::Add, row, x.i);
                    f.store(acc,
                            f.add(f.globalAddr(out_sym), row), 0,
                            MemWidth::Byte);
                }
                loopEnd(f, x);
            }
            loopEnd(f, y);
        }
        loopEnd(f, bx);
    }
    loopEnd(f, by);

    emitWrite(f, f.globalAddr(out_sym), f.movImm(width * height));
    f.ret(f.movImm(0));
    mb.endFunction(f);

    bench.module = mb.take();
    return bench;
}

} // namespace dfi::prog

#include "prog/benchmark.hh"

#include "common/logging.hh"

namespace dfi::prog
{

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "djpeg", "search", "smooth", "edge",  "corner",
        "sha",   "fft",    "qsort",  "cjpeg", "caes"};
    return names;
}

Benchmark
buildBenchmark(const std::string &name, std::uint32_t scale)
{
    if (scale == 0)
        fatal("benchmark scale must be >= 1");
    if (name == "sha")
        return buildSha(scale);
    if (name == "caes")
        return buildCaes(scale);
    if (name == "fft")
        return buildFft(scale);
    if (name == "qsort")
        return buildQsort(scale);
    if (name == "search")
        return buildSearch(scale);
    if (name == "smooth")
        return buildSmooth(scale);
    if (name == "edge")
        return buildEdge(scale);
    if (name == "corner")
        return buildCorner(scale);
    if (name == "cjpeg")
        return buildCjpeg(scale);
    if (name == "djpeg")
        return buildDjpeg(scale);
    if (name == "micro")
        return buildMicro(scale); // tiny test workload (not in the study)
    fatal("unknown benchmark '%s'", name);
}

} // namespace dfi::prog

/**
 * @file
 * The integer JPEG-style codec shared by the cjpeg/djpeg benchmarks.
 *
 * This is a self-contained, exactly-specified integer transform codec
 * (8x8 blocks, two-pass scaled-cosine transform, quantization, zigzag
 * RLE entropy coding).  The host reference and the guest IR implement
 * the identical arithmetic, so guest output can be checked
 * byte-for-byte.
 */

#ifndef DFI_PROG_JPEG_COMMON_HH
#define DFI_PROG_JPEG_COMMON_HH

#include <array>
#include <cstdint>
#include <vector>

namespace dfi::prog
{

/** Scaled cosine table: ct[k][i] = round(c(k) cos((2i+1)k pi/16) * 1024). */
const std::array<std::int32_t, 64> &jpegCosTable();

/** Luminance-style quantization table (row-major u,v). */
const std::array<std::int32_t, 64> &jpegQuantTable();

/** Zigzag scan order (index into row-major 8x8). */
const std::array<std::uint32_t, 64> &jpegZigzag();

/** Shift amounts of the two transform passes (forward / inverse). */
constexpr int kFwdShift1 = 8;
constexpr int kFwdShift2 = 13;
constexpr int kInvShift1 = 10;
constexpr int kInvShift2 = 10;

/** Host-side reference encoder (width/height multiples of 8). */
std::vector<std::uint8_t> jpegRefEncode(
    const std::vector<std::uint8_t> &image, int width, int height);

/** Host-side reference decoder (must match the encoder's stream). */
std::vector<std::uint8_t> jpegRefDecode(
    const std::vector<std::uint8_t> &stream, int width, int height);

} // namespace dfi::prog

#endif // DFI_PROG_JPEG_COMMON_HH

/**
 * @file
 * `caes` benchmark: AES-128 ECB encryption (MiBench/security
 * "rijndael" analog).
 *
 * The S-box, the host-expanded round keys, the ShiftRows permutation
 * map and the plaintext are initialized data; the guest performs the
 * full 10-round encryption per block byte-by-byte (table lookups, GF
 * xtime arithmetic) and writes the ciphertext.
 */

#include "prog/benchmark.hh"

#include <array>

#include "prog/util.hh"
#include "syskit/os.hh"

namespace dfi::prog
{

using namespace dfi::ir;
using isa::AluFunc;
using isa::MemWidth;

namespace
{

const std::array<std::uint8_t, 256> kSbox = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67,
    0x2b, 0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59,
    0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7,
    0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1,
    0x71, 0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05,
    0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83,
    0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29,
    0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa,
    0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c,
    0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc,
    0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19,
    0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee,
    0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4,
    0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6,
    0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70,
    0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9,
    0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e,
    0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf, 0x8c, 0xa1,
    0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0,
    0x54, 0xbb, 0x16};

/** Column-major state layout: state[i] is byte i of the block. */
const std::array<std::uint8_t, 16> kShiftRowsMap = {
    0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11};

std::uint8_t
xtime(std::uint8_t x)
{
    return static_cast<std::uint8_t>((x << 1) ^
                                     (((x >> 7) & 1) * 0x1b));
}

/** Host key expansion (AES-128 -> 11 round keys). */
std::array<std::uint8_t, 176>
expandKey(const std::array<std::uint8_t, 16> &key)
{
    std::array<std::uint8_t, 176> rk{};
    std::copy(key.begin(), key.end(), rk.begin());
    std::uint8_t rcon = 1;
    for (int i = 16; i < 176; i += 4) {
        std::uint8_t t[4] = {rk[i - 4], rk[i - 3], rk[i - 2],
                             rk[i - 1]};
        if (i % 16 == 0) {
            const std::uint8_t tmp = t[0];
            t[0] = static_cast<std::uint8_t>(kSbox[t[1]] ^ rcon);
            t[1] = kSbox[t[2]];
            t[2] = kSbox[t[3]];
            t[3] = kSbox[tmp];
            rcon = xtime(rcon);
        }
        for (int j = 0; j < 4; ++j)
            rk[i + j] = rk[i - 16 + j] ^ t[j];
    }
    return rk;
}

/** Host reference single-block encryption. */
void
refEncryptBlock(std::uint8_t *state,
                const std::array<std::uint8_t, 176> &rk)
{
    auto add_round_key = [&](int round) {
        for (int i = 0; i < 16; ++i)
            state[i] ^= rk[16 * round + i];
    };
    auto sub_bytes = [&] {
        for (int i = 0; i < 16; ++i)
            state[i] = kSbox[state[i]];
    };
    auto shift_rows = [&] {
        std::uint8_t tmp[16];
        for (int i = 0; i < 16; ++i)
            tmp[i] = state[kShiftRowsMap[i]];
        std::copy(tmp, tmp + 16, state);
    };
    auto mix_columns = [&] {
        for (int c = 0; c < 4; ++c) {
            std::uint8_t *s = state + 4 * c;
            const std::uint8_t t =
                static_cast<std::uint8_t>(s[0] ^ s[1] ^ s[2] ^ s[3]);
            const std::uint8_t u = s[0];
            s[0] = static_cast<std::uint8_t>(
                s[0] ^ t ^ xtime(static_cast<std::uint8_t>(s[0] ^ s[1])));
            s[1] = static_cast<std::uint8_t>(
                s[1] ^ t ^ xtime(static_cast<std::uint8_t>(s[1] ^ s[2])));
            s[2] = static_cast<std::uint8_t>(
                s[2] ^ t ^ xtime(static_cast<std::uint8_t>(s[2] ^ s[3])));
            s[3] = static_cast<std::uint8_t>(
                s[3] ^ t ^ xtime(static_cast<std::uint8_t>(s[3] ^ u)));
        }
    };

    add_round_key(0);
    for (int round = 1; round <= 9; ++round) {
        sub_bytes();
        shift_rows();
        mix_columns();
        add_round_key(round);
    }
    sub_bytes();
    shift_rows();
    add_round_key(10);
}

/** Guest xtime: ((x << 1) ^ (((x >> 7) & 1) * 0x1b)) & 0xff. */
VReg
emitXtime(FunctionBuilder &f, VReg x)
{
    VReg doubled = f.binImm(AluFunc::Shl, x, 1);
    VReg high = f.binImm(AluFunc::ShrU, x, 7);
    f.binImmTo(high, AluFunc::And, high, 1);
    f.binImmTo(high, AluFunc::Mul, high, 0x1b);
    VReg mixed = f.bin(AluFunc::Xor, doubled, high);
    return f.binImm(AluFunc::And, mixed, 0xff);
}

} // namespace

Benchmark
buildCaes(std::uint32_t scale)
{
    Benchmark bench;
    bench.name = "caes";

    const std::array<std::uint8_t, 16> key = {
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
        0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
    const auto rk = expandKey(key);

    const int num_blocks = static_cast<int>(12 * scale);
    std::vector<std::uint8_t> plaintext(16 * num_blocks);
    for (std::size_t i = 0; i < plaintext.size(); ++i)
        plaintext[i] = static_cast<std::uint8_t>(i * 31 + 7);

    // Reference ciphertext.
    bench.expectedOutput = plaintext;
    for (int b = 0; b < num_blocks; ++b)
        refEncryptBlock(bench.expectedOutput.data() + 16 * b, rk);

    ModuleBuilder mb;
    const int sbox_sym = mb.addGlobal(
        "sbox",
        std::vector<std::uint8_t>(kSbox.begin(), kSbox.end()), 4);
    const int rk_sym = mb.addGlobal(
        "roundkeys", std::vector<std::uint8_t>(rk.begin(), rk.end()),
        4);
    const int map_sym = mb.addGlobal(
        "shiftmap",
        std::vector<std::uint8_t>(kShiftRowsMap.begin(),
                                  kShiftRowsMap.end()),
        4);
    const int pt_sym = mb.addGlobal("plaintext", plaintext, 4);
    const int state_sym = mb.addBss("state", 16);
    const int tmp_sym = mb.addBss("tmpstate", 16);
    const int ct_sym =
        mb.addBss("ciphertext", static_cast<std::uint32_t>(
                                    plaintext.size()));

    ModuleBuilder &m = mb;

    // --- helper functions ------------------------------------------------
    // add_round_key(round): state[i] ^= rk[16*round + i]
    const int fn_ark = m.declareFunction("add_round_key", 1);
    {
        auto f = m.beginFunction(fn_ark);
        VReg st = f.globalAddr(state_sym);
        VReg rkb = f.globalAddr(rk_sym);
        VReg round_off = f.binImm(AluFunc::Shl, f.param(0), 4);
        VReg rk_base = f.add(rkb, round_off);
        LoopCtx i = loopBegin(f, 0, 16);
        {
            VReg sp = f.add(st, i.i);
            VReg kp = f.add(rk_base, i.i);
            VReg s = f.load(sp, 0, MemWidth::Byte);
            VReg k = f.load(kp, 0, MemWidth::Byte);
            f.store(f.bin(AluFunc::Xor, s, k), sp, 0, MemWidth::Byte);
        }
        loopEnd(f, i);
        f.ret(f.movImm(0));
        m.endFunction(f);
    }

    // sub_bytes(): state[i] = sbox[state[i]]
    const int fn_sub = m.declareFunction("sub_bytes", 0);
    {
        auto f = m.beginFunction(fn_sub);
        VReg st = f.globalAddr(state_sym);
        VReg sb = f.globalAddr(sbox_sym);
        LoopCtx i = loopBegin(f, 0, 16);
        {
            VReg sp = f.add(st, i.i);
            VReg s = f.load(sp, 0, MemWidth::Byte);
            VReg lookup = f.load(f.add(sb, s), 0, MemWidth::Byte);
            f.store(lookup, sp, 0, MemWidth::Byte);
        }
        loopEnd(f, i);
        f.ret(f.movImm(0));
        m.endFunction(f);
    }

    // shift_rows(): tmp[i] = state[map[i]]; state = tmp
    const int fn_shift = m.declareFunction("shift_rows", 0);
    {
        auto f = m.beginFunction(fn_shift);
        VReg st = f.globalAddr(state_sym);
        VReg tp = f.globalAddr(tmp_sym);
        VReg mp = f.globalAddr(map_sym);
        LoopCtx i = loopBegin(f, 0, 16);
        {
            VReg idx = f.load(f.add(mp, i.i), 0, MemWidth::Byte);
            VReg val = f.load(f.add(st, idx), 0, MemWidth::Byte);
            f.store(val, f.add(tp, i.i), 0, MemWidth::Byte);
        }
        loopEnd(f, i);
        LoopCtx j = loopBegin(f, 0, 16);
        {
            VReg val = f.load(f.add(tp, j.i), 0, MemWidth::Byte);
            f.store(val, f.add(st, j.i), 0, MemWidth::Byte);
        }
        loopEnd(f, j);
        f.ret(f.movImm(0));
        m.endFunction(f);
    }

    // mix_columns()
    const int fn_mix = m.declareFunction("mix_columns", 0);
    {
        auto f = m.beginFunction(fn_mix);
        LoopCtx c = loopBegin(f, 0, 4);
        {
            VReg st = f.globalAddr(state_sym);
            VReg col_off = f.binImm(AluFunc::Shl, c.i, 2);
            VReg s = f.add(st, col_off);
            VReg s0 = f.load(s, 0, MemWidth::Byte);
            VReg s1 = f.load(s, 1, MemWidth::Byte);
            VReg s2 = f.load(s, 2, MemWidth::Byte);
            VReg s3 = f.load(s, 3, MemWidth::Byte);
            VReg t = f.bin(AluFunc::Xor, s0, s1);
            f.binTo(t, AluFunc::Xor, t, s2);
            f.binTo(t, AluFunc::Xor, t, s3);
            VReg u = f.mov(s0);

            VReg x01 = emitXtime(f, f.bin(AluFunc::Xor, s0, s1));
            VReg n0 = f.bin(AluFunc::Xor, s0, t);
            f.binTo(n0, AluFunc::Xor, n0, x01);
            f.binImmTo(n0, AluFunc::And, n0, 0xff);
            f.store(n0, s, 0, MemWidth::Byte);

            VReg x12 = emitXtime(f, f.bin(AluFunc::Xor, s1, s2));
            VReg n1 = f.bin(AluFunc::Xor, s1, t);
            f.binTo(n1, AluFunc::Xor, n1, x12);
            f.binImmTo(n1, AluFunc::And, n1, 0xff);
            f.store(n1, s, 1, MemWidth::Byte);

            VReg x23 = emitXtime(f, f.bin(AluFunc::Xor, s2, s3));
            VReg n2 = f.bin(AluFunc::Xor, s2, t);
            f.binTo(n2, AluFunc::Xor, n2, x23);
            f.binImmTo(n2, AluFunc::And, n2, 0xff);
            f.store(n2, s, 2, MemWidth::Byte);

            VReg x3u = emitXtime(f, f.bin(AluFunc::Xor, s3, u));
            VReg n3 = f.bin(AluFunc::Xor, s3, t);
            f.binTo(n3, AluFunc::Xor, n3, x3u);
            f.binImmTo(n3, AluFunc::And, n3, 0xff);
            f.store(n3, s, 3, MemWidth::Byte);
        }
        loopEnd(f, c);
        f.ret(f.movImm(0));
        m.endFunction(f);
    }

    // --- main --------------------------------------------------------------
    {
        auto f = m.beginFunction("main", 0);
        LoopCtx blk = loopBegin(f, 0, num_blocks);
        {
            VReg blk_off = f.binImm(AluFunc::Shl, blk.i, 4);
            // state = plaintext block
            VReg pt = f.add(f.globalAddr(pt_sym), blk_off);
            VReg st = f.globalAddr(state_sym);
            LoopCtx cp = loopBegin(f, 0, 16);
            {
                VReg v =
                    f.load(f.add(pt, cp.i), 0, MemWidth::Byte);
                f.store(v, f.add(st, cp.i), 0, MemWidth::Byte);
            }
            loopEnd(f, cp);

            f.callVoid(fn_ark, {f.movImm(0)});
            LoopCtx round = loopBegin(f, 1, 10);
            {
                f.callVoid(fn_sub, {});
                f.callVoid(fn_shift, {});
                f.callVoid(fn_mix, {});
                f.callVoid(fn_ark, {round.i});
            }
            loopEnd(f, round);
            f.callVoid(fn_sub, {});
            f.callVoid(fn_shift, {});
            f.callVoid(fn_ark, {f.movImm(10)});

            // ciphertext block = state
            VReg ct = f.add(f.globalAddr(ct_sym), blk_off);
            VReg st2 = f.globalAddr(state_sym);
            LoopCtx cp2 = loopBegin(f, 0, 16);
            {
                VReg v =
                    f.load(f.add(st2, cp2.i), 0, MemWidth::Byte);
                f.store(v, f.add(ct, cp2.i), 0, MemWidth::Byte);
            }
            loopEnd(f, cp2);
        }
        loopEnd(f, blk);

        VReg out = f.globalAddr(ct_sym);
        emitWrite(f, out,
                  f.movImm(static_cast<std::int32_t>(plaintext.size())));
        f.ret(f.movImm(0));
        m.endFunction(f);
    }

    bench.module = mb.take();
    return bench;
}

} // namespace dfi::prog

/**
 * @file
 * `corner` benchmark: USAN-area corner detection (MiBench/automotive
 * "susan -c" analog).
 *
 * For every interior pixel the guest counts the 5x5 neighbours whose
 * brightness is within a threshold of the nucleus (the USAN area) and
 * marks a corner when the area is below the geometric threshold.
 * Output: packed corner bitmap plus the corner count.
 */

#include "prog/benchmark.hh"

#include <cstdlib>

#include "prog/image_common.hh"
#include "prog/util.hh"
#include "syskit/os.hh"

namespace dfi::prog
{

using namespace dfi::ir;
using isa::AluFunc;
using isa::Cond;
using isa::MemWidth;

Benchmark
buildCorner(std::uint32_t scale)
{
    Benchmark bench;
    bench.name = "corner";

    const int width = 24 * static_cast<int>(scale);
    const int height = 20;
    const int bright_thresh = 27;
    const int area_thresh = 12; // of 24 neighbours
    const auto image = makeTestImage(width, height);

    // --- host reference -----------------------------------------------------
    std::vector<std::uint8_t> marks(image.size(), 0);
    std::uint32_t corner_count = 0;
    for (int y = 2; y < height - 2; ++y) {
        for (int x = 2; x < width - 2; ++x) {
            const int nucleus = image[y * width + x];
            int usan = 0;
            for (int dy = -2; dy <= 2; ++dy) {
                for (int dx = -2; dx <= 2; ++dx) {
                    if (dy == 0 && dx == 0)
                        continue;
                    const int v = image[(y + dy) * width + (x + dx)];
                    if (std::abs(v - nucleus) <= bright_thresh)
                        ++usan;
                }
            }
            if (usan < area_thresh) {
                marks[y * width + x] = 1;
                ++corner_count;
            }
        }
    }
    bench.expectedOutput = marks;
    for (int b = 0; b < 4; ++b) {
        bench.expectedOutput.push_back(
            static_cast<std::uint8_t>(corner_count >> (8 * b)));
    }

    // --- guest ---------------------------------------------------------------
    // Precomputed neighbour byte offsets (the 24 non-nucleus cells of
    // the 5x5 window).
    std::vector<std::uint32_t> neighbour_offsets;
    for (int dy = -2; dy <= 2; ++dy) {
        for (int dx = -2; dx <= 2; ++dx) {
            if (dy == 0 && dx == 0)
                continue;
            neighbour_offsets.push_back(
                static_cast<std::uint32_t>(dy * width + dx));
        }
    }

    ModuleBuilder mb;
    const int in_sym = mb.addGlobal("image", image, 4);
    const int offs_sym =
        mb.addGlobal("window", wordsToBytes(neighbour_offsets), 4);
    const int marks_sym =
        mb.addBss("marks", static_cast<std::uint32_t>(image.size()));
    const int count_sym = mb.addBss("corner_count", 4);

    auto f = mb.beginFunction("main", 0);
    VReg total = f.var(0);

    LoopCtx y = loopBegin(f, 2, height - 2);
    {
        LoopCtx x = loopBegin(f, 2, width - 2);
        {
            VReg row = f.binImm(AluFunc::Mul, y.i, width);
            VReg idx = f.add(row, x.i);
            VReg c = f.add(f.globalAddr(in_sym), idx);
            VReg nucleus = f.load(c, 0, MemWidth::Byte);

            VReg usan = f.var(0);
            LoopCtx w = loopBegin(f, 0, 24);
            {
                VReg ooff = f.binImm(AluFunc::Shl, w.i, 2);
                VReg disp =
                    f.load(f.add(f.globalAddr(offs_sym), ooff), 0);
                VReg v = f.load(f.add(c, disp), 0, MemWidth::Byte);
                VReg diff = f.bin(AluFunc::Sub, v, nucleus);
                // |diff|
                const int neg = f.newBlock();
                const int absdone = f.newBlock();
                f.condBrImm(Cond::Slt, diff, 0, neg, absdone);
                f.setBlock(neg);
                VReg zero = f.movImm(0);
                f.binTo(diff, AluFunc::Sub, zero, diff);
                f.br(absdone);
                f.setBlock(absdone);

                const int inc = f.newBlock();
                const int noinc = f.newBlock();
                f.condBrImm(Cond::Sle, diff, bright_thresh, inc,
                            noinc);
                f.setBlock(inc);
                f.binImmTo(usan, AluFunc::Add, usan, 1);
                f.br(noinc);
                f.setBlock(noinc);
            }
            loopEnd(f, w);

            const int corner = f.newBlock();
            const int not_corner = f.newBlock();
            f.condBrImm(Cond::Slt, usan, area_thresh, corner,
                        not_corner);
            f.setBlock(corner);
            {
                VReg one = f.movImm(1);
                f.store(one, f.add(f.globalAddr(marks_sym), idx), 0,
                        MemWidth::Byte);
                f.binImmTo(total, AluFunc::Add, total, 1);
                f.br(not_corner);
            }
            f.setBlock(not_corner);
        }
        loopEnd(f, x);
    }
    loopEnd(f, y);

    f.store(total, f.globalAddr(count_sym), 0);
    emitWrite(f, f.globalAddr(marks_sym), f.movImm(width * height));
    emitWrite(f, f.globalAddr(count_sym), f.movImm(4));
    f.ret(f.movImm(0));
    mb.endFunction(f);

    bench.module = mb.take();
    return bench;
}

} // namespace dfi::prog

/**
 * @file
 * `fft` benchmark: fixed-point (Q15 twiddles) radix-2 iterative FFT
 * (MiBench/telecomm "fft" analog).
 *
 * The bit-reversal table and twiddle tables are host-precomputed
 * globals; the guest performs the full butterfly network in 32-bit
 * integer arithmetic and writes the transformed arrays.
 */

#include "prog/benchmark.hh"

#include <cmath>

#include "prog/util.hh"
#include "syskit/os.hh"

namespace dfi::prog
{

using namespace dfi::ir;
using isa::AluFunc;
using isa::Cond;

namespace
{

/** Mirror of the guest's wrapping signed arithmetic. */
std::int32_t
mulWrap(std::int32_t a, std::int32_t b)
{
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) *
                                     static_cast<std::uint32_t>(b));
}

} // namespace

Benchmark
buildFft(std::uint32_t scale)
{
    Benchmark bench;
    bench.name = "fft";

    const int n = 256 << (scale > 1 ? scale - 1 : 0);
    const int log_n = [&] {
        int l = 0;
        while ((1 << l) < n)
            ++l;
        return l;
    }();

    // Input signal (Q-ish small integers).
    std::vector<std::int32_t> re(n), im(n, 0);
    for (int i = 0; i < n; ++i)
        re[i] = ((i * 37) % 200 - 100) << 3;

    // Twiddle tables (Q15), one entry per k in [0, n/2).
    std::vector<std::int32_t> wr(n / 2), wi(n / 2);
    for (int k = 0; k < n / 2; ++k) {
        const double angle = -2.0 * M_PI * k / n;
        wr[k] = static_cast<std::int32_t>(
            std::lround(32767.0 * std::cos(angle)));
        wi[k] = static_cast<std::int32_t>(
            std::lround(32767.0 * std::sin(angle)));
    }

    // Bit-reversal table.
    std::vector<std::uint32_t> rev(n);
    for (int i = 0; i < n; ++i) {
        std::uint32_t r = 0;
        for (int b = 0; b < log_n; ++b) {
            if (i & (1 << b))
                r |= 1u << (log_n - 1 - b);
        }
        rev[i] = r;
    }

    // --- host reference (identical arithmetic) ---------------------------
    {
        std::vector<std::int32_t> a(n), b(n);
        for (int i = 0; i < n; ++i) {
            a[i] = re[rev[i]];
            b[i] = im[rev[i]];
        }
        for (int len = 2; len <= n; len <<= 1) {
            const int half = len >> 1;
            const int step = n / len;
            for (int base = 0; base < n; base += len) {
                for (int k = 0; k < half; ++k) {
                    const int widx = k * step;
                    const int i = base + k;
                    const int j = i + half;
                    const std::int32_t tr =
                        (mulWrap(wr[widx], a[j]) -
                         mulWrap(wi[widx], b[j])) >>
                        15;
                    const std::int32_t ti =
                        (mulWrap(wr[widx], b[j]) +
                         mulWrap(wi[widx], a[j])) >>
                        15;
                    a[j] = a[i] - tr;
                    b[j] = b[i] - ti;
                    a[i] = a[i] + tr;
                    b[i] = b[i] + ti;
                }
            }
        }
        std::vector<std::uint32_t> out;
        out.reserve(2 * n);
        for (int i = 0; i < n; ++i)
            out.push_back(static_cast<std::uint32_t>(a[i]));
        for (int i = 0; i < n; ++i)
            out.push_back(static_cast<std::uint32_t>(b[i]));
        bench.expectedOutput = wordsToBytes(out);
    }

    // --- guest program ----------------------------------------------------
    auto to_bytes = [](const std::vector<std::int32_t> &v) {
        std::vector<std::uint32_t> u(v.begin(), v.end());
        return wordsToBytes(u);
    };

    ModuleBuilder mb;
    const int re_sym = mb.addGlobal("in_re", to_bytes(re), 4);
    const int im_sym = mb.addGlobal("in_im", to_bytes(im), 4);
    const int wr_sym = mb.addGlobal("tw_re", to_bytes(wr), 4);
    const int wi_sym = mb.addGlobal("tw_im", to_bytes(wi), 4);
    const int rev_sym = mb.addGlobal("bitrev", wordsToBytes(rev), 4);
    const int a_sym = mb.addBss("work_re", 4 * n);
    const int b_sym = mb.addBss("work_im", 4 * n);

    auto f = mb.beginFunction("main", 0);

    // Bit-reverse copy.
    {
        LoopCtx i = loopBegin(f, 0, n);
        VReg off = f.binImm(AluFunc::Shl, i.i, 2);
        VReg j = f.load(f.add(f.globalAddr(rev_sym), off), 0);
        VReg joff = f.binImm(AluFunc::Shl, j, 2);
        VReg sre = f.load(f.add(f.globalAddr(re_sym), joff), 0);
        VReg sim = f.load(f.add(f.globalAddr(im_sym), joff), 0);
        f.store(sre, f.add(f.globalAddr(a_sym), off), 0);
        f.store(sim, f.add(f.globalAddr(b_sym), off), 0);
        loopEnd(f, i);
    }

    // Butterfly stages: for (len = 2; len <= n; len <<= 1)
    {
        VReg len = f.var(2);
        const int stage_head = f.newBlock();
        const int stage_body = f.newBlock();
        const int stage_exit = f.newBlock();
        f.br(stage_head);
        f.setBlock(stage_head);
        f.condBrImm(Cond::Sle, len, n, stage_body, stage_exit);
        f.setBlock(stage_body);
        {
            VReg half = f.binImm(AluFunc::ShrU, len, 1);
            VReg step = f.movImm(n);
            f.binTo(step, AluFunc::DivU, step, len);

            VReg nreg = f.movImm(n);
            LoopCtx base = loopBeginR(f, 0, nreg);
            {
                LoopCtx k = loopBeginR(f, 0, half);
                {
                    VReg widx = f.bin(AluFunc::Mul, k.i, step);
                    VReg woff = f.binImm(AluFunc::Shl, widx, 2);
                    VReg wrv =
                        f.load(f.add(f.globalAddr(wr_sym), woff), 0);
                    VReg wiv =
                        f.load(f.add(f.globalAddr(wi_sym), woff), 0);

                    VReg i = f.add(base.i, k.i);
                    VReg j = f.add(i, half);
                    VReg ioff = f.binImm(AluFunc::Shl, i, 2);
                    VReg joff = f.binImm(AluFunc::Shl, j, 2);
                    VReg apij = f.add(f.globalAddr(a_sym), ioff);
                    VReg apjj = f.add(f.globalAddr(a_sym), joff);
                    VReg bpij = f.add(f.globalAddr(b_sym), ioff);
                    VReg bpjj = f.add(f.globalAddr(b_sym), joff);

                    VReg aj = f.load(apjj, 0);
                    VReg bj = f.load(bpjj, 0);

                    VReg tr = f.bin(AluFunc::Mul, wrv, aj);
                    VReg t2 = f.bin(AluFunc::Mul, wiv, bj);
                    f.binTo(tr, AluFunc::Sub, tr, t2);
                    f.binImmTo(tr, AluFunc::ShrS, tr, 15);

                    VReg ti = f.bin(AluFunc::Mul, wrv, bj);
                    VReg t3 = f.bin(AluFunc::Mul, wiv, aj);
                    f.binTo(ti, AluFunc::Add, ti, t3);
                    f.binImmTo(ti, AluFunc::ShrS, ti, 15);

                    VReg ai = f.load(apij, 0);
                    VReg bi = f.load(bpij, 0);
                    f.store(f.bin(AluFunc::Sub, ai, tr), apjj, 0);
                    f.store(f.bin(AluFunc::Sub, bi, ti), bpjj, 0);
                    f.store(f.bin(AluFunc::Add, ai, tr), apij, 0);
                    f.store(f.bin(AluFunc::Add, bi, ti), bpij, 0);
                }
                loopEnd(f, k);
            }
            // base += len (variable step: emit manually)
            f.binTo(base.i, AluFunc::Add, base.i, len);
            f.br(base.head);
            f.setBlock(base.exit);
        }
        f.binImmTo(len, AluFunc::Shl, len, 1);
        f.br(stage_head);
        f.setBlock(stage_exit);
    }

    // Output work_re then work_im.
    emitWrite(f, f.globalAddr(a_sym), f.movImm(4 * n));
    emitWrite(f, f.globalAddr(b_sym), f.movImm(4 * n));
    f.ret(f.movImm(0));
    mb.endFunction(f);

    bench.module = mb.take();
    return bench;
}

} // namespace dfi::prog

/**
 * @file
 * The benchmark suite: ten MiBench-like workloads written in the
 * portable IR, each paired with a host-side reference implementation
 * that computes the expected guest output byte-for-byte.
 *
 * The ten workloads mirror the paper's MiBench selection (Section
 * IV.B): djpeg, search, smooth, edge, corner, sha, fft, qsort, cjpeg,
 * caes.  Inputs are synthetic but deterministic; each benchmark's
 * `scale` parameter grows the input for longer runs (scale 1 targets
 * golden runs of roughly 10-100k dynamic instructions, small enough
 * for large injection campaigns).
 */

#ifndef DFI_PROG_BENCHMARK_HH
#define DFI_PROG_BENCHMARK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/ir.hh"

namespace dfi::prog
{

/** A workload: IR module plus its expected output. */
struct Benchmark
{
    std::string name;
    ir::Module module;
    std::vector<std::uint8_t> expectedOutput;
    std::uint32_t expectedExit = 0;
};

/** The ten benchmark names in the paper's order. */
const std::vector<std::string> &benchmarkNames();

/** Build a benchmark by name; fatal() on unknown names. */
Benchmark buildBenchmark(const std::string &name,
                         std::uint32_t scale = 1);

// Individual builders (exposed for targeted tests).
Benchmark buildSha(std::uint32_t scale);
Benchmark buildCaes(std::uint32_t scale);
Benchmark buildFft(std::uint32_t scale);
Benchmark buildQsort(std::uint32_t scale);
Benchmark buildSearch(std::uint32_t scale);
Benchmark buildSmooth(std::uint32_t scale);
Benchmark buildEdge(std::uint32_t scale);
Benchmark buildCorner(std::uint32_t scale);
Benchmark buildCjpeg(std::uint32_t scale);
Benchmark buildDjpeg(std::uint32_t scale);
/** Tiny checksum kernel for tests/examples (not part of the study). */
Benchmark buildMicro(std::uint32_t scale);

} // namespace dfi::prog

#endif // DFI_PROG_BENCHMARK_HH

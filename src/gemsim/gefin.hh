/**
 * @file
 * GeFIN — the Gem5-based Fault INjector.
 *
 * The named façade of the paper's GeFIN tool: injection campaigns
 * pinned to the gem5-like simulator model in either of its two ISA
 * instantiations (gem5-x86, gem5-arm).  The gem5-specific behaviours
 * the study isolates live in those CoreConfigs: split 16/16
 * load/store queues where only the store queue holds data, 40-entry
 * ROB, conservative load issue, fully internal system handling (the
 * kernel reads guest buffers through the caches and its code occupies
 * the L1I), sparse assertion checking (corruption surfaces as
 * simulator crashes), the history-indexed tournament chooser and the
 * direct-mapped unified 2K BTB.
 */

#ifndef DFI_GEMSIM_GEFIN_HH
#define DFI_GEMSIM_GEFIN_HH

#include "common/logging.hh"
#include "inject/campaign.hh"
#include "uarch/core_config.hh"
#include "uarch/ooo_core.hh"

namespace dfi::gefin
{

/** The gem5-like simulator model GeFIN instruments. */
inline uarch::CoreConfig
simulatorConfig(isa::IsaKind isa)
{
    return isa == isa::IsaKind::X86 ? uarch::gem5X86Config()
                                    : uarch::gem5ArmConfig();
}

/** Build a GeFIN campaign for the chosen ISA. */
inline inject::InjectionCampaign
makeCampaign(inject::CampaignConfig config, isa::IsaKind isa)
{
    config.coreName =
        isa == isa::IsaKind::X86 ? "gem5-x86" : "gem5-arm";
    return inject::InjectionCampaign(std::move(config));
}

/** Instantiate the bare simulator (for direct-driving studies). */
inline uarch::OooCore
makeSimulator(const isa::Image &image)
{
    return uarch::OooCore(simulatorConfig(image.isa), image);
}

} // namespace dfi::gefin

#endif // DFI_GEMSIM_GEFIN_HH

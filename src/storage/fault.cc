#include "storage/fault.hh"

#include <sstream>

#include "common/logging.hh"

namespace dfi
{

std::string
faultTypeName(FaultType type)
{
    switch (type) {
      case FaultType::Transient:
        return "transient";
      case FaultType::Intermittent:
        return "intermittent";
      case FaultType::Permanent:
        return "permanent";
    }
    panic("faultTypeName: bad FaultType %s", static_cast<int>(type));
}

std::string
FaultMask::toLine() const
{
    std::ostringstream os;
    os << runId << ' ' << static_cast<unsigned>(core) << ' '
       << structureName(structure) << ' ' << entry << ' ' << bit << ' '
       << faultTypeName(type) << ' ' << cycle << ' ' << duration << ' '
       << (stuckValue ? 1 : 0);
    return os.str();
}

FaultMask
FaultMask::fromLine(const std::string &line)
{
    std::istringstream is(line);
    FaultMask mask;
    unsigned core = 0;
    std::string structure, type;
    unsigned stuck = 0;
    is >> mask.runId >> core >> structure >> mask.entry >> mask.bit >>
        type >> mask.cycle >> mask.duration >> stuck;
    if (!is)
        fatal("malformed fault mask line: '%s'", line);
    mask.core = static_cast<std::uint8_t>(core);
    mask.structure = structureFromName(structure);
    if (type == "transient")
        mask.type = FaultType::Transient;
    else if (type == "intermittent")
        mask.type = FaultType::Intermittent;
    else if (type == "permanent")
        mask.type = FaultType::Permanent;
    else
        fatal("unknown fault type '%s' in mask line", type);
    mask.stuckValue = stuck != 0;
    return mask;
}

} // namespace dfi

/**
 * @file
 * Identifiers for every injectable microarchitectural storage array.
 *
 * This is the shared vocabulary between the simulators (which own the
 * arrays) and the injection framework (which addresses faults at
 * them).  The list covers every component of Table IV of the paper:
 * the structures that exist in both tools, the structures MaFIN had to
 * add to MARSS (cache data/valid arrays, direct-branch BTB,
 * prefetchers) and the structures GeFIN reuses from gem5.
 */

#ifndef DFI_STORAGE_STRUCTURE_ID_HH
#define DFI_STORAGE_STRUCTURE_ID_HH

#include <cstdint>
#include <string>

namespace dfi
{

/** Physical storage arrays a fault can be injected into. */
enum class StructureId : std::uint8_t
{
    IntRegFile,     //!< integer physical register file
    FpRegFile,      //!< floating-point physical register file
    IssueQueue,     //!< issue queue payload (packed instruction fields)
    LoadStoreQueue, //!< unified LSQ data field (MARSS-style)
    LoadQueue,      //!< split load queue (gem5-style; holds no data)
    StoreQueue,     //!< split store queue data field (gem5-style)
    L1DData,        //!< L1 data cache: data arrays
    L1DTag,         //!< L1 data cache: tag arrays
    L1DValid,       //!< L1 data cache: valid bits
    L1IData,        //!< L1 instruction cache: instruction arrays
    L1ITag,         //!< L1 instruction cache: tag arrays
    L1IValid,       //!< L1 instruction cache: valid bits
    L2Data,         //!< L2 cache: data arrays
    L2Tag,          //!< L2 cache: tag arrays
    L2Valid,        //!< L2 cache: valid bits
    DTlb,           //!< data TLB (valid + tag + frame)
    ITlb,           //!< instruction TLB (valid + tag + frame)
    Btb,            //!< branch target buffer (direct branches)
    BtbIndirect,    //!< indirect-branch BTB (MARSS-style split BTB)
    Ras,            //!< return address stack
    PrefetchL1D,    //!< L1D next-line prefetcher state (MaFIN "New")
    PrefetchL1I,    //!< L1I next-line prefetcher state (MaFIN "New")

    NumStructures
};

/** Short lower-case name used in masks, logs and reports. */
std::string structureName(StructureId id);

/** Inverse of structureName(); fatal() on unknown names. */
StructureId structureFromName(const std::string &name);

} // namespace dfi

#endif // DFI_STORAGE_STRUCTURE_ID_HH

/**
 * @file
 * Fault models (paper Table III) and the fault-mask record.
 *
 * A FaultMask is the unit the Fault Mask Generator produces and the
 * Injection Campaign Controller consumes: it pins down where (core,
 * structure, entry, bit), when (cycle, duration) and what (transient
 * flip / intermittent stuck / permanent stuck) to inject.  Multi-bit
 * and multi-structure experiments are expressed as a *set* of
 * FaultMasks applied in the same run (the mask file groups them by
 * run id).
 */

#ifndef DFI_STORAGE_FAULT_HH
#define DFI_STORAGE_FAULT_HH

#include <cstdint>
#include <string>

#include "storage/structure_id.hh"

namespace dfi
{

/** The three basic fault models of Table III. */
enum class FaultType : std::uint8_t
{
    Transient,    //!< single bit flip at a given cycle
    Intermittent, //!< bit stuck at a value for [cycle, cycle+duration)
    Permanent     //!< bit stuck at a value for the whole run
};

/** Human-readable fault-type name. */
std::string faultTypeName(FaultType type);

/** One elementary fault to apply during a run. */
struct FaultMask
{
    std::uint32_t runId = 0;     //!< groups masks of a multi-fault run
    std::uint8_t core = 0;       //!< processor core (multicore-ready)
    StructureId structure = StructureId::IntRegFile;
    std::uint32_t entry = 0;     //!< row within the structure
    std::uint32_t bit = 0;       //!< bit within the row
    FaultType type = FaultType::Transient;
    std::uint64_t cycle = 0;     //!< injection cycle (ignored: permanent)
    std::uint64_t duration = 0;  //!< stuck duration (intermittent only)
    bool stuckValue = false;     //!< stuck-at polarity (non-transient)

    /** Serialize to one text line of the masks repository. */
    std::string toLine() const;

    /** Parse a line produced by toLine(); fatal() on malformed input. */
    static FaultMask fromLine(const std::string &line);

    bool operator==(const FaultMask &other) const = default;
};

} // namespace dfi

#endif // DFI_STORAGE_FAULT_HH

/**
 * @file
 * Per-run fault application engine.
 *
 * The FaultDomain holds the set of FaultMasks armed for the current
 * run and applies them to the simulator's storage arrays as simulated
 * time advances.  It is deliberately decoupled from the simulators:
 * arrays are resolved through a caller-supplied resolver function, so
 * the same engine drives both MaFIN (marssim) and GeFIN (gemsim).
 *
 * Semantics per fault model:
 *  - Transient:    at mask.cycle the bit is flipped once.
 *  - Intermittent: during [cycle, cycle+duration) the bit is re-forced
 *                  to stuckValue every cycle (so intervening writes
 *                  cannot clear it while the fault is active).
 *  - Permanent:    as intermittent but active for the whole run.
 */

#ifndef DFI_STORAGE_FAULT_DOMAIN_HH
#define DFI_STORAGE_FAULT_DOMAIN_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "storage/fault.hh"
#include "storage/faultable_array.hh"

namespace dfi
{

/** Applies armed faults to resolver-provided arrays each cycle. */
class FaultDomain
{
  public:
    using ArrayResolver = std::function<FaultableArray *(StructureId)>;

    FaultDomain() = default;

    /** Install the structure-to-array resolver (owned by the sim). */
    void setResolver(ArrayResolver resolver)
    {
        resolver_ = std::move(resolver);
    }

    /** Arm one fault for this run.  May be called multiple times. */
    void arm(const FaultMask &mask);

    /** Drop all armed faults and bookkeeping. */
    void reset();

    /**
     * Advance to simulation cycle `cycle`: inject due transients,
     * re-force active stuck-at faults.
     * @return true if any fault was applied or is still pending/active
     *         (callers may use this to skip work on fault-free runs).
     */
    bool tick(std::uint64_t cycle);

    /** True once every transient fired (stuck faults never finish). */
    bool allTransientsApplied() const;

    /** Number of armed faults. */
    std::size_t numArmed() const { return faults_.size(); }

    /** Armed masks (for dispatcher bookkeeping, e.g. watch arming). */
    const std::vector<FaultMask> &armed() const { return faults_; }

  private:
    FaultableArray *resolve(StructureId id) const;

    ArrayResolver resolver_;
    std::vector<FaultMask> faults_;
    std::vector<bool> transientDone_;
};

} // namespace dfi

#endif // DFI_STORAGE_FAULT_DOMAIN_HH

/**
 * @file
 * Copy-on-write paged buffer backing the simulator's bulk state.
 *
 * Checkpointing a core is plain copy construction; before this layer
 * a snapshot copy materialised every byte of the memory image and of
 * every FaultableArray, so restore cost scaled with *core size*.
 * CowBuffer splits the backing store into fixed-size pages held by
 * shared_ptr: copying a buffer copies only the page table, and a page
 * is cloned the first time a writer touches it while it is still
 * shared.  Restoring a run from a checkpoint therefore costs
 * O(pages the run actually writes), not O(core size).
 *
 * Thread-safety: the campaign executor copies worker cores from
 * *const* checkpoints.  shared_ptr's reference count is atomic, so
 * concurrent copies from (and reads of) a shared page are safe; and a
 * page whose use_count() is exactly 1 is reachable only through the
 * one buffer being mutated, so the clone-on-write path never races.
 * The only requirement is the usual one: no other thread may mutate
 * the same CowBuffer object concurrently.
 */

#ifndef DFI_STORAGE_COW_BUFFER_HH
#define DFI_STORAGE_COW_BUFFER_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/serial.hh"

namespace dfi
{

/** Paged value store; PageElems must be a power of two. */
template <typename T, std::size_t PageElems>
class CowBuffer
{
    static_assert(PageElems > 0 &&
                      (PageElems & (PageElems - 1)) == 0,
                  "PageElems must be a power of two");

  public:
    CowBuffer() = default;

    /** `size` elements, all set to `fill`. */
    CowBuffer(std::size_t size, T fill) : size_(size)
    {
        if (size == 0)
            return;
        // Every slot starts out aliasing one fill page, so a fresh
        // buffer owns a single materialised page no matter how large
        // its logical size is.
        auto page = std::make_shared<Page>();
        page->elems.fill(fill);
        pages_.assign((size + PageElems - 1) / PageElems, page);
    }

    std::size_t size() const { return size_; }

    T get(std::size_t index) const
    {
        return pages_[index / PageElems]->elems[index % PageElems];
    }

    void set(std::size_t index, T value) { ref(index) = value; }

    /** Mutable element access; clones the page if it is shared. */
    T &
    ref(std::size_t index)
    {
        return mutablePage(index / PageElems)
            .elems[index % PageElems];
    }

    /** Page-table length (materialised or shared). */
    std::size_t pageCount() const { return pages_.size(); }

    /** Pages still shared with a sibling buffer or page slot. */
    std::size_t
    sharedPageCount() const
    {
        std::size_t shared = 0;
        for (const auto &page : pages_) {
            if (page.use_count() > 1)
                ++shared;
        }
        return shared;
    }

    static constexpr std::size_t
    pageBytes()
    {
        return PageElems * sizeof(T);
    }

    /**
     * Serialize logical size and page table.  Page payloads are
     * interned by identity, so buffers (and snapshot stacks) that
     * share pages in memory share them in the stream and re-share
     * them after load.
     */
    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        std::uint64_t size = size_;
        serial::value(ar, size);
        std::uint64_t page_count = pages_.size();
        serial::value(ar, page_count);
        if constexpr (!Ar::kSaving) {
            const std::uint64_t expected =
                size == 0 ? 0 : (size + PageElems - 1) / PageElems;
            if (page_count != expected) {
                ar.fail("cow buffer: page table does not match size");
                return;
            }
            size_ = static_cast<std::size_t>(size);
            pages_.assign(static_cast<std::size_t>(page_count), nullptr);
        }
        for (std::size_t i = 0; i < pages_.size(); ++i) {
            if constexpr (Ar::kSaving) {
                std::uint64_t id = 0;
                std::uint8_t interned =
                    ar.internPage(pages_[i].get(), id) ? 1 : 0;
                serial::value(ar, interned);
                if (interned != 0)
                    serial::value(ar, id);
                else
                    ar.bytes(pages_[i]->elems.data(), pageBytes());
            } else {
                std::uint8_t interned = 0;
                serial::value(ar, interned);
                if (!ar.ok())
                    return;
                if (interned != 0) {
                    std::uint64_t id = 0;
                    serial::value(ar, id);
                    auto page = std::static_pointer_cast<Page>(
                        ar.internedPage(id));
                    if (page == nullptr)
                        return;
                    pages_[i] = std::move(page);
                } else {
                    auto page = std::make_shared<Page>();
                    ar.bytes(page->elems.data(), pageBytes());
                    ar.registerPage(page);
                    pages_[i] = std::move(page);
                }
            }
        }
    }

  private:
    struct Page
    {
        std::array<T, PageElems> elems;
    };

    Page &
    mutablePage(std::size_t index)
    {
        std::shared_ptr<Page> &slot = pages_[index];
        if (slot.use_count() != 1)
            slot = std::make_shared<Page>(*slot);
        return *slot;
    }

    std::size_t size_ = 0;
    std::vector<std::shared_ptr<Page>> pages_;
};

} // namespace dfi

#endif // DFI_STORAGE_COW_BUFFER_HH

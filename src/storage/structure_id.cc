#include "storage/structure_id.hh"

#include <array>

#include "common/logging.hh"

namespace dfi
{

namespace
{

constexpr std::size_t kNumStructures =
    static_cast<std::size_t>(StructureId::NumStructures);

const std::array<const char *, kNumStructures> kNames = {
    "int_regfile",  "fp_regfile", "issue_queue", "lsq",
    "load_queue",   "store_queue",
    "l1d_data",     "l1d_tag",    "l1d_valid",
    "l1i_data",     "l1i_tag",    "l1i_valid",
    "l2_data",      "l2_tag",     "l2_valid",
    "dtlb",         "itlb",
    "btb",          "btb_indirect", "ras",
    "prefetch_l1d", "prefetch_l1i",
};

} // namespace

std::string
structureName(StructureId id)
{
    const auto index = static_cast<std::size_t>(id);
    if (index >= kNumStructures)
        panic("structureName: bad StructureId %s", index);
    return kNames[index];
}

StructureId
structureFromName(const std::string &name)
{
    for (std::size_t i = 0; i < kNumStructures; ++i) {
        if (name == kNames[i])
            return static_cast<StructureId>(i);
    }
    fatal("unknown structure name '%s'", name);
}

} // namespace dfi

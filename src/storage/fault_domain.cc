#include "storage/fault_domain.hh"

#include "common/logging.hh"

namespace dfi
{

void
FaultDomain::arm(const FaultMask &mask)
{
    faults_.push_back(mask);
    transientDone_.push_back(false);
}

void
FaultDomain::reset()
{
    faults_.clear();
    transientDone_.clear();
}

FaultableArray *
FaultDomain::resolve(StructureId id) const
{
    if (!resolver_)
        panic("FaultDomain::tick with no array resolver installed");
    return resolver_(id);
}

bool
FaultDomain::tick(std::uint64_t cycle)
{
    bool active = false;
    for (std::size_t i = 0; i < faults_.size(); ++i) {
        const FaultMask &mask = faults_[i];
        FaultableArray *array = resolve(mask.structure);
        if (array == nullptr) {
            // The target structure does not exist on this simulator
            // (e.g. unified LSQ on gemsim); the dispatcher should have
            // remapped it, so reaching here is a framework bug.
            panic("fault targets structure '%s' missing on this sim",
                  structureName(mask.structure));
        }
        switch (mask.type) {
          case FaultType::Transient:
            if (!transientDone_[i]) {
                if (cycle >= mask.cycle) {
                    array->flipBit(mask.entry, mask.bit);
                    transientDone_[i] = true;
                }
                active = true;
            }
            break;
          case FaultType::Intermittent:
            if (cycle >= mask.cycle &&
                cycle < mask.cycle + mask.duration) {
                array->forceBit(mask.entry, mask.bit, mask.stuckValue);
                active = true;
            } else if (cycle < mask.cycle) {
                active = true; // still pending
            }
            break;
          case FaultType::Permanent:
            array->forceBit(mask.entry, mask.bit, mask.stuckValue);
            active = true;
            break;
        }
    }
    return active;
}

bool
FaultDomain::allTransientsApplied() const
{
    for (std::size_t i = 0; i < faults_.size(); ++i) {
        if (faults_[i].type == FaultType::Transient && !transientDone_[i])
            return false;
    }
    return true;
}

} // namespace dfi

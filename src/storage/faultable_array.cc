#include "storage/faultable_array.hh"

#include "common/logging.hh"

namespace dfi
{

FaultableArray::FaultableArray(std::string name, std::size_t entries,
                               std::size_t bits_per_entry)
    : name_(std::move(name)), entries_(entries),
      bitsPerEntry_(bits_per_entry),
      wordsPerEntry_((bits_per_entry + 63) / 64),
      words_(entries * wordsPerEntry_, 0)
{
    if (entries == 0 || bits_per_entry == 0)
        panic("FaultableArray %s: zero geometry", name_);
}

void
FaultableArray::checkBounds(std::size_t entry, std::size_t bit,
                            std::size_t width) const
{
    if (entry >= entries_ || width > 64 || bit + width > bitsPerEntry_) {
        panic("FaultableArray %s: access out of bounds "
              "(entry %s, bit %s, width %s)",
              name_, entry, bit, width);
    }
}

void
FaultableArray::noteRead(std::size_t entry, std::size_t bit,
                         std::size_t width) const
{
    if (observer_)
        observer_->onAccess(*this, entry, bit, width, false);
    if (watchState_ != WatchState::Armed)
        return;
    if (entry == watchEntry_ && watchBit_ >= bit &&
        watchBit_ < bit + width) {
        watchState_ = WatchState::ReadFirst;
    }
}

void
FaultableArray::noteWrite(std::size_t entry, std::size_t bit,
                          std::size_t width)
{
    if (observer_)
        observer_->onAccess(*this, entry, bit, width, true);
    if (watchState_ != WatchState::Armed)
        return;
    if (entry == watchEntry_ && watchBit_ >= bit &&
        watchBit_ < bit + width) {
        watchState_ = WatchState::WrittenFirst;
    }
}

std::uint64_t
FaultableArray::readBits(std::size_t entry, std::size_t bit,
                         std::size_t width) const
{
    checkBounds(entry, bit, width);
    noteRead(entry, bit, width);

    const std::size_t base = entry * wordsPerEntry_;
    const std::size_t word = bit / 64;
    const std::size_t shift = bit % 64;

    std::uint64_t value = words_.get(base + word) >> shift;
    if (shift != 0 && shift + width > 64)
        value |= words_.get(base + word + 1) << (64 - shift);
    if (width < 64)
        value &= (1ull << width) - 1;
    return value;
}

void
FaultableArray::writeBits(std::size_t entry, std::size_t bit,
                          std::size_t width, std::uint64_t value)
{
    checkBounds(entry, bit, width);
    noteWrite(entry, bit, width);

    const std::size_t base = entry * wordsPerEntry_;
    const std::size_t word = bit / 64;
    const std::size_t shift = bit % 64;
    const std::uint64_t mask =
        width == 64 ? ~0ull : ((1ull << width) - 1);

    std::uint64_t &low = words_.ref(base + word);
    low &= ~(mask << shift);
    low |= (value & mask) << shift;
    if (shift != 0 && shift + width > 64) {
        const std::size_t spill = shift + width - 64;
        const std::uint64_t spill_mask = (1ull << spill) - 1;
        std::uint64_t &high = words_.ref(base + word + 1);
        high &= ~spill_mask;
        high |= (value & mask) >> (64 - shift);
    }
}

void
FaultableArray::readBytes(std::size_t entry, std::size_t byte_offset,
                          std::size_t count, std::uint8_t *out) const
{
    // Hot path (cache lines, fetch groups): one bounds/watch check for
    // the whole span, then word-wise extraction.
    const std::size_t bit = byte_offset * 8;
    const std::size_t width = count * 8;
    if (entry >= entries_ || bit + width > bitsPerEntry_) {
        panic("FaultableArray %s: readBytes out of bounds "
              "(entry %s, byte %s, count %s)",
              name_, entry, byte_offset, count);
    }
    noteRead(entry, bit, width);
    const std::size_t base = entry * wordsPerEntry_;
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t b = bit + i * 8;
        out[i] = static_cast<std::uint8_t>(
            words_.get(base + b / 64) >> (b % 64));
    }
}

void
FaultableArray::writeBytes(std::size_t entry, std::size_t byte_offset,
                           std::size_t count, const std::uint8_t *in)
{
    const std::size_t bit = byte_offset * 8;
    const std::size_t width = count * 8;
    if (entry >= entries_ || bit + width > bitsPerEntry_) {
        panic("FaultableArray %s: writeBytes out of bounds "
              "(entry %s, byte %s, count %s)",
              name_, entry, byte_offset, count);
    }
    noteWrite(entry, bit, width);
    const std::size_t base = entry * wordsPerEntry_;
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t b = bit + i * 8;
        std::uint64_t &word = words_.ref(base + b / 64);
        word &= ~(0xffull << (b % 64));
        word |= static_cast<std::uint64_t>(in[i]) << (b % 64);
    }
}

bool
FaultableArray::readBit(std::size_t entry, std::size_t bit) const
{
    return readBits(entry, bit, 1) != 0;
}

void
FaultableArray::writeBit(std::size_t entry, std::size_t bit, bool value)
{
    writeBits(entry, bit, 1, value ? 1 : 0);
}

void
FaultableArray::clearEntry(std::size_t entry)
{
    if (entry >= entries_)
        panic("FaultableArray %s: clearEntry out of bounds (%s)", name_,
              entry);
    if (observer_)
        observer_->onAccess(*this, entry, 0, bitsPerEntry_, true);
    if (watchState_ == WatchState::Armed && entry == watchEntry_)
        watchState_ = WatchState::WrittenFirst;
    const std::size_t base = entry * wordsPerEntry_;
    for (std::size_t w = 0; w < wordsPerEntry_; ++w)
        words_.set(base + w, 0);
}

void
FaultableArray::flipBit(std::size_t entry, std::size_t bit)
{
    checkBounds(entry, bit, 1);
    const std::size_t base = entry * wordsPerEntry_;
    words_.ref(base + bit / 64) ^= 1ull << (bit % 64);
}

void
FaultableArray::forceBit(std::size_t entry, std::size_t bit, bool value)
{
    checkBounds(entry, bit, 1);
    const std::size_t base = entry * wordsPerEntry_;
    const std::uint64_t mask = 1ull << (bit % 64);
    if (value)
        words_.ref(base + bit / 64) |= mask;
    else
        words_.ref(base + bit / 64) &= ~mask;
}

bool
FaultableArray::peekBit(std::size_t entry, std::size_t bit) const
{
    checkBounds(entry, bit, 1);
    const std::size_t base = entry * wordsPerEntry_;
    return (words_.get(base + bit / 64) >> (bit % 64)) & 1;
}

void
FaultableArray::armWatch(std::size_t entry, std::size_t bit)
{
    checkBounds(entry, bit, 1);
    watchEntry_ = entry;
    watchBit_ = bit;
    watchState_ = WatchState::Armed;
}

void
FaultableArray::clearWatch()
{
    watchState_ = WatchState::Idle;
}

template <class Ar>
void
FaultableArray::serializeState(Ar &ar)
{
    std::uint64_t entries = entries_;
    std::uint64_t bits_per_entry = bitsPerEntry_;
    serial::value(ar, entries);
    serial::value(ar, bits_per_entry);
    if constexpr (!Ar::kSaving) {
        if (entries != entries_ || bits_per_entry != bitsPerEntry_) {
            ar.fail("faultable array '" + name_ + "': geometry mismatch");
            return;
        }
    }
    serial::value(ar, words_);
    std::uint64_t watch_entry = watchEntry_;
    std::uint64_t watch_bit = watchBit_;
    serial::value(ar, watch_entry);
    serial::value(ar, watch_bit);
    serial::value(ar, watchState_);
    if constexpr (!Ar::kSaving) {
        watchEntry_ = static_cast<std::size_t>(watch_entry);
        watchBit_ = static_cast<std::size_t>(watch_bit);
        // Observers trace a live array; loaded state starts untraced.
        observer_ = nullptr;
    }
}

template void FaultableArray::serializeState(serial::Writer &);
template void FaultableArray::serializeState(serial::Reader &);

} // namespace dfi

/**
 * @file
 * Bit-accurate storage array with fault-injection and access-tracking
 * hooks.
 *
 * Every injectable microarchitectural structure (register files, cache
 * tag/data/valid arrays, queues, TLBs, BTBs, prefetcher state) is
 * backed by a FaultableArray of `entries x bitsPerEntry` real bits.
 * Faults are realized by mutating these bits — a transient flip, or a
 * stuck-at value reasserted each cycle by the FaultDomain — and then
 * propagate through the simulator only via ordinary reads of the
 * array.  No fault outcome is ever scripted.
 *
 * The array additionally supports a single *watch* on one bit, used by
 * the campaign controller's early-stop optimization (paper §III.B):
 * after injecting, the controller watches the faulted bit and stops
 * the run as soon as the first access is a full overwrite (fault
 * guaranteed masked) instead of a read.
 *
 * The class is value-semantic; simulator checkpointing copies it
 * wholesale.  The backing words live in a copy-on-write paged buffer
 * (storage/cow_buffer.hh), so a checkpoint copy shares every page
 * with its source until one side writes it — restores cost
 * O(touched pages), not O(array size).
 */

#ifndef DFI_STORAGE_FAULTABLE_ARRAY_HH
#define DFI_STORAGE_FAULTABLE_ARRAY_HH

#include <cstdint>
#include <string>

#include "storage/cow_buffer.hh"

namespace dfi
{

/** What happened first to a watched bit after fault injection. */
enum class WatchState : std::uint8_t
{
    Idle,        //!< no watch armed
    Armed,       //!< armed, no access seen yet
    ReadFirst,   //!< the faulted bit was read before being overwritten
    WrittenFirst //!< the faulted bit was overwritten before any read
};

/** Fixed-geometry array of raw bits with fault and watch hooks. */
class FaultableArray
{
  public:
    FaultableArray() = default;

    /**
     * Build an array.
     * @param name debugging name, e.g. "l1d.data"
     * @param entries number of rows
     * @param bits_per_entry bits in each row (may exceed 64)
     */
    FaultableArray(std::string name, std::size_t entries,
                   std::size_t bits_per_entry);

    const std::string &name() const { return name_; }
    std::size_t numEntries() const { return entries_; }
    std::size_t bitsPerEntry() const { return bitsPerEntry_; }
    /** Total bit count, the `N` of the statistical-sampling formula. */
    std::uint64_t totalBits() const
    {
        return static_cast<std::uint64_t>(entries_) * bitsPerEntry_;
    }

    /**
     * Read up to 64 bits starting at bit offset `bit` of row `entry`.
     * Counts as an access for watch purposes.
     */
    std::uint64_t readBits(std::size_t entry, std::size_t bit,
                           std::size_t width) const;

    /** Write up to 64 bits; counts as an overwrite of covered bits. */
    void writeBits(std::size_t entry, std::size_t bit, std::size_t width,
                   std::uint64_t value);

    /** Read a whole byte-aligned span of a row into `out`. */
    void readBytes(std::size_t entry, std::size_t byte_offset,
                   std::size_t count, std::uint8_t *out) const;

    /** Write a whole byte-aligned span of a row. */
    void writeBytes(std::size_t entry, std::size_t byte_offset,
                    std::size_t count, const std::uint8_t *in);

    /** Single-bit accessors (watch-visible). */
    bool readBit(std::size_t entry, std::size_t bit) const;
    void writeBit(std::size_t entry, std::size_t bit, bool value);

    /** Zero an entire row (counts as overwrite of all its bits). */
    void clearEntry(std::size_t entry);

    /**
     * Fault-application primitives.  These mutate backing bits without
     * touching the watch (the injection itself is not an "access").
     */
    void flipBit(std::size_t entry, std::size_t bit);
    void forceBit(std::size_t entry, std::size_t bit, bool value);
    bool peekBit(std::size_t entry, std::size_t bit) const;

    /** Arm the early-stop watch on one bit (replaces any previous). */
    void armWatch(std::size_t entry, std::size_t bit);
    /** Disarm the watch. */
    void clearWatch();
    /** Current watch verdict. */
    WatchState watchState() const { return watchState_; }

    /** Backing pages (checkpoint memory-budget accounting). */
    std::size_t backingPages() const { return words_.pageCount(); }
    /** Pages still shared with a checkpoint or sibling copy. */
    std::size_t sharedBackingPages() const
    {
        return words_.sharedPageCount();
    }
    /** Upper bound on materialised backing bytes. */
    std::uint64_t storageBytes() const
    {
        return static_cast<std::uint64_t>(words_.pageCount()) *
               WordBuffer::pageBytes();
    }

  private:
    void checkBounds(std::size_t entry, std::size_t bit,
                     std::size_t width) const;
    void noteRead(std::size_t entry, std::size_t bit,
                  std::size_t width) const;
    void noteWrite(std::size_t entry, std::size_t bit, std::size_t width);

    /** 4 KiB copy-on-write pages of backing words. */
    using WordBuffer = CowBuffer<std::uint64_t, 512>;

    std::string name_;
    std::size_t entries_ = 0;
    std::size_t bitsPerEntry_ = 0;
    std::size_t wordsPerEntry_ = 0;
    WordBuffer words_;

    std::size_t watchEntry_ = 0;
    std::size_t watchBit_ = 0;
    // Mutable: reads are logically const for callers but advance the
    // watch automaton.
    mutable WatchState watchState_ = WatchState::Idle;
};

} // namespace dfi

#endif // DFI_STORAGE_FAULTABLE_ARRAY_HH

/**
 * @file
 * Bit-accurate storage array with fault-injection and access-tracking
 * hooks.
 *
 * Every injectable microarchitectural structure (register files, cache
 * tag/data/valid arrays, queues, TLBs, BTBs, prefetcher state) is
 * backed by a FaultableArray of `entries x bitsPerEntry` real bits.
 * Faults are realized by mutating these bits — a transient flip, or a
 * stuck-at value reasserted each cycle by the FaultDomain — and then
 * propagate through the simulator only via ordinary reads of the
 * array.  No fault outcome is ever scripted.
 *
 * The array additionally supports a single *watch* on one bit, used by
 * the campaign controller's early-stop optimization (paper §III.B):
 * after injecting, the controller watches the faulted bit and stops
 * the run as soon as the first access is a full overwrite (fault
 * guaranteed masked) instead of a read.
 *
 * The class is value-semantic; simulator checkpointing copies it
 * wholesale.  The backing words live in a copy-on-write paged buffer
 * (storage/cow_buffer.hh), so a checkpoint copy shares every page
 * with its source until one side writes it — restores cost
 * O(touched pages), not O(array size).
 */

#ifndef DFI_STORAGE_FAULTABLE_ARRAY_HH
#define DFI_STORAGE_FAULTABLE_ARRAY_HH

#include <cstdint>
#include <string>

#include "storage/cow_buffer.hh"

namespace dfi
{

class FaultableArray;

/**
 * Observer of every watch-visible access to a FaultableArray.
 *
 * The prune pass (inject/prune.hh) attaches one observer per traced
 * structure during a single golden re-run and records the full access
 * trace; per-site classification then replays that trace analytically
 * instead of simulating each fault.  Unlike the single-bit watch the
 * observer sees *all* accesses, read and write, of every entry.
 *
 * Fault-application primitives (flipBit/forceBit/peekBit) stay
 * invisible, exactly as they are to the watch.
 */
class AccessObserver
{
  public:
    virtual ~AccessObserver() = default;
    /** One access of `width` bits starting at `bit` of row `entry`. */
    virtual void onAccess(const FaultableArray &array, std::size_t entry,
                          std::size_t bit, std::size_t width,
                          bool is_write) = 0;
};

/** What happened first to a watched bit after fault injection. */
enum class WatchState : std::uint8_t
{
    Idle,        //!< no watch armed
    Armed,       //!< armed, no access seen yet
    ReadFirst,   //!< the faulted bit was read before being overwritten
    WrittenFirst //!< the faulted bit was overwritten before any read
};

/** Fixed-geometry array of raw bits with fault and watch hooks. */
class FaultableArray
{
  public:
    FaultableArray() = default;

    /**
     * Build an array.
     * @param name debugging name, e.g. "l1d.data"
     * @param entries number of rows
     * @param bits_per_entry bits in each row (may exceed 64)
     */
    FaultableArray(std::string name, std::size_t entries,
                   std::size_t bits_per_entry);

    // The array is value-semantic (checkpoints copy it wholesale), but
    // an attached access observer is a property of the *live* array
    // being traced, not of the stored bits: copies (checkpoints,
    // snapshots) must not report accesses.  Copy everything except the
    // observer pointer; moves transfer it with the identity.
    FaultableArray(const FaultableArray &other)
        : name_(other.name_), entries_(other.entries_),
          bitsPerEntry_(other.bitsPerEntry_),
          wordsPerEntry_(other.wordsPerEntry_), words_(other.words_),
          watchEntry_(other.watchEntry_), watchBit_(other.watchBit_),
          watchState_(other.watchState_)
    {
    }
    FaultableArray &operator=(const FaultableArray &other)
    {
        if (this != &other) {
            name_ = other.name_;
            entries_ = other.entries_;
            bitsPerEntry_ = other.bitsPerEntry_;
            wordsPerEntry_ = other.wordsPerEntry_;
            words_ = other.words_;
            watchEntry_ = other.watchEntry_;
            watchBit_ = other.watchBit_;
            watchState_ = other.watchState_;
            observer_ = nullptr;
        }
        return *this;
    }
    FaultableArray(FaultableArray &&) = default;
    FaultableArray &operator=(FaultableArray &&) = default;

    const std::string &name() const { return name_; }
    std::size_t numEntries() const { return entries_; }
    std::size_t bitsPerEntry() const { return bitsPerEntry_; }
    /** Total bit count, the `N` of the statistical-sampling formula. */
    std::uint64_t totalBits() const
    {
        return static_cast<std::uint64_t>(entries_) * bitsPerEntry_;
    }

    /**
     * Read up to 64 bits starting at bit offset `bit` of row `entry`.
     * Counts as an access for watch purposes.
     */
    std::uint64_t readBits(std::size_t entry, std::size_t bit,
                           std::size_t width) const;

    /** Write up to 64 bits; counts as an overwrite of covered bits. */
    void writeBits(std::size_t entry, std::size_t bit, std::size_t width,
                   std::uint64_t value);

    /** Read a whole byte-aligned span of a row into `out`. */
    void readBytes(std::size_t entry, std::size_t byte_offset,
                   std::size_t count, std::uint8_t *out) const;

    /** Write a whole byte-aligned span of a row. */
    void writeBytes(std::size_t entry, std::size_t byte_offset,
                    std::size_t count, const std::uint8_t *in);

    /** Single-bit accessors (watch-visible). */
    bool readBit(std::size_t entry, std::size_t bit) const;
    void writeBit(std::size_t entry, std::size_t bit, bool value);

    /** Zero an entire row (counts as overwrite of all its bits). */
    void clearEntry(std::size_t entry);

    /**
     * Fault-application primitives.  These mutate backing bits without
     * touching the watch (the injection itself is not an "access").
     */
    void flipBit(std::size_t entry, std::size_t bit);
    void forceBit(std::size_t entry, std::size_t bit, bool value);
    bool peekBit(std::size_t entry, std::size_t bit) const;

    /** Arm the early-stop watch on one bit (replaces any previous). */
    void armWatch(std::size_t entry, std::size_t bit);
    /** Disarm the watch. */
    void clearWatch();
    /** Current watch verdict. */
    WatchState watchState() const { return watchState_; }

    /**
     * Attach (or detach with nullptr) a full access-trace observer.
     * Not owned; the caller keeps it alive while attached.
     */
    void setObserver(AccessObserver *observer) { observer_ = observer; }

    /**
     * Serialize dynamic state (backing words + watch automaton).
     * Geometry is construction-time data: loading verifies it against
     * the already-constructed array and fails the reader on mismatch.
     */
    template <class Ar> void serializeState(Ar &ar);

    /** Backing pages (checkpoint memory-budget accounting). */
    std::size_t backingPages() const { return words_.pageCount(); }
    /** Pages still shared with a checkpoint or sibling copy. */
    std::size_t sharedBackingPages() const
    {
        return words_.sharedPageCount();
    }
    /** Upper bound on materialised backing bytes. */
    std::uint64_t storageBytes() const
    {
        return static_cast<std::uint64_t>(words_.pageCount()) *
               WordBuffer::pageBytes();
    }

  private:
    void checkBounds(std::size_t entry, std::size_t bit,
                     std::size_t width) const;
    void noteRead(std::size_t entry, std::size_t bit,
                  std::size_t width) const;
    void noteWrite(std::size_t entry, std::size_t bit, std::size_t width);

    /** 4 KiB copy-on-write pages of backing words. */
    using WordBuffer = CowBuffer<std::uint64_t, 512>;

    std::string name_;
    std::size_t entries_ = 0;
    std::size_t bitsPerEntry_ = 0;
    std::size_t wordsPerEntry_ = 0;
    WordBuffer words_;

    std::size_t watchEntry_ = 0;
    std::size_t watchBit_ = 0;
    // Mutable: reads are logically const for callers but advance the
    // watch automaton (and notify the trace observer).
    mutable WatchState watchState_ = WatchState::Idle;
    mutable AccessObserver *observer_ = nullptr;
};

} // namespace dfi

#endif // DFI_STORAGE_FAULTABLE_ARRAY_HH

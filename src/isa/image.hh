/**
 * @file
 * Program image: the output of the assembler/linker and the input of
 * the loaders (interpreter and both simulators).
 */

#ifndef DFI_ISA_IMAGE_HH
#define DFI_ISA_IMAGE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/types.hh"
#include "syskit/memory.hh"

namespace dfi::isa
{

/** A fully linked guest program. */
struct Image
{
    IsaKind isa = IsaKind::X86;
    std::uint32_t codeBase = 0;  //!< base VA of the code segment
    std::uint32_t entry = 0;     //!< initial PC
    std::vector<std::uint8_t> code;
    std::uint32_t dataBase = 0;  //!< base VA of initialized data
    std::vector<std::uint8_t> data;
    std::uint32_t bssBase = 0;   //!< base VA of zero-initialized data
    std::uint32_t bssSize = 0;
    std::uint32_t memSize = 0;   //!< total guest memory size
    std::uint32_t stackTop = 0;  //!< initial SP
    std::map<std::string, std::uint32_t> symbols; //!< data symbols (VA)

    /** First address above the read-only code segment. */
    std::uint32_t codeLimit() const
    {
        return codeBase + static_cast<std::uint32_t>(code.size());
    }

    /** Address of a named data symbol; fatal() if unknown. */
    std::uint32_t symbol(const std::string &name) const;

    /** Build a guest memory with the image loaded. */
    syskit::GuestMemory makeMemory() const;

    /** Serialize all fields (cache spill). */
    template <class Ar> void serializeState(Ar &ar);
};

} // namespace dfi::isa

#endif // DFI_ISA_IMAGE_HH

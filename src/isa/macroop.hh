/**
 * @file
 * MacroOp: the unified decoded-instruction form.
 *
 * Both ISA decoders produce MacroOps; the functional interpreter and
 * both out-of-order pipeline models consume them.  A MacroOp carries
 * at most one primary register destination plus an optional implicit
 * SP destination (DX86 PUSH/POP/CALL/RET), at most two register
 * sources plus FLAGS for conditional branches, and at most one memory
 * access.
 */

#ifndef DFI_ISA_MACROOP_HH
#define DFI_ISA_MACROOP_HH

#include <cstdint>
#include <string>

#include "isa/types.hh"

namespace dfi::isa
{

/** Operation classes flowing through the machines. */
enum class OpKind : std::uint8_t
{
    Illegal, //!< undecodable bytes — raises IllegalInstruction
    Nop,
    Halt,    //!< privileged; illegal from user code
    AluRR,   //!< rd = rn <func> rm
    AluRI,   //!< rd = rn <func> imm
    LoadOp,  //!< DX86 only: rd = rd <func> mem[rn + disp]
    MovRR,   //!< rd = rm
    MovRI,   //!< rd = imm (DX86: imm32; DARM MOVW: imm16 zero-extended)
    MovTI,   //!< DARM MOVT: rd[31:16] = imm16
    Load,    //!< rd = zext(mem[rb + disp]) of width bytes
    Store,   //!< mem[rb + disp] = rs (width bytes)
    CmpRR,   //!< FLAGS = cmp(rn, rm)
    CmpRI,   //!< FLAGS = cmp(rn, imm)
    BrCond,  //!< if cond(FLAGS) pc += disp
    Jump,    //!< pc += disp
    JumpInd, //!< pc = rm
    Call,    //!< DX86: push pc+len, pc += disp; DARM: lr = pc+4, pc += disp
    CallInd, //!< indirect call through rm (same link semantics)
    Ret,     //!< DX86: pc = pop(); DARM: pc = lr
    Push,    //!< DX86 only: sp -= 4, mem[sp] = rs
    Pop,     //!< DX86 only: rd = mem[sp], sp += 4
    Syscall  //!< trap to the system layer
};

std::string opKindName(OpKind kind);

/** Memory access width in bytes (1, 2 or 4). */
enum class MemWidth : std::uint8_t
{
    Byte = 1,
    Half = 2,
    Word = 4
};

/** A decoded instruction. */
struct MacroOp
{
    OpKind kind = OpKind::Illegal;
    AluFunc func = AluFunc::Add;
    Cond cond = Cond::Eq;
    MemWidth width = MemWidth::Word;
    std::uint8_t rd = 0;  //!< destination register
    std::uint8_t rn = 0;  //!< first source / memory base
    std::uint8_t rm = 0;  //!< second source / store data source
    std::int32_t imm = 0; //!< immediate / displacement / branch offset
    std::uint8_t length = 0; //!< encoded length in bytes

    /** True if the op reads data memory (incl. Pop/Ret/LoadOp). */
    bool isMemRead() const;
    /** True if the op writes data memory (incl. Push, DX86 Call). */
    bool isMemWrite(IsaKind isa) const;
    /** True for any control-transfer op. */
    bool isControl() const;
    /** True if it may write the primary destination register rd. */
    bool writesRd() const;
    /** True if the op implicitly reads and writes SP (DX86 stack ops). */
    bool usesSpImplicitly() const;
    /** True if the op writes FLAGS. */
    bool writesFlags() const;
    /** True if the op reads FLAGS. */
    bool readsFlags() const;

    /** Disassemble for logs and tests. */
    std::string toString() const;

    /** Serialize all fields (cache spill). */
    template <class Ar> void serializeState(Ar &ar);
};

} // namespace dfi::isa

#endif // DFI_ISA_MACROOP_HH

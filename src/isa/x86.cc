#include "isa/x86.hh"

#include "common/logging.hh"

namespace dfi::isa
{

namespace
{

constexpr std::uint8_t kOpNop = 0x00;
constexpr std::uint8_t kOpRet = 0x01;
constexpr std::uint8_t kOpHlt = 0x02;
constexpr std::uint8_t kOpSyscall = 0x03;
constexpr std::uint8_t kOpAluRR = 0x10;
constexpr std::uint8_t kOpAluRI = 0x20;
constexpr std::uint8_t kOpAluRM = 0x30;
constexpr std::uint8_t kOpMovRR = 0x40;
constexpr std::uint8_t kOpMovRI = 0x41;
constexpr std::uint8_t kOpLoad32 = 0x42;
constexpr std::uint8_t kOpLoad16 = 0x43;
constexpr std::uint8_t kOpLoad8 = 0x44;
constexpr std::uint8_t kOpStore32 = 0x45;
constexpr std::uint8_t kOpStore16 = 0x46;
constexpr std::uint8_t kOpStore8 = 0x47;
constexpr std::uint8_t kOpPush = 0x48;
constexpr std::uint8_t kOpPop = 0x49;
constexpr std::uint8_t kOpCmpRR = 0x4A;
constexpr std::uint8_t kOpCmpRI = 0x4B;
constexpr std::uint8_t kOpAluRI8 = 0x60;
constexpr std::uint8_t kOpCmpRI8 = 0x6E;
constexpr std::uint8_t kOpMovRI8 = 0x6F;
constexpr std::uint8_t kOpJcc = 0x50;

bool
fitsImm8(std::int32_t imm)
{
    return imm >= -128 && imm <= 127;
}
constexpr std::uint8_t kOpJmp = 0x5A;
constexpr std::uint8_t kOpCall = 0x5B;
constexpr std::uint8_t kOpJmpInd = 0x5C;
constexpr std::uint8_t kOpCallInd = 0x5D;

void
put16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
put32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint16_t
get16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t
get32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

MemWidth
loadStoreWidth(std::uint8_t opcode, std::uint8_t base)
{
    switch (opcode - base) {
      case 0:
        return MemWidth::Word;
      case 1:
        return MemWidth::Half;
      default:
        return MemWidth::Byte;
    }
}

std::uint8_t
widthOffset(MemWidth w)
{
    switch (w) {
      case MemWidth::Word:
        return 0;
      case MemWidth::Half:
        return 1;
      case MemWidth::Byte:
        return 2;
    }
    panic("bad MemWidth");
}

} // namespace

std::size_t
x86Length(const MacroOp &op)
{
    switch (op.kind) {
      case OpKind::Nop:
      case OpKind::Ret:
      case OpKind::Halt:
      case OpKind::Syscall:
        return 1;
      case OpKind::AluRR:
      case OpKind::MovRR:
      case OpKind::Push:
      case OpKind::Pop:
      case OpKind::CmpRR:
      case OpKind::JumpInd:
      case OpKind::CallInd:
        return 2;
      case OpKind::BrCond:
      case OpKind::Jump:
      case OpKind::Call:
        return 3;
      case OpKind::AluRI:
      case OpKind::MovRI:
      case OpKind::CmpRI:
        // Short sign-extended imm8 forms, as on real x86.
        return fitsImm8(op.imm) ? 3 : 6;
      case OpKind::LoadOp:
      case OpKind::Load:
      case OpKind::Store:
        return 4;
      case OpKind::MovTI:
        panic("MOVT is not a DX86 instruction");
      case OpKind::Illegal:
        return 1;
    }
    panic("x86Length: bad OpKind %s", static_cast<int>(op.kind));
}

void
x86Encode(const MacroOp &op, std::vector<std::uint8_t> &out)
{
    auto regs = [](std::uint8_t hi, std::uint8_t lo) {
        return static_cast<std::uint8_t>((hi & 0xf) << 4 | (lo & 0xf));
    };
    switch (op.kind) {
      case OpKind::Nop:
        out.push_back(kOpNop);
        break;
      case OpKind::Ret:
        out.push_back(kOpRet);
        break;
      case OpKind::Halt:
        out.push_back(kOpHlt);
        break;
      case OpKind::Syscall:
        out.push_back(kOpSyscall);
        break;
      case OpKind::AluRR:
        if (op.rd != op.rn)
            panic("DX86 ALU rr must be two-operand (rd == rn)");
        out.push_back(kOpAluRR + static_cast<std::uint8_t>(op.func));
        out.push_back(regs(op.rd, op.rm));
        break;
      case OpKind::AluRI:
        if (op.rd != op.rn)
            panic("DX86 ALU ri must be two-operand (rd == rn)");
        if (fitsImm8(op.imm)) {
            out.push_back(kOpAluRI8 +
                          static_cast<std::uint8_t>(op.func));
            out.push_back(regs(op.rd, 0));
            out.push_back(static_cast<std::uint8_t>(op.imm));
        } else {
            out.push_back(kOpAluRI +
                          static_cast<std::uint8_t>(op.func));
            out.push_back(regs(op.rd, 0));
            put32(out, static_cast<std::uint32_t>(op.imm));
        }
        break;
      case OpKind::LoadOp:
        out.push_back(kOpAluRM + static_cast<std::uint8_t>(op.func));
        out.push_back(regs(op.rd, op.rn));
        put16(out, static_cast<std::uint16_t>(op.imm));
        break;
      case OpKind::MovRR:
        out.push_back(kOpMovRR);
        out.push_back(regs(op.rd, op.rm));
        break;
      case OpKind::MovRI:
        if (fitsImm8(op.imm)) {
            out.push_back(kOpMovRI8);
            out.push_back(regs(op.rd, 0));
            out.push_back(static_cast<std::uint8_t>(op.imm));
        } else {
            out.push_back(kOpMovRI);
            out.push_back(regs(op.rd, 0));
            put32(out, static_cast<std::uint32_t>(op.imm));
        }
        break;
      case OpKind::Load:
        out.push_back(kOpLoad32 + widthOffset(op.width));
        out.push_back(regs(op.rd, op.rn));
        put16(out, static_cast<std::uint16_t>(op.imm));
        break;
      case OpKind::Store:
        out.push_back(kOpStore32 + widthOffset(op.width));
        out.push_back(regs(op.rm, op.rn));
        put16(out, static_cast<std::uint16_t>(op.imm));
        break;
      case OpKind::Push:
        out.push_back(kOpPush);
        out.push_back(regs(op.rm, 0));
        break;
      case OpKind::Pop:
        out.push_back(kOpPop);
        out.push_back(regs(op.rd, 0));
        break;
      case OpKind::CmpRR:
        out.push_back(kOpCmpRR);
        out.push_back(regs(op.rn, op.rm));
        break;
      case OpKind::CmpRI:
        if (fitsImm8(op.imm)) {
            out.push_back(kOpCmpRI8);
            out.push_back(regs(op.rn, 0));
            out.push_back(static_cast<std::uint8_t>(op.imm));
        } else {
            out.push_back(kOpCmpRI);
            out.push_back(regs(op.rn, 0));
            put32(out, static_cast<std::uint32_t>(op.imm));
        }
        break;
      case OpKind::BrCond:
        out.push_back(kOpJcc + static_cast<std::uint8_t>(op.cond));
        put16(out, static_cast<std::uint16_t>(op.imm));
        break;
      case OpKind::Jump:
        out.push_back(kOpJmp);
        put16(out, static_cast<std::uint16_t>(op.imm));
        break;
      case OpKind::Call:
        out.push_back(kOpCall);
        put16(out, static_cast<std::uint16_t>(op.imm));
        break;
      case OpKind::JumpInd:
        out.push_back(kOpJmpInd);
        out.push_back(regs(op.rm, 0));
        break;
      case OpKind::CallInd:
        out.push_back(kOpCallInd);
        out.push_back(regs(op.rm, 0));
        break;
      default:
        panic("x86Encode: cannot encode %s", opKindName(op.kind));
    }
}

MacroOp
x86Decode(const std::uint8_t *bytes, std::size_t avail)
{
    MacroOp op;
    op.kind = OpKind::Illegal;
    op.length = 1;
    if (avail == 0) {
        op.length = 0;
        return op;
    }

    const std::uint8_t opc = bytes[0];

    auto need = [&](std::size_t n) {
        if (avail < n)
            return false;
        op.length = static_cast<std::uint8_t>(n);
        return true;
    };
    auto hi = [&](std::size_t i) {
        return static_cast<std::uint8_t>(bytes[i] >> 4);
    };
    auto lo = [&](std::size_t i) {
        return static_cast<std::uint8_t>(bytes[i] & 0xf);
    };

    switch (opc) {
      case kOpNop:
        op.kind = OpKind::Nop;
        return op;
      case kOpRet:
        op.kind = OpKind::Ret;
        return op;
      case kOpHlt:
        op.kind = OpKind::Halt;
        return op;
      case kOpSyscall:
        op.kind = OpKind::Syscall;
        return op;
      default:
        break;
    }

    if (opc >= kOpAluRR && opc < kOpAluRR + kNumAluFuncs) {
        if (!need(2))
            return op;
        op.kind = OpKind::AluRR;
        op.func = static_cast<AluFunc>(opc - kOpAluRR);
        op.rd = op.rn = hi(1);
        op.rm = lo(1);
        return op;
    }
    if (opc >= kOpAluRI && opc < kOpAluRI + kNumAluFuncs) {
        if (!need(6))
            return op;
        op.kind = OpKind::AluRI;
        op.func = static_cast<AluFunc>(opc - kOpAluRI);
        op.rd = op.rn = hi(1);
        op.imm = static_cast<std::int32_t>(get32(bytes + 2));
        return op;
    }
    if (opc >= kOpAluRM && opc < kOpAluRM + kNumAluFuncs) {
        if (!need(4))
            return op;
        op.kind = OpKind::LoadOp;
        op.func = static_cast<AluFunc>(opc - kOpAluRM);
        op.rd = hi(1);
        op.rn = lo(1);
        op.imm = static_cast<std::int16_t>(get16(bytes + 2));
        return op;
    }
    if (opc >= kOpAluRI8 && opc < kOpAluRI8 + kNumAluFuncs) {
        if (!need(3))
            return op;
        op.kind = OpKind::AluRI;
        op.func = static_cast<AluFunc>(opc - kOpAluRI8);
        op.rd = op.rn = hi(1);
        op.imm = static_cast<std::int8_t>(bytes[2]);
        return op;
    }
    if (opc == kOpCmpRI8) {
        if (!need(3))
            return op;
        op.kind = OpKind::CmpRI;
        op.rn = hi(1);
        op.imm = static_cast<std::int8_t>(bytes[2]);
        return op;
    }
    if (opc == kOpMovRI8) {
        if (!need(3))
            return op;
        op.kind = OpKind::MovRI;
        op.rd = hi(1);
        op.imm = static_cast<std::int8_t>(bytes[2]);
        return op;
    }
    if (opc >= kOpJcc && opc < kOpJcc + kNumConds) {
        if (!need(3))
            return op;
        op.kind = OpKind::BrCond;
        op.cond = static_cast<Cond>(opc - kOpJcc);
        op.imm = static_cast<std::int16_t>(get16(bytes + 1));
        return op;
    }

    switch (opc) {
      case kOpMovRR:
        if (!need(2))
            return op;
        op.kind = OpKind::MovRR;
        op.rd = hi(1);
        op.rm = lo(1);
        return op;
      case kOpMovRI:
        if (!need(6))
            return op;
        op.kind = OpKind::MovRI;
        op.rd = hi(1);
        op.imm = static_cast<std::int32_t>(get32(bytes + 2));
        return op;
      case kOpLoad32:
      case kOpLoad16:
      case kOpLoad8:
        if (!need(4))
            return op;
        op.kind = OpKind::Load;
        op.width = loadStoreWidth(opc, kOpLoad32);
        op.rd = hi(1);
        op.rn = lo(1);
        op.imm = static_cast<std::int16_t>(get16(bytes + 2));
        return op;
      case kOpStore32:
      case kOpStore16:
      case kOpStore8:
        if (!need(4))
            return op;
        op.kind = OpKind::Store;
        op.width = loadStoreWidth(opc, kOpStore32);
        op.rm = hi(1);
        op.rn = lo(1);
        op.imm = static_cast<std::int16_t>(get16(bytes + 2));
        return op;
      case kOpPush:
        if (!need(2))
            return op;
        op.kind = OpKind::Push;
        op.rm = hi(1);
        return op;
      case kOpPop:
        if (!need(2))
            return op;
        op.kind = OpKind::Pop;
        op.rd = hi(1);
        return op;
      case kOpCmpRR:
        if (!need(2))
            return op;
        op.kind = OpKind::CmpRR;
        op.rn = hi(1);
        op.rm = lo(1);
        return op;
      case kOpCmpRI:
        if (!need(6))
            return op;
        op.kind = OpKind::CmpRI;
        op.rn = hi(1);
        op.imm = static_cast<std::int32_t>(get32(bytes + 2));
        return op;
      case kOpJmp:
        if (!need(3))
            return op;
        op.kind = OpKind::Jump;
        op.imm = static_cast<std::int16_t>(get16(bytes + 1));
        return op;
      case kOpCall:
        if (!need(3))
            return op;
        op.kind = OpKind::Call;
        op.imm = static_cast<std::int16_t>(get16(bytes + 1));
        return op;
      case kOpJmpInd:
        if (!need(2))
            return op;
        op.kind = OpKind::JumpInd;
        op.rm = hi(1);
        return op;
      case kOpCallInd:
        if (!need(2))
            return op;
        op.kind = OpKind::CallInd;
        op.rm = hi(1);
        return op;
      default:
        return op; // Illegal, length 1
    }
}

} // namespace dfi::isa

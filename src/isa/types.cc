#include "isa/types.hh"

#include "common/logging.hh"

namespace dfi::isa
{

std::string
isaName(IsaKind kind)
{
    return kind == IsaKind::X86 ? "x86" : "arm";
}

std::uint32_t
Flags::pack() const
{
    return (z ? 1u : 0u) | (s ? 2u : 0u) | (c ? 4u : 0u) | (o ? 8u : 0u);
}

Flags
Flags::unpack(std::uint32_t bits)
{
    Flags f;
    f.z = bits & 1;
    f.s = bits & 2;
    f.c = bits & 4;
    f.o = bits & 8;
    return f;
}

std::string
condName(Cond cond)
{
    static const char *names[] = {"eq", "ne", "ult", "ule", "ugt",
                                  "uge", "slt", "sle", "sgt", "sge"};
    const auto i = static_cast<std::size_t>(cond);
    if (i >= kNumConds)
        panic("condName: bad Cond %s", i);
    return names[i];
}

std::string
aluFuncName(AluFunc func)
{
    static const char *names[] = {"add",  "sub",  "and",  "or",  "xor",
                                  "shl",  "shru", "shrs", "mul", "divu",
                                  "divs", "remu", "rems"};
    const auto i = static_cast<std::size_t>(func);
    if (i >= kNumAluFuncs)
        panic("aluFuncName: bad AluFunc %s", i);
    return names[i];
}

AluResult
evalAlu(AluFunc func, std::uint32_t a, std::uint32_t b)
{
    AluResult r;
    switch (func) {
      case AluFunc::Add:
        r.value = a + b;
        break;
      case AluFunc::Sub:
        r.value = a - b;
        break;
      case AluFunc::And:
        r.value = a & b;
        break;
      case AluFunc::Or:
        r.value = a | b;
        break;
      case AluFunc::Xor:
        r.value = a ^ b;
        break;
      case AluFunc::Shl:
        r.value = a << (b & 31);
        break;
      case AluFunc::ShrU:
        r.value = a >> (b & 31);
        break;
      case AluFunc::ShrS:
        r.value = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(a) >> (b & 31));
        break;
      case AluFunc::Mul:
        r.value = a * b;
        break;
      case AluFunc::DivU:
        if (b == 0) {
            r.divByZero = true;
            r.value = 0;
        } else {
            r.value = a / b;
        }
        break;
      case AluFunc::DivS:
        if (b == 0) {
            r.divByZero = true;
            r.value = 0;
        } else if (a == 0x80000000u && b == 0xffffffffu) {
            r.value = 0x80000000u; // INT_MIN / -1 wraps, no trap
        } else {
            r.value = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(a) /
                static_cast<std::int32_t>(b));
        }
        break;
      case AluFunc::RemU:
        if (b == 0) {
            r.divByZero = true;
            r.value = 0;
        } else {
            r.value = a % b;
        }
        break;
      case AluFunc::RemS:
        if (b == 0) {
            r.divByZero = true;
            r.value = 0;
        } else if (a == 0x80000000u && b == 0xffffffffu) {
            r.value = 0;
        } else {
            r.value = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(a) %
                static_cast<std::int32_t>(b));
        }
        break;
    }
    return r;
}

Flags
evalCmp(std::uint32_t a, std::uint32_t b)
{
    Flags f;
    const std::uint32_t diff = a - b;
    f.z = diff == 0;
    f.s = (diff >> 31) & 1;
    f.c = a < b; // borrow
    const bool sa = (a >> 31) & 1;
    const bool sb = (b >> 31) & 1;
    const bool sd = (diff >> 31) & 1;
    f.o = (sa != sb) && (sd != sa);
    return f;
}

bool
evalCond(Cond cond, const Flags &f)
{
    switch (cond) {
      case Cond::Eq:
        return f.z;
      case Cond::Ne:
        return !f.z;
      case Cond::Ult:
        return f.c;
      case Cond::Ule:
        return f.c || f.z;
      case Cond::Ugt:
        return !f.c && !f.z;
      case Cond::Uge:
        return !f.c;
      case Cond::Slt:
        return f.s != f.o;
      case Cond::Sle:
        return f.z || (f.s != f.o);
      case Cond::Sgt:
        return !f.z && (f.s == f.o);
      case Cond::Sge:
        return f.s == f.o;
    }
    panic("evalCond: bad Cond %s", static_cast<int>(cond));
}

} // namespace dfi::isa

/**
 * @file
 * Shared ISA-level types: registers, flags, conditions, ALU functions
 * and their pure-functional semantics.
 *
 * The repository defines two synthetic ISAs modelled after the paper's
 * targets:
 *  - DX86: x86-flavoured — variable-length encoding, two-operand
 *    destructive ALU ops, ALU ops with a folded memory operand,
 *    PUSH/POP and stack-based CALL/RET.
 *  - DARM: ARM-flavoured — fixed 4-byte encoding, three-operand ALU
 *    ops, strict load/store architecture, link-register calls,
 *    MOVW/MOVT immediate materialization.
 *
 * Both are 32-bit, little-endian, with 16 GPRs plus an architectural
 * FLAGS register (renamed like a GPR by the out-of-order models).
 * Deviation from real x86 (documented in DESIGN.md): ALU operations do
 * not set FLAGS; only CMP does, as on our DARM.  This keeps every
 * instruction single-destination (plus an optional implicit SP
 * destination) without changing the memory behaviour the paper's
 * analysis depends on.
 */

#ifndef DFI_ISA_TYPES_HH
#define DFI_ISA_TYPES_HH

#include <cstdint>
#include <string>

namespace dfi::isa
{

/** Which of the two synthetic ISAs an image/simulator speaks. */
enum class IsaKind : std::uint8_t
{
    X86, //!< DX86, variable length CISC-flavoured
    Arm  //!< DARM, fixed length RISC-flavoured
};

std::string isaName(IsaKind kind);

/** Architectural register indices. */
enum : std::uint8_t
{
    kNumGprs = 16,
    kRegSp = 15,    //!< stack pointer (both ISAs)
    kRegLr = 14,    //!< DARM link register (plain GPR on DX86)
    kRegFlags = 16, //!< architectural FLAGS pseudo-register
    kNumArchRegs = 17
};

/** Condition-code flags produced by CMP. */
struct Flags
{
    bool z = false; //!< zero
    bool s = false; //!< sign
    bool c = false; //!< carry (unsigned borrow on compare)
    bool o = false; //!< signed overflow

    /** Pack into 4 bits (bit0=z, 1=s, 2=c, 3=o). */
    std::uint32_t pack() const;
    static Flags unpack(std::uint32_t bits);
    bool operator==(const Flags &other) const = default;
};

/** Branch conditions (shared by both ISAs). */
enum class Cond : std::uint8_t
{
    Eq,  //!< equal (z)
    Ne,  //!< not equal
    Ult, //!< unsigned <
    Ule, //!< unsigned <=
    Ugt, //!< unsigned >
    Uge, //!< unsigned >=
    Slt, //!< signed <
    Sle, //!< signed <=
    Sgt, //!< signed >
    Sge  //!< signed >=
};

constexpr int kNumConds = 10;

std::string condName(Cond cond);

/** ALU operations (shared by IR, both ISAs and the pipelines). */
enum class AluFunc : std::uint8_t
{
    Add,
    Sub,
    And,
    Or,
    Xor,
    Shl,
    ShrU,
    ShrS,
    Mul,
    DivU,
    DivS,
    RemU,
    RemS
};

constexpr int kNumAluFuncs = 13;

std::string aluFuncName(AluFunc func);

/** Result of an ALU evaluation. */
struct AluResult
{
    std::uint32_t value = 0;
    bool divByZero = false; //!< raised a divide-by-zero trap
};

/**
 * Evaluate an ALU function on two 32-bit operands.  Shift amounts are
 * taken modulo 32.  Division by zero reports a trap and produces 0.
 */
AluResult evalAlu(AluFunc func, std::uint32_t a, std::uint32_t b);

/** Flags produced by comparing a against b (a - b). */
Flags evalCmp(std::uint32_t a, std::uint32_t b);

/** Evaluate a condition against flags. */
bool evalCond(Cond cond, const Flags &flags);

} // namespace dfi::isa

#endif // DFI_ISA_TYPES_HH

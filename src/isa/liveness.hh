/**
 * @file
 * Per-function liveness analysis and live intervals for the linear
 * scan register allocator.
 */

#ifndef DFI_ISA_LIVENESS_HH
#define DFI_ISA_LIVENESS_HH

#include <cstdint>
#include <vector>

#include "isa/ir.hh"

namespace dfi::ir
{

/** Conservative (hole-free) live interval of one vreg. */
struct LiveInterval
{
    VReg vreg = kNoVReg;
    int start = -1;     //!< first position (global inst index)
    int end = -1;       //!< last position
    bool crossesCall = false;
    int useCount = 0;   //!< number of reads

    bool
    empty() const
    {
        return start < 0;
    }
};

/** Liveness + interval summary for one function. */
struct LivenessInfo
{
    /** Positions: global index of the first inst of each block. */
    std::vector<int> blockStart;
    /** live-in / live-out vreg bitsets per block. */
    std::vector<std::vector<bool>> liveIn, liveOut;
    /** One interval per vreg (may be empty for dead vregs). */
    std::vector<LiveInterval> intervals;
    /** Global positions of call instructions. */
    std::vector<int> callPositions;
};

/** Vregs read by an instruction (excludes dst). */
void instUses(const Inst &inst, std::vector<VReg> &out);

/** Vreg written by an instruction, or kNoVReg. */
VReg instDef(const Inst &inst);

/** Compute liveness and intervals for a function. */
LivenessInfo computeLiveness(const Function &func);

} // namespace dfi::ir

#endif // DFI_ISA_LIVENESS_HH

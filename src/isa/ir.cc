#include "isa/ir.hh"

#include "common/logging.hh"

namespace dfi::ir
{

int
Module::findFunc(const std::string &name) const
{
    for (std::size_t i = 0; i < funcs.size(); ++i) {
        if (funcs[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

void
Module::verify() const
{
    for (const Function &f : funcs) {
        if (f.blocks.empty())
            fatal("ir: function '%s' has no blocks", f.name);
        if (f.numParams > 4)
            fatal("ir: function '%s' has more than 4 params", f.name);
        auto check_vreg = [&](VReg v, const char *what) {
            if (v == kNoVReg || v >= f.numVRegs)
                fatal("ir: function '%s': bad %s vreg", f.name, what);
        };
        for (std::size_t bi = 0; bi < f.blocks.size(); ++bi) {
            const Block &block = f.blocks[bi];
            if (block.insts.empty())
                fatal("ir: function '%s' block %s is empty", f.name, bi);
            for (std::size_t ii = 0; ii < block.insts.size(); ++ii) {
                const Inst &inst = block.insts[ii];
                const bool last = ii + 1 == block.insts.size();
                if (inst.isTerminator() != last) {
                    fatal("ir: function '%s' block %s: terminator "
                          "placement at inst %s",
                          f.name, bi, ii);
                }
                auto check_target = [&](int t) {
                    if (t < 0 ||
                        t >= static_cast<int>(f.blocks.size()))
                        fatal("ir: function '%s': bad branch target",
                              f.name);
                };
                switch (inst.op) {
                  case IrOp::Bin:
                    check_vreg(inst.dst, "dst");
                    check_vreg(inst.a, "a");
                    check_vreg(inst.b, "b");
                    break;
                  case IrOp::BinImm:
                  case IrOp::Mov:
                    check_vreg(inst.dst, "dst");
                    check_vreg(inst.a, "a");
                    break;
                  case IrOp::MovImm:
                    check_vreg(inst.dst, "dst");
                    break;
                  case IrOp::GlobalAddr:
                    check_vreg(inst.dst, "dst");
                    if (inst.sym < 0 ||
                        inst.sym >= static_cast<int>(globals.size()))
                        fatal("ir: function '%s': bad global index",
                              f.name);
                    break;
                  case IrOp::Load:
                    check_vreg(inst.dst, "dst");
                    check_vreg(inst.a, "base");
                    break;
                  case IrOp::Store:
                    check_vreg(inst.a, "base");
                    check_vreg(inst.b, "value");
                    break;
                  case IrOp::Br:
                    check_target(inst.target0);
                    break;
                  case IrOp::CondBr:
                    check_vreg(inst.a, "a");
                    check_vreg(inst.b, "b");
                    check_target(inst.target0);
                    check_target(inst.target1);
                    break;
                  case IrOp::CondBrImm:
                    check_vreg(inst.a, "a");
                    check_target(inst.target0);
                    check_target(inst.target1);
                    break;
                  case IrOp::Call: {
                    if (inst.callee < 0 ||
                        inst.callee >= static_cast<int>(funcs.size()))
                        fatal("ir: function '%s': bad callee", f.name);
                    if (inst.args.size() > 4)
                        fatal("ir: function '%s': too many call args",
                              f.name);
                    const auto &callee = funcs[inst.callee];
                    if (static_cast<int>(inst.args.size()) !=
                        callee.numParams)
                        fatal("ir: call to '%s' with %s args, wants %s",
                              callee.name, inst.args.size(),
                              callee.numParams);
                    for (VReg arg : inst.args)
                        check_vreg(arg, "arg");
                    if (inst.dst != kNoVReg)
                        check_vreg(inst.dst, "dst");
                    break;
                  }
                  case IrOp::Ret:
                    if (inst.a != kNoVReg)
                        check_vreg(inst.a, "ret value");
                    break;
                  case IrOp::Syscall:
                    check_vreg(inst.dst, "dst");
                    check_vreg(inst.a, "a");
                    check_vreg(inst.b, "b");
                    break;
                }
            }
        }
    }
}

FunctionBuilder::FunctionBuilder(Module &module, std::string name,
                                 int num_params)
    : module_(module)
{
    func_.name = std::move(name);
    func_.numParams = num_params;
    func_.numVRegs = static_cast<VReg>(num_params);
    func_.blocks.emplace_back();
}

VReg
FunctionBuilder::param(int i) const
{
    if (i < 0 || i >= func_.numParams)
        panic("ir: function '%s' has no param %s", func_.name, i);
    return static_cast<VReg>(i);
}

VReg
FunctionBuilder::fresh()
{
    return func_.numVRegs++;
}

int
FunctionBuilder::newBlock()
{
    func_.blocks.emplace_back();
    return static_cast<int>(func_.blocks.size()) - 1;
}

void
FunctionBuilder::setBlock(int block)
{
    if (block < 0 || block >= static_cast<int>(func_.blocks.size()))
        panic("ir: setBlock out of range in '%s'", func_.name);
    current_ = block;
    terminated_ = !func_.blocks[block].insts.empty() &&
                  func_.blocks[block].insts.back().isTerminator();
}

void
FunctionBuilder::append(Inst inst)
{
    if (terminated_)
        panic("ir: appending to terminated block in '%s'", func_.name);
    terminated_ = inst.isTerminator();
    func_.blocks[current_].insts.push_back(std::move(inst));
}

VReg
FunctionBuilder::bin(isa::AluFunc func, VReg a, VReg b)
{
    Inst inst;
    inst.op = IrOp::Bin;
    inst.func = func;
    inst.dst = fresh();
    inst.a = a;
    inst.b = b;
    append(inst);
    return inst.dst;
}

VReg
FunctionBuilder::binImm(isa::AluFunc func, VReg a, std::int32_t imm)
{
    Inst inst;
    inst.op = IrOp::BinImm;
    inst.func = func;
    inst.dst = fresh();
    inst.a = a;
    inst.imm = imm;
    append(inst);
    return inst.dst;
}

VReg
FunctionBuilder::mov(VReg a)
{
    Inst inst;
    inst.op = IrOp::Mov;
    inst.dst = fresh();
    inst.a = a;
    append(inst);
    return inst.dst;
}

VReg
FunctionBuilder::movImm(std::int32_t imm)
{
    Inst inst;
    inst.op = IrOp::MovImm;
    inst.dst = fresh();
    inst.imm = imm;
    append(inst);
    return inst.dst;
}

void
FunctionBuilder::binTo(VReg dst, isa::AluFunc func, VReg a, VReg b)
{
    Inst inst;
    inst.op = IrOp::Bin;
    inst.func = func;
    inst.dst = dst;
    inst.a = a;
    inst.b = b;
    append(inst);
}

void
FunctionBuilder::binImmTo(VReg dst, isa::AluFunc func, VReg a,
                          std::int32_t imm)
{
    Inst inst;
    inst.op = IrOp::BinImm;
    inst.func = func;
    inst.dst = dst;
    inst.a = a;
    inst.imm = imm;
    append(inst);
}

void
FunctionBuilder::movTo(VReg dst, VReg a)
{
    Inst inst;
    inst.op = IrOp::Mov;
    inst.dst = dst;
    inst.a = a;
    append(inst);
}

void
FunctionBuilder::movImmTo(VReg dst, std::int32_t imm)
{
    Inst inst;
    inst.op = IrOp::MovImm;
    inst.dst = dst;
    inst.imm = imm;
    append(inst);
}

void
FunctionBuilder::loadTo(VReg dst, VReg base, std::int32_t disp,
                        isa::MemWidth width)
{
    Inst inst;
    inst.op = IrOp::Load;
    inst.dst = dst;
    inst.a = base;
    inst.imm = disp;
    inst.width = width;
    append(inst);
}

VReg
FunctionBuilder::globalAddr(int sym)
{
    Inst inst;
    inst.op = IrOp::GlobalAddr;
    inst.dst = fresh();
    inst.sym = sym;
    append(inst);
    return inst.dst;
}

VReg
FunctionBuilder::load(VReg base, std::int32_t disp, isa::MemWidth width)
{
    Inst inst;
    inst.op = IrOp::Load;
    inst.dst = fresh();
    inst.a = base;
    inst.imm = disp;
    inst.width = width;
    append(inst);
    return inst.dst;
}

void
FunctionBuilder::store(VReg value, VReg base, std::int32_t disp,
                       isa::MemWidth width)
{
    Inst inst;
    inst.op = IrOp::Store;
    inst.a = base;
    inst.b = value;
    inst.imm = disp;
    inst.width = width;
    append(inst);
}

void
FunctionBuilder::br(int target)
{
    Inst inst;
    inst.op = IrOp::Br;
    inst.target0 = target;
    append(inst);
}

void
FunctionBuilder::condBr(isa::Cond cond, VReg a, VReg b, int then_block,
                        int else_block)
{
    Inst inst;
    inst.op = IrOp::CondBr;
    inst.cond = cond;
    inst.a = a;
    inst.b = b;
    inst.target0 = then_block;
    inst.target1 = else_block;
    append(inst);
}

void
FunctionBuilder::condBrImm(isa::Cond cond, VReg a, std::int32_t imm,
                           int then_block, int else_block)
{
    Inst inst;
    inst.op = IrOp::CondBrImm;
    inst.cond = cond;
    inst.a = a;
    inst.imm = imm;
    inst.target0 = then_block;
    inst.target1 = else_block;
    append(inst);
}

VReg
FunctionBuilder::call(int callee, std::vector<VReg> args)
{
    Inst inst;
    inst.op = IrOp::Call;
    inst.callee = callee;
    inst.args = std::move(args);
    inst.dst = fresh();
    append(inst);
    return inst.dst;
}

void
FunctionBuilder::callVoid(int callee, std::vector<VReg> args)
{
    Inst inst;
    inst.op = IrOp::Call;
    inst.callee = callee;
    inst.args = std::move(args);
    inst.dst = kNoVReg;
    append(inst);
}

void
FunctionBuilder::ret(VReg value)
{
    Inst inst;
    inst.op = IrOp::Ret;
    inst.a = value;
    append(inst);
}

VReg
FunctionBuilder::syscall(std::int32_t num, VReg a, VReg b)
{
    Inst inst;
    inst.op = IrOp::Syscall;
    inst.imm = num;
    inst.a = a;
    inst.b = b;
    inst.dst = fresh();
    append(inst);
    return inst.dst;
}

int
ModuleBuilder::addGlobal(const std::string &name,
                         std::vector<std::uint8_t> bytes,
                         std::uint32_t align)
{
    Global g;
    g.name = name;
    g.bytes = std::move(bytes);
    g.align = align;
    module_.globals.push_back(std::move(g));
    return static_cast<int>(module_.globals.size()) - 1;
}

int
ModuleBuilder::addBss(const std::string &name, std::uint32_t size,
                      std::uint32_t align)
{
    Global g;
    g.name = name;
    g.bssSize = size;
    g.align = align;
    module_.globals.push_back(std::move(g));
    return static_cast<int>(module_.globals.size()) - 1;
}

int
ModuleBuilder::declareFunction(const std::string &name, int num_params)
{
    if (module_.findFunc(name) >= 0)
        panic("ir: duplicate function '%s'", name);
    Function f;
    f.name = name;
    f.numParams = num_params;
    module_.funcs.push_back(std::move(f));
    return static_cast<int>(module_.funcs.size()) - 1;
}

FunctionBuilder
ModuleBuilder::beginFunction(int func_index)
{
    const Function &f = module_.funcs.at(func_index);
    return FunctionBuilder(module_, f.name, f.numParams);
}

FunctionBuilder
ModuleBuilder::beginFunction(const std::string &name, int num_params)
{
    declareFunction(name, num_params);
    return FunctionBuilder(module_, name, num_params);
}

void
ModuleBuilder::endFunction(FunctionBuilder &builder)
{
    Function &body = builder.function();
    const int index = module_.findFunc(body.name);
    if (index < 0)
        panic("ir: endFunction for unknown '%s'", body.name);
    module_.funcs[index] = std::move(body);
}

Module
ModuleBuilder::take()
{
    module_.verify();
    return std::move(module_);
}

} // namespace dfi::ir

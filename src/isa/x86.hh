/**
 * @file
 * DX86 instruction encoding and decoding.
 *
 * DX86 is the x86-flavoured synthetic ISA: little-endian, variable
 * instruction length (1 to 6 bytes), two-operand destructive ALU ops,
 * ALU ops with a folded memory operand (load-op), PUSH/POP, and
 * CALL/RET that push/pop the return address through the stack.
 *
 * Encoding map (first byte):
 *   0x00 NOP   0x01 RET   0x02 HLT   0x03 SYSCALL            (1 byte)
 *   0x10+f  ALU rr    [op][rd<<4|rm]                          (2 bytes)
 *   0x20+f  ALU ri    [op][rd<<4]   imm32                     (6 bytes)
 *   0x30+f  ALU rm    [op][rd<<4|rb] disp16                   (4 bytes)
 *   0x40 MOV rr (2)   0x41 MOV ri (6)
 *   0x42/43/44 LOAD32/16/8   [op][rd<<4|rb] disp16            (4 bytes)
 *   0x45/46/47 STORE32/16/8  [op][rs<<4|rb] disp16            (4 bytes)
 *   0x48 PUSH r (2)   0x49 POP r (2)
 *   0x4A CMP rr (2)   0x4B CMP ri (6)
 *   0x50+cc Jcc rel16 (3)
 *   0x5A JMP rel16 (3)  0x5B CALL rel16 (3)
 *   0x5C JMP r (2)      0x5D CALL r (2)
 * Any other first byte decodes to an Illegal op of length 1 — which is
 * exactly what makes I-cache bit flips re-frame the instruction stream
 * like they do on real x86.
 *
 * Branch displacements are relative to the address of the *next*
 * instruction.
 */

#ifndef DFI_ISA_X86_HH
#define DFI_ISA_X86_HH

#include <cstdint>
#include <vector>

#include "isa/macroop.hh"

namespace dfi::isa
{

/** Encoded length of `op` in bytes (fixed per format). */
std::size_t x86Length(const MacroOp &op);

/** Append the encoding of `op` to `out`.  panic()s on unencodable ops. */
void x86Encode(const MacroOp &op, std::vector<std::uint8_t> &out);

/**
 * Decode the bytes at `bytes` (with `avail` readable bytes).  Returns
 * an Illegal MacroOp (length 1) for unknown opcodes and a truncated
 * Illegal op when fewer than the needed bytes are available.  Never
 * reads beyond `bytes + avail`.
 */
MacroOp x86Decode(const std::uint8_t *bytes, std::size_t avail);

} // namespace dfi::isa

#endif // DFI_ISA_X86_HH

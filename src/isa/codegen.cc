#include "isa/codegen.hh"

#include <algorithm>

#include "common/logging.hh"
#include "isa/arm.hh"
#include "isa/x86.hh"
#include "syskit/layout.hh"
#include "syskit/os.hh"

namespace dfi::ir
{

// Defined in codegen_x86.cc / codegen_arm.cc.
void runX86Codegen(const Module &module, const Function &func,
                   AsmBuffer &buffer);
void runArmCodegen(const Module &module, const Function &func,
                   AsmBuffer &buffer);

int
AsmBuffer::newLabel()
{
    labelPos_.push_back(-1);
    return static_cast<int>(labelPos_.size()) - 1;
}

void
AsmBuffer::bindLabel(int label)
{
    if (label < 0 || label >= static_cast<int>(labelPos_.size()))
        panic("AsmBuffer: bad label %s", label);
    if (labelPos_[label] != -1)
        panic("AsmBuffer: label %s bound twice", label);
    labelPos_[label] = static_cast<int>(insns_.size());
}

void
AsmBuffer::push(const isa::MacroOp &op)
{
    insns_.push_back(AsmInsn{op, RelocKind::None, -1, -1});
}

void
AsmBuffer::pushReloc(const isa::MacroOp &op, RelocKind reloc, int target)
{
    AsmInsn insn{op, reloc, -1, -1};
    if (reloc == RelocKind::Code)
        insn.label = target;
    else
        insn.sym = target;
    insns_.push_back(insn);
}

FunctionCodegen::FunctionCodegen(const Module &module,
                                 const Function &func, AsmBuffer &buffer)
    : module_(module), func_(func), buf_(buffer),
      liveness_(computeLiveness(func))
{
}

std::int32_t
FunctionCodegen::slotOffset(int slot) const
{
    return 16 + 4 * slot;
}

std::uint8_t
FunctionCodegen::useReg(VReg v, std::uint8_t scratch)
{
    const Location &location = loc(v);
    if (location.dead)
        panic("codegen: use of dead vreg %s in '%s'", v, func_.name);
    if (location.inReg)
        return location.reg;
    emitLoadSp(scratch, slotOffset(location.slot));
    return scratch;
}

std::uint8_t
FunctionCodegen::defReg(VReg v, std::uint8_t scratch)
{
    const Location &location = loc(v);
    if (location.dead || !location.inReg)
        return scratch;
    return location.reg;
}

void
FunctionCodegen::finishDef(VReg v, std::uint8_t reg)
{
    const Location &location = loc(v);
    if (location.dead)
        return;
    if (location.inReg) {
        if (location.reg != reg)
            emitMovRR(location.reg, reg);
    } else {
        emitStoreSp(reg, slotOffset(location.slot));
    }
}

void
FunctionCodegen::finalizeFrame()
{
    // 16 bytes of argument-marshal area plus the spill slots; the
    // target prologue appends its saved-register area above this.
    frameSize_ = 16 + 4 * alloc_.numSpillSlots;
}

void
FunctionCodegen::emitParamMoves()
{
    // Stage all incoming argument registers into the marshal area
    // first so no assignment can clobber a yet-unread argument.
    for (int p = 0; p < func_.numParams; ++p) {
        if (loc(static_cast<VReg>(p)).dead)
            continue;
        emitStoreSp(static_cast<std::uint8_t>(p), marshalOffset(p));
    }
    for (int p = 0; p < func_.numParams; ++p) {
        const Location &location = loc(static_cast<VReg>(p));
        if (location.dead)
            continue;
        if (location.inReg) {
            emitLoadSp(location.reg, marshalOffset(p));
        } else {
            emitLoadSp(scratchA(), marshalOffset(p));
            emitStoreSp(scratchA(), slotOffset(location.slot));
        }
    }
}

void
FunctionCodegen::emitCallLike(const Inst &inst)
{
    if (inst.op == IrOp::Call) {
        for (std::size_t i = 0; i < inst.args.size(); ++i) {
            const std::uint8_t v = useReg(inst.args[i], scratchA());
            emitStoreSp(v, marshalOffset(static_cast<int>(i)));
        }
        for (std::size_t i = 0; i < inst.args.size(); ++i) {
            emitLoadSp(static_cast<std::uint8_t>(i),
                       marshalOffset(static_cast<int>(i)));
        }
        emitCall(inst.callee);
        if (inst.dst != kNoVReg)
            finishDef(inst.dst, 0);
    } else { // Syscall
        std::uint8_t v = useReg(inst.a, scratchA());
        emitStoreSp(v, marshalOffset(0));
        v = useReg(inst.b, scratchA());
        emitStoreSp(v, marshalOffset(1));
        emitLoadSp(1, marshalOffset(0));
        emitLoadSp(2, marshalOffset(1));
        emitMovImm32(0, inst.imm);
        emitSyscall();
        finishDef(inst.dst, 0);
    }
}

void
FunctionCodegen::emitInst(const Block &block, std::size_t ii,
                          std::size_t bi)
{
    const Inst &inst = block.insts[ii];
    const int next_block = static_cast<int>(bi) + 1;

    switch (inst.op) {
      case IrOp::Bin: {
        const std::uint8_t a = useReg(inst.a, scratchA());
        const std::uint8_t b = useReg(inst.b, scratchB());
        const std::uint8_t d = defReg(inst.dst, scratchA());
        emitBin(inst.func, d, a, b);
        finishDef(inst.dst, d);
        break;
      }
      case IrOp::BinImm: {
        const std::uint8_t a = useReg(inst.a, scratchA());
        const std::uint8_t d = defReg(inst.dst, scratchA());
        emitBinImm(inst.func, d, a, inst.imm);
        finishDef(inst.dst, d);
        break;
      }
      case IrOp::Mov: {
        const std::uint8_t a = useReg(inst.a, scratchA());
        const std::uint8_t d = defReg(inst.dst, scratchA());
        if (d != a)
            emitMovRR(d, a);
        finishDef(inst.dst, d);
        break;
      }
      case IrOp::MovImm: {
        const std::uint8_t d = defReg(inst.dst, scratchA());
        emitMovImm32(d, inst.imm);
        finishDef(inst.dst, d);
        break;
      }
      case IrOp::GlobalAddr: {
        const std::uint8_t d = defReg(inst.dst, scratchA());
        emitGlobalAddr(d, inst.sym);
        finishDef(inst.dst, d);
        break;
      }
      case IrOp::Load: {
        const std::uint8_t base = useReg(inst.a, scratchA());
        const std::uint8_t d = defReg(inst.dst, scratchB());
        emitLoad(d, base, inst.imm, inst.width);
        finishDef(inst.dst, d);
        break;
      }
      case IrOp::Store: {
        const std::uint8_t base = useReg(inst.a, scratchA());
        const std::uint8_t v = useReg(inst.b, scratchB());
        emitStore(v, base, inst.imm, inst.width);
        break;
      }
      case IrOp::Br:
        if (inst.target0 != next_block)
            emitJump(blockLabels_[inst.target0]);
        break;
      case IrOp::CondBr: {
        const std::uint8_t a = useReg(inst.a, scratchA());
        const std::uint8_t b = useReg(inst.b, scratchB());
        emitCmpRR(a, b);
        emitBranchCond(inst.cond, blockLabels_[inst.target0]);
        if (inst.target1 != next_block)
            emitJump(blockLabels_[inst.target1]);
        break;
      }
      case IrOp::CondBrImm: {
        const std::uint8_t a = useReg(inst.a, scratchA());
        emitCmpRI(a, inst.imm);
        emitBranchCond(inst.cond, blockLabels_[inst.target0]);
        if (inst.target1 != next_block)
            emitJump(blockLabels_[inst.target1]);
        break;
      }
      case IrOp::Call:
      case IrOp::Syscall:
        emitCallLike(inst);
        break;
      case IrOp::Ret: {
        if (inst.a != kNoVReg) {
            const std::uint8_t v = useReg(inst.a, scratchA());
            if (v != 0)
                emitMovRR(0, v);
        }
        const bool last_block = bi + 1 == func_.blocks.size();
        if (!last_block)
            emitJump(epilogueLabel_);
        break;
      }
    }
}

void
FunctionCodegen::run()
{
    alloc_ = linearScan(liveness_, pools());
    finalizeFrame();

    blockLabels_.clear();
    for (std::size_t b = 0; b < func_.blocks.size(); ++b)
        blockLabels_.push_back(buf_.newLabel());
    epilogueLabel_ = buf_.newLabel();

    emitPrologue();
    emitParamMoves();

    for (std::size_t bi = 0; bi < func_.blocks.size(); ++bi) {
        buf_.bindLabel(blockLabels_[bi]);
        const Block &block = func_.blocks[bi];
        for (std::size_t ii = 0; ii < block.insts.size(); ++ii) {
            const std::size_t fused = tryFuse(block, ii);
            if (fused > 0) {
                ii += fused - 1;
                continue;
            }
            emitInst(block, ii, bi);
        }
    }

    buf_.bindLabel(epilogueLabel_);
    emitEpilogue();
}

namespace
{

std::uint32_t
alignUp(std::uint32_t value, std::uint32_t align)
{
    return (value + align - 1) & ~(align - 1);
}

} // namespace

isa::Image
compileModule(const Module &module, isa::IsaKind isa,
              std::uint32_t mem_size)
{
    module.verify();
    const int main_index = module.findFunc("main");
    if (main_index < 0)
        fatal("compileModule: module has no 'main'");

    AsmBuffer buf(static_cast<int>(module.funcs.size()));

    // Startup stub: call main, then exit(r0).
    {
        isa::MacroOp call;
        call.kind = isa::OpKind::Call;
        buf.pushReloc(call, RelocKind::Code, main_index);
        isa::MacroOp mov;
        mov.kind = isa::OpKind::MovRR;
        mov.rd = 1;
        mov.rm = 0;
        buf.push(mov);
        isa::MacroOp movi;
        movi.kind = isa::OpKind::MovRI;
        movi.rd = 0;
        movi.imm = static_cast<std::int32_t>(syskit::kSysExit);
        buf.push(movi);
        isa::MacroOp sys;
        sys.kind = isa::OpKind::Syscall;
        buf.push(sys);
        isa::MacroOp halt;
        halt.kind = isa::OpKind::Halt;
        buf.push(halt);
    }

    for (std::size_t f = 0; f < module.funcs.size(); ++f) {
        buf.bindLabel(static_cast<int>(f));
        if (isa == isa::IsaKind::X86)
            runX86Codegen(module, module.funcs[f], buf);
        else
            runArmCodegen(module, module.funcs[f], buf);
    }

    // --- layout ---------------------------------------------------------
    const auto &insns = buf.insns();
    std::vector<std::uint32_t> addr(insns.size() + 1);
    std::uint32_t pc = syskit::kCodeBase;
    for (std::size_t i = 0; i < insns.size(); ++i) {
        addr[i] = pc;
        pc += isa == isa::IsaKind::X86
                  ? static_cast<std::uint32_t>(x86Length(insns[i].op))
                  : static_cast<std::uint32_t>(isa::kArmInsnBytes);
    }
    addr[insns.size()] = pc;
    const std::uint32_t code_end = pc;

    std::vector<std::uint32_t> label_addr(buf.labelPositions().size());
    for (std::size_t l = 0; l < label_addr.size(); ++l) {
        const int position = buf.labelPositions()[l];
        if (position < 0)
            panic("compileModule: unbound label %s", l);
        label_addr[l] = addr[position];
    }

    // --- data segment -----------------------------------------------------
    std::uint32_t data_base = alignUp(code_end, syskit::kSegmentAlign);
    std::vector<std::uint8_t> data;
    std::map<std::string, std::uint32_t> symbols;
    std::vector<std::uint32_t> global_va(module.globals.size());
    {
        std::uint32_t cursor = data_base;
        for (std::size_t g = 0; g < module.globals.size(); ++g) {
            const Global &global = module.globals[g];
            cursor = alignUp(cursor, global.align);
            global_va[g] = cursor;
            symbols[global.name] = cursor;
            cursor += global.size();
        }
        data.assign(cursor - data_base, 0);
        for (std::size_t g = 0; g < module.globals.size(); ++g) {
            const Global &global = module.globals[g];
            if (!global.bytes.empty()) {
                std::copy(global.bytes.begin(), global.bytes.end(),
                          data.begin() + (global_va[g] - data_base));
            }
        }
        if (cursor + 0x10000 > mem_size)
            fatal("compileModule: image does not fit in %s bytes of "
                  "guest memory",
                  mem_size);
    }

    // --- relocate and encode ----------------------------------------------
    isa::Image image;
    image.isa = isa;
    image.codeBase = syskit::kCodeBase;
    image.entry = syskit::kCodeBase;
    image.dataBase = data_base;
    image.data = std::move(data);
    image.bssBase = data_base + static_cast<std::uint32_t>(
                                    image.data.size());
    image.bssSize = 0;
    image.memSize = mem_size;
    image.stackTop = mem_size - 64;
    image.symbols = std::move(symbols);
    for (std::size_t f = 0; f < module.funcs.size(); ++f)
        image.symbols["fn:" + module.funcs[f].name] = label_addr[f];

    image.code.reserve(code_end - syskit::kCodeBase);
    for (std::size_t i = 0; i < insns.size(); ++i) {
        isa::MacroOp op = insns[i].op;
        switch (insns[i].reloc) {
          case RelocKind::None:
            break;
          case RelocKind::Code: {
            const std::uint32_t len =
                isa == isa::IsaKind::X86
                    ? static_cast<std::uint32_t>(x86Length(op))
                    : isa::kArmInsnBytes;
            const std::int64_t rel =
                static_cast<std::int64_t>(label_addr[insns[i].label]) -
                (static_cast<std::int64_t>(addr[i]) + len);
            if (isa == isa::IsaKind::X86 &&
                (rel < -32768 || rel > 32767)) {
                panic("DX86 branch displacement %s out of rel16 range",
                      rel);
            }
            op.imm = static_cast<std::int32_t>(rel);
            break;
          }
          case RelocKind::DataAbs:
            op.imm = static_cast<std::int32_t>(global_va[insns[i].sym]);
            break;
          case RelocKind::DataLo:
            op.imm = static_cast<std::int32_t>(global_va[insns[i].sym] &
                                               0xffffu);
            break;
          case RelocKind::DataHi:
            op.imm = static_cast<std::int32_t>(global_va[insns[i].sym] >>
                                               16);
            break;
        }
        if (isa == isa::IsaKind::X86)
            x86Encode(op, image.code);
        else
            armEncode(op, image.code);
        if (image.code.size() + syskit::kCodeBase !=
            addr[i + 1]) {
            panic("compileModule: encoding length mismatch at insn %s",
                  i);
        }
    }

    return image;
}

} // namespace dfi::ir

/**
 * @file
 * Portable three-address IR for the benchmark programs.
 *
 * The ten MiBench-like workloads are written once against this IR and
 * compiled twice — by the DX86 and DARM backends — so the paper's
 * ISA comparison (GeFIN-x86 vs GeFIN-ARM) runs the *same algorithms*
 * with genuinely different instruction mixes, exactly like compiling
 * the same C source for two targets.
 *
 * The IR is integer-only and 32-bit (MiBench-style workloads are
 * integer/fixed-point), uses unlimited virtual registers, explicit
 * basic blocks with terminators, and module-level global data.
 */

#ifndef DFI_ISA_IR_HH
#define DFI_ISA_IR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/macroop.hh"
#include "isa/types.hh"

namespace dfi::ir
{

/** Virtual register id. */
using VReg = std::uint32_t;
constexpr VReg kNoVReg = ~0u;

/** IR opcodes. */
enum class IrOp : std::uint8_t
{
    Bin,       //!< dst = a <func> b
    BinImm,    //!< dst = a <func> imm
    Mov,       //!< dst = a
    MovImm,    //!< dst = imm
    GlobalAddr,//!< dst = &global[sym]
    Load,      //!< dst = zext(mem[a + imm], width)
    Store,     //!< mem[a + imm] = b (width)
    Br,        //!< goto target0
    CondBr,    //!< if (a <cond> b) goto target0 else target1
    CondBrImm, //!< if (a <cond> imm) goto target0 else target1
    Call,      //!< dst = callee(args...)   (dst optional)
    Ret,       //!< return a (optional)
    Syscall    //!< dst = syscall(imm, a, b)
};

/** One IR instruction. */
struct Inst
{
    IrOp op = IrOp::Bin;
    isa::AluFunc func = isa::AluFunc::Add;
    isa::Cond cond = isa::Cond::Eq;
    isa::MemWidth width = isa::MemWidth::Word;
    VReg dst = kNoVReg;
    VReg a = kNoVReg;
    VReg b = kNoVReg;
    std::int32_t imm = 0;
    int sym = -1;     //!< GlobalAddr: global index
    int callee = -1;  //!< Call: function index
    std::vector<VReg> args; //!< Call arguments (max 4)
    int target0 = -1; //!< Br/CondBr*: taken target block
    int target1 = -1; //!< CondBr*: fall-through target block

    /** True for instructions that must end a block. */
    bool isTerminator() const
    {
        return op == IrOp::Br || op == IrOp::CondBr ||
               op == IrOp::CondBrImm || op == IrOp::Ret;
    }
};

/** A basic block: straight-line insts ending in one terminator. */
struct Block
{
    std::vector<Inst> insts;
};

/** A function. */
struct Function
{
    std::string name;
    int numParams = 0;
    VReg numVRegs = 0;
    std::vector<Block> blocks;
};

/** Module-level data: initialized bytes or zeroed space. */
struct Global
{
    std::string name;
    std::vector<std::uint8_t> bytes; //!< empty for bss
    std::uint32_t bssSize = 0;       //!< nonzero for bss globals
    std::uint32_t align = 4;

    std::uint32_t
    size() const
    {
        return bytes.empty() ? bssSize
                             : static_cast<std::uint32_t>(bytes.size());
    }
};

/** A whole program. */
struct Module
{
    std::vector<Function> funcs;
    std::vector<Global> globals;

    /** Index of a function by name; -1 if absent. */
    int findFunc(const std::string &name) const;

    /**
     * Structural validation: every block non-empty and terminated,
     * targets/callees/syms in range, arg counts <= 4, vreg ids within
     * numVRegs.  fatal()s with a description on the first violation.
     */
    void verify() const;
};

/**
 * Convenience builder for one function.  Typical use:
 * @code
 *   ModuleBuilder mb;
 *   auto f = mb.beginFunction("main", 0);
 *   VReg i = f.movImm(0);
 *   ...
 *   f.ret(f.movImm(0));
 *   mb.endFunction(f);
 * @endcode
 */
class FunctionBuilder
{
  public:
    FunctionBuilder(Module &module, std::string name, int num_params);

    /** The vreg holding the i-th parameter. */
    VReg param(int i) const;

    /** Allocate a fresh virtual register. */
    VReg fresh();

    /** Create a new (empty) block; returns its id. */
    int newBlock();
    /** Switch the insertion point. */
    void setBlock(int block);
    /** Current insertion block. */
    int currentBlock() const { return current_; }

    // --- data-processing ---------------------------------------------
    VReg bin(isa::AluFunc func, VReg a, VReg b);
    VReg binImm(isa::AluFunc func, VReg a, std::int32_t imm);
    VReg add(VReg a, VReg b) { return bin(isa::AluFunc::Add, a, b); }
    VReg sub(VReg a, VReg b) { return bin(isa::AluFunc::Sub, a, b); }
    VReg mul(VReg a, VReg b) { return bin(isa::AluFunc::Mul, a, b); }
    VReg addImm(VReg a, std::int32_t imm)
    {
        return binImm(isa::AluFunc::Add, a, imm);
    }
    VReg mov(VReg a);
    VReg movImm(std::int32_t imm);
    VReg globalAddr(int sym);

    // --- in-place (non-SSA) variants for loop-carried variables -------
    void binTo(VReg dst, isa::AluFunc func, VReg a, VReg b);
    void binImmTo(VReg dst, isa::AluFunc func, VReg a, std::int32_t imm);
    void movTo(VReg dst, VReg a);
    void movImmTo(VReg dst, std::int32_t imm);
    void loadTo(VReg dst, VReg base, std::int32_t disp,
                isa::MemWidth width = isa::MemWidth::Word);
    /** Fresh vreg initialized to a constant (mutable loop variable). */
    VReg var(std::int32_t init) { return movImm(init); }

    // --- memory ------------------------------------------------------
    VReg load(VReg base, std::int32_t disp,
              isa::MemWidth width = isa::MemWidth::Word);
    void store(VReg value, VReg base, std::int32_t disp,
               isa::MemWidth width = isa::MemWidth::Word);

    // --- control -----------------------------------------------------
    void br(int target);
    void condBr(isa::Cond cond, VReg a, VReg b, int then_block,
                int else_block);
    void condBrImm(isa::Cond cond, VReg a, std::int32_t imm,
                   int then_block, int else_block);
    VReg call(int callee, std::vector<VReg> args);
    void callVoid(int callee, std::vector<VReg> args);
    void ret(VReg value = kNoVReg);
    VReg syscall(std::int32_t num, VReg a, VReg b);

    /** Finished function (moved out by ModuleBuilder::endFunction). */
    Function &function() { return func_; }

  private:
    void append(Inst inst);

    Module &module_;
    Function func_;
    int current_ = 0;
    bool terminated_ = false;
};

/** Builder for a whole module. */
class ModuleBuilder
{
  public:
    /** Add an initialized global; returns its symbol index. */
    int addGlobal(const std::string &name,
                  std::vector<std::uint8_t> bytes,
                  std::uint32_t align = 4);

    /** Add a zero-initialized global of `size` bytes. */
    int addBss(const std::string &name, std::uint32_t size,
               std::uint32_t align = 4);

    /**
     * Pre-declare a function so forward/recursive calls can reference
     * it; returns the function index used by FunctionBuilder::call().
     */
    int declareFunction(const std::string &name, int num_params);

    /** Begin building the body of a previously declared function. */
    FunctionBuilder beginFunction(int func_index);

    /** Declare + begin in one step (for non-recursive helpers). */
    FunctionBuilder beginFunction(const std::string &name,
                                  int num_params);

    /** Commit a finished function body. */
    void endFunction(FunctionBuilder &builder);

    /** Verify and take the module. */
    Module take();

    Module &module() { return module_; }

  private:
    Module module_;
};

} // namespace dfi::ir

#endif // DFI_ISA_IR_HH

#include "isa/liveness.hh"

#include "common/logging.hh"

namespace dfi::ir
{

void
instUses(const Inst &inst, std::vector<VReg> &out)
{
    out.clear();
    switch (inst.op) {
      case IrOp::Bin:
        out.push_back(inst.a);
        out.push_back(inst.b);
        break;
      case IrOp::BinImm:
      case IrOp::Mov:
        out.push_back(inst.a);
        break;
      case IrOp::MovImm:
      case IrOp::GlobalAddr:
      case IrOp::Br:
        break;
      case IrOp::Load:
        out.push_back(inst.a);
        break;
      case IrOp::Store:
        out.push_back(inst.a);
        out.push_back(inst.b);
        break;
      case IrOp::CondBr:
        out.push_back(inst.a);
        out.push_back(inst.b);
        break;
      case IrOp::CondBrImm:
        out.push_back(inst.a);
        break;
      case IrOp::Call:
        for (VReg arg : inst.args)
            out.push_back(arg);
        break;
      case IrOp::Ret:
        if (inst.a != kNoVReg)
            out.push_back(inst.a);
        break;
      case IrOp::Syscall:
        out.push_back(inst.a);
        out.push_back(inst.b);
        break;
    }
}

VReg
instDef(const Inst &inst)
{
    switch (inst.op) {
      case IrOp::Bin:
      case IrOp::BinImm:
      case IrOp::Mov:
      case IrOp::MovImm:
      case IrOp::GlobalAddr:
      case IrOp::Load:
      case IrOp::Syscall:
        return inst.dst;
      case IrOp::Call:
        return inst.dst; // may be kNoVReg for void calls
      default:
        return kNoVReg;
    }
}

namespace
{

/** Successor blocks of a block's terminator. */
void
successors(const Inst &term, std::vector<int> &out)
{
    out.clear();
    switch (term.op) {
      case IrOp::Br:
        out.push_back(term.target0);
        break;
      case IrOp::CondBr:
      case IrOp::CondBrImm:
        out.push_back(term.target0);
        out.push_back(term.target1);
        break;
      default:
        break; // Ret: no successors
    }
}

} // namespace

LivenessInfo
computeLiveness(const Function &func)
{
    LivenessInfo info;
    const std::size_t num_blocks = func.blocks.size();
    const std::size_t num_vregs = func.numVRegs;

    info.blockStart.resize(num_blocks);
    int position = 0;
    for (std::size_t b = 0; b < num_blocks; ++b) {
        info.blockStart[b] = position;
        position += static_cast<int>(func.blocks[b].insts.size());
    }
    const int total_insts = position;

    // use[b] = vregs read before any write in b; def[b] = vregs written.
    std::vector<std::vector<bool>> use(num_blocks), def(num_blocks);
    std::vector<VReg> uses;
    for (std::size_t b = 0; b < num_blocks; ++b) {
        use[b].assign(num_vregs, false);
        def[b].assign(num_vregs, false);
        for (const Inst &inst : func.blocks[b].insts) {
            instUses(inst, uses);
            for (VReg u : uses) {
                if (!def[b][u])
                    use[b][u] = true;
            }
            const VReg d = instDef(inst);
            if (d != kNoVReg)
                def[b][d] = true;
        }
    }

    info.liveIn.assign(num_blocks, std::vector<bool>(num_vregs, false));
    info.liveOut.assign(num_blocks, std::vector<bool>(num_vregs, false));

    // Iterate to a fixed point (backward dataflow).
    bool changed = true;
    std::vector<int> succs;
    while (changed) {
        changed = false;
        for (std::size_t bi = num_blocks; bi-- > 0;) {
            successors(func.blocks[bi].insts.back(), succs);
            for (int s : succs) {
                for (std::size_t v = 0; v < num_vregs; ++v) {
                    if (info.liveIn[s][v] && !info.liveOut[bi][v]) {
                        info.liveOut[bi][v] = true;
                        changed = true;
                    }
                }
            }
            for (std::size_t v = 0; v < num_vregs; ++v) {
                const bool in =
                    use[bi][v] || (info.liveOut[bi][v] && !def[bi][v]);
                if (in && !info.liveIn[bi][v]) {
                    info.liveIn[bi][v] = true;
                    changed = true;
                }
            }
        }
    }

    // Build conservative intervals.
    info.intervals.resize(num_vregs);
    for (std::size_t v = 0; v < num_vregs; ++v)
        info.intervals[v].vreg = static_cast<VReg>(v);

    auto touch = [&](VReg v, int pos) {
        LiveInterval &iv = info.intervals[v];
        if (iv.start < 0 || pos < iv.start)
            iv.start = pos;
        if (pos > iv.end)
            iv.end = pos;
    };

    // Parameters are live from function entry (the prologue moves them
    // into their homes at position 0).
    for (int p = 0; p < func.numParams; ++p)
        touch(static_cast<VReg>(p), 0);

    for (std::size_t b = 0; b < num_blocks; ++b) {
        const int first = info.blockStart[b];
        const int last =
            first + static_cast<int>(func.blocks[b].insts.size()) - 1;
        for (std::size_t v = 0; v < num_vregs; ++v) {
            if (info.liveIn[b][v])
                touch(static_cast<VReg>(v), first);
            if (info.liveOut[b][v])
                touch(static_cast<VReg>(v), last);
        }
        int pos = first;
        for (const Inst &inst : func.blocks[b].insts) {
            instUses(inst, uses);
            for (VReg u : uses) {
                touch(u, pos);
                ++info.intervals[u].useCount;
            }
            const VReg d = instDef(inst);
            if (d != kNoVReg)
                touch(d, pos);
            if (inst.op == IrOp::Call || inst.op == IrOp::Syscall)
                info.callPositions.push_back(pos);
            ++pos;
        }
    }

    // Mark call-crossing intervals: a call position strictly inside
    // (start, end) means the value must survive the call.
    for (LiveInterval &iv : info.intervals) {
        if (iv.empty())
            continue;
        for (int cp : info.callPositions) {
            if (cp > iv.start && cp < iv.end) {
                iv.crossesCall = true;
                break;
            }
        }
    }

    if (total_insts == 0)
        panic("computeLiveness: empty function '%s'", func.name);
    return info;
}

} // namespace dfi::ir

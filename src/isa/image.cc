#include "isa/image.hh"

#include "common/logging.hh"

namespace dfi::isa
{

std::uint32_t
Image::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        fatal("image has no symbol '%s'", name);
    return it->second;
}

syskit::GuestMemory
Image::makeMemory() const
{
    syskit::GuestMemory memory(memSize, codeLimit());
    if (!code.empty())
        memory.pokeBytes(codeBase,
                         static_cast<std::uint32_t>(code.size()),
                         code.data());
    if (!data.empty())
        memory.pokeBytes(dataBase,
                         static_cast<std::uint32_t>(data.size()),
                         data.data());
    return memory;
}

} // namespace dfi::isa

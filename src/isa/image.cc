#include "isa/image.hh"

#include "common/logging.hh"

namespace dfi::isa
{

std::uint32_t
Image::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        fatal("image has no symbol '%s'", name);
    return it->second;
}

syskit::GuestMemory
Image::makeMemory() const
{
    syskit::GuestMemory memory(memSize, codeLimit());
    if (!code.empty())
        memory.pokeBytes(codeBase,
                         static_cast<std::uint32_t>(code.size()),
                         code.data());
    if (!data.empty())
        memory.pokeBytes(dataBase,
                         static_cast<std::uint32_t>(data.size()),
                         data.data());
    return memory;
}

template <class Ar>
void
Image::serializeState(Ar &ar)
{
    serial::value(ar, isa);
    serial::value(ar, codeBase);
    serial::value(ar, entry);
    serial::value(ar, code);
    serial::value(ar, dataBase);
    serial::value(ar, data);
    serial::value(ar, bssBase);
    serial::value(ar, bssSize);
    serial::value(ar, memSize);
    serial::value(ar, stackTop);
    serial::value(ar, symbols);
}

template void Image::serializeState(serial::Writer &);
template void Image::serializeState(serial::Reader &);

} // namespace dfi::isa

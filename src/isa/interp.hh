/**
 * @file
 * Functional reference interpreter.
 *
 * Executes an Image with no timing model.  It serves three purposes:
 * (1) golden-output validation for the benchmark programs,
 * (2) a reference the two out-of-order models are differentially
 *     tested against (same architectural results on fault-free runs),
 * (3) fast fault-free reference runs for the campaign controller.
 */

#ifndef DFI_ISA_INTERP_HH
#define DFI_ISA_INTERP_HH

#include <array>
#include <cstdint>

#include "isa/image.hh"
#include "isa/macroop.hh"
#include "syskit/os.hh"
#include "syskit/run_record.hh"

namespace dfi::isa
{

/** Architectural register state shared with the pipeline models. */
struct ArchState
{
    std::array<std::uint32_t, kNumArchRegs> regs{};
    std::uint32_t pc = 0;
};

/** Functional executor for either ISA. */
class Interpreter
{
  public:
    explicit Interpreter(const Image &image);

    /**
     * Run to completion or until `max_instructions` retire.
     * Exceeding the bound reports Termination::CycleLimit (with
     * cycles == instructions, the interpreter's notional 1 IPC).
     */
    syskit::RunRecord run(std::uint64_t max_instructions = 100'000'000);

    /** Single-step state access for tests. */
    const ArchState &arch() const { return arch_; }
    const syskit::GuestMemory &memory() const { return memory_; }

  private:
    /** Execute one instruction; false when the run terminated. */
    bool step(syskit::RunRecord &record);

    IsaKind isa_;
    ArchState arch_;
    syskit::GuestMemory memory_;
    syskit::MiniOs os_;
    std::uint64_t icount_ = 0;
};

} // namespace dfi::isa

#endif // DFI_ISA_INTERP_HH

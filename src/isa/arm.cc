#include "isa/arm.hh"

#include "common/logging.hh"

namespace dfi::isa
{

namespace
{

constexpr std::uint8_t kOpNop = 0x00;
constexpr std::uint8_t kOpRet = 0x01;
constexpr std::uint8_t kOpHlt = 0x02;
constexpr std::uint8_t kOpSvc = 0x03;
constexpr std::uint8_t kOpAluRRR = 0x10;
constexpr std::uint8_t kOpAluRRI = 0x20;
constexpr std::uint8_t kOpMovRR = 0x40;
constexpr std::uint8_t kOpMovW = 0x41;
constexpr std::uint8_t kOpMovT = 0x42;
constexpr std::uint8_t kOpLdr = 0x43;
constexpr std::uint8_t kOpLdrH = 0x44;
constexpr std::uint8_t kOpLdrB = 0x45;
constexpr std::uint8_t kOpStr = 0x46;
constexpr std::uint8_t kOpStrH = 0x47;
constexpr std::uint8_t kOpStrB = 0x48;
constexpr std::uint8_t kOpCmpRR = 0x49;
constexpr std::uint8_t kOpCmpRI = 0x4A;
constexpr std::uint8_t kOpBcc = 0x50;
constexpr std::uint8_t kOpB = 0x5A;
constexpr std::uint8_t kOpBl = 0x5B;
constexpr std::uint8_t kOpBx = 0x5C;

std::uint32_t
pack(std::uint8_t op, std::uint8_t rd, std::uint8_t rn, std::uint8_t rm,
     std::uint32_t imm12)
{
    return (static_cast<std::uint32_t>(op) << 24) |
           (static_cast<std::uint32_t>(rd & 0xf) << 20) |
           (static_cast<std::uint32_t>(rn & 0xf) << 16) |
           (static_cast<std::uint32_t>(rm & 0xf) << 12) |
           (imm12 & 0xfff);
}

void
emit(std::vector<std::uint8_t> &out, std::uint32_t word)
{
    out.push_back(static_cast<std::uint8_t>(word));
    out.push_back(static_cast<std::uint8_t>(word >> 8));
    out.push_back(static_cast<std::uint8_t>(word >> 16));
    out.push_back(static_cast<std::uint8_t>(word >> 24));
}

/** Signed word offset in the low 20 bits (Bcc). */
std::uint32_t
encodeRel20(std::int32_t byte_offset)
{
    if (byte_offset % 4 != 0)
        panic("DARM branch offset %s not word aligned", byte_offset);
    const std::int32_t words = byte_offset / 4;
    if (words < -(1 << 19) || words >= (1 << 19))
        panic("DARM Bcc offset %s out of range", byte_offset);
    return static_cast<std::uint32_t>(words) & 0xfffff;
}

/** Signed word offset in the low 24 bits (B/BL). */
std::uint32_t
encodeRel24(std::int32_t byte_offset)
{
    if (byte_offset % 4 != 0)
        panic("DARM branch offset %s not word aligned", byte_offset);
    const std::int32_t words = byte_offset / 4;
    if (words < -(1 << 23) || words >= (1 << 23))
        panic("DARM B/BL offset %s out of range", byte_offset);
    return static_cast<std::uint32_t>(words) & 0xffffff;
}

std::int32_t
decodeRel(std::uint32_t field, unsigned bits)
{
    const std::uint32_t sign = 1u << (bits - 1);
    std::int32_t words = static_cast<std::int32_t>(field & ((1u << bits) - 1));
    if (field & sign)
        words -= 1 << bits;
    return words * 4;
}

} // namespace

void
armEncode(const MacroOp &op, std::vector<std::uint8_t> &out)
{
    switch (op.kind) {
      case OpKind::Nop:
        emit(out, pack(kOpNop, 0, 0, 0, 0));
        return;
      case OpKind::Ret:
        emit(out, pack(kOpRet, 0, 0, 0, 0));
        return;
      case OpKind::Halt:
        emit(out, pack(kOpHlt, 0, 0, 0, 0));
        return;
      case OpKind::Syscall:
        emit(out, pack(kOpSvc, 0, 0, 0, 0));
        return;
      case OpKind::AluRR:
        emit(out, pack(kOpAluRRR + static_cast<std::uint8_t>(op.func),
                       op.rd, op.rn, op.rm, 0));
        return;
      case OpKind::AluRI:
        if (op.imm < 0 || op.imm > 0xfff)
            panic("DARM ALU imm12 out of range: %s", op.imm);
        emit(out, pack(kOpAluRRI + static_cast<std::uint8_t>(op.func),
                       op.rd, op.rn, 0,
                       static_cast<std::uint32_t>(op.imm)));
        return;
      case OpKind::MovRR:
        emit(out, pack(kOpMovRR, op.rd, 0, op.rm, 0));
        return;
      case OpKind::MovRI: {
        const auto imm = static_cast<std::uint32_t>(op.imm);
        if (imm > 0xffff)
            panic("DARM MOVW imm16 out of range: %s", op.imm);
        emit(out, pack(kOpMovW, op.rd, 0,
                       static_cast<std::uint8_t>(imm >> 12), imm & 0xfff));
        return;
      }
      case OpKind::MovTI: {
        const auto imm = static_cast<std::uint32_t>(op.imm);
        if (imm > 0xffff)
            panic("DARM MOVT imm16 out of range: %s", op.imm);
        emit(out, pack(kOpMovT, op.rd, 0,
                       static_cast<std::uint8_t>(imm >> 12), imm & 0xfff));
        return;
      }
      case OpKind::Load:
      case OpKind::Store: {
        if (op.imm < 0 || op.imm > 0xfff)
            panic("DARM mem imm12 out of range: %s", op.imm);
        std::uint8_t opc;
        if (op.kind == OpKind::Load) {
            opc = op.width == MemWidth::Word   ? kOpLdr
                  : op.width == MemWidth::Half ? kOpLdrH
                                               : kOpLdrB;
            emit(out, pack(opc, op.rd, op.rn, 0,
                           static_cast<std::uint32_t>(op.imm)));
        } else {
            opc = op.width == MemWidth::Word   ? kOpStr
                  : op.width == MemWidth::Half ? kOpStrH
                                               : kOpStrB;
            emit(out, pack(opc, 0, op.rn, op.rm,
                           static_cast<std::uint32_t>(op.imm)));
        }
        return;
      }
      case OpKind::CmpRR:
        emit(out, pack(kOpCmpRR, 0, op.rn, op.rm, 0));
        return;
      case OpKind::CmpRI:
        if (op.imm < 0 || op.imm > 0xfff)
            panic("DARM CMP imm12 out of range: %s", op.imm);
        emit(out, pack(kOpCmpRI, 0, op.rn, 0,
                       static_cast<std::uint32_t>(op.imm)));
        return;
      case OpKind::BrCond: {
        const std::uint32_t rel = encodeRel20(op.imm);
        emit(out, (static_cast<std::uint32_t>(
                       kOpBcc + static_cast<std::uint8_t>(op.cond))
                   << 24) |
                      rel);
        return;
      }
      case OpKind::Jump:
        emit(out, (static_cast<std::uint32_t>(kOpB) << 24) |
                      encodeRel24(op.imm));
        return;
      case OpKind::Call:
        emit(out, (static_cast<std::uint32_t>(kOpBl) << 24) |
                      encodeRel24(op.imm));
        return;
      case OpKind::JumpInd:
      case OpKind::CallInd:
        // DARM has no indirect call opcode: codegen emits MOV LR + BX.
        if (op.kind == OpKind::CallInd)
            panic("DARM indirect calls must be lowered to MOV LR + BX");
        emit(out, pack(kOpBx, 0, 0, op.rm, 0));
        return;
      default:
        panic("armEncode: cannot encode %s", opKindName(op.kind));
    }
}

MacroOp
armDecode(const std::uint8_t *bytes, std::size_t avail)
{
    MacroOp op;
    op.kind = OpKind::Illegal;
    op.length = kArmInsnBytes;
    if (avail < kArmInsnBytes) {
        op.length = static_cast<std::uint8_t>(avail);
        return op;
    }

    const std::uint32_t word = static_cast<std::uint32_t>(bytes[0]) |
                               (static_cast<std::uint32_t>(bytes[1]) << 8) |
                               (static_cast<std::uint32_t>(bytes[2]) << 16) |
                               (static_cast<std::uint32_t>(bytes[3]) << 24);
    const auto opc = static_cast<std::uint8_t>(word >> 24);
    const auto rd = static_cast<std::uint8_t>((word >> 20) & 0xf);
    const auto rn = static_cast<std::uint8_t>((word >> 16) & 0xf);
    const auto rm = static_cast<std::uint8_t>((word >> 12) & 0xf);
    const std::uint32_t imm12 = word & 0xfff;

    switch (opc) {
      case kOpNop:
        op.kind = OpKind::Nop;
        return op;
      case kOpRet:
        op.kind = OpKind::Ret;
        return op;
      case kOpHlt:
        op.kind = OpKind::Halt;
        return op;
      case kOpSvc:
        op.kind = OpKind::Syscall;
        return op;
      default:
        break;
    }

    if (opc >= kOpAluRRR && opc < kOpAluRRR + kNumAluFuncs) {
        op.kind = OpKind::AluRR;
        op.func = static_cast<AluFunc>(opc - kOpAluRRR);
        op.rd = rd;
        op.rn = rn;
        op.rm = rm;
        return op;
    }
    if (opc >= kOpAluRRI && opc < kOpAluRRI + kNumAluFuncs) {
        op.kind = OpKind::AluRI;
        op.func = static_cast<AluFunc>(opc - kOpAluRRI);
        op.rd = rd;
        op.rn = rn;
        op.imm = static_cast<std::int32_t>(imm12);
        return op;
    }
    if (opc >= kOpBcc && opc < kOpBcc + kNumConds) {
        op.kind = OpKind::BrCond;
        op.cond = static_cast<Cond>(opc - kOpBcc);
        op.imm = decodeRel(word & 0xfffff, 20);
        return op;
    }

    switch (opc) {
      case kOpMovRR:
        op.kind = OpKind::MovRR;
        op.rd = rd;
        op.rm = rm;
        return op;
      case kOpMovW:
        op.kind = OpKind::MovRI;
        op.rd = rd;
        op.imm = static_cast<std::int32_t>((rm << 12) | imm12);
        return op;
      case kOpMovT:
        op.kind = OpKind::MovTI;
        op.rd = rd;
        op.imm = static_cast<std::int32_t>((rm << 12) | imm12);
        return op;
      case kOpLdr:
      case kOpLdrH:
      case kOpLdrB:
        op.kind = OpKind::Load;
        op.width = opc == kOpLdr    ? MemWidth::Word
                   : opc == kOpLdrH ? MemWidth::Half
                                    : MemWidth::Byte;
        op.rd = rd;
        op.rn = rn;
        op.imm = static_cast<std::int32_t>(imm12);
        return op;
      case kOpStr:
      case kOpStrH:
      case kOpStrB:
        op.kind = OpKind::Store;
        op.width = opc == kOpStr    ? MemWidth::Word
                   : opc == kOpStrH ? MemWidth::Half
                                    : MemWidth::Byte;
        op.rm = rm;
        op.rn = rn;
        op.imm = static_cast<std::int32_t>(imm12);
        return op;
      case kOpCmpRR:
        op.kind = OpKind::CmpRR;
        op.rn = rn;
        op.rm = rm;
        return op;
      case kOpCmpRI:
        op.kind = OpKind::CmpRI;
        op.rn = rn;
        op.imm = static_cast<std::int32_t>(imm12);
        return op;
      case kOpB:
        op.kind = OpKind::Jump;
        op.imm = decodeRel(word & 0xffffff, 24);
        return op;
      case kOpBl:
        op.kind = OpKind::Call;
        op.imm = decodeRel(word & 0xffffff, 24);
        return op;
      case kOpBx:
        op.kind = OpKind::JumpInd;
        op.rm = rm;
        return op;
      default:
        return op; // Illegal
    }
}

} // namespace dfi::isa

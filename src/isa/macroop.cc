#include "isa/macroop.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/serial.hh"

namespace dfi::isa
{

std::string
opKindName(OpKind kind)
{
    static const char *names[] = {
        "illegal", "nop",   "halt",  "alu_rr", "alu_ri",  "load_op",
        "mov_rr",  "mov_ri", "mov_ti", "load",  "store",   "cmp_rr",
        "cmp_ri",  "brcond", "jump",  "jumpind", "call",   "callind",
        "ret",     "push",  "pop",   "syscall"};
    const auto i = static_cast<std::size_t>(kind);
    if (i >= sizeof(names) / sizeof(names[0]))
        panic("opKindName: bad OpKind %s", i);
    return names[i];
}

bool
MacroOp::isMemRead() const
{
    switch (kind) {
      case OpKind::Load:
      case OpKind::LoadOp:
      case OpKind::Pop:
      case OpKind::Ret:
        return true;
      default:
        return false;
    }
}

bool
MacroOp::isMemWrite(IsaKind isa) const
{
    switch (kind) {
      case OpKind::Store:
      case OpKind::Push:
        return true;
      case OpKind::Call:
      case OpKind::CallInd:
        return isa == IsaKind::X86; // DX86 pushes the return address
      default:
        return false;
    }
}

bool
MacroOp::isControl() const
{
    switch (kind) {
      case OpKind::BrCond:
      case OpKind::Jump:
      case OpKind::JumpInd:
      case OpKind::Call:
      case OpKind::CallInd:
      case OpKind::Ret:
        return true;
      default:
        return false;
    }
}

bool
MacroOp::writesRd() const
{
    switch (kind) {
      case OpKind::AluRR:
      case OpKind::AluRI:
      case OpKind::LoadOp:
      case OpKind::MovRR:
      case OpKind::MovRI:
      case OpKind::MovTI:
      case OpKind::Load:
      case OpKind::Pop:
        return true;
      default:
        return false;
    }
}

bool
MacroOp::usesSpImplicitly() const
{
    switch (kind) {
      case OpKind::Push:
      case OpKind::Pop:
        return true;
      case OpKind::Call:
      case OpKind::CallInd:
      case OpKind::Ret:
        // Only stack-based calls touch SP; the DARM link-register
        // convention does not.  The decoder leaves this generic: the
        // consumer checks the ISA via isMemWrite()/isMemRead().  For
        // Ret the DX86 pop reads SP.  DARM Ret reads LR only.
        return true;
      default:
        return false;
    }
}

bool
MacroOp::writesFlags() const
{
    return kind == OpKind::CmpRR || kind == OpKind::CmpRI;
}

bool
MacroOp::readsFlags() const
{
    return kind == OpKind::BrCond;
}

std::string
MacroOp::toString() const
{
    std::ostringstream os;
    os << opKindName(kind);
    switch (kind) {
      case OpKind::AluRR:
        os << ' ' << aluFuncName(func) << " r" << int(rd) << ", r"
           << int(rn) << ", r" << int(rm);
        break;
      case OpKind::AluRI:
        os << ' ' << aluFuncName(func) << " r" << int(rd) << ", r"
           << int(rn) << ", #" << imm;
        break;
      case OpKind::LoadOp:
        os << ' ' << aluFuncName(func) << " r" << int(rd) << ", [r"
           << int(rn) << (imm >= 0 ? "+" : "") << imm << ']';
        break;
      case OpKind::MovRR:
        os << " r" << int(rd) << ", r" << int(rm);
        break;
      case OpKind::MovRI:
      case OpKind::MovTI:
        os << " r" << int(rd) << ", #" << imm;
        break;
      case OpKind::Load:
        os << int(width) * 8 << " r" << int(rd) << ", [r" << int(rn)
           << (imm >= 0 ? "+" : "") << imm << ']';
        break;
      case OpKind::Store:
        os << int(width) * 8 << " [r" << int(rn)
           << (imm >= 0 ? "+" : "") << imm << "], r" << int(rm);
        break;
      case OpKind::CmpRR:
        os << " r" << int(rn) << ", r" << int(rm);
        break;
      case OpKind::CmpRI:
        os << " r" << int(rn) << ", #" << imm;
        break;
      case OpKind::BrCond:
        os << '.' << condName(cond) << ' ' << imm;
        break;
      case OpKind::Jump:
      case OpKind::Call:
        os << ' ' << imm;
        break;
      case OpKind::JumpInd:
      case OpKind::CallInd:
        os << " r" << int(rm);
        break;
      case OpKind::Push:
        os << " r" << int(rm);
        break;
      case OpKind::Pop:
        os << " r" << int(rd);
        break;
      default:
        break;
    }
    return os.str();
}

template <class Ar>
void
MacroOp::serializeState(Ar &ar)
{
    serial::value(ar, kind);
    serial::value(ar, func);
    serial::value(ar, cond);
    serial::value(ar, width);
    serial::value(ar, rd);
    serial::value(ar, rn);
    serial::value(ar, rm);
    serial::value(ar, imm);
    serial::value(ar, length);
}

template void MacroOp::serializeState(serial::Writer &);
template void MacroOp::serializeState(serial::Reader &);

} // namespace dfi::isa

/**
 * @file
 * DX86 instruction selection.
 *
 * Register convention:
 *   r0..r3   arguments / return value (caller-saved)
 *   r0..r5   caller-saved allocatable
 *   r6..r9   callee-saved allocatable
 *   r10..r12 codegen scratch (never allocated)
 *   r13,r14  reserved (unused by the ABI)
 *   r15      SP
 *
 * DX86 has 10 allocatable registers against DARM's 12, mirroring the
 * tighter register file of real x86; the backend compensates the
 * two-operand pressure with load-op folding (tryFuse), giving the
 * CISC-flavoured instruction mix the paper's analysis leans on.
 */

#include "common/logging.hh"
#include "isa/codegen.hh"

namespace dfi::ir
{

namespace
{

using isa::AluFunc;
using isa::MacroOp;
using isa::MemWidth;
using isa::OpKind;

constexpr std::uint8_t kScratchA = 10;
constexpr std::uint8_t kScratchB = 11;
constexpr std::uint8_t kScratchC = 12;

bool
isCommutative(AluFunc func)
{
    switch (func) {
      case AluFunc::Add:
      case AluFunc::And:
      case AluFunc::Or:
      case AluFunc::Xor:
      case AluFunc::Mul:
        return true;
      default:
        return false;
    }
}

class X86Codegen : public FunctionCodegen
{
  public:
    using FunctionCodegen::FunctionCodegen;

  protected:
    RegPools
    pools() const override
    {
        return RegPools{{0, 1, 2, 3, 4, 5}, {6, 7, 8, 9}};
    }

    std::uint8_t scratchA() const override { return kScratchA; }
    std::uint8_t scratchB() const override { return kScratchB; }

    void
    emitPrologue() override
    {
        for (std::uint8_t r : alloc_.usedCalleeSaved) {
            MacroOp push;
            push.kind = OpKind::Push;
            push.rm = r;
            buf_.push(push);
        }
        emitBinImm(AluFunc::Sub, isa::kRegSp, isa::kRegSp, frameSize());
    }

    void
    emitEpilogue() override
    {
        emitBinImm(AluFunc::Add, isa::kRegSp, isa::kRegSp, frameSize());
        for (auto it = alloc_.usedCalleeSaved.rbegin();
             it != alloc_.usedCalleeSaved.rend(); ++it) {
            MacroOp pop;
            pop.kind = OpKind::Pop;
            pop.rd = *it;
            buf_.push(pop);
        }
        MacroOp ret;
        ret.kind = OpKind::Ret;
        buf_.push(ret);
    }

    void
    emitMovRR(std::uint8_t dst, std::uint8_t src) override
    {
        MacroOp op;
        op.kind = OpKind::MovRR;
        op.rd = dst;
        op.rm = src;
        buf_.push(op);
    }

    void
    emitMovImm32(std::uint8_t dst, std::int32_t imm) override
    {
        MacroOp op;
        op.kind = OpKind::MovRI;
        op.rd = dst;
        op.imm = imm;
        buf_.push(op);
    }

    void
    emitLoadSp(std::uint8_t reg, std::int32_t off) override
    {
        emitLoad(reg, isa::kRegSp, off, MemWidth::Word);
    }

    void
    emitStoreSp(std::uint8_t reg, std::int32_t off) override
    {
        emitStore(reg, isa::kRegSp, off, MemWidth::Word);
    }

    void
    emitBin(AluFunc func, std::uint8_t dst, std::uint8_t a,
            std::uint8_t b) override
    {
        // Two-operand form: dst = dst <func> src.
        if (dst == a) {
            pushAluRR(func, dst, b);
        } else if (dst == b) {
            if (isCommutative(func)) {
                pushAluRR(func, dst, a);
            } else {
                emitMovRR(kScratchC, b);
                emitMovRR(dst, a);
                pushAluRR(func, dst, kScratchC);
            }
        } else {
            emitMovRR(dst, a);
            pushAluRR(func, dst, b);
        }
    }

    void
    emitBinImm(AluFunc func, std::uint8_t dst, std::uint8_t a,
               std::int32_t imm) override
    {
        if (dst != a)
            emitMovRR(dst, a);
        MacroOp op;
        op.kind = OpKind::AluRI;
        op.func = func;
        op.rd = op.rn = dst;
        op.imm = imm;
        buf_.push(op);
    }

    void
    emitLoad(std::uint8_t dst, std::uint8_t base, std::int32_t disp,
             MemWidth width) override
    {
        checkDisp(disp);
        MacroOp op;
        op.kind = OpKind::Load;
        op.width = width;
        op.rd = dst;
        op.rn = base;
        op.imm = disp;
        buf_.push(op);
    }

    void
    emitStore(std::uint8_t src, std::uint8_t base, std::int32_t disp,
              MemWidth width) override
    {
        checkDisp(disp);
        MacroOp op;
        op.kind = OpKind::Store;
        op.width = width;
        op.rm = src;
        op.rn = base;
        op.imm = disp;
        buf_.push(op);
    }

    void
    emitGlobalAddr(std::uint8_t dst, int sym) override
    {
        MacroOp op;
        op.kind = OpKind::MovRI;
        op.rd = dst;
        // Placeholder immediate outside the imm8 range so the layout
        // pass picks the long encoding the relocated address needs.
        op.imm = 0x7fffffff;
        buf_.pushReloc(op, RelocKind::DataAbs, sym);
    }

    void
    emitCmpRR(std::uint8_t a, std::uint8_t b) override
    {
        MacroOp op;
        op.kind = OpKind::CmpRR;
        op.rn = a;
        op.rm = b;
        buf_.push(op);
    }

    void
    emitCmpRI(std::uint8_t a, std::int32_t imm) override
    {
        MacroOp op;
        op.kind = OpKind::CmpRI;
        op.rn = a;
        op.imm = imm;
        buf_.push(op);
    }

    void
    emitBranchCond(isa::Cond cond, int label) override
    {
        MacroOp op;
        op.kind = OpKind::BrCond;
        op.cond = cond;
        buf_.pushReloc(op, RelocKind::Code, label);
    }

    void
    emitJump(int label) override
    {
        MacroOp op;
        op.kind = OpKind::Jump;
        buf_.pushReloc(op, RelocKind::Code, label);
    }

    void
    emitCall(int func_label) override
    {
        MacroOp op;
        op.kind = OpKind::Call;
        buf_.pushReloc(op, RelocKind::Code, func_label);
    }

    void
    emitSyscall() override
    {
        MacroOp op;
        op.kind = OpKind::Syscall;
        buf_.push(op);
    }

    /**
     * Fold Load (word) + Bin whose second operand is the loaded value
     * into one DX86 load-op instruction when the load has exactly that
     * single use.
     */
    std::size_t
    tryFuse(const Block &block, std::size_t ii) override
    {
        if (ii + 1 >= block.insts.size())
            return 0;
        const Inst &ld = block.insts[ii];
        const Inst &bin = block.insts[ii + 1];
        if (ld.op != IrOp::Load || ld.width != MemWidth::Word)
            return 0;
        if (bin.op != IrOp::Bin || bin.b != ld.dst || bin.a == ld.dst)
            return 0;
        if (useCount(ld.dst) != 1)
            return 0;

        // Predict operand registers without emitting spill reloads so
        // bailing out stays side-effect free.
        const Location &a_loc = loc(bin.a);
        const Location &base_loc = loc(ld.a);
        const std::uint8_t a_pred = a_loc.inReg ? a_loc.reg : kScratchA;
        const std::uint8_t base_pred =
            base_loc.inReg ? base_loc.reg : kScratchB;
        const std::uint8_t d_pred = defReg(bin.dst, kScratchA);
        if (d_pred == base_pred && d_pred != a_pred)
            return 0; // the mov below would clobber the base

        const std::uint8_t a = useReg(bin.a, kScratchA);
        const std::uint8_t base = useReg(ld.a, kScratchB);
        const std::uint8_t d = defReg(bin.dst, kScratchA);
        checkDisp(ld.imm);
        if (d != a)
            emitMovRR(d, a);
        MacroOp op;
        op.kind = OpKind::LoadOp;
        op.func = bin.func;
        op.rd = d;
        op.rn = base;
        op.imm = ld.imm;
        buf_.push(op);
        finishDef(bin.dst, d);
        return 2;
    }

  private:
    void
    pushAluRR(AluFunc func, std::uint8_t dst, std::uint8_t src)
    {
        MacroOp op;
        op.kind = OpKind::AluRR;
        op.func = func;
        op.rd = op.rn = dst;
        op.rm = src;
        buf_.push(op);
    }

    static void
    checkDisp(std::int32_t disp)
    {
        if (disp < -32768 || disp > 32767)
            panic("DX86 displacement %s out of disp16 range", disp);
    }
};

} // namespace

void
runX86Codegen(const Module &module, const Function &func,
              AsmBuffer &buffer)
{
    X86Codegen(module, func, buffer).run();
}

} // namespace dfi::ir

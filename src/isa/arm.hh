/**
 * @file
 * DARM instruction encoding and decoding.
 *
 * DARM is the ARM-flavoured synthetic ISA: little-endian, fixed 4-byte
 * instructions, three-operand ALU ops, strict load/store architecture,
 * BL/BX link-register calls, MOVW/MOVT for 32-bit immediates.
 *
 * Word layout (bit 31 down to 0):
 *   [op:8][rd:4][rn:4][rm:4][imm12:12]
 *
 * Opcode map:
 *   0x00 NOP  0x01 RET(=BX LR)  0x02 HLT  0x03 SVC
 *   0x10+f ALU rd, rn, rm
 *   0x20+f ALU rd, rn, #imm12         (zero-extended)
 *   0x40 MOV rd, rm
 *   0x41 MOVW rd, #imm16              (imm16 = rm:imm12)
 *   0x42 MOVT rd, #imm16
 *   0x43/44/45 LDR/LDRH/LDRB rd, [rn + #imm12]
 *   0x46/47/48 STR/STRH/STRB rm, [rn + #imm12]
 *   0x49 CMP rn, rm    0x4A CMP rn, #imm12
 *   0x50+cc Bcc #rel   (signed 20-bit word offset in rd:rn:rm:imm12)
 *   0x5A B #rel24      0x5B BL #rel24  (signed 24-bit word offset)
 *   0x5C BX rm
 * Any other opcode byte decodes to Illegal (length 4).
 *
 * Branch displacements are relative to the next instruction (pc + 4)
 * and are encoded in words (offset / 4); MacroOp::imm always holds the
 * byte displacement.
 */

#ifndef DFI_ISA_ARM_HH
#define DFI_ISA_ARM_HH

#include <cstdint>
#include <vector>

#include "isa/macroop.hh"

namespace dfi::isa
{

/** Every DARM instruction is 4 bytes. */
constexpr std::size_t kArmInsnBytes = 4;

/** Append the 4-byte encoding of `op` to `out`. */
void armEncode(const MacroOp &op, std::vector<std::uint8_t> &out);

/**
 * Decode 4 bytes at `bytes` (with `avail` readable).  Returns Illegal
 * when fewer than 4 bytes are available or the opcode is unknown.
 */
MacroOp armDecode(const std::uint8_t *bytes, std::size_t avail);

} // namespace dfi::isa

#endif // DFI_ISA_ARM_HH

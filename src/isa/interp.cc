#include "isa/interp.hh"

#include "isa/arm.hh"
#include "isa/x86.hh"

namespace dfi::isa
{

namespace
{

/** Direct main-memory port for the interpreter's syscalls. */
class DirectPort : public syskit::SysMemPort
{
  public:
    explicit DirectPort(const syskit::GuestMemory &memory)
        : memory_(memory)
    {}

    bool
    readByte(std::uint32_t addr, std::uint8_t *out) override
    {
        std::uint32_t value = 0;
        if (memory_.read(addr, 1, &value) != syskit::MemFault::None)
            return false;
        *out = static_cast<std::uint8_t>(value);
        return true;
    }

  private:
    const syskit::GuestMemory &memory_;
};

} // namespace

Interpreter::Interpreter(const Image &image)
    : isa_(image.isa), memory_(image.makeMemory())
{
    arch_.pc = image.entry;
    arch_.regs[kRegSp] = image.stackTop;
}

bool
Interpreter::step(syskit::RunRecord &record)
{
    auto crash = [&](const std::string &why) {
        record.term = syskit::Termination::ProcessCrash;
        record.detail = why;
        return false;
    };

    // Fetch: up to 6 bytes (longest DX86 instruction).
    std::uint8_t bytes[8] = {};
    std::size_t avail = 0;
    for (; avail < 6; ++avail) {
        std::uint32_t b = 0;
        if (memory_.read(arch_.pc + static_cast<std::uint32_t>(avail), 1,
                         &b) != syskit::MemFault::None) {
            break;
        }
        bytes[avail] = static_cast<std::uint8_t>(b);
    }
    if (avail == 0)
        return crash("fetch fault at pc");

    const MacroOp op = isa_ == IsaKind::X86 ? x86Decode(bytes, avail)
                                            : armDecode(bytes, avail);
    const std::uint32_t next_pc = arch_.pc + op.length;
    ++icount_;

    auto &regs = arch_.regs;
    const Flags flags = Flags::unpack(regs[kRegFlags]);

    auto mem_read = [&](std::uint32_t addr, MemWidth width,
                        std::uint32_t *value) {
        const auto w = static_cast<std::uint32_t>(width);
        if (addr % w != 0)
            os_.raiseDue("alignment-fixup", arch_.pc);
        return memory_.read(addr, w, value) == syskit::MemFault::None;
    };
    auto mem_write = [&](std::uint32_t addr, MemWidth width,
                         std::uint32_t value) {
        const auto w = static_cast<std::uint32_t>(width);
        if (addr % w != 0)
            os_.raiseDue("alignment-fixup", arch_.pc);
        return memory_.write(addr, w, value) == syskit::MemFault::None;
    };
    auto alu = [&](AluFunc func, std::uint32_t a, std::uint32_t b) {
        const AluResult r = evalAlu(func, a, b);
        if (r.divByZero)
            os_.raiseDue("div-zero", arch_.pc);
        return r.value;
    };

    switch (op.kind) {
      case OpKind::Nop:
        break;
      case OpKind::Illegal:
        return crash("illegal instruction");
      case OpKind::Halt:
        return crash("privileged instruction (hlt) in user mode");
      case OpKind::AluRR:
        regs[op.rd] = alu(op.func, regs[op.rn], regs[op.rm]);
        break;
      case OpKind::AluRI:
        regs[op.rd] =
            alu(op.func, regs[op.rn], static_cast<std::uint32_t>(op.imm));
        break;
      case OpKind::LoadOp: {
        const std::uint32_t addr =
            regs[op.rn] + static_cast<std::uint32_t>(op.imm);
        std::uint32_t value = 0;
        if (!mem_read(addr, MemWidth::Word, &value))
            return crash("data fault (load-op)");
        regs[op.rd] = alu(op.func, regs[op.rd], value);
        break;
      }
      case OpKind::MovRR:
        regs[op.rd] = regs[op.rm];
        break;
      case OpKind::MovRI:
        regs[op.rd] = static_cast<std::uint32_t>(op.imm);
        break;
      case OpKind::MovTI:
        regs[op.rd] = (regs[op.rd] & 0xffffu) |
                      (static_cast<std::uint32_t>(op.imm) << 16);
        break;
      case OpKind::Load: {
        const std::uint32_t addr =
            regs[op.rn] + static_cast<std::uint32_t>(op.imm);
        std::uint32_t value = 0;
        if (!mem_read(addr, op.width, &value))
            return crash("data fault (load)");
        regs[op.rd] = value;
        break;
      }
      case OpKind::Store: {
        const std::uint32_t addr =
            regs[op.rn] + static_cast<std::uint32_t>(op.imm);
        if (!mem_write(addr, op.width, regs[op.rm]))
            return crash("data fault (store)");
        break;
      }
      case OpKind::CmpRR:
        regs[kRegFlags] = evalCmp(regs[op.rn], regs[op.rm]).pack();
        break;
      case OpKind::CmpRI:
        regs[kRegFlags] =
            evalCmp(regs[op.rn], static_cast<std::uint32_t>(op.imm))
                .pack();
        break;
      case OpKind::BrCond:
        if (evalCond(op.cond, flags)) {
            arch_.pc = next_pc + static_cast<std::uint32_t>(op.imm);
            return true;
        }
        break;
      case OpKind::Jump:
        arch_.pc = next_pc + static_cast<std::uint32_t>(op.imm);
        return true;
      case OpKind::JumpInd:
        arch_.pc = regs[op.rm];
        return true;
      case OpKind::Call:
      case OpKind::CallInd: {
        const std::uint32_t target =
            op.kind == OpKind::Call
                ? next_pc + static_cast<std::uint32_t>(op.imm)
                : regs[op.rm];
        if (isa_ == IsaKind::X86) {
            regs[kRegSp] -= 4;
            if (!mem_write(regs[kRegSp], MemWidth::Word, next_pc))
                return crash("stack fault (call)");
        } else {
            regs[kRegLr] = next_pc;
        }
        arch_.pc = target;
        return true;
      }
      case OpKind::Ret:
        if (isa_ == IsaKind::X86) {
            std::uint32_t target = 0;
            if (!mem_read(regs[kRegSp], MemWidth::Word, &target))
                return crash("stack fault (ret)");
            regs[kRegSp] += 4;
            arch_.pc = target;
        } else {
            arch_.pc = regs[kRegLr];
        }
        return true;
      case OpKind::Push:
        regs[kRegSp] -= 4;
        if (!mem_write(regs[kRegSp], MemWidth::Word, regs[op.rm]))
            return crash("stack fault (push)");
        break;
      case OpKind::Pop: {
        std::uint32_t value = 0;
        if (!mem_read(regs[kRegSp], MemWidth::Word, &value))
            return crash("stack fault (pop)");
        regs[op.rd] = value;
        regs[kRegSp] += 4;
        break;
      }
      case OpKind::Syscall: {
        DirectPort port(memory_);
        const syskit::SyscallResult result = os_.syscall(
            regs[0], regs[1], regs[2], port, arch_.pc);
        if (result.kernelPanic) {
            record.term = syskit::Termination::KernelPanic;
            record.detail = "unhandled syscall trap";
            return false;
        }
        if (result.exited) {
            record.term = syskit::Termination::Exited;
            record.exitCode = result.exitCode;
            return false;
        }
        regs[0] = result.retval;
        break;
      }
    }

    arch_.pc = next_pc;
    return true;
}

syskit::RunRecord
Interpreter::run(std::uint64_t max_instructions)
{
    syskit::RunRecord record;
    while (icount_ < max_instructions) {
        if (!step(record)) {
            record.cycles = icount_;
            record.instructions = icount_;
            os_.finishInto(record);
            return record;
        }
    }
    record.term = syskit::Termination::CycleLimit;
    record.cycles = icount_;
    record.instructions = icount_;
    os_.finishInto(record);
    return record;
}

} // namespace dfi::isa

/**
 * @file
 * DARM instruction selection.
 *
 * Register convention:
 *   r0..r3   arguments / return value (caller-saved)
 *   r0..r5   caller-saved allocatable
 *   r6..r11  callee-saved allocatable
 *   r12,r13  codegen scratch (never allocated)
 *   r14      LR
 *   r15      SP
 *
 * DARM is a strict load/store target: every memory access is an
 * explicit LDR/STR, 32-bit immediates take MOVW/MOVT pairs, and calls
 * link through LR (saved to the frame in non-leaf functions).  The
 * resulting instruction mix — more instructions, more explicit
 * loads/stores, larger code — is the ARM side of the paper's ISA
 * comparison.
 */

#include "common/logging.hh"
#include "isa/codegen.hh"

namespace dfi::ir
{

namespace
{

using isa::AluFunc;
using isa::MacroOp;
using isa::MemWidth;
using isa::OpKind;

constexpr std::uint8_t kScratchA = 12;
constexpr std::uint8_t kScratchB = 13;

class ArmCodegen : public FunctionCodegen
{
  public:
    using FunctionCodegen::FunctionCodegen;

  protected:
    RegPools
    pools() const override
    {
        return RegPools{{0, 1, 2, 3, 4, 5}, {6, 7, 8, 9, 10, 11}};
    }

    std::uint8_t scratchA() const override { return kScratchA; }
    std::uint8_t scratchB() const override { return kScratchB; }

    void
    emitPrologue() override
    {
        // Frame: [marshal | spills | saved LR | saved callee regs].
        savedBase_ = frameSize();
        const std::int32_t total =
            savedBase_ +
            4 * (1 + static_cast<std::int32_t>(
                         alloc_.usedCalleeSaved.size()));
        pushAluRI(AluFunc::Sub, isa::kRegSp, isa::kRegSp, total);
        pushMem(OpKind::Store, isa::kRegLr, isa::kRegSp, savedBase_);
        std::int32_t off = savedBase_ + 4;
        for (std::uint8_t r : alloc_.usedCalleeSaved) {
            pushMem(OpKind::Store, r, isa::kRegSp, off);
            off += 4;
        }
        totalFrame_ = total;
    }

    void
    emitEpilogue() override
    {
        pushMem(OpKind::Load, isa::kRegLr, isa::kRegSp, savedBase_);
        std::int32_t off = savedBase_ + 4;
        for (std::uint8_t r : alloc_.usedCalleeSaved) {
            pushMem(OpKind::Load, r, isa::kRegSp, off);
            off += 4;
        }
        pushAluRI(AluFunc::Add, isa::kRegSp, isa::kRegSp, totalFrame_);
        MacroOp ret;
        ret.kind = OpKind::Ret;
        buf_.push(ret);
    }

    void
    emitMovRR(std::uint8_t dst, std::uint8_t src) override
    {
        MacroOp op;
        op.kind = OpKind::MovRR;
        op.rd = dst;
        op.rm = src;
        buf_.push(op);
    }

    void
    emitMovImm32(std::uint8_t dst, std::int32_t imm) override
    {
        const auto u = static_cast<std::uint32_t>(imm);
        MacroOp movw;
        movw.kind = OpKind::MovRI;
        movw.rd = dst;
        movw.imm = static_cast<std::int32_t>(u & 0xffffu);
        buf_.push(movw);
        if ((u >> 16) != 0) {
            MacroOp movt;
            movt.kind = OpKind::MovTI;
            movt.rd = dst;
            movt.imm = static_cast<std::int32_t>(u >> 16);
            buf_.push(movt);
        }
    }

    void
    emitLoadSp(std::uint8_t reg, std::int32_t off) override
    {
        emitLoad(reg, isa::kRegSp, off, MemWidth::Word);
    }

    void
    emitStoreSp(std::uint8_t reg, std::int32_t off) override
    {
        emitStore(reg, isa::kRegSp, off, MemWidth::Word);
    }

    void
    emitBin(AluFunc func, std::uint8_t dst, std::uint8_t a,
            std::uint8_t b) override
    {
        MacroOp op;
        op.kind = OpKind::AluRR;
        op.func = func;
        op.rd = dst;
        op.rn = a;
        op.rm = b;
        buf_.push(op);
    }

    void
    emitBinImm(AluFunc func, std::uint8_t dst, std::uint8_t a,
               std::int32_t imm) override
    {
        // imm12 is unsigned; fold negative add/sub, otherwise
        // materialize through a scratch register.
        if (imm >= 0 && imm <= 0xfff) {
            pushAluRI3(func, dst, a, imm);
            return;
        }
        if (imm < 0 && imm >= -0xfff &&
            (func == AluFunc::Add || func == AluFunc::Sub)) {
            pushAluRI3(func == AluFunc::Add ? AluFunc::Sub : AluFunc::Add,
                       dst, a, -imm);
            return;
        }
        // General case: scratchB is never an operand register here
        // (operands were materialized into scratchA at most).
        emitMovImm32(kScratchB, imm);
        emitBin(func, dst, a, kScratchB);
    }

    void
    emitLoad(std::uint8_t dst, std::uint8_t base, std::int32_t disp,
             MemWidth width) override
    {
        const std::uint8_t real_base = fixupBase(base, disp);
        pushMemW(OpKind::Load, dst, real_base,
                 real_base == base ? disp : 0, width);
    }

    void
    emitStore(std::uint8_t src, std::uint8_t base, std::int32_t disp,
              MemWidth width) override
    {
        // fixupBase may use scratchB; the store source may be in
        // scratchB as well, so route the address through scratchA
        // variants carefully: use scratchB for the address only when
        // the data is elsewhere.
        if (disp >= 0 && disp <= 0xfff) {
            pushMemW(OpKind::Store, src, base, disp, width);
            return;
        }
        const std::uint8_t addr_scratch =
            src == kScratchB ? kScratchA : kScratchB;
        if (src == kScratchB && base == kScratchA)
            panic("DARM store: scratch collision (base and data)");
        emitMovImm32(addr_scratch, disp);
        emitBin(AluFunc::Add, addr_scratch, addr_scratch, base);
        pushMemW(OpKind::Store, src, addr_scratch, 0, width);
    }

    void
    emitGlobalAddr(std::uint8_t dst, int sym) override
    {
        MacroOp movw;
        movw.kind = OpKind::MovRI;
        movw.rd = dst;
        buf_.pushReloc(movw, RelocKind::DataLo, sym);
        MacroOp movt;
        movt.kind = OpKind::MovTI;
        movt.rd = dst;
        buf_.pushReloc(movt, RelocKind::DataHi, sym);
    }

    void
    emitCmpRR(std::uint8_t a, std::uint8_t b) override
    {
        MacroOp op;
        op.kind = OpKind::CmpRR;
        op.rn = a;
        op.rm = b;
        buf_.push(op);
    }

    void
    emitCmpRI(std::uint8_t a, std::int32_t imm) override
    {
        if (imm >= 0 && imm <= 0xfff) {
            MacroOp op;
            op.kind = OpKind::CmpRI;
            op.rn = a;
            op.imm = imm;
            buf_.push(op);
            return;
        }
        // CMP operand register: scratchB (operand a is at most in
        // scratchA).
        emitMovImm32(kScratchB, imm);
        emitCmpRR(a, kScratchB);
    }

    void
    emitBranchCond(isa::Cond cond, int label) override
    {
        MacroOp op;
        op.kind = OpKind::BrCond;
        op.cond = cond;
        buf_.pushReloc(op, RelocKind::Code, label);
    }

    void
    emitJump(int label) override
    {
        MacroOp op;
        op.kind = OpKind::Jump;
        buf_.pushReloc(op, RelocKind::Code, label);
    }

    void
    emitCall(int func_label) override
    {
        MacroOp op;
        op.kind = OpKind::Call;
        buf_.pushReloc(op, RelocKind::Code, func_label);
    }

    void
    emitSyscall() override
    {
        MacroOp op;
        op.kind = OpKind::Syscall;
        buf_.push(op);
    }

  private:
    void
    pushAluRI(AluFunc func, std::uint8_t dst, std::uint8_t a,
              std::int32_t imm)
    {
        if (imm < 0 || imm > 0xfff)
            panic("DARM imm12 out of range in prologue: %s", imm);
        pushAluRI3(func, dst, a, imm);
    }

    void
    pushAluRI3(AluFunc func, std::uint8_t dst, std::uint8_t a,
               std::int32_t imm)
    {
        MacroOp op;
        op.kind = OpKind::AluRI;
        op.func = func;
        op.rd = dst;
        op.rn = a;
        op.imm = imm;
        buf_.push(op);
    }

    void
    pushMem(OpKind kind, std::uint8_t reg, std::uint8_t base,
            std::int32_t disp)
    {
        pushMemW(kind, reg, base, disp, MemWidth::Word);
    }

    void
    pushMemW(OpKind kind, std::uint8_t reg, std::uint8_t base,
             std::int32_t disp, MemWidth width)
    {
        if (disp < 0 || disp > 0xfff)
            panic("DARM mem disp %s out of imm12 range", disp);
        MacroOp op;
        op.kind = kind;
        op.width = width;
        if (kind == OpKind::Load)
            op.rd = reg;
        else
            op.rm = reg;
        op.rn = base;
        op.imm = disp;
        buf_.push(op);
    }

    /** Fold an out-of-range displacement into scratchB. */
    std::uint8_t
    fixupBase(std::uint8_t base, std::int32_t disp)
    {
        if (disp >= 0 && disp <= 0xfff)
            return base;
        emitMovImm32(kScratchB, disp);
        emitBin(AluFunc::Add, kScratchB, kScratchB, base);
        return kScratchB;
    }

    std::int32_t savedBase_ = 0;
    std::int32_t totalFrame_ = 0;
};

} // namespace

void
runArmCodegen(const Module &module, const Function &func,
              AsmBuffer &buffer)
{
    ArmCodegen(module, func, buffer).run();
}

} // namespace dfi::ir

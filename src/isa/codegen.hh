/**
 * @file
 * IR-to-ISA compilation: assembly buffer, relocations, and the shared
 * per-function code-generation driver.
 *
 * compileModule() turns an ir::Module into a linked isa::Image for
 * either target.  The driver walks IR in layout order; ISA-specific
 * instruction selection (two-operand DX86 with load-op folding vs
 * three-operand DARM with imm-range fixups) lives in the two
 * FunctionCodegen subclasses.
 */

#ifndef DFI_ISA_CODEGEN_HH
#define DFI_ISA_CODEGEN_HH

#include <cstdint>
#include <vector>

#include "isa/image.hh"
#include "isa/ir.hh"
#include "isa/liveness.hh"
#include "isa/regalloc.hh"

namespace dfi::ir
{

/** Relocation kinds carried by assembly instructions. */
enum class RelocKind : std::uint8_t
{
    None,
    Code,    //!< pc-relative to a label (branches/calls)
    DataAbs, //!< absolute VA of a data symbol (DX86 MOV ri)
    DataLo,  //!< low 16 bits of a data symbol VA (DARM MOVW)
    DataHi   //!< high 16 bits of a data symbol VA (DARM MOVT)
};

/** One symbolic instruction awaiting layout/relocation. */
struct AsmInsn
{
    isa::MacroOp op;
    RelocKind reloc = RelocKind::None;
    int label = -1; //!< Code reloc target label
    int sym = -1;   //!< Data reloc global index
};

/** Growable instruction buffer with labels. */
class AsmBuffer
{
  public:
    /** Reserve `count` labels up front (function entry labels). */
    explicit AsmBuffer(int count = 0) : labelPos_(count, -1) {}

    int newLabel();
    /** Bind `label` to the next emitted instruction. */
    void bindLabel(int label);
    void push(const isa::MacroOp &op);
    void pushReloc(const isa::MacroOp &op, RelocKind reloc, int target);

    const std::vector<AsmInsn> &insns() const { return insns_; }
    const std::vector<int> &labelPositions() const { return labelPos_; }

  private:
    std::vector<AsmInsn> insns_;
    std::vector<int> labelPos_;
};

/**
 * Compile a verified module to a linked image.
 * @param module   the IR program (must contain a 'main' function)
 * @param isa      target ISA
 * @param mem_size total guest memory (code+data must fit well below)
 */
isa::Image compileModule(const Module &module, isa::IsaKind isa,
                         std::uint32_t mem_size = 0x400000);

/**
 * Shared per-function code generator.  Subclasses provide the
 * target-specific instruction selection.
 */
class FunctionCodegen
{
  public:
    FunctionCodegen(const Module &module, const Function &func,
                    AsmBuffer &buffer);
    virtual ~FunctionCodegen() = default;

    /** Generate the complete function (prologue .. epilogue). */
    void run();

  protected:
    // --- queried from subclasses --------------------------------------
    virtual RegPools pools() const = 0;
    virtual std::uint8_t scratchA() const = 0;
    virtual std::uint8_t scratchB() const = 0;

    // --- target instruction selection ----------------------------------
    virtual void emitPrologue() = 0;
    virtual void emitEpilogue() = 0;
    virtual void emitMovRR(std::uint8_t dst, std::uint8_t src) = 0;
    virtual void emitMovImm32(std::uint8_t dst, std::int32_t imm) = 0;
    /** reg <- [sp + off] */
    virtual void emitLoadSp(std::uint8_t reg, std::int32_t off) = 0;
    /** [sp + off] <- reg */
    virtual void emitStoreSp(std::uint8_t reg, std::int32_t off) = 0;
    virtual void emitBin(isa::AluFunc func, std::uint8_t dst,
                         std::uint8_t a, std::uint8_t b) = 0;
    virtual void emitBinImm(isa::AluFunc func, std::uint8_t dst,
                            std::uint8_t a, std::int32_t imm) = 0;
    virtual void emitLoad(std::uint8_t dst, std::uint8_t base,
                          std::int32_t disp, isa::MemWidth width) = 0;
    virtual void emitStore(std::uint8_t src, std::uint8_t base,
                           std::int32_t disp, isa::MemWidth width) = 0;
    virtual void emitGlobalAddr(std::uint8_t dst, int sym) = 0;
    virtual void emitCmpRR(std::uint8_t a, std::uint8_t b) = 0;
    virtual void emitCmpRI(std::uint8_t a, std::int32_t imm) = 0;
    virtual void emitBranchCond(isa::Cond cond, int label) = 0;
    virtual void emitJump(int label) = 0;
    virtual void emitCall(int func_label) = 0;
    virtual void emitSyscall() = 0;

    /**
     * Target peephole hook: emit `inst` (at index `ii` of `block`)
     * fused with its successor if profitable.  Returns the number of
     * IR instructions consumed (0 = no fusion, driver handles inst).
     */
    virtual std::size_t
    tryFuse(const Block &block, std::size_t ii)
    {
        (void)block;
        (void)ii;
        return 0;
    }

    // --- shared helpers for subclasses ---------------------------------
    /** Frame offset of a spill slot. */
    std::int32_t slotOffset(int slot) const;
    /** Frame offset of arg-marshal slot i. */
    std::int32_t marshalOffset(int i) const { return 4 * i; }
    /** Total frame size below the saved-register area. */
    std::int32_t frameSize() const { return frameSize_; }

    /** Location of a vreg. */
    const Location &loc(VReg v) const { return alloc_.locs[v]; }
    /** Number of uses of a vreg (for fusion legality). */
    int useCount(VReg v) const
    {
        return liveness_.intervals[v].useCount;
    }

    /**
     * Materialize a vreg for reading: its register, or a scratch
     * loaded from its slot.
     */
    std::uint8_t useReg(VReg v, std::uint8_t scratch);
    /** Register to compute a def into. */
    std::uint8_t defReg(VReg v, std::uint8_t scratch);
    /** Finish a def: spill if v lives in a slot. */
    void finishDef(VReg v, std::uint8_t reg);

    const Module &module_;
    const Function &func_;
    AsmBuffer &buf_;
    LivenessInfo liveness_;
    Allocation alloc_;
    std::vector<int> blockLabels_;
    int epilogueLabel_ = -1;
    std::int32_t frameSize_ = 0;

  private:
    void emitInst(const Block &block, std::size_t ii, std::size_t bi);
    void emitParamMoves();
    void emitCallLike(const Inst &inst);
    void finalizeFrame();
};

} // namespace dfi::ir

#endif // DFI_ISA_CODEGEN_HH

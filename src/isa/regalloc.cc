#include "isa/regalloc.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dfi::ir
{

Allocation
linearScan(const LivenessInfo &liveness, const RegPools &pools)
{
    Allocation alloc;
    alloc.locs.resize(liveness.intervals.size());

    // Sort live intervals by start position.
    std::vector<const LiveInterval *> order;
    order.reserve(liveness.intervals.size());
    for (const LiveInterval &iv : liveness.intervals) {
        if (iv.empty())
            alloc.locs[iv.vreg].dead = true;
        else
            order.push_back(&iv);
    }
    std::sort(order.begin(), order.end(),
              [](const LiveInterval *a, const LiveInterval *b) {
                  if (a->start != b->start)
                      return a->start < b->start;
                  return a->vreg < b->vreg;
              });

    std::vector<bool> busy(32, false); // indexed by physical register
    struct Active
    {
        int end;
        std::uint8_t reg;
    };
    std::vector<Active> active;

    std::vector<bool> callee_used(32, false);

    for (const LiveInterval *iv : order) {
        // Expire finished intervals.
        for (std::size_t i = 0; i < active.size();) {
            if (active[i].end < iv->start) {
                busy[active[i].reg] = false;
                active[i] = active.back();
                active.pop_back();
            } else {
                ++i;
            }
        }

        auto try_pool =
            [&](const std::vector<std::uint8_t> &pool) -> int {
            for (std::uint8_t r : pool) {
                if (!busy[r])
                    return r;
            }
            return -1;
        };

        int reg = -1;
        if (iv->crossesCall) {
            reg = try_pool(pools.calleeSaved);
        } else {
            reg = try_pool(pools.callerSaved);
            if (reg < 0)
                reg = try_pool(pools.calleeSaved);
        }

        Location &loc = alloc.locs[iv->vreg];
        if (reg >= 0) {
            loc.inReg = true;
            loc.reg = static_cast<std::uint8_t>(reg);
            busy[reg] = true;
            active.push_back({iv->end, loc.reg});
            for (std::uint8_t r : pools.calleeSaved) {
                if (r == reg)
                    callee_used[r] = true;
            }
        } else {
            loc.inReg = false;
            loc.slot = alloc.numSpillSlots++;
        }
    }

    for (std::uint8_t r = 0; r < 32; ++r) {
        if (callee_used[r])
            alloc.usedCalleeSaved.push_back(r);
    }
    return alloc;
}

} // namespace dfi::ir

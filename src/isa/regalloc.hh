/**
 * @file
 * Linear-scan register allocation over live intervals.
 *
 * Values live across calls are only placed in callee-saved registers
 * (or spilled); values with call-free intervals prefer caller-saved
 * registers.  Spilled vregs get frame slots; the code generators load
 * them into scratch registers at each use.
 */

#ifndef DFI_ISA_REGALLOC_HH
#define DFI_ISA_REGALLOC_HH

#include <cstdint>
#include <vector>

#include "isa/liveness.hh"

namespace dfi::ir
{

/** The allocatable register sets of a target. */
struct RegPools
{
    std::vector<std::uint8_t> callerSaved;
    std::vector<std::uint8_t> calleeSaved;
};

/** Where a vreg lives. */
struct Location
{
    bool inReg = false;
    std::uint8_t reg = 0; //!< physical register (if inReg)
    int slot = -1;        //!< spill slot index (if !inReg)
    bool dead = false;    //!< vreg never used
};

/** Allocation result for one function. */
struct Allocation
{
    std::vector<Location> locs;                 //!< per vreg
    std::vector<std::uint8_t> usedCalleeSaved;  //!< sorted
    int numSpillSlots = 0;
};

/** Run linear scan for one function. */
Allocation linearScan(const LivenessInfo &liveness,
                      const RegPools &pools);

} // namespace dfi::ir

#endif // DFI_ISA_REGALLOC_HH

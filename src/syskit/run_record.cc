#include "syskit/run_record.hh"

#include "common/logging.hh"

namespace dfi::syskit
{

std::string
terminationName(Termination term)
{
    switch (term) {
      case Termination::Exited:
        return "exited";
      case Termination::ProcessCrash:
        return "process-crash";
      case Termination::KernelPanic:
        return "kernel-panic";
      case Termination::SimAssert:
        return "sim-assert";
      case Termination::SimCrash:
        return "sim-crash";
      case Termination::CycleLimit:
        return "cycle-limit";
    }
    panic("terminationName: bad value %s", static_cast<int>(term));
}

} // namespace dfi::syskit

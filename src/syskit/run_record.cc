#include "syskit/run_record.hh"

#include "common/logging.hh"
#include "common/serial.hh"

namespace dfi::syskit
{

std::string
terminationName(Termination term)
{
    switch (term) {
      case Termination::Exited:
        return "exited";
      case Termination::ProcessCrash:
        return "process-crash";
      case Termination::KernelPanic:
        return "kernel-panic";
      case Termination::SimAssert:
        return "sim-assert";
      case Termination::SimCrash:
        return "sim-crash";
      case Termination::CycleLimit:
        return "cycle-limit";
    }
    panic("terminationName: bad value %s", static_cast<int>(term));
}

template <class Ar>
void
DueEvent::serializeState(Ar &ar)
{
    serial::value(ar, kind);
    serial::value(ar, pc);
}

template void DueEvent::serializeState(serial::Writer &);
template void DueEvent::serializeState(serial::Reader &);

template <class Ar>
void
RunRecord::serializeState(Ar &ar)
{
    serial::value(ar, term);
    serial::value(ar, exitCode);
    serial::value(ar, output);
    serial::value(ar, dueEvents);
    serial::value(ar, detail);
    serial::value(ar, cycles);
    serial::value(ar, instructions);
    serial::value(ar, earlyStopMasked);
    serial::value(ar, earlyStopReason);
    serial::value(ar, stats);
}

template void RunRecord::serializeState(serial::Writer &);
template void RunRecord::serializeState(serial::Reader &);

} // namespace dfi::syskit

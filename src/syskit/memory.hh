/**
 * @file
 * Guest physical memory and access-fault taxonomy.
 *
 * GuestMemory is the authoritative flat byte store of the simulated
 * machine.  Accesses report faults instead of throwing: corrupted
 * state routinely produces wild addresses, and the machines must stay
 * UB-free while converting them into the guest-visible fault taxonomy.
 */

#ifndef DFI_SYSKIT_MEMORY_HH
#define DFI_SYSKIT_MEMORY_HH

#include <cstdint>
#include <string>

#include "storage/cow_buffer.hh"
#include "syskit/layout.hh"

namespace dfi::syskit
{

/** Faults a memory access can raise. */
enum class MemFault : std::uint8_t
{
    None,
    Unmapped,    //!< below kCodeBase or beyond memory size
    WriteToCode, //!< store into the read-only code segment
};

/**
 * Flat guest memory with segment protection.
 *
 * The byte store sits in copy-on-write pages
 * (storage/cow_buffer.hh): checkpoint copies of a core share the
 * whole image and pay only for the pages a run subsequently writes.
 */
class GuestMemory
{
  public:
    GuestMemory() = default;

    /**
     * @param size total bytes of guest memory
     * @param code_limit first address above the read-only code segment
     */
    GuestMemory(std::uint32_t size, std::uint32_t code_limit);

    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(bytes_.size());
    }

    /** True if [addr, addr+len) is fully inside mapped memory. */
    bool mapped(std::uint32_t addr, std::uint32_t len) const;

    /** Check an access; returns the fault it would raise. */
    MemFault checkAccess(std::uint32_t addr, std::uint32_t len,
                         bool is_write) const;

    /**
     * Read `len` bytes (little-endian value for len <= 4).
     * @return MemFault::None and sets *value on success.
     */
    MemFault read(std::uint32_t addr, std::uint32_t len,
                  std::uint32_t *value) const;

    /** Write `len` low-order bytes of value (little-endian). */
    MemFault write(std::uint32_t addr, std::uint32_t len,
                   std::uint32_t value);

    /** Bulk reads/writes for loaders and the system layer. */
    MemFault readBlock(std::uint32_t addr, std::uint32_t len,
                       std::uint8_t *out) const;
    MemFault writeBlock(std::uint32_t addr, std::uint32_t len,
                        const std::uint8_t *in);

    /**
     * Privileged access that ignores write protection (used by the
     * loader and by cache writebacks, which act on physical memory).
     */
    void pokeBytes(std::uint32_t addr, std::uint32_t len,
                   const std::uint8_t *in);
    void peekBytes(std::uint32_t addr, std::uint32_t len,
                   std::uint8_t *out) const;

    /** Serialize the byte store and segment limit (cache spill). */
    template <class Ar> void serializeState(Ar &ar);

    /** Backing pages (checkpoint memory-budget accounting). */
    std::size_t backingPages() const { return bytes_.pageCount(); }
    /** Pages still shared with a checkpoint or sibling copy. */
    std::size_t sharedBackingPages() const
    {
        return bytes_.sharedPageCount();
    }

  private:
    /** 4 KiB copy-on-write pages of guest bytes. */
    dfi::CowBuffer<std::uint8_t, 4096> bytes_;
    std::uint32_t codeLimit_ = kCodeBase;
};

} // namespace dfi::syskit

#endif // DFI_SYSKIT_MEMORY_HH

/**
 * @file
 * Guest physical memory and access-fault taxonomy.
 *
 * GuestMemory is the authoritative flat byte store of the simulated
 * machine.  Accesses report faults instead of throwing: corrupted
 * state routinely produces wild addresses, and the machines must stay
 * UB-free while converting them into the guest-visible fault taxonomy.
 */

#ifndef DFI_SYSKIT_MEMORY_HH
#define DFI_SYSKIT_MEMORY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "syskit/layout.hh"

namespace dfi::syskit
{

/** Faults a memory access can raise. */
enum class MemFault : std::uint8_t
{
    None,
    Unmapped,    //!< below kCodeBase or beyond memory size
    WriteToCode, //!< store into the read-only code segment
};

/** Flat guest memory with segment protection. */
class GuestMemory
{
  public:
    GuestMemory() = default;

    /**
     * @param size total bytes of guest memory
     * @param code_limit first address above the read-only code segment
     */
    GuestMemory(std::uint32_t size, std::uint32_t code_limit);

    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(bytes_.size());
    }

    /** True if [addr, addr+len) is fully inside mapped memory. */
    bool mapped(std::uint32_t addr, std::uint32_t len) const;

    /** Check an access; returns the fault it would raise. */
    MemFault checkAccess(std::uint32_t addr, std::uint32_t len,
                         bool is_write) const;

    /**
     * Read `len` bytes (little-endian value for len <= 4).
     * @return MemFault::None and sets *value on success.
     */
    MemFault read(std::uint32_t addr, std::uint32_t len,
                  std::uint32_t *value) const;

    /** Write `len` low-order bytes of value (little-endian). */
    MemFault write(std::uint32_t addr, std::uint32_t len,
                   std::uint32_t value);

    /** Bulk reads/writes for loaders and the system layer. */
    MemFault readBlock(std::uint32_t addr, std::uint32_t len,
                       std::uint8_t *out) const;
    MemFault writeBlock(std::uint32_t addr, std::uint32_t len,
                        const std::uint8_t *in);

    /**
     * Privileged access that ignores write protection (used by the
     * loader and by cache writebacks, which act on physical memory).
     */
    void pokeBytes(std::uint32_t addr, std::uint32_t len,
                   const std::uint8_t *in);
    void peekBytes(std::uint32_t addr, std::uint32_t len,
                   std::uint8_t *out) const;

    /** Raw backing store (for checkpoint copies). */
    const std::vector<std::uint8_t> &raw() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
    std::uint32_t codeLimit_ = kCodeBase;
};

} // namespace dfi::syskit

#endif // DFI_SYSKIT_MEMORY_HH

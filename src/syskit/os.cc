#include "syskit/os.hh"

namespace dfi::syskit
{

SyscallResult
MiniOs::syscall(std::uint32_t num, std::uint32_t arg1, std::uint32_t arg2,
                SysMemPort &port, std::uint32_t pc)
{
    SyscallResult result;
    switch (num) {
      case kSysWrite: {
        // write(buf = arg1, len = arg2)
        if (arg1 < kCodeBase) {
            // Buffer points into the kernel-reserved page: the kernel
            // itself faults while copying -> unrecoverable.
            result.kernelPanic = true;
            return result;
        }
        std::uint32_t written = 0;
        for (std::uint32_t i = 0; i < arg2; ++i) {
            if (output_.size() >= kMaxOutputBytes) {
                raiseDue("write-overflow", pc);
                break;
            }
            std::uint8_t byte = 0;
            if (!port.readByte(arg1 + i, &byte)) {
                raiseDue("efault", pc);
                break;
            }
            output_.push_back(byte);
            ++written;
        }
        result.retval = written;
        return result;
      }
      case kSysExit:
        result.exited = true;
        result.exitCode = arg1;
        return result;
      case kSysBrk:
        if (arg1 > brkTop_)
            brkTop_ = arg1;
        result.retval = brkTop_;
        return result;
      default:
        // Unknown syscall number: the simulated kernel has no handler
        // and the trap escalates to a panic (system crash).
        result.kernelPanic = true;
        return result;
    }
}

void
MiniOs::raiseDue(const std::string &kind, std::uint32_t pc)
{
    // Bound the log: a stuck fault can raise the same indication every
    // cycle for millions of cycles.
    if (dueEvents_.size() < 4096)
        dueEvents_.push_back(DueEvent{kind, pc});
}

void
MiniOs::finishInto(RunRecord &record)
{
    record.output = std::move(output_);
    record.dueEvents = std::move(dueEvents_);
    output_.clear();
    dueEvents_.clear();
}

template <class Ar>
void
MiniOs::serializeState(Ar &ar)
{
    serial::value(ar, output_);
    serial::value(ar, dueEvents_);
    serial::value(ar, brkTop_);
}

template void MiniOs::serializeState(serial::Writer &);
template void MiniOs::serializeState(serial::Reader &);

} // namespace dfi::syskit

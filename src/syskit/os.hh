/**
 * @file
 * The mini operating-system layer.
 *
 * MiniOs implements the guest-visible system behaviour that the
 * paper's full-system setup provides: a syscall interface, survivable
 * exception handling (the DUE indications), and the distinction
 * between a process crash and a kernel panic (system crash).
 *
 * System-call memory accesses are routed through a SysMemPort supplied
 * by the simulator.  This is where the paper's MARSS/QEMU masking
 * effect lives: marssim hands MiniOs a direct main-memory port (QEMU
 * bypasses the simulated caches), while gemsim hands it a through-
 * cache port (gem5 handles the complete system internally), so faults
 * resident in the L1D are invisible to marssim's syscalls but fully
 * visible to gemsim's.
 */

#ifndef DFI_SYSKIT_OS_HH
#define DFI_SYSKIT_OS_HH

#include <cstdint>
#include <vector>

#include "syskit/memory.hh"
#include "syskit/run_record.hh"

namespace dfi::syskit
{

/** Syscall numbers (passed in r0). */
enum : std::uint32_t
{
    kSysWrite = 1, //!< write(r1 = buf, r2 = len) -> bytes written
    kSysExit = 2,  //!< exit(r1 = code)
    kSysBrk = 3,   //!< brk(r1 = new top) -> current top (bump only)
};

/** Memory port the OS uses to read/write guest buffers. */
class SysMemPort
{
  public:
    virtual ~SysMemPort() = default;

    /** Read one byte of guest memory; false on fault. */
    virtual bool readByte(std::uint32_t addr, std::uint8_t *out) = 0;
};

/** Result of dispatching one syscall. */
struct SyscallResult
{
    std::uint32_t retval = 0;
    bool exited = false;
    bool kernelPanic = false;
    std::uint32_t exitCode = 0;
};

/** Per-run operating-system state. */
class MiniOs
{
  public:
    MiniOs() = default;

    /**
     * Dispatch a syscall.
     * @param num   syscall number (r0)
     * @param arg1  first argument (r1)
     * @param arg2  second argument (r2)
     * @param port  memory port for buffer accesses
     * @param pc    pc of the syscall (for DUE logging)
     */
    SyscallResult syscall(std::uint32_t num, std::uint32_t arg1,
                          std::uint32_t arg2, SysMemPort &port,
                          std::uint32_t pc);

    /** Log a survivable exception indication (DUE evidence). */
    void raiseDue(const std::string &kind, std::uint32_t pc);

    /** Output written so far. */
    const std::vector<std::uint8_t> &output() const { return output_; }

    /** DUE events logged so far. */
    const std::vector<DueEvent> &dueEvents() const { return dueEvents_; }

    /** Move the accumulated state into a RunRecord. */
    void finishInto(RunRecord &record);

    /** Serialize accumulated run state (cache spill). */
    template <class Ar> void serializeState(Ar &ar);

    /**
     * Bound on output growth: a corrupted length argument must not let
     * a faulty run allocate unbounded host memory.  Writes beyond the
     * cap turn into an EFAULT-style DUE.
     */
    static constexpr std::uint32_t kMaxOutputBytes = 1 << 20;

  private:
    std::vector<std::uint8_t> output_;
    std::vector<DueEvent> dueEvents_;
    std::uint32_t brkTop_ = 0;
};

} // namespace dfi::syskit

#endif // DFI_SYSKIT_OS_HH

#include "syskit/memory.hh"

#include "common/logging.hh"

namespace dfi::syskit
{

GuestMemory::GuestMemory(std::uint32_t size, std::uint32_t code_limit)
    : bytes_(size, 0), codeLimit_(code_limit)
{
    if (code_limit < kCodeBase || code_limit > size)
        panic("GuestMemory: bad code limit %s for size %s", code_limit,
              size);
}

bool
GuestMemory::mapped(std::uint32_t addr, std::uint32_t len) const
{
    if (addr < kCodeBase)
        return false;
    const std::uint64_t end =
        static_cast<std::uint64_t>(addr) + len;
    return end <= bytes_.size();
}

MemFault
GuestMemory::checkAccess(std::uint32_t addr, std::uint32_t len,
                         bool is_write) const
{
    if (!mapped(addr, len))
        return MemFault::Unmapped;
    if (is_write && addr < codeLimit_)
        return MemFault::WriteToCode;
    return MemFault::None;
}

MemFault
GuestMemory::read(std::uint32_t addr, std::uint32_t len,
                  std::uint32_t *value) const
{
    const MemFault fault = checkAccess(addr, len, false);
    if (fault != MemFault::None)
        return fault;
    std::uint32_t v = 0;
    for (std::uint32_t i = 0; i < len; ++i)
        v |= static_cast<std::uint32_t>(bytes_.get(addr + i)) << (8 * i);
    *value = v;
    return MemFault::None;
}

MemFault
GuestMemory::write(std::uint32_t addr, std::uint32_t len,
                   std::uint32_t value)
{
    const MemFault fault = checkAccess(addr, len, true);
    if (fault != MemFault::None)
        return fault;
    for (std::uint32_t i = 0; i < len; ++i)
        bytes_.set(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
    return MemFault::None;
}

MemFault
GuestMemory::readBlock(std::uint32_t addr, std::uint32_t len,
                       std::uint8_t *out) const
{
    const MemFault fault = checkAccess(addr, len, false);
    if (fault != MemFault::None)
        return fault;
    for (std::uint32_t i = 0; i < len; ++i)
        out[i] = bytes_.get(addr + i);
    return MemFault::None;
}

MemFault
GuestMemory::writeBlock(std::uint32_t addr, std::uint32_t len,
                        const std::uint8_t *in)
{
    const MemFault fault = checkAccess(addr, len, true);
    if (fault != MemFault::None)
        return fault;
    for (std::uint32_t i = 0; i < len; ++i)
        bytes_.set(addr + i, in[i]);
    return MemFault::None;
}

void
GuestMemory::pokeBytes(std::uint32_t addr, std::uint32_t len,
                       const std::uint8_t *in)
{
    if (static_cast<std::uint64_t>(addr) + len > bytes_.size())
        panic("GuestMemory::pokeBytes out of range: %s + %s", addr, len);
    for (std::uint32_t i = 0; i < len; ++i)
        bytes_.set(addr + i, in[i]);
}

void
GuestMemory::peekBytes(std::uint32_t addr, std::uint32_t len,
                       std::uint8_t *out) const
{
    if (static_cast<std::uint64_t>(addr) + len > bytes_.size())
        panic("GuestMemory::peekBytes out of range: %s + %s", addr, len);
    for (std::uint32_t i = 0; i < len; ++i)
        out[i] = bytes_.get(addr + i);
}

template <class Ar>
void
GuestMemory::serializeState(Ar &ar)
{
    serial::value(ar, bytes_);
    serial::value(ar, codeLimit_);
}

template void GuestMemory::serializeState(serial::Writer &);
template void GuestMemory::serializeState(serial::Reader &);

} // namespace dfi::syskit

/**
 * @file
 * The outcome record of one simulated run.
 *
 * A RunRecord captures everything the Parser needs to classify a fault
 * injection run into the paper's six classes (Masked, SDC, DUE,
 * Timeout, Crash, Assert): how the run terminated (including which of
 * the three crash levels — process, system/kernel, simulator), the
 * program's output bytes, the log of survivable exception indications
 * (the DUE evidence), and runtime statistics.
 */

#ifndef DFI_SYSKIT_RUN_RECORD_HH
#define DFI_SYSKIT_RUN_RECORD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace dfi::syskit
{

/** How a simulated run ended. */
enum class Termination : std::uint8_t
{
    Exited,       //!< guest called exit()
    ProcessCrash, //!< guest process killed (segfault, illegal insn, ...)
    KernelPanic,  //!< simulated system unable to recover (system crash)
    SimAssert,    //!< simulator assertion checkpoint fired
    SimCrash,     //!< simulator itself would have crashed
    CycleLimit    //!< exceeded the campaign's timeout bound
};

std::string terminationName(Termination term);

/** One survivable exception indication (evidence for the DUE class). */
struct DueEvent
{
    std::string kind;   //!< e.g. "alignment-fixup", "div-zero", "efault"
    std::uint64_t pc = 0;

    /** Serialize all fields (cache spill). */
    template <class Ar> void serializeState(Ar &ar);
};

/** Complete record of one run. */
struct RunRecord
{
    Termination term = Termination::Exited;
    std::uint32_t exitCode = 0;
    std::vector<std::uint8_t> output;  //!< bytes written via sys_write
    std::vector<DueEvent> dueEvents;   //!< raised-but-survived exceptions
    std::string detail;                //!< crash / assert message
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    bool earlyStopMasked = false;      //!< campaign stopped it as masked
    std::string earlyStopReason;
    dfi::StatSet stats;                //!< simulator runtime statistics

    bool completed() const { return term == Termination::Exited; }

    /** Serialize all fields (cache spill). */
    template <class Ar> void serializeState(Ar &ar);
};

} // namespace dfi::syskit

#endif // DFI_SYSKIT_RUN_RECORD_HH

/**
 * @file
 * Guest virtual address-space layout.
 *
 * Both ISAs use the same simple flat layout.  The first page is never
 * mapped (null-pointer traps), code is read-only/executable, data+bss
 * read-write, and the stack grows down from just below the top of the
 * guest memory.
 */

#ifndef DFI_SYSKIT_LAYOUT_HH
#define DFI_SYSKIT_LAYOUT_HH

#include <cstdint>

namespace dfi::syskit
{

/** Base of the code segment (first mapped address). */
constexpr std::uint32_t kCodeBase = 0x1000;

/** Default guest memory size (4 MiB). */
constexpr std::uint32_t kDefaultMemSize = 0x400000;

/** Page size used by the TLB model. */
constexpr std::uint32_t kPageSize = 0x1000;

/** Alignment between segments. */
constexpr std::uint32_t kSegmentAlign = 0x1000;

} // namespace dfi::syskit

#endif // DFI_SYSKIT_LAYOUT_HH

/**
 * @file
 * Strict numeric parsing for the command-line front ends.
 *
 * strtoul/strtod-style parsing silently turns "abc" into 0 and
 * accepts trailing garbage ("12x" -> 12), so a mistyped flag value
 * becomes a quietly wrong campaign.  These helpers require the whole
 * token to be a valid number and report failure to the caller, which
 * can then die naming the offending flag.
 */

#ifndef DFI_COMMON_PARSE_NUM_HH
#define DFI_COMMON_PARSE_NUM_HH

#include <cstdint>
#include <string>

namespace dfi
{

/**
 * Parse a non-negative decimal integer.  The entire string must be
 * digits — no whitespace, sign, hex prefix, or trailing garbage —
 * and the value must fit std::uint64_t.
 */
bool parseUnsigned(const std::string &text, std::uint64_t &out);

/** parseUnsigned with an inclusive upper bound (narrow flags). */
bool parseUnsigned(const std::string &text, std::uint64_t &out,
                   std::uint64_t max);

/**
 * Parse a finite decimal floating-point number.  The entire string
 * must be consumed; "nan"/"inf" and trailing garbage are rejected.
 */
bool parseDouble(const std::string &text, double &out);

} // namespace dfi

#endif // DFI_COMMON_PARSE_NUM_HH

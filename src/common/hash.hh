/**
 * @file
 * Stable content hashing for cache keys (FNV-1a, 64-bit).
 *
 * The campaign service (inject/service.hh) content-addresses golden
 * runs and checkpoint stores by a digest of the campaign-relevant
 * configuration.  That key must be a pure function of the *values*
 * hashed — identical across processes, hosts, and library versions —
 * so this is a fixed, self-contained FNV-1a implementation rather
 * than std::hash (whose result is explicitly allowed to vary between
 * runs and implementations).
 *
 * FNV-1a is not cryptographic; it is used here to bucket equal
 * configurations together, never to defend against adversarial
 * collisions.  Callers that need the digest as an identifier format
 * it with toHex() (16 lower-case hex digits, fixed width).
 */

#ifndef DFI_COMMON_HASH_HH
#define DFI_COMMON_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace dfi::hash
{

/** Incremental FNV-1a 64-bit hasher. */
class Fnv1a
{
  public:
    /** Fold in raw bytes. */
    void update(const void *data, std::size_t size);

    /**
     * Fold in a string, length-prefixed so that adjacent fields
     * cannot alias ("ab"+"c" never hashes like "a"+"bc").
     */
    void update(std::string_view text);

    /** Fold in an integer as 8 fixed little-endian bytes. */
    void update(std::uint64_t value);

    std::uint64_t digest() const { return state_; }

    /** digest() as 16 lower-case hex digits. */
    std::string hexDigest() const;

  private:
    static constexpr std::uint64_t kOffsetBasis =
        0xcbf29ce484222325ull;
    static constexpr std::uint64_t kPrime = 0x100000001b3ull;

    std::uint64_t state_ = kOffsetBasis;
};

/** One-shot convenience: FNV-1a of a byte string. */
std::uint64_t fnv1a(std::string_view text);

/** Fixed-width (16-digit) lower-case hex of a 64-bit value. */
std::string toHex(std::uint64_t value);

} // namespace dfi::hash

#endif // DFI_COMMON_HASH_HH

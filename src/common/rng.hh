/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * injection campaigns.
 *
 * Every stochastic decision in the framework (fault mask generation,
 * sampling, workload input synthesis) draws from an Rng instance that
 * is explicitly seeded, so a campaign is bit-reproducible from
 * (config, program, seed).  The generator is xoshiro256** which is
 * fast, high-quality and trivially copyable (needed for simulator
 * checkpointing).
 */

#ifndef DFI_COMMON_RNG_HH
#define DFI_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace dfi
{

/** Copyable deterministic RNG (xoshiro256**). */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform value in [0, bound) — bound must be non-zero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p. */
    bool nextBool(double p = 0.5);

    /** Fork an independent stream (for per-run RNGs). */
    Rng fork();

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace dfi

#endif // DFI_COMMON_RNG_HH

/**
 * @file
 * Single source of the build version, shared by the three CLI tools
 * (`--version`) and the telemetry `generator` echo, so artifacts and
 * bug reports can name the build that produced them.
 *
 * Bump policy: raise the version with every change that alters the
 * bytes of the telemetry artifacts (the `generator` echo is volatile,
 * but resume byte-compares the full header, so a version bump —
 * like a schema bump — makes partial streams from older builds
 * non-resumable by design).
 */

#ifndef DFI_COMMON_VERSION_HH
#define DFI_COMMON_VERSION_HH

#include <string>

namespace dfi
{

inline constexpr const char *kVersion = "0.6.0";

/** "dfi <version>", the `--version` output and telemetry echo. */
inline std::string
versionString()
{
    return std::string("dfi ") + kVersion;
}

} // namespace dfi

#endif // DFI_COMMON_VERSION_HH

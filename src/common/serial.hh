/**
 * @file
 * Compact binary state serialization for cache spill files.
 *
 * A deliberately small archive pair used by the campaign service to
 * persist PreparedCampaign state (golden run + checkpoint cores)
 * across daemon restarts.  Design points:
 *
 *  - One serialization function per type: classes expose
 *    `template <class Ar> void serializeState(Ar &)` and branch on
 *    `Ar::kSaving` only where save/load are asymmetric, so the field
 *    list can never drift between the two directions.
 *  - Host-local format: scalars are memcpy'd in host representation.
 *    The files are a cache, not an interchange format — a reader on a
 *    different host simply misses and re-prepares.
 *  - Fail-soft reader: any underrun or structural mismatch latches
 *    ok() == false with a reason; subsequent reads return zeros and
 *    the caller discards the result.  Whole-file integrity is the
 *    caller's job (the service frames files with an FNV-1a digest).
 *  - Page interning: copy-on-write page payloads are written once and
 *    referenced by ordinal afterwards, so a snapshot stack that shares
 *    pages on disk re-shares them after load instead of exploding to
 *    `snapshots * state size` bytes.
 */

#ifndef DFI_COMMON_SERIAL_HH
#define DFI_COMMON_SERIAL_HH

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/failpoint.hh"

namespace dfi::serial
{

/**
 * Appends state to a growable byte buffer.  Never mutates the object
 * being saved; serializeState takes a non-const reference only so
 * save and load can share one function body.
 *
 * Writes can fail (the `serial.write` failpoint models the allocator
 * or backing store giving out mid-save): the first failure latches
 * ok() == false, later appends are dropped, and the caller must
 * discard the buffer instead of persisting a truncated archive.
 */
class Writer
{
  public:
    static constexpr bool kSaving = true;

    bool ok() const { return ok_; }

    void
    bytes(const void *data, std::size_t n)
    {
        if (!ok_)
            return;
        if (failpoint::check("serial.write").kind ==
            failpoint::Action::Kind::Error) {
            ok_ = false;
            return;
        }
        buf_.append(static_cast<const char *>(data), n);
    }

    template <class T>
    void
    scalar(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        if constexpr (std::is_same_v<T, bool>) {
            const std::uint8_t byte = v ? 1 : 0;
            bytes(&byte, 1);
        } else {
            bytes(&v, sizeof v);
        }
    }

    /**
     * Intern a page by identity.  Returns true (and the previously
     * assigned ordinal) when the page was already written; otherwise
     * assigns the next ordinal and returns false so the caller writes
     * the payload exactly once.
     */
    bool
    internPage(const void *page, std::uint64_t &id)
    {
        const auto it = interned_.find(page);
        if (it != interned_.end()) {
            id = it->second;
            return true;
        }
        id = interned_.size();
        interned_.emplace(page, id);
        return false;
    }

    const std::string &buffer() const { return buf_; }

  private:
    std::string buf_;
    bool ok_ = true;
    std::unordered_map<const void *, std::uint64_t> interned_;
};

/** Bounds-checked reader over a byte buffer with a sticky failure flag. */
class Reader
{
  public:
    static constexpr bool kSaving = false;

    explicit Reader(std::string_view data) : data_(data) {}

    bool ok() const { return ok_; }
    const std::string &error() const { return error_; }
    std::size_t remaining() const { return data_.size() - pos_; }

    /** Latch a failure; the first reason wins. */
    void
    fail(const std::string &why)
    {
        if (ok_) {
            ok_ = false;
            error_ = why;
        }
    }

    bool
    bytes(void *out, std::size_t n)
    {
        if (ok_ && failpoint::check("serial.read").kind ==
                       failpoint::Action::Kind::Error)
            fail("injected read failure (serial.read failpoint)");
        if (!ok_ || n > remaining()) {
            std::memset(out, 0, n);
            fail("state stream underrun");
            return false;
        }
        std::memcpy(out, data_.data() + pos_, n);
        pos_ += n;
        return true;
    }

    template <class T>
    void
    scalar(T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        if constexpr (std::is_same_v<T, bool>) {
            std::uint8_t byte = 0;
            bytes(&byte, 1);
            v = byte != 0;
        } else {
            bytes(&v, sizeof v);
        }
    }

    /** Record a freshly loaded page payload; returns its ordinal. */
    std::uint64_t
    registerPage(std::shared_ptr<void> page)
    {
        pages_.push_back(std::move(page));
        return pages_.size() - 1;
    }

    /** Resolve a previously registered page by ordinal. */
    std::shared_ptr<void>
    internedPage(std::uint64_t id)
    {
        if (id >= pages_.size()) {
            fail("interned page ordinal out of range");
            return nullptr;
        }
        return pages_[static_cast<std::size_t>(id)];
    }

  private:
    std::string_view data_;
    std::size_t pos_ = 0;
    bool ok_ = true;
    std::string error_;
    std::vector<std::shared_ptr<void>> pages_;
};

/**
 * Serialize a value: scalars and enums inline, everything else via
 * the type's serializeState member.
 */
template <class Ar, class T>
void
value(Ar &ar, T &v)
{
    if constexpr (std::is_arithmetic_v<T> || std::is_enum_v<T>)
        ar.scalar(v);
    else
        v.serializeState(ar);
}

template <class Ar>
void
value(Ar &ar, std::string &s)
{
    std::uint64_t n = s.size();
    ar.scalar(n);
    if constexpr (Ar::kSaving) {
        ar.bytes(s.data(), s.size());
    } else {
        if (n > ar.remaining()) {
            ar.fail("string length exceeds stream");
            return;
        }
        s.assign(static_cast<std::size_t>(n), '\0');
        ar.bytes(s.data(), s.size());
    }
}

template <class Ar, class T>
void
value(Ar &ar, std::vector<T> &v)
{
    std::uint64_t n = v.size();
    ar.scalar(n);
    if constexpr (!Ar::kSaving) {
        if (n > ar.remaining()) {
            ar.fail("vector length exceeds stream");
            return;
        }
        v.assign(static_cast<std::size_t>(n), T{});
    }
    if constexpr (std::is_arithmetic_v<T> && !std::is_same_v<T, bool>) {
        if constexpr (Ar::kSaving) {
            ar.bytes(v.data(), v.size() * sizeof(T));
        } else if (n * sizeof(T) > ar.remaining()) {
            ar.fail("vector payload exceeds stream");
        } else {
            ar.bytes(v.data(), v.size() * sizeof(T));
        }
    } else {
        for (auto &elem : v) {
            if constexpr (!Ar::kSaving) {
                if (!ar.ok())
                    return;
            }
            value(ar, elem);
        }
    }
}

/** std::vector<bool> has no contiguous storage; one byte per element. */
template <class Ar>
void
value(Ar &ar, std::vector<bool> &v)
{
    std::uint64_t n = v.size();
    ar.scalar(n);
    if constexpr (Ar::kSaving) {
        for (const bool bit : v) {
            const std::uint8_t byte = bit ? 1 : 0;
            ar.scalar(byte);
        }
    } else {
        if (n > ar.remaining()) {
            ar.fail("bit vector length exceeds stream");
            return;
        }
        v.assign(static_cast<std::size_t>(n), false);
        for (std::size_t i = 0; i < v.size(); ++i) {
            std::uint8_t byte = 0;
            ar.scalar(byte);
            v[i] = byte != 0;
        }
    }
}

template <class Ar, class V>
void
value(Ar &ar, std::map<std::string, V> &m)
{
    std::uint64_t n = m.size();
    ar.scalar(n);
    if constexpr (Ar::kSaving) {
        for (auto &[key, val] : m) {
            std::string name = key;
            value(ar, name);
            value(ar, val);
        }
    } else {
        if (n > ar.remaining()) {
            ar.fail("map size exceeds stream");
            return;
        }
        m.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            if (!ar.ok())
                return;
            std::string key;
            V val{};
            value(ar, key);
            value(ar, val);
            m.emplace(std::move(key), std::move(val));
        }
    }
}

} // namespace dfi::serial

#endif // DFI_COMMON_SERIAL_HH

#include "common/parse_num.hh"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>

namespace dfi
{

bool
parseUnsigned(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    const char *begin = text.data();
    const char *end = begin + text.size();
    std::uint64_t value = 0;
    // from_chars is strict by construction: no whitespace or sign
    // skipping, and overflow reports result_out_of_range.
    const auto [ptr, ec] = std::from_chars(begin, end, value, 10);
    if (ec != std::errc() || ptr != end)
        return false;
    out = value;
    return true;
}

bool
parseUnsigned(const std::string &text, std::uint64_t &out,
              std::uint64_t max)
{
    std::uint64_t value = 0;
    if (!parseUnsigned(text, value) || value > max)
        return false;
    out = value;
    return true;
}

bool
parseDouble(const std::string &text, double &out)
{
    if (text.empty() || std::isspace(static_cast<unsigned char>(
                            text.front())))
        return false;
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || errno == ERANGE ||
        !std::isfinite(value)) {
        return false;
    }
    out = value;
    return true;
}

} // namespace dfi

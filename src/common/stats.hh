/**
 * @file
 * Lightweight runtime-statistics package.
 *
 * Each simulator instance owns a StatSet; microarchitectural components
 * register named counters into it.  The per-benchmark statistics the
 * paper uses to explain divergences between the tools (issued vs.
 * committed loads, cache hit/miss/replacement counts, branch
 * mispredictions, ...) are all plain counters in this set, dumped by
 * the `bench_runtime_stats` harness.
 *
 * StatSet is value-semantic (copyable) so it participates in simulator
 * checkpointing for free.
 */

#ifndef DFI_COMMON_STATS_HH
#define DFI_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.hh"

namespace dfi
{

/** A named bag of 64-bit counters with formatted dumping. */
class StatSet
{
  public:
    /** Add delta (default 1) to counter `name`, creating it at zero. */
    void
    inc(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Set counter `name` to an absolute value. */
    void
    set(const std::string &name, std::uint64_t value)
    {
        counters_[name] = value;
    }

    /** Value of counter `name`; zero if never touched. */
    std::uint64_t get(const std::string &name) const;

    /**
     * Add every counter of `other` into this set (campaign-wide
     * aggregation across runs).  Addition is commutative, so merging
     * per-run sets in any order yields the same aggregate.
     */
    void merge(const StatSet &other);

    /** True if the counter was ever touched. */
    bool has(const std::string &name) const;

    /** Ratio get(num)/get(den); zero when the denominator is zero. */
    double ratio(const std::string &num, const std::string &den) const;

    /** All counters, sorted by name. */
    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

    /** Reset every counter to zero (keeps names). */
    void clear();

    /** Multi-line "name = value" dump, sorted by name. */
    std::string dump(const std::string &prefix = "") const;

    /** Serialize all counters (cache spill). */
    template <class Ar> void serializeState(Ar &ar);

  private:
    std::map<std::string, std::uint64_t> counters_;
};

/**
 * Fixed-width text table builder used by the bench harnesses to print
 * paper-style tables and stacked-bar figures on the terminal.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string render() const;

    /**
     * The table as JSON ({"header": [...], "rows": [[...], ...]}),
     * the machine-readable twin every table bench writes next to its
     * text output.
     */
    json::Value toJson() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed decimals (helper for reports). */
std::string formatFixed(double value, int decimals);

} // namespace dfi

#endif // DFI_COMMON_STATS_HH

/**
 * @file
 * Socket/pipe line I/O for the NDJSON service protocol.
 *
 * Extracted from tools/dfi_serve.cc so the read/write helpers are
 * unit-testable over plain pipes and so both halves of the protocol
 * share one implementation of the hard parts:
 *
 *  - LineReader: buffered newline framing that distinguishes a
 *    complete line, EOF, an oversized line (protocol violation by a
 *    live peer), a read error, and an idle timeout — five outcomes a
 *    server must treat differently;
 *  - writeAll/writeLine: short-write/EINTR-correct full writes with
 *    an optional progress bound, so a stalled peer costs a bounded
 *    poll() wait instead of wedging the writer forever (the fd must
 *    be non-blocking for the bound to hold — see writeAll).
 *
 * Both paths are failpoint-instrumented (`sock.read`, `sock.write`:
 * EINTR, short transfer, hard error), which is how the chaos CI leg
 * and tests/inject/test_service.cc drive the recovery branches
 * without hand-rolled fixtures.
 */

#ifndef DFI_COMMON_NETIO_HH
#define DFI_COMMON_NETIO_HH

#include <cstddef>
#include <string>
#include <string_view>

namespace dfi::json
{
class Value;
}

namespace dfi::netio
{

/** Why LineReader::next() stopped. */
enum class ReadResult
{
    Line,    //!< `out` holds one complete line
    Eof,     //!< peer closed before a newline arrived
    TooLong, //!< line exceeds the bound (peer still alive)
    Error,   //!< read() failed; errno describes why
    Timeout, //!< no bytes arrived within the idle timeout
};

/**
 * Buffered newline-delimited reader.  One read() may deliver several
 * protocol lines at once (a fast warm-cache response lands in the
 * same chunk as the final progress event), so bytes past the first
 * newline are kept for the next call, not dropped.
 */
class LineReader
{
  public:
    /**
     * @param fd            source descriptor (blocking or not)
     * @param maxLineBytes  bound on one line; longer returns TooLong
     * @param idleTimeoutMs poll() bound per read; < 0 waits forever
     */
    explicit LineReader(int fd, std::size_t maxLineBytes,
                        int idleTimeoutMs = -1)
        : fd_(fd), maxLineBytes_(maxLineBytes),
          idleTimeoutMs_(idleTimeoutMs)
    {}

    /** Read one newline-terminated line (without the newline). */
    ReadResult next(std::string &out);

  private:
    int fd_;
    std::size_t maxLineBytes_;
    int idleTimeoutMs_;
    std::string pending_;
    std::size_t scan_ = 0;
};

/**
 * Write all bytes; false on any error (EPIPE: peer vanished).
 * With timeoutMs >= 0 a write that cannot make progress within the
 * bound fails instead of blocking — the bound is per progress step,
 * and only holds when `fd` is non-blocking (a blocking fd sleeps in
 * write() itself, out of poll()'s reach).
 */
bool writeAll(int fd, std::string_view data, int timeoutMs = -1);

/** writeAll of one NDJSON line. */
bool writeLine(int fd, const json::Value &line, int timeoutMs = -1);

} // namespace dfi::netio

#endif // DFI_COMMON_NETIO_HH

#include "common/cli.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/parse_num.hh"

namespace dfi::cli
{

FlagSet::FlagSet(std::string tool, std::string synopsis)
    : tool_(std::move(tool)), synopsis_(std::move(synopsis))
{
}

void
FlagSet::section(std::string title)
{
    currentSection_ = std::move(title);
}

void
FlagSet::add(Flag flag)
{
    if (find(flag.name) != nullptr)
        panic("cli: flag '%s' registered twice", flag.name);
    flag.section = currentSection_;
    flags_.push_back(std::move(flag));
}

const FlagSet::Flag *
FlagSet::find(const std::string &name) const
{
    for (const Flag &flag : flags_) {
        if (flag.name == name)
            return &flag;
    }
    return nullptr;
}

void
FlagSet::flag(const std::string &name, const std::string &help,
              bool *out)
{
    flag(name, help, [out] { *out = true; });
}

void
FlagSet::flag(const std::string &name, const std::string &help,
              std::function<void()> action)
{
    Flag f;
    f.name = name;
    f.help = help;
    f.action = std::move(action);
    add(std::move(f));
}

void
FlagSet::custom(const std::string &name, const std::string &value,
                const std::string &help,
                std::function<bool(const std::string &, std::string &)>
                    decode)
{
    if (value.empty())
        panic("cli: value-taking flag '%s' needs a placeholder", name);
    Flag f;
    f.name = name;
    f.value = value;
    f.help = help;
    f.decode = std::move(decode);
    add(std::move(f));
}

void
FlagSet::uint64(const std::string &name, const std::string &value,
                const std::string &help, std::uint64_t *out,
                std::uint64_t max)
{
    custom(name, value, help,
           [out, max](const std::string &text, std::string &error) {
               if (!dfi::parseUnsigned(text, *out, max)) {
                   error = "expected an unsigned integer";
                   return false;
               }
               return true;
           });
}

void
FlagSet::uint32(const std::string &name, const std::string &value,
                const std::string &help, std::uint32_t *out)
{
    custom(name, value, help,
           [out](const std::string &text, std::string &error) {
               std::uint64_t wide = 0;
               if (!dfi::parseUnsigned(
                       text, wide,
                       std::numeric_limits<std::uint32_t>::max())) {
                   error = "expected an unsigned integer";
                   return false;
               }
               *out = static_cast<std::uint32_t>(wide);
               return true;
           });
}

void
FlagSet::number(const std::string &name, const std::string &value,
                const std::string &help, double *out)
{
    custom(name, value, help,
           [out](const std::string &text, std::string &error) {
               if (!dfi::parseDouble(text, *out)) {
                   error = "expected a number";
                   return false;
               }
               return true;
           });
}

void
FlagSet::text(const std::string &name, const std::string &value,
              const std::string &help, std::string *out)
{
    custom(name, value, help,
           [out](const std::string &text, std::string &) {
               *out = text;
               return true;
           });
}

void
FlagSet::positionals(std::string placeholder, std::string help,
                     std::vector<std::string> *out)
{
    positionalPlaceholder_ = std::move(placeholder);
    positionalHelp_ = std::move(help);
    positionalOut_ = out;
}

ParseResult
FlagSet::parse(int argc, char **argv, std::string &error)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return ParseResult::Help;
        if (arg == "--version")
            return ParseResult::Version;
        if (arg.empty() || arg[0] != '-') {
            if (positionalOut_ == nullptr) {
                error = "unexpected argument '" + arg +
                        "' (try --help)";
                return ParseResult::Error;
            }
            positionalOut_->push_back(arg);
            continue;
        }
        const Flag *flag = find(arg);
        if (flag == nullptr) {
            error = "unknown option '" + arg + "' (try --help)";
            return ParseResult::Error;
        }
        if (flag->value.empty()) {
            flag->action();
            continue;
        }
        if (i + 1 >= argc) {
            error = "missing value for " + arg;
            return ParseResult::Error;
        }
        const std::string value = argv[++i];
        std::string reason;
        if (!flag->decode(value, reason)) {
            error = "invalid value '" + value + "' for " + arg +
                    (reason.empty() ? "" : " (" + reason + ")");
            return ParseResult::Error;
        }
    }
    return ParseResult::Ok;
}

std::string
FlagSet::usage() const
{
    // Column where help text starts: widest "  --flag VALUE" plus
    // two spaces, like the hand-written screens this replaces.
    std::size_t width = 0;
    for (const Flag &flag : flags_) {
        std::size_t w = 2 + flag.name.size();
        if (!flag.value.empty())
            w += 1 + flag.value.size();
        width = std::max(width, w);
    }
    const std::size_t column = width + 2;

    std::string out = "usage: " + tool_;
    if (!synopsis_.empty())
        out += " " + synopsis_;
    out += "\n";

    auto append_entry = [&out, column](const std::string &head,
                                       const std::string &help) {
        out += head;
        if (help.empty()) {
            out += "\n";
            return;
        }
        std::size_t begin = 0;
        bool first = true;
        while (begin <= help.size()) {
            const std::size_t end = help.find('\n', begin);
            const std::string line =
                help.substr(begin, end == std::string::npos
                                       ? std::string::npos
                                       : end - begin);
            if (first) {
                out += std::string(
                    column > head.size() ? column - head.size() : 1,
                    ' ');
                first = false;
            } else {
                out += std::string(column, ' ');
            }
            out += line;
            out += "\n";
            if (end == std::string::npos)
                break;
            begin = end + 1;
        }
    };

    std::string section;
    for (const Flag &flag : flags_) {
        if (flag.section != section) {
            section = flag.section;
            out += "\n";
            if (!section.empty())
                out += section + ":\n";
        }
        std::string head = "  " + flag.name;
        if (!flag.value.empty())
            head += " " + flag.value;
        append_entry(head, flag.help);
    }
    if (positionalOut_ != nullptr && !positionalHelp_.empty()) {
        out += "\n";
        append_entry("  " + positionalPlaceholder_, positionalHelp_);
    }
    return out;
}

} // namespace dfi::cli

/**
 * @file
 * Deterministic named failpoints: the repo's own methodology turned
 * inward.
 *
 * The campaign engine injects faults into a *simulated* machine; the
 * service stack around it (disk cache, telemetry writers, socket
 * protocol) grew error paths that until now were only exercised by
 * hand-crafted fixtures.  A failpoint is a named site in that stack
 * (`cache.rename`, `sock.read`, `prep.alloc`, ...) which, when armed
 * by a spec, deterministically injects an I/O or resource fault so
 * chaos runs can *prove* the error paths work — and keep proving it
 * in CI, reproducibly, because every trigger is a pure function of
 * the spec and the site's evaluation count.
 *
 * Spec grammar (one spec arms any number of sites):
 *
 *   spec    := point (';' point)*
 *   point   := site '=' action ['@' trigger]
 *   action  := 'error' | 'eintr' | 'short' | 'abort' | 'delay:' MS
 *   trigger := 'always' | 'once' | 'nth:' N | 'every:' N
 *            | 'prob:' P [':' SEED]
 *
 * e.g. `DFI_FAILPOINTS='cache.write=error@every:2;sock.read=eintr'`.
 *
 * Actions: `error` makes the operation fail (EIO-style), `eintr`
 * makes one syscall fail with EINTR (the site's retry loop must
 * recover), `short` truncates a transfer to one byte, `delay:MS`
 * sleeps inside check() and then proceeds (sites need no handling),
 * `abort` calls std::abort() (crash-recovery drills).
 *
 * Triggers are per-site and deterministic: `once` fires on the first
 * evaluation only, `nth:N` on the Nth only, `every:N` on every Nth,
 * `always` on all, and `prob:P[:SEED]` draws from a common/rng
 * stream seeded by (SEED xor fnv1a(site)) so the same spec replays
 * the same hit sequence — asserted by tests/common/test_failpoint.cc.
 *
 * Zero-cost when inactive: check() is one relaxed atomic load until
 * a spec is armed; sites may therefore sit on hot paths (the serial
 * archive writes one scalar at a time through one).
 *
 * Thread-safety: configure()/reset() must not race check(); arm once
 * at process start (tools do it right after flag parsing).  check()
 * itself may be called from any thread; counters are kept under a
 * registry mutex.
 */

#ifndef DFI_COMMON_FAILPOINT_HH
#define DFI_COMMON_FAILPOINT_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace dfi::json
{
class Value;
}

namespace dfi::failpoint
{

/** What a fired failpoint tells its site to emulate. */
struct Action
{
    enum class Kind : std::uint8_t
    {
        None,  //!< proceed normally
        Error, //!< fail the operation outright (EIO-style)
        Eintr, //!< fail one syscall with EINTR; the site retries
        Short, //!< transfer at most one byte
        Delay, //!< handled inside check(): sleep, then proceed
        Abort, //!< handled inside check(): std::abort()
    };

    Kind kind = Kind::None;
    std::uint64_t delayMs = 0;

    explicit operator bool() const { return kind != Kind::None; }
};

/**
 * Parse `spec` and arm exactly the sites it names (replacing any
 * previous configuration and resetting all counters).  An empty spec
 * disarms everything.  False + error on a malformed spec, leaving
 * the previous configuration in place.
 */
bool configure(const std::string &spec, std::string &error);

/** Disarm every site and clear all counters. */
void reset();

/** True when any site is armed. */
bool armed();

/** Evaluations of `site` since it was armed (fired or not). */
std::uint64_t evalCount(std::string_view site);

/** Times `site` actually fired its action. */
std::uint64_t fireCount(std::string_view site);

/**
 * Hit counters for every armed site as
 * `{site: {evals, fires, action}}` — surfaced by
 * `dfi-serve --stats` so chaos runs can assert coverage.
 */
json::Value statsJson();

namespace detail
{

extern std::atomic<bool> g_armed;

/** Slow path: trigger evaluation, counters, delay/abort handling. */
Action evaluate(std::string_view site);

} // namespace detail

/**
 * Evaluate the named site.  Returns the action the site must emulate
 * (None when unarmed or the trigger did not fire).  Delay and Abort
 * are performed in here so every site gets them for free.
 */
inline Action
check(std::string_view site)
{
    if (!detail::g_armed.load(std::memory_order_relaxed))
        return {};
    return detail::evaluate(site);
}

} // namespace dfi::failpoint

#endif // DFI_COMMON_FAILPOINT_HH

#include "common/json.hh"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace dfi::json
{

Value
Value::boolean(bool b)
{
    Value v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

Value
Value::integer(std::int64_t i)
{
    Value v;
    v.kind_ = Kind::Int;
    v.negative_ = i < 0;
    v.int_ = v.negative_
                 ? ~static_cast<std::uint64_t>(i) + 1
                 : static_cast<std::uint64_t>(i);
    return v;
}

Value
Value::unsignedInt(std::uint64_t u)
{
    Value v;
    v.kind_ = Kind::Int;
    v.int_ = u;
    return v;
}

Value
Value::number(double d)
{
    // Integral doubles collapse into the exact representation so that
    // e.g. a percentage of exactly 25 always prints "25".
    if (std::isfinite(d) && d == std::floor(d) &&
        std::abs(d) < 9.0e15) {
        return integer(static_cast<std::int64_t>(d));
    }
    Value v;
    v.kind_ = Kind::Double;
    v.double_ = d;
    return v;
}

Value
Value::string(std::string s)
{
    Value v;
    v.kind_ = Kind::String;
    v.string_ = std::move(s);
    return v;
}

Value
Value::array()
{
    Value v;
    v.kind_ = Kind::Array;
    return v;
}

Value
Value::object()
{
    Value v;
    v.kind_ = Kind::Object;
    return v;
}

bool
Value::asBool() const
{
    if (kind_ != Kind::Bool)
        panic("json: asBool on kind %s", static_cast<int>(kind_));
    return bool_;
}

std::uint64_t
Value::asUint() const
{
    if (kind_ != Kind::Int || negative_)
        panic("json: asUint on kind %s", static_cast<int>(kind_));
    return int_;
}

std::int64_t
Value::asInt() const
{
    if (kind_ != Kind::Int)
        panic("json: asInt on kind %s", static_cast<int>(kind_));
    return negative_ ? -static_cast<std::int64_t>(int_)
                     : static_cast<std::int64_t>(int_);
}

double
Value::asDouble() const
{
    if (kind_ == Kind::Double)
        return double_;
    if (kind_ == Kind::Int) {
        const auto magnitude = static_cast<double>(int_);
        return negative_ ? -magnitude : magnitude;
    }
    panic("json: asDouble on kind %s", static_cast<int>(kind_));
}

const std::string &
Value::asString() const
{
    if (kind_ != Kind::String)
        panic("json: asString on kind %s", static_cast<int>(kind_));
    return string_;
}

void
Value::push(Value v)
{
    if (kind_ != Kind::Array)
        panic("json: push on kind %s", static_cast<int>(kind_));
    array_.push_back(std::move(v));
}

std::size_t
Value::size() const
{
    if (kind_ == Kind::Array)
        return array_.size();
    if (kind_ == Kind::Object)
        return object_.size();
    panic("json: size on kind %s", static_cast<int>(kind_));
}

const Value &
Value::at(std::size_t index) const
{
    if (kind_ != Kind::Array || index >= array_.size())
        panic("json: bad array access [%s]", index);
    return array_[index];
}

void
Value::set(const std::string &key, Value v)
{
    if (kind_ != Kind::Object)
        panic("json: set on kind %s", static_cast<int>(kind_));
    for (auto &member : object_) {
        if (member.first == key) {
            member.second = std::move(v);
            return;
        }
    }
    object_.emplace_back(key, std::move(v));
}

bool
Value::has(const std::string &key) const
{
    return find(key) != nullptr;
}

const Value *
Value::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &member : object_) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

const Value &
Value::get(const std::string &key) const
{
    const Value *v = find(key);
    if (v == nullptr)
        panic("json: missing member '%s'", key);
    return *v;
}

const std::vector<std::pair<std::string, Value>> &
Value::members() const
{
    if (kind_ != Kind::Object)
        panic("json: members on kind %s", static_cast<int>(kind_));
    return object_;
}

std::string
formatNumber(double value)
{
    if (!std::isfinite(value))
        panic("json: non-finite number");
    // Shortest fixed-point with at most six fractional digits:
    // deterministic across platforms for the magnitudes telemetry
    // emits (counts, percentages, ratios).
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6f", value);
    std::string text = buffer;
    while (text.size() > 1 && text.back() == '0')
        text.pop_back();
    if (!text.empty() && text.back() == '.')
        text.pop_back();
    return text;
}

std::string
quote(const std::string &raw)
{
    std::string out = "\"";
    for (const char c : raw) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad =
        indent > 0 ? std::string(
                         static_cast<std::size_t>(indent * (depth + 1)),
                         ' ')
                   : "";
    const std::string close_pad =
        indent > 0
            ? std::string(static_cast<std::size_t>(indent * depth), ' ')
            : "";
    const char *newline = indent > 0 ? "\n" : "";

    switch (kind_) {
      case Kind::Null:
        out += "null";
        return;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        return;
      case Kind::Int: {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%s%" PRIu64,
                      negative_ ? "-" : "", int_);
        out += buffer;
        return;
      }
      case Kind::Double:
        out += formatNumber(double_);
        return;
      case Kind::String:
        out += quote(string_);
        return;
      case Kind::Array: {
        if (array_.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        out += newline;
        for (std::size_t i = 0; i < array_.size(); ++i) {
            out += pad;
            array_[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < array_.size())
                out += ',';
            out += newline;
        }
        out += close_pad;
        out += ']';
        return;
      }
      case Kind::Object: {
        if (object_.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        out += newline;
        for (std::size_t i = 0; i < object_.size(); ++i) {
            out += pad;
            out += quote(object_[i].first);
            out += ':';
            if (indent > 0)
                out += ' ';
            object_[i].second.dumpTo(out, indent, depth + 1);
            if (i + 1 < object_.size())
                out += ',';
            out += newline;
        }
        out += close_pad;
        out += '}';
        return;
      }
    }
    panic("json: dump of bad kind %s", static_cast<int>(kind_));
}

std::string
Value::dump() const
{
    std::string out;
    dumpTo(out, 0, 0);
    return out;
}

std::string
Value::dumpPretty() const
{
    std::string out;
    dumpTo(out, 2, 0);
    out += '\n';
    return out;
}

namespace
{

/** Recursive-descent parser over a byte string. */
class ParseCursor
{
  public:
    ParseCursor(const std::string &text, std::string &error)
        : text_(text), error_(error)
    {}

    bool
    parseDocument(Value &out)
    {
        skipSpace();
        if (!parseValue(out, 0))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    fail(const std::string &reason)
    {
        error_ = "offset " + std::to_string(pos_) + ": " + reason;
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word, Value v, Value &out)
    {
        for (const char *c = word; *c != '\0'; ++c, ++pos_) {
            if (pos_ >= text_.size() || text_[pos_] != *c)
                return fail(std::string("bad literal, expected '") +
                            word + "'");
        }
        out = std::move(v);
        return true;
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char hex = text_[pos_++];
                    code <<= 4;
                    if (hex >= '0' && hex <= '9')
                        code |= static_cast<unsigned>(hex - '0');
                    else if (hex >= 'a' && hex <= 'f')
                        code |= static_cast<unsigned>(hex - 'a' + 10);
                    else if (hex >= 'A' && hex <= 'F')
                        code |= static_cast<unsigned>(hex - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // Telemetry only escapes control characters; encode
                // anything in the BMP as UTF-8 for completeness.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
    }

    bool
    parseNumber(Value &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        bool integral = true;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        const std::string token = text_.substr(start, pos_ - start);
        if (token.empty() || token == "-")
            return fail("bad number");
        errno = 0;
        if (integral) {
            char *end = nullptr;
            if (token[0] == '-') {
                const std::int64_t v =
                    std::strtoll(token.c_str(), &end, 10);
                if (errno != 0 || end != token.c_str() + token.size())
                    return fail("bad integer");
                out = Value::integer(v);
            } else {
                const std::uint64_t v =
                    std::strtoull(token.c_str(), &end, 10);
                if (errno != 0 || end != token.c_str() + token.size())
                    return fail("bad integer");
                out = Value::unsignedInt(v);
            }
            return true;
        }
        char *end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return fail("bad number");
        out = Value::number(v);
        return true;
    }

    bool
    parseValue(Value &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == 'n')
            return literal("null", Value::null(), out);
        if (c == 't')
            return literal("true", Value::boolean(true), out);
        if (c == 'f')
            return literal("false", Value::boolean(false), out);
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Value::string(std::move(s));
            return true;
        }
        if (c == '[') {
            ++pos_;
            out = Value::array();
            skipSpace();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                Value element;
                if (!parseValue(element, depth + 1))
                    return false;
                out.push(std::move(element));
                skipSpace();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '{') {
            ++pos_;
            out = Value::object();
            skipSpace();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skipSpace();
                if (pos_ >= text_.size() || text_[pos_] != '"')
                    return fail("expected member key");
                std::string key;
                if (!parseString(key))
                    return false;
                skipSpace();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail("expected ':'");
                ++pos_;
                Value member;
                if (!parseValue(member, depth + 1))
                    return false;
                out.set(key, std::move(member));
                skipSpace();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return parseNumber(out);
        return fail("unexpected character");
    }

    const std::string &text_;
    std::string &error_;
    std::size_t pos_ = 0;
};

} // namespace

bool
parse(const std::string &text, Value &out, std::string &error)
{
    ParseCursor cursor(text, error);
    return cursor.parseDocument(out);
}

} // namespace dfi::json

#include "common/stats.hh"

#include <iomanip>
#include <sstream>

#include "common/serial.hh"

namespace dfi
{

std::uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &entry : other.counters_)
        counters_[entry.first] += entry.second;
}

bool
StatSet::has(const std::string &name) const
{
    return counters_.count(name) != 0;
}

double
StatSet::ratio(const std::string &num, const std::string &den) const
{
    const std::uint64_t d = get(den);
    if (d == 0)
        return 0.0;
    return static_cast<double>(get(num)) / static_cast<double>(d);
}

void
StatSet::clear()
{
    for (auto &entry : counters_)
        entry.second = 0;
}

std::string
StatSet::dump(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &[name, value] : counters_)
        os << prefix << name << " = " << value << "\n";
    return os.str();
}

template <class Ar>
void
StatSet::serializeState(Ar &ar)
{
    serial::value(ar, counters_);
}

template void StatSet::serializeState(serial::Writer &);
template void StatSet::serializeState(serial::Reader &);

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths;
    auto update_widths = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    update_widths(header_);
    for (const auto &r : rows_)
        update_widths(r);

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << cells[i];
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

json::Value
TextTable::toJson() const
{
    auto cells_json = [](const std::vector<std::string> &cells) {
        json::Value row = json::Value::array();
        for (const std::string &cell : cells)
            row.push(json::Value::string(cell));
        return row;
    };
    json::Value doc = json::Value::object();
    doc.set("header", cells_json(header_));
    json::Value rows = json::Value::array();
    for (const auto &r : rows_)
        rows.push(cells_json(r));
    doc.set("rows", std::move(rows));
    return doc;
}

std::string
formatFixed(double value, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << value;
    return os.str();
}

} // namespace dfi

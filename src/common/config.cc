#include "common/config.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace dfi
{

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

void
Config::set(const std::string &key, std::int64_t value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, bool value)
{
    values_[key] = value ? "true" : "false";
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    try {
        return std::stoll(it->second);
    } catch (const std::exception &) {
        fatal("config key '%s' has non-integer value '%s'", key,
              it->second);
    }
}

std::uint64_t
Config::getUint(const std::string &key, std::uint64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    try {
        return std::stoull(it->second);
    } catch (const std::exception &) {
        fatal("config key '%s' has non-integer value '%s'", key,
              it->second);
    }
}

bool
Config::getBool(const std::string &key, bool def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    if (it->second == "true" || it->second == "1")
        return true;
    if (it->second == "false" || it->second == "0")
        return false;
    fatal("config key '%s' has non-boolean value '%s'", key, it->second);
}

double
Config::getDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    try {
        return std::stod(it->second);
    } catch (const std::exception &) {
        fatal("config key '%s' has non-numeric value '%s'", key,
              it->second);
    }
}

std::uint64_t
envUint(const char *name, std::uint64_t def)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0')
        return def;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(raw, &end, 10);
    if (end == raw || *end != '\0') {
        warn("ignoring malformed %s='%s'", name, raw);
        return def;
    }
    return value;
}

} // namespace dfi

/**
 * @file
 * Declarative command-line flag parsing for the tool front ends.
 *
 * dfi-campaign, dfi-diff and dfi-merge all take GNU-style long flags
 * over a strict numeric grammar (common/parse_num.hh).  Before this
 * facade each tool hand-rolled its own argv loop, so the diagnostics
 * ("missing value for --x", "invalid value 'y' for --x") and the
 * --help layout drifted between them.  A FlagSet instead registers
 * every flag once — name, value placeholder, help text, destination —
 * and derives parsing, the usage text, and uniform diagnostics from
 * that single declaration.
 *
 * Grammar: a token starting with '-' is a flag; a flag either takes
 * no value or consumes the following token.  Anything else is a
 * positional argument (collected only when the tool registered a
 * positional slot).  `--help`/`-h` and `--version` are built in and
 * report ParseResult::Help / ParseResult::Version without touching
 * any destination; tools print usage() or dfi::versionString() and
 * exit 0.
 */

#ifndef DFI_COMMON_CLI_HH
#define DFI_COMMON_CLI_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

namespace dfi::cli
{

/** Outcome of FlagSet::parse. */
enum class ParseResult
{
    Ok,      //!< all tokens consumed
    Help,    //!< --help/-h was given; print usage() and exit 0
    Version, //!< --version was given; print versionString(), exit 0
    Error,   //!< bad input; `error` names the offending token
};

/**
 * One tool's registered flags.  Registration order is presentation
 * order in the generated usage text; section() starts a titled group
 * (mirroring the hand-written help screens the tools had before).
 */
class FlagSet
{
  public:
    /**
     * @param tool     program name for diagnostics ("dfi-merge")
     * @param synopsis the usage line after the name ("[options] ...")
     */
    FlagSet(std::string tool, std::string synopsis);

    /** Start a titled section in the usage text. */
    void section(std::string title);

    /** Valueless flag: presence sets `*out` to true. */
    void flag(const std::string &name, const std::string &help,
              bool *out);

    /** Valueless flag with an arbitrary action. */
    void flag(const std::string &name, const std::string &help,
              std::function<void()> action);

    /**
     * Strictly-parsed unsigned flag (trailing garbage or a
     * non-number is an error naming the flag, never silently 0).
     */
    void uint64(const std::string &name, const std::string &value,
                const std::string &help, std::uint64_t *out,
                std::uint64_t max =
                    std::numeric_limits<std::uint64_t>::max());

    /** uint64 narrowed to 32 bits. */
    void uint32(const std::string &name, const std::string &value,
                const std::string &help, std::uint32_t *out);

    /** Strictly-parsed finite double flag. */
    void number(const std::string &name, const std::string &value,
                const std::string &help, double *out);

    /** String-valued flag (stored verbatim). */
    void text(const std::string &name, const std::string &value,
              const std::string &help, std::string *out);

    /**
     * Value-taking flag with a custom decoder (enumerations,
     * composite values like `I/N`).  The decoder returns false with
     * `error` set to the *reason*; parse() prefixes the flag name.
     */
    void custom(const std::string &name, const std::string &value,
                const std::string &help,
                std::function<bool(const std::string &text,
                                   std::string &error)>
                    decode);

    /**
     * Accept positional (non-flag) arguments into `*out`.  Without
     * this, any positional token is an error.
     */
    void positionals(std::string placeholder, std::string help,
                     std::vector<std::string> *out);

    /**
     * Parse argv.  On Error, `error` is a complete one-line
     * diagnostic (without the "tool:" prefix).
     */
    ParseResult parse(int argc, char **argv, std::string &error);

    /** The generated help screen (usage line + sectioned flags). */
    std::string usage() const;

  private:
    struct Flag
    {
        std::string name;    //!< "--jobs"
        std::string value;   //!< placeholder ("N"); empty = valueless
        std::string help;    //!< may contain '\n' continuations
        std::string section; //!< section active at registration
        /** Valueless action (value empty) ... */
        std::function<void()> action;
        /** ... or value decoder (value non-empty). */
        std::function<bool(const std::string &, std::string &)> decode;
    };

    void add(Flag flag);
    const Flag *find(const std::string &name) const;

    std::string tool_;
    std::string synopsis_;
    std::string currentSection_;
    std::vector<Flag> flags_;
    std::string positionalPlaceholder_;
    std::string positionalHelp_;
    std::vector<std::string> *positionalOut_ = nullptr;
};

} // namespace dfi::cli

#endif // DFI_COMMON_CLI_HH

#include "common/logging.hh"

#include <cstdlib>
#include <iostream>

namespace dfi
{

namespace
{
LogLevel g_level = LogLevel::Warn;
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

namespace detail
{

void
panicImpl(const char *, int, const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    throw FatalError(msg);
}

void
warnImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Warn)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Info)
        std::cerr << "info: " << msg << std::endl;
}

void
debugImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Debug)
        std::cerr << "debug: " << msg << std::endl;
}

} // namespace detail

} // namespace dfi

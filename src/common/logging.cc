#include "common/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace dfi
{

namespace
{

std::atomic<LogLevel> g_level{LogLevel::Warn};

/**
 * Serialises log emission across campaign worker threads: each line
 * is rendered into one string and written under the mutex as a single
 * stream insertion, so concurrent `--verbose` output is never torn.
 */
std::mutex g_emit_mutex;

void
emitLine(const char *prefix, const std::string &msg)
{
    std::string line;
    line.reserve(msg.size() + 16);
    line += prefix;
    line += msg;
    line += '\n';
    std::lock_guard<std::mutex> lock(g_emit_mutex);
    std::cerr << line << std::flush;
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

namespace detail
{

void
panicImpl(const char *, int, const std::string &msg)
{
    emitLine("panic: ", msg);
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    throw FatalError(msg);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        emitLine("warn: ", msg);
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info)
        emitLine("info: ", msg);
}

void
debugImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Debug)
        emitLine("debug: ", msg);
}

} // namespace detail

} // namespace dfi

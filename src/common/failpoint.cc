#include "common/failpoint.hh"

#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/hash.hh"
#include "common/json.hh"
#include "common/parse_num.hh"
#include "common/rng.hh"

namespace dfi::failpoint
{

namespace
{

enum class Trigger : std::uint8_t
{
    Always,
    Nth,   //!< fire on evaluation N only (once == nth:1)
    Every, //!< fire on evaluations N, 2N, 3N, ...
    Prob,  //!< Bernoulli draw from a seeded deterministic stream
};

struct Site
{
    Action action;
    Trigger trigger = Trigger::Always;
    std::uint64_t n = 1;    //!< Nth / Every operand
    double probability = 0; //!< Prob operand
    Rng rng{0};             //!< Prob stream (seed ^ fnv1a(site))

    std::uint64_t evals = 0;
    std::uint64_t fires = 0;
};

std::mutex g_mu;
std::map<std::string, Site, std::less<>> g_sites;

const char *
actionName(Action::Kind kind)
{
    switch (kind) {
      case Action::Kind::None:
        return "none";
      case Action::Kind::Error:
        return "error";
      case Action::Kind::Eintr:
        return "eintr";
      case Action::Kind::Short:
        return "short";
      case Action::Kind::Delay:
        return "delay";
      case Action::Kind::Abort:
        return "abort";
    }
    return "?";
}

bool
parseAction(const std::string &text, Site &site, std::string &error)
{
    if (text == "error") {
        site.action.kind = Action::Kind::Error;
    } else if (text == "eintr") {
        site.action.kind = Action::Kind::Eintr;
    } else if (text == "short") {
        site.action.kind = Action::Kind::Short;
    } else if (text == "abort") {
        site.action.kind = Action::Kind::Abort;
    } else if (text.rfind("delay:", 0) == 0) {
        site.action.kind = Action::Kind::Delay;
        if (!parseUnsigned(text.substr(6), site.action.delayMs)) {
            error = "bad delay milliseconds '" + text.substr(6) + "'";
            return false;
        }
    } else {
        error = "unknown action '" + text +
                "' (expected error | eintr | short | abort | "
                "delay:MS)";
        return false;
    }
    return true;
}

bool
parseTrigger(const std::string &text, Site &site, std::string &error)
{
    if (text == "always") {
        site.trigger = Trigger::Always;
    } else if (text == "once") {
        site.trigger = Trigger::Nth;
        site.n = 1;
    } else if (text.rfind("nth:", 0) == 0 ||
               text.rfind("every:", 0) == 0) {
        const bool nth = text.rfind("nth:", 0) == 0;
        site.trigger = nth ? Trigger::Nth : Trigger::Every;
        const std::string operand = text.substr(nth ? 4 : 6);
        if (!parseUnsigned(operand, site.n) || site.n == 0) {
            error = "bad trigger count '" + operand + "'";
            return false;
        }
    } else if (text.rfind("prob:", 0) == 0) {
        site.trigger = Trigger::Prob;
        std::string operand = text.substr(5);
        std::uint64_t seed = 0;
        if (const std::size_t colon = operand.find(':');
            colon != std::string::npos) {
            if (!parseUnsigned(operand.substr(colon + 1), seed)) {
                error = "bad probability seed '" +
                        operand.substr(colon + 1) + "'";
                return false;
            }
            operand.resize(colon);
        }
        if (!parseDouble(operand, site.probability) ||
            site.probability < 0.0 || site.probability > 1.0) {
            error = "bad probability '" + operand +
                    "' (expected 0..1)";
            return false;
        }
        site.n = seed; // stashed; parsePoint mixes in the site name
    } else {
        error = "unknown trigger '" + text +
                "' (expected always | once | nth:N | every:N | "
                "prob:P[:SEED])";
        return false;
    }
    return true;
}

bool
parsePoint(const std::string &text,
           std::map<std::string, Site, std::less<>> &sites,
           std::string &error)
{
    const std::size_t eq = text.find('=');
    if (eq == std::string::npos || eq == 0) {
        error = "expected SITE=ACTION[@TRIGGER], got '" + text + "'";
        return false;
    }
    const std::string name = text.substr(0, eq);
    std::string rest = text.substr(eq + 1);
    Site site;
    std::string trigger = "always";
    if (const std::size_t at = rest.find('@');
        at != std::string::npos) {
        trigger = rest.substr(at + 1);
        rest.resize(at);
    }
    if (!parseAction(rest, site, error) ||
        !parseTrigger(trigger, site, error)) {
        error = name + ": " + error;
        return false;
    }
    // Two prob sites armed with one seed must not fire in lockstep,
    // so the stream seed folds in the site name.
    if (site.trigger == Trigger::Prob)
        site.rng = Rng(site.n ^ hash::fnv1a(name));
    if (!sites.emplace(name, site).second) {
        error = name + ": site armed twice in one spec";
        return false;
    }
    return true;
}

} // namespace

namespace detail
{

std::atomic<bool> g_armed{false};

Action
evaluate(std::string_view site)
{
    Action action;
    {
        std::lock_guard<std::mutex> lock(g_mu);
        const auto it = g_sites.find(site);
        if (it == g_sites.end())
            return {};
        Site &s = it->second;
        ++s.evals;
        bool fired = false;
        switch (s.trigger) {
          case Trigger::Always:
            fired = true;
            break;
          case Trigger::Nth:
            fired = s.evals == s.n;
            break;
          case Trigger::Every:
            fired = s.evals % s.n == 0;
            break;
          case Trigger::Prob:
            fired = s.rng.nextBool(s.probability);
            break;
        }
        if (!fired)
            return {};
        ++s.fires;
        action = s.action;
    }
    // Delay and Abort are absorbed here (outside the lock) so every
    // instrumented site supports them without handling code.
    if (action.kind == Action::Kind::Delay) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(action.delayMs));
        return {};
    }
    if (action.kind == Action::Kind::Abort)
        std::abort();
    return action;
}

} // namespace detail

bool
configure(const std::string &spec, std::string &error)
{
    std::map<std::string, Site, std::less<>> sites;
    std::size_t start = 0;
    while (start < spec.size()) {
        std::size_t end = spec.find(';', start);
        if (end == std::string::npos)
            end = spec.size();
        const std::string point = spec.substr(start, end - start);
        if (!point.empty() &&
            !parsePoint(point, sites, error)) {
            error = "failpoints: " + error;
            return false;
        }
        start = end + 1;
    }
    std::lock_guard<std::mutex> lock(g_mu);
    g_sites = std::move(sites);
    detail::g_armed.store(!g_sites.empty(),
                          std::memory_order_relaxed);
    return true;
}

void
reset()
{
    std::lock_guard<std::mutex> lock(g_mu);
    g_sites.clear();
    detail::g_armed.store(false, std::memory_order_relaxed);
}

bool
armed()
{
    return detail::g_armed.load(std::memory_order_relaxed);
}

std::uint64_t
evalCount(std::string_view site)
{
    std::lock_guard<std::mutex> lock(g_mu);
    const auto it = g_sites.find(site);
    return it == g_sites.end() ? 0 : it->second.evals;
}

std::uint64_t
fireCount(std::string_view site)
{
    std::lock_guard<std::mutex> lock(g_mu);
    const auto it = g_sites.find(site);
    return it == g_sites.end() ? 0 : it->second.fires;
}

json::Value
statsJson()
{
    std::lock_guard<std::mutex> lock(g_mu);
    json::Value out = json::Value::object();
    for (const auto &[name, site] : g_sites) {
        json::Value counters = json::Value::object();
        counters.set("action", json::Value::string(
                                   actionName(site.action.kind)));
        counters.set("evals", json::Value::unsignedInt(site.evals));
        counters.set("fires", json::Value::unsignedInt(site.fires));
        out.set(name, std::move(counters));
    }
    return out;
}

} // namespace dfi::failpoint

/**
 * @file
 * Simple typed key/value configuration store.
 *
 * Used for the simulator configurations of Table II and for campaign
 * parameters.  Values are stored as strings and converted on access;
 * unknown keys fall back to a supplied default, and fatal() is raised
 * on malformed values (user error).
 */

#ifndef DFI_COMMON_CONFIG_HH
#define DFI_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>

namespace dfi
{

/** String-backed configuration dictionary with typed accessors. */
class Config
{
  public:
    Config() = default;

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, std::int64_t value);
    void set(const std::string &key, bool value);

    /** True if the key is present. */
    bool has(const std::string &key) const;

    /** Typed getters with defaults. */
    std::string getString(const std::string &key,
                          const std::string &def = "") const;
    std::int64_t getInt(const std::string &key, std::int64_t def = 0) const;
    std::uint64_t getUint(const std::string &key,
                          std::uint64_t def = 0) const;
    bool getBool(const std::string &key, bool def = false) const;
    double getDouble(const std::string &key, double def = 0.0) const;

    /** All entries (sorted), for config dumps. */
    const std::map<std::string, std::string> &all() const
    {
        return values_;
    }

  private:
    std::map<std::string, std::string> values_;
};

/**
 * Read an environment-variable override used by the bench harnesses
 * (e.g. DFI_INJECTIONS); returns `def` when unset or malformed.
 */
std::uint64_t envUint(const char *name, std::uint64_t def);

} // namespace dfi

#endif // DFI_COMMON_CONFIG_HH

/**
 * @file
 * Minimal deterministic JSON value: build, serialize, parse.
 *
 * The telemetry layer (inject/telemetry.hh) needs machine-readable
 * artifacts whose bytes are reproducible across runs, job counts and
 * hosts, so this implementation is deliberately strict about
 * determinism:
 *  - object members keep insertion order (no hashing, no re-sorting),
 *    so a writer that emits fields in a fixed order produces a fixed
 *    byte stream;
 *  - numbers are stored as either an exact signed/unsigned integer or
 *    a double formatted with a fixed "%.6g"-free scheme (shortest
 *    fixed-point with up to six fractional digits, trailing zeros
 *    trimmed), which round-trips every value the telemetry schema
 *    emits identically on every platform;
 *  - serialization inserts no locale-dependent characters.
 *
 * This is not a general-purpose JSON library: no comments, no
 * surrogate-pair escapes beyond pass-through, inputs larger than the
 * telemetry artifacts were never a design goal.
 */

#ifndef DFI_COMMON_JSON_HH
#define DFI_COMMON_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace dfi::json
{

/** Discriminator for Value. */
enum class Kind : std::uint8_t
{
    Null,
    Bool,
    Int,    //!< exact 64-bit unsigned magnitude with sign flag
    Double, //!< non-integral number
    String,
    Array,
    Object
};

/** One JSON value (tree node). */
class Value
{
  public:
    Value() = default;

    static Value null() { return Value(); }
    static Value boolean(bool b);
    static Value integer(std::int64_t v);
    static Value unsignedInt(std::uint64_t v);
    static Value number(double v);
    static Value string(std::string s);
    static Value array();
    static Value object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }
    /** True for a Kind::Int built or parsed with a minus sign. */
    bool isNegative() const
    {
        return kind_ == Kind::Int && negative_;
    }

    /** Typed accessors; fatal() on kind mismatch (caller bug). */
    bool asBool() const;
    std::uint64_t asUint() const;
    std::int64_t asInt() const;
    double asDouble() const;
    const std::string &asString() const;

    /** Array access. */
    void push(Value v);
    std::size_t size() const;
    const Value &at(std::size_t index) const;

    /** Object access: set appends or overwrites, keeping order. */
    void set(const std::string &key, Value v);
    bool has(const std::string &key) const;
    /** Member lookup; nullptr when absent (or not an object). */
    const Value *find(const std::string &key) const;
    /** Member lookup; fatal() when absent. */
    const Value &get(const std::string &key) const;
    const std::vector<std::pair<std::string, Value>> &members() const;

    /** Serialize on one line (no whitespace). */
    std::string dump() const;
    /** Serialize with 2-space indentation and a trailing newline. */
    std::string dumpPretty() const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    bool negative_ = false;
    std::uint64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Value> array_;
    std::vector<std::pair<std::string, Value>> object_;

    void dumpTo(std::string &out, int indent, int depth) const;
};

/** Format a double the way Value::dump does (deterministic). */
std::string formatNumber(double value);

/** Quote + escape a string as a JSON string literal. */
std::string quote(const std::string &raw);

/**
 * Parse one JSON document.  On success returns true and fills
 * `out`; on malformed input returns false and fills `error` with a
 * byte offset + reason (never fatal(): telemetry files are external
 * input, and dfi-diff must turn bad files into an exit code).
 */
bool parse(const std::string &text, Value &out, std::string &error);

} // namespace dfi::json

#endif // DFI_COMMON_JSON_HH

/**
 * @file
 * gem5-style status and error reporting for the DFI framework.
 *
 * The distinction between the report levels follows the gem5 coding
 * style guide:
 *  - panic():  something happened that should never happen regardless
 *              of what the user does, i.e. a framework bug.  Aborts.
 *  - fatal():  the run cannot continue due to a user error (bad
 *              configuration, invalid arguments).  Throws FatalError so
 *              embedding tools (and tests) can intercept it.
 *  - warn():   something works well enough but deserves attention.
 *  - inform(): plain status messages.
 *
 * Note that *simulated* failures (guest crashes, simulator-model
 * assertion checkpoints raised by injected faults) deliberately do NOT
 * use these functions: they are modelled outcomes, reported through
 * syskit::RunOutcome, never host-process errors.
 *
 * Every emitter is thread-safe: a log line is rendered into one
 * string and written under a per-line mutex, so output from parallel
 * campaign workers is never torn mid-line.
 */

#ifndef DFI_COMMON_LOGGING_HH
#define DFI_COMMON_LOGGING_HH

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dfi
{

/** Thrown by fatal(): an unrecoverable *user* error (not a bug). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Verbosity levels for the global logger. */
enum class LogLevel : std::uint8_t
{
    Quiet = 0,  //!< errors only
    Warn = 1,   //!< + warnings
    Info = 2,   //!< + status messages
    Debug = 3,  //!< + debugging chatter
};

/** Set the process-wide verbosity (default: Warn). */
void setLogLevel(LogLevel level);

/** Current process-wide verbosity. */
LogLevel logLevel();

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Minimal printf-style formatter into std::string ('%s' style via streams). */
inline void
formatRest(std::ostringstream &os, const char *fmt)
{
    os << fmt;
}

template <typename T, typename... Args>
void
formatRest(std::ostringstream &os, const char *fmt, const T &value,
           Args &&...args)
{
    for (; *fmt; ++fmt) {
        if (fmt[0] == '%' && fmt[1] == 's') {
            os << value;
            formatRest(os, fmt + 2, std::forward<Args>(args)...);
            return;
        }
        os << *fmt;
    }
}

template <typename... Args>
std::string
format(const char *fmt, Args &&...args)
{
    std::ostringstream os;
    formatRest(os, fmt, std::forward<Args>(args)...);
    return os.str();
}

} // namespace detail

/**
 * Report a framework bug and abort.  Use only for conditions that can
 * never occur unless dfi itself is broken.
 */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args &&...args)
{
    detail::panicImpl("", 0,
                      detail::format(fmt, std::forward<Args>(args)...));
}

/** Report an unrecoverable user error; throws FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args &&...args)
{
    detail::fatalImpl(detail::format(fmt, std::forward<Args>(args)...));
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(const char *fmt, Args &&...args)
{
    detail::warnImpl(detail::format(fmt, std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(const char *fmt, Args &&...args)
{
    detail::informImpl(detail::format(fmt, std::forward<Args>(args)...));
}

/** Debug chatter, only shown at LogLevel::Debug. */
template <typename... Args>
void
debugLog(const char *fmt, Args &&...args)
{
    detail::debugImpl(detail::format(fmt, std::forward<Args>(args)...));
}

} // namespace dfi

#endif // DFI_COMMON_LOGGING_HH

#include "common/netio.hh"

#include <cerrno>
#include <poll.h>
#include <unistd.h>

#include "common/failpoint.hh"
#include "common/json.hh"

namespace dfi::netio
{

namespace
{

/** Wait for `events` on fd; 1 ready, 0 timeout, -1 error. */
int
waitFor(int fd, short events, int timeoutMs)
{
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    while (true) {
        const int ready = ::poll(&pfd, 1, timeoutMs);
        if (ready < 0 && errno == EINTR)
            continue;
        return ready;
    }
}

} // namespace

ReadResult
LineReader::next(std::string &out)
{
    out.clear();
    char buf[4096];
    while (true) {
        while (scan_ < pending_.size()) {
            const char ch = pending_[scan_++];
            if (ch == '\n') {
                pending_.erase(0, scan_);
                scan_ = 0;
                return ReadResult::Line;
            }
            out.push_back(ch);
            if (out.size() > maxLineBytes_)
                return ReadResult::TooLong;
        }
        pending_.clear();
        scan_ = 0;
        if (idleTimeoutMs_ >= 0) {
            const int ready = waitFor(fd_, POLLIN, idleTimeoutMs_);
            if (ready < 0)
                return ReadResult::Error;
            if (ready == 0)
                return ReadResult::Timeout;
        }
        const failpoint::Action chaos =
            failpoint::check("sock.read");
        ssize_t n;
        if (chaos.kind == failpoint::Action::Kind::Error) {
            errno = EIO;
            n = -1;
        } else if (chaos.kind == failpoint::Action::Kind::Eintr) {
            errno = EINTR;
            n = -1;
        } else {
            const std::size_t want =
                chaos.kind == failpoint::Action::Kind::Short
                    ? 1
                    : sizeof buf;
            n = ::read(fd_, buf, want);
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // Non-blocking fd raced poll (or no poll configured):
                // wait for readability and retry.
                const int ready = waitFor(fd_, POLLIN,
                                          idleTimeoutMs_);
                if (ready < 0)
                    return ReadResult::Error;
                if (ready == 0)
                    return ReadResult::Timeout;
                continue;
            }
            return ReadResult::Error;
        }
        if (n == 0)
            return ReadResult::Eof;
        pending_.assign(buf, static_cast<std::size_t>(n));
    }
}

bool
writeAll(int fd, std::string_view data, int timeoutMs)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const failpoint::Action chaos =
            failpoint::check("sock.write");
        ssize_t n;
        if (chaos.kind == failpoint::Action::Kind::Error) {
            errno = EIO;
            n = -1;
        } else if (chaos.kind == failpoint::Action::Kind::Eintr) {
            errno = EINTR;
            n = -1;
        } else {
            const std::size_t want =
                chaos.kind == failpoint::Action::Kind::Short
                    ? 1
                    : data.size() - off;
            n = ::write(fd, data.data() + off, want);
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // The peer is not draining its socket.  Bounded wait:
            // a stalled reader fails the write instead of wedging
            // the writing thread forever.
            const int ready = waitFor(fd, POLLOUT, timeoutMs);
            if (ready <= 0)
                return false;
            continue;
        }
        if (n <= 0)
            return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
writeLine(int fd, const json::Value &line, int timeoutMs)
{
    return writeAll(fd, line.dump() + "\n", timeoutMs);
}

} // namespace dfi::netio

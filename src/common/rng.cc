#include "common/rng.hh"

#include "common/logging.hh"

namespace dfi
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
    // All-zero state is invalid for xoshiro; splitmix64 never produces
    // four zero outputs in a row, but be defensive anyway.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 &&
        state_[3] == 0) {
        state_[0] = 1;
    }
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBounded called with zero bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    if (lo > hi)
        panic("Rng::nextRange: lo > hi");
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) // full 64-bit range
        return next64();
    return lo + nextBounded(span);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

Rng
Rng::fork()
{
    return Rng(next64());
}

} // namespace dfi

#include "common/hash.hh"

namespace dfi::hash
{

void
Fnv1a::update(const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        state_ ^= bytes[i];
        state_ *= kPrime;
    }
}

void
Fnv1a::update(std::string_view text)
{
    update(static_cast<std::uint64_t>(text.size()));
    update(text.data(), text.size());
}

void
Fnv1a::update(std::uint64_t value)
{
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<unsigned char>(value >> (8 * i));
    update(bytes, sizeof(bytes));
}

std::string
Fnv1a::hexDigest() const
{
    return toHex(state_);
}

std::uint64_t
fnv1a(std::string_view text)
{
    Fnv1a hasher;
    hasher.update(text.data(), text.size());
    return hasher.digest();
}

std::string
toHex(std::uint64_t value)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xf];
        value >>= 4;
    }
    return out;
}

} // namespace dfi::hash

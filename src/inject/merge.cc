#include "inject/merge.hh"

#include <algorithm>
#include <fstream>

#include "inject/telemetry.hh"

namespace dfi::inject
{

bool
mergeTelemetryStreams(const std::vector<std::string> &paths,
                      MergeResult &out, std::string &error)
{
    out = MergeResult{};
    if (paths.empty()) {
        error = "no shard streams to merge";
        return false;
    }

    std::string header_dump;
    std::string header_path;
    std::uint64_t runs_total = 0;
    std::vector<TelemetryRecord> records;
    for (const std::string &path : paths) {
        TelemetryFile file;
        if (!readTelemetryFile(path, file, error))
            return false;
        if (file.kind != kTelemetryRunsKind) {
            error = path + ": not a run stream (kind '" + file.kind +
                    "')";
            return false;
        }
        if (!file.warning.empty())
            out.warnings.push_back(path + ": " + file.warning);
        // Shards of one campaign carry the *same* header bytes (the
        // config echo excludes the shard spec), so dump-string
        // equality is the whole compatibility check: schema, config,
        // golden reference and runs_total in one comparison.
        const std::string dump = file.header.dump();
        if (header_dump.empty()) {
            header_dump = dump;
            header_path = path;
            const json::Value *total = file.header.find("runs_total");
            if (total == nullptr ||
                total->kind() != json::Kind::Int ||
                total->isNegative()) {
                error = path + ": header has no 'runs_total' (stream "
                               "predates sharding; re-run the "
                               "campaign to merge)";
                return false;
            }
            runs_total = total->asUint();
        } else if (dump != header_dump) {
            error = path + ": header differs from " + header_path +
                    " (shards of different campaigns?)";
            return false;
        }
        for (TelemetryRecord &record : file.records)
            records.push_back(std::move(record));
    }

    std::sort(records.begin(), records.end(),
              [](const TelemetryRecord &a, const TelemetryRecord &b) {
                  return a.runId < b.runId;
              });
    // Full-plan runIds are 0..runs_total-1, so sorted coverage means
    // records[i].runId == i; anything else is a duplicate or a gap.
    if (records.size() != runs_total) {
        error = "merged record count " +
                std::to_string(records.size()) + " != runs_total " +
                std::to_string(runs_total) +
                (records.size() < runs_total ? " (missing shard?)"
                                             : " (overlapping "
                                               "shards?)");
        return false;
    }
    for (std::size_t i = 0; i < records.size(); ++i) {
        if (records[i].runId == i)
            continue;
        if (i > 0 && records[i].runId == records[i - 1].runId)
            error = "duplicate record for run " +
                    std::to_string(records[i].runId) +
                    " (overlapping shards?)";
        else
            error = "missing record for run " + std::to_string(i) +
                    " (incomplete shard set?)";
        return false;
    }

    json::Value header;
    if (!json::parse(header_dump, header, error))
        return false; // unreachable: dump of a parsed value
    const json::Value *config = header.find("config");
    const json::Value *golden = header.find("golden");
    const json::Value *golden_cycles =
        golden == nullptr ? nullptr : golden->find("cycles");
    if (config == nullptr || golden_cycles == nullptr ||
        golden_cycles->kind() != json::Kind::Int ||
        golden_cycles->isNegative()) {
        error = header_path + ": header missing config/golden echo";
        return false;
    }

    // Pruning tallies are campaign-wide and identical across shard
    // headers; pre-v3 streams have no "prune" member, in which case
    // the summary omits the object too.
    PruneStats prune_stats;
    bool have_prune = false;
    if (const json::Value *prune = header.find("prune");
        prune != nullptr) {
        const auto uintField = [](const json::Value *v) {
            return v != nullptr && v->kind() == json::Kind::Int &&
                   !v->isNegative();
        };
        const json::Value *stat = prune->find("pruned_static");
        const json::Value *equiv = prune->find("pruned_equiv");
        const json::Value *sim = prune->find("simulated");
        if (!uintField(stat) || !uintField(equiv) ||
            !uintField(sim)) {
            error = header_path + ": malformed 'prune' header echo";
            return false;
        }
        prune_stats.prunedStatic = stat->asUint();
        prune_stats.prunedEquiv = equiv->asUint();
        prune_stats.simulated = sim->asUint();
        have_prune = true;
    }

    SummaryAccumulator acc(golden_cycles->asUint());
    out.runsJsonl = header_dump;
    out.runsJsonl += '\n';
    for (const TelemetryRecord &record : records) {
        // Pre-check the outcome name: the accumulator fatal()s on an
        // unknown class, but shard streams are external input and
        // must report through `error` instead.
        OutcomeClass cls = OutcomeClass::Masked;
        if (!outcomeClassFromName(record.outcome, cls)) {
            error = "run " + std::to_string(record.runId) +
                    ": unknown outcome class '" + record.outcome +
                    "'";
            return false;
        }
        acc.add(record);
        out.runsJsonl += record.toJson().dump();
        out.runsJsonl += '\n';
    }
    out.summaryJson = acc.summaryJson(
        *config, *golden, 0, have_prune ? &prune_stats : nullptr);
    out.runs = records.size();
    return true;
}

bool
mergeTelemetryFiles(const std::vector<std::string> &paths,
                    const std::string &base, MergeResult &out,
                    std::string &error)
{
    if (!mergeTelemetryStreams(paths, out, error))
        return false;
    const std::string runs_path = base + ".jsonl";
    std::ofstream runs(runs_path, std::ios::binary);
    runs << out.runsJsonl;
    if (!runs) {
        error = "cannot write '" + runs_path + "'";
        return false;
    }
    runs.close();
    const std::string summary_path = base + ".summary.json";
    std::ofstream summary(summary_path, std::ios::binary);
    summary << out.summaryJson;
    if (!summary) {
        error = "cannot write '" + summary_path + "'";
        return false;
    }
    return true;
}

} // namespace dfi::inject

#include "inject/plan.hh"

#include <algorithm>

#include "common/logging.hh"
#include "inject/mask_gen.hh"
#include "inject/sampling.hh"
#include "inject/target.hh"
#include "uarch/ooo_core.hh"

namespace dfi::inject
{

CampaignPlan::CampaignPlan(CampaignConfig config,
                           syskit::RunRecord golden,
                           std::vector<dfi::FaultMask> masks,
                           std::uint64_t num_runs)
    : config_(std::move(config)), golden_(std::move(golden)),
      masks_(std::move(masks)), totalRuns_(num_runs)
{
    tasks_.resize(num_runs);
    for (std::uint64_t run_id = 0; run_id < num_runs; ++run_id) {
        tasks_[run_id].runId = run_id;
        tasks_[run_id].ordinal = run_id;
    }
    for (const dfi::FaultMask &mask : masks_) {
        if (mask.runId >= num_runs)
            panic("plan: mask runId %s out of range (%s runs)",
                  mask.runId, num_runs);
        RunTask &task = tasks_[mask.runId];
        task.masks.push_back(mask);
        if (task.masks.size() == 1 || mask.cycle < task.firstCycle)
            task.firstCycle = mask.cycle;
    }
}

CampaignPlan
CampaignPlan::filtered(
    const std::function<bool(std::uint64_t)> &keep) const
{
    CampaignPlan view;
    view.config_ = config_;
    view.golden_ = golden_;
    view.masks_ = masks_;
    view.totalRuns_ = totalRuns_;
    for (const RunTask &task : tasks_) {
        if (!keep(task.runId))
            continue;
        view.tasks_.push_back(task);
        view.tasks_.back().ordinal = view.tasks_.size() - 1;
    }
    return view;
}

CampaignPlan
CampaignPlan::shardView(const ShardSpec &shard) const
{
    if (shard.count == 0 || shard.index >= shard.count)
        fatal("plan: bad shard %s/%s (need 0 <= index < count)",
              shard.index, shard.count);
    return filtered([&shard](std::uint64_t run_id) {
        return run_id % shard.count == shard.index;
    });
}

CampaignPlan
CampaignPlan::withoutRuns(
    const std::unordered_set<std::uint64_t> &completed) const
{
    for (const std::uint64_t run_id : completed) {
        const bool known =
            std::any_of(tasks_.begin(), tasks_.end(),
                        [run_id](const RunTask &task) {
                            return task.runId == run_id;
                        });
        if (!known)
            fatal("plan: completed run %s is not part of this "
                  "campaign%s",
                  run_id,
                  tasks_.size() != totalRuns_
                      ? " shard (resume file and --shard disagree?)"
                      : " (resume file from another campaign?)");
    }
    return filtered([&completed](std::uint64_t run_id) {
        return completed.count(run_id) == 0;
    });
}

CampaignPlan
planCampaign(const CampaignConfig &config,
             const syskit::RunRecord &golden, uarch::OooCore &probe)
{
    std::uint64_t runs = config.numInjections;
    if (runs == 0) {
        const std::uint64_t population =
            componentBits(config.component, probe) * golden.cycles;
        runs = requiredInjections(population, config.confidence,
                                  config.margin);
    }

    MaskGenConfig gen;
    gen.component = config.component;
    gen.type = config.faultType;
    gen.population = config.population;
    gen.numRuns = runs;
    gen.maxCycle = golden.cycles;
    gen.intermittentMin = config.intermittentMin;
    gen.intermittentMax = config.intermittentMax;
    gen.seed = config.seed;

    return CampaignPlan(config, golden, generateMasks(gen, probe),
                        runs);
}

} // namespace dfi::inject

#include "inject/plan.hh"

#include <algorithm>

#include "common/logging.hh"
#include "inject/mask_gen.hh"
#include "inject/sampling.hh"
#include "inject/target.hh"
#include "uarch/ooo_core.hh"

namespace dfi::inject
{

CampaignPlan::CampaignPlan(CampaignConfig config,
                           syskit::RunRecord golden,
                           std::vector<dfi::FaultMask> masks,
                           std::uint64_t num_runs)
    : config_(std::move(config)), golden_(std::move(golden)),
      masks_(std::move(masks))
{
    tasks_.resize(num_runs);
    for (std::uint64_t run_id = 0; run_id < num_runs; ++run_id)
        tasks_[run_id].runId = run_id;
    for (const dfi::FaultMask &mask : masks_) {
        if (mask.runId >= num_runs)
            panic("plan: mask runId %s out of range (%s runs)",
                  mask.runId, num_runs);
        RunTask &task = tasks_[mask.runId];
        task.masks.push_back(mask);
        if (task.masks.size() == 1 || mask.cycle < task.firstCycle)
            task.firstCycle = mask.cycle;
    }
}

CampaignPlan
planCampaign(const CampaignConfig &config,
             const syskit::RunRecord &golden, uarch::OooCore &probe)
{
    std::uint64_t runs = config.numInjections;
    if (runs == 0) {
        const std::uint64_t population =
            componentBits(config.component, probe) * golden.cycles;
        runs = requiredInjections(population, config.confidence,
                                  config.margin);
    }

    MaskGenConfig gen;
    gen.component = config.component;
    gen.type = config.faultType;
    gen.population = config.population;
    gen.numRuns = runs;
    gen.maxCycle = golden.cycles;
    gen.intermittentMin = config.intermittentMin;
    gen.intermittentMax = config.intermittentMax;
    gen.seed = config.seed;

    return CampaignPlan(config, golden, generateMasks(gen, probe),
                        runs);
}

} // namespace dfi::inject

#include "inject/plan.hh"

#include <algorithm>

#include "common/logging.hh"
#include "inject/mask_gen.hh"
#include "inject/sampling.hh"
#include "inject/target.hh"
#include "uarch/ooo_core.hh"

namespace dfi::inject
{

namespace
{

/**
 * Ceiling on `--exhaustive` enumeration.  Exhaustive campaigns are
 * meant for small structures (the pruning pipeline then collapses
 * most sites); anything bigger than this is a config mistake, not a
 * campaign.
 */
constexpr std::uint64_t kMaxExhaustiveSites = 4'000'000;

/**
 * Stage 1, exhaustive flavor: one single-bit transient site for every
 * bit x cycle of the component, in (structure, entry, bit, cycle)
 * order with sequential runIds.
 */
std::vector<dfi::FaultMask>
enumerateExhaustive(const CampaignConfig &config,
                    const syskit::RunRecord &golden,
                    uarch::OooCore &probe, std::uint64_t &runs)
{
    if (golden.cycles == 0)
        fatal("exhaustive enumeration: zero-length golden run");
    const std::vector<dfi::StructureId> structures =
        resolveComponent(config.component, probe);

    std::uint64_t total = 0;
    for (const dfi::StructureId structure : structures) {
        const dfi::FaultableArray *array = probe.arrayFor(structure);
        if (array != nullptr)
            total += array->totalBits() * golden.cycles;
    }
    if (total == 0)
        fatal("exhaustive enumeration: component '%s' has no "
              "injectable bits on core '%s'",
              config.component, config.coreName);
    if (total > kMaxExhaustiveSites)
        fatal("exhaustive enumeration of '%s' would plan %s runs "
              "(cap %s); pick a smaller structure or workload, or "
              "sample with --injections",
              config.component, total, kMaxExhaustiveSites);

    std::vector<dfi::FaultMask> masks;
    masks.reserve(total);
    std::uint64_t run_id = 0;
    for (const dfi::StructureId structure : structures) {
        const dfi::FaultableArray *array = probe.arrayFor(structure);
        if (array == nullptr)
            continue;
        for (std::size_t entry = 0; entry < array->numEntries();
             ++entry) {
            for (std::size_t bit = 0; bit < array->bitsPerEntry();
                 ++bit) {
                for (std::uint64_t cycle = 1; cycle <= golden.cycles;
                     ++cycle) {
                    dfi::FaultMask mask;
                    mask.runId = static_cast<std::uint32_t>(run_id++);
                    mask.structure = structure;
                    mask.entry = static_cast<std::uint32_t>(entry);
                    mask.bit = static_cast<std::uint32_t>(bit);
                    mask.type = dfi::FaultType::Transient;
                    mask.cycle = cycle;
                    masks.push_back(mask);
                }
            }
        }
    }
    runs = run_id;
    return masks;
}

} // namespace

CampaignPlan::CampaignPlan(CampaignConfig config,
                           syskit::RunRecord golden,
                           std::vector<dfi::FaultMask> masks,
                           std::uint64_t num_runs)
    : config_(std::move(config)), golden_(std::move(golden)),
      masks_(std::move(masks)), totalRuns_(num_runs)
{
    tasks_.resize(num_runs);
    for (std::uint64_t run_id = 0; run_id < num_runs; ++run_id) {
        tasks_[run_id].runId = run_id;
        tasks_[run_id].ordinal = run_id;
    }
    for (const dfi::FaultMask &mask : masks_) {
        if (mask.runId >= num_runs)
            panic("plan: mask runId %s out of range (%s runs)",
                  mask.runId, num_runs);
        RunTask &task = tasks_[mask.runId];
        task.masks.push_back(mask);
        if (task.masks.size() == 1 || mask.cycle < task.firstCycle)
            task.firstCycle = mask.cycle;
    }
    // Until (unless) applyPruning() runs, every run is simulated.
    pruneStats_.simulated = num_runs;
}

void
CampaignPlan::applyPruning(
    const std::vector<SiteClassification> &classifications)
{
    if (!pruned_.empty())
        panic("plan: applyPruning called twice");
    if (tasks_.size() != totalRuns_)
        panic("plan: applyPruning on a plan view (%s of %s tasks)",
              tasks_.size(), totalRuns_);
    if (classifications.size() != totalRuns_)
        panic("plan: %s classifications for %s runs",
              classifications.size(), totalRuns_);

    std::vector<RunTask> kept;
    PruneStats stats;
    for (std::uint64_t run_id = 0; run_id < totalRuns_; ++run_id) {
        const SiteClassification &cls = classifications[run_id];
        RunTask &task = tasks_[run_id];
        if (task.masks.size() != 1)
            panic("plan: applyPruning on run %s with %s masks "
                  "(single-bit campaigns only)",
                  run_id, task.masks.size());
        if (cls.verdict == SiteVerdict::Simulate) {
            task.pruneClass = cls.pruneClass;
            task.ordinal = kept.size();
            kept.push_back(std::move(task));
            ++stats.simulated;
            continue;
        }
        PrunedRun pruned;
        pruned.runId = run_id;
        pruned.verdict = cls.verdict;
        pruned.mask = task.masks[0];
        pruned.cycles = cls.cycles;
        pruned.instructions = cls.instructions;
        pruned.repRunId = cls.repRunId;
        pruned.pruneClass = cls.pruneClass;
        pruned_.push_back(std::move(pruned));
        if (cls.verdict == SiteVerdict::EquivMember)
            ++stats.prunedEquiv;
        else
            ++stats.prunedStatic;
    }
    tasks_ = std::move(kept);
    pruneStats_ = stats;
}

CampaignPlan
CampaignPlan::filtered(
    const std::function<bool(std::uint64_t)> &keep) const
{
    CampaignPlan view;
    view.config_ = config_;
    view.golden_ = golden_;
    view.masks_ = masks_;
    view.totalRuns_ = totalRuns_;
    view.pruneStats_ = pruneStats_; // campaign-wide, never view-local
    for (const RunTask &task : tasks_) {
        if (!keep(task.runId))
            continue;
        view.tasks_.push_back(task);
        view.tasks_.back().ordinal = view.tasks_.size() - 1;
    }
    view.pruned_.reserve(pruned_.size());
    for (const PrunedRun &pruned : pruned_) {
        if (keep(pruned.runId))
            view.pruned_.push_back(pruned);
    }
    return view;
}

CampaignPlan
CampaignPlan::shardView(const ShardSpec &shard) const
{
    if (shard.count == 0 || shard.index >= shard.count)
        fatal("plan: bad shard %s/%s (need 0 <= index < count)",
              shard.index, shard.count);
    CampaignPlan view = filtered([&shard](std::uint64_t run_id) {
        return run_id % shard.count == shard.index;
    });

    // An equivalence-class member stranded without its representative
    // (the rep's runId lands in another shard) is promoted back to a
    // real task: simulating it yields a record byte-identical to the
    // rep's, so the shard stream still merges into the unsharded
    // bytes.
    std::vector<PrunedRun> kept;
    std::vector<RunTask> promoted;
    for (const PrunedRun &pruned : view.pruned_) {
        if (pruned.verdict == SiteVerdict::EquivMember &&
            pruned.repRunId % shard.count != shard.index) {
            RunTask task;
            task.runId = pruned.runId;
            task.masks.push_back(pruned.mask);
            task.firstCycle = pruned.mask.cycle;
            task.pruneClass = pruned.pruneClass;
            promoted.push_back(std::move(task));
        } else {
            kept.push_back(pruned);
        }
    }
    if (!promoted.empty()) {
        view.pruned_ = std::move(kept);
        for (RunTask &task : promoted)
            view.tasks_.push_back(std::move(task));
        std::sort(view.tasks_.begin(), view.tasks_.end(),
                  [](const RunTask &a, const RunTask &b) {
                      return a.runId < b.runId;
                  });
        for (std::size_t i = 0; i < view.tasks_.size(); ++i)
            view.tasks_[i].ordinal = i;
    }
    return view;
}

CampaignPlan
CampaignPlan::withoutRuns(
    const std::unordered_set<std::uint64_t> &completed) const
{
    for (const std::uint64_t run_id : completed) {
        const bool known =
            std::any_of(tasks_.begin(), tasks_.end(),
                        [run_id](const RunTask &task) {
                            return task.runId == run_id;
                        }) ||
            std::any_of(pruned_.begin(), pruned_.end(),
                        [run_id](const PrunedRun &pruned) {
                            return pruned.runId == run_id;
                        });
        if (!known)
            fatal("plan: completed run %s is not part of this "
                  "campaign%s",
                  run_id,
                  tasks_.size() + pruned_.size() != totalRuns_
                      ? " shard (resume file and --shard disagree?)"
                      : " (resume file from another campaign?)");
    }
    return filtered([&completed](std::uint64_t run_id) {
        return completed.count(run_id) == 0;
    });
}

bool
planPrunes(const CampaignConfig &config)
{
    // The static verdicts replicate the dispatcher's early-stop
    // records byte-for-byte, so classification is only sound when
    // both early-stop rules are on and every run is a single-bit
    // transient.
    return config.prune &&
           config.population == Population::SingleBit &&
           config.faultType == dfi::FaultType::Transient &&
           config.earlyStopInvalidEntry && config.earlyStopOverwrite;
}

CampaignPlan
planCampaign(const CampaignConfig &config,
             const syskit::RunRecord &golden, uarch::OooCore &probe)
{
    // Stage 1: enumerate.  Sampled campaigns derive the run count
    // from the statistical parameters and draw random masks;
    // exhaustive campaigns enumerate every bit x cycle site.
    std::uint64_t runs = 0;
    std::vector<dfi::FaultMask> masks;
    if (config.exhaustive) {
        masks = enumerateExhaustive(config, golden, probe, runs);
    } else {
        runs = config.numInjections;
        if (runs == 0) {
            const std::uint64_t population =
                componentBits(config.component, probe) * golden.cycles;
            runs = requiredInjections(population, config.confidence,
                                      config.margin);
        }

        MaskGenConfig gen;
        gen.component = config.component;
        gen.type = config.faultType;
        gen.population = config.population;
        gen.numRuns = runs;
        gen.maxCycle = golden.cycles;
        gen.intermittentMin = config.intermittentMin;
        gen.intermittentMax = config.intermittentMax;
        gen.seed = config.seed;
        masks = generateMasks(gen, probe);
    }

    CampaignPlan plan(config, golden, std::move(masks), runs);

    // Stages 2-4: classify, dedupe, prune — when the config admits
    // it.  The probe has not ticked yet (mask generation only reads
    // geometry), so it doubles as the trace core.
    if (planPrunes(config) && runs > 0) {
        const std::vector<dfi::FaultMask> &all = plan.masks();
        if (all.size() != runs)
            panic("plan: %s masks for %s single-bit runs", all.size(),
                  runs);
        std::vector<FaultSite> sites(runs);
        for (std::uint64_t i = 0; i < runs; ++i) {
            const dfi::FaultMask &mask = all[i];
            if (mask.runId != i)
                panic("plan: mask %s out of runId order", i);
            sites[i] = FaultSite{i, mask.structure, mask.entry,
                                 mask.bit, mask.cycle};
        }
        plan.applyPruning(classifySites(probe, golden, sites));
    }
    return plan;
}

} // namespace dfi::inject

/**
 * @file
 * Injection Campaign Controller and Injector Dispatcher (module 2 of
 * Fig. 1).
 *
 * The controller owns a complete campaign: it runs the golden
 * (fault-free) reference — capturing interval checkpoints of the
 * simulator during that same single pass (the paper's use of the
 * simulators' checkpointing to speed up campaigns; see
 * inject/checkpoint.hh) — asks the Fault Mask Generator for masks,
 * and drives one
 * faulty run per mask group through the dispatcher, which applies the
 * masks to the core's storage arrays and implements the two
 * early-stop optimizations of Section III.B:
 *
 *  (i)  a fault injected into an invalid/unused entry ends the run
 *       immediately as Masked;
 *  (ii) a faulted bit that is overwritten before ever being read ends
 *       the run as Masked.
 *
 * Every faulty run is bounded by `timeoutFactor x golden cycles`
 * (3x in the paper's experiments).
 *
 * Execution is layered (the paper parallelized its campaigns across
 * ~10 workstations; we parallelize across threads):
 *  - planning  (inject/plan.hh)      resolves config + golden run +
 *    sampling + masks into an immutable CampaignPlan of RunTasks;
 *  - executor  (inject/executor.hh)  schedules the tasks serially or
 *    on a thread pool (CampaignConfig::jobs), committing results in
 *    runId order so the output is bit-identical either way;
 *  - reporting (inject/reporting.hh) serialises progress callbacks
 *    and stats aggregation from the workers.
 */

#ifndef DFI_INJECT_CAMPAIGN_HH
#define DFI_INJECT_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "inject/checkpoint.hh"
#include "inject/mask_gen.hh"
#include "inject/prune.hh"
#include "uarch/core_config.hh"
#include "inject/parser.hh"
#include "storage/fault_domain.hh"
#include "syskit/run_record.hh"
#include "uarch/ooo_core.hh"

namespace dfi::inject
{

/**
 * Deterministic campaign shard selector: shard `index` of `count`
 * executes the runs whose `runId % count == index`.  Mask generation,
 * sampling, and seeds are untouched, so N shards partition the exact
 * run set of an unsharded campaign and `dfi-merge` can recombine
 * their telemetry byte-identically.  {0, 1} (the default) is the
 * whole campaign.
 */
struct ShardSpec
{
    std::uint32_t index = 0;
    std::uint32_t count = 1;
};

/**
 * One structured configuration diagnostic from
 * CampaignConfig::validate(): the offending field and what is wrong
 * with it.  Tools print these uniformly as "field: message".
 */
struct ConfigError
{
    std::string field;
    std::string message;
};

/** Full campaign parameters. */
struct CampaignConfig
{
    std::string component = "int_regfile";
    std::string benchmark = "sha";
    std::uint32_t scale = 1;
    std::string coreName = "marss-x86";

    /**
     * Number of injection runs; 0 derives it from the statistical
     * sampling parameters below.
     */
    std::uint64_t numInjections = 0;
    double confidence = 0.99;
    double margin = 0.03;

    dfi::FaultType faultType = dfi::FaultType::Transient;
    Population population = Population::SingleBit;
    std::uint64_t intermittentMin = 50, intermittentMax = 500;

    /**
     * Enumerate every bit x cycle site of the component instead of
     * sampling (CLI `--exhaustive`).  Single-bit transients only,
     * and numInjections must stay 0 (the space defines the count).
     */
    bool exhaustive = false;

    /**
     * Run the planning-time classification pipeline (inject/plan.hh
     * stages 2-4): statically prune provably-masked sites and
     * simulate one representative per fault-equivalence class.  On
     * by default; CLI `--no-prune` disables it.  A pure
     * execution-strategy knob: pruned and unpruned campaigns
     * classify every run identically (DESIGN.md section 10).
     */
    bool prune = true;

    /**
     * Proportional cache-capacity scale (see uarch::scaleCaches).
     * The default 1/16 keeps cache occupancy representative of the
     * paper's testbed at this repository's scaled-down workload
     * footprints; set 1.0 for the full Table II capacities.
     */
    double cacheScale = 0.0625;

    double timeoutFactor = 3.0;
    bool earlyStopInvalidEntry = true;
    bool earlyStopOverwrite = true;
    bool useCheckpoints = true;
    std::uint32_t checkpointCount = 6;

    /**
     * Checkpoint memory budget in MiB (0 = unlimited).  Snapshots
     * are charged at a conservative per-snapshot bound
     * (uarch::OooCore::approxStateBytes); when the budget affords
     * fewer than the capture cadence wants, the spacing widens, and
     * when even two snapshots do not fit — e.g. full-scale L2 data
     * arrays under a small budget — capture drops to the base
     * snapshot alone.  See inject/checkpoint.hh.
     */
    std::uint64_t checkpointMemBudgetMB = 256;

    std::uint64_t seed = 0x5eed;

    /**
     * Worker threads driving the faulty runs: 1 = serial (the
     * default), 0 = hardware concurrency, N = that many threads.
     * The campaign outcome is bit-identical for every value.
     */
    std::uint32_t jobs = 1;

    /**
     * Optional hook applied to the resolved CoreConfig (after cache
     * scaling).  Used by ablation studies to toggle individual model
     * policies (aggressive load issue, hypervisor, assert density,
     * ...) while keeping everything else fixed.
     */
    std::function<void(uarch::CoreConfig &)> configTweak;

    /**
     * Base path for the telemetry artifacts (inject/telemetry.hh):
     * non-empty writes `<base>.jsonl` + `<base>.summary.json` at the
     * end of run().  Empty (the default) disables telemetry.
     */
    std::string telemetryOut;

    /**
     * Record real wall-clock micros and the executor job count in
     * the telemetry.  Off by default so the artifacts stay
     * byte-identical across hosts and `--jobs` values.
     */
    bool telemetryTiming = false;

    /**
     * Which shard of the campaign this process executes (CLI
     * `--shard I/N`).  A pure execution-strategy knob: it selects
     * runs, never changes them, and is deliberately absent from the
     * telemetry config echo so shard artifacts merge byte-identically
     * into the unsharded stream.
     */
    ShardSpec shard;

    /**
     * Path of a partial telemetry run stream (CLI `--resume FILE`):
     * its completed runs are replayed into the new artifacts verbatim
     * and skipped by the executor, so a killed campaign finishes for
     * the cost of the remainder.  The stream's header must echo this
     * exact campaign (config, golden reference, run count); a torn
     * final line — the usual signature of a killed run — is dropped
     * with a warning.  Requires telemetryOut.  Empty (the default)
     * disables resuming.
     */
    std::string resumeFrom;

    /**
     * Build the telemetry artifacts in memory and return them in
     * CampaignResult::telemetryRuns/telemetrySummary even when
     * telemetryOut is empty (no files touched).  The campaign
     * service uses this to ship artifacts over a socket; the client
     * writes the identical bytes a local `dfi-campaign
     * --telemetry-out` run would have produced.
     */
    bool telemetryCapture = false;

    /**
     * Content-address of this campaign for the service's warm
     * artifact cache: a stable FNV-1a digest (16 hex digits) of
     * every outcome-relevant field — exactly the telemetry config
     * echo (program, core model, fault selection, seed, ...) — plus
     * the checkpoint knobs, which shape the cached CheckpointStore.
     * Pure execution/reporting knobs (jobs, telemetry paths, shard,
     * resume, prune) are excluded: they never change the prepared
     * artifacts.  Stable across processes and hosts; `configTweak`
     * is not hashable and must be unset when keys are compared.
     */
    std::string cacheKey() const;

    /**
     * Check every field against its domain (known core/benchmark/
     * component names, probability ranges, shard bounds, flag
     * interactions).  Returns one structured error per violation;
     * empty means the config is runnable.  InjectionCampaign fatal()s
     * on the first invalid config instead of re-checking piecemeal.
     */
    std::vector<ConfigError> validate() const;
};

/**
 * The immutable artifacts of a campaign's preparation pass: the
 * compiled program image, the golden (fault-free) reference run, and
 * the checkpoint store captured during that same single pass.  They
 * are a pure function of (benchmark, scale, core model, cache scale,
 * checkpoint knobs) — none of the fault-selection fields — so any
 * number of campaigns whose CampaignConfig::cacheKey() matches may
 * share one instance: every consumer only ever copy-constructs
 * private cores from the const checkpoint snapshots, which is
 * already the executor's thread-safety contract.
 */
struct PreparedCampaign
{
    isa::Image image;
    std::vector<std::uint8_t> expectedOutput;
    syskit::RunRecord golden;
    CheckpointStore checkpoints;

    /**
     * Conservative resident-footprint bound in bytes (the service's
     * LRU budget accounting).  Snapshots are charged at the
     * per-snapshot bound even though COW sharing usually keeps the
     * true footprint lower.
     */
    std::uint64_t approxBytes() const;
};

/**
 * Serialize prepared artifacts for the service's disk cache
 * (common/serial.hh).  The stream carries only dynamic state; loading
 * reconstructs the snapshot cores from the config named by `cfg`, so
 * a stream is only meaningful under the cacheKey() that produced it —
 * pairing stream and config is the caller's contract (the service
 * names spill files by cache key).
 */
void savePreparedCampaign(const PreparedCampaign &prep,
                          serial::Writer &writer);

/**
 * Rebuild prepared artifacts from a savePreparedCampaign() stream.
 * Returns nullptr (and sets `error`) on any mismatch or truncation;
 * `cfg` must not carry a configTweak (not serializable).
 */
std::shared_ptr<const PreparedCampaign>
loadPreparedCampaign(const CampaignConfig &cfg, serial::Reader &reader,
                     std::string &error);

/**
 * One run the planner pruned instead of simulating, with the outcome
 * the pipeline precomputed for it.  Statically classified runs carry
 * the exact record the dispatcher would have produced; an
 * equivalence-class member carries its representative's record when
 * this process simulated the representative, or just the outcome
 * class when the representative came from a resume stream.
 */
struct PrunedRunOutcome
{
    std::uint64_t runId = 0;
    SiteVerdict verdict = SiteVerdict::InvalidEntry;
    std::uint64_t repRunId = ~0ull;  //!< EquivMember only
    std::uint64_t pruneClass = 0;    //!< 1-based class id, 0 = none
    syskit::RunRecord record;        //!< valid when haveRecord
    bool haveRecord = false;
    OutcomeClass cls = OutcomeClass::Masked; //!< used when !haveRecord
    std::string subclass;
};

/**
 * Everything a campaign leaves behind (the logs repository).  For a
 * sharded or resumed campaign, `records` (and the derived cycle and
 * stats aggregates) cover only the runs this process executed; the
 * telemetry artifacts are the campaign-wide record.  `pruned` covers
 * the runs the classification pipeline removed from this process's
 * plan view; `aggregateStats` deliberately sums executed runs only
 * (pruned runs have no per-run simulator stats — nothing ran).
 */
struct CampaignResult
{
    CampaignConfig config;
    syskit::RunRecord golden;
    std::vector<dfi::FaultMask> masks;          //!< all masks
    std::vector<syskit::RunRecord> records;     //!< one per executed
                                                //!< run, runId order
    std::vector<std::uint64_t> recordRunIds;    //!< runId of records[i]
    std::vector<PrunedRunOutcome> pruned;       //!< runId order
    PruneStats pruneStats;                      //!< campaign-wide
    std::uint64_t simulatedFaultyCycles = 0;    //!< post-restore cycles
    std::uint64_t fullRunEquivalentCycles = 0;  //!< without the
                                                //!< optimizations
    dfi::StatSet aggregateStats;                //!< executed runs only

    /**
     * Host wall-clock totals over the executed tasks, in
     * microseconds (volatile; bench_parallel_scaling's per-stage
     * breakdown).  totalRestoreMicros is the checkpoint-restore
     * share of totalWallMicros.
     */
    std::uint64_t totalWallMicros = 0;
    std::uint64_t totalRestoreMicros = 0;

    /**
     * The telemetry artifacts, captured in memory.  Non-empty when
     * telemetryOut or telemetryCapture requested telemetry; the
     * bytes equal what writeFiles() wrote (or would have written).
     */
    std::string telemetryRuns;
    std::string telemetrySummary;

    /**
     * Classify every run — executed and pruned — with the given
     * parser.  This is the campaign-wide tally: identical with and
     * without pruning (the determinism contract).
     */
    ClassCounts classify(const Parser &parser) const;
};

struct RunTask;
struct TaskResult;

/** The campaign controller. */
class InjectionCampaign
{
  public:
    using Progress = std::function<void(std::uint64_t done,
                                        std::uint64_t total)>;

    explicit InjectionCampaign(CampaignConfig config);
    ~InjectionCampaign();

    /** Golden reference record (runs it on first use). */
    const syskit::RunRecord &golden();

    /**
     * The shared preparation artifacts (runs the golden pass on
     * first use).  The returned state is immutable and safe to share
     * with other campaigns whose config cacheKey() matches.
     */
    std::shared_ptr<const PreparedCampaign> prepared();

    /**
     * Adopt previously prepared artifacts instead of re-simulating
     * the golden pass (the service's warm-cache fast path).  Must be
     * called before the first golden()/run() call; the artifacts
     * must come from a config with the same cacheKey() — that
     * equivalence is the caller's contract.
     */
    void adoptPrepared(std::shared_ptr<const PreparedCampaign> prep);

    /**
     * What run() would do, without simulating any faulty run (CLI
     * `--dry-run`): the resolved plan after sampling, classification,
     * pruning, and sharding.  `executed` counts this process's view;
     * the PruneStats are campaign-wide.
     */
    struct PlanSummary
    {
        std::uint64_t totalRuns = 0; //!< campaign-wide run count
        std::uint64_t executed = 0;  //!< tasks in this shard view
        PruneStats stats;            //!< campaign-wide tallies
        std::uint64_t maskCount = 0;
        /** Sum of golden.cycles - firstCycle + 1 over view tasks. */
        std::uint64_t estimatedSimulatedCycles = 0;
    };

    /** Resolve the plan and summarize it (runs the golden first). */
    PlanSummary planSummary();

    /** Run the whole campaign. */
    CampaignResult run(const Progress &progress = {});

    /**
     * Run a single fault group (exposed for tests and directed
     * studies).  `masks` must share one runId.
     */
    syskit::RunRecord runOne(const std::vector<dfi::FaultMask> &masks,
                             std::uint64_t *simulated_cycles = nullptr);

    /**
     * Execute one planned task (the executor layer's TaskRunner).
     * Requires golden() to have run; after that it only reads shared
     * immutable state (config, image, const checkpoints), so any
     * number of threads may call it concurrently.
     */
    TaskResult runTask(const RunTask &task) const;

    /**
     * The checkpoint store (exposed for tests and benches).  Valid
     * after golden()/run() has prepared the campaign.
     */
    const CheckpointStore &checkpoints() const
    {
        if (prep_ == nullptr)
            panic("checkpoints() before prepare(): run golden() "
                  "first");
        return prep_->checkpoints;
    }

  private:
    void prepare();

    CampaignConfig cfg_;
    std::shared_ptr<const PreparedCampaign> prep_; //!< set by prepare()
};

} // namespace dfi::inject

#endif // DFI_INJECT_CAMPAIGN_HH

/**
 * @file
 * Logical injection targets and their per-tool resolution.
 *
 * A campaign names the *component* it studies (e.g. "lsq", "l1d");
 * the dispatcher resolves it to the physical arrays the current
 * simulator model implements.  This is where the paper's Remark 1
 * lives: "lsq" resolves to the unified 32-entry data-field array on
 * MaFIN but to the split load/store queues on GeFIN, where only the
 * store queue holds data.
 */

#ifndef DFI_INJECT_TARGET_HH
#define DFI_INJECT_TARGET_HH

#include <string>
#include <vector>

#include "storage/structure_id.hh"
#include "uarch/ooo_core.hh"

namespace dfi::inject
{

/** Component names accepted by campaigns (the figures' subjects). */
const std::vector<std::string> &componentNames();

/**
 * Resolve a component name to the structures implementing it on this
 * core.  fatal() on unknown names; the result is empty only when the
 * core genuinely lacks the component (e.g. prefetchers on gemsim).
 */
std::vector<dfi::StructureId> resolveComponent(
    const std::string &component, uarch::OooCore &core);

/** Total injectable bits across the resolved structures. */
std::uint64_t componentBits(const std::string &component,
                            uarch::OooCore &core);

} // namespace dfi::inject

#endif // DFI_INJECT_TARGET_HH

/**
 * @file
 * Static fault classification and equivalence pruning (stage 2+3 of
 * the planning pipeline, plan.hh).
 *
 * The paper pays one full faulty simulation per sampled fault.
 * ARMORY-style pruning makes most of those runs free: a single-bit
 * transient run is cycle-identical to the golden run until the first
 * access that covers the faulted bit at or after the injection cycle,
 * so one instrumented golden re-run — the *trace* — decides most
 * outcomes analytically:
 *
 *  - the target entry is dead at the injection cycle
 *      -> the dispatcher's early-stop rule (i) would fire
 *         ("invalid-entry"; Masked);
 *  - the first covering access is a write before the end of the run
 *      -> early-stop rule (ii) would fire
 *         ("overwritten-before-read"; Masked);
 *  - the bit is never read (never accessed, or first overwritten
 *    during the terminal tick, after the watch check last ran)
 *      -> the run completes byte-identical to the golden record;
 *  - the first covering access is a read
 *      -> the fault is architecturally visible and must be simulated.
 *
 * Sites that must be simulated dedupe further: two sites of the same
 * bit whose first covering read is the *same* trace event produce
 * byte-identical runs (the flip is invisible until that read, and
 * execution is deterministic after it), so they form an equivalence
 * class keyed by (structure, entry, bit, first-read event) and only
 * the lowest-runId representative is simulated.
 *
 * The contract — enforced by tests and the CI prune-equivalence leg —
 * is that a pruned campaign's classification artifacts are
 * byte-identical (modulo volatile fields) to the unpruned campaign's.
 */

#ifndef DFI_INJECT_PRUNE_HH
#define DFI_INJECT_PRUNE_HH

#include <cstdint>
#include <vector>

#include "storage/structure_id.hh"
#include "syskit/run_record.hh"

namespace dfi::uarch
{
class OooCore;
} // namespace dfi::uarch

namespace dfi::inject
{

/** What the static classification decided for one fault site. */
enum class SiteVerdict : std::uint8_t
{
    Simulate,      //!< first covering access reads the bit: run it
    InvalidEntry,  //!< dead entry at injection: early-stop rule (i)
    DeadOverwrite, //!< overwritten before read: early-stop rule (ii)
    GoldenRun,     //!< never read: completes identical to golden
    EquivMember    //!< identical to another site's run (see repRunId)
};

/** Campaign-wide pruning tallies (telemetry `prune` object). */
struct PruneStats
{
    std::uint64_t prunedStatic = 0; //!< invalid-entry/overwrite/golden
    std::uint64_t prunedEquiv = 0;  //!< equivalence-class members
    std::uint64_t simulated = 0;    //!< surviving representatives
};

/** One single-bit transient fault site (stage-1 enumeration output). */
struct FaultSite
{
    std::uint64_t runId = 0;
    dfi::StructureId structure = dfi::StructureId::IntRegFile;
    std::uint32_t entry = 0;
    std::uint32_t bit = 0;
    std::uint64_t cycle = 0; //!< injection cycle, >= 1
};

/** Per-site classification result. */
struct SiteClassification
{
    SiteVerdict verdict = SiteVerdict::Simulate;
    /**
     * For InvalidEntry/DeadOverwrite: the `cycles`/`instructions`
     * fields of the early-stop record the dispatcher would have
     * produced.  Unused otherwise.
     */
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    /** For EquivMember: the representative's runId. */
    std::uint64_t repRunId = ~0ull;
    /**
     * 1-based equivalence-class id, assigned in ascending
     * representative-runId order; 0 for sites outside any class.
     * Set on both the representative (verdict Simulate) and its
     * members (verdict EquivMember).
     */
    std::uint64_t pruneClass = 0;
};

/**
 * Classify every site from one instrumented golden re-run of `probe`.
 *
 * `probe` must be a freshly-constructed core of the campaign's exact
 * configuration and image (cycle 0, nothing ticked); the function
 * ticks it to completion with access observers attached and fatal()s
 * if the traced run does not reproduce `golden`.  Sites must be
 * single-bit transients with injection cycles in [1, golden.cycles].
 *
 * The returned vector is indexed like `sites`.
 */
std::vector<SiteClassification>
classifySites(uarch::OooCore &probe, const syskit::RunRecord &golden,
              const std::vector<FaultSite> &sites);

} // namespace dfi::inject

#endif // DFI_INJECT_PRUNE_HH

#include "inject/service.hh"

#include <utility>

#include "common/logging.hh"
#include "inject/mask_gen.hh"
#include "storage/fault.hh"

namespace dfi::inject
{

namespace
{

bool
faultTypeFromName(const std::string &name, dfi::FaultType &out)
{
    for (const dfi::FaultType type :
         {dfi::FaultType::Transient, dfi::FaultType::Intermittent,
          dfi::FaultType::Permanent}) {
        if (faultTypeName(type) == name) {
            out = type;
            return true;
        }
    }
    return false;
}

bool
populationFromName(const std::string &name, Population &out)
{
    for (const Population population :
         {Population::SingleBit, Population::DoubleAdjacent,
          Population::DoubleRandom, Population::MultiStructure}) {
        if (populationName(population) == name) {
            out = population;
            return true;
        }
    }
    return false;
}

/** Typed member getters; false + error on a wrong JSON kind. */
bool
getUint(const json::Value &v, const std::string &key,
        std::uint64_t &out, std::string &error)
{
    if (v.kind() != json::Kind::Int || v.isNegative()) {
        error = "config." + key + ": expected an unsigned integer";
        return false;
    }
    out = v.asUint();
    return true;
}

bool
getNumber(const json::Value &v, const std::string &key, double &out,
          std::string &error)
{
    if (!v.isNumber()) {
        error = "config." + key + ": expected a number";
        return false;
    }
    out = v.asDouble();
    return true;
}

bool
getBool(const json::Value &v, const std::string &key, bool &out,
        std::string &error)
{
    if (v.kind() != json::Kind::Bool) {
        error = "config." + key + ": expected a boolean";
        return false;
    }
    out = v.asBool();
    return true;
}

bool
getString(const json::Value &v, const std::string &key,
          std::string &out, std::string &error)
{
    if (v.kind() != json::Kind::String) {
        error = "config." + key + ": expected a string";
        return false;
    }
    out = v.asString();
    return true;
}

/**
 * Decode one config member.  The key set mirrors the telemetry
 * config echo plus the execution knobs a remote client may set.
 */
bool
decodeConfigMember(const std::string &key, const json::Value &v,
                   CampaignConfig &cfg, std::string &error)
{
    std::uint64_t u = 0;
    std::string s;
    if (key == "component")
        return getString(v, key, cfg.component, error);
    if (key == "benchmark")
        return getString(v, key, cfg.benchmark, error);
    if (key == "scale") {
        if (!getUint(v, key, u, error))
            return false;
        cfg.scale = static_cast<std::uint32_t>(u);
        return true;
    }
    if (key == "core")
        return getString(v, key, cfg.coreName, error);
    if (key == "injections")
        return getUint(v, key, cfg.numInjections, error);
    if (key == "confidence")
        return getNumber(v, key, cfg.confidence, error);
    if (key == "margin")
        return getNumber(v, key, cfg.margin, error);
    if (key == "exhaustive")
        return getBool(v, key, cfg.exhaustive, error);
    if (key == "fault_type") {
        if (!getString(v, key, s, error))
            return false;
        if (!faultTypeFromName(s, cfg.faultType)) {
            error = "config.fault_type: unknown fault type '" + s +
                    "'";
            return false;
        }
        return true;
    }
    if (key == "population") {
        if (!getString(v, key, s, error))
            return false;
        if (!populationFromName(s, cfg.population)) {
            error = "config.population: unknown population '" + s +
                    "'";
            return false;
        }
        return true;
    }
    if (key == "intermittent_min")
        return getUint(v, key, cfg.intermittentMin, error);
    if (key == "intermittent_max")
        return getUint(v, key, cfg.intermittentMax, error);
    if (key == "cache_scale")
        return getNumber(v, key, cfg.cacheScale, error);
    if (key == "timeout_factor")
        return getNumber(v, key, cfg.timeoutFactor, error);
    if (key == "early_stop_invalid_entry")
        return getBool(v, key, cfg.earlyStopInvalidEntry, error);
    if (key == "early_stop_overwrite")
        return getBool(v, key, cfg.earlyStopOverwrite, error);
    if (key == "seed")
        return getUint(v, key, cfg.seed, error);
    if (key == "prune")
        return getBool(v, key, cfg.prune, error);
    if (key == "jobs") {
        if (!getUint(v, key, u, error))
            return false;
        cfg.jobs = static_cast<std::uint32_t>(u);
        return true;
    }
    if (key == "telemetry_timing")
        return getBool(v, key, cfg.telemetryTiming, error);
    if (key == "use_checkpoints")
        return getBool(v, key, cfg.useCheckpoints, error);
    if (key == "checkpoints") {
        if (!getUint(v, key, u, error))
            return false;
        cfg.checkpointCount = static_cast<std::uint32_t>(u);
        return true;
    }
    if (key == "checkpoint_budget_mb")
        return getUint(v, key, cfg.checkpointMemBudgetMB, error);
    error = "config." + key + ": unknown key";
    return false;
}

json::Value
encodeConfig(const CampaignConfig &cfg)
{
    json::Value obj = json::Value::object();
    obj.set("component", json::Value::string(cfg.component));
    obj.set("benchmark", json::Value::string(cfg.benchmark));
    obj.set("scale", json::Value::unsignedInt(cfg.scale));
    obj.set("core", json::Value::string(cfg.coreName));
    obj.set("injections",
            json::Value::unsignedInt(cfg.numInjections));
    obj.set("confidence", json::Value::number(cfg.confidence));
    obj.set("margin", json::Value::number(cfg.margin));
    obj.set("exhaustive", json::Value::boolean(cfg.exhaustive));
    obj.set("fault_type",
            json::Value::string(faultTypeName(cfg.faultType)));
    obj.set("population",
            json::Value::string(populationName(cfg.population)));
    obj.set("intermittent_min",
            json::Value::unsignedInt(cfg.intermittentMin));
    obj.set("intermittent_max",
            json::Value::unsignedInt(cfg.intermittentMax));
    obj.set("cache_scale", json::Value::number(cfg.cacheScale));
    obj.set("timeout_factor",
            json::Value::number(cfg.timeoutFactor));
    obj.set("early_stop_invalid_entry",
            json::Value::boolean(cfg.earlyStopInvalidEntry));
    obj.set("early_stop_overwrite",
            json::Value::boolean(cfg.earlyStopOverwrite));
    obj.set("seed", json::Value::unsignedInt(cfg.seed));
    obj.set("prune", json::Value::boolean(cfg.prune));
    obj.set("jobs", json::Value::unsignedInt(cfg.jobs));
    obj.set("telemetry_timing",
            json::Value::boolean(cfg.telemetryTiming));
    obj.set("use_checkpoints",
            json::Value::boolean(cfg.useCheckpoints));
    obj.set("checkpoints",
            json::Value::unsignedInt(cfg.checkpointCount));
    obj.set("checkpoint_budget_mb",
            json::Value::unsignedInt(cfg.checkpointMemBudgetMB));
    return obj;
}

json::Value
encodeCounts(const ClassCounts &counts)
{
    json::Value obj = json::Value::object();
    for (std::size_t c = 0; c < kNumOutcomeClasses; ++c) {
        const auto cls = static_cast<OutcomeClass>(c);
        obj.set(outcomeClassName(cls),
                json::Value::unsignedInt(counts.get(cls)));
    }
    return obj;
}

bool
decodeCounts(const json::Value &obj, ClassCounts &counts,
             std::string &error)
{
    for (const auto &[name, value] : obj.members()) {
        OutcomeClass cls = OutcomeClass::Masked;
        if (!outcomeClassFromName(name, cls)) {
            error = "counts: unknown class '" + name + "'";
            return false;
        }
        if (value.kind() != json::Kind::Int || value.isNegative()) {
            error = "counts." + name + ": expected an unsigned "
                    "integer";
            return false;
        }
        counts.counts[static_cast<std::size_t>(cls)] = value.asUint();
    }
    return true;
}

} // namespace

bool
decodeServiceRequest(const json::Value &line, ServiceRequest &out,
                     std::string &error)
{
    if (line.kind() != json::Kind::Object) {
        error = "request: expected a JSON object";
        return false;
    }
    const json::Value *kind = line.find("kind");
    if (kind == nullptr || kind->kind() != json::Kind::String ||
        kind->asString() != kServiceRequestKind) {
        error = "request: missing kind \"dfi-request\"";
        return false;
    }
    out = ServiceRequest{};
    for (const auto &[key, value] : line.members()) {
        if (key == "kind")
            continue;
        if (key == "op") {
            if (value.kind() != json::Kind::String) {
                error = "request.op: expected a string";
                return false;
            }
            out.op = value.asString();
            continue;
        }
        if (key == "client") {
            if (value.kind() != json::Kind::String) {
                error = "request.client: expected a string";
                return false;
            }
            out.client = value.asString();
            continue;
        }
        if (key == "config") {
            if (value.kind() != json::Kind::Object) {
                error = "request.config: expected an object";
                return false;
            }
            for (const auto &[ckey, cvalue] : value.members()) {
                if (!decodeConfigMember(ckey, cvalue, out.config,
                                        error))
                    return false;
            }
            continue;
        }
        error = "request." + key + ": unknown key";
        return false;
    }
    if (out.op != "campaign" && out.op != "ping" &&
        out.op != "stats" && out.op != "shutdown") {
        error = "request.op: unknown operation '" + out.op + "'";
        return false;
    }
    return true;
}

json::Value
encodeServiceRequest(const ServiceRequest &request)
{
    json::Value line = json::Value::object();
    line.set("kind", json::Value::string(kServiceRequestKind));
    line.set("op", json::Value::string(request.op));
    line.set("client", json::Value::string(request.client));
    if (request.op == "campaign")
        line.set("config", encodeConfig(request.config));
    return line;
}

json::Value
encodeServiceProgress(std::uint64_t done, std::uint64_t total)
{
    json::Value line = json::Value::object();
    line.set("kind", json::Value::string(kServiceProgressKind));
    line.set("done", json::Value::unsignedInt(done));
    line.set("total", json::Value::unsignedInt(total));
    return line;
}

json::Value
encodeServiceResponse(const ServiceResponse &response)
{
    json::Value line = json::Value::object();
    line.set("kind", json::Value::string(kServiceResponseKind));
    line.set("op", json::Value::string(response.op));
    line.set("ok", json::Value::boolean(response.ok));
    if (!response.ok) {
        line.set("error", json::Value::string(response.error));
        return line;
    }
    if (response.op == "campaign") {
        line.set("cache_key", json::Value::string(response.cacheKey));
        line.set("cache_hit", json::Value::boolean(response.cacheHit));
        line.set("runs_total",
                 json::Value::unsignedInt(response.runsTotal));
        line.set("counts", encodeCounts(response.counts));
        line.set("vulnerability",
                 json::Value::number(response.vulnerability));
        line.set("runs_jsonl",
                 json::Value::string(response.telemetryRuns));
        line.set("summary_json",
                 json::Value::string(response.telemetrySummary));
    }
    if (!response.extra.isNull())
        line.set("data", response.extra);
    return line;
}

bool
decodeServiceResponse(const json::Value &line, ServiceResponse &out,
                      std::string &error)
{
    if (line.kind() != json::Kind::Object) {
        error = "response: expected a JSON object";
        return false;
    }
    const json::Value *kind = line.find("kind");
    if (kind == nullptr || kind->kind() != json::Kind::String ||
        kind->asString() != kServiceResponseKind) {
        error = "response: missing kind \"dfi-response\"";
        return false;
    }
    out = ServiceResponse{};
    const json::Value *ok = line.find("ok");
    if (ok == nullptr || ok->kind() != json::Kind::Bool) {
        error = "response.ok: expected a boolean";
        return false;
    }
    out.ok = ok->asBool();
    if (const json::Value *op = line.find("op");
        op != nullptr && op->kind() == json::Kind::String)
        out.op = op->asString();
    if (const json::Value *err = line.find("error");
        err != nullptr && err->kind() == json::Kind::String)
        out.error = err->asString();
    if (const json::Value *v = line.find("cache_key");
        v != nullptr && v->kind() == json::Kind::String)
        out.cacheKey = v->asString();
    if (const json::Value *v = line.find("cache_hit");
        v != nullptr && v->kind() == json::Kind::Bool)
        out.cacheHit = v->asBool();
    if (const json::Value *v = line.find("runs_total");
        v != nullptr && v->kind() == json::Kind::Int &&
        !v->isNegative())
        out.runsTotal = v->asUint();
    if (const json::Value *v = line.find("counts");
        v != nullptr && v->kind() == json::Kind::Object) {
        if (!decodeCounts(*v, out.counts, error))
            return false;
    }
    if (const json::Value *v = line.find("vulnerability");
        v != nullptr && v->isNumber())
        out.vulnerability = v->asDouble();
    if (const json::Value *v = line.find("runs_jsonl");
        v != nullptr && v->kind() == json::Kind::String)
        out.telemetryRuns = v->asString();
    if (const json::Value *v = line.find("summary_json");
        v != nullptr && v->kind() == json::Kind::String)
        out.telemetrySummary = v->asString();
    if (const json::Value *v = line.find("data"); v != nullptr)
        out.extra = *v;
    return true;
}

CampaignService::CampaignService(Options options)
    : opts_(options)
{
}

std::shared_ptr<const PreparedCampaign>
CampaignService::cacheLookup(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
        if (it->key == key) {
            lru_.splice(lru_.begin(), lru_, it);
            ++stats_.hits;
            return lru_.front().prep;
        }
    }
    ++stats_.misses;
    return nullptr;
}

void
CampaignService::cacheInsert(
    const std::string &key,
    std::shared_ptr<const PreparedCampaign> prep)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const CacheEntry &entry : lru_) {
        if (entry.key == key)
            return; // racing request cached it first
    }
    CacheEntry entry;
    entry.key = key;
    entry.bytes = prep->approxBytes();
    entry.prep = std::move(prep);

    // An entry larger than the whole budget would evict everything
    // and still not fit; serve it uncached.
    if (entry.bytes > opts_.cacheBudgetBytes)
        return;
    cacheBytes_ += entry.bytes;
    lru_.push_front(std::move(entry));
    while (cacheBytes_ > opts_.cacheBudgetBytes && lru_.size() > 1) {
        cacheBytes_ -= lru_.back().bytes;
        lru_.pop_back();
        ++stats_.evictions;
    }
    stats_.entries = lru_.size();
    stats_.bytes = cacheBytes_;
}

ServiceResponse
CampaignService::execute(const ServiceRequest &request,
                         const Progress &progress)
{
    ServiceResponse response;
    response.op = "campaign";

    // The request's campaign never touches service-side files:
    // artifacts are captured in memory and travel in the response.
    CampaignConfig cfg = request.config;
    cfg.telemetryOut.clear();
    cfg.resumeFrom.clear();
    cfg.shard = ShardSpec{};
    cfg.telemetryCapture = true;

    const std::vector<ConfigError> errors = cfg.validate();
    if (!errors.empty()) {
        response.error = "config: " + errors[0].field + ": " +
                         errors[0].message;
        return response;
    }

    response.cacheKey = cfg.cacheKey();
    std::shared_ptr<const PreparedCampaign> prep =
        opts_.cacheBudgetBytes > 0 ? cacheLookup(response.cacheKey)
                                   : nullptr;
    response.cacheHit = prep != nullptr;

    try {
        InjectionCampaign campaign(cfg);
        if (prep != nullptr)
            campaign.adoptPrepared(std::move(prep));
        const CampaignResult result = campaign.run(progress);
        if (!response.cacheHit && opts_.cacheBudgetBytes > 0)
            cacheInsert(response.cacheKey, campaign.prepared());

        response.runsTotal =
            result.records.size() + result.pruned.size();
        const Parser parser;
        response.counts = result.classify(parser);
        response.vulnerability = response.counts.vulnerability();
        response.telemetryRuns = result.telemetryRuns;
        response.telemetrySummary = result.telemetrySummary;
        response.ok = true;
    } catch (const dfi::FatalError &err) {
        response.ok = false;
        response.error = err.what();
    } catch (const std::exception &err) {
        // Resource failures (bad_alloc, thread-spawn system_error)
        // must come back as a !ok response, not unwind through the
        // queue bookkeeping or a detached handler thread.
        response.ok = false;
        response.error =
            std::string("internal error: ") + err.what();
    }
    return response;
}

ServiceResponse
CampaignService::executeQueued(const ServiceRequest &request,
                               const Progress &progress)
{
    std::uint64_t ticket = 0;
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (draining_) {
            ServiceResponse response;
            response.error = "service is draining";
            return response;
        }
        if (active_ >= opts_.queueCapacity) {
            ServiceResponse response;
            response.error = "queue full (" +
                             std::to_string(opts_.queueCapacity) +
                             " requests in flight)";
            return response;
        }
        std::uint32_t &client_count = inFlight_[request.client];
        if (client_count >= opts_.perClientInFlight) {
            ServiceResponse response;
            response.error =
                "client quota exceeded (" +
                std::to_string(opts_.perClientInFlight) +
                " in flight for '" + request.client + "')";
            return response;
        }
        ++client_count;
        ++active_;
        ticket = nextTicket_++;
        cv_.wait(lock, [&] { return serving_ == ticket; });
    }

    // Completion bookkeeping must run even if execute() throws:
    // serving_ advancing is what unblocks every later ticket.
    struct Completion
    {
        CampaignService &service;
        const std::string &client;

        ~Completion()
        {
            {
                std::lock_guard<std::mutex> lock(service.mu_);
                auto it = service.inFlight_.find(client);
                if (it != service.inFlight_.end() &&
                    --it->second == 0)
                    service.inFlight_.erase(it);
                --service.active_;
                ++service.serving_;
            }
            service.cv_.notify_all();
        }
    } completion{*this, request.client};

    return execute(request, progress);
}

void
CampaignService::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    draining_ = true;
    cv_.wait(lock, [&] { return active_ == 0; });
}

CampaignService::CacheStats
CampaignService::cacheStats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    CacheStats stats = stats_;
    stats.entries = lru_.size();
    stats.bytes = cacheBytes_;
    return stats;
}

json::Value
CampaignService::statsJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    json::Value cache = json::Value::object();
    cache.set("hits", json::Value::unsignedInt(stats_.hits));
    cache.set("misses", json::Value::unsignedInt(stats_.misses));
    cache.set("evictions",
              json::Value::unsignedInt(stats_.evictions));
    cache.set("entries", json::Value::unsignedInt(lru_.size()));
    cache.set("bytes", json::Value::unsignedInt(cacheBytes_));
    cache.set("budget_bytes",
              json::Value::unsignedInt(opts_.cacheBudgetBytes));
    json::Value queue = json::Value::object();
    queue.set("active", json::Value::unsignedInt(active_));
    queue.set("capacity",
              json::Value::unsignedInt(opts_.queueCapacity));
    queue.set("per_client_quota",
              json::Value::unsignedInt(opts_.perClientInFlight));
    json::Value stats = json::Value::object();
    stats.set("cache", std::move(cache));
    stats.set("queue", std::move(queue));
    return stats;
}

} // namespace dfi::inject
